file(REMOVE_RECURSE
  "CMakeFiles/table3_km_pipeline.dir/table3_km_pipeline.cc.o"
  "CMakeFiles/table3_km_pipeline.dir/table3_km_pipeline.cc.o.d"
  "table3_km_pipeline"
  "table3_km_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_km_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
