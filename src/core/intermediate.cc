#include "core/intermediate.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace gw::core {

IntermediateStore::IntermediateStore(cluster::Node& node, sim::Simulation& sim,
                                     const JobConfig& config,
                                     MemoryGovernor* mem)
    : node_(node),
      sim_(sim),
      config_(config),
      mem_(mem),
      local_partitions_(config.partitions_per_node) {
  work_ = std::make_unique<sim::Channel<int>>(sim_, 4096);
  drained_ = std::make_unique<sim::Event>(sim_);
  merge_name_ = sim_.tracer().intern("store.merge");
  spill_name_ = sim_.tracer().intern("store.spill");
}

IntermediateStore::~IntermediateStore() = default;

sim::Task<> IntermediateStore::add_run(int g, Run run,
                                       std::uint64_t dedup_tag) {
  GW_CHECK(g >= 0);
  if (run.empty()) co_return;
  Part& part = parts_[g];
  if (dedup_tag != 0 && !part.seen_tags.insert(dedup_tag).second) {
    ++dup_dropped_;  // byte-identical regeneration of a run already taken in
    co_return;
  }
  co_await admit(part, std::move(run));
}

sim::Task<> IntermediateStore::add_combined_run(
    int g, Run run, std::vector<std::uint64_t> tags) {
  GW_CHECK(g >= 0);
  if (run.empty()) co_return;
  Part& part = parts_[g];
  std::size_t seen = 0;
  for (std::uint64_t t : tags) {
    if (t != 0 && part.seen_tags.count(t) > 0) ++seen;
  }
  if (!tags.empty() && seen == tags.size()) {
    ++dup_dropped_;  // a regrouped duplicate of runs already taken in
    co_return;
  }
  GW_CHECK_MSG(seen == 0,
               "combined run partially overlaps already-seen dedup tags");
  for (std::uint64_t t : tags) {
    if (t != 0) part.seen_tags.insert(t);
  }
  co_await admit(part, std::move(run));
}

sim::Task<> IntermediateStore::admit(Part& part, Run run) {
  const std::uint64_t bytes = run.stored_bytes();
  sim::Resource::Hold hold;
  if (mem_ != nullptr) {
    // A full store pool with a below-threshold cache would strand the
    // producers (nothing queued means nothing ever spills): force the
    // mergers to flush whatever is cached before blocking.
    if (!mem_->fits(MemoryGovernor::Pool::kStore, bytes)) {
      maybe_trigger_flushes(/*force=*/true);
    }
    hold = co_await mem_->acquire(MemoryGovernor::Pool::kStore, bytes);
  }
  part.cache_bytes += bytes;
  cache_bytes_total_ += bytes;
  part.cache.push_back(std::move(run));
  if (mem_ != nullptr) part.cache_holds.push_back(std::move(hold));
  maybe_trigger_flushes(/*force=*/false);
}

bool IntermediateStore::under_pressure() const {
  if (cache_bytes_total_ > effective_cache_threshold()) return true;
  // Governed: producers blocked on the store pool are memory pressure by
  // definition, whatever the cached byte count says.
  return mem_ != nullptr && mem_->contended(MemoryGovernor::Pool::kStore);
}

std::uint64_t IntermediateStore::effective_cache_threshold() const {
  if (mem_ == nullptr) return config_.cache_threshold_bytes;
  // Flush before producers can exhaust the pool: the threshold must leave
  // headroom inside the store budget or add_run deadlocks against it.
  return std::min(config_.cache_threshold_bytes,
                  mem_->pool_budget(MemoryGovernor::Pool::kStore) / 2);
}

std::size_t IntermediateStore::fanin_limit() const {
  if (mem_ == nullptr) return std::numeric_limits<std::size_t>::max();
  const std::uint64_t buf =
      std::max<std::uint64_t>(1, config_.merge_io_buffer_bytes);
  const std::uint64_t slots =
      mem_->pool_budget(MemoryGovernor::Pool::kMerge) / buf;
  // One i/o buffer per input run plus one for the merged output.
  return std::max<std::size_t>(
      2, slots > 1 ? static_cast<std::size_t>(slots - 1) : 2);
}

std::size_t IntermediateStore::effective_max_disk_runs() const {
  return std::min(static_cast<std::size_t>(config_.max_disk_runs),
                  fanin_limit());
}

void IntermediateStore::maybe_trigger_flushes(bool force) {
  if (!force && cache_bytes_total_ <= effective_cache_threshold()) return;
  for (auto& [g, part] : parts_) {
    if (part.cache_bytes > 0) enqueue(g);
  }
}

void IntermediateStore::enqueue(int g) {
  Part& part = parts_[g];
  if (part.queued) return;
  part.queued = true;
  ++jobs_in_flight_;
  // The channel is far larger than the partition count, so this never
  // blocks; spawn so enqueue stays synchronous for callers.
  sim_.spawn(work_->send(g));
}

void IntermediateStore::start_mergers() {
  if (mergers_ == nullptr) mergers_ = std::make_unique<sim::TaskGroup>(sim_);
  for (int i = 0; i < config_.effective_merger_threads(); ++i) {
    if (static_cast<std::size_t>(i) >= merger_tracks_.size()) {
      merger_tracks_.push_back(
          sim_.tracer().track(node_.id(), "store/" + std::to_string(i)));
    }
    mergers_->spawn(merger_loop(merger_tracks_[static_cast<std::size_t>(i)]));
  }
}

void IntermediateStore::reopen() {
  GW_CHECK_MSG(mergers_ == nullptr, "reopen before drain completed");
  GW_CHECK_MSG(jobs_in_flight_ == 0, "reopen with merge jobs in flight");
  work_ = std::make_unique<sim::Channel<int>>(sim_, 4096);
  drained_ = std::make_unique<sim::Event>(sim_);
  draining_ = false;
  // Recompute the cache accounting from the runs actually held: the retry
  // path reuses the store across recovery rounds, and stale accounting
  // would mis-trigger (or fail to trigger) the next round's pressure
  // flushes.
  cache_bytes_total_ = 0;
  for (auto& [g, part] : parts_) {
    part.queued = false;
    std::uint64_t bytes = 0;
    for (const Run& r : part.cache) bytes += r.stored_bytes();
    part.cache_bytes = bytes;
    cache_bytes_total_ += bytes;
    GW_CHECK_MSG(
        mem_ == nullptr || part.cache_holds.size() == part.cache.size(),
        "cache holds out of sync across reopen");
    GW_CHECK_MSG(part.disk_levels.size() == part.disk.size(),
                 "disk run levels out of sync across reopen");
  }
}

double IntermediateStore::host_merge_seconds(std::uint64_t in_stored,
                                             std::uint64_t in_raw,
                                             std::uint64_t out_raw) const {
  const HostCosts& h = config_.host;
  return static_cast<double>(in_stored) / h.decompress_bytes_per_s +
         static_cast<double>(in_raw) / h.merge_bytes_per_s +
         static_cast<double>(out_raw) / h.compress_bytes_per_s;
}

sim::Task<> IntermediateStore::merger_loop(trace::TrackRef track) {
  for (;;) {
    auto g = co_await work_->recv();
    if (!g) break;
    co_await service(*g, track);
    parts_[*g].queued = false;
    // Re-examine: service may leave work (the cache may have refilled
    // meanwhile, or a budget-capped merge left disk runs above the limit).
    Part& part = parts_[*g];
    const bool more =
        part.disk.size() > effective_max_disk_runs() ||
        (under_pressure() && part.cache_bytes > 0) ||
        (draining_ && part.cache.size() > 1);
    if (more) enqueue(*g);
    if (--jobs_in_flight_ == 0 && draining_ && work_->size() == 0) {
      drained_->set();
    }
  }
}

sim::Task<> IntermediateStore::service(int g, trace::TrackRef track) {
  auto& tr = sim_.tracer();
  Part& part = parts_[g];
  const double spill_bw = config_.spill_bandwidth_bytes_per_s;

  // Step 1: merge+flush the cached runs to one on-disk run. During the
  // final drain, cached data that already fits in few runs stays in memory
  // (only consolidated if the run count is excessive); under cache pressure
  // everything cached is flushed. A governed store always writes the merged
  // output to disk — external-sort semantics: re-caching it would have to
  // re-acquire the store pool the inputs just freed, racing the very
  // producers the spill is meant to unblock.
  const bool pressure = under_pressure();
  const bool too_many_cached =
      part.cache.size() + part.disk.size() > effective_max_disk_runs();
  // During the final drain each partition is consolidated to a single
  // cached run (the paper's merge phase runs to completion before reduce).
  const bool drain_consolidate = draining_ && part.cache.size() > 1;
  if (!part.cache.empty() &&
      (pressure || too_many_cached || drain_consolidate)) {
    std::vector<Run> cached;
    cached.swap(part.cache);
    std::vector<sim::Resource::Hold> holds;
    holds.swap(part.cache_holds);
    cache_bytes_total_ -= part.cache_bytes;
    part.cache_bytes = 0;

    std::uint64_t in_stored = 0, in_raw = 0;
    for (const Run& r : cached) {
      in_stored += r.stored_bytes();
      in_raw += r.raw_bytes;
    }
    sim::Resource::Hold scratch;
    if (mem_ != nullptr) {
      scratch = co_await mem_->acquire(
          MemoryGovernor::Pool::kMerge,
          (cached.size() + 1) * config_.merge_io_buffer_bytes);
    }
    ++merges_;
    merge_fanin_runs_ += cached.size();
    tr.begin(track, trace::Kind::kMerge, merge_name_, sim_.now(),
             cached.size());
    Run merged;
    if (cached.size() == 1) {
      merged = std::move(cached.front());
      co_await node_.cpu_work(
          host_merge_seconds(in_stored, in_raw, merged.raw_bytes));
    } else {
      // Merging preserves every framed pair, so the output raw size equals
      // the input raw sum and the charge is known up front: the real merge
      // runs on the pool while the cpu charge elapses.
      auto merging = sim_.offload([&cached] { return merge_runs(cached, true); });
      co_await node_.cpu_work(host_merge_seconds(in_stored, in_raw, in_raw));
      merged = co_await sim_.join(std::move(merging));
      GW_CHECK(merged.raw_bytes == in_raw);
    }
    tr.end(track, trace::Kind::kMerge, merge_name_, sim_.now());
    holds.clear();  // inputs consumed: free the store pool for producers
    scratch.release();
    if (pressure || (mem_ != nullptr)) {
      // Spill to disk to relieve memory pressure.
      ++spills_;
      spill_bytes_ += merged.stored_bytes();
      merge_levels_ = std::max<std::uint64_t>(merge_levels_, 1);
      if (mem_ != nullptr) {
        tr.begin(track, trace::Kind::kSpill, spill_name_, sim_.now(),
                 merged.stored_bytes());
        co_await node_.disk_stream_write_bw(
            merged.stored_bytes(),
            cluster::Node::amortized_seek(merged.stored_bytes()), spill_bw);
        tr.end(track, trace::Kind::kSpill, spill_name_, sim_.now());
      } else {
        tr.instant(track, trace::Kind::kSpill, spill_name_, sim_.now(),
                   merged.stored_bytes());
        co_await node_.disk_stream_write(
            merged.stored_bytes(),
            cluster::Node::amortized_seek(merged.stored_bytes()));
      }
      part.disk.push_back(std::move(merged));
      part.disk_levels.push_back(1);
    } else {
      // Drain-time consolidation: the merged run stays cached.
      part.cache_bytes += merged.stored_bytes();
      cache_bytes_total_ += merged.stored_bytes();
      part.cache.push_back(std::move(merged));
    }
  }

  // Step 2: keep the number of on-disk runs bounded with a multi-way merge.
  // Ungoverned this is a single full-width merge (the legacy behavior);
  // governed, the fan-in is capped by the merge-pool budget and repeated
  // capped merges build a multi-level tree, oldest (lowest-level) runs
  // first so levels stay balanced.
  const std::size_t limit = effective_max_disk_runs();
  while (part.disk.size() > limit) {
    const std::size_t take = std::min(part.disk.size(), fanin_limit());
    std::vector<Run> inputs(
        std::make_move_iterator(part.disk.begin()),
        std::make_move_iterator(part.disk.begin() +
                                static_cast<std::ptrdiff_t>(take)));
    part.disk.erase(part.disk.begin(),
                    part.disk.begin() + static_cast<std::ptrdiff_t>(take));
    int level = 0;
    for (std::size_t i = 0; i < take; ++i) {
      level = std::max(level, part.disk_levels[i]);
    }
    part.disk_levels.erase(
        part.disk_levels.begin(),
        part.disk_levels.begin() + static_cast<std::ptrdiff_t>(take));
    ++level;

    std::uint64_t in_stored = 0, in_raw = 0;
    for (const Run& r : inputs) {
      in_stored += r.stored_bytes();
      in_raw += r.raw_bytes;
    }
    sim::Resource::Hold scratch;
    if (mem_ != nullptr) {
      scratch = co_await mem_->acquire(
          MemoryGovernor::Pool::kMerge,
          (take + 1) * config_.merge_io_buffer_bytes);
    }
    // As in step 1, the charge is size-determined: overlap the real merge
    // with the simulated disk read + cpu charges.
    auto merging = sim_.offload([&inputs] { return merge_runs(inputs, true); });
    co_await node_.disk_stream_read_bw(
        in_stored, cluster::Node::amortized_seek(in_stored), spill_bw);
    ++merges_;
    merge_fanin_runs_ += inputs.size();
    merge_levels_ =
        std::max(merge_levels_, static_cast<std::uint64_t>(level));
    tr.begin(track, trace::Kind::kMerge, merge_name_, sim_.now(),
             inputs.size());
    co_await node_.cpu_work(host_merge_seconds(in_stored, in_raw, in_raw));
    Run merged = co_await sim_.join(std::move(merging));
    GW_CHECK(merged.raw_bytes == in_raw);
    tr.end(track, trace::Kind::kMerge, merge_name_, sim_.now());
    co_await node_.disk_stream_write_bw(
        merged.stored_bytes(),
        cluster::Node::amortized_seek(merged.stored_bytes()), spill_bw);
    part.disk.push_back(std::move(merged));
    part.disk_levels.push_back(level);
  }
}

sim::Task<> IntermediateStore::drain() {
  draining_ = true;
  for (auto& [g, part] : parts_) {
    if (part.cache.size() > 1 || part.disk.size() > effective_max_disk_runs()) {
      enqueue(g);
    }
  }
  if (jobs_in_flight_ > 0) co_await drained_->wait();
  work_->close();
  co_await mergers_->wait();
  mergers_.reset();  // a TaskGroup is single-wait; reopen() re-creates it
}

std::vector<Run> IntermediateStore::take_partition(int g,
                                                   std::uint64_t* disk_bytes) {
  GW_CHECK(g >= 0);
  auto it = parts_.find(g);
  if (it == parts_.end()) {
    if (disk_bytes != nullptr) *disk_bytes = 0;
    return {};
  }
  Part& part = it->second;
  std::uint64_t db = 0;
  std::vector<Run> runs;
  for (Run& r : part.disk) {
    db += r.stored_bytes();
    runs.push_back(std::move(r));
  }
  for (Run& r : part.cache) runs.push_back(std::move(r));
  cache_bytes_total_ -= part.cache_bytes;
  part.cache.clear();
  part.cache_holds.clear();  // releases the store pool for this partition
  part.disk.clear();
  part.disk_levels.clear();
  part.cache_bytes = 0;
  if (disk_bytes != nullptr) *disk_bytes = db;
  return runs;
}

std::uint64_t IntermediateStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [g, part] : parts_) {
    for (const Run& r : part.cache) total += r.stored_bytes();
    for (const Run& r : part.disk) total += r.stored_bytes();
  }
  return total;
}

}  // namespace gw::core
