# Empty dependencies file for gwrun.
# This may be replaced when dependencies are built.
