// Baseline runtimes: output correctness (identical results to Glasswing on
// the same inputs) and the structural performance properties the paper
// attributes to them.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "apps/kmeans.h"
#include "apps/pageview.h"
#include "apps/wordcount.h"
#include "baselines/gpmr/gpmr.h"
#include "baselines/hadoop/hadoop.h"
#include "core/job.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
}

void write_file(Platform& p, dfs::FileSystem& fs, const std::string& path,
                util::Bytes contents) {
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes c) -> sim::Task<> {
    co_await f.write(0, pa, std::move(c));
  }(fs, path, std::move(contents)));
  p.sim().run();
}

util::Bytes read_file(Platform& p, dfs::FileSystem& fs,
                      const std::string& path) {
  util::Bytes out;
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes* o) -> sim::Task<> {
    *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
  }(fs, path, &out));
  p.sim().run();
  return out;
}

template <typename Result>
std::map<std::string, std::uint64_t> counted_output(
    Platform& p, dfs::FileSystem& fs, const Result& result) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& path : result.output_files) {
    for (auto& [k, v] : core::read_output_file(read_file(p, fs, path))) {
      counts[k] += apps::parse_u64(v);
    }
  }
  return counts;
}

TEST(Hadoop, WordcountMatchesReference) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  util::Bytes text = apps::generate_wiki_text(1 << 20, 21);
  write_file(p, fs, "/in/wiki", text);

  hadoop::HadoopRuntime rt(p, fs);
  hadoop::HadoopConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out/hadoop-wc";
  cfg.split_size = 256 << 10;
  auto result = rt.run(apps::wordcount().kernels, cfg);

  EXPECT_EQ(counted_output(p, fs, result),
            apps::wordcount_reference(text));
  EXPECT_GT(result.map_phase_seconds, 0.0);
  EXPECT_GT(result.reduce_phase_seconds, 0.0);
  EXPECT_GT(result.shuffle_bytes, 0u);
}

TEST(Hadoop, OutputIdenticalToGlasswing) {
  util::Bytes text = apps::generate_wiki_text(1 << 19, 33);

  Platform p1 = make_platform(2);
  dfs::Dfs fs1(p1, dfs::DfsConfig{});
  write_file(p1, fs1, "/in", text);
  hadoop::HadoopRuntime hrt(p1, fs1);
  hadoop::HadoopConfig hcfg;
  hcfg.input_paths = {"/in"};
  hcfg.output_path = "/out";
  auto hadoop_counts = counted_output(p1, fs1, hrt.run(apps::wordcount().kernels, hcfg));

  Platform p2 = make_platform(2);
  dfs::Dfs fs2(p2, dfs::DfsConfig{});
  write_file(p2, fs2, "/in", text);
  core::GlasswingRuntime grt(p2, fs2, cl::DeviceSpec::cpu_dual_e5620());
  core::JobConfig gcfg;
  gcfg.input_paths = {"/in"};
  gcfg.output_path = "/out";
  auto gw_counts = counted_output(p2, fs2, grt.run(apps::wordcount().kernels, gcfg));

  EXPECT_EQ(hadoop_counts, gw_counts);
}

TEST(Hadoop, SlowerThanGlasswingOnSameJob) {
  // The headline comparison: same app, same data, same cluster, same DFS.
  // Glasswing's pipeline overlap + fine-grained parallelism should win by
  // a factor in the paper's 1.2-4x band.
  util::Bytes text = apps::generate_wiki_text(16 << 20, 5);

  auto stage = [](Platform& p, dfs::Dfs& fs, const util::Bytes& data) {
    p.sim().spawn([](dfs::Dfs& f, util::Bytes c) -> sim::Task<> {
      co_await f.write_distributed("/in", std::move(c));
    }(fs, data));
    p.sim().run();
  };

  Platform p1 = make_platform(4);
  dfs::Dfs fs1(p1, dfs::DfsConfig{});
  stage(p1, fs1, text);
  hadoop::HadoopRuntime hrt(p1, fs1);
  hadoop::HadoopConfig hcfg;
  hcfg.input_paths = {"/in"};
  hcfg.output_path = "/out";
  hcfg.split_size = 256 << 10;
  const double hadoop_t = hrt.run(apps::wordcount().kernels, hcfg).elapsed_seconds;

  Platform p2 = make_platform(4);
  dfs::Dfs fs2(p2, dfs::DfsConfig{});
  stage(p2, fs2, text);
  core::GlasswingRuntime grt(p2, fs2, cl::DeviceSpec::cpu_dual_e5620());
  core::JobConfig gcfg;
  gcfg.input_paths = {"/in"};
  gcfg.output_path = "/out";
  gcfg.split_size = 256 << 10;
  const double gw_t = grt.run(apps::wordcount().kernels, gcfg).elapsed_seconds;

  EXPECT_GT(hadoop_t / gw_t, 1.2);
  EXPECT_LT(hadoop_t / gw_t, 5.0);
}

TEST(Gpmr, KmeansOutputMatchesReference) {
  Platform p = make_platform(2);
  dfs::LocalFs fs(p);
  apps::KmeansConfig km{.k = 32, .dims = 4};
  auto centers = apps::generate_centers(km, 4);
  util::Bytes points = apps::generate_points(km, 20000, 6);
  write_file(p, fs, "/in/points", points);
  fs.replicate_everywhere("/in/points");

  gpmr::GpmrRuntime rt(p, fs, cl::DeviceSpec::gtx480());
  gpmr::GpmrConfig cfg;
  cfg.input_paths = {"/in/points"};
  auto result = rt.run(apps::kmeans(km, centers).kernels, cfg);

  const auto ref = apps::kmeans_reference(km, centers, points);
  std::uint64_t seen = 0;
  for (auto& [key, value] : result.output) {
    const std::uint32_t cid = apps::get_be32(key);
    ASSERT_LT(cid, static_cast<std::uint32_t>(km.k));
    const std::uint32_t count = apps::get_be32(
        std::string_view(value).substr(static_cast<std::size_t>(km.dims) * 4));
    EXPECT_EQ(count, ref.counts[cid]);
    for (int j = 0; j < km.dims; ++j) {
      EXPECT_NEAR(apps::read_f32(value.data() + 4 * j),
                  ref.means[static_cast<std::size_t>(cid) * km.dims + j], 1e-2);
    }
    ++seen;
  }
  std::uint64_t nonempty = 0;
  for (auto c : ref.counts) nonempty += (c > 0);
  EXPECT_EQ(seen, nonempty);
}

TEST(Gpmr, TotalTimeIsSumOfIoAndCompute) {
  Platform p = make_platform(2);
  dfs::LocalFs fs(p);
  apps::KmeansConfig km{.k = 16, .dims = 4};
  auto centers = apps::generate_centers(km, 4);
  write_file(p, fs, "/in/p", apps::generate_points(km, 50000, 6));
  fs.replicate_everywhere("/in/p");

  gpmr::GpmrRuntime rt(p, fs, cl::DeviceSpec::gtx480());
  gpmr::GpmrConfig cfg;
  cfg.input_paths = {"/in/p"};
  auto result = rt.run(apps::kmeans(km, centers).kernels, cfg);
  EXPECT_GT(result.io_seconds, 0.0);
  EXPECT_GT(result.compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.elapsed_seconds,
                   result.io_seconds + result.compute_seconds);
}

TEST(Gpmr, RejectsCpuDevices) {
  Platform p = make_platform(1);
  dfs::LocalFs fs(p);
  EXPECT_DEATH(gpmr::GpmrRuntime(p, fs, cl::DeviceSpec::cpu_dual_e5620()),
               "GPUs only");
}

TEST(Gpmr, SkipReduceLeavesPartialsUnaggregated) {
  Platform p = make_platform(1);
  dfs::LocalFs fs(p);
  util::Bytes text = apps::generate_wiki_text(64 << 10, 8);
  write_file(p, fs, "/in/t", text);

  gpmr::GpmrRuntime rt(p, fs, cl::DeviceSpec::gtx480());
  gpmr::GpmrConfig cfg;
  cfg.input_paths = {"/in/t"};
  cfg.skip_reduce = true;
  cfg.use_combiner = false;
  auto result = rt.run(apps::wordcount().kernels, cfg);
  // No reduce ran: every surviving value is still a raw "1".
  ASSERT_FALSE(result.output.empty());
  for (auto& [k, v] : result.output) EXPECT_EQ(v, "1");
}

}  // namespace
}  // namespace gw
