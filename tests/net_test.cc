// Tests for the simulated network fabric and cluster platform.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "simnet/fabric.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;
using net::Fabric;
using net::Message;
using net::NetworkProfile;

Platform make_platform(int nodes,
                       NetworkProfile profile = NetworkProfile::qdr_infiniband_ipoib()) {
  return Platform(
      ClusterSpec::homogeneous(nodes, NodeSpec::das4_type1(), profile));
}

TEST(Fabric, DeliversPayloadIntact) {
  Platform p = make_platform(2);
  util::Bytes payload = {1, 2, 3, 4, 5};
  util::Bytes received;
  auto sender = [](Platform& pl, util::Bytes data) -> sim::Task<> {
    co_await pl.fabric().send(0, 1, net::kPortShuffle, std::move(data));
  };
  auto receiver = [](Platform& pl, util::Bytes* out) -> sim::Task<> {
    auto msg = co_await pl.fabric().inbox(1, net::kPortShuffle).recv();
    EXPECT_TRUE(msg.has_value());  // ASSERT_* returns, which coroutines forbid
    if (!msg) co_return;
    EXPECT_EQ(msg->src, 0);
    *out = std::move(msg->payload);
  };
  p.sim().spawn(sender(p, payload));
  p.sim().spawn(receiver(p, &received));
  p.sim().run();
  EXPECT_EQ(received, payload);
}

TEST(Fabric, TransferTimeMatchesBandwidthPlusLatency) {
  NetworkProfile prof{"test", 100e6, 1e-3, 0.0};
  Platform p = make_platform(2, prof);
  auto sender = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().transfer(0, 1, 50'000'000);  // 0.5 s at 100 MB/s
  };
  p.sim().spawn(sender(p));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 0.501, 1e-9);
}

TEST(Fabric, LocalSendIsFree) {
  Platform p = make_platform(2);
  auto sender = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().send(0, 0, net::kPortShuffle, util::Bytes(1 << 20));
  };
  p.sim().spawn(sender(p));
  p.sim().run();
  EXPECT_DOUBLE_EQ(p.sim().now(), 0.0);
  EXPECT_EQ(p.fabric().inbox(0, net::kPortShuffle).size(), 1u);
}

TEST(Fabric, SenderNicSerializesOutgoingTraffic) {
  NetworkProfile prof{"test", 100e6, 0.0, 0.0};
  Platform p = make_platform(3, prof);
  // Two 1-second transfers from node 0 must serialize on its TX unit.
  auto sender = [](Platform& pl, int dst) -> sim::Task<> {
    co_await pl.fabric().transfer(0, dst, 100'000'000);
  };
  p.sim().spawn(sender(p, 1));
  p.sim().spawn(sender(p, 2));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 2.0, 1e-9);
}

TEST(Fabric, DisjointPairsRunInParallel) {
  NetworkProfile prof{"test", 100e6, 0.0, 0.0};
  Platform p = make_platform(4, prof);
  auto sender = [](Platform& pl, int src, int dst) -> sim::Task<> {
    co_await pl.fabric().transfer(src, dst, 100'000'000);
  };
  p.sim().spawn(sender(p, 0, 1));
  p.sim().spawn(sender(p, 2, 3));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 1.0, 1e-9);
}

TEST(Fabric, StatsAccumulate) {
  Platform p = make_platform(2);
  auto sender = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().transfer(0, 1, 1000);
    co_await pl.fabric().transfer(0, 1, 500);
  };
  p.sim().spawn(sender(p));
  p.sim().run();
  EXPECT_EQ(p.fabric().bytes_sent(0), 1500u);
  EXPECT_EQ(p.fabric().bytes_received(1), 1500u);
  EXPECT_EQ(p.fabric().messages_sent(0), 2u);
  EXPECT_EQ(p.fabric().total_bytes_sent(), 1500u);
}

TEST(Fabric, ClosePortWakesReceiver) {
  Platform p = make_platform(1);
  bool saw_eof = false;
  auto receiver = [](Platform& pl, bool* eof) -> sim::Task<> {
    auto msg = co_await pl.fabric().inbox(0, net::kPortShuffle).recv();
    *eof = !msg.has_value();
  };
  auto closer = [](Platform& pl) -> sim::Task<> {
    co_await pl.sim().delay(1.0);
    pl.fabric().close_port(0, net::kPortShuffle);
  };
  p.sim().spawn(receiver(p, &saw_eof));
  p.sim().spawn(closer(p));
  p.sim().run();
  EXPECT_TRUE(saw_eof);
}

TEST(Fabric, LocalTransferIsFree) {
  Platform p = make_platform(2);
  auto mover = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().transfer(1, 1, 100 << 20);
  };
  p.sim().spawn(mover(p));
  p.sim().run();
  EXPECT_DOUBLE_EQ(p.sim().now(), 0.0);
}

TEST(Fabric, TransferMatchesSendByteAccounting) {
  const std::uint64_t kBytes = 3 << 20;
  Platform a = make_platform(2);
  Platform b = make_platform(2);
  auto mover = [](Platform& pl, std::uint64_t n) -> sim::Task<> {
    co_await pl.fabric().transfer(0, 1, n);
  };
  auto sender = [](Platform& pl, std::uint64_t n) -> sim::Task<> {
    co_await pl.fabric().send(0, 1, net::kPortShuffle, util::Bytes(n));
  };
  a.sim().spawn(mover(a, kBytes));
  b.sim().spawn(sender(b, kBytes));
  a.sim().run();
  b.sim().run();
  EXPECT_EQ(a.fabric().bytes_sent(0), b.fabric().bytes_sent(0));
  EXPECT_EQ(a.fabric().bytes_received(1), b.fabric().bytes_received(1));
  EXPECT_EQ(a.fabric().messages_sent(0), b.fabric().messages_sent(0));
  // An equal-size payload also takes equally long on an uncontended wire.
  EXPECT_DOUBLE_EQ(a.sim().now(), b.sim().now());
}

TEST(Fabric, ChunkedSendDeliversPayloadIdentical) {
  util::Bytes payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  NetworkProfile plain{"test", 100e6, 1e-3, 1e-4};
  NetworkProfile chunked = plain;
  chunked.max_chunk_bytes = 64 << 10;

  auto run_one = [](Platform& p, const util::Bytes& data, util::Bytes* out) {
    auto sender = [](Platform& pl, util::Bytes d) -> sim::Task<> {
      co_await pl.fabric().send(0, 1, net::kPortShuffle, std::move(d));
    };
    auto receiver = [](Platform& pl, util::Bytes* o) -> sim::Task<> {
      auto msg = co_await pl.fabric().inbox(1, net::kPortShuffle).recv();
      EXPECT_TRUE(msg.has_value());
      if (msg) *o = std::move(msg->payload);
    };
    p.sim().spawn(sender(p, data));
    p.sim().spawn(receiver(p, out));
    p.sim().run();
  };

  Platform a = make_platform(2, plain);
  Platform b = make_platform(2, chunked);
  util::Bytes got_plain, got_chunked;
  run_one(a, payload, &got_plain);
  run_one(b, payload, &got_chunked);
  EXPECT_EQ(got_plain, payload);
  EXPECT_EQ(got_chunked, payload);
  // Per-message overhead is charged once, so a lone chunked flow finishes
  // at the same simulated instant as the unchunked one.
  EXPECT_NEAR(a.sim().now(), b.sim().now(), 1e-12);
}

TEST(Fabric, ChunkingInterleavesFlowsOnSharedLink) {
  // Two 1-second flows into node 1's RX. Unchunked they serialize whole:
  // the first finishes at ~1 s. Chunked they alternate chunk by chunk, so
  // the earliest completion moves past the 1-second mark while the total
  // stays work-conserving at ~2 s.
  NetworkProfile plain{"test", 100e6, 0.0, 0.0};
  NetworkProfile chunked = plain;
  chunked.max_chunk_bytes = 10'000'000;

  auto run_one = [](Platform& p, double* first_done) {
    auto sender = [](Platform& pl, int src, double* done) -> sim::Task<> {
      co_await pl.fabric().transfer(src, 1, 100'000'000);
      if (*done == 0.0) *done = pl.sim().now();
    };
    p.sim().spawn(sender(p, 0, first_done));
    p.sim().spawn(sender(p, 2, first_done));
    p.sim().run();
  };

  Platform a = make_platform(3, plain);
  Platform b = make_platform(3, chunked);
  double first_plain = 0.0, first_chunked = 0.0;
  run_one(a, &first_plain);
  run_one(b, &first_chunked);
  EXPECT_NEAR(first_plain, 1.0, 1e-9);
  EXPECT_GT(first_chunked, 1.5);
  EXPECT_NEAR(a.sim().now(), 2.0, 1e-9);
  EXPECT_NEAR(b.sim().now(), 2.0, 1e-9);
}

TEST(Fabric, BisectionOversubscriptionThrottlesDisjointPairs) {
  // Same disjoint-pair workload as DisjointPairsRunInParallel, but a 4x
  // oversubscribed core switch admits max(1, 4/4) = 1 concurrent flow, so
  // the pairs serialize at the switch instead of running in parallel.
  NetworkProfile prof{"test", 100e6, 0.0, 0.0};
  prof.bisection_oversubscription = 4;
  Platform p = make_platform(4, prof);
  EXPECT_EQ(p.fabric().core_switch_capacity(), 1);
  auto sender = [](Platform& pl, int src, int dst) -> sim::Task<> {
    co_await pl.fabric().transfer(src, dst, 100'000'000);
  };
  p.sim().spawn(sender(p, 0, 1));
  p.sim().spawn(sender(p, 2, 3));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 2.0, 1e-9);
}

TEST(Fabric, ClosePortOnAbsentPortDoesNotCreate) {
  Platform p = make_platform(1);
  EXPECT_EQ(p.fabric().open_inboxes(), 0u);
  p.fabric().close_port(0, net::kPortShuffle);
  p.fabric().close_port(0, net::kPortShuffle);  // idempotent on absent ports
  EXPECT_EQ(p.fabric().open_inboxes(), 0u);
  // A late receiver still observes end-of-stream: the port materializes
  // already-closed instead of blocking forever.
  bool saw_eof = false;
  auto receiver = [](Platform& pl, bool* eof) -> sim::Task<> {
    auto msg = co_await pl.fabric().inbox(0, net::kPortShuffle).recv();
    *eof = !msg.has_value();
  };
  p.sim().spawn(receiver(p, &saw_eof));
  p.sim().run();
  EXPECT_TRUE(saw_eof);
  EXPECT_EQ(p.fabric().open_inboxes(), 1u);
  p.fabric().close_port(0, net::kPortShuffle);  // idempotent on open ports
}

TEST(Fabric, LinkSpansRecordOccupancy) {
  NetworkProfile prof{"test", 100e6, 1e-3, 0.0};
  Platform p = make_platform(2, prof);
  auto sender = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().transfer(0, 1, 50'000'000);  // 0.5 s on the wire
  };
  p.sim().spawn(sender(p));
  p.sim().run();
  const trace::Tracer& tr = p.sim().tracer();
  EXPECT_NEAR(tr.occupancy(0, "net.tx").busy, 0.5, 1e-9);
  EXPECT_NEAR(tr.occupancy(1, "net.rx").busy, 0.5, 1e-9);
  EXPECT_EQ(tr.occupancy(1, "net.tx").spans, 0u);  // node 1 never sent
  EXPECT_EQ(tr.validate(), "");
  EXPECT_NE(tr.chrome_json().find("\"link\""), std::string::npos);
}

TEST(Node, DiskReadTimeMatchesModel) {
  Platform p = make_platform(1);
  const auto& disk = p.node(0).spec().disk;
  auto reader = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).disk_read(100 << 20);
  };
  p.sim().spawn(reader(p));
  p.sim().run();
  const double expected =
      disk.seek_latency_s + (100 << 20) / disk.read_bw_bytes_per_s;
  EXPECT_NEAR(p.sim().now(), expected, 1e-9);
  EXPECT_EQ(p.node(0).disk_bytes_read(), static_cast<std::uint64_t>(100 << 20));
}

TEST(Node, DiskOperationsSerialize) {
  Platform p = make_platform(1);
  auto reader = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).disk_read(100 << 20);
  };
  p.sim().spawn(reader(p));
  p.sim().spawn(reader(p));
  p.sim().run();
  const auto& disk = p.node(0).spec().disk;
  const double one = disk.seek_latency_s + (100 << 20) / disk.read_bw_bytes_per_s;
  EXPECT_NEAR(p.sim().now(), 2 * one, 1e-9);
}

TEST(Node, CpuWorkTimesharesCores) {
  Platform p = make_platform(1);
  const int cores = p.node(0).spec().hw_threads;
  // 2x cores workers, each needing 1 s of CPU: with timesharing the whole
  // batch completes in ~2 s.
  auto worker = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).cpu_work(1.0);
  };
  for (int i = 0; i < 2 * cores; ++i) p.sim().spawn(worker(p));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 2.0, 0.05);
}

TEST(Node, CpuWorkSingleWorkerUnaffectedByFreeCores) {
  Platform p = make_platform(1);
  auto worker = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).cpu_work(3.0);
  };
  p.sim().spawn(worker(p));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 3.0, 1e-9);
}

TEST(Platform, SpecsExposeDas4Types) {
  const NodeSpec t1 = NodeSpec::das4_type1();
  const NodeSpec t2 = NodeSpec::das4_type2();
  EXPECT_EQ(t1.hw_threads, 16);
  EXPECT_EQ(t2.hw_threads, 24);
  EXPECT_GT(t2.ram_bytes, t1.ram_bytes);
}

TEST(TaskGroup, JoinsAllChildren) {
  Platform p = make_platform(1);
  int done = 0;
  auto child = [](Platform& pl, double t, int* n) -> sim::Task<> {
    co_await pl.sim().delay(t);
    ++*n;
  };
  auto parent = [&child](Platform& pl, int* n) -> sim::Task<> {
    sim::TaskGroup group(pl.sim());
    group.spawn(child(pl, 1.0, n));
    group.spawn(child(pl, 2.0, n));
    group.spawn(child(pl, 3.0, n));
    co_await group.wait();
    EXPECT_EQ(*n, 3);
  };
  p.sim().spawn(parent(p, &done));
  p.sim().run();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(p.sim().now(), 3.0);
}

TEST(TaskGroup, PropagatesChildException) {
  Platform p = make_platform(1);
  bool caught = false;
  auto bad_child = [](Platform& pl) -> sim::Task<> {
    co_await pl.sim().delay(0.5);
    util::throw_error("child failed");
  };
  auto parent = [&bad_child](Platform& pl, bool* flag) -> sim::Task<> {
    sim::TaskGroup group(pl.sim());
    group.spawn(bad_child(pl));
    try {
      co_await group.wait();
    } catch (const util::Error&) {
      *flag = true;
    }
  };
  p.sim().spawn(parent(p, &caught));
  p.sim().run();
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace gw
