# Empty dependencies file for gw_gpmr.
# This may be replaced when dependencies are built.
