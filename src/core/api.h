// Glasswing public API: application kernels and job configuration.
//
// Mirrors the paper's two API groups (§III-F): the Configuration API
// (JobConfig) and the Glasswing OpenCL API (map/reduce/combine functions
// consuming and emitting key/value pairs). User functions here are real C++
// functors standing in for OpenCL kernels; they account their computational
// cost through cl::KernelCounters, which drives the device timing model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gwcl/device.h"
#include "util/bytes.h"

namespace gw::core {

// Emits intermediate pairs from a map work-item. The collector behind it is
// selected by JobConfig::output_mode (shared buffer pool or hash table,
// §III-F) and accounts the emit cost (atomics, hash probes) it really incurs.
class MapEmitter {
 public:
  virtual ~MapEmitter() = default;
  virtual void emit(std::string_view key, std::string_view value) = 0;
};

struct MapContext {
  MapEmitter* out;
  cl::KernelCounters* counters;

  void emit(std::string_view key, std::string_view value) {
    out->emit(key, value);
  }
  void charge_ops(std::uint64_t n) { counters->charge_ops(n); }
};

// One map work-item: processes a single input record.
using MapFn = std::function<void(std::string_view record, MapContext&)>;

class ReduceEmitter {
 public:
  virtual ~ReduceEmitter() = default;
  virtual void emit(std::string_view key, std::string_view value) = 0;
};

struct ReduceContext {
  ReduceEmitter* out;
  cl::KernelCounters* counters;

  void emit(std::string_view key, std::string_view value) {
    out->emit(key, value);
  }
  void charge_ops(std::uint64_t n) { counters->charge_ops(n); }
};

// One reduce work-item: a key with all (or a scratch-buffered slice of) its
// values. When a key's value list exceeds JobConfig::max_values_per_kernel,
// the framework re-invokes reduce with the previous partial output injected
// as the first value (the paper's scratch-buffer mechanism, §III-C); reduce
// functions must therefore be associative in that case.
using ReduceFn = std::function<void(std::string_view key,
                                    const std::vector<std::string_view>& values,
                                    ReduceContext&)>;

// Combiner: local reduce over one map chunk's output (§III-F); only
// supported by the hash-table collector, as in the paper.
using CombineFn = ReduceFn;

// Splits a raw input chunk into records. Returns byte offsets of record
// starts; records run to the next offset (or chunk end). Text apps split on
// newlines; TeraSort uses fixed 100-byte records; matrix/KM inputs use
// binary tile/batch framing.
using RecordSplitFn =
    std::function<std::vector<std::uint64_t>(std::string_view chunk)>;

// Maps a key to a global partition index in [0, total_partitions). The
// default hashes the key (the paper's hash partitioner, overridable e.g. by
// TeraSort's sampled range partitioner).
using PartitionFn =
    std::function<std::uint32_t(std::string_view key, std::uint32_t total)>;

PartitionFn default_hash_partitioner();

// Newline record splitter for text inputs.
std::vector<std::uint64_t> split_lines(std::string_view chunk);

// An application: kernels plus framing hooks.
struct AppKernels {
  std::string name;
  MapFn map;
  std::optional<CombineFn> combine;   // requires hash-table output mode
  std::optional<ReduceFn> reduce;     // absent for TeraSort-style jobs
  RecordSplitFn split_records;        // defaults to split_lines
  PartitionFn partition;              // defaults to hash partitioner
  // Fixed record length in bytes (TeraSort, binary vectors/tiles); 0 means
  // newline-delimited text. Drives split alignment so no record straddles
  // two splits.
  std::uint64_t fixed_record_size = 0;
  // Associativity/commutativity contract for `combine`: true declares that
  // applying the combiner over any grouping/ordering of a key's values
  // (then reducing) yields byte-identical output to reducing the raw
  // values. Required for the hierarchical (node/rack) combining tiers,
  // which re-combine already-combined partials across map tasks and nodes.
  bool combine_associative = false;
};

enum class OutputMode {
  kSharedPool,  // bump-allocated output buffer: one atomic per emit
  kHashTable,   // per-key chains: probes + per-value atomic; enables combiner
};

// Hierarchical combining tiers (beyond the per-chunk combiner):
//   kOff  — legacy push shuffle, byte-identical event order.
//   kNode — a per-node combiner merges duplicate keys across ALL map tasks
//           on the node before runs leave for remote partitions.
//   kRack — node combining plus a rack-level aggregation hop: one
//           designated node per rack re-combines the rack's extra-rack
//           shuffle streams and forwards a single deduplicated stream
//           across the core switch.
// Requires an app combine function declared combine_associative; the
// runtime silently degrades the mode otherwise (see GlasswingRuntime::run).
enum class CombineMode { kOff = 0, kNode = 1, kRack = 2 };

// Host-side processing rates (bytes/s per thread and fixed per-item costs)
// for pipeline work executed by host threads rather than the compute device.
struct HostCosts {
  double sort_bytes_per_s = 120e6;
  double serialize_bytes_per_s = 450e6;
  double compress_bytes_per_s = 280e6;
  double decompress_bytes_per_s = 550e6;
  double merge_bytes_per_s = 220e6;
  double partition_pair_overhead_s = 40e-9;  // decode one k/v occurrence
  double partition_key_overhead_s = 60e-9;   // decode one key group
};

struct JobConfig {
  // Input/output.
  std::vector<std::string> input_paths;
  std::string output_path;
  std::uint64_t split_size = 4ull << 20;

  // Pipeline shape (§III-D): 1 = single, 2 = double, 3 = triple buffering.
  int buffering = 2;

  // Map output collection (§III-F).
  OutputMode output_mode = OutputMode::kHashTable;
  bool use_combiner = true;

  // Intermediate data management (§III-B, §IV-B3).
  int partitions_per_node = 8;      // P
  int partitioner_threads = 4;      // N
  int merger_threads = 0;           // 0 = match partitions_per_node
  std::uint64_t cache_threshold_bytes = 24ull << 20;
  int max_disk_runs = 8;

  // --- memory governor / external shuffle-sort ---
  // Per-node memory budget for pipeline buffers, the intermediate-store run
  // cache and merge scratch. 0 = ungoverned: the legacy unbounded-memory
  // data path, byte-identical to previous releases. Nonzero budgets make
  // every buffer-holding component acquire bytes from per-stage pools
  // (core::MemoryGovernor), blocking deterministically under pressure; the
  // store spills sorted runs to disk and consolidates them with a
  // multi-level merge whose fan-in derives from the merge pool budget:
  //   fan_in = max(2, merge_pool_bytes / merge_io_buffer_bytes - 1)
  // (one i/o buffer per input run plus one for the merged output).
  std::uint64_t node_memory_bytes = 0;
  // Streaming i/o buffer granularity for budget-governed merges.
  std::uint64_t merge_io_buffer_bytes = 256ull << 10;
  // Disk bandwidth override for spill writes and spill-merge i/o
  // (bytes/s, applied to both directions); 0 = the node's disk spec.
  double spill_bandwidth_bytes_per_s = 0;

  bool governed() const { return node_memory_bytes > 0; }

  // --- hierarchical combining (node / rack tiers) ---
  // Default off: the push shuffle keeps its legacy byte-identical event
  // order. kNode/kRack require an associative app combiner (and kRack a
  // NetworkProfile rack_size); the runtime normalizes impossible requests
  // down (kRack -> kNode -> kOff) instead of failing.
  CombineMode combine_mode = CombineMode::kOff;
  // Ungoverned runs: buffered pre-combine bytes per node before a combine
  // flush. Governed runs use the governor's combine pool instead.
  std::uint64_t combine_buffer_bytes = 4ull << 20;

  // Reduce pipeline (§III-C, §IV-B4).
  int concurrent_keys = 4096;
  int keys_per_thread = 8;
  std::uint64_t max_values_per_kernel = 1ull << 20;

  // Device launch tuning (the paper's per-device knobs).
  cl::LaunchConfig map_launch;
  cl::LaunchConfig reduce_launch;

  // Cost model for host-side stages.
  HostCosts host;

  // Replication for job output (TeraSort output uses 1, §IV-A1); 0 keeps
  // the filesystem default.
  int output_replication = 0;

  // Fault injection for exercising task re-execution (§III-E): when
  // `every` = fail_every_nth_map_task > 0, the FIRST attempt of every
  // `every`-th map task — 1-based, i.e. splits with (index + 1) % every ==
  // 0 — fails after its kernel ran; the partial output is discarded and the
  // input split is rescheduled. Retried attempts (attempt > 0) never
  // re-fail, by construction: injection is keyed on attempt == 0.
  // `every` = 1 therefore fails every task exactly once.
  int fail_every_nth_map_task = 0;
  // Reduce-side counterpart with identical semantics: the first attempt of
  // every Nth reduce partition (1-based over global partition ids) fails
  // after its merge work ran and is retried once, with the same retry
  // bookkeeping as the map side.
  int fail_every_nth_reduce_task = 0;

  // --- node-crash fault injection (§III-E) ---
  // Whole-node crash events on the simulated clock, relative to job start.
  // A crashed node loses its intermediate store and unsent map output; the
  // job re-executes its splits on survivors and reassigns its reduce
  // partitions. restart_time < 0 = no restart (a restarted node comes back
  // EMPTY and only serves as DFS placement target).
  struct CrashEvent {
    int node = -1;
    double time = 0;          // seconds after job start
    double restart_time = -1; // seconds after job start; < 0 = none
  };
  std::vector<CrashEvent> crash_events;
  // Straggler speculation: clone the lowest-indexed in-flight split onto an
  // idle node once no fresh work remains; first finisher commits, the
  // loser's duplicate output is dropped by the dedup layer.
  bool speculate = false;
  // JobTracker-style failure-detection timeout: synthetic EOS frames for a
  // dead sender are injected this long after the crash, giving the dead
  // node's in-flight wire traffic time to drain.
  double crash_detection_delay_s = 20e-3;
  // Safety valve for pathological crash schedules: maximum number of
  // recovery rounds before the job aborts.
  int max_recovery_rounds = 8;
  // Set by core::JobDag (>= 0 = this job is round N of a multi-round DAG):
  // the tracer is not cleared between rounds (the trace covers the whole
  // DAG, with one kRound span per executed job), nodes dead at job start
  // are tolerated, and input data loss is survivable — lost splits are
  // skipped and counted in JobStats::input_splits_lost so the DAG driver
  // can rewind to the last round whose inputs still exist. Single jobs
  // (-1) keep the legacy behavior: data loss is fatal.
  int dag_round = -1;

  // --- multi-tenant scheduling (core::Scheduler) ---
  // Set by the scheduler when this job is one of N concurrent jobs sharing
  // the cluster (-1 = legacy single-job run, byte-identical event order).
  // A scheduled job:
  //   * owns the port namespace [port_base, port_base + kPortJobStride)
  //     (port_base = kPortJobStride * (job_id + 1)); all its private
  //     services (shuffle, rack-agg, broadcast, recovery rounds) are
  //     addressed at port_base + the legacy port enum value. DFS traffic
  //     stays on the shared kPortDfs.
  //   * never clears the tracer and scopes its span names with
  //     `trace_scope` so concurrent jobs' spans stay distinguishable.
  //   * tolerates nodes dead at admission (a job admitted after another
  //     tenant's crash starts degraded, like a DAG round).
  //   * tears down only its own port range (scoped purge / clear_expected /
  //     check_quiesced) so resident neighbours are untouched.
  int job_id = -1;
  // Tenant the job is accounted to (scheduler bookkeeping only).
  int tenant = 0;
  // Priority class for Policy::kPriority: lower value = more urgent.
  int priority = 0;
  // First port of the job's private namespace; 0 = legacy shared ports.
  int port_base = 0;
  // Prefix for job-scoped trace names (e.g. "j3."); empty = legacy names.
  std::string trace_scope;
  // Set by the scheduler when ANY resident job can crash nodes: every job
  // sharing the cluster must run the fault-tolerant protocol (ledger,
  // expected-sender registry, park barrier) or a neighbour's crash would
  // hang its shuffle streams.
  bool expect_crashes = false;
  // Set by the scheduler when the job may be suspended mid-run: the job
  // arms the map-output ledger and runs the fault-tolerant protocol so its
  // durable work can be replayed by a later residency. Combining is forced
  // off (re-fed ledger runs use raw shuffle framing).
  bool preemptable = false;

  bool scheduled() const { return job_id >= 0; }

  int effective_merger_threads() const {
    return merger_threads > 0 ? merger_threads : partitions_per_node;
  }
  bool fault_tolerant() const {
    return !crash_events.empty() || speculate || expect_crashes || preemptable;
  }
};

// Per-stage busy times measured by the pipeline instrumentation; the basis
// of Tables II/III and Figures 4/5.
struct StageBreakdown {
  double input = 0;
  double stage = 0;
  double kernel = 0;
  double retrieve = 0;
  double partition = 0;
  double map_elapsed = 0;
  double merge_delay = 0;
  double reduce_input = 0;
  double reduce_stage = 0;
  double reduce_kernel = 0;
  double reduce_retrieve = 0;
  double reduce_output = 0;
  double reduce_elapsed = 0;
};

struct JobStats {
  std::uint64_t map_task_retries = 0;
  std::uint64_t reduce_task_retries = 0;
  // --- node-crash recovery (§III-E) ---
  std::uint64_t tasks_reexecuted = 0;      // lost splits re-run on survivors
  std::uint64_t partitions_reassigned = 0; // reduce partitions moved off dead nodes
  std::uint64_t blocks_rereplicated = 0;   // DFS background copies completed
  std::uint64_t dfs_replicas_lost = 0;     // block replicas dropped at crashes
  std::uint64_t recovery_rounds = 0;       // map-recovery rounds executed
  std::uint64_t duplicate_runs_dropped = 0;  // dedup hits from re-execution
  std::uint64_t speculative_wins = 0;      // clones that committed first
  std::uint64_t speculative_losses = 0;    // clones beaten by the original
  // Input splits whose data vanished mid-job (every replica / pinned host
  // dead). Only possible in DAG rounds (JobConfig::dag_round >= 0), where
  // the driver reacts by rewinding; always 0 for single jobs.
  std::uint64_t input_splits_lost = 0;
  std::uint64_t input_records = 0;
  std::uint64_t intermediate_pairs = 0;
  std::uint64_t intermediate_bytes = 0;   // serialized, pre-compression
  std::uint64_t intermediate_stored = 0;  // after compression
  std::uint64_t output_pairs = 0;
  std::uint64_t shuffle_bytes_remote = 0;
  // Remote network traffic this job put on the wire, split by transport
  // class (net::TrafficClass): intermediate-data shuffle, DFS block
  // traffic (output writes, remote reads, replication), and protocol
  // control frames (EOS markers).
  std::uint64_t net_shuffle_bytes = 0;
  std::uint64_t net_dfs_bytes = 0;
  std::uint64_t net_control_bytes = 0;
  // Intra-rack bytes feeding rack aggregators (TrafficClass::kRackAgg);
  // never crosses the core switch.
  std::uint64_t net_rack_agg_bytes = 0;
  // --- hierarchical combining ---
  std::uint64_t combine_in_bytes = 0;   // stored bytes entering combine passes
  std::uint64_t combine_out_bytes = 0;  // stored bytes leaving combine passes
  std::uint64_t spills = 0;
  std::uint64_t merges = 0;
  // --- memory governor (external shuffle/sort) ---
  std::uint64_t spill_bytes = 0;       // stored bytes written by spills
  std::uint64_t merge_levels = 0;      // deepest multi-level merge tree
  std::uint64_t peak_mem_bytes = 0;    // max governed occupancy on any node
  double mem_stall_seconds = 0;        // time blocked on memory pools (sum)
  // Input runs consumed across all intermediate-store merges; divided by
  // `merges` this gives the average merge fan-in.
  std::uint64_t merge_fanin_runs = 0;
  // Collector hash-table probes during map (0 in shared-pool mode).
  std::uint64_t hash_table_probes = 0;
  cl::KernelStats map_kernel;
  cl::KernelStats reduce_kernel;
};

struct JobResult {
  double elapsed_seconds = 0;
  double map_phase_seconds = 0;
  double merge_delay_seconds = 0;
  double reduce_phase_seconds = 0;
  StageBreakdown stages;  // aggregated across nodes (max busy time per stage)
  JobStats stats;
  std::vector<std::string> output_files;
  // The job asked for combining but the runtime had to weaken or disable it
  // (shared per-node governor, preemptable run, degraded cluster, ...).
  bool combine_degraded = false;
  // The run wound down early at a task boundary after a preemption request;
  // output_files/stats cover only the work done so far and the remainder
  // was captured into the job's PreemptControl::state.
  bool suspended = false;
};

}  // namespace gw::core
