#include "gwdfs/pinned.h"

#include <algorithm>
#include <utility>

#include "simnet/transport.h"
#include "util/error.h"

namespace gw::dfs {

PinnedFs::PinnedFs(cluster::Platform& platform, FileSystem& base,
                   std::uint64_t node_budget_bytes)
    : platform_(platform), base_(base), budget_(node_budget_bytes) {
  node_bytes_.assign(static_cast<std::size_t>(platform_.num_nodes()), 0);
  crash_listener_id_ = platform_.sim().add_crash_listener(
      [this](int node, bool alive) {
        if (!alive) on_crash(node);
      });
}

PinnedFs::~PinnedFs() {
  if (crash_listener_id_ >= 0) {
    platform_.sim().remove_crash_listener(crash_listener_id_);
  }
}

bool PinnedFs::fits(int node, std::uint64_t bytes) const {
  if (budget_ == 0) return true;
  return node_bytes_[static_cast<std::size_t>(node)] + bytes <= budget_;
}

void PinnedFs::account(int node, std::uint64_t bytes) {
  std::uint64_t& held = node_bytes_[static_cast<std::size_t>(node)];
  held += bytes;
  peak_ = std::max(peak_, held);
}

void PinnedFs::drop_cached(const std::string& path) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (std::get<1>(it->first) == path) {
      node_bytes_[static_cast<std::size_t>(std::get<0>(it->first))] -=
          it->second.size();
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void PinnedFs::on_crash(int node) {
  // Pinned outputs hosted on the dead node are unrecoverable: keep the
  // tombstone so reads throw DataLossError and the DAG driver can rewind.
  for (auto& [path, file] : files_) {
    if (file.host != node || file.lost) continue;
    node_bytes_[static_cast<std::size_t>(node)] -= file.data.size();
    file.data = util::Bytes();
    file.lost = true;
    ++lost_files_;
  }
  // Cached input ranges just vanish with the node's memory; the base fs
  // still has the data, so this costs re-reads, not correctness.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (std::get<0>(it->first) == node) {
      node_bytes_[static_cast<std::size_t>(node)] -= it->second.size();
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

sim::Task<> PinnedFs::write(int node, const std::string& path,
                            util::Bytes data) {
  drop_cached(path);
  if (!pin_writes_) {
    co_await base_.write(node, path, std::move(data));
    co_return;
  }
  // Replays overwrite: drop any stale (possibly lost) pin first.
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (!it->second.lost) {
      node_bytes_[static_cast<std::size_t>(it->second.host)] -=
          it->second.data.size();
    }
    files_.erase(it);
  }
  if (!fits(node, data.size())) {
    // Budget full: spill through to the base fs (a checkpoint write in
    // all but name). The file stays crash-safe, just not free.
    ++pin_spills_;
    base_.remove(path);
    co_await base_.write(node, path, std::move(data));
    co_return;
  }
  // Pinning keeps the writer's already-materialized buffer: no disk, no
  // wire, no copy — the whole point of the pinned edge.
  account(node, data.size());
  files_[path] = PinFile{std::move(data), node, false};
  co_return;
}

sim::Task<util::Bytes> PinnedFs::read(int node, const std::string& path,
                                      std::uint64_t offset,
                                      std::uint64_t len) {
  auto it = files_.find(path);
  if (it != files_.end()) {
    PinFile& file = it->second;
    if (file.lost || !platform_.sim().node_alive(file.host)) {
      throw DataLossError("pinned data lost: " + path);
    }
    GW_CHECK_MSG(offset + len <= file.data.size(),
                 "pinned read past end: " + path);
    if (file.host != node) {
      // Remote pull: charge the wire as DFS-class traffic. A NodeDownError
      // here means the reader itself died mid-request; the zombie's result
      // is discarded by the pipeline, so hand the bytes back uncharged.
      try {
        co_await platform_.transport().transfer(
            file.host, node, net::kPortDfs, net::TrafficClass::kDfs, len);
        remote_pin_bytes_ += len;
      } catch (const net::NodeDownError&) {
        if (!platform_.sim().node_alive(file.host)) {
          throw DataLossError("pinned data lost: " + path);
        }
      }
    }
    co_return util::Bytes(
        file.data.begin() + static_cast<std::ptrdiff_t>(offset),
        file.data.begin() + static_cast<std::ptrdiff_t>(offset + len));
  }
  if (cache_reads_) {
    const CacheKey key{node, path, offset, len};
    auto hit = cache_.find(key);
    if (hit != cache_.end()) {
      cache_hit_bytes_ += len;
      co_return hit->second;
    }
    util::Bytes data = co_await base_.read(node, path, offset, len);
    if (fits(node, data.size())) {
      account(node, data.size());
      cache_[key] = data;
    }
    co_return data;
  }
  co_return co_await base_.read(node, path, offset, len);
}

bool PinnedFs::exists(const std::string& path) const {
  auto it = files_.find(path);
  if (it != files_.end()) return !it->second.lost;
  return base_.exists(path);
}

std::uint64_t PinnedFs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (it->second.lost) {
      throw DataLossError("pinned data lost: " + path);
    }
    return it->second.data.size();
  }
  return base_.file_size(path);
}

std::vector<std::string> PinnedFs::list(const std::string& prefix) const {
  std::vector<std::string> out = base_.list(prefix);
  for (const auto& [path, file] : files_) {
    if (file.lost) continue;
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void PinnedFs::remove(const std::string& path) {
  drop_cached(path);
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (!it->second.lost) {
      node_bytes_[static_cast<std::size_t>(it->second.host)] -=
          it->second.data.size();
    }
    files_.erase(it);
  }
  base_.remove(path);
}

std::vector<int> PinnedFs::block_locations(const std::string& path,
                                           std::uint64_t index) const {
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (it->second.lost) {
      throw DataLossError("pinned data lost: " + path);
    }
    return {it->second.host};
  }
  return base_.block_locations(path, index);
}

bool PinnedFs::pinned(const std::string& path) const {
  auto it = files_.find(path);
  return it != files_.end() && !it->second.lost;
}

bool PinnedFs::lost(const std::string& path) const {
  auto it = files_.find(path);
  return it != files_.end() && it->second.lost;
}

std::uint64_t PinnedFs::pinned_bytes(int node) const {
  return node_bytes_.at(static_cast<std::size_t>(node));
}

}  // namespace gw::dfs
