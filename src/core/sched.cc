#include "core/sched.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/memory.h"
#include "simnet/fabric.h"
#include "util/error.h"

namespace gw::core {

SchedPolicy parse_sched_policy(std::string_view name) {
  if (name == "fifo") return SchedPolicy::kFifo;
  if (name == "fair") return SchedPolicy::kFair;
  if (name == "priority") return SchedPolicy::kPriority;
  GW_CHECK_MSG(false, "unknown scheduling policy (fifo|fair|priority)");
  return SchedPolicy::kFifo;
}

const char* sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kFair: return "fair";
    case SchedPolicy::kPriority: return "priority";
  }
  return "?";
}

Scheduler::Scheduler(GlasswingRuntime& runtime, cluster::Platform& platform,
                     dfs::FileSystem& fs, SchedulerConfig config)
    : runtime_(runtime), platform_(platform), fs_(fs),
      config_(std::move(config)) {
  GW_CHECK(config_.map_slots_per_node > 0);
  GW_CHECK(config_.reduce_slots_per_node > 0);
  GW_CHECK(config_.max_resident_jobs > 0);
  epoch_ = platform_.sim().now();
  const int n = platform_.num_nodes();
  for (int i = 0; i < n; ++i) {
    map_slots_.push_back(std::make_unique<sim::Resource>(
        platform_.sim(), config_.map_slots_per_node));
    reduce_slots_.push_back(std::make_unique<sim::Resource>(
        platform_.sim(), config_.reduce_slots_per_node));
    env_.map_slots.push_back(map_slots_.back().get());
    env_.reduce_slots.push_back(reduce_slots_.back().get());
  }
  if (config_.node_memory_bytes > 0) {
    // One budget per NODE, shared by every tenant resident on it. No
    // combine pool: the split is fixed before the tenant mix is known
    // (run_async degrades combine_mode accordingly).
    for (int i = 0; i < n; ++i) {
      governors_.push_back(std::make_unique<MemoryGovernor>(
          platform_.sim(), config_.node_memory_bytes,
          /*with_combine_pool=*/false));
      env_.governors.push_back(governors_.back().get());
    }
  }
}

Scheduler::~Scheduler() = default;

int Scheduler::submit(JobRequest req) {
  const int id = static_cast<int>(requests_.size());
  GW_CHECK_MSG(req.arrival_s >= 0, "arrival in the past");
  if (!req.config.crash_events.empty()) any_crashes_ = true;
  ScheduledJob r;
  r.job_id = id;
  r.name = req.name;
  r.tenant = req.tenant;
  r.priority = req.priority;
  r.arrival_s = req.arrival_s;
  results_.push_back(std::move(r));
  requests_.push_back(std::move(req));
  platform_.sim().spawn(arrive(id));
  return id;
}

sim::Task<void> Scheduler::arrive(int id) {
  auto& sim = platform_.sim();
  const double at =
      epoch_ + requests_[static_cast<std::size_t>(id)].arrival_s;
  if (at > sim.now()) co_await sim.delay(at - sim.now());
  if (config_.max_queued_jobs > 0 &&
      static_cast<int>(queue_.size()) >= config_.max_queued_jobs) {
    results_[static_cast<std::size_t>(id)].rejected = true;
    ++rejected_;
    ++completed_;
    co_return;
  }
  queue_.push_back(id);
  queue_peak_ = std::max(queue_peak_, static_cast<int>(queue_.size()));
  pump();
}

double Scheduler::tenant_service(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.service_s;
}

std::size_t Scheduler::pick_next() const {
  GW_CHECK(!queue_.empty());
  switch (config_.policy) {
    case SchedPolicy::kFifo:
      // queue_ is arrival-ordered: arrivals enqueue in event order, which
      // the simulation's (time, seq) heap keeps deterministic.
      return 0;
    case SchedPolicy::kFair: {
      // Least accumulated tenant service first; ties keep arrival order.
      std::size_t best = 0;
      double best_service = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const double s =
            tenant_service(results_[static_cast<std::size_t>(queue_[i])].tenant);
        if (s < best_service) {
          best_service = s;
          best = i;
        }
      }
      return best;
    }
    case SchedPolicy::kPriority: {
      // Strict classes, arrival order inside a class. Aging (if enabled)
      // promotes a job one class per full interval waited so a busy hot
      // class cannot starve colder ones indefinitely.
      const double now = platform_.sim().now() - epoch_;
      std::size_t best = 0;
      double best_class = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const auto& r = results_[static_cast<std::size_t>(queue_[i])];
        double cls = r.priority;
        if (config_.priority_aging_s > 0) {
          cls -= std::floor((now - r.arrival_s) / config_.priority_aging_s);
        }
        if (cls < best_class) {
          best_class = cls;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

void Scheduler::pump() {
  while (resident_ < config_.max_resident_jobs && !queue_.empty()) {
    const std::size_t i = pick_next();
    const int id = queue_[i];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    ++resident_;
    resident_peak_ = std::max(resident_peak_, resident_);
    platform_.sim().spawn(run_job(id));
  }
}

sim::Task<void> Scheduler::run_job(int id) {
  auto& sim = platform_.sim();
  JobRequest& req = requests_[static_cast<std::size_t>(id)];
  ScheduledJob& r = results_[static_cast<std::size_t>(id)];
  r.admit_s = sim.now() - epoch_;
  // max() absorbs the epsilon of epoch addition/subtraction round-trips.
  r.queue_wait_s = std::max(0.0, r.admit_s - r.arrival_s);

  JobConfig cfg = req.config;
  cfg.job_id = id;
  cfg.tenant = req.tenant;
  cfg.priority = req.priority;
  cfg.port_base = net::kPortJobStride * (id + 1);
  cfg.trace_scope = "j" + std::to_string(id) + ".";
  // If ANY tenant injects node crashes, every job sharing the cluster must
  // run the fault-tolerant shuffle protocol, or a neighbour's crash would
  // hang its streams (submissions are all registered before run_all, so
  // any_crashes_ is final here).
  cfg.expect_crashes = any_crashes_;

  dfs::FileSystem* fs = req.fs_override != nullptr ? req.fs_override : &fs_;
  try {
    r.result = co_await runtime_.run_async(req.app, std::move(cfg), fs, &env_);
  } catch (const std::exception&) {
    r.failed = true;
    ++failed_;
  }
  r.finish_s = sim.now() - epoch_;
  r.latency_s = r.finish_s - r.arrival_s;

  TenantStats& t = tenants_[req.tenant];
  t.tenant = req.tenant;
  ++t.jobs_finished;
  t.service_s += r.finish_s - r.admit_s;
  t.wait_s += r.queue_wait_s;

  --resident_;
  ++completed_;
  pump();
}

void Scheduler::run_all() {
  platform_.sim().run();
  GW_CHECK_MSG(completed_ == static_cast<int>(requests_.size()),
               "scheduler hang: jobs pending after event queue drained");
}

std::vector<TenantStats> Scheduler::tenant_stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [_, t] : tenants_) out.push_back(t);
  return out;
}

TrafficGen::TrafficGen(std::uint64_t seed, double jobs_per_s)
    : rng_(seed), rate_(jobs_per_s) {
  GW_CHECK(jobs_per_s > 0);
}

double TrafficGen::next_arrival_s() {
  // Inverse-CDF exponential draw; log1p(-u) keeps precision near u = 0.
  clock_ += -std::log1p(-rng_.uniform()) / rate_;
  return clock_;
}

std::uint64_t TrafficGen::pick(std::uint64_t n) { return rng_.below(n); }

}  // namespace gw::core
