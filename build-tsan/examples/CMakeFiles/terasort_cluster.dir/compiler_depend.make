# Empty compiler generated dependencies file for terasort_cluster.
# This may be replaced when dependencies are built.
