file(REMOVE_RECURSE
  "CMakeFiles/gw_hadoop.dir/hadoop/hadoop.cc.o"
  "CMakeFiles/gw_hadoop.dir/hadoop/hadoop.cc.o.d"
  "libgw_hadoop.a"
  "libgw_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
