file(REMOVE_RECURSE
  "CMakeFiles/host_path_test.dir/host_path_test.cc.o"
  "CMakeFiles/host_path_test.dir/host_path_test.cc.o.d"
  "host_path_test"
  "host_path_test.pdb"
  "host_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
