// Table III: K-Means map-pipeline breakdown on one Type-1 node (local FS)
// for the three collector configurations, on (a) the CPU and (b) the
// GTX480. Paper effects to reproduce: KM is kernel-dominated everywhere;
// on the GPU the Stage/Retrieve rows appear (discrete memory) and the
// hash+combiner configuration is the best overall because extra
// intermediate volume stresses the GPU's PCIe path and the merge/reduce
// phases; partitioning time drops on the GPU because kernel threads no
// longer contend for host cores (§IV-B2).
#include "apps/kmeans.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kPoints = bench::scaled_bytes(250000);

core::JobResult run_config(const util::Bytes& points,
                           const core::AppKernels& app, cl::DeviceSpec device,
                           core::OutputMode mode, bool combiner) {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/points"};
  cfg.output_path = "/out";
  cfg.split_size = 256 << 10;
  cfg.output_mode = mode;
  cfg.use_combiner = combiner;
  cfg.cache_threshold_bytes = 2 << 20;
  core::JobResult result;
  bench::RunOpts opts;
  opts.local_fs = true;
  opts.device = std::move(device);
  bench::run_glasswing(1, app, points, cfg, opts, &result);
  return result;
}

void print_table(const char* title, const core::JobResult& i,
                 const core::JobResult& ii, const core::JobResult& iii,
                 bool show_staging) {
  std::printf("\n=== %s ===\n", title);
  bench::print_stage_breakdown({"hash+comb", "hash", "simple"},
                               {&i, &ii, &iii}, show_staging);
}

}  // namespace

int main(int argc, char** argv) {
  apps::KmeansConfig km{.k = 512, .dims = 4};  // paper: 1K centers (scaled)
  const auto centers = apps::generate_centers(km, 55);
  const util::Bytes points = apps::generate_points(km, kPoints, 66);
  const auto app = apps::kmeans(km, centers);

  const auto cpu = cl::DeviceSpec::cpu_dual_e5620();
  const core::JobResult ci =
      run_config(points, app.kernels, cpu, core::OutputMode::kHashTable, true);
  const core::JobResult cii =
      run_config(points, app.kernels, cpu, core::OutputMode::kHashTable, false);
  const core::JobResult ciii = run_config(points, app.kernels, cpu,
                                          core::OutputMode::kSharedPool, false);
  print_table("Table III(a): KM map pipeline on CPU (seconds)", ci, cii, ciii,
              false);

  const auto gpu = cl::DeviceSpec::gtx480();
  const core::JobResult gi =
      run_config(points, app.kernels, gpu, core::OutputMode::kHashTable, true);
  const core::JobResult gii =
      run_config(points, app.kernels, gpu, core::OutputMode::kHashTable, false);
  const core::JobResult giii = run_config(points, app.kernels, gpu,
                                          core::OutputMode::kSharedPool, false);
  print_table("Table III(b): KM map pipeline on GTX480 (seconds)", gi, gii,
              giii, true);

  std::printf(
      "\nShape checks (paper Table III):\n"
      "  GPU kernel beats CPU kernel (hash+comb): %.3fs vs %.3fs (%s)\n"
      "  partitioning cheaper on GPU (no core contention): %.3fs vs %.3fs "
      "(%s)\n"
      "  GPU total: hash+comb best config: %.3f vs %.3f (hash) vs %.3f "
      "(simple)\n",
      gi.stages.kernel, ci.stages.kernel,
      gi.stages.kernel < ci.stages.kernel ? "OK" : "MISMATCH",
      gi.stages.partition, ci.stages.partition,
      gi.stages.partition <= ci.stages.partition ? "OK" : "MISMATCH",
      gi.elapsed_seconds, gii.elapsed_seconds, giii.elapsed_seconds);

  std::printf("\n");
  bench::print_host_path_summary("cpu/hash+comb", ci);
  bench::print_host_path_summary("cpu/hash", cii);
  bench::print_host_path_summary("cpu/simple", ciii);
  bench::print_host_path_summary("gpu/hash+comb", gi);
  bench::print_host_path_summary("gpu/hash", gii);
  bench::print_host_path_summary("gpu/simple", giii);

  bench::print_traffic_split("cpu/hash+comb", ci);
  bench::print_traffic_split("cpu/hash", cii);
  bench::print_traffic_split("cpu/simple", ciii);
  bench::print_traffic_split("gpu/hash+comb", gi);
  bench::print_traffic_split("gpu/hash", gii);
  bench::print_traffic_split("gpu/simple", giii);

  bench::register_point("Table3/KM-CPU/hash+comb",
                        [t = ci.elapsed_seconds](benchmark::State&) { return t; });
  bench::register_point("Table3/KM-GPU/hash+comb",
                        [t = gi.elapsed_seconds](benchmark::State&) { return t; });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
