// Fault-injection matrix (§III-E): node crashes during map, shuffle and
// reduce must leave the job output byte-identical to a failure-free run,
// with deterministic recovery statistics that do not depend on the host
// thread count (GW_THREADS). Also covers task-level injection (map retry
// with the combiner enabled, reduce retry), node restart, straggler
// speculation, and the Hadoop baseline's rejection of fault configs.
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "apps/wordcount.h"
#include "baselines/hadoop/hadoop.h"
#include "core/job.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

constexpr int kNodes = 4;

Platform make_platform() {
  return Platform(ClusterSpec::homogeneous(
      kNodes, NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
}

void stage(Platform& p, dfs::Dfs& fs, const std::string& path,
           const util::Bytes& data) {
  p.sim().spawn([](dfs::Dfs& f, std::string pa, util::Bytes c) -> sim::Task<> {
    co_await f.write_distributed(pa, std::move(c));
  }(fs, path, data));
  p.sim().run();
}

// Recovery-relevant counters that must be bit-identical across GW_THREADS.
using FaultStats =
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
               std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>;

FaultStats fault_stats(const core::JobStats& s) {
  return {s.tasks_reexecuted,     s.partitions_reassigned,
          s.recovery_rounds,      s.duplicate_runs_dropped,
          s.dfs_replicas_lost,    s.blocks_rereplicated,
          s.map_task_retries,     s.reduce_task_retries};
}

// Per-node recovery-span shape (count and sim-time extent) plus the set of
// span names: a cheap but strict proxy for "identical recovery event order"
// that only uses simulated-clock quantities.
struct TraceShape {
  std::uint64_t recovery_spans = 0;
  double recovery_first = 0;
  double recovery_last = 0;
  std::vector<std::string> names;
  bool operator==(const TraceShape&) const = default;
};

struct RunOutcome {
  core::JobResult result;
  std::map<std::string, util::Bytes> files;  // output path -> raw bytes
  std::string trace_error;                   // Tracer::validate()
  std::vector<TraceShape> shape;             // per node
  double job_first = 0, job_last = 0;        // job span extent (node 0)
};

template <typename Tweak>
RunOutcome run_wc(const util::Bytes& text, Tweak tweak) {
  Platform p = make_platform();
  dfs::Dfs fs(p, dfs::DfsConfig{});
  stage(p, fs, "/in", text);
  core::JobConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 64 << 10;
  tweak(cfg);
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  RunOutcome out;
  out.result = rt.run(apps::wordcount().kernels, cfg);
  const auto& tr = p.sim().tracer();
  out.trace_error = tr.validate();
  const auto job = tr.occupancy(0, "job");
  out.job_first = job.first_begin;
  out.job_last = job.last_end;
  for (int n = 0; n < kNodes; ++n) {
    const auto rec = tr.occupancy(n, "phase.recovery");
    out.shape.push_back({rec.spans, rec.first_begin, rec.last_end,
                         tr.span_names(n)});
  }
  for (const auto& path : out.result.output_files) {
    util::Bytes contents;
    p.sim().spawn([](dfs::Dfs& f, std::string pa,
                     util::Bytes* o) -> sim::Task<> {
      *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
    }(fs, path, &contents));
    p.sim().run();
    out.files[path] = std::move(contents);
  }
  return out;
}

RunOutcome run_wc(const util::Bytes& text) {
  return run_wc(text, [](core::JobConfig&) {});
}

util::Bytes corpus() { return apps::generate_wiki_text(384 << 10, 97); }

// ---- crash matrix: phase x GW_THREADS ----

TEST(FaultMatrix, CrashByteIdenticalAcrossPhasesAndThreadCounts) {
  const util::Bytes text = corpus();
  const RunOutcome clean = run_wc(text);
  ASSERT_FALSE(clean.files.empty());
  ASSERT_TRUE(clean.trace_error.empty()) << clean.trace_error;

  // Phase midpoints from the failure-free run (sim clock, relative to job
  // start) so the matrix stays valid if the cost model shifts.
  const double map_end = clean.result.map_phase_seconds;
  const double merge_end = map_end + clean.result.merge_delay_seconds;
  const std::vector<std::pair<std::string, double>> kills = {
      {"map", 0.5 * map_end},
      {"shuffle", map_end + 0.5 * clean.result.merge_delay_seconds},
      {"reduce", merge_end + 0.5 * clean.result.reduce_phase_seconds},
  };

  std::map<std::string, FaultStats> reference_stats;
  std::map<std::string, std::vector<TraceShape>> reference_shape;
  for (const int threads : {1, 2, 8}) {
    util::ThreadPool::reset_global(threads);
    for (const auto& [phase, when] : kills) {
      SCOPED_TRACE("crash during " + phase + ", GW_THREADS=" +
                   std::to_string(threads));
      const RunOutcome faulty = run_wc(text, [&](core::JobConfig& cfg) {
        cfg.crash_events.push_back({.node = 2, .time = when});
      });
      EXPECT_TRUE(faulty.trace_error.empty()) << faulty.trace_error;
      EXPECT_EQ(faulty.files, clean.files);
      const auto& s = faulty.result.stats;
      EXPECT_GE(s.recovery_rounds + s.partitions_reassigned, 1u);
      if (phase == "map") {
        EXPECT_GT(s.tasks_reexecuted, 0u);
        EXPECT_GT(s.dfs_replicas_lost, 0u);
      }
      // Recovery spans must nest inside the job span and appear only on
      // survivors of the crash.
      for (int n = 0; n < kNodes; ++n) {
        const TraceShape& ts = faulty.shape[n];
        if (ts.recovery_spans == 0) continue;
        EXPECT_NE(n, 2) << "dead node recorded a recovery span";
        EXPECT_GE(ts.recovery_first, faulty.job_first);
        EXPECT_LE(ts.recovery_last, faulty.job_last);
      }
      // Bit-identical recovery behavior across host thread counts.
      auto [it, inserted] =
          reference_stats.emplace(phase, fault_stats(s));
      if (inserted) {
        reference_shape.emplace(phase, faulty.shape);
      } else {
        EXPECT_EQ(fault_stats(s), it->second);
        EXPECT_EQ(faulty.shape, reference_shape.at(phase));
      }
    }
  }
  util::ThreadPool::reset_global(0);
}

TEST(FaultMatrix, TwoCrashesStillByteIdentical) {
  const util::Bytes text = corpus();
  const RunOutcome clean = run_wc(text);
  const double map_end = clean.result.map_phase_seconds;
  const RunOutcome faulty = run_wc(text, [&](core::JobConfig& cfg) {
    cfg.crash_events.push_back({.node = 2, .time = 0.3 * map_end});
    cfg.crash_events.push_back({.node = 1, .time = 0.8 * map_end});
  });
  EXPECT_TRUE(faulty.trace_error.empty()) << faulty.trace_error;
  EXPECT_EQ(faulty.files, clean.files);
  EXPECT_GE(faulty.result.stats.recovery_rounds, 1u);
  EXPECT_GT(faulty.result.stats.tasks_reexecuted, 0u);
  EXPECT_GT(faulty.result.stats.partitions_reassigned, 0u);
}

TEST(FaultMatrix, RestartedNodeDoesNotPerturbOutput) {
  const util::Bytes text = corpus();
  const RunOutcome clean = run_wc(text);
  const double when = 0.5 * clean.result.map_phase_seconds;
  const RunOutcome faulty = run_wc(text, [&](core::JobConfig& cfg) {
    cfg.crash_events.push_back(
        {.node = 2, .time = when, .restart_time = when + 5e-3});
  });
  EXPECT_TRUE(faulty.trace_error.empty()) << faulty.trace_error;
  EXPECT_EQ(faulty.files, clean.files);
  // The restarted node comes back empty and never rejoins the job.
  EXPECT_GT(faulty.result.stats.tasks_reexecuted, 0u);
  EXPECT_GT(faulty.result.stats.partitions_reassigned, 0u);
}

// ---- straggler speculation ----

TEST(Speculation, CloneDedupKeepsOutputByteIdentical) {
  const util::Bytes text = corpus();
  const RunOutcome clean = run_wc(text);
  const RunOutcome spec = run_wc(text, [](core::JobConfig& cfg) {
    cfg.speculate = true;
  });
  EXPECT_TRUE(spec.trace_error.empty()) << spec.trace_error;
  EXPECT_EQ(spec.files, clean.files);

  // Speculation plus a crash: clones race re-executed splits; dedup must
  // still keep the output exact.
  const RunOutcome both = run_wc(text, [&](core::JobConfig& cfg) {
    cfg.speculate = true;
    cfg.crash_events.push_back(
        {.node = 2, .time = 0.5 * clean.result.map_phase_seconds});
  });
  EXPECT_TRUE(both.trace_error.empty()) << both.trace_error;
  EXPECT_EQ(both.files, clean.files);
  EXPECT_GT(both.result.stats.tasks_reexecuted, 0u);
}

// ---- task-level injection ----

TEST(TaskInjection, MapRetryWithCombinerIsByteIdentical) {
  // Regression: the retried attempt must not reuse the collector the failed
  // attempt already populated — with the combiner on, stale partial sums
  // would double-count. fail_every_nth_map_task = 1 fails every task once.
  const util::Bytes text = corpus();
  const RunOutcome clean = run_wc(text, [](core::JobConfig& cfg) {
    cfg.output_mode = core::OutputMode::kHashTable;
    cfg.use_combiner = true;
  });
  const RunOutcome inj = run_wc(text, [](core::JobConfig& cfg) {
    cfg.output_mode = core::OutputMode::kHashTable;
    cfg.use_combiner = true;
    cfg.fail_every_nth_map_task = 1;
  });
  EXPECT_EQ(inj.files, clean.files);
  // 384 KiB input in 64 KiB splits: six tasks, each failing exactly once.
  EXPECT_EQ(inj.result.stats.map_task_retries, 6u);
}

TEST(TaskInjection, InjectionIsOneBasedSoFirstTaskCanSurvive) {
  // With every=4 and six splits, splits 3 and 7 (1-based 4 and 8) fail:
  // exactly one retry here, and in particular split 0 does NOT fail (the
  // old modulo made `every` >= num_splits always hit split 0).
  const util::Bytes text = corpus();
  const RunOutcome inj = run_wc(text, [](core::JobConfig& cfg) {
    cfg.fail_every_nth_map_task = 4;
  });
  EXPECT_EQ(inj.result.stats.map_task_retries, 1u);
}

TEST(TaskInjection, ReduceRetryIsByteIdentical) {
  const util::Bytes text = corpus();
  const RunOutcome clean = run_wc(text);
  const RunOutcome inj = run_wc(text, [](core::JobConfig& cfg) {
    cfg.fail_every_nth_reduce_task = 2;
  });
  EXPECT_EQ(inj.files, clean.files);
  // 4 nodes x 8 partitions/node = 32 partitions, every 2nd fails once.
  EXPECT_EQ(inj.result.stats.reduce_task_retries, 16u);
  EXPECT_EQ(clean.result.stats.reduce_task_retries, 0u);
}

// ---- baseline guard ----

TEST(HadoopBaseline, RejectsFaultTolerantConfigs) {
  const util::Bytes text = corpus();
  Platform p = make_platform();
  dfs::Dfs fs(p, dfs::DfsConfig{});
  stage(p, fs, "/in", text);
  hadoop::HadoopConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 64 << 10;
  cfg.crash_events.push_back({.node = 1, .time = 1e-3});
  hadoop::HadoopRuntime rt(p, fs);
  EXPECT_THROW(rt.run(apps::wordcount().kernels, cfg), util::Error);
}

}  // namespace
}  // namespace gw
