# Empty compiler generated dependencies file for gw_cluster.
# This may be replaced when dependencies are built.
