# Empty dependencies file for gw_hadoop.
# This may be replaced when dependencies are built.
