# Empty dependencies file for offload_test.
# This may be replaced when dependencies are built.
