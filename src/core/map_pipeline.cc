// Map pipeline: Input -> Stage -> Kernel -> Retrieve -> Partition (§III-A).
#include <algorithm>
#include <memory>

#include "core/combine.h"
#include "core/pipeline.h"
#include "core/stage.h"
#include "util/error.h"

namespace gw::core {

namespace {

constexpr double kRecordSplitBytesPerSec = 1.5e9;  // host-side framing scan

// Items flowing through the pipeline. User-declared constructors per the
// sim.h channel payload rule.
struct StagedChunk {
  StagedChunk(util::Bytes data_in, std::vector<std::uint64_t> offsets_in,
              InputSplit split_in, sim::Resource::Hold hold_in,
              sim::Resource::Hold mem_hold_in, sim::Resource::Hold slot_in)
      : data(std::move(data_in)),
        offsets(std::move(offsets_in)),
        split(std::move(split_in)),
        in_hold(std::move(hold_in)),
        mem_hold(std::move(mem_hold_in)),
        slot_hold(std::move(slot_in)) {}
  StagedChunk() = default;

  util::Bytes data;
  std::vector<std::uint64_t> offsets;  // record start offsets
  InputSplit split;                    // identity, for re-execution
  sim::Resource::Hold in_hold;
  sim::Resource::Hold mem_hold;   // governed: map-pool bytes for `data`
  sim::Resource::Hold slot_hold;  // elastic: per-job map slot for this task
};

struct KernelOut {
  KernelOut(MapChunkOutput out_in, InputSplit split_in,
            sim::Resource::Hold hold_in, sim::Resource::Hold mem_hold_in,
            sim::Resource::Hold slot_in)
      : out(std::move(out_in)),
        split(std::move(split_in)),
        out_hold(std::move(hold_in)),
        mem_hold(std::move(mem_hold_in)),
        slot_hold(std::move(slot_in)) {}
  KernelOut() = default;

  MapChunkOutput out;
  InputSplit split;  // identity, for commit + dedup tagging
  sim::Resource::Hold out_hold;
  sim::Resource::Hold mem_hold;   // governed: map-pool bytes for `out`
  sim::Resource::Hold slot_hold;  // elastic: held until the task completes
};

// Bridges MapContext emits into the group's collector slot.
class GroupEmitter : public MapEmitter {
 public:
  GroupEmitter(MapOutputCollector* col, std::size_t group,
               cl::KernelCounters* c)
      : col_(col), group_(group), c_(c) {}
  void emit(std::string_view key, std::string_view value) override {
    col_->emit(group_, key, value, *c_);
  }

 private:
  MapOutputCollector* col_;
  std::size_t group_;
  cl::KernelCounters* c_;
};

// Reads a split, aligned to record boundaries so no record straddles
// splits: fixed-size records round to multiples; text records extend to the
// newline after the nominal end, and a non-initial split skips the partial
// first line (standard MapReduce input-split semantics).
}  // namespace

sim::Task<util::Bytes> read_aligned_split(dfs::FileSystem& fs, int node,
                                          const AppKernels& app,
                                          const InputSplit& split) {
  const std::uint64_t file_size = fs.file_size(split.path);
  const std::uint64_t rec = app.fixed_record_size;
  if (rec > 0) {
    const std::uint64_t start = (split.offset + rec - 1) / rec * rec;
    std::uint64_t end = (split.offset + split.len + rec - 1) / rec * rec;
    end = std::min(end, file_size / rec * rec);
    if (start >= end) co_return util::Bytes{};
    co_return co_await fs.read(node, split.path, start, end - start);
  }

  // Text records: a line belongs to the split containing its first byte.
  // Read one byte before the split (to detect a line starting exactly at
  // the offset) and look ahead past the end (to finish the last line).
  constexpr std::uint64_t kLookahead = 16 << 10;
  const std::uint64_t read_start = split.offset > 0 ? split.offset - 1 : 0;
  const std::uint64_t read_end =
      std::min(split.offset + split.len + kLookahead, file_size);
  util::Bytes raw = co_await fs.read(node, split.path, read_start,
                                     read_end - read_start);
  std::string_view view(reinterpret_cast<const char*>(raw.data()), raw.size());
  std::size_t start = 0;
  if (split.offset > 0) {
    // view[0] is the byte before the split. If it terminates a line, the
    // split begins on a line boundary; otherwise skip the partial line.
    const std::size_t nl = view.find('\n');
    if (nl == std::string_view::npos) co_return util::Bytes{};
    start = nl + 1;
  }
  std::size_t end = view.size();
  if (split.offset + split.len < file_size) {
    // First line starting at or after the nominal end belongs to the next
    // split; ours runs through the newline at/after (nominal_end - 1).
    const std::size_t limit =
        static_cast<std::size_t>(split.offset + split.len - read_start);
    if (start >= limit) co_return util::Bytes{};  // whole split was partial
    const std::size_t nl = view.find('\n', limit - 1);
    end = (nl == std::string_view::npos) ? view.size() : nl + 1;
  }
  co_return util::Bytes(raw.begin() + static_cast<std::ptrdiff_t>(start),
                        raw.begin() + static_cast<std::ptrdiff_t>(end));
}

std::vector<std::uint64_t> frame_records(const AppKernels& app,
                                         std::string_view chunk) {
  if (app.split_records) return app.split_records(chunk);
  if (app.fixed_record_size > 0) {
    std::vector<std::uint64_t> offsets;
    offsets.reserve(chunk.size() / app.fixed_record_size);
    for (std::uint64_t off = 0; off + app.fixed_record_size <= chunk.size();
         off += app.fixed_record_size) {
      offsets.push_back(off);
    }
    return offsets;
  }
  return split_lines(chunk);
}

namespace {

sim::Task<> input_stage(Stage& st, NodeContext ctx, SplitScheduler& scheduler,
                        sim::Resource& in_buffers,
                        sim::Channel<StagedChunk>& out, MapMetrics& m) {
  for (;;) {
    // A crashed node initiates no new work; in-flight chunks drain through
    // the pipeline (their sends are dropped by the dead-endpoint check).
    if (!ctx.self_live()) break;
    // Preemption checkpoint: stop dispensing fresh splits once a suspend is
    // requested; chunks already in flight drain normally, so everything the
    // pipeline touched is committed and in the ledger when the phase ends.
    // Recovery rounds are exempt — replayed provenance must finish.
    if (ctx.preempt_requested() && !ctx.recovery) break;
    sim::Resource::Hold slot_hold;
    if (ctx.elastic_slots && ctx.map_slot != nullptr && !ctx.recovery) {
      // Elastic gating: one slot per split, held until the task's partition
      // work completes, so a share shrink takes effect at the next task
      // boundary and a grow deepens this node's pipeline immediately.
      slot_hold = co_await ctx.map_slot->acquire();
      if (!ctx.self_live() || ctx.preempt_requested()) break;
    }
    auto split = ctx.recovery ? scheduler.next_lost(ctx.node_id)
                              : scheduler.next_for(ctx.node_id);
    if (!split && !ctx.recovery && ctx.config->speculate) {
      // Idle with in-flight work elsewhere: clone a straggler (§III-E).
      split = scheduler.next_speculative(ctx.node_id);
    }
    if (!split) break;
    auto hold = co_await in_buffers.acquire();
    sim::Resource::Hold mem_hold;
    if (ctx.mem != nullptr) {
      // Admit the staged chunk's bytes against the map-input pool before
      // reading.
      mem_hold =
          co_await ctx.mem->acquire(MemoryGovernor::Pool::kMapIn, split->len);
    }
    util::Bytes data;
    std::vector<std::uint64_t> offsets;
    bool split_lost = false;
    {
      Stage::BusyScope scope(st);
      try {
        data =
            co_await read_aligned_split(*ctx.fs, ctx.node_id, *ctx.app, *split);
      } catch (const dfs::DataLossError&) {
        // Every copy of the split's data is gone. In a DAG round the
        // driver rewinds to regenerate it; mid-single-job loss is fatal.
        if (ctx.config->dag_round < 0) throw;
        ++m.input_splits_lost;
        split_lost = true;
      }
      if (!split_lost) {
        // The framing scan's simulated charge depends only on the byte
        // count, so the real scan runs on the host pool while the charge
        // elapses.
        auto framing = ctx.sim().offload([&app = *ctx.app, &data] {
          return frame_records(
              app, std::string_view(
                       reinterpret_cast<const char*>(data.data()),
                       data.size()));
        });
        co_await ctx.node->cpu_work(static_cast<double>(data.size()) /
                                    kRecordSplitBytesPerSec);
        offsets = co_await ctx.sim().join(std::move(framing));
      }
    }
    if (offsets.empty()) continue;  // hold released by destructor
    m.records += offsets.size();
    co_await out.send(StagedChunk(std::move(data), std::move(offsets),
                                  *split, std::move(hold),
                                  std::move(mem_hold),
                                  std::move(slot_hold)));
  }
  out.close();
}

sim::Task<> stage_stage(Stage& st, NodeContext ctx,
                        sim::Channel<StagedChunk>& in,
                        sim::Channel<StagedChunk>& out) {
  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    if (!ctx.device->unified_memory()) {
      Stage::BusyScope scope(st);
      co_await ctx.device->stage_in(item->data.size());
    }
    co_await out.send(std::move(*item));
  }
  out.close();
}

// Runs the map kernel (plus combine/compaction) over one staged chunk.
// `collector` is a per-stage cache: finalize() resets collectors in place,
// so reusing one across chunks keeps its heap buffers warm. Recreated only
// when the group count changes (e.g. a short final chunk).
sim::Task<MapChunkOutput> run_map_kernel(
    const NodeContext& ctx, const util::Bytes& bytes,
    const std::vector<std::uint64_t>& offsets,
    std::unique_ptr<MapOutputCollector>& collector, MapMetrics& m) {
  const JobConfig& cfg = *ctx.config;
  const AppKernels& app = *ctx.app;
  const std::size_t records = offsets.size();
  const std::size_t groups = std::max<std::size_t>(
      1, std::min<std::size_t>(cl::Device::kDefaultWorkGroups, records));
  if (!collector || collector->groups() != groups) {
    collector = make_collector(cfg.output_mode, groups);
  }
  const std::string_view data(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());

  cl::KernelStats stats = co_await ctx.device->run_kernel_grouped(
      records, groups,
      [&](std::size_t i, std::size_t g, cl::KernelCounters& c) {
        const std::uint64_t begin = offsets[i];
        const std::uint64_t end =
            (i + 1 < offsets.size()) ? offsets[i + 1] : data.size();
        const std::string_view record = data.substr(begin, end - begin);
        c.charge_read(record.size());
        GroupEmitter emitter(collector.get(), g, &c);
        MapContext mctx{&emitter, &c};
        app.map(record, mctx);
      },
      cfg.map_launch);
  m.kernel_stats += stats;

  const std::optional<CombineFn>& combine =
      cfg.use_combiner ? app.combine : std::nullopt;
  MapChunkOutput chunk_out =
      co_await collector->finalize(*ctx.device, combine, cfg.map_launch);
  m.kernel_stats += chunk_out.post_stats;
  co_return std::move(chunk_out);
}

sim::Task<> kernel_stage(Stage& st, NodeContext ctx,
                         sim::Channel<StagedChunk>& in,
                         sim::Resource& out_buffers,
                         sim::Channel<KernelOut>& out, MapMetrics& m) {
  const JobConfig& cfg = *ctx.config;
  const std::int32_t retry_name = st.span_name("retry");
  std::unique_ptr<MapOutputCollector> collector;
  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    auto out_hold = co_await out_buffers.acquire();
    MapChunkOutput chunk_out;
    {
      Stage::BusyScope scope(st);
      chunk_out = co_await run_map_kernel(ctx, item->data, item->offsets,
                                          collector, m);

      // Fault injection (§III-E): the first attempt of every Nth task —
      // 1-based, so `every` = 3 fails tasks 2, 5, 8… and split 0 is not
      // unconditionally doomed — fails after its kernel ran. Re-execution
      // is bookkeeping: the partial output is discarded, the input
      // re-fetched and reprocessed (retries stay on this node, as
      // schedulers prefer anyway). Injection is keyed on attempt == 0, so
      // a retry can never re-fail by construction.
      const int every = cfg.fail_every_nth_map_task;
      if (every > 0 && item->split.attempt == 0 &&
          (item->split.index + 1) % every == 0) {
        ++m.task_failures;
        st.instant(trace::Kind::kRetry, retry_name,
                   static_cast<std::uint64_t>(item->split.index));
        chunk_out = MapChunkOutput();  // discard partial output
        // The failed attempt's kernel emitted into `collector`; the retry
        // must start from a pristine one so its output is byte-identical
        // to what a clean first attempt would have produced.
        collector.reset();
        item->split.attempt++;
        try {
          util::Bytes again = co_await read_aligned_split(
              *ctx.fs, ctx.node_id, *ctx.app, item->split);
          const std::vector<std::uint64_t> offsets = frame_records(
              *ctx.app, std::string_view(
                            reinterpret_cast<const char*>(again.data()),
                            again.size()));
          chunk_out =
              co_await run_map_kernel(ctx, again, offsets, collector, m);
        } catch (const dfs::DataLossError&) {
          if (ctx.config->dag_round < 0) throw;
          ++m.input_splits_lost;
        }
      }

      m.pairs += chunk_out.pairs.size();
      m.distinct_keys += chunk_out.distinct_keys;
      m.hash_probes += chunk_out.hash_probes;
      item->in_hold.release();  // input buffer free once the kernel consumed it
      item->mem_hold.release();
    }
    sim::Resource::Hold mem_hold;
    if (ctx.mem != nullptr && chunk_out.pairs.blob_bytes() > 0) {
      // Collector output bytes live until the partition worker serialized
      // them into runs; charge them to the map-output pool for that window.
      // This pool is distinct from the input pool on purpose: an acquire
      // here must never queue behind the input stage admitting the next
      // split, or a tiny budget would wedge the pipeline against itself.
      mem_hold = co_await ctx.mem->acquire(MemoryGovernor::Pool::kMapOut,
                                           chunk_out.pairs.blob_bytes());
    }
    co_await out.send(KernelOut(std::move(chunk_out), std::move(item->split),
                                std::move(out_hold), std::move(mem_hold),
                                std::move(item->slot_hold)));
  }
  out.close();
}

sim::Task<> retrieve_stage(Stage& st, NodeContext ctx,
                           sim::Channel<KernelOut>& in,
                           sim::Channel<KernelOut>& out) {
  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    if (!ctx.device->unified_memory()) {
      Stage::BusyScope scope(st);
      co_await ctx.device->stage_out(item->out.pairs.blob_bytes());
    }
    co_await out.send(std::move(*item));
  }
  out.close();
}

// Result of one offloaded partition job: sorted+compressed runs for the
// chunk's non-empty buckets (in ascending partition order).
struct PartitionJobOut {
  PartitionJobOut() = default;
  std::vector<std::pair<std::uint32_t, Run>> runs;
  std::uint64_t disk_bytes = 0;
};

sim::Task<> partition_worker(Stage& st, NodeContext ctx,
                             sim::Channel<KernelOut>& in,
                             SplitScheduler& scheduler, MapMetrics& m,
                             sim::TaskGroup& sends) {
  const JobConfig& cfg = *ctx.config;
  const HostCosts& h = cfg.host;
  const std::int32_t shuffle_name = st.span_name("shuffle");
  // One bucket vector per worker, cleared in place between chunks so the
  // heap capacity stays warm across the whole map phase.
  std::vector<PairList> buckets(ctx.total_partitions);
  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    Stage::BusyScope scope(st);

    MapChunkOutput& out = item->out;
    const std::size_t n = out.pairs.size();
    for (std::size_t i = 0; i < n; ++i) {
      const PairList::PairView pv = out.pairs.pair_view(i);
      const std::uint32_t g = ctx.app->partition(
          pv.kv.key, static_cast<std::uint32_t>(ctx.total_partitions));
      GW_CHECK(g < static_cast<std::uint32_t>(ctx.total_partitions));
      buckets[g].add_encoded(pv);  // framed bytes copied verbatim
    }

    // Build a sorted, compressed run per destination partition. The
    // simulated cost is a function of the bucket sizes alone (a RunBuilder
    // fed framed pairs verbatim has raw_bytes == the bucket's blob_bytes),
    // so it is known before the work runs: submit the real sort+compress
    // job, let the cpu charge elapse while it executes on the pool, and
    // join where the compressed sizes are consumed (the disk write).
    double cpu_s = out.grouped
                       ? h.partition_key_overhead_s *
                             static_cast<double>(out.distinct_keys)
                       : h.partition_pair_overhead_s * static_cast<double>(n);
    std::vector<std::uint32_t> live;
    for (std::uint32_t g = 0; g < buckets.size(); ++g) {
      const PairList& bucket = buckets[g];
      if (bucket.empty()) continue;
      live.push_back(g);
      const std::uint64_t raw = bucket.blob_bytes();
      cpu_s += static_cast<double>(bucket.blob_bytes()) / h.sort_bytes_per_s +
               static_cast<double>(raw) / h.serialize_bytes_per_s +
               static_cast<double>(raw) / h.compress_bytes_per_s;
      m.intermediate_raw += raw;
    }
    auto work = ctx.sim().offload([&buckets, &live] {
      PartitionJobOut res;
      res.runs.resize(live.size());
      util::ThreadPool::global().parallel_for(
          0, live.size(), [&](std::size_t jlo, std::size_t jhi, std::size_t) {
            for (std::size_t j = jlo; j < jhi; ++j) {
              PairList& bucket = buckets[live[j]];
              bucket.sort_by_key();
              RunBuilder rb;
              for (std::size_t i = 0; i < bucket.size(); ++i) {
                rb.add_encoded(bucket.encoded_pair(i));
              }
              res.runs[j] = {live[j], rb.finish(true)};
            }
          });
      for (const auto& [g, run] : res.runs) res.disk_bytes += run.stored_bytes();
      return res;
    });
    co_await ctx.node->cpu_work(cpu_s);
    PartitionJobOut job_out = co_await ctx.sim().join(std::move(work));
    for (const auto& [g, run] : job_out.runs) {
      m.intermediate_stored += run.stored_bytes();
    }
    // Durability: every produced Partition goes to local disk (§III-A/E);
    // appended sequentially, so seeks amortize.
    if (job_out.disk_bytes > 0) {
      co_await ctx.node->disk_stream_write(
          job_out.disk_bytes, cluster::Node::amortized_seek(job_out.disk_bytes));
    }

    // Dedup tag: re-executions and speculative clones of a split regenerate
    // byte-identical runs carrying the same tag, which receiving stores
    // drop. Nonzero by construction (split indices are >= 0).
    const std::uint64_t tag =
        static_cast<std::uint64_t>(item->split.index) + 1;
    if (ctx.ledger != nullptr) {
      // Durable-output ledger: keep a host-side copy of every run so a
      // reassigned partition can be re-fed from survivors without
      // re-running their map tasks.
      for (const auto& [g, run] : job_out.runs) {
        ctx.ledger->record(static_cast<int>(g), tag, run);
      }
    }
    const bool self_alive = ctx.self_live();
    if (self_alive) {
      // First-finisher-wins: a zombie completion on a dead node never
      // commits (its splits are already back in the lost pool).
      scheduler.commit(item->split.index, ctx.node_id);
    }
    for (auto& [g, run] : job_out.runs) {
      const int dest = ctx.owner_of(static_cast<int>(g));
      if (dest == ctx.node_id) {
        if (self_alive) {
          co_await ctx.store->add_run(static_cast<int>(g), std::move(run),
                                      tag);
        }
      } else if (ctx.combiner != nullptr) {
        // Hierarchical combining: remote-destined runs stage in the node
        // combiner, which merge-combines duplicates across every map task
        // on this node before anything leaves for the network.
        co_await ctx.combiner->add(static_cast<int>(g),
                                   std::vector<std::uint64_t>(1, tag),
                                   std::move(run));
      } else {
        util::ByteWriter w;
        w.put_u32(g);
        run.serialize(w);
        m.shuffle_bytes_remote += w.size();
        st.instant(trace::Kind::kShuffle, shuffle_name, w.size());
        // Push shuffle rides the transport: with flow control enabled the
        // spawned send blocks on the stream's credit window, bounding the
        // bytes in flight toward any one receiver.
        sends.spawn(send_run_dropping(ctx, dest, w.take(), tag));
      }
    }
    for (std::uint32_t g : live) buckets[g].clear();
    item->out_hold.release();
    item->mem_hold.release();
    item->slot_hold.release();  // elastic task boundary
  }
}

}  // namespace

sim::Task<> run_map_phase(NodeContext ctx, SplitScheduler& scheduler,
                          MapMetrics& metrics) {
  auto& sim = ctx.sim();
  const JobConfig& cfg = *ctx.config;
  GW_CHECK_MSG(cfg.buffering >= 1 && cfg.buffering <= 3,
               "buffering level must be 1..3");

  StageGraph g(sim, cfg.trace_scope + "map", ctx.node_id);
  sim::Resource& in_buffers = g.pool(cfg.buffering);
  sim::Resource& out_buffers = g.pool(cfg.buffering);
  auto& c12 = g.channel<StagedChunk>(8);
  auto& c23 = g.channel<StagedChunk>(8);
  auto& c34 = g.channel<KernelOut>(8);
  auto& c45 = g.channel<KernelOut>(8);

  sim::TaskGroup sends(sim);
  MapMetrics& m = metrics;
  g.add_stage("input", 1, [&, ctx](Stage& st) {
    return input_stage(st, ctx, scheduler, in_buffers, c12, m);
  });
  g.add_stage("stage", 1,
              [&, ctx](Stage& st) { return stage_stage(st, ctx, c12, c23); });
  g.add_stage("kernel", 1, [&, ctx](Stage& st) {
    return kernel_stage(st, ctx, c23, out_buffers, c34, m);
  });
  g.add_stage("retrieve", 1, [&, ctx](Stage& st) {
    return retrieve_stage(st, ctx, c34, c45);
  });
  g.add_stage("partition", cfg.partitioner_threads, [&, ctx](Stage& st) {
    return partition_worker(st, ctx, c45, scheduler, m, sends);
  });
  co_await g.run();
  if (ctx.combiner != nullptr) {
    // Final combine flush: everything still staged is combined and pushed
    // before the phase (and thus before this node's EOS) completes.
    co_await ctx.combiner->drain();
  }
  co_await sends.wait();  // all shuffle data delivered
}

}  // namespace gw::core
