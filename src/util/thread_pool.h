// Static-partition parallel_for.
//
// The simulator charges *simulated* time for kernels, but the work-items are
// real C++ and independent, so we execute them across host threads to speed
// up wall-clock runs on multicore machines. Work is split statically into
// contiguous ranges; per-item results are reduced associatively by the
// caller, preserving determinism.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace gw::util {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  // Runs fn(begin..end) partitioned over worker threads plus the calling
  // thread; blocks until complete. fn(chunk_begin, chunk_end, chunk_index).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

  // Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Impl;
  std::size_t threads_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gw::util
