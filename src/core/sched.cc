#include "core/sched.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/memory.h"
#include "simnet/fabric.h"
#include "util/error.h"

namespace gw::core {

SchedPolicy parse_sched_policy(std::string_view name) {
  if (name == "fifo") return SchedPolicy::kFifo;
  if (name == "fair") return SchedPolicy::kFair;
  if (name == "priority") return SchedPolicy::kPriority;
  GW_CHECK_MSG(false, "unknown scheduling policy (fifo|fair|priority)");
  return SchedPolicy::kFifo;
}

const char* sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kFair: return "fair";
    case SchedPolicy::kPriority: return "priority";
  }
  return "?";
}

Scheduler::Scheduler(GlasswingRuntime& runtime, cluster::Platform& platform,
                     dfs::FileSystem& fs, SchedulerConfig config)
    : runtime_(runtime), platform_(platform), fs_(fs),
      config_(std::move(config)) {
  GW_CHECK(config_.map_slots_per_node > 0);
  GW_CHECK(config_.reduce_slots_per_node > 0);
  GW_CHECK(config_.max_resident_jobs > 0);
  GW_CHECK(config_.max_preemptions_per_job >= 0);
  GW_CHECK(config_.elastic_slots_per_node > 0);
  GW_CHECK(config_.elastic_steal_frac >= 0 && config_.elastic_steal_frac <= 1);
  epoch_ = platform_.sim().now();
  const int n = platform_.num_nodes();
  for (int i = 0; i < n; ++i) {
    map_slots_.push_back(std::make_unique<sim::Resource>(
        platform_.sim(), config_.map_slots_per_node));
    reduce_slots_.push_back(std::make_unique<sim::Resource>(
        platform_.sim(), config_.reduce_slots_per_node));
    env_.map_slots.push_back(map_slots_.back().get());
    env_.reduce_slots.push_back(reduce_slots_.back().get());
  }
  if (config_.node_memory_bytes > 0) {
    // One budget per NODE, shared by every tenant resident on it. No
    // combine pool: the split is fixed before the tenant mix is known
    // (run_async degrades combine_mode accordingly).
    for (int i = 0; i < n; ++i) {
      governors_.push_back(std::make_unique<MemoryGovernor>(
          platform_.sim(), config_.node_memory_bytes,
          /*with_combine_pool=*/false));
      env_.governors.push_back(governors_.back().get());
    }
  }
}

Scheduler::~Scheduler() = default;

int Scheduler::submit(JobRequest req) {
  const int id = static_cast<int>(requests_.size());
  GW_CHECK_MSG(req.arrival_s >= 0, "arrival in the past");
  if (!req.config.crash_events.empty()) any_crashes_ = true;
  ScheduledJob r;
  r.job_id = id;
  r.name = req.name;
  r.tenant = req.tenant;
  r.priority = req.priority;
  r.arrival_s = req.arrival_s;
  results_.push_back(std::move(r));
  requests_.push_back(std::move(req));
  preempts_.push_back(config_.preemption ? std::make_unique<PreemptControl>()
                                         : nullptr);
  platform_.sim().spawn(arrive(id));
  return id;
}

sim::Task<void> Scheduler::arrive(int id) {
  auto& sim = platform_.sim();
  const double at =
      epoch_ + requests_[static_cast<std::size_t>(id)].arrival_s;
  if (at > sim.now()) co_await sim.delay(at - sim.now());
  if (config_.max_queued_jobs > 0 &&
      static_cast<int>(queue_.size()) >= config_.max_queued_jobs) {
    results_[static_cast<std::size_t>(id)].rejected = true;
    ++rejected_;
    ++completed_;
    co_return;
  }
  results_[static_cast<std::size_t>(id)].arrival_seq = next_arrival_seq_++;
  queue_.push_back(id);
  queue_peak_ = std::max(queue_peak_, static_cast<int>(queue_.size()));
  pump();
}

double Scheduler::tenant_service(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.service_s;
}

double Scheduler::tenant_service_live(int tenant) const {
  double s = tenant_service(tenant);
  const double now = platform_.sim().now() - epoch_;
  for (int id : resident_ids_) {
    if (results_[static_cast<std::size_t>(id)].tenant != tenant) continue;
    s += now - running_.at(id).since;
  }
  return s;
}

namespace {

// Microsecond ticks on the simulated clock. Aging used to divide raw
// doubles: near an interval boundary, (now - arrival) / aging could land an
// ulp either side of an integer, so std::floor drifted between evaluations
// of the same queue and the promoted class flapped. Integer arithmetic on
// rounded ticks makes every evaluation agree exactly.
std::int64_t to_ticks(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e6));
}

}  // namespace

std::size_t Scheduler::pick_next() const {
  GW_CHECK(!queue_.empty());
  // Every policy breaks its ties by arrival_seq, so equal-rank jobs admit
  // in true arrival order even after suspensions re-enqueue at the back.
  const auto seq = [&](std::size_t i) {
    return results_[static_cast<std::size_t>(queue_[i])].arrival_seq;
  };
  switch (config_.policy) {
    case SchedPolicy::kFifo: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (seq(i) < seq(best)) best = i;
      }
      return best;
    }
    case SchedPolicy::kFair: {
      // Least accumulated tenant service first; ties by arrival.
      std::size_t best = 0;
      double best_service = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const double s =
            tenant_service(results_[static_cast<std::size_t>(queue_[i])].tenant);
        if (s < best_service || (s == best_service && seq(i) < seq(best))) {
          best_service = s;
          best = i;
        }
      }
      return best;
    }
    case SchedPolicy::kPriority: {
      // Strict classes, arrival order inside a class. Aging (if enabled)
      // promotes a job one class per full interval waited so a busy hot
      // class cannot starve colder ones indefinitely.
      const std::int64_t now_us = to_ticks(platform_.sim().now() - epoch_);
      const std::int64_t aging_us =
          config_.priority_aging_s > 0
              ? std::max<std::int64_t>(1, to_ticks(config_.priority_aging_s))
              : 0;
      std::size_t best = 0;
      std::int64_t best_class = std::numeric_limits<std::int64_t>::max();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const auto& r = results_[static_cast<std::size_t>(queue_[i])];
        std::int64_t cls = r.priority;
        if (aging_us > 0) {
          const std::int64_t waited_us = now_us - to_ticks(r.arrival_s);
          if (waited_us > 0) cls -= waited_us / aging_us;
        }
        if (cls < best_class || (cls == best_class && seq(i) < seq(best))) {
          best_class = cls;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

void Scheduler::pump() {
  while (resident_ < config_.max_resident_jobs && !queue_.empty()) {
    const std::size_t i = pick_next();
    const int id = queue_[i];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    ++resident_;
    resident_peak_ = std::max(resident_peak_, resident_);
    platform_.sim().spawn(run_job(id));
  }
  maybe_preempt();
}

void Scheduler::maybe_preempt() {
  if (!config_.preemption || queue_.empty()) return;
  if (resident_ < config_.max_resident_jobs) return;
  // One wind-down at a time: a second request while a victim is still
  // draining could displace more residents than the queue deserves.
  for (int id : resident_ids_) {
    const PreemptControl* pc = preempts_[static_cast<std::size_t>(id)].get();
    if (pc != nullptr && pc->requested) return;
  }
  const auto& cand = results_[static_cast<std::size_t>(queue_[pick_next()])];
  int victim = -1;
  switch (config_.policy) {
    case SchedPolicy::kFifo:
      // FIFO never revokes: arrival order already admitted everyone ahead.
      return;
    case SchedPolicy::kPriority: {
      // Displace the least urgent resident whose class is strictly lower
      // (numerically greater) than the candidate's; ties pick the latest
      // admitted (least progress to throw away).
      for (int id : resident_ids_) {
        const auto& res = results_[static_cast<std::size_t>(id)];
        if (res.priority <= cand.priority) continue;
        if (victim < 0 ||
            res.priority > results_[static_cast<std::size_t>(victim)].priority ||
            (res.priority ==
                 results_[static_cast<std::size_t>(victim)].priority &&
             res.arrival_seq >
                 results_[static_cast<std::size_t>(victim)].arrival_seq)) {
          victim = id;
        }
      }
      break;
    }
    case SchedPolicy::kFair: {
      // Displace a resident of the most over-served tenant, but only if
      // that tenant has strictly more (live) service than the candidate's.
      const double cand_service = tenant_service_live(cand.tenant);
      double victim_service = 0;
      for (int id : resident_ids_) {
        const auto& res = results_[static_cast<std::size_t>(id)];
        if (res.tenant == cand.tenant) continue;
        const double s = tenant_service_live(res.tenant);
        if (s <= cand_service) continue;  // must be strictly more served
        if (victim < 0 || s > victim_service ||
            (s == victim_service &&
             res.arrival_seq >
                 results_[static_cast<std::size_t>(victim)].arrival_seq)) {
          victim_service = s;
          victim = id;
        }
      }
      break;
    }
  }
  if (victim < 0) return;
  PreemptControl* pc = preempts_[static_cast<std::size_t>(victim)].get();
  if (pc->preemptions >= config_.max_preemptions_per_job) return;
  pc->requested = true;
}

int Scheduler::alloc_window() {
  if (!free_windows_.empty()) {
    const int w = free_windows_.front();
    free_windows_.erase(free_windows_.begin());
    return w;
  }
  return windows_created_++;
}

void Scheduler::free_window(int window) {
  // Keep the free-list sorted so the smallest window is always reused
  // first: the port footprint stays at [stride, stride * (peak + 1)).
  free_windows_.insert(
      std::lower_bound(free_windows_.begin(), free_windows_.end(), window),
      window);
}

void Scheduler::recompute_shares() {
  if (!config_.elastic_slots) return;
  const int k = static_cast<int>(resident_ids_.size());
  if (k == 0) return;
  const int total = config_.elastic_slots_per_node;
  // Fair baseline: equal instantaneous shares in admission order, clamped
  // to >= 1 so every resident keeps making progress.
  std::vector<int> share(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    share[static_cast<std::size_t>(i)] =
        std::max(1, total / k + (i < total % k ? 1 : 0));
  }
  if (config_.policy == SchedPolicy::kPriority && k > 1) {
    // The most urgent resident steals slots one at a time from the least
    // urgent resident that can spare one, up to steal_frac of the node.
    std::vector<int> order(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) order[static_cast<std::size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto& ra = results_[static_cast<std::size_t>(
          resident_ids_[static_cast<std::size_t>(a)])];
      const auto& rb = results_[static_cast<std::size_t>(
          resident_ids_[static_cast<std::size_t>(b)])];
      if (ra.priority != rb.priority) return ra.priority < rb.priority;
      return ra.arrival_seq < rb.arrival_seq;
    });
    const int taker = order.front();
    const int taker_class = results_[static_cast<std::size_t>(
                                resident_ids_[static_cast<std::size_t>(taker)])]
                                .priority;
    int budget = static_cast<int>(config_.elastic_steal_frac * total);
    while (budget > 0) {
      int donor = -1;
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const int pos = *it;
        const auto& res = results_[static_cast<std::size_t>(
            resident_ids_[static_cast<std::size_t>(pos)])];
        if (res.priority <= taker_class) break;  // only lower classes donate
        if (share[static_cast<std::size_t>(pos)] > 1) {
          donor = pos;
          break;
        }
      }
      if (donor < 0) break;
      --share[static_cast<std::size_t>(donor)];
      ++share[static_cast<std::size_t>(taker)];
      --budget;
    }
  }
  for (int i = 0; i < k; ++i) {
    auto it = running_.find(resident_ids_[static_cast<std::size_t>(i)]);
    if (it == running_.end()) continue;  // residency still being set up
    const int s = share[static_cast<std::size_t>(i)];
    for (auto& slot : it->second.map_slots) slot->set_capacity(s);
    for (auto& slot : it->second.reduce_slots) slot->set_capacity(s);
  }
}

sim::Task<void> Scheduler::run_job(int id) {
  auto& sim = platform_.sim();
  JobRequest& req = requests_[static_cast<std::size_t>(id)];
  ScheduledJob& r = results_[static_cast<std::size_t>(id)];
  PreemptControl* pc = preempts_[static_cast<std::size_t>(id)].get();
  const bool resumed_run = pc != nullptr && pc->preemptions > 0;
  const double since = sim.now() - epoch_;
  if (resumed_run) {
    ++r.resumes;
    ++resume_count_;
  } else {
    r.admit_s = since;
    // max() absorbs the epsilon of epoch addition/subtraction round-trips.
    r.queue_wait_s = std::max(0.0, r.admit_s - r.arrival_s);
  }

  JobConfig cfg = req.config;
  cfg.job_id = id;
  cfg.tenant = req.tenant;
  cfg.priority = req.priority;
  // Port windows are recycled through a free-list: peak residency bounds
  // the footprint, so arbitrarily many sequential jobs never walk off the
  // end of the port space. A window frees only after run_async's teardown
  // verified its range quiesced, so reuse can't cross-talk.
  const int window = alloc_window();
  cfg.port_base = net::kPortJobStride * (window + 1);
  // The trace scope stays keyed by JOB id (not window): a resumed job
  // reopens spans on the same labeled track across residencies.
  cfg.trace_scope = "j" + std::to_string(id) + ".";
  // If ANY tenant injects node crashes, every job sharing the cluster must
  // run the fault-tolerant shuffle protocol, or a neighbour's crash would
  // hang its streams (submissions are all registered before run_all, so
  // any_crashes_ is final here).
  cfg.expect_crashes = any_crashes_;
  if (pc != nullptr) cfg.preemptable = true;

  // Build this residency's environment. Elastic mode gives the job private
  // per-node slot pools (resized by recompute_shares as residency churns);
  // preemption threads the job's PreemptControl through a private JobEnv
  // copy. Plain mode keeps the shared env.
  Residency& res = running_[id];
  res.window = window;
  res.since = since;
  JobEnv* env = &env_;
  if (config_.elastic_slots || pc != nullptr) {
    res.env = std::make_unique<JobEnv>();
    res.env->governors = env_.governors;
    if (config_.elastic_slots) {
      const int n = platform_.num_nodes();
      for (int i = 0; i < n; ++i) {
        res.map_slots.push_back(std::make_unique<sim::Resource>(sim, 1));
        res.reduce_slots.push_back(std::make_unique<sim::Resource>(sim, 1));
        res.env->map_slots.push_back(res.map_slots.back().get());
        res.env->reduce_slots.push_back(res.reduce_slots.back().get());
      }
      res.env->elastic = true;
    } else {
      res.env->map_slots = env_.map_slots;
      res.env->reduce_slots = env_.reduce_slots;
    }
    if (pc != nullptr) {
      pc->requested = false;
      pc->suspended = false;
      res.env->preempt = pc;
    }
    env = res.env.get();
  }
  resident_ids_.push_back(id);
  recompute_shares();

  dfs::FileSystem* fs = req.fs_override != nullptr ? req.fs_override : &fs_;
  try {
    r.result = co_await runtime_.run_async(req.app, std::move(cfg), fs, env);
  } catch (const std::exception&) {
    r.failed = true;
    ++failed_;
  }
  const double leave = sim.now() - epoch_;

  // Leave residency: release the port window and slot shares, then account
  // the residency span to the tenant (per-residency, so the fair policy
  // sees a suspended job's service immediately).
  resident_ids_.erase(
      std::find(resident_ids_.begin(), resident_ids_.end(), id));
  running_.erase(id);
  free_window(window);
  --resident_;
  recompute_shares();
  TenantStats& t = tenants_[req.tenant];
  t.tenant = req.tenant;
  t.service_s += leave - since;

  if (!r.failed && pc != nullptr && pc->suspended) {
    // Wound down at a task boundary: committed map output and materialized
    // rounds are durable in pc->state. Requeue the remainder; it re-enters
    // pick_next with its original arrival_seq.
    ++r.preemptions;
    ++preempt_count_;
    queue_.push_back(id);
    queue_peak_ = std::max(queue_peak_, static_cast<int>(queue_.size()));
    pump();
    co_return;
  }

  r.finish_s = leave;
  r.latency_s = r.finish_s - r.arrival_s;
  r.combine_degraded = !r.failed && r.result.combine_degraded;
  if (r.combine_degraded) ++combine_degraded_count_;
  ++t.jobs_finished;
  t.wait_s += r.queue_wait_s;
  ++completed_;
  pump();
}

void Scheduler::run_all() {
  platform_.sim().run();
  GW_CHECK_MSG(completed_ == static_cast<int>(requests_.size()),
               "scheduler hang: jobs pending after event queue drained");
}

std::vector<TenantStats> Scheduler::tenant_stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [_, t] : tenants_) out.push_back(t);
  return out;
}

TrafficGen::TrafficGen(std::uint64_t seed, double jobs_per_s)
    : rng_(seed), rate_(jobs_per_s) {
  GW_CHECK(jobs_per_s > 0);
}

double TrafficGen::next_arrival_s() {
  // Inverse-CDF exponential draw; log1p(-u) keeps precision near u = 0.
  clock_ += -std::log1p(-rng_.uniform()) / rate_;
  return clock_;
}

std::uint64_t TrafficGen::pick(std::uint64_t n) { return rng_.below(n); }

}  // namespace gw::core
