#include "apps/pageview.h"

#include <vector>

#include "util/rng.h"

namespace gw::apps {

namespace {

// Log line: "<ts> <url> <status> <bytes>"; URL is the second field.
std::string_view extract_url(std::string_view line) {
  const std::size_t first = line.find(' ');
  if (first == std::string_view::npos) return {};
  const std::size_t start = first + 1;
  const std::size_t second = line.find(' ', start);
  if (second == std::string_view::npos) return {};
  return line.substr(start, second - start);
}

void pvc_map(std::string_view record, core::MapContext& ctx) {
  // I/O bound: the kernel only scans for two separators.
  ctx.charge_ops(record.size() / 2);
  const std::string_view url = extract_url(record);
  if (!url.empty()) ctx.emit(url, "1");
}

void pvc_sum(std::string_view key,
             const std::vector<std::string_view>& values,
             core::ReduceContext& ctx) {
  std::uint64_t total = 0;
  for (auto v : values) total += parse_u64(v);
  ctx.charge_ops(3 * values.size());
  ctx.emit(key, std::to_string(total));
}

}  // namespace

AppSpec pageview_count() {
  AppSpec spec;
  spec.kernels.name = "pageview-count";
  spec.kernels.map = pvc_map;
  spec.kernels.combine = pvc_sum;
  // Integer addition: safe to re-combine partials under any grouping.
  spec.kernels.combine_associative = true;
  spec.kernels.reduce = pvc_sum;
  return spec;
}

util::Bytes generate_weblog(std::uint64_t bytes, std::uint64_t seed) {
  constexpr std::size_t kPopular = 2000;
  util::Rng rng(seed);
  util::ZipfSampler zipf(kPopular, 0.9);
  std::string log;
  log.reserve(bytes + 128);
  std::uint64_t ts = 1190146243000ull;  // epoch ms within the 2007-09 trace
  std::uint64_t unique_id = 0;
  while (log.size() < bytes) {
    ts += rng.below(40);
    log += std::to_string(ts);
    log += " http://en.wikipedia.org/wiki/";
    if (rng.below(100) < 85) {
      // Sparse tail: rarely-repeated article URLs.
      log += "Article_" + std::to_string(seed % 89) + "_" +
             std::to_string(unique_id++);
    } else {
      log += "Popular_" + std::to_string(zipf.sample(rng));
    }
    log += ' ';
    log += (rng.below(100) < 95) ? "200" : "404";
    log += ' ';
    log += std::to_string(500 + rng.below(80000));
    log += '\n';
  }
  return util::Bytes(log.begin(), log.end());
}

std::map<std::string, std::uint64_t> pageview_reference(
    const util::Bytes& log) {
  std::map<std::string, std::uint64_t> counts;
  std::string_view all(reinterpret_cast<const char*>(log.data()), log.size());
  std::size_t pos = 0;
  while (pos < all.size()) {
    std::size_t nl = all.find('\n', pos);
    if (nl == std::string_view::npos) nl = all.size();
    const std::string_view url = extract_url(all.substr(pos, nl - pos));
    if (!url.empty()) counts[std::string(url)]++;
    pos = nl + 1;
  }
  return counts;
}

}  // namespace gw::apps
