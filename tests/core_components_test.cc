// Focused unit tests for core components: output collectors, the
// intermediate-data store, and the split scheduler.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/collector.h"
#include "core/intermediate.h"
#include "core/pipeline.h"
#include "gwdfs/fs.h"
#include "util/rng.h"

namespace gw::core {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes = 1) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
}

// ---------- collectors ----------

cl::KernelStats emit_through(MapOutputCollector& col, cl::Device& dev,
                             std::size_t items,
                             const std::function<std::pair<std::string, std::string>(
                                 std::size_t)>& pair_for,
                             sim::Simulation& sim) {
  cl::KernelStats out;
  sim.spawn([](MapOutputCollector& c, cl::Device& d, std::size_t n,
               const std::function<std::pair<std::string, std::string>(std::size_t)>& pf,
               cl::KernelStats* stats) -> sim::Task<> {
    *stats = co_await d.run_kernel_grouped(
        n, c.groups(), [&](std::size_t i, std::size_t g, cl::KernelCounters& kc) {
          auto [k, v] = pf(i);
          c.emit(g, k, v, kc);
        });
  }(col, dev, items, pair_for, &out));
  sim.run();
  return out;
}

MapChunkOutput finalize_now(MapOutputCollector& col, cl::Device& dev,
                            const std::optional<CombineFn>& combine,
                            sim::Simulation& sim) {
  MapChunkOutput out;
  sim.spawn([](MapOutputCollector& c, cl::Device& d,
               std::optional<CombineFn> comb, MapChunkOutput* o) -> sim::Task<> {
    *o = co_await c.finalize(d, comb, {});
  }(col, dev, combine, &out));
  sim.run();
  return out;
}

TEST(SharedPoolCollector, OneAtomicPerEmit) {
  sim::Simulation sim;
  cl::Device dev(sim, cl::DeviceSpec::cpu_dual_e5620());
  SharedPoolCollector col(8);
  auto stats = emit_through(col, dev, 1000,
                            [](std::size_t i) {
                              return std::make_pair("k" + std::to_string(i % 10),
                                                    "v");
                            },
                            sim);
  EXPECT_EQ(stats.atomic_ops, 1000u);
  EXPECT_EQ(stats.hash_probes, 0u);
  auto out = finalize_now(col, dev, std::nullopt, sim);
  EXPECT_EQ(out.pairs.size(), 1000u);
  EXPECT_FALSE(out.grouped);
}

TEST(HashTableCollector, ProbesAndGrouping) {
  sim::Simulation sim;
  cl::Device dev(sim, cl::DeviceSpec::cpu_dual_e5620());
  HashTableCollector col(4);
  auto stats = emit_through(col, dev, 2000,
                            [](std::size_t i) {
                              return std::make_pair("key" + std::to_string(i % 50),
                                                    std::to_string(i));
                            },
                            sim);
  EXPECT_GE(stats.hash_probes, 2000u);  // at least one probe per emit
  EXPECT_GE(stats.atomic_ops, 2000u);   // value-append atomics
  auto out = finalize_now(col, dev, std::nullopt, sim);
  // Compaction keeps every pair but groups keys contiguously.
  EXPECT_EQ(out.pairs.size(), 2000u);
  EXPECT_TRUE(out.grouped);
  EXPECT_EQ(out.distinct_keys, 50u);
  std::set<std::string> seen;
  std::string current;
  for (std::size_t i = 0; i < out.pairs.size(); ++i) {
    const std::string key(out.pairs.get(i).key);
    if (key != current) {
      EXPECT_TRUE(seen.insert(key).second) << "key not contiguous: " << key;
      current = key;
    }
  }
}

TEST(HashTableCollector, CombinerCollapsesDuplicates) {
  sim::Simulation sim;
  cl::Device dev(sim, cl::DeviceSpec::cpu_dual_e5620());
  HashTableCollector col(4);
  emit_through(col, dev, 3000,
               [](std::size_t i) {
                 return std::make_pair("w" + std::to_string(i % 20), "1");
               },
               sim);
  CombineFn sum = [](std::string_view key,
                     const std::vector<std::string_view>& values,
                     ReduceContext& ctx) {
    ctx.emit(key, std::to_string(values.size()));
  };
  auto out = finalize_now(col, dev, sum, sim);
  EXPECT_EQ(out.pairs.size(), 20u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < out.pairs.size(); ++i) {
    total += std::stoull(std::string(out.pairs.get(i).value));
  }
  EXPECT_EQ(total, 3000u);
}

TEST(HashTableCollector, ProbeCountGrowsWithKeyCardinality) {
  // More distinct keys -> fuller tables -> more probes per emit on average.
  auto probes_for = [](int distinct) {
    sim::Simulation sim;
    cl::Device dev(sim, cl::DeviceSpec::cpu_dual_e5620());
    HashTableCollector col(1);
    auto stats = emit_through(col, dev, 20000,
                              [distinct](std::size_t i) {
                                return std::make_pair(
                                    "key" + std::to_string(i % distinct), "1");
                              },
                              sim);
    return stats.hash_probes;
  };
  EXPECT_GT(probes_for(15000), probes_for(50));
}

// ---------- intermediate store ----------

gw::core::Run make_run(const std::string& prefix, int pairs) {
  RunBuilder rb;
  for (int i = 0; i < pairs; ++i) {
    rb.add(prefix + std::to_string(i), "v" + std::to_string(i));
  }
  return rb.finish(true);
}

JobConfig store_config() {
  JobConfig cfg;
  cfg.partitions_per_node = 4;
  cfg.cache_threshold_bytes = 4 << 10;
  cfg.max_disk_runs = 3;
  return cfg;
}

TEST(IntermediateStore, RoundTripsAllData) {
  Platform p = make_platform();
  JobConfig cfg = store_config();
  IntermediateStore store(p.node(0), p.sim(), cfg);
  store.start_mergers();
  for (int r = 0; r < 20; ++r) {
    p.sim().spawn(store.add_run(r % 4, make_run("a" + std::to_string(r) + "-", 50)));
  }
  p.sim().spawn([](IntermediateStore& s) -> sim::Task<> {
    co_await s.drain();
  }(store));
  p.sim().run();

  std::uint64_t pairs = 0;
  for (int part = 0; part < 4; ++part) {
    std::uint64_t disk_bytes = 0;
    for (gw::core::Run& r : store.take_partition(part, &disk_bytes)) {
      pairs += r.pairs;
    }
  }
  EXPECT_EQ(pairs, 20u * 50u);
  EXPECT_GT(store.spills(), 0u);  // threshold was tiny: spills happened
}

TEST(IntermediateStore, DrainConsolidatesRunCount) {
  Platform p = make_platform();
  JobConfig cfg = store_config();
  cfg.cache_threshold_bytes = 1 << 30;  // never spill
  IntermediateStore store(p.node(0), p.sim(), cfg);
  store.start_mergers();
  for (int r = 0; r < 32; ++r) p.sim().spawn(store.add_run(0, make_run("x", 10)));
  p.sim().spawn([](IntermediateStore& s) -> sim::Task<> {
    co_await s.drain();
  }(store));
  p.sim().run();
  std::uint64_t disk_bytes = 0;
  auto runs = store.take_partition(0, &disk_bytes);
  EXPECT_EQ(runs.size(), 1u);  // consolidated to a single cached run
  EXPECT_EQ(disk_bytes, 0u);   // nothing spilled
  EXPECT_EQ(runs[0].pairs, 320u);
}

TEST(IntermediateStore, MergedRunsStaySorted) {
  Platform p = make_platform();
  JobConfig cfg = store_config();
  IntermediateStore store(p.node(0), p.sim(), cfg);
  store.start_mergers();
  util::Rng rng(31);
  std::uint64_t expected = 0;
  for (int r = 0; r < 12; ++r) {
    RunBuilder rb;
    std::vector<std::string> keys;
    for (int i = 0; i < 100; ++i) {
      keys.push_back("k" + std::to_string(rng.below(1000)));
    }
    std::sort(keys.begin(), keys.end());
    for (auto& k : keys) rb.add(k, "v");
    expected += 100;
    p.sim().spawn(store.add_run(1, rb.finish(true)));
  }
  p.sim().spawn([](IntermediateStore& s) -> sim::Task<> {
    co_await s.drain();
  }(store));
  p.sim().run();
  std::uint64_t disk_bytes = 0;
  auto runs = store.take_partition(1, &disk_bytes);
  std::uint64_t total = 0;
  for (const gw::core::Run& run : runs) {
    RunReader reader(run);
    KV kv;
    std::string prev;
    while (reader.next(&kv)) {
      EXPECT_GE(std::string(kv.key), prev);
      prev = std::string(kv.key);
      ++total;
    }
  }
  EXPECT_EQ(total, expected);
}

// ---------- split scheduler ----------

TEST(SplitScheduler, PrefersLocalSplits) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < 8; ++i) {
    InputSplit s("/f", i * 100, 100);
    s.locations = {i % 4};
    splits.push_back(s);
  }
  SplitScheduler sched(std::move(splits));
  // Node 2 should receive its two local splits first.
  auto a = sched.next_for(2);
  auto b = sched.next_for(2);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->offset / 100 % 4, 2u);
  EXPECT_EQ(b->offset / 100 % 4, 2u);
  EXPECT_EQ(sched.local_grabs(), 2u);
  // Third grab falls back to a remote split.
  auto c = sched.next_for(2);
  ASSERT_TRUE(c);
  EXPECT_EQ(sched.remote_grabs(), 1u);
}

TEST(SplitScheduler, HandsOutEverySplitExactlyOnce) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < 20; ++i) {
    InputSplit s("/f", i * 10, 10);
    s.locations = {0};
    splits.push_back(s);
  }
  SplitScheduler sched(std::move(splits));
  std::set<std::uint64_t> offsets;
  for (int node = 0; node < 4; ++node) {
    while (auto s = sched.next_for(node)) offsets.insert(s->offset);
  }
  EXPECT_EQ(offsets.size(), 20u);
  EXPECT_FALSE(sched.next_for(0).has_value());
}

TEST(SplitScheduler, LocalAndRemoteGrabCountsPartitionTheTotal) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < 12; ++i) {
    InputSplit s("/f", i * 100, 100);
    s.locations = {i % 3};  // nodes 0..2 host 4 splits each; node 3 none
    splits.push_back(s);
  }
  SplitScheduler sched(std::move(splits));
  // Nodes 0-2 each pull their own 4 splits: all grabs are local.
  std::uint64_t handed = 0;
  for (int node = 0; node < 3; ++node) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(sched.next_for(node).has_value());
      ++handed;
    }
  }
  EXPECT_EQ(handed, 12u);
  EXPECT_EQ(sched.local_grabs(), 12u);
  EXPECT_EQ(sched.remote_grabs(), 0u);
  EXPECT_EQ(sched.local_grabs() + sched.remote_grabs(), handed);
  // Node 3 hosts no blocks and everything is taken: nothing left, and a
  // node with no local blocks never inflates the locality counters.
  EXPECT_FALSE(sched.next_for(3).has_value());
  EXPECT_EQ(sched.local_grabs() + sched.remote_grabs(), 12u);
  EXPECT_EQ(sched.retries(), 0u);
}

TEST(SplitScheduler, RequeuedSplitServedBeforeFreshSplits) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < 4; ++i) {
    InputSplit s("/f", i * 100, 100);
    s.locations = {0};
    s.index = i;
    splits.push_back(s);
  }
  SplitScheduler sched(std::move(splits));
  auto first = sched.next_for(0);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->attempt, 0);
  EXPECT_EQ(sched.remaining(), 3u);

  // A failed task's input goes back in and must be handed out (to ANY
  // node) ahead of splits never attempted — §III-E re-execution.
  sched.requeue(*first);
  EXPECT_EQ(sched.remaining(), 4u);
  EXPECT_EQ(sched.retries(), 1u);
  auto retry = sched.next_for(3);
  ASSERT_TRUE(retry);
  EXPECT_EQ(retry->index, first->index);
  EXPECT_EQ(retry->attempt, 1);
}

TEST(SplitScheduler, RequeueAfterExhaustionReopensTheScheduler) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < 3; ++i) {
    InputSplit s("/f", i * 100, 100);
    s.locations = {0};
    s.index = i;
    splits.push_back(s);
  }
  SplitScheduler sched(std::move(splits));
  std::vector<InputSplit> got;
  while (auto s = sched.next_for(0)) got.push_back(*s);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(sched.remaining(), 0u);
  EXPECT_FALSE(sched.next_for(0).has_value());

  sched.requeue(got[1]);
  sched.requeue(got[2]);
  EXPECT_EQ(sched.remaining(), 2u);
  auto a = sched.next_for(1);
  auto b = sched.next_for(1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->attempt, 1);
  EXPECT_EQ(b->attempt, 1);
  EXPECT_EQ(sched.remaining(), 0u);
  EXPECT_FALSE(sched.next_for(1).has_value());
  EXPECT_EQ(sched.retries(), 2u);
}

TEST(SplitScheduler, MakeSplitsCoversFilesExactly) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  p.sim().spawn([](dfs::Dfs& f) -> sim::Task<> {
    co_await f.write(0, "/a", util::Bytes(1000));
    co_await f.write(0, "/b", util::Bytes(2500));
  }(fs));
  p.sim().run();
  auto splits = SplitScheduler::make_splits(fs, {"/a", "/b"}, 1000);
  std::uint64_t total = 0;
  for (auto& s : splits) total += s.len;
  EXPECT_EQ(total, 3500u);
  EXPECT_EQ(splits.size(), 4u);  // 1 + 3
  for (auto& s : splits) EXPECT_FALSE(s.locations.empty());
}

}  // namespace
}  // namespace gw::core
