// Figure 2(c): TeraSort — Hadoop vs Glasswing (CPU, HDFS) over 4..64 nodes.
// Paper input: 1 TB of gensort records (input, intermediate and output all
// exceed aggregate cluster memory); scaled here. Output replication is 1 as
// in the paper. No reduce function: the totally-ordered output is complete
// at the end of the intermediate merge.
#include "apps/terasort.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kRecords = bench::scaled_bytes(160000);  // 16 MB
constexpr std::uint64_t kSplit = 256 << 10;

core::PartitionFn sampled_partitioner(cluster::Platform& p, dfs::FileSystem& fs) {
  core::PartitionFn part;
  p.sim().spawn([](dfs::FileSystem& f, core::PartitionFn* out) -> sim::Task<> {
    std::vector<std::string> paths = {"/in/tera"};
    *out = co_await apps::sample_range_partitioner(f, 0, std::move(paths),
                                                   2000);
  }(fs, &part));
  p.sim().run();
  return part;
}

double run_glasswing(int nodes, const util::Bytes& input) {
  cluster::Platform p = bench::make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  bench::stage_input(p, fs, "/in/tera", input);
  apps::AppSpec app = apps::terasort();
  app.kernels.partition = sampled_partitioner(p, fs);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/tera"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  cfg.output_replication = 1;  // paper §IV-A1
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  return rt.run(app.kernels, cfg).elapsed_seconds;
}

double run_hadoop(int nodes, const util::Bytes& input) {
  cluster::Platform p = bench::make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  bench::stage_input(p, fs, "/in/tera", input);
  apps::AppSpec app = apps::terasort();
  app.kernels.partition = sampled_partitioner(p, fs);
  hadoop::HadoopConfig cfg;
  cfg.input_paths = {"/in/tera"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  cfg.output_replication = 1;
  cfg.use_combiner = false;  // nothing to combine in a sort
  hadoop::HadoopRuntime rt(p, fs);
  return rt.run(app.kernels, cfg).elapsed_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_terasort(kRecords, 4242);

  bench::SeriesTable table("nodes");
  for (int nodes : {4, 8, 16, 32, 64}) {  // paper starts at 4 (disk space)
    table.add_timed("Hadoop", nodes, [&] { return run_hadoop(nodes, input); });
    table.add_timed("Glasswing", nodes,
                    [&] { return run_glasswing(nodes, input); });
  }
  table.print("Figure 2(c): TS, Hadoop vs Glasswing CPU over HDFS");

  std::printf("\nShape check (paper: factor grows from ~1.2x @4 nodes to "
              "~1.7x @64):\n  factor: %.2fx @4 nodes, %.2fx @64 nodes\n",
              table.at("Hadoop", 4) / table.at("Glasswing", 4),
              table.at("Hadoop", 64) / table.at("Glasswing", 64));

  for (int nodes : {4, 16, 64}) {
    const double h = table.at("Hadoop", nodes);
    const double g = table.at("Glasswing", nodes);
    bench::register_point("TS/Hadoop/nodes:" + std::to_string(nodes),
                          [h](benchmark::State&) { return h; });
    bench::register_point("TS/Glasswing/nodes:" + std::to_string(nodes),
                          [g](benchmark::State&) { return g; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
