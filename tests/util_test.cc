// Unit and property tests for gw::util.
#include <algorithm>
#include <atomic>
#include <map>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/compress.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace gw::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng root(3);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Zipf, RanksAreValidAndSkewed) {
  Rng rng(5);
  ZipfSampler zipf(1000, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    const std::size_t r = zipf.sample(rng);
    ASSERT_LT(r, 1000u);
    counts[r]++;
  }
  // Rank 0 must dominate rank 99 by roughly 100x under s=1.
  EXPECT_GT(counts[0], 20 * std::max(counts[99], 1));
}

TEST(Zipf, HighExponentConcentrates) {
  Rng rng(6);
  ZipfSampler zipf(100, 2.5);
  int head = 0;
  for (int i = 0; i < 10000; ++i) head += (zipf.sample(rng) < 3);
  EXPECT_GT(head, 9000);
}

TEST(Hash, Fnv1aStable) {
  // Known FNV-1a vectors.
  EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a(std::string_view("foobar")), 0x85944171f73967e8ULL);
}

TEST(Hash, Mix64Avalanches) {
  // Flipping one input bit should flip ~half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x123456789abcdef0ULL);
    const std::uint64_t b = mix64(0x123456789abcdef0ULL ^ (1ULL << bit));
    total += __builtin_popcountll(a ^ b);
  }
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

TEST(Bytes, PrimitivesRoundTrip) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_f32(1.5f);
  w.put_f64(-2.25);
  w.put_str("hello world");
  ByteReader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_f32(), 1.5f);
  EXPECT_EQ(r.get_f64(), -2.25);
  EXPECT_EQ(r.get_str(), "hello world");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, VarintRoundTripBoundaries) {
  ByteWriter w;
  const std::uint64_t values[] = {0,    1,    127,   128,    16383, 16384,
                                  1u << 21, 1ull << 35, ~0ULL};
  for (auto v : values) w.put_varint(v);
  ByteReader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, VarintEncodingIsCompact) {
  ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(128);
  EXPECT_EQ(w.size(), 3u);
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.buffer());
  r.get_u32();
  EXPECT_THROW(r.get_u8(), Error);
}

TEST(Compress, EmptyInput) {
  Bytes c = lz_compress(nullptr, 0);
  Bytes d = lz_decompress(c);
  EXPECT_TRUE(d.empty());
}

TEST(Compress, ShortIncompressibleRoundTrip) {
  Bytes in = {1, 2, 3};
  EXPECT_EQ(lz_decompress(lz_compress(in)), in);
}

TEST(Compress, RepetitiveInputShrinks) {
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "the quick brown fox ";
  Bytes in(s.begin(), s.end());
  Bytes c = lz_compress(in);
  EXPECT_LT(c.size(), in.size() / 4);
  EXPECT_EQ(lz_decompress(c), in);
}

TEST(Compress, RandomDataRoundTrip) {
  Rng rng(99);
  Bytes in(100000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next());
  Bytes c = lz_compress(in);
  EXPECT_EQ(lz_decompress(c), in);
}

// Property sweep: round-trip across sizes and redundancy mixes.
class CompressRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompressRoundTrip, Holds) {
  const auto [size, redundancy_pct] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 131 + redundancy_pct);
  Bytes in;
  in.reserve(size);
  while (in.size() < static_cast<std::size_t>(size)) {
    if (static_cast<int>(rng.below(100)) < redundancy_pct && in.size() > 16) {
      // Copy an earlier run to create matchable redundancy.
      const std::size_t start = rng.below(in.size() - 8);
      const std::size_t len = 4 + rng.below(32);
      for (std::size_t i = 0; i < len && in.size() < (std::size_t)size; ++i) {
        in.push_back(in[start + (i % 8)]);
      }
    } else {
      in.push_back(static_cast<std::uint8_t>(rng.next()));
    }
  }
  EXPECT_EQ(lz_decompress(lz_compress(in)), in);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CompressRoundTrip,
    ::testing::Combine(::testing::Values(1, 5, 64, 1000, 65537, 300000),
                       ::testing::Values(0, 50, 95)));

TEST(Compress, CorruptInputThrows) {
  std::string s(1000, 'x');
  Bytes c = lz_compress(s.data(), s.size());
  c.resize(c.size() / 2);
  EXPECT_THROW(lz_decompress(c), Error);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi, std::size_t) {
      long local = 0;
      for (std::size_t i = lo; i < hi; ++i) local += static_cast<long>(i);
      sum += local;
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(RunningStat, Moments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

}  // namespace
}  // namespace gw::util
