// Block compression for intermediate data.
//
// The paper (§III-B) stores all cached and spilled intermediate Partitions
// "in a serialized and compressed form". We implement a small LZ77-family
// byte compressor (greedy hash-chain matcher, varint-framed literals/copies)
// rather than linking an external codec: fast, dependency-free, and its
// measured input/output sizes feed the disk and network cost models.
#pragma once

#include <cstddef>

#include "util/bytes.h"

namespace gw::util {

// Compresses `input`; output is self-framing (decompress needs no size).
Bytes lz_compress(const void* input, std::size_t len);
inline Bytes lz_compress(const Bytes& in) {
  return lz_compress(in.data(), in.size());
}

// Inverse of lz_compress. Throws util::Error on malformed input.
Bytes lz_decompress(const void* input, std::size_t len);
inline Bytes lz_decompress(const Bytes& in) {
  return lz_decompress(in.data(), in.size());
}

// Decompresses into `out` (cleared first, capacity retained), so callers can
// recycle scratch buffers across runs instead of allocating per call.
void lz_decompress_into(const void* input, std::size_t len, Bytes& out);

}  // namespace gw::util
