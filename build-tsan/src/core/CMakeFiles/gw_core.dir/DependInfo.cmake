
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cc" "src/core/CMakeFiles/gw_core.dir/api.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/api.cc.o.d"
  "/root/repo/src/core/collector.cc" "src/core/CMakeFiles/gw_core.dir/collector.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/collector.cc.o.d"
  "/root/repo/src/core/intermediate.cc" "src/core/CMakeFiles/gw_core.dir/intermediate.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/intermediate.cc.o.d"
  "/root/repo/src/core/job.cc" "src/core/CMakeFiles/gw_core.dir/job.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/job.cc.o.d"
  "/root/repo/src/core/kv.cc" "src/core/CMakeFiles/gw_core.dir/kv.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/kv.cc.o.d"
  "/root/repo/src/core/kv_reference.cc" "src/core/CMakeFiles/gw_core.dir/kv_reference.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/kv_reference.cc.o.d"
  "/root/repo/src/core/map_pipeline.cc" "src/core/CMakeFiles/gw_core.dir/map_pipeline.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/map_pipeline.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/gw_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/reduce_pipeline.cc" "src/core/CMakeFiles/gw_core.dir/reduce_pipeline.cc.o" "gcc" "src/core/CMakeFiles/gw_core.dir/reduce_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/gwcl/CMakeFiles/gw_cl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gwdfs/CMakeFiles/gw_dfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/gw_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/simnet/CMakeFiles/gw_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/gw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
