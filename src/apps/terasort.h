// TeraSort (TS): totally-ordered sort of 100-byte records (paper §IV-A1).
//
// Records are gensort-style: a 10-byte random key plus a 90-byte payload.
// The job's output must be totally ordered ACROSS partitions, so the input
// is sampled to estimate the key distribution and the map function places
// each key into the right range partition; no reduce function is needed —
// the output is fully processed by the end of the intermediate-data merge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common.h"
#include "gwdfs/fs.h"
#include "sim/sim.h"
#include "util/bytes.h"

namespace gw::apps {

constexpr std::uint64_t kTeraRecordSize = 100;
constexpr std::uint64_t kTeraKeySize = 10;

// AppSpec with an identity map and NO reduce; the partition function must
// be installed separately (see sample_range_partitioner).
AppSpec terasort();

// Samples record keys from the inputs (charging the reads) and returns a
// monotone range partitioner: equal-frequency quantiles over the samples.
// Mirrors TeraSort's client-side sampling pre-pass.
sim::Task<core::PartitionFn> sample_range_partitioner(
    dfs::FileSystem& fs, int node, std::vector<std::string> paths,
    std::size_t samples_per_file);

// Generates `records` gensort-like records.
util::Bytes generate_terasort(std::uint64_t records, std::uint64_t seed);

// Verification helpers: multiset checksum (order-independent) and record
// count; outputs must be sorted per file, globally ordered across partition
// indices, and checksum/count-preserving.
std::uint64_t terasort_checksum(const util::Bytes& data);

}  // namespace gw::apps
