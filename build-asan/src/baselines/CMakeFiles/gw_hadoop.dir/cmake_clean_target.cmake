file(REMOVE_RECURSE
  "libgw_hadoop.a"
)
