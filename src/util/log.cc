#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <mutex>

namespace gw::util {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return static_cast<LogLevel>(g_threshold.load()); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level));
}

void log_message(LogLevel level, double sim_time, const char* fmt, ...) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (sim_time >= 0) {
    std::fprintf(stderr, "[%s t=%.6f] ", level_name(level), sim_time);
  } else {
    std::fprintf(stderr, "[%s] ", level_name(level));
  }
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace gw::util
