// Tests for the simulated network fabric and cluster platform.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "simnet/fabric.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;
using net::Fabric;
using net::Message;
using net::NetworkProfile;

Platform make_platform(int nodes,
                       NetworkProfile profile = NetworkProfile::qdr_infiniband_ipoib()) {
  return Platform(
      ClusterSpec::homogeneous(nodes, NodeSpec::das4_type1(), profile));
}

TEST(Fabric, DeliversPayloadIntact) {
  Platform p = make_platform(2);
  util::Bytes payload = {1, 2, 3, 4, 5};
  util::Bytes received;
  auto sender = [](Platform& pl, util::Bytes data) -> sim::Task<> {
    co_await pl.fabric().send(0, 1, net::kPortShuffle, std::move(data));
  };
  auto receiver = [](Platform& pl, util::Bytes* out) -> sim::Task<> {
    auto msg = co_await pl.fabric().inbox(1, net::kPortShuffle).recv();
    EXPECT_TRUE(msg.has_value());  // ASSERT_* returns, which coroutines forbid
    if (!msg) co_return;
    EXPECT_EQ(msg->src, 0);
    *out = std::move(msg->payload);
  };
  p.sim().spawn(sender(p, payload));
  p.sim().spawn(receiver(p, &received));
  p.sim().run();
  EXPECT_EQ(received, payload);
}

TEST(Fabric, TransferTimeMatchesBandwidthPlusLatency) {
  NetworkProfile prof{"test", 100e6, 1e-3, 0.0};
  Platform p = make_platform(2, prof);
  auto sender = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().transfer(0, 1, 50'000'000);  // 0.5 s at 100 MB/s
  };
  p.sim().spawn(sender(p));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 0.501, 1e-9);
}

TEST(Fabric, LocalSendIsFree) {
  Platform p = make_platform(2);
  auto sender = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().send(0, 0, net::kPortShuffle, util::Bytes(1 << 20));
  };
  p.sim().spawn(sender(p));
  p.sim().run();
  EXPECT_DOUBLE_EQ(p.sim().now(), 0.0);
  EXPECT_EQ(p.fabric().inbox(0, net::kPortShuffle).size(), 1u);
}

TEST(Fabric, SenderNicSerializesOutgoingTraffic) {
  NetworkProfile prof{"test", 100e6, 0.0, 0.0};
  Platform p = make_platform(3, prof);
  // Two 1-second transfers from node 0 must serialize on its TX unit.
  auto sender = [](Platform& pl, int dst) -> sim::Task<> {
    co_await pl.fabric().transfer(0, dst, 100'000'000);
  };
  p.sim().spawn(sender(p, 1));
  p.sim().spawn(sender(p, 2));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 2.0, 1e-9);
}

TEST(Fabric, DisjointPairsRunInParallel) {
  NetworkProfile prof{"test", 100e6, 0.0, 0.0};
  Platform p = make_platform(4, prof);
  auto sender = [](Platform& pl, int src, int dst) -> sim::Task<> {
    co_await pl.fabric().transfer(src, dst, 100'000'000);
  };
  p.sim().spawn(sender(p, 0, 1));
  p.sim().spawn(sender(p, 2, 3));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 1.0, 1e-9);
}

TEST(Fabric, StatsAccumulate) {
  Platform p = make_platform(2);
  auto sender = [](Platform& pl) -> sim::Task<> {
    co_await pl.fabric().transfer(0, 1, 1000);
    co_await pl.fabric().transfer(0, 1, 500);
  };
  p.sim().spawn(sender(p));
  p.sim().run();
  EXPECT_EQ(p.fabric().bytes_sent(0), 1500u);
  EXPECT_EQ(p.fabric().bytes_received(1), 1500u);
  EXPECT_EQ(p.fabric().messages_sent(0), 2u);
  EXPECT_EQ(p.fabric().total_bytes_sent(), 1500u);
}

TEST(Fabric, ClosePortWakesReceiver) {
  Platform p = make_platform(1);
  bool saw_eof = false;
  auto receiver = [](Platform& pl, bool* eof) -> sim::Task<> {
    auto msg = co_await pl.fabric().inbox(0, net::kPortShuffle).recv();
    *eof = !msg.has_value();
  };
  auto closer = [](Platform& pl) -> sim::Task<> {
    co_await pl.sim().delay(1.0);
    pl.fabric().close_port(0, net::kPortShuffle);
  };
  p.sim().spawn(receiver(p, &saw_eof));
  p.sim().spawn(closer(p));
  p.sim().run();
  EXPECT_TRUE(saw_eof);
}

TEST(Node, DiskReadTimeMatchesModel) {
  Platform p = make_platform(1);
  const auto& disk = p.node(0).spec().disk;
  auto reader = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).disk_read(100 << 20);
  };
  p.sim().spawn(reader(p));
  p.sim().run();
  const double expected =
      disk.seek_latency_s + (100 << 20) / disk.read_bw_bytes_per_s;
  EXPECT_NEAR(p.sim().now(), expected, 1e-9);
  EXPECT_EQ(p.node(0).disk_bytes_read(), static_cast<std::uint64_t>(100 << 20));
}

TEST(Node, DiskOperationsSerialize) {
  Platform p = make_platform(1);
  auto reader = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).disk_read(100 << 20);
  };
  p.sim().spawn(reader(p));
  p.sim().spawn(reader(p));
  p.sim().run();
  const auto& disk = p.node(0).spec().disk;
  const double one = disk.seek_latency_s + (100 << 20) / disk.read_bw_bytes_per_s;
  EXPECT_NEAR(p.sim().now(), 2 * one, 1e-9);
}

TEST(Node, CpuWorkTimesharesCores) {
  Platform p = make_platform(1);
  const int cores = p.node(0).spec().hw_threads;
  // 2x cores workers, each needing 1 s of CPU: with timesharing the whole
  // batch completes in ~2 s.
  auto worker = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).cpu_work(1.0);
  };
  for (int i = 0; i < 2 * cores; ++i) p.sim().spawn(worker(p));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 2.0, 0.05);
}

TEST(Node, CpuWorkSingleWorkerUnaffectedByFreeCores) {
  Platform p = make_platform(1);
  auto worker = [](Platform& pl) -> sim::Task<> {
    co_await pl.node(0).cpu_work(3.0);
  };
  p.sim().spawn(worker(p));
  p.sim().run();
  EXPECT_NEAR(p.sim().now(), 3.0, 1e-9);
}

TEST(Platform, SpecsExposeDas4Types) {
  const NodeSpec t1 = NodeSpec::das4_type1();
  const NodeSpec t2 = NodeSpec::das4_type2();
  EXPECT_EQ(t1.hw_threads, 16);
  EXPECT_EQ(t2.hw_threads, 24);
  EXPECT_GT(t2.ram_bytes, t1.ram_bytes);
}

TEST(TaskGroup, JoinsAllChildren) {
  Platform p = make_platform(1);
  int done = 0;
  auto child = [](Platform& pl, double t, int* n) -> sim::Task<> {
    co_await pl.sim().delay(t);
    ++*n;
  };
  auto parent = [&child](Platform& pl, int* n) -> sim::Task<> {
    sim::TaskGroup group(pl.sim());
    group.spawn(child(pl, 1.0, n));
    group.spawn(child(pl, 2.0, n));
    group.spawn(child(pl, 3.0, n));
    co_await group.wait();
    EXPECT_EQ(*n, 3);
  };
  p.sim().spawn(parent(p, &done));
  p.sim().run();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(p.sim().now(), 3.0);
}

TEST(TaskGroup, PropagatesChildException) {
  Platform p = make_platform(1);
  bool caught = false;
  auto bad_child = [](Platform& pl) -> sim::Task<> {
    co_await pl.sim().delay(0.5);
    util::throw_error("child failed");
  };
  auto parent = [&bad_child](Platform& pl, bool* flag) -> sim::Task<> {
    sim::TaskGroup group(pl.sim());
    group.spawn(bad_child(pl));
    try {
      co_await group.wait();
    } catch (const util::Error&) {
      *flag = true;
    }
  };
  p.sim().spawn(parent(p, &caught));
  p.sim().run();
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace gw
