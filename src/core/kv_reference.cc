#include "core/kv_reference.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <queue>

namespace gw::core::reference {

Run merge_runs(const std::vector<const Run*>& inputs, bool compress) {
  struct Source {
    RunReader reader;
    KV current;
    std::size_t index;
  };
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto src = std::make_unique<Source>(Source{RunReader(*inputs[i]), KV{}, i});
    if (src->reader.next(&src->current)) sources.push_back(std::move(src));
  }
  auto cmp = [](const Source* a, const Source* b) {
    if (a->current.key != b->current.key) return a->current.key > b->current.key;
    return a->index > b->index;  // stable: earlier runs first
  };
  std::priority_queue<Source*, std::vector<Source*>, decltype(cmp)> heap(cmp);
  for (auto& s : sources) heap.push(s.get());

  RunBuilder builder;
  while (!heap.empty()) {
    Source* s = heap.top();
    heap.pop();
    builder.add(s->current.key, s->current.value);
    if (s->reader.next(&s->current)) heap.push(s);
  }
  return builder.finish(compress);
}

Run merge_runs(const std::vector<Run>& inputs, bool compress) {
  std::vector<const Run*> ptrs;
  ptrs.reserve(inputs.size());
  for (const auto& r : inputs) ptrs.push_back(&r);
  return reference::merge_runs(ptrs, compress);
}

PairList sorted_by_key(const PairList& in) {
  std::vector<std::size_t> idx(in.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&in](std::size_t a, std::size_t b) {
                     return in.get(a).key < in.get(b).key;
                   });
  PairList out;
  for (std::size_t i : idx) {
    const KV kv = in.get(i);
    out.add(kv.key, kv.value);
  }
  return out;
}

}  // namespace gw::core::reference
