#include "apps/terasort.h"

#include <algorithm>
#include <memory>

#include "util/error.h"
#include "util/hash.h"
#include "util/rng.h"

namespace gw::apps {

namespace {

void ts_map(std::string_view record, core::MapContext& ctx) {
  // Identity: split the record into key and payload; negligible compute.
  ctx.charge_ops(10);
  ctx.emit(record.substr(0, kTeraKeySize), record.substr(kTeraKeySize));
}

}  // namespace

AppSpec terasort() {
  AppSpec spec;
  spec.kernels.name = "terasort";
  spec.kernels.map = ts_map;
  spec.kernels.fixed_record_size = kTeraRecordSize;
  // No reduce: output is complete when the shuffle's merge finishes.
  return spec;
}

sim::Task<core::PartitionFn> sample_range_partitioner(
    dfs::FileSystem& fs, int node, std::vector<std::string> paths,
    std::size_t samples_per_file) {
  auto samples = std::make_shared<std::vector<std::string>>();
  for (const auto& path : paths) {
    const std::uint64_t size = fs.file_size(path);
    const std::uint64_t records = size / kTeraRecordSize;
    const std::uint64_t take =
        std::min<std::uint64_t>(samples_per_file, records);
    if (take == 0) continue;
    const std::uint64_t stride = records / take;
    // Strided sampling across the file; reads are charged per sample batch.
    for (std::uint64_t s = 0; s < take; ++s) {
      const std::uint64_t off = s * stride * kTeraRecordSize;
      util::Bytes rec = co_await fs.read(node, path, off, kTeraKeySize);
      samples->emplace_back(rec.begin(), rec.end());
    }
  }
  std::sort(samples->begin(), samples->end());
  co_return core::PartitionFn(
      [samples](std::string_view key, std::uint32_t total) -> std::uint32_t {
        if (samples->empty()) return 0;
        // Equal-frequency quantiles: rank of key among samples -> bucket.
        const auto it = std::upper_bound(samples->begin(), samples->end(),
                                         key,
                                         [](std::string_view k,
                                            const std::string& s) {
                                           return k < std::string_view(s);
                                         });
        const std::size_t rank =
            static_cast<std::size_t>(it - samples->begin());
        const std::uint64_t bucket =
            static_cast<std::uint64_t>(rank) * total / (samples->size() + 1);
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(bucket, total - 1));
      });
}

util::Bytes generate_terasort(std::uint64_t records, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes data;
  data.reserve(records * kTeraRecordSize);
  for (std::uint64_t r = 0; r < records; ++r) {
    // 10-byte key: printable ASCII like gensort (' '..'~').
    for (std::uint64_t i = 0; i < kTeraKeySize; ++i) {
      data.push_back(static_cast<std::uint8_t>(' ' + rng.below(95)));
    }
    // 90-byte payload: record number + filler.
    std::string payload = std::to_string(r);
    payload.resize(kTeraRecordSize - kTeraKeySize, 'x');
    data.insert(data.end(), payload.begin(), payload.end());
  }
  return data;
}

std::uint64_t terasort_checksum(const util::Bytes& data) {
  GW_CHECK(data.size() % kTeraRecordSize == 0);
  std::uint64_t checksum = 0;
  for (std::size_t off = 0; off < data.size(); off += kTeraRecordSize) {
    checksum ^= util::fnv1a(data.data() + off, kTeraRecordSize);
  }
  return checksum;
}

}  // namespace gw::apps
