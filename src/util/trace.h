// Simulated-timeline tracing.
//
// Every engine (Glasswing, Hadoop, GPMR) records what it does as typed
// span/instant events stamped with the SIMULATED clock: stage busy
// intervals, kernel launches, PCIe transfers, shuffle sends, merge rounds,
// cache spills, task retries, phase boundaries. Events land in a bounded
// per-node ring buffer (export payload) and simultaneously feed streaming
// per-stage occupancy accumulators (exact aggregates, immune to ring
// overflow). The ring exports as Chrome `trace_event` JSON — loadable in
// about:tracing / Perfetto — with one process per simulated node and one
// thread per track (a stage worker, a device queue, a merger thread).
//
// Tracing is a PURE OBSERVER of the simulation: recording an event never
// schedules, suspends, or otherwise perturbs the event loop, so traced and
// untraced runs are bit-identical. The occupancy accumulators replicate the
// float arithmetic of plain interval timers (busy += end - start in event
// order), so breakdowns derived here equal the ad-hoc per-engine timers
// they replaced, bit for bit.
//
// Threading: all record calls happen on the simulation thread (host-pool
// offload jobs must not trace); the Tracer is deliberately unsynchronized.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gw::trace {

// Event type. `kind_name` doubles as the Chrome-trace category.
enum class Kind : std::uint8_t {
  kStage = 0,  // pipeline-stage busy interval
  kPhase,      // engine phase (map / merge / reduce / io)
  kKernel,     // device kernel execution (arg = modeled ops)
  kTransfer,   // PCIe staging transfer (arg = bytes)
  kShuffle,    // shuffle send handed to the network (arg = bytes)
  kMerge,      // intermediate-store merge round (arg = fan-in)
  kSpill,      // cache spill to disk (arg = stored bytes)
  kRetry,      // task re-execution (arg = split index)
  kLink,       // network link busy interval (arg = bytes on the wire)
  kRecovery,   // node-crash recovery activity (arg = node / round)
  kCombine,    // hierarchical combine pass (arg = input bytes)
  kRound,      // one executed DAG round (arg = round index)
  kMark,       // untyped instant
};
const char* kind_name(Kind k);

// A registered track: (simulated node, per-node thread index). Tracks give
// events a stable home in the exported trace; registration order is
// deterministic because it happens on the single-threaded sim.
struct TrackRef {
  std::int32_t node = -1;
  std::int32_t track = -1;
  bool valid() const { return node >= 0; }
};

// One recorded event (28 bytes + padding). Span begin/end pairs share the
// interned name; instants stand alone.
struct Event {
  double t = 0;             // simulated seconds
  std::uint64_t arg = 0;    // kind-specific payload (bytes, ops, fan-in)
  std::int32_t name = -1;   // interned via Tracer::intern
  std::int32_t track = -1;  // per-node thread index
  Kind kind = Kind::kMark;
  std::uint8_t type = 0;  // 0 = begin, 1 = end, 2 = instant
};

// Reduction of one span name on one node: the union of its busy intervals
// across all tracks carrying that name, plus the per-track maximum (the
// paper's Fig 4(a) partition-stage metric: max over worker threads).
struct Occupancy {
  double busy = 0;            // union of busy intervals
  double max_track_busy = 0;  // max over per-track busy sums
  double first_begin = 0;
  double last_end = 0;
  std::uint64_t intervals = 0;  // union intervals (concurrent spans merge)
  std::uint64_t spans = 0;      // individual spans closed
  bool seen = false;

  double elapsed() const { return seen ? last_end - first_begin : 0.0; }
};

class Tracer {
 public:
  Tracer();

  // Interns a span name; ids are stable for the Tracer's lifetime
  // (clear() keeps them, so refs cached across jobs stay valid).
  std::int32_t intern(std::string_view name);
  const std::string& name(std::int32_t id) const;

  // Registers a track on `node` (>= 0). The label becomes the Chrome-trace
  // thread name ("map.partition/2", "device:GTX480", "store/0", "phase").
  // With `reuse`, a label already registered on the node returns its
  // existing track instead of a fresh one — for spans that re-open on the
  // same timeline row across job residencies (preemption/resume). Callers
  // must guarantee such spans never overlap the label's earlier spans.
  TrackRef track(std::int32_t node, std::string_view label,
                 bool reuse = false);

  // --- recording (simulated timestamps; pure observers) ---
  void begin(TrackRef ref, Kind kind, std::int32_t name, double now,
             std::uint64_t arg = 0);
  void end(TrackRef ref, Kind kind, std::int32_t name, double now,
           std::uint64_t arg = 0);
  void instant(TrackRef ref, Kind kind, std::int32_t name, double now,
               std::uint64_t arg = 0);

  // Drops all events and occupancy state, keeping interned names and
  // registered tracks (device/store tracks are registered at construction
  // and must survive across jobs on the same platform). Runtimes call this
  // at job start so a trace covers exactly one job.
  void clear();

  // Drops only the occupancy accumulators, keeping the event ring. DAG
  // rounds call this between jobs so per-round stage breakdowns are not
  // cumulative while the exported trace still covers the whole DAG.
  void reset_occupancy();

  // --- reduction ---
  // Occupancy of span `name` on `node`; zero-initialized if never seen.
  Occupancy occupancy(std::int32_t node, std::string_view name) const;
  // All span names seen on `node`, in first-appearance order.
  std::vector<std::string> span_names(std::int32_t node) const;
  std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(nodes_.size());
  }

  // --- export ---
  // Chrome trace_event JSON (object format with a traceEvents array).
  // Timestamps are microseconds; pid = node, tid = track.
  std::string chrome_json() const;
  bool save_chrome_json(const std::string& path) const;

  // Structural self-check over the retained events: per-track spans must be
  // balanced and properly nested, timestamps monotone per node. Returns an
  // empty string when valid, else a description of the first violation.
  // Skipped (returns empty) when the ring dropped events.
  std::string validate() const;

  std::uint64_t recorded() const;  // total events recorded (incl. dropped)
  std::uint64_t dropped() const;   // events evicted by ring overflow

  // Ring capacity per node; settable before events are recorded. Defaults
  // to GW_TRACE_RING (events) or 1<<16.
  std::size_t ring_capacity() const { return ring_capacity_; }
  void set_ring_capacity(std::size_t events);

 private:
  struct TrackAcc {
    std::int32_t track = -1;
    double busy = 0;
    double started = 0;
    bool running = false;
  };
  // Streaming accumulator for one (node, span name). The union arithmetic
  // is byte-compatible with the old ActivityTimer: busy += now - started
  // when the active count returns to zero.
  struct Acc {
    int active = 0;
    double union_started = 0;
    double busy = 0;
    double first_begin = 0;
    double last_end = 0;
    std::uint64_t intervals = 0;
    std::uint64_t spans = 0;
    bool seen = false;
    std::vector<TrackAcc> tracks;
  };
  struct NodeState {
    std::vector<Event> ring;
    std::uint64_t count = 0;  // total recorded on this node
    std::vector<std::string> track_labels;
    std::vector<Acc> accs;            // indexed by interned name id (sparse)
    std::vector<std::int32_t> order;  // name ids in first-appearance order
  };

  NodeState& node_state(std::int32_t node);
  Acc& acc(NodeState& ns, std::int32_t name);
  static TrackAcc& track_acc(Acc& a, std::int32_t track);
  void record(NodeState& ns, const Event& e);

  std::vector<std::string> names_;
  std::vector<NodeState> nodes_;
  std::size_t ring_capacity_;
};

}  // namespace gw::trace
