# Empty compiler generated dependencies file for gw_core.
# This may be replaced when dependencies are built.
