#!/usr/bin/env sh
# Runs the host-path throughput microbenchmarks and records the results as
# BENCH_hostpath.json in the repo root, so the real-time perf trajectory of
# the sort/merge/compress/collect primitives is tracked PR over PR.
#
# Usage: bench/run_host_path.sh [extra google-benchmark flags]
#   BUILD_DIR  build tree containing bench/host_path (default: build)
#   OUT        output JSON path (default: BENCH_hostpath.json)
set -eu

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_hostpath.json}"

"${BUILD_DIR}/bench/host_path" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

echo "wrote ${OUT}"
