// Multi-tenant scheduler tests: concurrent jobs on a shared cluster must
// produce byte-identical outputs to solo runs, stay deterministic across
// GW_THREADS settings, respect admission control, avoid priority
// starvation (aging), and survive a tenant's node crashes.
#include <algorithm>
#include <bit>
#include <cctype>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/workload.h"
#include "core/pipeline.h"
#include "core/sched.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gw::core {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
}

// --- tiny inline wordcount (same app as core_job_test) ---

void wc_map(std::string_view record, MapContext& ctx) {
  std::size_t i = 0;
  while (i < record.size()) {
    while (i < record.size() &&
           !std::isalpha(static_cast<unsigned char>(record[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < record.size() &&
           std::isalpha(static_cast<unsigned char>(record[i]))) {
      ++i;
    }
    if (i > start) {
      ctx.charge_ops(2 * (i - start));
      ctx.emit(record.substr(start, i - start), "1");
    }
  }
}

std::uint64_t parse_count(std::string_view v) {
  std::uint64_t n = 0;
  for (char c : v) n = n * 10 + static_cast<std::uint64_t>(c - '0');
  return n;
}

void wc_sum(std::string_view key, const std::vector<std::string_view>& values,
            ReduceContext& ctx) {
  std::uint64_t total = 0;
  for (auto v : values) total += parse_count(v);
  ctx.charge_ops(values.size());
  ctx.emit(key, std::to_string(total));
}

AppKernels wordcount_app() {
  AppKernels app;
  app.name = "wc-test";
  app.map = wc_map;
  app.combine = wc_sum;
  app.reduce = wc_sum;
  return app;
}

std::string make_text(std::size_t lines, std::uint64_t seed) {
  static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                                 "zeta",  "eta",  "theta", "iota",  "kappa"};
  util::Rng rng(seed);
  util::ZipfSampler zipf(10, 1.0);
  std::string text;
  for (std::size_t l = 0; l < lines; ++l) {
    for (int w = 0; w < 8; ++w) {
      text += kWords[zipf.sample(rng)];
      text += ' ';
    }
    text += '\n';
  }
  return text;
}

std::map<std::string, std::uint64_t> reference_counts(const std::string& text) {
  std::map<std::string, std::uint64_t> counts;
  std::string word;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      word += c;
    } else if (!word.empty()) {
      counts[word]++;
      word.clear();
    }
  }
  if (!word.empty()) counts[word]++;
  return counts;
}

void write_file(Platform& p, dfs::FileSystem& fs, const std::string& path,
                const std::string& contents) {
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   std::string c) -> sim::Task<> {
    co_await f.write(0, pa, util::Bytes(c.begin(), c.end()));
  }(fs, path, contents));
  p.sim().run();
}

util::Bytes read_file(Platform& p, dfs::FileSystem& fs,
                      const std::string& path) {
  util::Bytes out;
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes* o) -> sim::Task<> {
    const int node = f.block_locations(pa, 0).front();
    *o = co_await f.read_all(node, pa);
  }(fs, path, &out));
  p.sim().run();
  return out;
}

// All of a job's output files, path -> raw bytes (sorted by path).
std::map<std::string, util::Bytes> output_bytes(Platform& p,
                                                dfs::FileSystem& fs,
                                                const JobResult& r) {
  std::map<std::string, util::Bytes> out;
  for (const auto& path : r.output_files) {
    out[path] = read_file(p, fs, path);
  }
  return out;
}

std::map<std::string, std::uint64_t> output_counts(Platform& p,
                                                   dfs::FileSystem& fs,
                                                   const JobResult& r) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& path : r.output_files) {
    util::Bytes contents = read_file(p, fs, path);
    for (auto& [k, v] : read_output_file(contents)) {
      counts[k] += parse_count(v);
    }
  }
  return counts;
}

apps::WorkloadConfig small_workload(int jobs, double rate) {
  apps::WorkloadConfig wl;
  wl.jobs = jobs;
  wl.tenants = 2;
  wl.arrival_rate_jobs_per_s = rate;
  wl.seed = 11;
  wl.small_bytes = 192 << 10;
  wl.large_bytes = 512 << 10;
  wl.small_split_bytes = 64 << 10;
  wl.large_split_bytes = 128 << 10;
  return wl;
}

// Solo baseline: the same workload's jobs executed one at a time through
// the legacy single-job entry point, on a fresh identical cluster.
std::vector<std::map<std::string, util::Bytes>> run_solo(
    const apps::WorkloadConfig& wl, int nodes) {
  Platform p = make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  auto requests = apps::make_mixed_workload(p, fs, wl);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  std::vector<std::map<std::string, util::Bytes>> out;
  for (auto& req : requests) {
    JobResult r = rt.run(req.app, req.config);
    out.push_back(output_bytes(p, fs, r));
  }
  return out;
}

struct SharedRun {
  std::vector<std::map<std::string, util::Bytes>> outputs;
  std::vector<double> latencies;
  int resident_peak = 0;
  double makespan = 0;
};

SharedRun run_shared(const apps::WorkloadConfig& wl, int nodes,
                     SchedPolicy policy, int max_resident = 4) {
  Platform p = make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  auto requests = apps::make_mixed_workload(p, fs, wl);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = policy;
  sc.max_resident_jobs = max_resident;
  Scheduler sched(rt, p, fs, sc);
  for (auto& req : requests) sched.submit(std::move(req));
  const double t0 = p.sim().now();
  sched.run_all();
  SharedRun out;
  out.makespan = p.sim().now() - t0;
  out.resident_peak = sched.resident_peak();
  for (const auto& j : sched.results()) {
    EXPECT_FALSE(j.rejected);
    EXPECT_FALSE(j.failed);
    out.outputs.push_back(output_bytes(p, fs, j.result));
    out.latencies.push_back(j.latency_s);
  }
  return out;
}

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

// --- byte identity: solo vs concurrent, across GW_THREADS ---

TEST(Sched, ConcurrentMixedJobsByteIdenticalToSoloAcrossThreadCounts) {
  const int kNodes = 8;
  // High offered load so all four jobs are resident together.
  const apps::WorkloadConfig wl = small_workload(4, 200.0);

  util::ThreadPool::reset_global(1);
  const auto solo = run_solo(wl, kNodes);
  ASSERT_EQ(solo.size(), 4u);
  for (const auto& job : solo) ASSERT_FALSE(job.empty());

  SharedRun base;
  bool have_base = false;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool::reset_global(threads);
    SCOPED_TRACE("GW_THREADS=" + std::to_string(threads));
    SharedRun shared = run_shared(wl, kNodes, SchedPolicy::kFifo);
    ASSERT_EQ(shared.outputs.size(), solo.size());
    EXPECT_GE(shared.resident_peak, 2);
    // Each concurrent job's output files: same names, same bytes as its
    // solo run.
    for (std::size_t i = 0; i < solo.size(); ++i) {
      EXPECT_EQ(shared.outputs[i], solo[i]) << "job " << i;
    }
    // And the whole multi-tenant timeline is GW_THREADS-invariant.
    if (!have_base) {
      base = std::move(shared);
      have_base = true;
    } else {
      EXPECT_EQ(bits(shared.makespan), bits(base.makespan));
      for (std::size_t i = 0; i < base.latencies.size(); ++i) {
        EXPECT_EQ(bits(shared.latencies[i]), bits(base.latencies[i]));
      }
    }
  }
  util::ThreadPool::reset_global(0);
}

TEST(Sched, SingleJobThroughSchedulerMatchesSolo) {
  const int kNodes = 8;
  const apps::WorkloadConfig wl = small_workload(1, 1.0);
  const auto solo = run_solo(wl, kNodes);
  ASSERT_EQ(solo.size(), 1u);
  SharedRun shared = run_shared(wl, kNodes, SchedPolicy::kFifo);
  ASSERT_EQ(shared.outputs.size(), 1u);
  EXPECT_EQ(shared.outputs[0], solo[0]);
  EXPECT_EQ(shared.resident_peak, 1);
}

// --- admission control ---

TEST(Sched, AdmissionControlBoundsResidency) {
  const apps::WorkloadConfig wl = small_workload(4, 200.0);
  SharedRun one = run_shared(wl, 4, SchedPolicy::kFifo, /*max_resident=*/1);
  EXPECT_EQ(one.resident_peak, 1);
  SharedRun two = run_shared(wl, 4, SchedPolicy::kFifo, /*max_resident=*/2);
  EXPECT_LE(two.resident_peak, 2);
}

TEST(Sched, BoundedQueueRejectsOverflow) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  const std::string text = make_text(400, 3);
  write_file(p, fs, "/in/t", text);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.max_resident_jobs = 1;
  sc.max_queued_jobs = 1;
  Scheduler sched(rt, p, fs, sc);
  for (int i = 0; i < 4; ++i) {
    JobRequest req;
    req.name = "wc";
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/j" + std::to_string(i);
    req.config.split_size = 32 << 10;
    req.arrival_s = 0.0001 * i;  // all arrive while job 0 still runs
    sched.submit(std::move(req));
  }
  sched.run_all();
  EXPECT_GT(sched.jobs_rejected(), 0);
  EXPECT_EQ(sched.jobs_failed(), 0);
  int finished = 0;
  for (const auto& j : sched.results()) {
    if (!j.rejected) {
      EXPECT_FALSE(j.failed);
      ++finished;
    }
  }
  EXPECT_EQ(finished + sched.jobs_rejected(), 4);
}

// --- starvation guard: priority aging ---

double low_priority_admit_time(double aging_s) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/t", make_text(600, 5));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = SchedPolicy::kPriority;
  sc.max_resident_jobs = 1;
  sc.priority_aging_s = aging_s;
  Scheduler sched(rt, p, fs, sc);
  // A steady stream of urgent (class 0) jobs...
  for (int i = 0; i < 8; ++i) {
    JobRequest req;
    req.name = "hot";
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/hot" + std::to_string(i);
    req.config.split_size = 32 << 10;
    req.priority = 0;
    req.arrival_s = 0.002 * i;
    sched.submit(std::move(req));
  }
  // ...and one cold batch job (class 1) arriving near the front.
  JobRequest cold;
  cold.name = "cold";
  cold.app = wordcount_app();
  cold.config.input_paths = {"/in/t"};
  cold.config.output_path = "/out/cold";
  cold.config.split_size = 32 << 10;
  cold.priority = 1;
  cold.arrival_s = 0.001;
  const int cold_id = sched.submit(std::move(cold));
  sched.run_all();
  const auto& r = sched.results()[static_cast<std::size_t>(cold_id)];
  EXPECT_FALSE(r.rejected);
  EXPECT_FALSE(r.failed);
  return r.admit_s;
}

TEST(Sched, PriorityAgingGuardsAgainstStarvation) {
  const double strict = low_priority_admit_time(0);
  const double aged = low_priority_admit_time(0.01);
  // Strict classes make the cold job wait out every hot job; aging promotes
  // it past later hot arrivals.
  EXPECT_LT(aged, strict);
}

// --- fair vs fifo: the light tenant's small jobs shouldn't queue behind
// the heavy tenant's backlog ---

TEST(Sched, FairShareHelpsLightTenantOverFifo) {
  auto light_wait = [](SchedPolicy policy) {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    write_file(p, fs, "/in/big", make_text(4000, 7));
    write_file(p, fs, "/in/small", make_text(200, 8));
    GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
    SchedulerConfig sc;
    sc.policy = policy;
    sc.max_resident_jobs = 1;
    Scheduler sched(rt, p, fs, sc);
    std::vector<int> small_ids;
    for (int i = 0; i < 6; ++i) {
      const bool heavy = i % 2 == 0;  // tenant 0 submits big jobs
      JobRequest req;
      req.name = heavy ? "big" : "small";
      req.tenant = heavy ? 0 : 1;
      req.app = wordcount_app();
      req.config.input_paths = {heavy ? "/in/big" : "/in/small"};
      req.config.output_path = "/out/j" + std::to_string(i);
      req.config.split_size = 32 << 10;
      req.arrival_s = 0.001 * i;
      const int id = sched.submit(std::move(req));
      if (!heavy) small_ids.push_back(id);
    }
    sched.run_all();
    double total = 0;
    for (int id : small_ids) {
      total += sched.results()[static_cast<std::size_t>(id)].queue_wait_s;
    }
    return total;
  };
  const double fifo = light_wait(SchedPolicy::kFifo);
  const double fair = light_wait(SchedPolicy::kFair);
  EXPECT_LT(fair, fifo);
}

// --- crashes under multi-tenancy ---

class SchedCrash : public ::testing::TestWithParam<SchedPolicy> {};

TEST_P(SchedCrash, NeighbourCrashDoesNotHangOrCorruptOtherTenants) {
  Platform p = make_platform(4);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  const std::string text = make_text(1500, 9);
  write_file(p, fs, "/in/t", text);
  const auto expected = reference_counts(text);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = GetParam();
  sc.max_resident_jobs = 4;
  Scheduler sched(rt, p, fs, sc);
  for (int i = 0; i < 4; ++i) {
    JobRequest req;
    req.name = "wc" + std::to_string(i);
    req.tenant = i % 2;
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/j" + std::to_string(i);
    req.config.split_size = 32 << 10;
    req.arrival_s = 0.0005 * i;
    if (i == 0) {
      // Tenant 0's first job kills node 3 early in its map phase; every
      // resident neighbour must run the fault-tolerant protocol
      // (expect_crashes) and finish correctly on the survivors.
      req.config.crash_events.push_back(
          JobConfig::CrashEvent{3, 0.004, -1});
    }
    sched.submit(std::move(req));
  }
  sched.run_all();
  ASSERT_EQ(sched.jobs_failed(), 0);
  ASSERT_EQ(sched.jobs_rejected(), 0);
  for (const auto& j : sched.results()) {
    EXPECT_EQ(output_counts(p, fs, j.result), expected) << j.name;
    EXPECT_GT(j.result.stats.output_pairs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedCrash,
                         ::testing::Values(SchedPolicy::kFifo,
                                           SchedPolicy::kFair,
                                           SchedPolicy::kPriority),
                         [](const ::testing::TestParamInfo<SchedPolicy>& i) {
                           return std::string(sched_policy_name(i.param));
                         });

}  // namespace
}  // namespace gw::core
