#include "core/job.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/combine.h"
#include "core/intermediate.h"
#include "core/memory.h"
#include "gwdfs/pinned.h"
#include "simnet/transport.h"
#include "util/error.h"

namespace gw::core {

namespace {

// Job-wide fault-tolerance state shared by every node's coroutine and the
// crash listener. The simulation is single-threaded, so plain members
// suffice; everything here is host-side bookkeeping that adds no simulated
// events when no crash is scheduled.
struct JobShared {
  std::vector<int> owner;  // global partition -> owning node
  int crash_epoch = 0;     // bumped once per node death
  std::set<int> failed;    // nodes that ever crashed (restarts stay out)
  // Per recovery round (== crash epoch that created it):
  std::map<int, std::vector<int>> round_participants;  // job-live at creation
  std::map<int, std::vector<int>> reassigned;          // partitions moved
  // EOS frames initiated on a round's port, recorded synchronously at
  // initiation. A node entering a round late uses this to count frames
  // already on the wire from senders that have died since (a real frame and
  // a compensated one for the same sender would otherwise double-deliver).
  std::map<int, std::set<std::pair<int, int>>> eos_sent;  // round -> (src,dst)
  // Which node's death created each round (rack-mode recovery needs to know
  // whether a rack lost its aggregator).
  std::map<int, int> crashed_node;
  std::set<int> rounds_entered;
  std::uint64_t partitions_reassigned = 0;

  // Completion barrier: a finished node parks instead of exiting, because a
  // later crash (e.g. during another node's reduce) can hand it new work.
  std::set<int> done_nodes;
  std::unique_ptr<sim::Event> park;  // replaced on every wake-up
  bool job_complete = false;

  // Preemption: set by any node that skipped remaining reduce work at a
  // task boundary because a suspend was requested. Distinguishes a genuine
  // suspension from a request that raced job completion.
  bool preempt_incomplete = false;

  bool job_live(const sim::Simulation& sim, int n) const {
    return sim.node_alive(n) && failed.count(n) == 0;
  }
};

// Per-node mutable state for one job run.
struct NodeRun {
  std::unique_ptr<MemoryGovernor> governor;  // null = ungoverned
  std::unique_ptr<IntermediateStore> store;
  MapMetrics map;
  ReduceMetrics reduce;
  std::unique_ptr<sim::Event> shuffle_done;
  trace::TrackRef phase_track;
  // Hierarchical combining (combine_mode != kOff): the map-tier combiner,
  // and on rack-aggregator nodes the rack-tier one.
  std::unique_ptr<NodeCombiner> combiner;
  std::unique_ptr<NodeCombiner> rack_combiner;
  MapOutputLedger ledger;  // populated only when cfg.fault_tolerant()
  int handled_epoch = 0;   // recovery rounds this node has executed
  std::set<int> reduced;   // global partitions this node already reduced
};

sim::Task<> shuffle_receiver(NodeContext ctx, int port, int expected,
                             sim::Event& done) {
  // Every expected sender announces end-of-stream with a transport EOS
  // frame; the receiver resolves once all of them arrived and the inbox
  // drained, then the port is released for reuse.
  net::Transport::Receiver rx =
      ctx.platform->transport().receiver(ctx.node_id, port, expected);
  for (;;) {
    auto msg = co_await rx.recv();
    if (!msg) break;
    util::ByteReader r(msg->payload);
    const int g = static_cast<int>(r.get_u32());
    // With a combine mode active, everything on the MAIN shuffle port is
    // combined-framed (u32 g | u32 ntags | tags | run) — recovery ports
    // keep the legacy framing, replayed provenance stays uncombined.
    const bool combined =
        ctx.config->combine_mode != CombineMode::kOff &&
        port == ctx.config->port_base + net::kPortShuffle;
    std::vector<std::uint64_t> tags;
    if (combined) {
      tags.resize(r.get_u32());
      for (auto& t : tags) t = r.get_u64();
    }
    if (ctx.config->fault_tolerant()) {
      // Drop zombie/stale deliveries: a dead node's store is never reduced
      // (and feeding it would initiate new cache-flush work on a dead
      // machine). A live node always still owns what was routed to it —
      // ownership only ever moves off dead nodes.
      if (!ctx.self_live() || ctx.owner_of(g) != ctx.node_id) {
        continue;
      }
    } else {
      GW_CHECK_MSG(ctx.owner_of(g) == ctx.node_id,
                   "partition routed to wrong node");
    }
    if (combined) {
      co_await ctx.store->add_combined_run(g, Run::deserialize(r),
                                           std::move(tags));
    } else {
      co_await ctx.store->add_run(g, Run::deserialize(r), msg->tag);
    }
  }
  done.set();
}

sim::Task<> broadcast_eos(NodeContext ctx, JobShared& shared, int port,
                          std::vector<int> dsts,
                          std::set<std::pair<int, int>>* sent);

// Rack-tier aggregation (CombineMode::kRack, aggregator nodes only):
// consumes the rack members' combined streams on kPortRackAgg, re-combines
// per partition, and forwards one consolidated stream to the partition
// owners across the core switch. Closes the aggregated stream toward every
// extra-rack node when done (members' streams were closed by their own
// member EOS; a dead aggregator's closures are crash-compensated instead).
sim::Task<> rack_aggregator(NodeContext ctx, JobShared& shared,
                            NodeCombiner& agg, RackTopology topo) {
  net::Transport::Receiver rx = ctx.platform->transport().receiver(
      ctx.node_id, ctx.config->port_base + net::kPortRackAgg,
      topo.members_of(topo.rack_of(ctx.node_id)));
  for (;;) {
    auto msg = co_await rx.recv();
    if (!msg) break;
    util::ByteReader r(msg->payload);
    const int g = static_cast<int>(r.get_u32());
    std::vector<std::uint64_t> tags(r.get_u32());
    for (auto& t : tags) t = r.get_u64();
    if (!ctx.self_live()) continue;  // zombie: drain the stream only
    co_await agg.add(g, std::move(tags), Run::deserialize(r));
  }
  if (ctx.self_live()) {
    co_await agg.drain();
  } else {
    agg.discard();  // a dead aggregator's staged data died with it
  }
  std::vector<int> extra;
  for (int n = 0; n < ctx.num_nodes; ++n) {
    if (!topo.same_rack(n, ctx.node_id)) extra.push_back(n);
  }
  co_await broadcast_eos(ctx, shared,
                         ctx.config->port_base + net::kPortShuffle, extra,
                         nullptr);
}

// EOS broadcast with crash guards. Dead destinations are skipped (crash
// compensation stands in for their frames) and a sender that died stops
// initiating; `sent` (round ports) records each initiation for late round
// entrants. With every node alive this performs exactly the legacy awaits.
sim::Task<> broadcast_eos(NodeContext ctx, JobShared& shared, int port,
                          std::vector<int> dsts,
                          std::set<std::pair<int, int>>* sent) {
  auto& sim = ctx.sim();
  for (int dst : dsts) {
    if (!ctx.self_live()) break;
    if (!shared.job_live(sim, dst)) continue;
    if (sent != nullptr) sent->insert({ctx.node_id, dst});
    co_await ctx.platform->transport().finish(ctx.node_id, dst, port);
  }
}

// Executes every recovery round this node has not handled yet (§III-E).
// Round r (== the r-th crash) re-runs, on the survivors, the map work whose
// durable output died with the crashed node, and re-feeds the partitions
// reassigned off it from the survivors' durable-output ledgers. Each round
// is a miniature map+shuffle+merge on its own port, so its traffic cannot
// be confused with the original shuffle or with other rounds.
sim::Task<> run_recovery_rounds(NodeContext ctx, SplitScheduler& scheduler,
                                NodeRun& state, JobShared& shared,
                                cl::Device* map_device) {
  auto& sim = ctx.sim();
  auto& tr = sim.tracer();
  net::Transport& tp = ctx.platform->transport();
  const JobConfig& cfg = *ctx.config;
  const auto rec_name = tr.intern(cfg.trace_scope + "phase.recovery");

  while (state.handled_epoch < shared.crash_epoch) {
    if (!ctx.self_live()) co_return;
    const int round = ++state.handled_epoch;
    GW_CHECK_MSG(round <= cfg.max_recovery_rounds,
                 "recovery exceeded max_recovery_rounds");
    shared.rounds_entered.insert(round);
    const int port = cfg.port_base + net::kPortRecoveryBase + round;
    const std::vector<int>& participants = shared.round_participants[round];
    auto& sent = shared.eos_sent[round];

    // Expected senders on the round port: peers still in the job (their EOS
    // will arrive, or compensation injects it if they die — we register
    // before any of them can crash again), plus now-dead peers whose EOS to
    // us was already initiated before they died (the frame is on the wire).
    // Peers that died without initiating one are not expected and never
    // registered, so compensation cannot double-inject for them.
    int expected = 0;
    std::vector<int> registry;
    for (int p : participants) {
      if (sent.count({p, ctx.node_id}) > 0) {
        ++expected;
      } else if (shared.job_live(sim, p)) {
        registry.push_back(p);
        ++expected;
      }
    }
    tp.expect_senders(ctx.node_id, port, registry);

    tr.begin(state.phase_track, trace::Kind::kRecovery, rec_name, sim.now(),
             static_cast<std::uint64_t>(round));
    ctx.store->reopen();
    ctx.store->start_mergers();
    sim::Event rx_done(sim);

    NodeContext rctx = ctx;
    rctx.recovery = true;
    rctx.shuffle_port = port;
    rctx.device = map_device;
    // Recovery traffic is never combined: replayed runs travel individually
    // under their original dedup tags so the destinations' tag sets decide
    // exactly which constituents already arrived inside combined runs.
    rctx.combiner = nullptr;
    sim.spawn(shuffle_receiver(rctx, port, expected, rx_done));

    // Re-execute lost splits: regenerates the dead node's contributions to
    // every partition (byte-identical runs under the original dedup tags).
    co_await run_map_phase(rctx, scheduler, state.map);

    // Re-feed the reassigned partitions from the durable-output ledger: our
    // own past contributions for every partition moved this round, re-read
    // from local disk and re-sent to the new owner (no map re-execution).
    std::uint64_t ledger_bytes = 0;
    std::vector<int> resend;
    for (int g : shared.reassigned[round]) {
      auto it = state.ledger.runs.find(g);
      if (it == state.ledger.runs.end()) continue;
      for (const auto& [tag, run] : it->second) {
        ledger_bytes += run.stored_bytes();
      }
      resend.push_back(g);
    }
    sim::TaskGroup sends(sim);
    if (ctx.self_live() && ledger_bytes > 0) {
      co_await ctx.node->disk_stream_read(
          ledger_bytes, cluster::Node::amortized_seek(ledger_bytes));
    }
    for (int g : resend) {
      if (!ctx.self_live()) break;
      const int dest = rctx.owner_of(g);
      for (const auto& [tag, run] : state.ledger.runs[g]) {
        if (dest == ctx.node_id) {
          // We are the new owner: our old contributions re-enter locally.
          co_await ctx.store->add_run(g, run, tag);
        } else {
          util::ByteWriter w;
          w.put_u32(static_cast<std::uint32_t>(g));
          run.serialize(w);
          sends.spawn(send_run_dropping(rctx, dest, w.take(), tag));
        }
      }
    }

    // Rack mode: if this round's crash took our rack's aggregator, any of
    // our extra-rack contributions still staged in (or in flight to) it
    // died too. Re-send our ledger runs for every partition currently owned
    // outside the rack, individually on the round port — per-tag dedup at
    // the destinations drops whatever the aggregator already forwarded.
    // Partitions reassigned this round were already re-fed above.
    if (cfg.combine_mode == CombineMode::kRack) {
      RackTopology topo{ctx.platform->fabric().profile().rack_size,
                        ctx.num_nodes};
      const int my_rack = topo.rack_of(ctx.node_id);
      const auto dead_it = shared.crashed_node.find(round);
      if (dead_it != shared.crashed_node.end() &&
          dead_it->second == topo.aggregator_of(my_rack)) {
        const std::vector<int>& moved = shared.reassigned[round];
        std::uint64_t agg_bytes = 0;
        std::vector<int> agg_resend;
        for (const auto& [g, entries] : state.ledger.runs) {
          if (topo.same_rack(rctx.owner_of(g), ctx.node_id)) continue;
          if (std::binary_search(moved.begin(), moved.end(), g)) continue;
          for (const auto& [tag, run] : entries) {
            agg_bytes += run.stored_bytes();
          }
          agg_resend.push_back(g);
        }
        if (ctx.self_live() && agg_bytes > 0) {
          co_await ctx.node->disk_stream_read(
              agg_bytes, cluster::Node::amortized_seek(agg_bytes));
        }
        for (int g : agg_resend) {
          if (!ctx.self_live()) break;
          const int dest = rctx.owner_of(g);
          for (const auto& [tag, run] : state.ledger.runs[g]) {
            util::ByteWriter w;
            w.put_u32(static_cast<std::uint32_t>(g));
            run.serialize(w);
            sends.spawn(send_run_dropping(rctx, dest, w.take(), tag));
          }
        }
      }
    }
    co_await sends.wait();

    co_await broadcast_eos(rctx, shared, port, participants, &sent);
    co_await rx_done.wait();
    co_await ctx.store->drain();
    tr.end(state.phase_track, trace::Kind::kRecovery, rec_name, sim.now(),
           static_cast<std::uint64_t>(round));
  }
}

// Resumed residency (checkpoint-based preemption): re-feed this node's
// durable runs from the previous residency — read back from local disk and
// re-sent under their original dedup tags — into the fresh stores, the same
// ledger replay the recovery rounds use but over the main shuffle port, so
// the merged store ends up holding the union of replayed and freshly-mapped
// runs. Replayed runs are re-recorded into the new ledger so a second
// suspension (or a crash) still has full provenance.
sim::Task<> refeed_ledger(NodeContext ctx, MapMetrics& m,
                          sim::TaskGroup& sends) {
  const MapOutputLedger& led = *ctx.resume_ledger;
  std::uint64_t bytes = 0;
  for (const auto& [g, entries] : led.runs) {
    for (const auto& [tag, run] : entries) bytes += run.stored_bytes();
  }
  if (bytes == 0 || !ctx.self_live()) co_return;
  co_await ctx.node->disk_stream_read(bytes,
                                      cluster::Node::amortized_seek(bytes));
  for (const auto& [g, entries] : led.runs) {
    if (!ctx.self_live()) break;
    const int dest = ctx.owner_of(g);
    for (const auto& [tag, run] : entries) {
      if (ctx.ledger != nullptr) ctx.ledger->record(g, tag, run);
      if (dest == ctx.node_id) {
        co_await ctx.store->add_run(g, run, tag);
      } else {
        util::ByteWriter w;
        w.put_u32(static_cast<std::uint32_t>(g));
        run.serialize(w);
        m.shuffle_bytes_remote += w.size();
        sends.spawn(send_run_dropping(ctx, dest, w.take(), tag));
      }
    }
  }
}

sim::Task<> node_main(NodeContext ctx, cl::Device* map_device,
                      cl::Device* reduce_device, SplitScheduler& scheduler,
                      NodeRun& state, JobShared& shared) {
  auto& sim = ctx.sim();
  auto& tr = sim.tracer();
  const JobConfig& cfg = *ctx.config;
  const bool ft = cfg.fault_tolerant();
  const auto t = state.phase_track;
  const auto map_name = tr.intern(cfg.trace_scope + "phase.map");
  const auto merge_name = tr.intern(cfg.trace_scope + "phase.merge");
  const auto reduce_name = tr.intern(cfg.trace_scope + "phase.reduce");
  const int shuffle_port = cfg.port_base + net::kPortShuffle;
  const int rack_agg_port = cfg.port_base + net::kPortRackAgg;
  ctx.store->start_mergers();

  // Rack mode reshapes the main-port streams: a node hears from its own
  // rack's members plus the other racks' aggregators (one consolidated
  // stream per foreign rack) instead of from everyone.
  const bool rack_mode = cfg.combine_mode == CombineMode::kRack;
  RackTopology topo;
  if (rack_mode) {
    topo.rack_size = ctx.platform->fabric().profile().rack_size;
    topo.num_nodes = ctx.num_nodes;
  }
  // Expect one EOS per node alive at job start (all of them, normally; a
  // DAG round after an unrecovered inter-round crash runs degraded and the
  // dead nodes never open a stream).
  int expected = 0;
  for (int n = 0; n < ctx.num_nodes; ++n) {
    if (shared.job_live(sim, n)) ++expected;
  }
  if (rack_mode) {
    expected = topo.members_of(topo.rack_of(ctx.node_id)) + topo.num_racks() - 1;
  }
  sim.spawn(
      shuffle_receiver(ctx, shuffle_port, expected, *state.shuffle_done));
  if (state.rack_combiner != nullptr) {
    sim.spawn(rack_aggregator(ctx, shared, *state.rack_combiner, topo));
  }

  // Multi-tenant slot gate: at most `capacity` resident jobs run their map
  // phase on this node at once (FIFO, deterministic). Held through the EOS
  // broadcast — the phase's sends are on the wire by then — and released
  // BEFORE the merge wait, which depends on OTHER nodes' map phases and
  // must not hold a slot while it blocks (deadlock-free by construction:
  // receivers and mergers are never slot-gated).
  sim::Resource::Hold map_slot;
  if (ctx.map_slot != nullptr && !ctx.elastic_slots) {
    // Elastic mode skips the phase-wide hold: the pipeline acquires one
    // slot per split instead, so the scheduler can grow/shrink the job's
    // share at task boundaries mid-phase.
    map_slot = co_await ctx.map_slot->acquire();
  }

  tr.begin(t, trace::Kind::kPhase, map_name, sim.now());
  if (ctx.resume_ledger != nullptr) {
    sim::TaskGroup refeed_sends(sim);
    co_await refeed_ledger(ctx, state.map, refeed_sends);
    co_await refeed_sends.wait();
  }
  ctx.combiner = state.combiner.get();
  co_await run_map_phase(ctx, scheduler, state.map);
  ctx.combiner = nullptr;
  tr.end(t, trace::Kind::kPhase, map_name, sim.now());
  tr.begin(t, trace::Kind::kPhase, merge_name, sim.now());

  // Map phase done on this node: tell every destination we stream to
  // directly that no more intermediate data will arrive from here. Flat
  // modes stream to everyone; rack mode streams to the own-rack members on
  // the main port plus the own-rack aggregator on the rack-agg port (the
  // aggregator closes the extra-rack streams itself once all member EOS
  // arrived and its consolidated output is flushed).
  std::vector<int> dsts;
  if (rack_mode) {
    const int rack = topo.rack_of(ctx.node_id);
    for (int i = 0; i < topo.members_of(rack); ++i) {
      dsts.push_back(topo.aggregator_of(rack) + i);
    }
  } else {
    for (int dst = 0; dst < ctx.num_nodes; ++dst) dsts.push_back(dst);
  }
  co_await broadcast_eos(ctx, shared, shuffle_port, dsts, nullptr);
  if (rack_mode) {
    const std::vector<int> agg(
        1, topo.aggregator_of(topo.rack_of(ctx.node_id)));
    co_await broadcast_eos(ctx, shared, rack_agg_port, agg, nullptr);
  }
  map_slot.release();

  // Merge phase: continues until all remote data arrived and the merger
  // threads consolidated every partition (§III: "After the merge phase
  // completes, the reduce phase is started"). A dead node's receiver is
  // resolved by crash compensation, so even a zombie drains and exits.
  co_await state.shuffle_done->wait();
  co_await ctx.store->drain();
  tr.end(t, trace::Kind::kPhase, merge_name, sim.now());

  // Reduce (and, under fault tolerance, recover-then-reduce until the job
  // is globally complete). Each pass reduces the owned partitions that have
  // no output yet; a crash during anyone's reduce re-enters the loop.
  for (;;) {
    if (!ctx.self_live()) co_return;
    if (ft) {
      co_await run_recovery_rounds(ctx, scheduler, state, shared, map_device);
      if (!ctx.self_live()) co_return;
    }
    std::vector<int> todo;
    for (int g = 0; g < ctx.total_partitions; ++g) {
      if (shared.owner[static_cast<std::size_t>(g)] != ctx.node_id) continue;
      if (state.reduced.count(g) > 0) continue;
      // A partition whose file was committed before its owner died needs no
      // re-reduction: DFS output survives crashes via replication.
      if (ft && ctx.fs->exists(partition_output_path(cfg, g))) continue;
      todo.push_back(g);
    }
    if (!todo.empty()) {
      ctx.device = reduce_device;
      const bool task_gated = ctx.elastic_slots && ctx.reduce_slot != nullptr;
      sim::Resource::Hold reduce_slot;
      if (ctx.reduce_slot != nullptr && !task_gated) {
        reduce_slot = co_await ctx.reduce_slot->acquire();
      }
      tr.begin(t, trace::Kind::kPhase, reduce_name, sim.now());
      if (ctx.preempt != nullptr || task_gated) {
        // Task-granularity reduce: one partition per pass, so a preemption
        // request takes effect at the next partition boundary and elastic
        // slots gate individual reduce tasks. Per-partition output bytes
        // depend only on that partition's runs, so splitting the batch
        // never changes what is written.
        for (std::size_t i = 0; i < todo.size(); ++i) {
          if (ctx.preempt_requested()) {
            shared.preempt_incomplete = true;
            break;
          }
          sim::Resource::Hold task_slot;
          if (task_gated) task_slot = co_await ctx.reduce_slot->acquire();
          std::vector<int> one(1, todo[i]);
          co_await run_reduce_phase(ctx, one, state.reduce);
          state.reduced.insert(todo[i]);
        }
      } else {
        co_await run_reduce_phase(ctx, todo, state.reduce);
        for (int g : todo) state.reduced.insert(g);
      }
      tr.end(t, trace::Kind::kPhase, reduce_name, sim.now());
    }
    if (!ft) co_return;
    if (state.handled_epoch < shared.crash_epoch) continue;

    // Done for now — but a later crash can reassign partitions to this
    // node, so park on the completion barrier instead of exiting. The last
    // node to finish releases everyone; a crash wakes everyone back up.
    shared.done_nodes.insert(ctx.node_id);
    int live = 0;
    for (int n = 0; n < ctx.num_nodes; ++n) {
      if (shared.job_live(sim, n)) ++live;
    }
    if (static_cast<int>(shared.done_nodes.size()) >= live) {
      shared.job_complete = true;
      shared.park->set();
      co_return;
    }
    co_await shared.park->wait();
    if (shared.job_complete) co_return;
    shared.done_nodes.erase(ctx.node_id);  // woken by a crash: back to work
  }
}

// Everything one job execution owns, factored out of GlasswingRuntime::run
// so the synchronous single-job entry point and the scheduler-facing
// run_async coroutine share one setup / mark / result-assembly path. Member
// order mirrors the former run() locals so destruction order is unchanged.
struct JobExec {
  cluster::Platform& platform;
  dfs::FileSystem& fs;
  std::vector<std::unique_ptr<cl::Device>>& map_devices;
  std::vector<std::unique_ptr<cl::Device>>& reduce_devices;
  AppKernels app;     // normalized copy (partitioner default, combine gating)
  JobConfig config;   // normalized copy
  const JobEnv* env;  // shared slots/governors; null = single-job
  sim::Simulation& sim;
  net::Transport& tp;

  dfs::FileSystem* base_fs = nullptr;
  dfs::Dfs* hdfs = nullptr;
  int num_nodes = 0;
  int total_partitions = 0;
  double start = 0;
  bool ft = false;
  int rack_size = 0;
  std::vector<int> start_live;
  bool degraded = false;
  std::uint64_t net_shuffle0 = 0;
  std::uint64_t net_dfs0 = 0;
  std::uint64_t net_control0 = 0;
  std::uint64_t net_rack_agg0 = 0;
  std::uint64_t dfs_lost0 = 0;
  std::uint64_t dfs_rerep0 = 0;
  std::optional<SplitScheduler> scheduler;
  JobShared shared;
  PreemptControl* preempt = nullptr;  // from env; null = not preemptable
  bool resuming = false;              // previous residency was suspended
  bool combine_degraded = false;      // requested combining forced weaker
  int listener_id = -1;
  trace::TrackRef job_track;
  std::int32_t job_name = -1;
  std::int32_t round_name = -1;
  std::vector<NodeRun> nodes;
  sim::TaskGroup all;

  JobExec(cluster::Platform& platform_in, dfs::FileSystem& fs_in,
          std::vector<std::unique_ptr<cl::Device>>& map_devices_in,
          std::vector<std::unique_ptr<cl::Device>>& reduce_devices_in,
          const AppKernels& app_in, JobConfig config_in, const JobEnv* env_in)
      : platform(platform_in), fs(fs_in), map_devices(map_devices_in),
        reduce_devices(reduce_devices_in), app(app_in),
        config(std::move(config_in)), env(env_in), sim(platform_in.sim()),
        tp(platform_in.transport()), all(platform_in.sim()) {}

  // The job's private port for a well-known service (identity for the
  // legacy port_base == 0).
  int port(int p) const { return config.port_base + p; }
  // Job-scoped trace name ("phase.map" -> "j3.phase.map" under a scope).
  std::string scoped(const char* name) const {
    return config.trace_scope + name;
  }

  void setup();
  void finish_marks();
  JobResult finalize();
  // True when a preemption request left work behind: undispensed splits,
  // splits awaiting re-execution, or reduce partitions skipped at a task
  // boundary. Distinguishes a suspension from a request racing completion.
  bool incomplete() const {
    return scheduler->remaining() > 0 || scheduler->has_lost() ||
           shared.preempt_incomplete;
  }
  void capture_suspension(JobResult& result);
};

// Accumulates the pure-counter fields of `from` into `into` (sums; maxima
// for the two high-water marks). Used to carry a suspended job's stats
// across residencies — the occupancy-derived stage breakdown needs no merge
// because scheduled jobs never clear the tracer, so scoped accumulators
// already span every residency.
void add_counters(JobStats& into, const JobStats& from) {
  into.map_task_retries += from.map_task_retries;
  into.reduce_task_retries += from.reduce_task_retries;
  into.tasks_reexecuted += from.tasks_reexecuted;
  into.partitions_reassigned += from.partitions_reassigned;
  into.blocks_rereplicated += from.blocks_rereplicated;
  into.dfs_replicas_lost += from.dfs_replicas_lost;
  into.recovery_rounds += from.recovery_rounds;
  into.duplicate_runs_dropped += from.duplicate_runs_dropped;
  into.speculative_wins += from.speculative_wins;
  into.speculative_losses += from.speculative_losses;
  into.input_splits_lost += from.input_splits_lost;
  into.input_records += from.input_records;
  into.intermediate_pairs += from.intermediate_pairs;
  into.intermediate_bytes += from.intermediate_bytes;
  into.intermediate_stored += from.intermediate_stored;
  into.output_pairs += from.output_pairs;
  into.shuffle_bytes_remote += from.shuffle_bytes_remote;
  into.net_shuffle_bytes += from.net_shuffle_bytes;
  into.net_dfs_bytes += from.net_dfs_bytes;
  into.net_control_bytes += from.net_control_bytes;
  into.net_rack_agg_bytes += from.net_rack_agg_bytes;
  into.combine_in_bytes += from.combine_in_bytes;
  into.combine_out_bytes += from.combine_out_bytes;
  into.spills += from.spills;
  into.merges += from.merges;
  into.spill_bytes += from.spill_bytes;
  into.merge_levels = std::max(into.merge_levels, from.merge_levels);
  into.peak_mem_bytes = std::max(into.peak_mem_bytes, from.peak_mem_bytes);
  into.mem_stall_seconds += from.mem_stall_seconds;
  into.merge_fanin_runs += from.merge_fanin_runs;
  into.hash_table_probes += from.hash_table_probes;
  into.map_kernel += from.map_kernel;
  into.reduce_kernel += from.reduce_kernel;
}

void JobExec::setup() {
  GW_CHECK_MSG(static_cast<bool>(app.map), "job needs a map function");
  GW_CHECK_MSG(!config.input_paths.empty(), "job needs input paths");
  GW_CHECK_MSG(!config.output_path.empty(), "job needs an output path");

  if (!app.partition) {
    app.partition = default_hash_partitioner();
  }
  // The combiner is only available with the hash-table collector (§III-F).
  if (config.output_mode != OutputMode::kHashTable ||
      !app.combine.has_value()) {
    config.use_combiner = false;
  }
  // Hierarchical combining needs an app combiner with the declared
  // associativity contract. Speculation is incompatible: a straggler clone
  // regenerates a tagged run on a different node, whose combiner may group
  // it with different partners — the destination would see a partial
  // overlap with an already-stored combined run.
  if (config.combine_mode != CombineMode::kOff &&
      (!app.combine.has_value() || !app.combine_associative ||
       config.speculate)) {
    config.combine_mode = CombineMode::kOff;
  }
  // Environment-forced combine degradations below are SURFACED via
  // JobResult::combine_degraded (and from there the scheduler's per-job
  // record + sched: line): the job asked for a combine tier its execution
  // environment cannot honour. The capability gates above are not
  // degradations — the request itself was unsatisfiable by the app.
  const CombineMode requested_combine = config.combine_mode;
  // Rack aggregation needs rack structure to exploit; otherwise degrade to
  // the node tier, which is the same data path minus the aggregator hop.
  rack_size = platform.fabric().profile().rack_size;
  if (config.combine_mode == CombineMode::kRack &&
      (rack_size <= 0 || platform.num_nodes() <= rack_size)) {
    config.combine_mode = CombineMode::kNode;
  }
  // Scheduler-shared governors carve no combine pool (their budget split is
  // fixed before the tenant mix is known), so combining degrades off rather
  // than drawing from a pool that was never funded.
  if (env != nullptr && !env->governors.empty()) {
    config.combine_mode = CombineMode::kOff;
  }
  // Preemptable jobs shuffle with the raw framing only: resumed residencies
  // re-feed ledger runs individually on the main port, which combined
  // framing at the receivers would misparse.
  if (config.preemptable) {
    config.combine_mode = CombineMode::kOff;
  }
  if (config.combine_mode != requested_combine &&
      requested_combine != CombineMode::kOff) {
    combine_degraded = true;
  }

  // Checkpoint-based preemption handshake (core::Scheduler).
  if (env != nullptr && env->preempt != nullptr) {
    GW_CHECK_MSG(config.preemptable,
                 "JobEnv carries a PreemptControl but the config is not "
                 "marked preemptable");
    preempt = env->preempt;
    resuming = preempt->preemptions > 0;
  }

  // Governed/replication controls reach through the PinnedFs overlay to
  // the real DFS underneath; stats deltas are measured there too.
  base_fs = &fs;
  if (auto* pf = dynamic_cast<dfs::PinnedFs*>(base_fs)) {
    base_fs = &pf->base();
  }
  if (config.output_replication > 0) {
    if (auto* dfs_base = dynamic_cast<dfs::Dfs*>(base_fs)) {
      dfs_base->set_replication(config.output_replication);
    }
  }

  if (config.scheduled()) {
    // Concurrent jobs share one trace: nothing global to clear, and the
    // job's occupancy accumulators are already private via trace_scope.
  } else if (config.dag_round < 0) {
    sim.tracer().clear();  // one job per trace
  } else {
    // DAG round: the trace spans the whole DAG, but per-round stage
    // breakdowns must not accumulate across rounds.
    sim.tracer().reset_occupancy();
  }
  num_nodes = platform.num_nodes();
  total_partitions = num_nodes * config.partitions_per_node;
  start = sim.now();
  ft = config.fault_tolerant();

  // Nodes already dead when the job starts (between DAG rounds, or a job
  // admitted to a shared cluster after another tenant's crash) take no
  // part: their partitions move to the survivors up front, no pipelines
  // are spawned for them, and shuffle streams expect only live senders.
  // With every node alive this block changes nothing.
  for (int n = 0; n < num_nodes; ++n) {
    if (sim.node_alive(n)) start_live.push_back(n);
  }
  GW_CHECK_MSG(!start_live.empty(), "every node is dead at job start");
  degraded = static_cast<int>(start_live.size()) < num_nodes;
  if (degraded) {
    GW_CHECK_MSG(config.dag_round >= 0 || config.scheduled(),
                 "node dead at job start outside a DAG round or scheduler");
    // The combine tiers assume full-mesh membership; a shrunken cluster
    // falls back to the plain shuffle path.
    if (config.combine_mode != CombineMode::kOff) combine_degraded = true;
    config.combine_mode = CombineMode::kOff;
  }

  // Transport counters are cumulative per platform (input staging and
  // concurrent tenants count too); snapshot so the report covers exactly
  // this job. NOTE: under multi-tenancy the network-class deltas cover the
  // job's residency window including neighbours' traffic — per-job wire
  // attribution would need per-port accounting, which port namespacing
  // makes possible (port_bytes) but the legacy fields do not expose.
  net_shuffle0 = tp.total_bytes(net::TrafficClass::kShuffle);
  net_dfs0 = tp.total_bytes(net::TrafficClass::kDfs);
  net_control0 = tp.total_bytes(net::TrafficClass::kControl);
  net_rack_agg0 = tp.total_bytes(net::TrafficClass::kRackAgg);
  hdfs = dynamic_cast<dfs::Dfs*>(base_fs);
  dfs_lost0 = hdfs ? hdfs->replicas_lost() : 0;
  dfs_rerep0 = hdfs ? hdfs->blocks_rereplicated() : 0;

  scheduler.emplace(
      SplitScheduler::make_splits(fs, config.input_paths, config.split_size));
  if (resuming) {
    // Replay map-side progress from the suspended residency: committed
    // splits are never re-dispensed (their output re-enters via the ledger
    // re-feed). A committer that died in between cannot re-feed, so its
    // splits stay fresh and are simply mapped again — the original dedup
    // tags make any overlap harmless.
    for (const auto& [idx, node] : preempt->state.committed_splits) {
      if (!sim.node_alive(node)) continue;
      scheduler->restore_commit(idx, node);
    }
  }

  shared.owner.resize(static_cast<std::size_t>(total_partitions));
  for (int g = 0; g < total_partitions; ++g) {
    shared.owner[static_cast<std::size_t>(g)] =
        g / config.partitions_per_node;
  }
  if (degraded) {
    // Start-dead nodes never produce or reduce; round-robin their
    // partitions over the live nodes (ascending ids: deterministic), the
    // same policy the crash listener applies mid-job.
    std::size_t rr = 0;
    for (int g = 0; g < total_partitions; ++g) {
      int& owner = shared.owner[static_cast<std::size_t>(g)];
      if (sim.node_alive(owner)) continue;
      owner = start_live[rr++ % start_live.size()];
    }
    for (int n = 0; n < num_nodes; ++n) {
      if (!sim.node_alive(n)) shared.failed.insert(n);
    }
  }
  shared.park = std::make_unique<sim::Event>(sim);

  if (ft) {
    // JobTracker bookkeeping: who is expected on every shuffle stream (for
    // crash compensation), the crash listener that reassigns work, and the
    // scheduled crash events themselves.
    if (config.combine_mode == CombineMode::kRack) {
      // Rack mode reshapes the main-port streams: a node hears from its own
      // rack's members plus the other racks' aggregators, and an aggregator
      // additionally hears its members on the rack-agg port.
      const RackTopology topo{rack_size, num_nodes};
      for (int dst = 0; dst < num_nodes; ++dst) {
        const int rack = topo.rack_of(dst);
        std::vector<int> senders;
        for (int i = 0; i < topo.members_of(rack); ++i) {
          senders.push_back(topo.aggregator_of(rack) + i);
        }
        for (int r = 0; r < topo.num_racks(); ++r) {
          if (r != rack) senders.push_back(topo.aggregator_of(r));
        }
        tp.expect_senders(dst, port(net::kPortShuffle), senders);
      }
      for (int r = 0; r < topo.num_racks(); ++r) {
        std::vector<int> members;
        for (int i = 0; i < topo.members_of(r); ++i) {
          members.push_back(topo.aggregator_of(r) + i);
        }
        tp.expect_senders(topo.aggregator_of(r), port(net::kPortRackAgg),
                          members);
      }
    } else {
      // Only nodes alive at job start ever open a stream; dead-at-start
      // nodes are neither senders nor receivers. All-alive this is the
      // legacy everyone-to-everyone registration.
      for (int dst : start_live) {
        tp.expect_senders(dst, port(net::kPortShuffle), start_live);
      }
    }
    listener_id = sim.add_crash_listener([this](int node, bool alive) {
      if (alive) return;  // a restarted node only serves as a DFS target
      if (shared.failed.count(node) > 0) return;
      shared.failed.insert(node);
      shared.crash_epoch++;
      const int round = shared.crash_epoch;
      std::vector<int> participants;
      for (int n = 0; n < num_nodes; ++n) {
        if (shared.job_live(sim, n)) participants.push_back(n);
      }
      GW_CHECK_MSG(!participants.empty(), "every node crashed; job is lost");
      // Reassign the dead node's reduce partitions round-robin over the
      // survivors (ascending ids: deterministic).
      auto& moved = shared.reassigned[round];
      std::size_t rr = 0;
      for (int g = 0; g < total_partitions; ++g) {
        if (shared.owner[static_cast<std::size_t>(g)] != node) continue;
        shared.owner[static_cast<std::size_t>(g)] =
            participants[rr++ % participants.size()];
        moved.push_back(g);
      }
      shared.partitions_reassigned += moved.size();
      shared.round_participants[round] = std::move(participants);
      shared.crashed_node[round] = node;
      // Splits the dead node ran or had committed go back for re-execution.
      scheduler->on_crash(node);
      // Failure detection: inject the dead node's missing EOS frames after
      // the detection timeout, once its in-flight wire traffic drained.
      sim.spawn([](sim::Simulation& s, net::Transport& t, int dead,
                   double delay) -> sim::Task<> {
        co_await s.delay(delay);
        co_await t.compensate_crash(dead);
      }(sim, tp, node, config.crash_detection_delay_s));
      // Wake parked finishers: the crash may have handed them new work.
      auto old_park = std::move(shared.park);
      shared.park = std::make_unique<sim::Event>(sim);
      old_park->set();  // waiters already rescheduled; safe to destroy
    });
    for (const auto& e : config.crash_events) {
      GW_CHECK_MSG(e.node >= 0 && e.node < num_nodes,
                   "crash event names an unknown node");
      sim.schedule_node_crash(e.node, e.time, e.restart_time);
    }
  }

  // Job-wide span: the root every recovery event must nest inside. DAG
  // rounds additionally open a kRound span just inside it, so a DAG trace
  // shows one round span per executed job, each nested in its job span.
  // Scheduled jobs put their span on a tenant-labelled track of their own,
  // so concurrent job spans land on distinct tracks and nest cleanly.
  // A resumed (preempted) residency re-registers the same scoped label and
  // must reopen its span on the SAME track, so the timeline shows one row
  // per job across suspensions.
  job_track = sim.tracer().track(0, scoped("job"), /*reuse=*/true);
  job_name = sim.tracer().intern("job");
  round_name = sim.tracer().intern("round");
  sim.tracer().begin(job_track, trace::Kind::kPhase, job_name, sim.now());
  if (config.dag_round >= 0) {
    sim.tracer().begin(job_track, trace::Kind::kRound, round_name, sim.now(),
                       static_cast<std::uint64_t>(config.dag_round));
  }

  nodes.resize(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    NodeRun& state = nodes[static_cast<std::size_t>(n)];
    MemoryGovernor* gov = nullptr;
    if (env != nullptr && !env->governors.empty()) {
      // Shared-cluster budget: one governor per node across all resident
      // jobs; the per-job governor stays null (no per-job mem marks).
      gov = env->governors[static_cast<std::size_t>(n)];
    } else if (config.governed()) {
      state.governor = std::make_unique<MemoryGovernor>(
          sim, config.node_memory_bytes,
          /*with_combine_pool=*/config.combine_mode != CombineMode::kOff);
      gov = state.governor.get();
    }
    state.store = std::make_unique<IntermediateStore>(platform.node(n), sim,
                                                      config, gov);
    state.shuffle_done = std::make_unique<sim::Event>(sim);
    state.phase_track = sim.tracer().track(n, scoped("phase"), /*reuse=*/true);

    // Dead-at-start nodes get their bookkeeping state (the stats loop
    // below walks every node) but no pipelines.
    if (!sim.node_alive(n)) continue;

    NodeContext ctx;
    ctx.platform = &platform;
    ctx.node = &platform.node(n);
    ctx.fs = &fs;
    ctx.device = map_devices[static_cast<std::size_t>(n)].get();
    ctx.store = state.store.get();
    ctx.mem = gov;
    ctx.config = &config;
    ctx.app = &app;
    ctx.node_id = n;
    ctx.num_nodes = num_nodes;
    ctx.total_partitions = total_partitions;
    ctx.partition_owner = &shared.owner;
    ctx.shuffle_port = port(net::kPortShuffle);
    ctx.ledger = ft ? &state.ledger : nullptr;
    ctx.failed_nodes = &shared.failed;
    if (env != nullptr && !env->map_slots.empty()) {
      ctx.map_slot = env->map_slots[static_cast<std::size_t>(n)];
    }
    if (env != nullptr && !env->reduce_slots.empty()) {
      ctx.reduce_slot = env->reduce_slots[static_cast<std::size_t>(n)];
    }
    ctx.elastic_slots = env != nullptr && env->elastic;
    ctx.preempt = preempt;
    if (resuming &&
        static_cast<std::size_t>(n) < preempt->state.ledgers.size() &&
        !preempt->state.ledgers[static_cast<std::size_t>(n)].runs.empty()) {
      ctx.resume_ledger = &preempt->state.ledgers[static_cast<std::size_t>(n)];
    }
    if (config.combine_mode != CombineMode::kOff) {
      RackTopology topo;  // rack_size 0 = route straight to the owner
      if (config.combine_mode == CombineMode::kRack) {
        topo = RackTopology{rack_size, num_nodes};
      }
      state.combiner = std::make_unique<NodeCombiner>(
          ctx, NodeCombiner::Tier::kMap, topo);
      if (config.combine_mode == CombineMode::kRack &&
          topo.is_aggregator(n)) {
        state.rack_combiner = std::make_unique<NodeCombiner>(
            ctx, NodeCombiner::Tier::kRackAgg, topo);
      }
    }
    all.spawn(node_main(ctx, map_devices[static_cast<std::size_t>(n)].get(),
                        reduce_devices[static_cast<std::size_t>(n)].get(),
                        *scheduler, state, shared));
  }
}

void JobExec::finish_marks() {
  if (config.governed()) {
    // Per-node budget/peak instants (arg = bytes) inside the job span, so
    // trace validators can check budget-respecting peak occupancy. Emitted
    // only for governed runs: default traces stay byte-identical.
    const std::int32_t budget_name = sim.tracer().intern("mem.budget");
    const std::int32_t peak_name = sim.tracer().intern("mem.peak");
    for (int n = 0; n < num_nodes; ++n) {
      const NodeRun& s = nodes[static_cast<std::size_t>(n)];
      if (s.governor == nullptr) continue;
      sim.tracer().instant(s.phase_track, trace::Kind::kMark, budget_name,
                           sim.now(), s.governor->budget_bytes());
      sim.tracer().instant(s.phase_track, trace::Kind::kMark, peak_name,
                           sim.now(), s.governor->peak_bytes());
    }
  }
  if (config.combine_mode != CombineMode::kOff) {
    // Per-node combine-volume instants (arg = bytes) inside the job span,
    // mirroring the governed mem.* marks, so trace validators can check the
    // tiers actually reduced traffic (combine.out <= combine.in).
    const std::int32_t in_name = sim.tracer().intern("combine.in");
    const std::int32_t out_name = sim.tracer().intern("combine.out");
    for (int n = 0; n < num_nodes; ++n) {
      const NodeRun& s = nodes[static_cast<std::size_t>(n)];
      if (s.combiner == nullptr) continue;
      std::uint64_t in = s.combiner->metrics().in_bytes;
      std::uint64_t out = s.combiner->metrics().out_bytes;
      if (s.rack_combiner != nullptr) {
        in += s.rack_combiner->metrics().in_bytes;
        out += s.rack_combiner->metrics().out_bytes;
      }
      sim.tracer().instant(s.phase_track, trace::Kind::kMark, in_name,
                           sim.now(), in);
      sim.tracer().instant(s.phase_track, trace::Kind::kMark, out_name,
                           sim.now(), out);
    }
  }
  if (config.dag_round >= 0) {
    sim.tracer().end(job_track, trace::Kind::kRound, round_name, sim.now(),
                     static_cast<std::uint64_t>(config.dag_round));
  }
  sim.tracer().end(job_track, trace::Kind::kPhase, job_name, sim.now());
}

JobResult JobExec::finalize() {
  JobResult result;
  result.elapsed_seconds = sim.now() - start;
  // Stage breakdown reduces from the trace: each column is the max over
  // nodes of that span's busy occupancy (partition: max over its worker
  // tracks, the paper's Fig 4(a) metric). Names are job-scoped, so a
  // tenant only ever reads its own accumulators.
  const trace::Tracer& tr = sim.tracer();
  double map_end = start, merge_delay = 0, reduce_elapsed = 0;
  for (int n = 0; n < num_nodes; ++n) {
    const NodeRun& s = nodes[static_cast<std::size_t>(n)];
    const trace::Occupancy phase_map = tr.occupancy(n, scoped("phase.map"));
    const trace::Occupancy phase_merge =
        tr.occupancy(n, scoped("phase.merge"));
    const trace::Occupancy phase_reduce =
        tr.occupancy(n, scoped("phase.reduce"));
    map_end = std::max(map_end, phase_map.last_end);
    merge_delay = std::max(merge_delay, phase_merge.busy);
    reduce_elapsed = std::max(reduce_elapsed, phase_reduce.busy);

    result.stages.input = std::max(
        result.stages.input, tr.occupancy(n, scoped("map.input")).busy);
    result.stages.stage = std::max(
        result.stages.stage, tr.occupancy(n, scoped("map.stage")).busy);
    result.stages.kernel = std::max(
        result.stages.kernel, tr.occupancy(n, scoped("map.kernel")).busy);
    result.stages.retrieve = std::max(
        result.stages.retrieve, tr.occupancy(n, scoped("map.retrieve")).busy);
    result.stages.partition =
        std::max(result.stages.partition,
                 tr.occupancy(n, scoped("map.partition")).max_track_busy);
    result.stages.map_elapsed =
        std::max(result.stages.map_elapsed, phase_map.busy);
    result.stages.merge_delay =
        std::max(result.stages.merge_delay, phase_merge.busy);
    result.stages.reduce_input =
        std::max(result.stages.reduce_input,
                 tr.occupancy(n, scoped("reduce.input")).busy);
    result.stages.reduce_stage =
        std::max(result.stages.reduce_stage,
                 tr.occupancy(n, scoped("reduce.stage")).busy);
    result.stages.reduce_kernel =
        std::max(result.stages.reduce_kernel,
                 tr.occupancy(n, scoped("reduce.kernel")).busy);
    result.stages.reduce_retrieve =
        std::max(result.stages.reduce_retrieve,
                 tr.occupancy(n, scoped("reduce.retrieve")).busy);
    result.stages.reduce_output =
        std::max(result.stages.reduce_output,
                 tr.occupancy(n, scoped("reduce.output")).busy);
    result.stages.reduce_elapsed =
        std::max(result.stages.reduce_elapsed, phase_reduce.busy);

    result.stats.input_records += s.map.records;
    result.stats.intermediate_pairs += s.map.pairs;
    result.stats.intermediate_bytes += s.map.intermediate_raw;
    result.stats.intermediate_stored += s.map.intermediate_stored;
    result.stats.shuffle_bytes_remote += s.map.shuffle_bytes_remote;
    result.stats.map_task_retries += s.map.task_failures;
    result.stats.reduce_task_retries += s.reduce.task_failures;
    result.stats.spills += s.store->spills();
    result.stats.merges += s.store->merges();
    result.stats.merge_fanin_runs += s.store->merge_fanin_runs();
    result.stats.spill_bytes += s.store->spill_bytes();
    result.stats.merge_levels =
        std::max(result.stats.merge_levels, s.store->merge_levels());
    if (s.governor != nullptr) {
      result.stats.peak_mem_bytes =
          std::max(result.stats.peak_mem_bytes, s.governor->peak_bytes());
      result.stats.mem_stall_seconds += s.governor->stall_seconds();
    }
    result.stats.duplicate_runs_dropped += s.store->duplicate_runs_dropped();
    if (s.combiner != nullptr) {
      // With combining active the map-tier combiner owns the remote sends,
      // so its framed wire bytes are the node's remote shuffle volume.
      result.stats.shuffle_bytes_remote += s.combiner->metrics().wire_bytes;
      result.stats.combine_in_bytes += s.combiner->metrics().in_bytes;
      result.stats.combine_out_bytes += s.combiner->metrics().out_bytes;
    }
    if (s.rack_combiner != nullptr) {
      result.stats.combine_in_bytes += s.rack_combiner->metrics().in_bytes;
      result.stats.combine_out_bytes += s.rack_combiner->metrics().out_bytes;
    }
    result.stats.hash_table_probes += s.map.hash_probes;
    result.stats.input_splits_lost += s.map.input_splits_lost;
    result.stats.output_pairs += s.reduce.output_pairs;
    result.stats.map_kernel += s.map.kernel_stats;
    result.stats.reduce_kernel += s.reduce.kernel_stats;
    for (const auto& f : s.reduce.output_files) {
      result.output_files.push_back(f);
    }
  }
  result.map_phase_seconds = map_end - start;
  result.merge_delay_seconds = merge_delay;
  result.reduce_phase_seconds = reduce_elapsed;
  result.stats.tasks_reexecuted = scheduler->reexecutions();
  result.stats.speculative_wins = scheduler->speculative_wins();
  result.stats.speculative_losses = scheduler->speculative_losses();
  result.stats.partitions_reassigned = shared.partitions_reassigned;
  result.stats.recovery_rounds = shared.rounds_entered.size();
  result.stats.dfs_replicas_lost =
      hdfs ? hdfs->replicas_lost() - dfs_lost0 : 0;
  result.stats.blocks_rereplicated =
      hdfs ? hdfs->blocks_rereplicated() - dfs_rerep0 : 0;
  result.stats.net_shuffle_bytes =
      tp.total_bytes(net::TrafficClass::kShuffle) - net_shuffle0;
  result.stats.net_dfs_bytes = tp.total_bytes(net::TrafficClass::kDfs) - net_dfs0;
  result.stats.net_control_bytes =
      tp.total_bytes(net::TrafficClass::kControl) - net_control0;
  result.stats.net_rack_agg_bytes =
      tp.total_bytes(net::TrafficClass::kRackAgg) - net_rack_agg0;
  result.combine_degraded = combine_degraded;
  if (resuming) {
    // Fold in the residencies before the suspension: counters add, output
    // files union (a resumed run never re-reduces a committed partition,
    // so there is no overlap), elapsed accumulates residency time only.
    const ResumeState& rs = preempt->state;
    add_counters(result.stats, rs.stats);
    for (const auto& f : rs.output_files) result.output_files.push_back(f);
    result.elapsed_seconds += rs.elapsed_s;
  }
  std::sort(result.output_files.begin(), result.output_files.end());
  return result;
}

void JobExec::capture_suspension(JobResult& result) {
  PreemptControl& pc = *preempt;
  ResumeState& rs = pc.state;
  // finalize() already folded earlier residencies into `result`, so the
  // checkpoint is a plain snapshot of the cumulative totals.
  rs.committed_splits.clear();
  for (const auto& [idx, node] : scheduler->committed_splits()) {
    rs.committed_splits[idx] = node;
  }
  // Each node's new ledger holds replayed history plus fresh runs; moving
  // it out makes the checkpoint cumulative across any number of
  // suspensions.
  rs.ledgers.assign(static_cast<std::size_t>(num_nodes), MapOutputLedger());
  for (int n = 0; n < num_nodes; ++n) {
    rs.ledgers[static_cast<std::size_t>(n)] =
        std::move(nodes[static_cast<std::size_t>(n)].ledger);
  }
  rs.output_files = result.output_files;
  rs.stats = result.stats;
  rs.elapsed_s = result.elapsed_seconds;
  pc.suspended = true;
  ++pc.preemptions;
  result.suspended = true;
}

}  // namespace

std::vector<std::unique_ptr<cl::Device>> GlasswingRuntime::make_devices(
    const cl::DeviceSpec& spec) {
  std::vector<std::unique_ptr<cl::Device>> devices;
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    sim::Resource* cores = spec.type == cl::DeviceType::kCpu
                               ? &platform_.node(n).host_cores()
                               : nullptr;
    devices.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores, n));
  }
  return devices;
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs, cl::DeviceSpec device)
    : platform_(platform), fs_(fs) {
  map_devices_ = make_devices(device);
  reduce_devices_ = make_devices(device);
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs,
                                   cl::DeviceSpec map_device,
                                   cl::DeviceSpec reduce_device)
    : platform_(platform), fs_(fs) {
  map_devices_ = make_devices(map_device);
  reduce_devices_ = make_devices(reduce_device);
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs,
                                   std::vector<cl::DeviceSpec> per_node_devices)
    : platform_(platform), fs_(fs) {
  GW_CHECK_MSG(static_cast<int>(per_node_devices.size()) ==
                   platform_.num_nodes(),
               "one device spec per node required");
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    const cl::DeviceSpec& spec = per_node_devices[static_cast<std::size_t>(n)];
    sim::Resource* cores = spec.type == cl::DeviceType::kCpu
                               ? &platform_.node(n).host_cores()
                               : nullptr;
    map_devices_.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores, n));
    reduce_devices_.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores, n));
  }
}

JobResult GlasswingRuntime::run(const AppKernels& app, JobConfig config,
                                dfs::FileSystem* fs_override) {
  dfs::FileSystem& fs = fs_override != nullptr ? *fs_override : fs_;
  JobExec ex(platform_, fs, map_devices_, reduce_devices_, app,
             std::move(config), /*env=*/nullptr);
  ex.setup();
  auto& sim = platform_.sim();
  bool completed = false;
  bool failed = false;
  std::string failure;
  sim.spawn([](sim::TaskGroup& group, bool* completed_out, bool* failed_out,
               std::string* msg) -> sim::Task<> {
    try {
      co_await group.wait();
    } catch (const std::exception& e) {
      *failed_out = true;
      *msg = e.what();
    }
    *completed_out = true;
  }(ex.all, &completed, &failed, &failure));
  sim.run();
  // The event queue draining without the task group resolving means a node
  // coroutine is parked forever — a protocol deadlock, not a slow job.
  GW_CHECK_MSG(completed, "job hung: event queue drained with nodes parked");
  ex.finish_marks();
  if (ex.ft) {
    // Data in flight to a machine when it died vanishes with it: drop any
    // stray inbox addressed to a crashed node (a round port it never got to
    // open), then assert the fabric is otherwise clean.
    for (int n : ex.shared.failed) platform_.fabric().purge_node(n);
    sim.run();  // drain anything the purge woke
    ex.tp.clear_expected();
  }
  if (ex.listener_id >= 0) sim.remove_crash_listener(ex.listener_id);
  if (failed) util::throw_error("job failed: " + failure);
  platform_.fabric().check_quiesced();
  return ex.finalize();
}

sim::Task<JobResult> GlasswingRuntime::run_async(AppKernels app,
                                                 JobConfig config,
                                                 dfs::FileSystem* fs_override,
                                                 const JobEnv* env) {
  dfs::FileSystem& fs = fs_override != nullptr ? *fs_override : fs_;
  JobExec ex(platform_, fs, map_devices_, reduce_devices_, app,
             std::move(config), env);
  ex.setup();
  bool failed = false;
  std::string failure;
  try {
    co_await ex.all.wait();
  } catch (const std::exception& e) {
    failed = true;
    failure = e.what();
  }
  ex.finish_marks();
  const int lo = ex.config.port_base;
  const int hi = lo + net::kPortJobStride;
  if (ex.ft) {
    // Scoped teardown: only this job's port namespace is purged and its
    // expected-sender records cleared, so resident neighbours keep theirs.
    // The purge can wake a zombie receiver still parked on a dropped inbox;
    // one zero-delay tick lets it unwind before this frame (the NodeRun
    // state it touches) is destroyed — the async stand-in for the
    // synchronous path's post-purge sim.run().
    if (lo > 0) {
      for (int n : ex.shared.failed) platform_.fabric().purge_node(n, lo, hi);
      ex.tp.clear_expected(lo, hi);
    } else {
      for (int n : ex.shared.failed) platform_.fabric().purge_node(n);
      ex.tp.clear_expected();
    }
    co_await ex.sim.delay(0);
  }
  if (ex.listener_id >= 0) ex.sim.remove_crash_listener(ex.listener_id);
  if (failed) util::throw_error("job failed: " + failure);
  if (lo > 0) {
    platform_.fabric().check_quiesced(lo, hi);
  } else {
    platform_.fabric().check_quiesced();
  }
  JobResult result = ex.finalize();
  if (ex.preempt != nullptr && ex.preempt->requested && ex.incomplete()) {
    ex.capture_suspension(result);
  }
  co_return result;
}

}  // namespace gw::core
