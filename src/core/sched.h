// Multi-tenant job scheduler: N concurrent jobs share one cluster.
//
// The paper's runtime is "structured in the form of a light-weight software
// library" (§I) around a single job; real clusters run many. core::Scheduler
// generalizes the job layer to a shared-cluster model: jobs arrive on the
// simulated clock (open-loop, from a deterministic TrafficGen or explicit
// arrival times), wait in a JobQueue under an admission policy, and execute
// concurrently through GlasswingRuntime::run_async — each confined to its
// own port namespace and trace scope, time-sharing per-node map/reduce slot
// gates and (optionally) per-node memory governors.
//
// Determinism: everything runs on the one single-threaded simulation. Given
// the same submissions, the admission order, slot interleavings and every
// job's output bytes are reproducible run-to-run and independent of
// GW_THREADS, like the rest of the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "core/job.h"
#include "gwdfs/fs.h"
#include "sim/sim.h"
#include "util/rng.h"

namespace gw::core {

// Queue-ordering policy for admission (who runs when a slot frees up).
//   kFifo     — arrival order, regardless of tenant or size.
//   kFair     — least-service-first: pick the queued job whose tenant has
//               accumulated the least residency time so far (ties broken by
//               arrival order). Small/interactive tenants overtake a tenant
//               monopolizing the cluster with large jobs.
//   kPriority — strict priority classes (lower value = more urgent), ties
//               by arrival; optional aging promotes long-waiting jobs so a
//               hot class cannot starve a cold one forever.
enum class SchedPolicy { kFifo = 0, kFair = 1, kPriority = 2 };

// "fifo" | "fair" | "priority" (asserts on anything else).
SchedPolicy parse_sched_policy(std::string_view name);
const char* sched_policy_name(SchedPolicy policy);

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  // Per-node pipeline slots: how many resident jobs may run their map
  // (resp. reduce) phase on one node at the same time. 1 = phases from
  // different jobs time-share each node one-at-a-time (shuffle and merge
  // still overlap freely — receivers are never gated, so no cross-job
  // deadlock is possible).
  int map_slots_per_node = 1;
  int reduce_slots_per_node = 1;
  // Admission control: at most this many jobs resident (admitted, running)
  // at once; further arrivals queue.
  int max_resident_jobs = 4;
  // Queue bound: an arrival finding this many jobs already queued is
  // rejected (counted, never run). 0 = unbounded queue.
  int max_queued_jobs = 0;
  // Shared per-node memory budget carved across ALL resident jobs (one
  // governor per node, handed to every job via JobEnv). 0 = each job uses
  // its own per-job governor iff its JobConfig asks for one.
  std::uint64_t node_memory_bytes = 0;
  // kPriority only: every full interval a job waits promotes it one
  // priority class (0 = no aging, strict classes).
  double priority_aging_s = 0;
};

// One job submission. arrival_s is on the simulated clock; submissions must
// all be registered (submit()) before run_all() starts the event loop.
struct JobRequest {
  std::string name;  // reporting label, e.g. "wc-small"
  AppKernels app;
  JobConfig config;
  int tenant = 0;
  int priority = 0;  // SchedPolicy::kPriority class; lower = more urgent
  // Arrival relative to the scheduler's epoch (sim.now() at construction),
  // so input staging that already advanced the clock doesn't show up as
  // queueing delay.
  double arrival_s = 0;
  dfs::FileSystem* fs_override = nullptr;  // null = the scheduler-bound fs
};

// Per-job outcome: queueing delays plus the usual JobResult. All times are
// relative to the scheduler epoch.
struct ScheduledJob {
  int job_id = -1;
  std::string name;
  int tenant = 0;
  int priority = 0;
  double arrival_s = 0;
  double admit_s = 0;
  double finish_s = 0;
  double queue_wait_s = 0;  // admit - arrival
  double latency_s = 0;     // finish - arrival (sojourn time)
  bool rejected = false;    // bounced by max_queued_jobs
  bool failed = false;      // run_async threw (unrecoverable data loss)
  JobResult result;         // valid iff !rejected && !failed
};

struct TenantStats {
  int tenant = 0;
  int jobs_finished = 0;
  double service_s = 0;  // total residency (finish - admit) across its jobs
  double wait_s = 0;     // total queue wait across its jobs
};

// The scheduler. Owns the shared slot gates and governors; drives the
// platform's simulation in run_all().
class Scheduler {
 public:
  Scheduler(GlasswingRuntime& runtime, cluster::Platform& platform,
            dfs::FileSystem& fs, SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a job to arrive at req.arrival_s. Returns the job id it will
  // run under (dense, in submission order); the id fixes the job's port
  // namespace and trace scope. Call before run_all().
  int submit(JobRequest req);

  // Runs the event loop until every submitted job reached a terminal state
  // (finished, failed or rejected). Asserts on a hang.
  void run_all();

  const std::vector<ScheduledJob>& results() const { return results_; }
  std::vector<TenantStats> tenant_stats() const;

  int jobs_submitted() const { return static_cast<int>(requests_.size()); }
  int jobs_rejected() const { return rejected_; }
  int jobs_failed() const { return failed_; }
  // High-water mark of concurrently resident jobs.
  int resident_peak() const { return resident_peak_; }
  // Longest queue observed (including the job about to be admitted).
  int queue_peak() const { return queue_peak_; }

 private:
  sim::Task<void> arrive(int id);
  sim::Task<void> run_job(int id);
  void pump();
  std::size_t pick_next() const;  // index into queue_, by policy
  double tenant_service(int tenant) const;

  GlasswingRuntime& runtime_;
  cluster::Platform& platform_;
  dfs::FileSystem& fs_;
  SchedulerConfig config_;

  // Shared execution environment handed to every resident job.
  std::vector<std::unique_ptr<sim::Resource>> map_slots_;
  std::vector<std::unique_ptr<sim::Resource>> reduce_slots_;
  std::vector<std::unique_ptr<MemoryGovernor>> governors_;
  JobEnv env_;

  std::vector<JobRequest> requests_;
  std::vector<ScheduledJob> results_;
  std::vector<int> queue_;  // queued job ids, arrival order
  std::map<int, TenantStats> tenants_;

  double epoch_ = 0;  // sim.now() at construction; arrival origin
  bool any_crashes_ = false;  // some submission injects node crashes
  int resident_ = 0;
  int resident_peak_ = 0;
  int queue_peak_ = 0;
  int completed_ = 0;  // terminal states: finished + failed + rejected
  int rejected_ = 0;
  int failed_ = 0;
};

// Deterministic open-loop arrival process: exponential interarrival times
// (Poisson arrivals) at `jobs_per_s`, from the repo's seeded xoshiro stream.
// Same seed + rate => the same arrival timeline, bit-for-bit.
class TrafficGen {
 public:
  TrafficGen(std::uint64_t seed, double jobs_per_s);

  // Advances the arrival clock by one exponential interarrival gap and
  // returns the new absolute arrival time (seconds).
  double next_arrival_s();

  // Uniform pick in [0, n) for workload mixing (kept here so a traffic
  // trace is one seed, not two).
  std::uint64_t pick(std::uint64_t n);

  double offered_load_jobs_per_s() const { return rate_; }

 private:
  util::Rng rng_;
  double rate_;
  double clock_ = 0;
};

}  // namespace gw::core
