#include "core/memory.h"

#include <algorithm>

#include "util/error.h"

namespace gw::core {

MemoryGovernor::MemoryGovernor(sim::Simulation& sim,
                               std::uint64_t node_memory_bytes,
                               bool with_combine_pool)
    : sim_(sim), budget_(node_memory_bytes) {
  GW_CHECK_MSG(node_memory_bytes > 0, "governor needs a nonzero budget");
  // 20% map-input, 20% map-output, 40% store, the remainder (~20%) merge;
  // every pool gets at least one byte so a degenerate budget still admits
  // work serially. When the combine pool is enabled it takes 10% out of
  // the store share (store drops to 30%); the four legacy shares are
  // untouched otherwise, so non-combining governed jobs keep their exact
  // pool capacities (and event order).
  const std::uint64_t in_share = std::max<std::uint64_t>(1, budget_ / 5);
  const std::uint64_t out_share = std::max<std::uint64_t>(1, budget_ / 5);
  const std::uint64_t store_share = std::max<std::uint64_t>(
      1, with_combine_pool ? budget_ * 3 / 10 : budget_ * 2 / 5);
  const std::uint64_t combine_share =
      with_combine_pool ? std::max<std::uint64_t>(1, budget_ / 10) : 1;
  const std::uint64_t claimed =
      in_share + out_share + store_share +
      (with_combine_pool ? combine_share : 0);
  const std::uint64_t merge_share = std::max<std::uint64_t>(
      1, budget_ - std::min(budget_ - 1, claimed));
  pools_[0] = std::make_unique<sim::Resource>(
      sim_, static_cast<std::int64_t>(in_share));
  pools_[1] = std::make_unique<sim::Resource>(
      sim_, static_cast<std::int64_t>(out_share));
  pools_[2] = std::make_unique<sim::Resource>(
      sim_, static_cast<std::int64_t>(store_share));
  pools_[3] = std::make_unique<sim::Resource>(
      sim_, static_cast<std::int64_t>(merge_share));
  pools_[4] = std::make_unique<sim::Resource>(
      sim_, static_cast<std::int64_t>(combine_share));
}

std::uint64_t MemoryGovernor::pool_budget(Pool p) const {
  return static_cast<std::uint64_t>(
      pools_[static_cast<std::size_t>(p)]->capacity());
}

std::uint64_t MemoryGovernor::pool_in_use(Pool p) const {
  return static_cast<std::uint64_t>(
      pools_[static_cast<std::size_t>(p)]->in_use());
}

std::int64_t MemoryGovernor::clamp(Pool p, std::uint64_t bytes) const {
  const std::int64_t cap = pools_[static_cast<std::size_t>(p)]->capacity();
  if (bytes == 0) return 1;
  if (bytes > static_cast<std::uint64_t>(cap)) return cap;
  return static_cast<std::int64_t>(bytes);
}

bool MemoryGovernor::fits(Pool p, std::uint64_t bytes) const {
  const sim::Resource& r = *pools_[static_cast<std::size_t>(p)];
  return r.queue_length() == 0 && r.available() >= clamp(p, bytes);
}

bool MemoryGovernor::contended(Pool p) const {
  return pools_[static_cast<std::size_t>(p)]->queue_length() > 0;
}

sim::Task<sim::Resource::Hold> MemoryGovernor::acquire(Pool p,
                                                       std::uint64_t bytes) {
  sim::Resource& pool = *pools_[static_cast<std::size_t>(p)];
  const std::int64_t n = clamp(p, bytes);
  const double t0 = sim_.now();
  sim::Resource::Hold hold = co_await pool.acquire(n);
  stall_seconds_ += sim_.now() - t0;
  note_occupancy();
  co_return hold;
}

void MemoryGovernor::note_occupancy() {
  std::uint64_t total = 0;
  for (const auto& pool : pools_) {
    total += static_cast<std::uint64_t>(pool->in_use());
  }
  peak_ = std::max(peak_, total);
}

}  // namespace gw::core
