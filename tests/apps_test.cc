// Application tests: each of the five paper workloads runs as a full
// Glasswing job on a simulated cluster and its output is verified against a
// direct reference implementation.
#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "apps/kmeans.h"
#include "apps/matmul.h"
#include "apps/pageview.h"
#include "apps/terasort.h"
#include "apps/wordcount.h"
#include "core/job.h"
#include "util/hash.h"

namespace gw::apps {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
}

void write_file(Platform& p, dfs::FileSystem& fs, const std::string& path,
                util::Bytes contents) {
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes c) -> sim::Task<> {
    co_await f.write(0, pa, std::move(c));
  }(fs, path, std::move(contents)));
  p.sim().run();
}

util::Bytes read_file(Platform& p, dfs::FileSystem& fs,
                      const std::string& path) {
  util::Bytes out;
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes* o) -> sim::Task<> {
    *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
  }(fs, path, &out));
  p.sim().run();
  return out;
}

std::vector<std::pair<std::string, std::string>> all_output_pairs(
    Platform& p, dfs::FileSystem& fs, const core::JobResult& result) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& path : result.output_files) {
    auto filed = core::read_output_file(read_file(p, fs, path));
    pairs.insert(pairs.end(), filed.begin(), filed.end());
  }
  return pairs;
}

// ---------- WordCount ----------

TEST(WordCount, GeneratorIsSkewedAndDeterministic) {
  util::Bytes a = generate_wiki_text(100000, 7);
  util::Bytes b = generate_wiki_text(100000, 7);
  EXPECT_EQ(a, b);
  auto counts = wordcount_reference(a);
  // "the" must dominate, and a long sparse tail must exist.
  EXPECT_GT(counts["the"], 400u);
  std::size_t singletons = 0;
  for (auto& [w, c] : counts) singletons += (c == 1);
  EXPECT_GT(singletons, 100u);
}

TEST(WordCount, JobMatchesReferenceOnCluster) {
  Platform p = make_platform(4);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  util::Bytes text = generate_wiki_text(1 << 20, 11);
  write_file(p, fs, "/in/wiki", text);

  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out/wc";
  cfg.split_size = 128 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  auto result = rt.run(wordcount().kernels, cfg);

  std::map<std::string, std::uint64_t> actual;
  for (auto& [k, v] : all_output_pairs(p, fs, result)) {
    actual[k] += parse_u64(v);
  }
  EXPECT_EQ(actual, wordcount_reference(text));
}

// ---------- PageviewCount ----------

TEST(Pageview, GeneratorIsSparse) {
  util::Bytes log = generate_weblog(1 << 20, 5);
  auto counts = pageview_reference(log);
  std::size_t singles = 0;
  for (auto& [url, c] : counts) singles += (c == 1);
  // The paper: "duplicate URLs are rare ... massive number of keys".
  EXPECT_GT(counts.size(), 8000u);
  EXPECT_GT(static_cast<double>(singles) / counts.size(), 0.75);
}

TEST(Pageview, JobMatchesReference) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  util::Bytes log = generate_weblog(1 << 20, 3);
  write_file(p, fs, "/in/log", log);

  core::JobConfig cfg;
  cfg.input_paths = {"/in/log"};
  cfg.output_path = "/out/pvc";
  cfg.split_size = 256 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  auto result = rt.run(pageview_count().kernels, cfg);

  std::map<std::string, std::uint64_t> actual;
  for (auto& [k, v] : all_output_pairs(p, fs, result)) {
    actual[k] += parse_u64(v);
  }
  EXPECT_EQ(actual, pageview_reference(log));
}

// ---------- TeraSort ----------

TEST(TeraSort, OutputIsTotallyOrderedAndComplete) {
  Platform p = make_platform(4);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  util::Bytes input = generate_terasort(20000, 9);
  const std::uint64_t checksum_in = terasort_checksum(input);
  write_file(p, fs, "/in/tera", input);

  core::JobConfig cfg;
  cfg.input_paths = {"/in/tera"};
  cfg.output_path = "/out/tera";
  cfg.split_size = 128 << 10;
  cfg.output_replication = 1;

  AppSpec app = terasort();
  // Sampling pre-pass (client side, like the paper's TeraSort).
  core::PartitionFn partitioner;
  p.sim().spawn([](dfs::Dfs& f, core::PartitionFn* out) -> sim::Task<> {
    std::vector<std::string> paths = {"/in/tera"};
    *out = co_await sample_range_partitioner(f, 0, std::move(paths), 1000);
  }(fs, &partitioner));
  p.sim().run();
  app.kernels.partition = partitioner;

  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  auto result = rt.run(app.kernels, cfg);

  // Output files are globally ordered by partition index; validate
  // in-file sorting, cross-file ordering, record count and checksum.
  std::uint64_t total = 0;
  std::uint64_t checksum_out = 0;
  std::string prev_key;
  for (const auto& path : result.output_files) {  // sorted by partition
    auto pairs = core::read_output_file(read_file(p, fs, path));
    for (auto& [k, v] : pairs) {
      EXPECT_EQ(k.size(), kTeraKeySize);
      EXPECT_EQ(v.size(), kTeraRecordSize - kTeraKeySize);
      EXPECT_LE(prev_key, k);
      prev_key = k;
      const std::string rec = k + v;
      checksum_out ^= util::fnv1a(rec.data(), rec.size());
      ++total;
    }
  }
  EXPECT_EQ(total, 20000u);
  EXPECT_EQ(checksum_out, checksum_in);
}

TEST(TeraSort, RangePartitionerIsMonotone) {
  Platform p = make_platform(1);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/t", generate_terasort(5000, 1));
  core::PartitionFn part;
  p.sim().spawn([](dfs::Dfs& f, core::PartitionFn* out) -> sim::Task<> {
    std::vector<std::string> paths = {"/in/t"};
    *out = co_await sample_range_partitioner(f, 0, std::move(paths), 500);
  }(fs, &part));
  p.sim().run();
  // Increasing keys map to non-decreasing partitions, and the spread covers
  // most buckets.
  std::set<std::uint32_t> used;
  std::uint32_t prev = 0;
  for (int c = 0; c < 95; ++c) {
    std::string key(10, static_cast<char>(' ' + c));
    const std::uint32_t bucket = part(key, 32);
    EXPECT_GE(bucket, prev);
    prev = bucket;
    used.insert(bucket);
  }
  EXPECT_GT(used.size(), 24u);
}

// ---------- K-Means ----------

TEST(KMeans, JobMatchesReference) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  KmeansConfig km{.k = 64, .dims = 4};
  auto centers = generate_centers(km, 2);
  util::Bytes points = generate_points(km, 50000, 3);
  write_file(p, fs, "/in/points", points);

  core::JobConfig cfg;
  cfg.input_paths = {"/in/points"};
  cfg.output_path = "/out/km";
  cfg.split_size = 128 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  auto result = rt.run(kmeans(km, centers).kernels, cfg);

  const KmeansReference ref = kmeans_reference(km, centers, points);
  std::uint64_t centers_seen = 0;
  for (auto& [key, value] : all_output_pairs(p, fs, result)) {
    const std::uint32_t cid = get_be32(key);
    ASSERT_LT(cid, static_cast<std::uint32_t>(km.k));
    ++centers_seen;
    const std::uint32_t count = get_be32(
        std::string_view(value).substr(static_cast<std::size_t>(km.dims) * 4));
    EXPECT_EQ(count, ref.counts[cid]) << "center " << cid;
    for (int j = 0; j < km.dims; ++j) {
      const float mean = read_f32(value.data() + 4 * j);
      EXPECT_NEAR(mean, ref.means[static_cast<std::size_t>(cid) * km.dims + j],
                  1e-2)
          << "center " << cid << " dim " << j;
    }
  }
  std::uint64_t nonempty = 0;
  for (auto c : ref.counts) nonempty += (c > 0);
  EXPECT_EQ(centers_seen, nonempty);
}

TEST(KMeans, GpuJobMatchesCpuJob) {
  auto run_with = [](cl::DeviceSpec dev) {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    KmeansConfig km{.k = 32, .dims = 4};
    auto centers = generate_centers(km, 2);
    write_file(p, fs, "/in/p", generate_points(km, 20000, 3));
    core::JobConfig cfg;
    cfg.input_paths = {"/in/p"};
    cfg.output_path = "/out/km";
    core::GlasswingRuntime rt(p, fs, std::move(dev));
    auto result = rt.run(kmeans(km, centers).kernels, cfg);
    std::map<std::string, std::string> out;
    for (auto& [k, v] : all_output_pairs(p, fs, result)) out[k] = v;
    return out;
  };
  EXPECT_EQ(run_with(cl::DeviceSpec::cpu_dual_e5620()),
            run_with(cl::DeviceSpec::gtx480()));
}

// The DAG fixed-point driver replaced the hand-rolled `for (iter)` loop;
// this replica of the deleted loop pins down that the DAG path is
// byte-identical: same per-iteration output files, same final centers and
// counts, bit for bit.
TEST(KMeans, DagMatchesHandRolledLoop) {
  KmeansConfig km{.k = 16, .dims = 4};
  constexpr int kIterations = 3;
  const auto initial = generate_centers(km, 5);
  const util::Bytes points = generate_points(km, 20000, 7);

  core::JobConfig base;
  base.split_size = 64 << 10;

  // Legacy driver: run one job per iteration, fold the (center -> means,
  // count) pairs back into the carried state in concatenated file order.
  std::vector<float> centers = initial;
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(km.k), 0);
  std::vector<util::Bytes> hand_raw;
  {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    write_file(p, fs, "/in/points", points);
    core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
    for (int i = 0; i < kIterations; ++i) {
      core::JobConfig cfg = base;
      cfg.input_paths = {"/in/points"};
      cfg.output_path = "/out/hand/iter-" + std::to_string(i);
      auto result = rt.run(kmeans(km, centers).kernels, cfg);
      util::Bytes raw;
      counts.assign(static_cast<std::size_t>(km.k), 0);
      for (const auto& path : result.output_files) {
        const util::Bytes bytes = read_file(p, fs, path);
        raw.insert(raw.end(), bytes.begin(), bytes.end());
        for (const auto& [key, value] : core::read_output_file(bytes)) {
          const std::uint32_t cid = get_be32(key);
          ASSERT_LT(cid, static_cast<std::uint32_t>(km.k));
          counts[cid] = get_be32(std::string_view(value).substr(
              static_cast<std::size_t>(km.dims) * 4));
          if (counts[cid] == 0) continue;
          for (int j = 0; j < km.dims; ++j) {
            centers[static_cast<std::size_t>(cid) * km.dims + j] =
                read_f32(value.data() + 4 * j);
          }
        }
      }
      hand_raw.push_back(std::move(raw));
    }
  }

  // DAG driver with checkpoint edges on a fresh identical cluster.
  auto run_dag = [&](core::EdgeKind edge, bool pin_inputs) {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    write_file(p, fs, "/in/points", points);
    core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
    KmeansDagResult dr =
        kmeans_dag(rt, p, fs, km, initial, "/in/points", "/out/km",
                   kIterations, base, edge, pin_inputs);
    std::vector<util::Bytes> raws;
    std::uint64_t dfs_bytes = 0;
    for (const auto& r : dr.dag.rounds) {
      // Pinned center files live only in the DAG's in-memory overlay; the
      // base fs can read back checkpointed rounds only.
      if (edge == core::EdgeKind::kCheckpoint) {
        util::Bytes raw;
        for (const auto& path : r.outputs) {
          const util::Bytes bytes = read_file(p, fs, path);
          raw.insert(raw.end(), bytes.begin(), bytes.end());
        }
        raws.push_back(std::move(raw));
      }
      dfs_bytes += r.job.stats.net_dfs_bytes;
    }
    return std::tuple(std::move(dr), std::move(raws), dfs_bytes);
  };

  const auto [ck, ck_raw, ck_dfs] =
      run_dag(core::EdgeKind::kCheckpoint, false);
  EXPECT_EQ(ck.iterations.iterations, kIterations);
  EXPECT_EQ(ck.dag.rounds.size(), static_cast<std::size_t>(kIterations));
  EXPECT_EQ(ck.iterations.centers, centers);
  EXPECT_EQ(ck.iterations.counts, counts);
  ASSERT_EQ(ck_raw.size(), hand_raw.size());
  for (std::size_t i = 0; i < hand_raw.size(); ++i) {
    EXPECT_EQ(ck_raw[i], hand_raw[i]) << "iteration " << i;
  }

  // Pinning the tiny center files must not change a single byte of the
  // result, only cut the DFS traffic. (Input caching is kept off here: a
  // cache hit shifts simulated read timing and thus shuffle arrival order,
  // and the kmeans reduce sums floats in arrival order — bitwise equality
  // only holds for timing-neutral pinning. The order-insensitive prefix
  // sums DAG covers byte identity WITH input caching in dag_test.)
  const auto [pin, pin_raw, pin_dfs] = run_dag(core::EdgeKind::kPinned, false);
  EXPECT_EQ(pin.iterations.centers, centers);
  EXPECT_EQ(pin.iterations.counts, counts);
  EXPECT_TRUE(pin_raw.empty());  // nothing materialized to the base fs
  EXPECT_LT(pin_dfs, ck_dfs);
}

// ---------- Matrix Multiply ----------

TEST(MatMul, ElementsAreDeterministicAndBounded) {
  for (std::uint32_t r = 0; r < 50; ++r) {
    const float v = matrix_element(1, r, r * 3);
    EXPECT_EQ(v, matrix_element(1, r, r * 3));
    EXPECT_GE(v, -0.5f);
    EXPECT_LE(v, 0.5f);
  }
}

TEST(MatMul, JobComputesCorrectProduct) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  MatmulConfig mm{.n = 128, .tile = 16};
  util::Bytes input = generate_tile_pairs(mm, 100, 200);
  write_file(p, fs, "/in/tiles", input);

  core::JobConfig cfg;
  cfg.input_paths = {"/in/tiles"};
  cfg.output_path = "/out/mm";
  cfg.split_size = 256 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  auto result = rt.run(matmul(mm).kernels, cfg);

  std::map<std::string, std::string> out;
  for (auto& [k, v] : all_output_pairs(p, fs, result)) out[k] = v;
  const std::uint32_t grid = mm.tiles_per_side();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(grid) * grid);

  // Verify a handful of C tiles against the direct reference.
  for (auto [ti, tj] : {std::pair<std::uint32_t, std::uint32_t>{0, 0},
                        {1, 3},
                        {grid - 1, grid - 1},
                        {2, 0}}) {
    const auto it = out.find(c_tile_key(ti, tj));
    ASSERT_NE(it, out.end());
    const std::vector<float> expected = reference_c_tile(mm, 100, 200, ti, tj);
    ASSERT_EQ(it->second.size(), expected.size() * 4);
    for (std::size_t e = 0; e < expected.size(); ++e) {
      EXPECT_NEAR(read_f32(it->second.data() + 4 * e), expected[e], 1e-3);
    }
  }
}

}  // namespace
}  // namespace gw::apps
