file(REMOVE_RECURSE
  "CMakeFiles/gw_gpmr.dir/gpmr/gpmr.cc.o"
  "CMakeFiles/gw_gpmr.dir/gpmr/gpmr.cc.o.d"
  "libgw_gpmr.a"
  "libgw_gpmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_gpmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
