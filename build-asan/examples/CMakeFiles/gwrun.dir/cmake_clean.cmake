file(REMOVE_RECURSE
  "CMakeFiles/gwrun.dir/gwrun.cpp.o"
  "CMakeFiles/gwrun.dir/gwrun.cpp.o.d"
  "gwrun"
  "gwrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gwrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
