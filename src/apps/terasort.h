// TeraSort (TS): totally-ordered sort of 100-byte records (paper §IV-A1).
//
// Records are gensort-style: a 10-byte random key plus a 90-byte payload.
// The job's output must be totally ordered ACROSS partitions, so the input
// is sampled to estimate the key distribution and the map function places
// each key into the right range partition; no reduce function is needed —
// the output is fully processed by the end of the intermediate-data merge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common.h"
#include "core/dag.h"
#include "gwdfs/fs.h"
#include "sim/sim.h"
#include "util/bytes.h"

namespace gw::apps {

constexpr std::uint64_t kTeraRecordSize = 100;
constexpr std::uint64_t kTeraKeySize = 10;

// AppSpec with an identity map and NO reduce; the partition function must
// be installed separately (see sample_range_partitioner).
AppSpec terasort();

// Samples record keys from the inputs (charging the reads) and returns a
// monotone range partitioner: equal-frequency quantiles over the samples.
// Mirrors TeraSort's client-side sampling pre-pass.
sim::Task<core::PartitionFn> sample_range_partitioner(
    dfs::FileSystem& fs, int node, std::vector<std::string> paths,
    std::size_t samples_per_file);

// TeraSort as a two-round sample-sort DAG (the classic distribution sort):
// round 0 maps over the full input emitting every sample_every-th key
// (deterministic fnv1a selection) into one merge-sorted sample partition;
// the driver distills P-1 equal-frequency splitters from it and broadcasts
// them; round 1 re-reads the original input and range-partitions with the
// broadcast splitters. Replaces the client-side sampling pre-pass with a
// proper MapReduce round, as Hadoop's TeraSort does. The concatenation of
// round 1's partition files in index order is globally sorted.
//
// `sample_edge` picks where the (tiny) sample file lives between rounds;
// dag.input_paths / dag.output_root / dag.base must be filled by the caller
// (crash injection fields pass through).
core::DagResult terasort_dag(core::GlasswingRuntime& runtime,
                             cluster::Platform& platform, dfs::FileSystem& fs,
                             core::DagConfig dag,
                             core::EdgeKind sample_edge =
                                 core::EdgeKind::kPinned,
                             std::uint32_t sample_every = 64);

// Decodes splitters and returns the monotone range partitioner used by
// terasort_dag's sort round (exposed for tests).
util::Bytes encode_splitters(const std::vector<std::string>& splitters);
std::vector<std::string> decode_splitters(const util::Bytes& payload);
core::PartitionFn splitter_range_partitioner(std::vector<std::string> splitters);

// Generates `records` gensort-like records.
util::Bytes generate_terasort(std::uint64_t records, std::uint64_t seed);

// Verification helpers: multiset checksum (order-independent) and record
// count; outputs must be sorted per file, globally ordered across partition
// indices, and checksum/count-preserving.
std::uint64_t terasort_checksum(const util::Bytes& data);

}  // namespace gw::apps
