# Empty dependencies file for fig6_vertical.
# This may be replaced when dependencies are built.
