# Empty dependencies file for core_kv_test.
# This may be replaced when dependencies are built.
