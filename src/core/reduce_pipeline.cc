// Reduce pipeline: Input(final merge) -> Stage -> Kernel -> Retrieve ->
// Output (§III-C). Multiple intermediate keys are processed concurrently in
// one kernel, each kernel thread handles keys_per_thread keys sequentially,
// and oversized value lists are sliced across kernel invocations with
// scratch state carried between calls.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "core/stage.h"
#include "simnet/transport.h"
#include "util/error.h"

namespace gw::core {

namespace {

// Modeled per-kernel-thread creation overhead in simple ops (§III-C: "To
// alleviate thread creation overhead, Glasswing provides the possibility to
// have each reduce kernel thread process multiple keys sequentially").
constexpr std::uint64_t kThreadCreateOps = 600;

struct KeyGroup {
  KeyGroup() = default;
  std::string_view key;
  std::vector<std::string_view> values;
  bool is_continuation = false;  // prepend scratch value for this key
  bool has_more = false;         // more value slices follow in later chunks
};

struct ReduceChunk {
  ReduceChunk() = default;
  std::shared_ptr<Run> backing;  // keeps the string_views alive
  std::vector<KeyGroup> groups;
  std::uint64_t payload_bytes = 0;
  int partition = -1;       // local partition index
  bool last_of_partition = false;
  bool scratch_chunk = false;  // contains a sliced key; runs single-threaded
  sim::Resource::Hold in_hold;
};

struct ReducedChunk {
  ReducedChunk() = default;
  PairList pairs;
  int partition = -1;
  bool last_of_partition = false;
  sim::Resource::Hold out_hold;
};

// Governed reduce input: the merged partition plus the merge-pool hold that
// accounts for it, kept alive exactly as long as chunks still view the run.
struct BackingRun {
  BackingRun(Run run_in, sim::Resource::Hold hold_in)
      : run(std::move(run_in)), hold(std::move(hold_in)) {}
  Run run;
  sim::Resource::Hold hold;
};

class ScratchEmitter : public ReduceEmitter {
 public:
  explicit ScratchEmitter(std::string* slot) : slot_(slot) {}
  void emit(std::string_view /*key*/, std::string_view value) override {
    *slot_ = std::string(value);
    ++emits_;
  }
  int emits() const { return emits_; }

 private:
  std::string* slot_;
  int emits_ = 0;
};

class GroupPairEmitter : public ReduceEmitter {
 public:
  GroupPairEmitter(PairList* out, cl::KernelCounters* c) : out_(out), c_(c) {}
  void emit(std::string_view key, std::string_view value) override {
    out_->add(key, value);
    c_->charge_write(key.size() + value.size());
  }

 private:
  PairList* out_;
  cl::KernelCounters* c_;
};

sim::Task<> input_stage(Stage& st, NodeContext ctx, std::vector<int> partitions,
                        sim::Resource& in_buffers,
                        sim::Channel<ReduceChunk>& out, ReduceMetrics& m) {
  const JobConfig& cfg = *ctx.config;
  const std::int32_t retry_name = st.span_name("retry");
  for (int p : partitions) {
    // A crashed node initiates no further reduce tasks; the partition in
    // flight completes (in-flight work finishes, §III-E crash semantics).
    if (!ctx.self_live()) break;
    std::uint64_t disk_bytes = 0;
    std::vector<Run> runs = ctx.store->take_partition(p, &disk_bytes);
    if (runs.empty()) continue;

    std::shared_ptr<Run> backing;
    {
      Stage::BusyScope scope(st);
      std::uint64_t in_stored = 0, in_raw = 0;
      for (const Run& r : runs) {
        in_stored += r.stored_bytes();
        in_raw += r.raw_bytes;
      }
      // Governed: the merge inputs, decompression scratch and merged output
      // are charged to the merge pool until the last chunk viewing the
      // merged run is reduced (the hold rides the backing shared_ptr).
      sim::Resource::Hold mem_hold;
      if (ctx.mem != nullptr) {
        mem_hold = co_await ctx.mem->acquire(MemoryGovernor::Pool::kMerge,
                                             in_stored + in_raw);
      }
      // The decompress+merge charge depends only on the input run sizes, so
      // the real merge overlaps the simulated disk + cpu charges on the
      // host pool.
      const bool trivial = runs.size() == 1 && !runs.front().compressed;
      util::Future<Run> merging;
      if (!trivial) {
        merging = ctx.sim().offload([&runs] { return merge_runs(runs, false); });
      }
      if (disk_bytes > 0) {
        co_await ctx.node->disk_stream_read(
            disk_bytes, cluster::Node::amortized_seek(disk_bytes));
      }
      const HostCosts& h = cfg.host;
      co_await ctx.node->cpu_work(
          static_cast<double>(in_stored) / h.decompress_bytes_per_s +
          static_cast<double>(in_raw) / h.merge_bytes_per_s);
      Run merged;
      if (trivial) {
        merged = std::move(runs.front());
      } else {
        merged = co_await ctx.sim().join(std::move(merging));
      }

      // Fault injection (§III-E), reduce side: the first attempt of every
      // Nth reduce partition — 1-based over global ids, mirroring the map
      // side — fails after its final merge ran. The stored runs were
      // already consumed and the merge is deterministic, so re-execution
      // re-charges the same disk and cpu time and reuses the identical
      // merged bytes. There is no attempt loop: one injection per
      // partition, so a retry can never re-fail by construction.
      const int every = cfg.fail_every_nth_reduce_task;
      if (every > 0 && (p + 1) % every == 0) {
        ++m.task_failures;
        st.instant(trace::Kind::kRetry, retry_name,
                   static_cast<std::uint64_t>(p));
        if (disk_bytes > 0) {
          co_await ctx.node->disk_stream_read(
              disk_bytes, cluster::Node::amortized_seek(disk_bytes));
        }
        co_await ctx.node->cpu_work(
            static_cast<double>(in_stored) / h.decompress_bytes_per_s +
            static_cast<double>(in_raw) / h.merge_bytes_per_s);
      }
      if (ctx.mem != nullptr) {
        auto owner = std::make_shared<BackingRun>(std::move(merged),
                                                  std::move(mem_hold));
        backing = std::shared_ptr<Run>(owner, &owner->run);
      } else {
        backing = std::make_shared<Run>(std::move(merged));
      }
    }

    // Group consecutive equal keys and slice into chunks.
    RunReader reader(*backing);
    ReduceChunk chunk;
    chunk.backing = backing;
    chunk.partition = p;
    std::uint64_t chunk_values = 0;

    auto flush = [&](bool scratch) -> sim::Task<> {
      if (chunk.groups.empty()) co_return;
      chunk.scratch_chunk = scratch;
      chunk.in_hold = co_await in_buffers.acquire();
      ReduceChunk next;
      next.backing = backing;
      next.partition = p;
      std::swap(next, chunk);
      chunk_values = 0;
      co_await out.send(std::move(next));
    };

    KV kv;
    bool have = reader.next(&kv);
    while (have) {
      KeyGroup group;
      group.key = kv.key;
      const std::string_view current_key = kv.key;
      while (have && kv.key == current_key) {
        group.values.push_back(kv.value);
        chunk.payload_bytes += kv.key.size() + kv.value.size();
        have = reader.next(&kv);
        if (group.values.size() >= cfg.max_values_per_kernel && have &&
            kv.key == current_key) {
          // More values follow: ship this slice alone; a continuation
          // carries its partial result forward via scratch state.
          group.has_more = true;
          co_await flush(false);  // accumulated normal groups first
          chunk.groups.push_back(std::move(group));
          co_await flush(true);   // the slice itself, single-threaded
          group = KeyGroup();
          group.key = current_key;
          group.is_continuation = true;
        }
      }
      // End of key: `group` holds the only (or final) slice.
      if (group.is_continuation) {
        group.has_more = false;
        co_await flush(false);
        chunk.groups.push_back(std::move(group));
        co_await flush(true);
      } else if (!group.values.empty()) {
        chunk_values += group.values.size();
        chunk.groups.push_back(std::move(group));
        if (chunk.groups.size() >=
                static_cast<std::size_t>(cfg.concurrent_keys) ||
            chunk_values >= cfg.max_values_per_kernel) {
          co_await flush(false);
        }
      }
    }
    // Final chunk carries the end-of-partition marker (possibly empty, so
    // the output stage still finalizes the partition's file).
    chunk.last_of_partition = true;
    chunk.in_hold = co_await in_buffers.acquire();
    co_await out.send(std::move(chunk));
    chunk = ReduceChunk();
  }
  out.close();
}

sim::Task<> stage_stage(Stage& st, NodeContext ctx,
                        sim::Channel<ReduceChunk>& in,
                        sim::Channel<ReduceChunk>& out) {
  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    if (!ctx.device->unified_memory() && item->payload_bytes > 0) {
      Stage::BusyScope scope(st);
      co_await ctx.device->stage_in(item->payload_bytes);
    }
    co_await out.send(std::move(*item));
  }
  out.close();
}

sim::Task<> kernel_stage(Stage& st, NodeContext ctx,
                         sim::Channel<ReduceChunk>& in,
                         sim::Resource& out_buffers,
                         sim::Channel<ReducedChunk>& out, ReduceMetrics& m) {
  const JobConfig& cfg = *ctx.config;
  const ReduceFn& reduce = *ctx.app->reduce;
  // Scratch state for sliced keys, keyed per (partition, key).
  std::map<std::pair<int, std::string>, std::string> scratch;

  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    auto out_hold = co_await out_buffers.acquire();
    ReducedChunk result;
    result.partition = item->partition;
    result.last_of_partition = item->last_of_partition;

    if (!item->groups.empty()) {
      Stage::BusyScope scope(st);
      const std::size_t keys = item->groups.size();
      const std::size_t kpt =
          std::max<std::size_t>(1, static_cast<std::size_t>(cfg.keys_per_thread));
      const std::size_t threads = (keys + kpt - 1) / kpt;
      const std::size_t groups =
          item->scratch_chunk
              ? 1
              : std::max<std::size_t>(
                    1, std::min<std::size_t>(cl::Device::kDefaultWorkGroups,
                                             threads));
      std::vector<PairList> out_groups(groups);

      cl::KernelStats stats = co_await ctx.device->run_kernel_grouped(
          threads, groups,
          [&](std::size_t t, std::size_t g, cl::KernelCounters& c) {
            c.charge_ops(kThreadCreateOps);
            const std::size_t lo = t * kpt;
            const std::size_t hi = std::min(keys, lo + kpt);
            for (std::size_t k = lo; k < hi; ++k) {
              KeyGroup& group = item->groups[k];
              std::uint64_t bytes = group.key.size();
              for (auto v : group.values) bytes += v.size();
              c.charge_read(bytes);

              // Inject carried scratch state for continuations. The value is
              // moved into a local first: erasing (or overwriting) the map
              // entry while `with_scratch` still views its string would
              // leave a dangling view during the reduce call below.
              std::vector<std::string_view>* values = &group.values;
              std::vector<std::string_view> with_scratch;
              std::string carried;
              const auto scratch_key =
                  std::make_pair(item->partition, std::string(group.key));
              if (group.is_continuation) {
                auto it = scratch.find(scratch_key);
                GW_CHECK_MSG(it != scratch.end(), "missing scratch state");
                carried = std::move(it->second);
                if (!group.has_more) scratch.erase(it);
                with_scratch.reserve(group.values.size() + 1);
                with_scratch.push_back(carried);
                with_scratch.insert(with_scratch.end(), group.values.begin(),
                                    group.values.end());
                values = &with_scratch;
              }

              if (group.has_more) {
                // Partial invocation: capture the single partial result.
                std::string slot;
                ScratchEmitter emitter(&slot);
                ReduceContext rctx{&emitter, &c};
                reduce(group.key, *values, rctx);
                GW_CHECK_MSG(emitter.emits() == 1,
                             "sliced reduce must emit exactly one value");
                scratch[scratch_key] = std::move(slot);
              } else {
                GroupPairEmitter emitter(&out_groups[g], &c);
                ReduceContext rctx{&emitter, &c};
                reduce(group.key, *values, rctx);
              }
            }
          },
          cfg.reduce_launch);
      m.kernel_stats += stats;
      for (auto& pl : out_groups) result.pairs.append(pl);
    }
    // Release promptly (the optional holding it lives until the next recv,
    // which would deadlock a single-buffer pipeline).
    item->in_hold.release();
    result.out_hold = std::move(out_hold);
    co_await out.send(std::move(result));
  }
  out.close();
}

sim::Task<> retrieve_stage(Stage& st, NodeContext ctx,
                           sim::Channel<ReducedChunk>& in,
                           sim::Channel<ReducedChunk>& out) {
  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    if (!ctx.device->unified_memory() && item->pairs.blob_bytes() > 0) {
      Stage::BusyScope scope(st);
      co_await ctx.device->stage_out(item->pairs.blob_bytes());
    }
    co_await out.send(std::move(*item));
  }
  out.close();
}

sim::Task<> write_output(Stage& st, NodeContext ctx, int g,
                         RunBuilder&& builder, ReduceMetrics& m) {
  // Zombies never commit: a node that crashed mid-reduce drops its output
  // instead of initiating a DFS write, and a crash racing the write itself
  // abandons the file. Either way no output file exists for `g`, which is
  // precisely what makes the recovery pass re-reduce it on the new owner.
  if (!ctx.self_live()) co_return;
  Stage::Span scope(st, trace::Kind::kStage, st.span_name("output"));
  const std::uint64_t raw = builder.raw_bytes();
  // Finalizing + wire-framing the output run is size-charged: overlap the
  // real work with the serialize charge.
  const std::uint64_t pairs = builder.pairs();
  auto work = ctx.sim().offload([b = std::move(builder)]() mutable {
    Run run = b.finish(false);
    util::ByteWriter w;
    run.serialize(w);
    return w.take();
  });
  co_await ctx.node->cpu_work(static_cast<double>(raw) /
                              ctx.config->host.serialize_bytes_per_s);
  util::Bytes wire = co_await ctx.sim().join(std::move(work));
  const std::string path = partition_output_path(*ctx.config, g);
  if (!ctx.config->fault_tolerant()) {
    co_await ctx.fs->write(ctx.node_id, path, std::move(wire));
  } else {
    // HDFS-style pipeline recovery: a replica dying mid-write fails the
    // attempt with NodeDownError; a live writer re-streams the file (crash
    // pruning already dropped the dead node from placement, so the retry
    // picks survivors). Only a writer that itself died abandons the output
    // — and then the missing file is precisely what makes the recovery
    // pass re-reduce `g` on its new owner.
    for (;;) {
      if (!ctx.self_live()) co_return;
      try {
        co_await ctx.fs->write(ctx.node_id, path, util::Bytes(wire));
      } catch (const net::NodeDownError&) {
        continue;
      }
      break;
    }
  }
  m.output_pairs += pairs;
  m.output_files.push_back(path);
}

sim::Task<> output_stage(Stage& st, NodeContext ctx,
                         sim::Channel<ReducedChunk>& in, ReduceMetrics& m) {
  std::map<int, RunBuilder> builders;
  for (;;) {
    auto item = co_await in.recv();
    if (!item) break;
    RunBuilder& builder = builders[item->partition];
    for (std::size_t i = 0; i < item->pairs.size(); ++i) {
      builder.add_encoded(item->pairs.encoded_pair(i));
    }
    if (item->last_of_partition) {
      co_await write_output(st, ctx, item->partition, std::move(builder), m);
      builders.erase(item->partition);
    }
    item->out_hold.release();
  }
}

// TeraSort-style jobs: no reduce function; the merged partitions are the
// final output (§IV-A1).
sim::Task<> merge_only_reduce(Stage& st, NodeContext ctx,
                              std::vector<int> partitions, ReduceMetrics& m) {
  const JobConfig& cfg = *ctx.config;
  const std::int32_t retry_name = st.span_name("retry");
  for (int p : partitions) {
    if (!ctx.self_live()) break;  // as in input_stage
    std::uint64_t disk_bytes = 0;
    std::vector<Run> runs = ctx.store->take_partition(p, &disk_bytes);
    if (runs.empty()) continue;
    RunBuilder builder;
    {
      Stage::BusyScope scope(st);
      std::uint64_t in_stored = 0, in_raw = 0;
      for (const Run& r : runs) {
        in_stored += r.stored_bytes();
        in_raw += r.raw_bytes;
      }
      // Governed: merge inputs + scratch + output against the merge pool
      // for the duration of this partition's merge-and-append.
      sim::Resource::Hold mem_hold;
      if (ctx.mem != nullptr) {
        mem_hold = co_await ctx.mem->acquire(MemoryGovernor::Pool::kMerge,
                                             in_stored + in_raw);
      }
      // As in input_stage: the merge charge is size-determined, so the real
      // merge overlaps the simulated disk + cpu charges.
      auto merging =
          ctx.sim().offload([&runs] { return merge_runs(runs, false); });
      if (disk_bytes > 0) {
        co_await ctx.node->disk_stream_read(
            disk_bytes, cluster::Node::amortized_seek(disk_bytes));
      }
      const HostCosts& h = cfg.host;
      co_await ctx.node->cpu_work(
          static_cast<double>(in_stored) / h.decompress_bytes_per_s +
          static_cast<double>(in_raw) / h.merge_bytes_per_s);
      Run merged = co_await ctx.sim().join(std::move(merging));
      // Reduce-side fault injection: identical semantics to input_stage
      // (first attempt of every Nth global partition re-charges its merge).
      const int every = cfg.fail_every_nth_reduce_task;
      if (every > 0 && (p + 1) % every == 0) {
        ++m.task_failures;
        st.instant(trace::Kind::kRetry, retry_name,
                   static_cast<std::uint64_t>(p));
        if (disk_bytes > 0) {
          co_await ctx.node->disk_stream_read(
              disk_bytes, cluster::Node::amortized_seek(disk_bytes));
        }
        co_await ctx.node->cpu_work(
            static_cast<double>(in_stored) / h.decompress_bytes_per_s +
            static_cast<double>(in_raw) / h.merge_bytes_per_s);
      }
      // The merged run is uncompressed and shares our pair framing: its
      // payload can be appended to the output builder wholesale.
      builder.add_encoded(
          std::string_view(reinterpret_cast<const char*>(merged.data.data()),
                           merged.data.size()),
          merged.pairs);
    }
    co_await write_output(st, ctx, p, std::move(builder), m);
  }
  co_return;
}

}  // namespace

std::string partition_output_path(const JobConfig& config, int g) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/part-%05d", g);
  return config.output_path + buf;
}

sim::Task<> run_reduce_phase(NodeContext ctx, std::vector<int> partitions,
                             ReduceMetrics& metrics) {
  auto& sim = ctx.sim();
  const JobConfig& cfg = *ctx.config;

  StageGraph g(sim, cfg.trace_scope + "reduce", ctx.node_id);

  if (!ctx.app->reduce.has_value()) {
    // Must stay inline-awaited: spawning would reorder the final Dfs
    // writes relative to other nodes' events.
    Stage& st = g.inline_stage("input");
    co_await merge_only_reduce(st, ctx, std::move(partitions), metrics);
    co_return;
  }

  sim::Resource& in_buffers = g.pool(cfg.buffering);
  sim::Resource& out_buffers = g.pool(cfg.buffering);
  auto& c12 = g.channel<ReduceChunk>(8);
  auto& c23 = g.channel<ReduceChunk>(8);
  auto& c34 = g.channel<ReducedChunk>(8);
  auto& c45 = g.channel<ReducedChunk>(8);

  ReduceMetrics& m = metrics;
  g.add_stage("input", 1, [&, ctx, partitions](Stage& st) {
    return input_stage(st, ctx, partitions, in_buffers, c12, m);
  });
  g.add_stage("stage", 1,
              [&, ctx](Stage& st) { return stage_stage(st, ctx, c12, c23); });
  g.add_stage("kernel", 1, [&, ctx](Stage& st) {
    return kernel_stage(st, ctx, c23, out_buffers, c34, m);
  });
  g.add_stage("retrieve", 1, [&, ctx](Stage& st) {
    return retrieve_stage(st, ctx, c34, c45);
  });
  g.add_stage("output", 1,
              [&, ctx](Stage& st) { return output_stage(st, ctx, c45, m); });
  co_await g.run();
}

}  // namespace gw::core
