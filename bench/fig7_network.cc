// Figure 7 (new experiment, beyond the paper's figures): shuffle-bound
// scaling across interconnects. The paper evaluates Glasswing on 1 Gb
// Ethernet and QDR InfiniBand (IPoIB) and attributes its horizontal
// scalability to the push shuffle overlapping communication with the map
// pipeline (§III-D, §IV-C). This bench sweeps nodes x {GbE, IPoIB} x
// bisection oversubscription on a shuffle-heavy WordCount (no combiner, so
// the full intermediate volume crosses the wire) and reports:
//   * execution time + speedup per interconnect (SeriesTable),
//   * the remote-traffic split measured by the transport layer,
//   * per-link busy occupancy from the "net.tx" trace spans, whose spread
//     across nodes shows whether the load on the fabric is balanced.
// Oversubscribed configs ("-o4") model a core switch with bisection
// capacity nodes/4 and enable 256 KiB chunking + a 2 MiB credit window, so
// concurrent flows interleave on links instead of occupying them atomically.
#include <algorithm>
#include <map>

#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(12ull << 20);
constexpr std::uint64_t kSplit = 256 << 10;

struct NetPoint {
  double seconds = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t dfs_bytes = 0;
  std::uint64_t control_bytes = 0;
  double tx_busy_min = 0;  // per-node "net.tx" busy spread
  double tx_busy_max = 0;
};

net::NetworkProfile make_profile(bool gbe, double oversub) {
  net::NetworkProfile p = gbe ? net::NetworkProfile::gigabit_ethernet()
                              : net::NetworkProfile::qdr_infiniband_ipoib();
  if (oversub > 0) {
    p.name += "-o" + std::to_string(static_cast<int>(oversub));
    p.bisection_oversubscription = oversub;
    p.max_chunk_bytes = 256 << 10;
    p.credit_bytes = 2 << 20;
  }
  return p;
}

NetPoint run_point(int nodes, const net::NetworkProfile& profile,
                   const util::Bytes& input) {
  // Built inline (not via run_glasswing) so the platform outlives the job
  // and its tracer/transport can be inspected afterwards. LocalFs with
  // fully replicated input keeps DFS traffic off the wire: what remains is
  // the push shuffle this figure is about.
  cluster::Platform p =
      bench::make_platform(nodes, cluster::NodeSpec::das4_type1(), profile);
  dfs::LocalFs fs(p);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  cfg.use_combiner = false;
  bench::stage_input(p, fs, cfg.input_paths[0], input);
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  const core::JobResult r = rt.run(apps::wordcount().kernels, cfg);

  NetPoint out;
  out.seconds = r.elapsed_seconds;
  out.shuffle_bytes = r.stats.net_shuffle_bytes;
  out.dfs_bytes = r.stats.net_dfs_bytes;
  out.control_bytes = r.stats.net_control_bytes;
  const trace::Tracer& tr = p.sim().tracer();
  for (int n = 0; n < nodes; ++n) {
    const double busy = tr.occupancy(n, "net.tx").busy;
    if (n == 0) {
      out.tx_busy_min = out.tx_busy_max = busy;
    } else {
      out.tx_busy_min = std::min(out.tx_busy_min, busy);
      out.tx_busy_max = std::max(out.tx_busy_max, busy);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_wiki_text(kInputBytes, 2014);

  const std::vector<std::pair<std::string, net::NetworkProfile>> configs = {
      {"GbE", make_profile(true, 0)},
      {"GbE-o4", make_profile(true, 4)},
      {"IPoIB", make_profile(false, 0)},
      {"IPoIB-o4", make_profile(false, 4)},
  };
  const std::vector<int> node_counts = {2, 4, 8};

  bench::SeriesTable table("nodes");
  std::map<std::pair<std::string, int>, NetPoint> points;
  for (int nodes : node_counts) {
    for (const auto& [name, profile] : configs) {
      NetPoint pt;
      table.add_timed(name, nodes, [&] {
        pt = run_point(nodes, profile, input);
        return pt.seconds;
      });
      points[{name, nodes}] = pt;
    }
  }
  table.print("Figure 7: WC shuffle scaling, interconnect x oversubscription");

  const int big = node_counts.back();
  std::printf("\nTraffic split at %d nodes (GbE-o4):\n", big);
  const NetPoint& gbe_o4 = points.at({"GbE-o4", big});
  std::printf("  shuffle=%llu dfs=%llu control=%llu bytes\n",
              static_cast<unsigned long long>(gbe_o4.shuffle_bytes),
              static_cast<unsigned long long>(gbe_o4.dfs_bytes),
              static_cast<unsigned long long>(gbe_o4.control_bytes));
  std::printf("net.tx busy per node at %d nodes: GbE-o4 [%.3f, %.3f]s, "
              "IPoIB-o4 [%.3f, %.3f]s\n",
              big, gbe_o4.tx_busy_min, gbe_o4.tx_busy_max,
              points.at({"IPoIB-o4", big}).tx_busy_min,
              points.at({"IPoIB-o4", big}).tx_busy_max);

  const double gbe = table.at("GbE", big);
  const double gbe_o = table.at("GbE-o4", big);
  const double ib = table.at("IPoIB", big);
  const double ib_o = table.at("IPoIB-o4", big);
  const double gbe_degrade = gbe_o / gbe;
  const double ib_degrade = ib_o / ib;
  std::printf(
      "\nShape checks:\n"
      "  IPoIB beats GbE at %d nodes: %.3fs vs %.3fs (%s)\n"
      "  oversubscription hurts GbE more than IPoIB: %.3fx vs %.3fx (%s)\n"
      "  shuffle dominates DFS traffic (LocalFs input): %llu vs %llu (%s)\n",
      big, ib, gbe, ib < gbe ? "OK" : "MISMATCH", gbe_degrade, ib_degrade,
      gbe_degrade > ib_degrade ? "OK" : "MISMATCH",
      static_cast<unsigned long long>(gbe_o4.shuffle_bytes),
      static_cast<unsigned long long>(gbe_o4.dfs_bytes),
      gbe_o4.shuffle_bytes > gbe_o4.dfs_bytes ? "OK" : "MISMATCH");

  for (const auto& [name, profile] : configs) {
    const double t = table.at(name, big);
    bench::register_point("Fig7/WC/" + name + "/nodes:" + std::to_string(big),
                          [t](benchmark::State&) { return t; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
