// GPMR-like GPU MapReduce baseline.
//
// GPMR (Stuart & Owens) is the paper's GPU-cluster comparison point
// (§II, §IV-A2). This runtime reproduces its structural properties:
//   * GPU-only execution (no CPU fallback);
//   * NO overlap of input I/O with computation: a node "first reads all
//     data, then starts its computation pipeline; its total time is the sum
//     of computation and I/O" (§IV-A2, Fig 3(e));
//   * intermediate data must fit in host memory (no out-of-core path);
//   * inputs fully replicated on every node's local filesystem (the
//     experimental layout the GPMR paper reports);
//   * results are left in memory — GPMR's MM "does not store or transfer
//     intermediate data" and has no reduce implementation (skip_reduce).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "gwcl/device.h"
#include "gwdfs/fs.h"

namespace gw::gpmr {

struct GpmrConfig {
  std::vector<std::string> input_paths;
  std::uint64_t chunk_size = 4ull << 20;
  bool use_combiner = true;   // GPMR's partial per-chunk reduction
  // MM comparison mode: no aggregation of partial results and no inter-node
  // exchange (GPMR's MM has no reduce implementation).
  bool skip_reduce = false;
  // GPMR generates MM input on the fly and excludes generation from its
  // timings; when false, input read time is excluded from elapsed.
  bool charge_input_io = true;
  // Extra compute charged on map kernels (>1 models GPMR's KM code being
  // "optimized for a small number of centers and ... not expected to run
  // efficiently for larger numbers" after the paper's minimal adaptation,
  // §IV-A2 / Fig 3(c)).
  double kernel_ops_factor = 1.0;
  // Kernel launch width (0 = all lanes); low-parallelism kernels (e.g.
  // 16-center K-Means) cannot fill the device.
  cl::LaunchConfig map_launch;
};

struct GpmrResult {
  double elapsed_seconds = 0;   // io (if charged) + compute, NOT overlapped
  double io_seconds = 0;        // input read time
  double compute_seconds = 0;   // kernel + staging + exchange + reduce
  std::uint64_t input_records = 0;
  std::uint64_t intermediate_pairs = 0;
  std::uint64_t peak_intermediate_bytes = 0;
  // Final output pairs (in memory; GPMR does not write output files).
  std::map<std::string, std::string> output;
};

class GpmrRuntime {
 public:
  // GPU-only: `device` must be a discrete GPU spec.
  GpmrRuntime(cluster::Platform& platform, dfs::FileSystem& local_fs,
              cl::DeviceSpec device);

  GpmrResult run(const core::AppKernels& app, GpmrConfig config);

  cl::Device& device(int node) { return *devices_.at(node); }

 private:
  cluster::Platform& platform_;
  dfs::FileSystem& fs_;
  cl::DeviceSpec device_spec_;
  std::vector<std::unique_ptr<cl::Device>> devices_;
};

}  // namespace gw::gpmr
