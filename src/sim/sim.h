// Discrete-event simulation engine.
//
// Every concurrent activity in the reproduced system — pipeline stages,
// merger threads, shuffle receivers, Hadoop task slots, device command
// queues, NIC transfers — is a C++20 coroutine (`sim::Task`) driven by a
// single `Simulation` event loop with a deterministic clock. Simulated
// processes wait with `co_await sim.delay(t)`, synchronize through counted
// `Resource`s (FIFO), one-shot `Event`s and bounded `Channel<T>`s, exactly
// the primitives the Glasswing runtime needs to express its 5-stage
// pipelines and buffer pools (paper §III-A, §III-D).
//
// Determinism: events are ordered by (time, insertion sequence); all wakeups
// go through the event queue (never resumed inline), so execution order is a
// pure function of the program and its seeds.
//
// Host-compute offload: real host work that a simulated process performs
// (kernel bodies, sorts, merges, compression) can be decoupled from the
// simulated timeline — submitted to the work-stealing `util::ThreadPool` at
// the simulated instant the work starts (`Simulation::offload`) and joined
// at the simulated instant its result is consumed (`co_await sim.join(f)`).
// The joining coroutine suspends with a pending-completion marker; the event
// loop resumes it *before* dispatching any further event, so event order is
// exactly that of a serial execution for every GW_THREADS value, while jobs
// whose submit and join lie at different simulated instants overlap in
// wall-clock with all events dispatched in between.
#pragma once

#include <chrono>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace gw::sim {

class Simulation;

namespace detail {

struct PromiseBase {
  Simulation* sim = nullptr;
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  bool detached = false;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.detached) {
        GW_CHECK_MSG(!p.exception, "detached sim::Task threw");
        h.destroy();
        return std::noop_coroutine();
      }
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
};

}  // namespace detail

// A simulated process / async operation. Task<T> completes with a value of
// type T. Awaiting a Task starts it immediately (symmetric transfer);
// Simulation::spawn starts it as a detached root process.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const { return h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        h.promise().continuation = parent;
        return h;
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const { return h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// The event loop. Single-threaded; simulated seconds.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  double now() const { return now_; }

  // Schedules `h` to resume after `delay` simulated seconds.
  void schedule(double delay, std::coroutine_handle<> h) {
    GW_CHECK_MSG(delay >= 0, "negative delay");
    queue_.push(Entry{now_ + delay, next_seq_++, h});
  }

  // Schedules at the current time, after already-queued same-time events.
  void schedule_now(std::coroutine_handle<> h) { schedule(0.0, h); }

  // Starts a detached root process at the current simulated time. The
  // coroutine frame self-destructs at final suspend.
  template <typename T>
  void spawn(Task<T>&& task) {
    GW_CHECK(task.handle_);
    auto h = std::exchange(task.handle_, {});
    h.promise().detached = true;
    schedule_now(h);
  }

  struct DelayAwaiter {
    Simulation* sim;
    double delay;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) { sim->schedule(delay, h); }
    void await_resume() {}
  };

  // co_await sim.delay(seconds)
  DelayAwaiter delay(double seconds) { return DelayAwaiter{this, seconds}; }

  // --- host-compute offload ---

  // Submits real host work to the process-wide pool. The returned future is
  // consumed with `co_await sim.join(std::move(f))` at the simulated point
  // where the result (or its derived charge) is needed.
  template <typename F>
  auto offload(F fn) {
    return util::ThreadPool::global().submit(std::move(fn));
  }

  template <typename T>
  class HostJoinAwaiter {
   public:
    HostJoinAwaiter(Simulation* sim, util::Future<T> f)
        : sim_(sim), future_(std::move(f)) {}
    // Suspends unconditionally — even when the job already finished — so the
    // resume path is identical whether or not the host happened to be fast.
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim_->pending_joins_.push_back(PendingJoin(future_, h));
    }
    T await_resume() { return future_.get(); }

   private:
    Simulation* sim_;
    util::Future<T> future_;
  };

  // co_await sim.join(std::move(future)) — rethrows the job's exception.
  template <typename T>
  HostJoinAwaiter<T> join(util::Future<T> f) {
    return HostJoinAwaiter<T>(this, std::move(f));
  }

  // Runs until the event queue drains. Returns the final simulated time.
  double run() {
    for (;;) {
      drain_pending_joins();
      if (queue_.empty()) break;
      step();
    }
    return now_;
  }

  // Runs events with time <= t_end, then sets now() = t_end.
  void run_until(double t_end) {
    for (;;) {
      drain_pending_joins();
      if (queue_.empty() || queue_.top().time > t_end) break;
      step();
    }
    if (t_end > now_) now_ = t_end;
  }

  std::uint64_t events_processed() const { return events_processed_; }

  // --- node failure injection ---
  //
  // Crash semantics (documented in DESIGN.md §III-E): a node crash is a
  // deterministic scheduled event. When it fires, node_alive(n) flips to
  // false and every registered listener runs synchronously, in registration
  // order, at the crash instant. Operations initiated before the crash
  // complete (the simulated hardware finishes in-flight DMA/disk work);
  // components consult node_alive() before STARTING new work. A restart
  // revives the node empty — lost state does not come back. When no crash is
  // scheduled, none of this adds events or changes behaviour.

  // True unless a crash event for `node` has fired (and no restart since).
  bool node_alive(int node) const {
    if (node < 0 || node >= static_cast<int>(alive_.size())) return true;
    return alive_[static_cast<std::size_t>(node)] != 0;
  }

  // Listener invoked at crash (`alive == false`) or restart (`alive ==
  // true`) time, on the sim thread, at an unchanged now(). Listeners may
  // spawn recovery processes. Returns an id for remove_crash_listener.
  using CrashListener = std::function<void(int node, bool alive)>;

  int add_crash_listener(CrashListener fn) {
    const int id = next_listener_id_++;
    crash_listeners_.emplace_back(id, std::move(fn));
    return id;
  }

  void remove_crash_listener(int id) {
    for (auto it = crash_listeners_.begin(); it != crash_listeners_.end();
         ++it) {
      if (it->first == id) {
        crash_listeners_.erase(it);
        return;
      }
    }
  }

  // Schedules `node` to crash `delay_s` simulated seconds from now, and —
  // when `restart_delay_s >= 0` (measured from now, must exceed `delay_s`)
  // — to restart empty at that later instant.
  void schedule_node_crash(int node, double delay_s,
                           double restart_delay_s = -1.0) {
    GW_CHECK(node >= 0);
    GW_CHECK_MSG(delay_s >= 0, "crash scheduled in the past");
    GW_CHECK_MSG(restart_delay_s < 0 || restart_delay_s > delay_s,
                 "restart must follow the crash");
    spawn(crash_process(node, delay_s, restart_delay_s));
  }

  // Flips liveness immediately and fires listeners. Exposed for tests; the
  // scheduled path above goes through here too.
  void set_node_alive(int node, bool alive) {
    GW_CHECK(node >= 0);
    if (static_cast<int>(alive_.size()) <= node) {
      alive_.resize(static_cast<std::size_t>(node) + 1, 1);
    }
    if ((alive_[static_cast<std::size_t>(node)] != 0) == alive) return;
    alive_[static_cast<std::size_t>(node)] = alive ? 1 : 0;
    // Iterate over a copy: listeners may register/unregister more listeners.
    const auto listeners = crash_listeners_;
    for (const auto& [id, fn] : listeners) fn(node, alive);
  }

  // Simulated-timeline tracer. Recording is a pure observer of the event
  // loop; callers stamp events with now(). Sim thread only.
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }

  // Offload observability (wall-clock; never affects simulated time).
  std::uint64_t offload_joins() const { return offload_joins_; }
  double offload_join_block_seconds() const {
    return static_cast<double>(join_block_nanos_) * 1e-9;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  // A coroutine suspended on a host-job join: resumed (after blocking on the
  // job if needed) before the loop dispatches any further event, at an
  // unchanged now(). FIFO order = suspension order, which a serial execution
  // would also follow.
  struct PendingJoin {
    template <typename T>
    PendingJoin(const util::Future<T>& f, std::coroutine_handle<> h)
        : wait([f] { f.wait(); }), handle(h) {}
    std::function<void()> wait;
    std::coroutine_handle<> handle;
  };

  Task<> crash_process(int node, double delay_s, double restart_delay_s) {
    co_await delay(delay_s);
    set_node_alive(node, false);
    if (restart_delay_s >= 0) {
      co_await delay(restart_delay_s - delay_s);
      set_node_alive(node, true);
    }
  }

  void step() {
    Entry e = queue_.top();
    queue_.pop();
    GW_CHECK(e.time >= now_);
    now_ = e.time;
    ++events_processed_;
    e.handle.resume();
  }

  void drain_pending_joins() {
    while (!pending_joins_.empty()) {
      PendingJoin p = std::move(pending_joins_.front());
      pending_joins_.pop_front();
      const auto start = std::chrono::steady_clock::now();
      p.wait();
      join_block_nanos_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      ++offload_joins_;
      p.handle.resume();  // may enqueue further events and pending joins
    }
  }

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t offload_joins_ = 0;
  std::uint64_t join_block_nanos_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::deque<PendingJoin> pending_joins_;
  std::vector<char> alive_;  // lazily sized; absent == alive
  std::vector<std::pair<int, CrashListener>> crash_listeners_;
  int next_listener_id_ = 0;
  trace::Tracer tracer_;
};

// One-shot event: processes wait until another sets it.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev->waiters_.push_back(h);
      }
      void await_resume() {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counted resource with FIFO admission. Models disks, NICs, PCIe links,
// host-core pools and the pipeline's data-buffer pools.
class Resource {
 public:
  Resource(Simulation& sim, std::int64_t capacity)
      : sim_(&sim), capacity_(capacity) {
    GW_CHECK(capacity > 0);
  }

  std::int64_t capacity() const { return capacity_; }
  std::int64_t in_use() const { return in_use_; }
  std::int64_t available() const { return capacity_ - in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

  // Move-only RAII hold; releases on destruction.
  class Hold {
   public:
    Hold() = default;
    Hold(Resource* r, std::int64_t n) : res_(r), n_(n) {}
    Hold(Hold&& o) noexcept
        : res_(std::exchange(o.res_, nullptr)), n_(std::exchange(o.n_, 0)) {}
    Hold& operator=(Hold&& o) noexcept {
      if (this != &o) {
        release();
        res_ = std::exchange(o.res_, nullptr);
        n_ = std::exchange(o.n_, 0);
      }
      return *this;
    }
    ~Hold() { release(); }

    void release() {
      if (res_) {
        res_->release(n_);
        res_ = nullptr;
        n_ = 0;
      }
    }
    // Disarms the hold WITHOUT releasing: the held units stay acquired and
    // must be returned later via Resource::release(n) by another party.
    // Used for ownership handoff across coroutine frames (e.g. transport
    // credit windows, where the receiver releases what the sender acquired).
    void forget() {
      res_ = nullptr;
      n_ = 0;
    }
    bool held() const { return res_ != nullptr; }

   private:
    Resource* res_ = nullptr;
    std::int64_t n_ = 0;
  };

  // co_await res.acquire(n) -> Hold
  auto acquire(std::int64_t n = 1) {
    GW_CHECK(n > 0 && n <= capacity_);
    struct Awaiter {
      Resource* res;
      std::int64_t n;
      bool await_ready() {
        // FIFO: even if capacity is free, queued waiters go first.
        if (res->waiters_.empty() && res->available() >= n) {
          res->in_use_ += n;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->waiters_.push_back(Waiter{n, h});
      }
      Hold await_resume() { return Hold(res, n); }
    };
    return Awaiter{this, n};
  }

  void release(std::int64_t n) {
    GW_CHECK(n > 0 && in_use_ >= n);
    in_use_ -= n;
    wake_waiters();
  }

  // Elastic resizing. Growing admits queued waiters immediately; shrinking
  // only lowers the admission threshold — outstanding holds are never
  // revoked, so `in_use_` may exceed the new capacity until holders release
  // (preemption of individual units happens at natural release boundaries).
  void set_capacity(std::int64_t capacity) {
    GW_CHECK(capacity > 0);
    const bool grew = capacity > capacity_;
    capacity_ = capacity;
    if (grew) wake_waiters();
  }

 private:
  struct Waiter {
    std::int64_t n;
    std::coroutine_handle<> handle;
  };

  void wake_waiters() {
    while (!waiters_.empty() && available() >= waiters_.front().n) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      in_use_ += w.n;  // reserve before the handle actually runs
      sim_->schedule_now(w.handle);
    }
  }

  Simulation* sim_;
  std::int64_t capacity_;
  std::int64_t in_use_ = 0;
  std::deque<Waiter> waiters_;
};

// Bounded MPMC channel connecting pipeline stages. recv() returns nullopt
// after close() once drained.
//
// Implementation note: send/recv are coroutines, so the value in flight
// lives in the send/recv coroutine frame and the blocked-waiter records hold
// only pointers into those frames. Carrying the payload inside a by-value
// awaiter object trips a GCC 12 coroutine bug (the materialized awaiter
// temporary is destroyed twice when the payload's move constructor is
// implicitly defined), which double-releases RAII members; pointer-only
// awaiters sidestep it.
//
// PAYLOAD RULE (GCC 12 workaround): types sent through a Channel, or
// constructed as temporaries inside a co_await full-expression, must have a
// user-declared constructor (i.e. must NOT be aggregates). GCC 12
// double-destroys aggregate-initialized temporaries that are materialized
// into a coroutine frame across a suspension point, which double-runs RAII
// members' destructors. A user-declared constructor suppresses the broken
// code path. All payload structs in this codebase follow the rule.
template <typename T>
class Channel {
 public:
  Channel(Simulation& sim, std::size_t capacity)
      : sim_(&sim), capacity_(capacity) {
    GW_CHECK(capacity > 0);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  std::size_t size() const { return items_.size(); }
  bool closed() const { return closed_; }

  // Blocks (in simulated time) while the channel is full.
  [[nodiscard]] Task<> send(T value) {
    struct Awaiter {
      Channel* ch;
      T* value;
      bool await_ready() {
        GW_CHECK_MSG(!ch->closed_, "send on closed channel");
        if (ch->senders_.empty() && ch->items_.size() < ch->capacity_) {
          ch->push(std::move(*value));
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->senders_.push_back(SenderWaiter{value, h});
      }
      void await_resume() {}
    };
    co_await Awaiter{this, &value};
  }

  // Returns the next item, or nullopt once closed and drained.
  [[nodiscard]] Task<std::optional<T>> recv() {
    std::optional<T> slot;
    struct Awaiter {
      Channel* ch;
      std::optional<T>* slot;
      bool await_ready() {
        if (!ch->items_.empty()) {
          *slot = std::move(ch->items_.front());
          ch->items_.pop_front();
          ch->admit_sender();
          return true;
        }
        return ch->closed_;  // drained + closed -> leave slot empty
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->receivers_.push_back(ReceiverWaiter{slot, h});
      }
      void await_resume() {}
    };
    co_await Awaiter{this, &slot};
    co_return std::move(slot);
  }

  void close() {
    if (closed_) return;
    closed_ = true;
    GW_CHECK_MSG(senders_.empty(), "close with blocked senders");
    // Wake all blocked receivers; they observe closed+empty -> nullopt.
    for (auto& r : receivers_) sim_->schedule_now(r.handle);
    receivers_.clear();
  }

 private:
  struct SenderWaiter {
    T* value;
    std::coroutine_handle<> handle;
  };
  struct ReceiverWaiter {
    std::optional<T>* slot;
    std::coroutine_handle<> handle;
  };

  void push(T value) {
    // Deliver directly to a blocked receiver if any, else enqueue.
    if (!receivers_.empty()) {
      ReceiverWaiter r = receivers_.front();
      receivers_.pop_front();
      *r.slot = std::move(value);
      sim_->schedule_now(r.handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  void admit_sender() {
    if (!senders_.empty() && items_.size() < capacity_) {
      SenderWaiter s = senders_.front();
      senders_.pop_front();
      push(std::move(*s.value));
      sim_->schedule_now(s.handle);
    }
  }

  Simulation* sim_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<SenderWaiter> senders_;
  std::deque<ReceiverWaiter> receivers_;
};

// Fork/join helper: spawn child processes, then await completion of all.
// The group may drain to zero and receive further spawns repeatedly (e.g. a
// stream of shuffle sends); wait() resolves only once the count is zero AT
// THE TIME IT CHECKS and no further children were added meanwhile. All
// children must be spawned before wait() is CALLED. The first child
// exception is rethrown from wait(). Single wait() per group.
class TaskGroup {
 public:
  explicit TaskGroup(Simulation& sim) : sim_(&sim) {}

  void spawn(Task<> task) {
    GW_CHECK_MSG(!waited_, "TaskGroup reused after wait()");
    ++pending_;
    sim_->spawn(wrap(std::move(task)));
  }

  Task<> wait() {
    waited_ = true;
    // Loop: the completion event is re-armed each round, so intermediate
    // drains (count hitting zero before later children were spawned) cannot
    // release the join early.
    while (pending_ > 0) {
      wakeup_ = std::make_unique<Event>(*sim_);
      co_await wakeup_->wait();
      wakeup_.reset();
    }
    if (first_exception_) std::rethrow_exception(first_exception_);
  }

  std::size_t pending() const { return pending_; }

 private:
  Task<> wrap(Task<> task) {
    try {
      co_await std::move(task);
    } catch (...) {
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    if (--pending_ == 0 && wakeup_ != nullptr) wakeup_->set();
  }

  Simulation* sim_;
  std::unique_ptr<Event> wakeup_;
  std::size_t pending_ = 0;
  bool waited_ = false;
  std::exception_ptr first_exception_;
};

}  // namespace gw::sim
