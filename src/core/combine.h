// Hierarchical combining: node-level combiner and rack-level aggregation.
//
// Beyond the per-chunk combiner (which runs inside the hash-table collector
// over one map chunk), two optional tiers consolidate duplicate keys before
// intermediate data pays for the expensive links:
//
//   * Node tier (CombineMode::kNode): a per-node NodeCombiner intercepts
//     every remote-destined partition run the map pipeline produces, across
//     ALL map tasks of the node, merge-combines duplicate keys with the
//     app's combine function under a budgeted staging buffer, and pushes
//     one consolidated run per (flush, partition) instead of one per
//     (chunk, partition).
//
//   * Rack tier (CombineMode::kRack): additionally, each rack designates
//     its lowest-numbered node as aggregator. Members send their
//     extra-rack shuffle streams to the aggregator on a dedicated traffic
//     class (intra-rack wires, never the core switch); the aggregator
//     re-combines per partition and forwards a single deduplicated stream
//     across the core switch, so only post-aggregation bytes pay the
//     bisection-oversubscription toll.
//
// Correctness contract: the app declares AppKernels::combine_associative,
// promising that reducing combined partials is byte-identical to reducing
// the raw values under any grouping. Combined runs carry the union of their
// constituents' dedup tags, so crash recovery's replay of pre-combine
// provenance (ledger re-feeds, split re-execution) deduplicates exactly
// against what already arrived combined.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/api.h"
#include "core/kv.h"
#include "core/pipeline.h"
#include "simnet/transport.h"

namespace gw::core {

// Merges key-sorted runs into one key-sorted run whose equal-key groups
// have been folded through the app combine function (which must emit the
// group's key, keeping the output sorted). Runs entirely on the calling
// (host) thread; simulated cost is charged by the caller.
Run combine_runs(const std::vector<const Run*>& inputs,
                 const CombineFn& combine, bool compress);

// Rack topology derived from NetworkProfile::rack_size: rack r is the node
// range [r*rack_size, (r+1)*rack_size) clipped to the cluster, and its
// aggregator is its lowest-numbered node.
struct RackTopology {
  int rack_size = 0;  // 0 = flat (no racks)
  int num_nodes = 1;

  int rack_of(int n) const { return n / rack_size; }
  int num_racks() const { return (num_nodes + rack_size - 1) / rack_size; }
  int aggregator_of(int rack) const { return rack * rack_size; }
  bool is_aggregator(int n) const {
    return n == aggregator_of(rack_of(n));
  }
  bool same_rack(int a, int b) const { return rack_of(a) == rack_of(b); }
  int members_of(int rack) const {  // member count, aggregator included
    const int lo = rack * rack_size;
    const int hi = std::min(num_nodes, lo + rack_size);
    return hi - lo;
  }
};

struct CombineMetrics {
  std::uint64_t in_bytes = 0;      // stored bytes entering combine passes
  std::uint64_t out_bytes = 0;     // stored bytes leaving combine passes
  std::uint64_t flushes = 0;       // combine passes executed
  std::uint64_t passthrough = 0;   // runs forwarded uncombined (over budget)
  std::uint64_t wire_bytes = 0;    // framed bytes handed to the transport
};

// One combining stage: buffers runs per global partition, merge-combines
// them on flush, and routes the combined output. Used in two places — the
// map tier (fed by the partition workers) and the rack aggregator (fed by
// the kPortRackAgg receiver).
class NodeCombiner {
 public:
  enum class Tier {
    kMap,      // routes extra-rack output via the rack aggregator (kRack)
    kRackAgg,  // routes straight to the partition owner
  };

  // `topo.rack_size == 0` (node mode) routes everything straight to the
  // owner. Governed (`ctx.mem` non-null) staging draws from the governor's
  // combine pool; ungoverned staging flushes past
  // JobConfig::combine_buffer_bytes.
  NodeCombiner(NodeContext ctx, Tier tier, RackTopology topo);

  // Buffers one run for global partition g, tagged with the union of its
  // constituents' dedup tags (a single split tag at the map tier). Flushes
  // when the staging budget is exhausted; a run that cannot be admitted
  // even after flushing passes through uncombined (never blocks against
  // another combiner sharing the pool).
  sim::Task<> add(int g, std::vector<std::uint64_t> tags, Run run);

  // Combines and routes everything still buffered (end of the map phase /
  // all rack EOS received), then waits for the spawned sends to be handed
  // to the network.
  sim::Task<> drain();

  // Drops all staged runs without combining or sending (releases their
  // memory holds). Used when the owning node died mid-stream: its staged
  // data died with it, recovery re-feeds the pre-combine provenance.
  void discard();

  const CombineMetrics& metrics() const { return metrics_; }

 private:
  struct Bucket {
    std::vector<std::uint64_t> tags;
    std::vector<Run> runs;
    std::vector<sim::Resource::Hold> holds;  // governed staging bytes
    std::uint64_t bytes = 0;
  };

  sim::Task<> flush(int g);
  sim::Task<> flush_all();
  // Serializes the combined frame and spawns the (crash-tolerant) send.
  void route(int g, std::vector<std::uint64_t> tags, Run run);

  NodeContext ctx_;
  Tier tier_;
  RackTopology topo_;
  const CombineFn* combine_;
  std::map<int, Bucket> buckets_;  // ordered: deterministic flush order
  std::uint64_t buffered_ = 0;
  sim::TaskGroup sends_;
  trace::TrackRef track_;
  std::int32_t combine_name_ = -1;
  CombineMetrics metrics_;
};

// Combined-run wire framing on kPortShuffle / kPortRackAgg when a combine
// mode is active: u32 g | u32 ntags | ntags x u64 tags | serialized run.
// (Recovery ports keep the legacy u32 g | run framing.)
util::Bytes encode_combined_frame(int g,
                                  const std::vector<std::uint64_t>& tags,
                                  const Run& run);

// Spawnable combined-frame send mirroring send_run_dropping: a crash racing
// the transfer is swallowed, recovery replays the provenance.
sim::Task<> send_combined_dropping(NodeContext ctx, int dst, int port,
                                   net::TrafficClass tc, util::Bytes wire);

}  // namespace gw::core
