#include "core/kv.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/error.h"

namespace gw::core {

namespace {

// --- raw-pointer varint helpers for the hot paths. Pair framing is
// produced in-process by RunBuilder/PairList, so decoding trusts it; the
// bounds-checked ByteReader stays on the wire-facing paths. ---

inline std::size_t encode_varint(std::uint8_t* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

inline const std::uint8_t* decode_varint(const std::uint8_t* p,
                                         std::uint64_t& v) {
  std::uint64_t b = *p++;
  if ((b & 0x80) == 0) {
    v = b;
    return p;
  }
  v = b & 0x7f;
  int shift = 7;
  do {
    b = *p++;
    v |= (b & 0x7f) << shift;
    shift += 7;
  } while (b & 0x80);
  return p;
}

// Geometric growth so per-pair appends stay amortized O(1) (an exact
// reserve per add would degrade to quadratic copying).
inline void grow_for(util::Bytes& buf, std::size_t extra) {
  const std::size_t need = buf.size() + extra;
  if (need > buf.capacity()) buf.reserve(std::max(need, buf.capacity() * 2));
}

// Pair framing: varint klen, varint vlen, key bytes, value bytes.
void write_pair(util::Bytes& buf, std::string_view key,
                std::string_view value) {
  std::uint8_t hdr[20];
  std::size_t h = encode_varint(hdr, key.size());
  h += encode_varint(hdr + h, value.size());
  grow_for(buf, h + key.size() + value.size());
  const std::size_t old = buf.size();
  buf.resize(old + h + key.size() + value.size());
  std::uint8_t* p = buf.data() + old;
  std::memcpy(p, hdr, h);
  if (!key.empty()) std::memcpy(p + h, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(p + h + key.size(), value.data(), value.size());
  }
}

// Big-endian load of the first min(8, len) key bytes, zero-padded. Where
// two prefixes differ, their unsigned comparison equals the lexicographic
// byte comparison of the keys; equal prefixes fall back to a byte compare.
inline std::uint64_t key_prefix(const std::uint8_t* p, std::size_t len) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, len < 8 ? len : 8);
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
}

// --- pooled scratch buffers for run decompression. Runs are decompressed
// whole before reading; recycling the buffers avoids an allocate/free per
// run in the continuous-merge loops. Thread-local: merges run on sim
// coroutines, readers also appear on kernel threads. ---

thread_local std::vector<util::Bytes> t_scratch_pool;

util::Bytes acquire_scratch() {
  if (!t_scratch_pool.empty()) {
    util::Bytes b = std::move(t_scratch_pool.back());
    t_scratch_pool.pop_back();
    b.clear();
    return b;
  }
  return {};
}

void release_scratch(util::Bytes&& b) {
  if (b.capacity() > 0 && t_scratch_pool.size() < 16) {
    t_scratch_pool.push_back(std::move(b));
  }
}

}  // namespace

void PairList::add(std::string_view key, std::string_view value) {
  offsets_.push_back(blob_.size());
  write_pair(blob_, key, value);
  payload_bytes_ += key.size() + value.size();
}

KV PairList::get(std::size_t i) const {
  const std::uint8_t* p = blob_.data() + offsets_[i];
  std::uint64_t klen, vlen;
  p = decode_varint(p, klen);
  p = decode_varint(p, vlen);
  const char* base = reinterpret_cast<const char*>(p);
  return KV{std::string_view(base, klen), std::string_view(base + klen, vlen)};
}

PairList::PairView PairList::pair_view(std::size_t i) const {
  const std::uint8_t* start = blob_.data() + offsets_[i];
  const std::uint8_t* p = start;
  std::uint64_t klen, vlen;
  p = decode_varint(p, klen);
  p = decode_varint(p, vlen);
  const char* base = reinterpret_cast<const char*>(p);
  PairView out;
  out.kv = KV{std::string_view(base, klen), std::string_view(base + klen, vlen)};
  out.encoded = std::string_view(
      reinterpret_cast<const char*>(start),
      static_cast<std::size_t>(p - start) + klen + vlen);
  return out;
}

void PairList::add_encoded(const PairView& p) {
  offsets_.push_back(blob_.size());
  grow_for(blob_, p.encoded.size());
  blob_.insert(blob_.end(), p.encoded.begin(), p.encoded.end());
  payload_bytes_ += p.kv.key.size() + p.kv.value.size();
}

void PairList::sort_by_key() {
  const std::size_t n = offsets_.size();
  if (n < 2) return;

  // One-shot sidecar: cached key prefix + key location per pair, built with
  // a single sequential decode pass. The comparator then never touches the
  // varint framing.
  struct SortEntry {
    std::uint64_t prefix;   // big-endian first 8 key bytes, zero-padded
    std::uint64_t key_off;  // absolute offset of the key bytes in blob_
    std::uint32_t key_len;
    std::uint32_t index;    // original position: stability tie-break
  };
  std::vector<SortEntry> entries(n);
  const std::uint8_t* blob = blob_.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* p = blob + offsets_[i];
    std::uint64_t klen, vlen;
    p = decode_varint(p, klen);
    p = decode_varint(p, vlen);
    entries[i].prefix = key_prefix(p, klen);
    entries[i].key_off = static_cast<std::uint64_t>(p - blob);
    entries[i].key_len = static_cast<std::uint32_t>(klen);
    entries[i].index = static_cast<std::uint32_t>(i);
  }
  // std::sort with the index tie-break reproduces stable_sort-by-key order.
  std::sort(entries.begin(), entries.end(),
            [blob](const SortEntry& a, const SortEntry& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              const std::uint32_t common = std::min(a.key_len, b.key_len);
              if (common > 8) {
                const int c = std::memcmp(blob + a.key_off + 8,
                                          blob + b.key_off + 8, common - 8);
                if (c != 0) return c < 0;
              }
              if (a.key_len != b.key_len) return a.key_len < b.key_len;
              return a.index < b.index;
            });
  std::vector<std::uint64_t> sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = offsets_[entries[i].index];
  offsets_ = std::move(sorted);
}

void PairList::append(const PairList& other) {
  const std::uint64_t base = blob_.size();
  grow_for(blob_, other.blob_.size());
  blob_.insert(blob_.end(), other.blob_.begin(), other.blob_.end());
  offsets_.reserve(offsets_.size() + other.offsets_.size());
  for (std::uint64_t off : other.offsets_) offsets_.push_back(base + off);
  payload_bytes_ += other.payload_bytes_;
}

void PairList::clear() {
  blob_.clear();
  offsets_.clear();
  payload_bytes_ = 0;
}

void Run::serialize(util::ByteWriter& w) const {
  w.put_u8(compressed ? 1 : 0);
  w.put_varint(raw_bytes);
  w.put_varint(pairs);
  w.put_str(std::string_view(reinterpret_cast<const char*>(data.data()),
                             data.size()));
}

Run Run::deserialize(util::ByteReader& r) {
  Run run;
  run.compressed = r.get_u8() != 0;
  run.raw_bytes = r.get_varint();
  run.pairs = r.get_varint();
  // Single copy from the wire buffer straight into the run's byte vector.
  const std::string_view payload = r.get_str();
  run.data.resize(payload.size());
  if (!payload.empty()) {
    std::memcpy(run.data.data(), payload.data(), payload.size());
  }
  return run;
}

void RunBuilder::add(std::string_view key, std::string_view value) {
  write_pair(writer_.buffer(), key, value);
  ++pairs_;
}

void RunBuilder::add_encoded(std::string_view framed,
                             std::uint64_t pair_count) {
  writer_.put_bytes(framed.data(), framed.size());
  pairs_ += pair_count;
}

Run RunBuilder::finish(bool compress) {
  util::Bytes raw = writer_.take();
  const std::uint64_t raw_size = raw.size();
  if (compress) {
    util::Bytes packed = util::lz_compress(raw);
    return Run(std::move(packed), true, raw_size, pairs_);
  }
  return Run(std::move(raw), false, raw_size, pairs_);
}

RunReader::RunReader(const Run& run) : remaining_(run.pairs) {
  if (run.compressed) {
    storage_ = acquire_scratch();
    util::lz_decompress_into(run.data.data(), run.data.size(), storage_);
  } else {
    external_ = &run.data;
  }
}

RunReader::~RunReader() {
  if (storage_.capacity() > 0) release_scratch(std::move(storage_));
}

RunReader::RunReader(RunReader&& other) noexcept
    : storage_(std::move(other.storage_)),
      external_(other.external_),
      pos_(other.pos_),
      remaining_(other.remaining_) {
  other.external_ = nullptr;
  other.pos_ = 0;
  other.remaining_ = 0;
}

RunReader& RunReader::operator=(RunReader&& other) noexcept {
  if (this != &other) {
    if (storage_.capacity() > 0) release_scratch(std::move(storage_));
    storage_ = std::move(other.storage_);
    external_ = other.external_;
    pos_ = other.pos_;
    remaining_ = other.remaining_;
    other.external_ = nullptr;
    other.pos_ = 0;
    other.remaining_ = 0;
  }
  return *this;
}

bool RunReader::next(KV* kv) {
  if (remaining_ == 0) return false;
  const util::Bytes& buf = payload();
  const std::uint8_t* p = buf.data() + pos_;
  std::uint64_t klen, vlen;
  p = decode_varint(p, klen);
  p = decode_varint(p, vlen);
  const char* base = reinterpret_cast<const char*>(p);
  kv->key = std::string_view(base, klen);
  kv->value = std::string_view(base + klen, vlen);
  pos_ = static_cast<std::size_t>(p - buf.data()) + klen + vlen;
  --remaining_;
  return true;
}

namespace {

// Streaming cursor over one input run's framed payload: parses only the
// varint lengths of the current pair, caches an 8-byte key prefix for the
// comparator, and exposes the framed span for verbatim copying.
struct MergeCursor {
  const std::uint8_t* base = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;  // start of the next unparsed pair
  std::uint64_t remaining = 0;

  // Current pair.
  std::uint64_t prefix = 0;
  const std::uint8_t* key = nullptr;
  std::uint32_t key_len = 0;
  std::size_t pair_begin = 0;
  std::size_t pair_end = 0;

  std::uint32_t index = 0;  // input run index: duplicate-key tie-break
  util::Bytes scratch;      // pooled storage for decompressed payload

  bool advance() {
    if (remaining == 0) return false;
    --remaining;
    pair_begin = pos;
    const std::uint8_t* p = base + pos;
    std::uint64_t klen, vlen;
    p = decode_varint(p, klen);
    p = decode_varint(p, vlen);
    key = p;
    key_len = static_cast<std::uint32_t>(klen);
    prefix = key_prefix(p, klen);
    pair_end = static_cast<std::size_t>(p - base) + klen + vlen;
    pos = pair_end;
    return true;
  }
};

inline std::string_view cursor_pair(const MergeCursor& c) {
  return std::string_view(reinterpret_cast<const char*>(c.base) + c.pair_begin,
                          c.pair_end - c.pair_begin);
}

// All remaining framed bytes of the cursor, current pair included.
inline std::string_view cursor_rest(const MergeCursor& c) {
  return std::string_view(reinterpret_cast<const char*>(c.base) + c.pair_begin,
                          c.size - c.pair_begin);
}

// Orders by (key, input index): prefix compare, memcmp past the prefix only
// when needed, stable across equal keys (earlier runs first).
inline bool cursor_less(const MergeCursor& a, const MergeCursor& b) {
  if (a.prefix != b.prefix) return a.prefix < b.prefix;
  const std::uint32_t common = a.key_len < b.key_len ? a.key_len : b.key_len;
  if (common > 8) {
    const int c = std::memcmp(a.key + 8, b.key + 8, common - 8);
    if (c != 0) return c < 0;
  }
  if (a.key_len != b.key_len) return a.key_len < b.key_len;
  return a.index < b.index;
}

void init_cursor(MergeCursor& c, const Run& run, std::uint32_t index) {
  c.index = index;
  c.remaining = run.pairs;
  if (run.compressed) {
    c.scratch = acquire_scratch();
    util::lz_decompress_into(run.data.data(), run.data.size(), c.scratch);
    c.base = c.scratch.data();
    c.size = c.scratch.size();
  } else {
    c.base = run.data.data();
    c.size = run.data.size();
  }
  c.advance();
}

}  // namespace

Run merge_runs(const std::vector<const Run*>& inputs, bool compress) {
  RunBuilder builder;

  // 1-way fast path: the output payload IS the (decompressed) input
  // payload; bulk-copy it without touching per-pair framing.
  if (inputs.size() == 1) {
    const Run& only = *inputs[0];
    if (only.compressed) {
      util::Bytes scratch = acquire_scratch();
      util::lz_decompress_into(only.data.data(), only.data.size(), scratch);
      builder.add_encoded(
          std::string_view(reinterpret_cast<const char*>(scratch.data()),
                           scratch.size()),
          only.pairs);
      release_scratch(std::move(scratch));
    } else {
      builder.add_encoded(
          std::string_view(reinterpret_cast<const char*>(only.data.data()),
                           only.data.size()),
          only.pairs);
    }
    return builder.finish(compress);
  }

  std::vector<MergeCursor> cursors;
  cursors.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i]->pairs == 0) continue;
    cursors.emplace_back();
    init_cursor(cursors.back(), *inputs[i], static_cast<std::uint32_t>(i));
  }

  if (cursors.size() == 1) {
    builder.add_encoded(cursor_rest(cursors[0]), cursors[0].remaining + 1);
  } else if (cursors.size() == 2) {
    // 2-way fast path: plain two-cursor merge, bulk tail copy.
    MergeCursor* a = &cursors[0];
    MergeCursor* b = &cursors[1];
    for (;;) {
      MergeCursor* w = cursor_less(*a, *b) ? a : b;
      builder.add_encoded(cursor_pair(*w));
      if (!w->advance()) {
        MergeCursor* rest = (w == a) ? b : a;
        builder.add_encoded(cursor_rest(*rest), rest->remaining + 1);
        break;
      }
    }
  } else if (!cursors.empty()) {
    // k-way loser tree: tree[0] holds the winner, tree[1..k-1] the loser of
    // each internal match. Popping the winner replays one leaf-to-root
    // path (log k comparisons), all within one contiguous index array.
    const std::uint32_t k = static_cast<std::uint32_t>(cursors.size());
    constexpr std::uint32_t kNone = ~0u;  // exhausted: loses every match
    std::vector<std::uint32_t> tree(k);
    {
      std::vector<std::uint32_t> winner(2 * k);
      for (std::uint32_t i = 0; i < k; ++i) winner[k + i] = i;
      for (std::uint32_t j = k - 1; j >= 1; --j) {
        const std::uint32_t a = winner[2 * j];
        const std::uint32_t b = winner[2 * j + 1];
        if (cursor_less(cursors[a], cursors[b])) {
          winner[j] = a;
          tree[j] = b;
        } else {
          winner[j] = b;
          tree[j] = a;
        }
      }
      tree[0] = winner[1];
    }
    std::uint32_t w = tree[0];
    for (;;) {
      MergeCursor& c = cursors[w];
      builder.add_encoded(cursor_pair(c));
      std::uint32_t cur = c.advance() ? w : kNone;
      for (std::uint32_t j = (k + w) >> 1; j >= 1; j >>= 1) {
        std::uint32_t& s = tree[j];
        if (s != kNone &&
            (cur == kNone || cursor_less(cursors[s], cursors[cur]))) {
          std::swap(s, cur);
        }
      }
      if (cur == kNone) break;  // every input exhausted
      tree[0] = w = cur;
    }
  }

  for (auto& c : cursors) {
    if (c.scratch.capacity() > 0) release_scratch(std::move(c.scratch));
  }
  return builder.finish(compress);
}

Run merge_runs(const std::vector<Run>& inputs, bool compress) {
  std::vector<const Run*> ptrs;
  ptrs.reserve(inputs.size());
  for (const auto& r : inputs) ptrs.push_back(&r);
  return merge_runs(ptrs, compress);
}

}  // namespace gw::core
