# Empty dependencies file for fig5_reduce.
# This may be replaced when dependencies are built.
