// K-Means on a GPU cluster: the paper's flagship vertical-scalability
// scenario (§IV-A2) — the same application runs unchanged on CPU and GPU
// devices; the GPU wins big on this compute-bound kernel.
//
// Build: cmake --build build && ./build/examples/kmeans_gpu_cluster
#include <cstdio>

#include "apps/kmeans.h"
#include "core/job.h"

using namespace gw;

namespace {

double run_on(cl::DeviceSpec device, const util::Bytes& points,
              const apps::AppSpec& app, int nodes) {
  cluster::Platform platform(cluster::ClusterSpec::homogeneous(
      nodes, cluster::NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs(platform, dfs::DfsConfig{});
  platform.sim().spawn([](dfs::Dfs& f, util::Bytes data) -> sim::Task<> {
    co_await f.write_distributed("/in/points", std::move(data));
  }(fs, points));
  platform.sim().run();

  core::JobConfig cfg;
  cfg.input_paths = {"/in/points"};
  cfg.output_path = "/out/centers";
  cfg.split_size = 64 << 10;
  core::GlasswingRuntime rt(platform, fs, std::move(device));
  return rt.run(app.kernels, cfg).elapsed_seconds;
}

}  // namespace

int main() {
  apps::KmeansConfig km{.k = 512, .dims = 4};
  const auto centers = apps::generate_centers(km, 7);
  const util::Bytes points = apps::generate_points(km, 200000, 8);
  const auto app = apps::kmeans(km, centers);
  std::printf("k-means: %d centers, %d dims, 200k points (one iteration)\n\n",
              km.k, km.dims);

  std::printf("%-14s %8s %14s\n", "device", "nodes", "elapsed(s)");
  const double cpu1 = run_on(cl::DeviceSpec::cpu_dual_e5620(), points, app, 1);
  std::printf("%-14s %8d %14.3f\n", "CPU (2xE5620)", 1, cpu1);
  const double gpu1 = run_on(cl::DeviceSpec::gtx480(), points, app, 1);
  std::printf("%-14s %8d %14.3f\n", "GTX480", 1, gpu1);
  for (int nodes : {2, 4, 8}) {
    std::printf("%-14s %8d %14.3f\n", "GTX480", nodes,
                run_on(cl::DeviceSpec::gtx480(), points, app, nodes));
  }
  std::printf("\nGPU acceleration on one node: %.1fx — \"compute-bound "
              "applications benefit from GPU acceleration\" (paper §IV-A2)\n",
              cpu1 / gpu1);
  return 0;
}
