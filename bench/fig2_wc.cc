// Figure 2(b): WordCount — Hadoop vs Glasswing (CPU, HDFS), execution time
// and speedup over 1..64 Type-1 nodes. Paper input: 70 GB enwiki dump;
// scaled here with identical key statistics (Zipf head + sparse tail).
#include "apps/wordcount.h"
#include "baselines/hadoop/hadoop.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = gw::bench::scaled_bytes(24ull << 20);  // paper: 70 GB
constexpr std::uint64_t kSplit = 256 << 10;

double run_hadoop(int nodes, const util::Bytes& input) {
  hadoop::HadoopConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  return bench::run_hadoop(nodes, apps::wordcount().kernels, input, cfg);
}

double run_glasswing(int nodes, const util::Bytes& input) {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  return bench::run_glasswing_cpu(nodes, apps::wordcount().kernels, input, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = gw::apps::generate_wiki_text(kInputBytes, 2014);

  gw::bench::SeriesTable table("nodes");
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    table.add_timed("Hadoop", nodes, [&] { return run_hadoop(nodes, input); });
    table.add_timed("Glasswing", nodes,
                    [&] { return run_glasswing(nodes, input); });
  }
  table.print("Figure 2(b): WC, Hadoop vs Glasswing CPU over HDFS");

  const double f1 = table.at("Hadoop", 1) / table.at("Glasswing", 1);
  const double f64 = table.at("Hadoop", 64) / table.at("Glasswing", 64);
  std::printf("\nShape check (paper: ~1.6x at 1 node growing to ~2.x at 64):\n"
              "  Glasswing/Hadoop factor: %.2fx @1 node, %.2fx @64 nodes\n",
              f1, f64);

  for (int nodes : {1, 4, 16, 64}) {
    const double h = table.at("Hadoop", nodes);
    const double g = table.at("Glasswing", nodes);
    gw::bench::register_point("WC/Hadoop/nodes:" + std::to_string(nodes),
                              [h](benchmark::State&) { return h; });
    gw::bench::register_point("WC/Glasswing/nodes:" + std::to_string(nodes),
                              [g](benchmark::State&) { return g; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
