// OpenCL-shaped compute-device abstraction.
//
// Glasswing executes user map/reduce functions as OpenCL kernels on CPUs,
// GPUs and accelerators (paper §II "OpenCL", §III-A). This environment has
// no OpenCL driver or GPU, so the layer substitutes a measured-cost model:
//
//  * Work-items are REAL C++ functors executed on the host thread pool; they
//    count what they do (simple ops, device-memory bytes touched, atomic
//    operations, hash probes) into KernelStats.
//  * The Device charges simulated time for those measured counters using an
//    analytic device model (compute units x per-lane rate, memory bandwidth,
//    kernel-launch overhead, atomic cost) — so application-dependent effects
//    like hash-table contention (paper Table II) arise from real probe
//    counts, not guesses.
//  * Discrete devices (GPUs, Xeon Phi) have a PCIe staging model and their
//    own execution queue; CPU devices use unified host memory (the paper
//    disables the Stage/Retrieve pipeline stages there) and optionally share
//    the node's host-core resource so kernel threads contend with
//    partitioner/merger threads exactly as §IV-B2 describes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/sim.h"
#include "util/thread_pool.h"

namespace gw::cl {

enum class DeviceType { kCpu, kGpu, kAccelerator };

struct DeviceSpec {
  std::string name;
  DeviceType type = DeviceType::kCpu;
  int compute_units = 1;             // parallel hardware lanes
  double ops_per_lane_per_s = 1e9;   // simple-operation throughput per lane
  double mem_bandwidth_bytes_per_s = 20e9;
  std::uint64_t mem_capacity_bytes = 2ull << 30;
  double pcie_bandwidth_bytes_per_s = 0;  // 0 for host-resident devices
  double kernel_launch_overhead_s = 10e-6;
  double atomic_op_cost_s = 10e-9;   // per atomic, divided across lanes
  bool unified_memory = true;
  // NVidia's OpenCL driver serializes memory transfers with kernel
  // execution to a degree; the paper observes "artificially high times for
  // non-dominant stages" from this coupling (§IV-B2). When set, staging
  // transfers also occupy the kernel queue.
  bool transfer_kernel_coupling = false;

  // Dual Xeon E5620 (Type-1 node): 16 hw threads at 2.4 GHz.
  static DeviceSpec cpu_dual_e5620();
  // Dual Xeon E5-2640 (Type-2 node): 24 hw threads at 2.5 GHz.
  static DeviceSpec cpu_dual_e5_2640();
  // NVidia GTX480 (Fermi): 480 lanes at 1.4 GHz, 177 GB/s, 1.5 GB.
  static DeviceSpec gtx480();
  // NVidia GTX680 (Kepler): 1536 lanes at 1.0 GHz, 192 GB/s, 2 GB.
  static DeviceSpec gtx680();
  // NVidia K20m (Kepler GK110): 2496 lanes at 0.7 GHz, 208 GB/s, 5 GB.
  static DeviceSpec k20m();
  // Intel Xeon Phi 5110P: 60 cores x 4 threads, wide SIMD, 320 GB/s GDDR5;
  // high OpenCL launch overhead.
  static DeviceSpec xeon_phi_5110p();
};

// Counters measured while really executing a kernel's work-items.
struct KernelStats {
  std::uint64_t work_items = 0;
  std::uint64_t ops = 0;           // simple arithmetic/compare operations
  std::uint64_t bytes_read = 0;    // device-memory reads
  std::uint64_t bytes_written = 0; // device-memory writes
  std::uint64_t atomic_ops = 0;    // CAS/fetch-add (collector allocations)
  std::uint64_t hash_probes = 0;   // hash-table probe steps (subset of ops)

  KernelStats& operator+=(const KernelStats& o) {
    work_items += o.work_items;
    ops += o.ops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    atomic_ops += o.atomic_ops;
    hash_probes += o.hash_probes;
    return *this;
  }
};

// Per-work-item counter sink, cheap to update from inner loops. One
// instance per host-pool chunk; reduced into KernelStats afterwards.
class KernelCounters {
 public:
  void charge_ops(std::uint64_t n) { stats_.ops += n; }
  void charge_read(std::uint64_t bytes) { stats_.bytes_read += bytes; }
  void charge_write(std::uint64_t bytes) { stats_.bytes_written += bytes; }
  void charge_atomic(std::uint64_t n = 1) { stats_.atomic_ops += n; }
  void charge_hash_probe(std::uint64_t n = 1) {
    stats_.hash_probes += n;
    stats_.ops += n;
  }
  void charge_item() { stats_.work_items += 1; }

  const KernelStats& stats() const { return stats_; }

 private:
  KernelStats stats_;
};

struct LaunchConfig {
  // Number of OpenCL threads scheduled; the paper calls thread count and
  // work division "often the only parameters necessary to tune" (§I).
  // 0 = one thread per hardware lane.
  int threads = 0;
};

class Device {
 public:
  // `shared_cores` (may be null) is the node's host-core resource; CPU-type
  // devices execute kernels on it so device kernels contend with host
  // threads. Discrete devices ignore it. `trace_node` attributes the
  // device's kernel/PCIe trace tracks to a simulated node.
  Device(sim::Simulation& sim, DeviceSpec spec,
         sim::Resource* shared_cores = nullptr, int trace_node = 0);

  const DeviceSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  bool unified_memory() const { return spec_.unified_memory; }

  using WorkItemFn = std::function<void(std::size_t item, KernelCounters&)>;
  using GroupWorkItemFn =
      std::function<void(std::size_t item, std::size_t group, KernelCounters&)>;

  // Work-items are partitioned into a FIXED number of groups (independent of
  // host parallelism) so that per-group state and counters are byte-for-byte
  // deterministic on any machine; groups are distributed over host threads.
  static constexpr std::size_t kDefaultWorkGroups = 64;

  // Really executes `items` work-items on the host thread pool (collecting
  // counters), then charges the modelled kernel time. Returns the measured
  // stats. Kernels on one device serialize (single command queue).
  // NOTE: functors are taken BY VALUE: these are lazily-started coroutines,
  // so reference parameters to caller temporaries would dangle before the
  // kernel executes.
  sim::Task<KernelStats> run_kernel(std::size_t items, WorkItemFn fn,
                                    LaunchConfig cfg = {});

  // As run_kernel, but work-items know their group index, and per-group
  // counters are reduced in group order. `groups` must be > 0.
  sim::Task<KernelStats> run_kernel_grouped(std::size_t items,
                                            std::size_t groups,
                                            GroupWorkItemFn fn,
                                            LaunchConfig cfg = {});

  // Offload-engine kernel primitive: `job` is a pure function doing the
  // kernel's real host work and returning its measured counters. It is
  // submitted to the host pool at the simulated launch instant; the
  // coroutine then acquires the command queue and joins the job only where
  // the stats-derived charge is consumed, so other nodes' events keep
  // dispatching while the job runs.
  using KernelJobFn = std::function<KernelStats()>;
  sim::Task<KernelStats> run_kernel_job(KernelJobFn job, LaunchConfig cfg = {});

  // The real-execution body of run_kernel_grouped: runs `items` work-items
  // in `groups` fixed groups (fanned out over the pool) and reduces the
  // per-group counters in group order. Usable inside a caller-composed
  // run_kernel_job closure to fold extra host work into the same kernel job.
  static KernelStats execute_grouped(std::size_t items, std::size_t groups,
                                     const GroupWorkItemFn& fn);

  // Charges time for a kernel whose counters were measured elsewhere.
  sim::Task<> charge_kernel(const KernelStats& stats, LaunchConfig cfg = {});

  // Host->device / device->host transfer of `bytes` (pipeline Stage and
  // Retrieve stages). Zero-cost no-ops for unified-memory devices.
  sim::Task<> stage_in(std::uint64_t bytes);
  sim::Task<> stage_out(std::uint64_t bytes);

  // Pure model evaluation (no resources, no clock): the time the given
  // counters would take at the given launch width. Exposed for tests.
  double model_kernel_seconds(const KernelStats& stats,
                              LaunchConfig cfg = {}) const;

  std::uint64_t kernels_launched() const { return kernels_launched_; }
  double total_kernel_seconds() const { return total_kernel_seconds_; }
  double total_transfer_seconds() const { return total_transfer_seconds_; }

 private:
  sim::Task<> transfer(std::uint64_t bytes);
  sim::Task<> lane_work(double seconds);
  sim::Task<> charge_locked(double seconds, LaunchConfig cfg);
  int effective_lanes(LaunchConfig cfg) const;

  sim::Simulation& sim_;
  DeviceSpec spec_;
  sim::Resource* shared_cores_;
  trace::TrackRef kernel_track_;
  trace::TrackRef pcie_track_;
  std::int32_t kernel_name_ = -1;
  std::int32_t transfer_name_ = -1;
  std::unique_ptr<sim::Resource> queue_;  // kernel execution, capacity 1
  std::unique_ptr<sim::Resource> pcie_;   // staging transfers, capacity 1
  std::uint64_t kernels_launched_ = 0;
  double total_kernel_seconds_ = 0;
  double total_transfer_seconds_ = 0;
};

}  // namespace gw::cl
