// Multi-tenant scheduler sweep: job latency quantiles vs offered load.
//
// A shared 8-node cluster takes a seeded open-loop stream of mixed jobs
// (wordcount / pageview-count / terasort; tenant 0 submits large inputs,
// tenant 1 small ones) at three Poisson arrival rates, under FIFO and
// fair-share admission. Reported per (load, policy) point: throughput and
// the p50/p99/p999 job sojourn time, plus the small-job p99 — the number
// fair-share queueing exists to protect. Shape checks (exit code):
//   * p999 latency is monotone non-decreasing in offered load per policy
//     (more load never shortens the tail);
//   * at the highest load, fair-share beats FIFO on small-job p99 (small
//     jobs no longer queue behind the heavy tenant's backlog);
//   * the preempting fair series (checkpoint preemption + elastic slots)
//     actually revokes residency at the highest load (preempts > 0) and
//     still finishes every job.
// Emits BENCH_multitenant.json for PR-over-PR tracking (plain binary,
// simulated time).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/workload.h"
#include "bench/common.h"
#include "core/sched.h"

namespace {

using namespace gw;

constexpr int kNodes = 8;
constexpr int kMaxResident = 2;

struct Series {
  const char* name;
  core::SchedPolicy policy;
  bool preempt;  // checkpoint preemption + elastic slot shares
};

constexpr Series kSeries[] = {
    {"fifo", core::SchedPolicy::kFifo, false},
    {"fair", core::SchedPolicy::kFair, false},
    {"fair+preempt", core::SchedPolicy::kFair, true},
};

struct Point {
  double load = 0;  // offered jobs/s
  const Series* series = nullptr;
  int jobs = 0;
  double makespan_s = 0;
  double throughput = 0;  // finished jobs/s
  double p50 = 0, p99 = 0, p999 = 0;
  double small_p99 = 0;
  double small_mean_wait = 0;
  int resident_peak = 0;
  int preempts = 0;
  int resumes = 0;
};

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

Point run_point(double load, const Series& series, int jobs) {
  cluster::Platform p = bench::make_platform(kNodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});

  apps::WorkloadConfig wl;
  wl.jobs = jobs;
  wl.tenants = 2;
  wl.arrival_rate_jobs_per_s = load;
  wl.seed = 17;
  wl.small_bytes = 1ull << 20;
  wl.large_bytes = 8ull << 20;
  wl.small_split_bytes = 128ull << 10;
  wl.large_split_bytes = 512ull << 10;
  auto requests = apps::make_mixed_workload(p, fs, wl);

  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  core::SchedulerConfig sc;
  sc.policy = series.policy;
  sc.max_resident_jobs = kMaxResident;
  sc.preemption = series.preempt;
  sc.elastic_slots = series.preempt;
  core::Scheduler sched(rt, p, fs, sc);
  for (auto& req : requests) sched.submit(std::move(req));
  const double t0 = p.sim().now();
  sched.run_all();

  Point out;
  out.load = load;
  out.series = &series;
  out.jobs = jobs;
  out.makespan_s = p.sim().now() - t0;
  out.resident_peak = sched.resident_peak();
  out.preempts = sched.jobs_preempted();
  out.resumes = sched.jobs_resumed();
  std::vector<double> lat, small_lat;
  double small_wait = 0;
  int small_n = 0;
  for (const auto& j : sched.results()) {
    if (j.rejected || j.failed) continue;
    lat.push_back(j.latency_s);
    if (j.name.size() >= 6 &&
        j.name.compare(j.name.size() - 6, 6, "-small") == 0) {
      small_lat.push_back(j.latency_s);
      small_wait += j.queue_wait_s;
      ++small_n;
    }
  }
  out.throughput =
      out.makespan_s > 0 ? static_cast<double>(lat.size()) / out.makespan_s : 0;
  out.p50 = quantile(lat, 0.50);
  out.p99 = quantile(lat, 0.99);
  out.p999 = quantile(lat, 0.999);
  out.small_p99 = quantile(small_lat, 0.99);
  out.small_mean_wait = small_n > 0 ? small_wait / small_n : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_multitenant.json";
  const int jobs = std::max(8, static_cast<int>(40 * bench::scale()));
  const std::vector<double> loads = {4, 16, 64};

  std::vector<Point> points;
  for (const Series& series : kSeries) {
    for (double load : loads) {
      points.push_back(run_point(load, series, jobs));
    }
  }

  std::printf("\n=== multitenant: %d mixed jobs on %d nodes, "
              "max_resident=%d ===\n",
              jobs, kNodes, kMaxResident);
  std::printf("%13s %9s %12s %10s %8s %8s %8s %10s %9s\n", "series", "load/s",
              "makespan(s)", "thru/s", "p50(s)", "p99(s)", "p999(s)",
              "small_p99", "preempts");
  for (const auto& pt : points) {
    std::printf("%13s %9.1f %12.3f %10.3f %8.3f %8.3f %8.3f %10.3f %9d\n",
                pt.series->name, pt.load, pt.makespan_s, pt.throughput, pt.p50,
                pt.p99, pt.p999, pt.small_p99, pt.preempts);
  }

  // Shape checks.
  bool tail_monotone = true;
  for (const Series& series : kSeries) {
    double prev = -1;
    for (const auto& pt : points) {
      if (pt.series != &series) continue;
      if (pt.p999 < prev) tail_monotone = false;
      prev = pt.p999;
    }
  }
  const Point* fifo_hi = nullptr;
  const Point* fair_hi = nullptr;
  const Point* preempt_hi = nullptr;
  for (const auto& pt : points) {
    if (pt.load != loads.back()) continue;
    if (pt.series == &kSeries[0]) fifo_hi = &pt;
    if (pt.series == &kSeries[1]) fair_hi = &pt;
    if (pt.series == &kSeries[2]) preempt_hi = &pt;
  }
  const bool fair_wins_small =
      fifo_hi != nullptr && fair_hi != nullptr &&
      fair_hi->small_p99 < fifo_hi->small_p99;
  const bool preempt_active =
      preempt_hi != nullptr && preempt_hi->preempts > 0 &&
      preempt_hi->resumes == preempt_hi->preempts;
  std::printf("p999 monotone in load: %s\n", tail_monotone ? "ok" : "VIOLATED");
  if (fifo_hi != nullptr && fair_hi != nullptr) {
    std::printf("small-job p99 at %.0f jobs/s: fair=%.3fs fifo=%.3fs (%s)\n",
                loads.back(), fair_hi->small_p99, fifo_hi->small_p99,
                fair_wins_small ? "fair wins" : "FIFO WINS");
  }
  if (preempt_hi != nullptr) {
    std::printf("preempting fair at %.0f jobs/s: small_p99=%.3fs "
                "preempts=%d resumes=%d (%s)\n",
                loads.back(), preempt_hi->small_p99, preempt_hi->preempts,
                preempt_hi->resumes,
                preempt_active ? "active" : "NEVER FIRED");
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench_scale\": %g,\n", bench::scale());
  std::fprintf(f, "  \"nodes\": %d,\n", kNodes);
  std::fprintf(f, "  \"jobs_per_point\": %d,\n", jobs);
  std::fprintf(f, "  \"max_resident\": %d,\n", kMaxResident);
  std::fprintf(f, "  \"tail_monotone\": %s,\n", tail_monotone ? "true" : "false");
  std::fprintf(f, "  \"fair_beats_fifo_small_p99\": %s,\n",
               fair_wins_small ? "true" : "false");
  std::fprintf(f, "  \"preemption_active_at_high_load\": %s,\n",
               preempt_active ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    std::fprintf(
        f,
        "    {\"series\": \"%s\", \"policy\": \"%s\", \"preempt\": %s, "
        "\"offered_load_jobs_per_s\": %.17g, "
        "\"jobs\": %d, \"makespan_s\": %.17g, \"throughput_jobs_per_s\": "
        "%.17g, \"p50_s\": %.17g, \"p99_s\": %.17g, \"p999_s\": %.17g, "
        "\"small_p99_s\": %.17g, \"small_mean_wait_s\": %.17g, "
        "\"resident_peak\": %d, \"preempts\": %d, \"resumes\": %d}%s\n",
        pt.series->name, core::sched_policy_name(pt.series->policy),
        pt.series->preempt ? "true" : "false", pt.load, pt.jobs, pt.makespan_s,
        pt.throughput, pt.p50, pt.p99, pt.p999, pt.small_p99,
        pt.small_mean_wait, pt.resident_peak, pt.preempts, pt.resumes,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"summary\": [\n");
  constexpr std::size_t kNumSeries = sizeof(kSeries) / sizeof(kSeries[0]);
  for (std::size_t s = 0; s < kNumSeries; ++s) {
    double hi_p99 = 0, hi_small = 0;
    int hi_preempts = 0;
    for (const auto& pt : points) {
      if (pt.series == &kSeries[s] && pt.load == loads.back()) {
        hi_p99 = pt.p99;
        hi_small = pt.small_p99;
        hi_preempts = pt.preempts;
      }
    }
    std::fprintf(f,
                 "    {\"series\": \"%s\", \"high_load_p99_s\": %.17g, "
                 "\"high_load_small_p99_s\": %.17g, "
                 "\"high_load_preempts\": %d}%s\n",
                 kSeries[s].name, hi_p99, hi_small, hi_preempts,
                 s + 1 < kNumSeries ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  return tail_monotone && fair_wins_small && preempt_active ? 0 : 1;
}
