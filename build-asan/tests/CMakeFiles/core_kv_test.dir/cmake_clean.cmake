file(REMOVE_RECURSE
  "CMakeFiles/core_kv_test.dir/core_kv_test.cc.o"
  "CMakeFiles/core_kv_test.dir/core_kv_test.cc.o.d"
  "core_kv_test"
  "core_kv_test.pdb"
  "core_kv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
