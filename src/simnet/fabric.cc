#include "simnet/fabric.h"

#include "util/error.h"

namespace gw::net {

NetworkProfile NetworkProfile::gigabit_ethernet() {
  return NetworkProfile{"1GbE", 117.0e6, 100e-6, 10e-6};
}

NetworkProfile NetworkProfile::qdr_infiniband_ipoib() {
  return NetworkProfile{"QDR-IPoIB", 1.0e9, 25e-6, 5e-6};
}

Fabric::Fabric(sim::Simulation& sim, int num_nodes, NetworkProfile profile)
    : sim_(sim), num_nodes_(num_nodes), profile_(std::move(profile)) {
  GW_CHECK(num_nodes > 0);
  nodes_.resize(num_nodes);
  stats_.resize(num_nodes);
  for (auto& n : nodes_) {
    n.tx = std::make_unique<sim::Resource>(sim_, 1);
    n.rx = std::make_unique<sim::Resource>(sim_, 1);
  }
}

sim::Task<> Fabric::send(int src, int dst, int port, util::Bytes payload) {
  GW_CHECK(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  const std::size_t bytes = payload.size();
  auto& st = stats_[src];
  st.msgs_tx++;
  st.bytes_tx += bytes;
  if (src != dst) {
    stats_[dst].bytes_rx += bytes;
    // Propagation, then cut-through occupancy of sender TX and receiver RX.
    co_await sim_.delay(profile_.latency_s);
    auto tx_hold = co_await nodes_[src].tx->acquire();
    auto rx_hold = co_await nodes_[dst].rx->acquire();
    const double wire_time = profile_.per_message_overhead_s +
                             static_cast<double>(bytes) /
                                 profile_.bandwidth_bytes_per_s;
    co_await sim_.delay(wire_time);
  }
  co_await inbox(dst, port).send(Message(src, port, std::move(payload)));
}

sim::Task<> Fabric::transfer(int src, int dst, std::uint64_t bytes) {
  GW_CHECK(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  if (src == dst) co_return;
  stats_[src].msgs_tx++;
  stats_[src].bytes_tx += bytes;
  stats_[dst].bytes_rx += bytes;
  co_await sim_.delay(profile_.latency_s);
  auto tx_hold = co_await nodes_[src].tx->acquire();
  auto rx_hold = co_await nodes_[dst].rx->acquire();
  co_await sim_.delay(profile_.per_message_overhead_s +
                      static_cast<double>(bytes) /
                          profile_.bandwidth_bytes_per_s);
}

sim::Channel<Message>& Fabric::inbox(int node, int port) {
  auto key = std::make_pair(node, port);
  auto it = inboxes_.find(key);
  if (it == inboxes_.end()) {
    // Large capacity: inboxes model receive buffers; backpressure is
    // exercised at the NIC, not the inbox.
    it = inboxes_
             .emplace(key, std::make_unique<sim::Channel<Message>>(sim_, 1 << 20))
             .first;
  }
  return *it->second;
}

void Fabric::close_port(int node, int port) { inbox(node, port).close(); }

std::uint64_t Fabric::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.bytes_tx;
  return total;
}

}  // namespace gw::net
