// Map-output collection mechanisms (paper §III-F).
//
// Glasswing offers two collectors for map kernels:
//  * Shared buffer pool — every emit bump-allocates space with one atomic
//    operation; cheap at emit time, but the partitioning stage must decode
//    every key/value occurrence individually.
//  * Hash table — per-key value chains; emits pay hash+probe costs and
//    value-append atomics, but keys are stored once, a combiner can run
//    over each key's values, and the partitioning stage decodes per key.
//
// The cost differences the paper measures in Tables II/III come from REAL
// counters here: probe counts under key skew, per-emit atomics, and the
// actual data volumes that reach the partitioner.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/api.h"
#include "core/kv.h"
#include "gwcl/device.h"

namespace gw::core {

// Harvested output of one map chunk after (optional) combine/compaction.
struct MapChunkOutput {
  MapChunkOutput() = default;

  PairList pairs;
  std::uint64_t distinct_keys = 0;
  // True when pairs of equal key are adjacent (hash-table collector), so
  // the partitioner pays per-key instead of per-pair decode overhead.
  bool grouped = false;
  // Hash-table probe count accumulated while collecting this chunk (0 for
  // the shared-pool collector).
  std::uint64_t hash_probes = 0;
  // Stats of the post-processing (combine/compaction) kernel, if any.
  cl::KernelStats post_stats;
};

class MapOutputCollector {
 public:
  virtual ~MapOutputCollector() = default;

  // Thread-safe across groups: each work-group writes only its own
  // sub-collector. Called from real host threads during kernel execution.
  virtual void emit(std::size_t group, std::string_view key,
                    std::string_view value, cl::KernelCounters& c) = 0;

  // Post-kernel processing on the device (combine or compaction kernel for
  // the hash table; plain gather for the shared pool). Consumes the
  // collector's contents.
  virtual sim::Task<MapChunkOutput> finalize(
      cl::Device& device, const std::optional<CombineFn>& combine,
      cl::LaunchConfig launch) = 0;

  // Number of work-groups this collector was built for.
  std::size_t groups() const { return groups_; }

 protected:
  explicit MapOutputCollector(std::size_t groups) : groups_(groups) {}
  std::size_t groups_;
};

// Factory per JobConfig::output_mode.
std::unique_ptr<MapOutputCollector> make_collector(OutputMode mode,
                                                   std::size_t groups);

// ---- implementations (exposed for unit tests) ----

class SharedPoolCollector : public MapOutputCollector {
 public:
  explicit SharedPoolCollector(std::size_t groups);

  void emit(std::size_t group, std::string_view key, std::string_view value,
            cl::KernelCounters& c) override;
  sim::Task<MapChunkOutput> finalize(cl::Device& device,
                                     const std::optional<CombineFn>& combine,
                                     cl::LaunchConfig launch) override;

 private:
  std::vector<PairList> per_group_;
};

class HashTableCollector : public MapOutputCollector {
 public:
  explicit HashTableCollector(std::size_t groups);

  void emit(std::size_t group, std::string_view key, std::string_view value,
            cl::KernelCounters& c) override;
  sim::Task<MapChunkOutput> finalize(cl::Device& device,
                                     const std::optional<CombineFn>& combine,
                                     cl::LaunchConfig launch) override;

  // Probe statistics over all groups (exposed for tests).
  std::uint64_t total_probes() const;

 private:
  // Open-addressed table per work-group; string data lives in `blob`.
  struct Table {
    struct Slot {
      std::uint64_t hash = 0;
      std::uint64_t key_off = kEmpty;
      std::uint32_t key_len = 0;
      std::uint32_t head = kNil;     // newest value node
      std::uint32_t num_values = 0;
    };
    struct ValueNode {
      std::uint64_t off;
      std::uint32_t len;
      std::uint32_t next;
    };
    static constexpr std::uint64_t kEmpty = ~0ull;
    static constexpr std::uint32_t kNil = ~0u;
    static constexpr std::size_t kInitialSlots = 1024;

    util::Bytes blob;
    std::vector<Slot> slots;
    std::vector<ValueNode> values;
    std::size_t used = 0;
    std::uint64_t probes = 0;

    Table();
    void insert(std::string_view key, std::string_view value,
                cl::KernelCounters& c);
    void grow();
    // Restores the empty state while keeping heap capacity. Slot count goes
    // back to kInitialSlots so the grow()/rehash charge sequence of the next
    // chunk matches a freshly constructed table exactly.
    void reset();
    std::string_view view(std::uint64_t off, std::uint32_t len) const {
      return std::string_view(reinterpret_cast<const char*>(blob.data()) + off,
                              len);
    }
  };

  std::vector<Table> tables_;
};

}  // namespace gw::core
