// Filesystem abstraction for job input/output.
//
// Two implementations:
//  * Dfs      — HDFS-like block store with replication, locality-aware
//               reads and a libhdfs/JNI client-overhead model. The paper
//               runs all Glasswing-vs-Hadoop comparisons on HDFS (§IV-A)
//               and shows HDFS overhead explicitly in Fig 3(d).
//  * LocalFs  — per-node local filesystem, used by the GPMR comparison
//               (fully replicated inputs, §IV-A) and the single-node
//               pipeline analyses (§IV-B).
//
// File contents are real bytes; all access costs are charged to the owning
// node's disk and the fabric.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "sim/sim.h"
#include "util/bytes.h"

namespace gw::dfs {

// Thrown when every replica of a block was lost to node crashes: the data
// is unrecoverable and the caller must fail the read (or regenerate the
// file from upstream state, as the job layer does for map output).
class DataLossError : public util::Error {
 public:
  explicit DataLossError(std::string what) : util::Error(std::move(what)) {}
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Creates `path` with the given contents, called from `node`.
  virtual sim::Task<> write(int node, const std::string& path,
                            util::Bytes data) = 0;

  // Reads [offset, offset+len) of `path` from `node`.
  virtual sim::Task<util::Bytes> read(int node, const std::string& path,
                                      std::uint64_t offset,
                                      std::uint64_t len) = 0;

  sim::Task<util::Bytes> read_all(int node, const std::string& path) {
    return read(node, path, 0, file_size(path));
  }

  // Metadata (namenode) operations; cheap, modelled as free.
  virtual bool exists(const std::string& path) const = 0;
  virtual std::uint64_t file_size(const std::string& path) const = 0;
  virtual std::vector<std::string> list(const std::string& prefix) const = 0;
  // Unlinks `path` if present (no error when absent). The DAG runtime
  // deletes a replayed round's outputs before re-executing it; write()
  // refuses to overwrite, so stale results must be removed first.
  virtual void remove(const std::string& path) { (void)path; }

  // Nodes holding a replica of byte-range block `index` of `path`.
  virtual std::vector<int> block_locations(const std::string& path,
                                           std::uint64_t index) const = 0;
  virtual std::uint64_t block_size() const = 0;
  virtual const char* name() const = 0;
};

struct DfsConfig {
  std::uint64_t block_size = 8ull << 20;  // scaled-down HDFS 64 MB block
  int replication = 3;                    // common practice, as in the paper
  // Client-side libhdfs/JNI overhead: per call, and per byte crossing the
  // Java/native boundary ("Java/native switches and data transfers through
  // JNI", §IV-A2). ~0.5 GB/s effective JNI copy rate — "HDFS comes with
  // considerable overhead".
  double client_call_overhead_s = 400e-6;
  double client_per_byte_overhead_s = 2.0e-9;
};

class Dfs : public FileSystem {
 public:
  // Registers a crash listener with the platform's simulation: when a node
  // dies, its replicas are dropped from every block at the crash instant
  // (reads fall over to survivors immediately) and under-replicated blocks
  // are re-replicated in the background onto live nodes, charging real disk
  // and wire time. With no crash scheduled none of this runs.
  Dfs(cluster::Platform& platform, DfsConfig config);
  ~Dfs() override;

  sim::Task<> write(int node, const std::string& path,
                    util::Bytes data) override;
  sim::Task<util::Bytes> read(int node, const std::string& path,
                              std::uint64_t offset, std::uint64_t len) override;

  bool exists(const std::string& path) const override;
  std::uint64_t file_size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& path) override;
  std::vector<int> block_locations(const std::string& path,
                                   std::uint64_t index) const override;
  std::uint64_t block_size() const override { return config_.block_size; }
  const char* name() const override { return "hdfs"; }

  // Overrides the replication factor for files written after the call
  // (TeraSort output uses replication 1, §IV-A1).
  void set_replication(int replication);

  // Writes `path` as an EXTERNAL client (no datanode affinity): HDFS places
  // the first replica of each block on a rotating node instead of pinning
  // it to the writer. Used to stage benchmark inputs the way TeraGen /
  // distcp would lay them out across the cluster.
  sim::Task<> write_distributed(const std::string& path, util::Bytes data);

  std::uint64_t local_reads() const { return local_reads_; }
  std::uint64_t remote_reads() const { return remote_reads_; }

  // --- fault-tolerance observability ---
  // Block replicas dropped because their node crashed.
  std::uint64_t replicas_lost() const { return replicas_lost_; }
  // Background copies completed to restore replication after a crash.
  std::uint64_t blocks_rereplicated() const { return blocks_rereplicated_; }

 private:
  struct FileMeta {
    util::Bytes data;
    std::vector<std::vector<int>> replicas;  // per block
  };

  std::uint64_t num_blocks(const FileMeta& meta) const;
  std::vector<int> place_block(int writer, const std::string& path,
                               std::uint64_t index) const;
  bool alive(int node) const { return platform_.sim().node_alive(node); }
  void on_crash(int node);
  sim::Task<> rereplicate(std::string path, std::uint64_t block, int src,
                          int dst, std::uint64_t len);

  cluster::Platform& platform_;
  DfsConfig config_;
  std::map<std::string, FileMeta> files_;
  std::uint64_t local_reads_ = 0;
  std::uint64_t remote_reads_ = 0;
  std::uint64_t replicas_lost_ = 0;
  std::uint64_t blocks_rereplicated_ = 0;
  int crash_listener_id_ = -1;
  std::map<int, trace::TrackRef> rerep_tracks_;  // per destination node
  std::int32_t rerep_name_ = -1;
};

struct LocalFsConfig {
  double open_overhead_s = 50e-6;  // syscall/open cost per access
};

// Node-local filesystem: every node has an independent namespace; reading a
// path from a node that does not host it throws.
class LocalFs : public FileSystem {
 public:
  LocalFs(cluster::Platform& platform, LocalFsConfig config = {});

  sim::Task<> write(int node, const std::string& path,
                    util::Bytes data) override;
  sim::Task<util::Bytes> read(int node, const std::string& path,
                              std::uint64_t offset, std::uint64_t len) override;

  bool exists(const std::string& path) const override;
  std::uint64_t file_size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& path) override;
  std::vector<int> block_locations(const std::string& path,
                                   std::uint64_t index) const override;
  std::uint64_t block_size() const override;
  const char* name() const override { return "localfs"; }

  // Copies `path` onto every node's local namespace (the GPMR experimental
  // setup fully replicates inputs, §IV-A); charges no time, representing
  // pre-staged data.
  void replicate_everywhere(const std::string& path);

 private:
  struct Entry {
    std::shared_ptr<const util::Bytes> data;  // shared across replicas
    std::vector<int> nodes;                   // hosts, sorted
  };

  cluster::Platform& platform_;
  LocalFsConfig config_;
  std::map<std::string, Entry> files_;
};

}  // namespace gw::dfs
