# Empty compiler generated dependencies file for host_path_test.
# This may be replaced when dependencies are built.
