// Tests for the HDFS-like DFS and the node-local filesystem.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "gwdfs/fs.h"
#include "util/rng.h"

namespace gw::dfs {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
}

util::Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

void run_task(Platform& p, sim::Task<> task) {
  p.sim().spawn(std::move(task));
  p.sim().run();
}

TEST(Dfs, WriteReadRoundTrip) {
  Platform p = make_platform(4);
  Dfs fs(p, DfsConfig{});
  util::Bytes data = random_bytes(1 << 20, 1);
  util::Bytes readback;
  run_task(p, [](Dfs& fs, Platform&, util::Bytes d,
                 util::Bytes* out) -> sim::Task<> {
    co_await fs.write(0, "/in/file", std::move(d));
    *out = co_await fs.read_all(2, "/in/file");
  }(fs, p, data, &readback));
  EXPECT_EQ(readback, data);
  EXPECT_TRUE(fs.exists("/in/file"));
  EXPECT_EQ(fs.file_size("/in/file"), data.size());
}

TEST(Dfs, PartialReadReturnsRange) {
  Platform p = make_platform(2);
  Dfs fs(p, DfsConfig{});
  util::Bytes data = random_bytes(100000, 2);
  util::Bytes part;
  run_task(p, [](Dfs& fs, util::Bytes d, util::Bytes* out) -> sim::Task<> {
    co_await fs.write(0, "/f", std::move(d));
    *out = co_await fs.read(0, "/f", 5000, 1234);
  }(fs, data, &part));
  ASSERT_EQ(part.size(), 1234u);
  EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + 5000));
}

TEST(Dfs, ReplicationPlacesConfiguredCopies) {
  Platform p = make_platform(8);
  DfsConfig cfg;
  cfg.replication = 3;
  cfg.block_size = 1 << 16;
  Dfs fs(p, cfg);
  run_task(p, [](Dfs& fs, util::Bytes d) -> sim::Task<> {
    co_await fs.write(3, "/f", std::move(d));
  }(fs, random_bytes(5 << 16, 3)));
  for (std::uint64_t b = 0; b < 5; ++b) {
    auto locs = fs.block_locations("/f", b);
    EXPECT_EQ(locs.size(), 3u);
    EXPECT_EQ(locs[0], 3);  // first replica on the writer
    std::set<int> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(Dfs, ReplicationCappedByClusterSize) {
  Platform p = make_platform(2);
  DfsConfig cfg;
  cfg.replication = 3;
  Dfs fs(p, cfg);
  run_task(p, [](Dfs& fs) -> sim::Task<> {
    co_await fs.write(0, "/f", util::Bytes(100));
  }(fs));
  EXPECT_EQ(fs.block_locations("/f", 0).size(), 2u);
}

TEST(Dfs, LocalReadPreferredOverRemote) {
  Platform p = make_platform(8);
  DfsConfig cfg;
  cfg.replication = 2;
  Dfs fs(p, cfg);
  run_task(p, [](Dfs& fs) -> sim::Task<> {
    co_await fs.write(1, "/f", util::Bytes(100000));
    // Node 1 holds a replica: local read.
    (void)co_await fs.read_all(1, "/f");
  }(fs));
  EXPECT_GT(fs.local_reads(), 0u);
  EXPECT_EQ(fs.remote_reads(), 0u);
}

TEST(Dfs, RemoteReadChargesNetwork) {
  Platform p = make_platform(8);
  DfsConfig cfg;
  cfg.replication = 1;  // only on the writer
  Dfs fs(p, cfg);
  run_task(p, [](Dfs& fs, Platform&) -> sim::Task<> {
    co_await fs.write(0, "/f", util::Bytes(1 << 20));
    (void)co_await fs.read_all(5, "/f");  // node 5 has no replica
  }(fs, p));
  EXPECT_GT(fs.remote_reads(), 0u);
  EXPECT_GE(p.fabric().bytes_sent(0), 1u << 20);
}

TEST(Dfs, WriteOnExistingPathThrows) {
  Platform p = make_platform(2);
  Dfs fs(p, DfsConfig{});
  bool threw = false;
  run_task(p, [](Dfs& fs, bool* t) -> sim::Task<> {
    co_await fs.write(0, "/f", util::Bytes(10));
    try {
      co_await fs.write(0, "/f", util::Bytes(10));
    } catch (const util::Error&) {
      *t = true;
    }
  }(fs, &threw));
  EXPECT_TRUE(threw);
}

TEST(Dfs, ReadMissingFileThrows) {
  Platform p = make_platform(1);
  Dfs fs(p, DfsConfig{});
  bool threw = false;
  run_task(p, [](Dfs& fs, bool* t) -> sim::Task<> {
    try {
      (void)co_await fs.read(0, "/missing", 0, 1);
    } catch (const util::Error&) {
      *t = true;
    }
  }(fs, &threw));
  EXPECT_TRUE(threw);
}

TEST(Dfs, ListFiltersByPrefix) {
  Platform p = make_platform(1);
  Dfs fs(p, DfsConfig{});
  run_task(p, [](Dfs& fs) -> sim::Task<> {
    co_await fs.write(0, "/in/a", util::Bytes(1));
    co_await fs.write(0, "/in/b", util::Bytes(1));
    co_await fs.write(0, "/out/c", util::Bytes(1));
  }(fs));
  EXPECT_EQ(fs.list("/in/").size(), 2u);
  EXPECT_EQ(fs.list("/out/").size(), 1u);
  EXPECT_EQ(fs.list("/").size(), 3u);
}

TEST(Dfs, HigherReplicationSendsMoreNetworkTraffic) {
  // The replication pipeline overlaps replica disk writes, so wall time is
  // roughly replication-independent (as in HDFS); the cost shows up as
  // network traffic and remote disk occupancy.
  auto traffic_for = [](int replication) {
    Platform p = make_platform(8);
    DfsConfig cfg;
    cfg.replication = replication;
    Dfs fs(p, cfg);
    p.sim().spawn([](Dfs& fs) -> sim::Task<> {
      co_await fs.write(0, "/f", util::Bytes(32 << 20));
    }(fs));
    const double elapsed = p.sim().run();
    EXPECT_GT(elapsed, 0.0);
    return p.fabric().total_bytes_sent();
  };
  const auto t1 = traffic_for(1);
  const auto t3 = traffic_for(3);
  EXPECT_EQ(t1, 0u);
  EXPECT_GE(t3, 2u * (32u << 20));
}

TEST(LocalFs, RoundTripAndLocality) {
  Platform p = make_platform(4);
  LocalFs fs(p);
  util::Bytes data = random_bytes(5000, 7);
  util::Bytes readback;
  run_task(p, [](LocalFs& fs, util::Bytes d, util::Bytes* out) -> sim::Task<> {
    co_await fs.write(2, "/local", std::move(d));
    *out = co_await fs.read_all(2, "/local");
  }(fs, data, &readback));
  EXPECT_EQ(readback, data);
  EXPECT_EQ(fs.block_locations("/local", 0), std::vector<int>{2});
}

TEST(LocalFs, ReadFromWrongNodeThrows) {
  Platform p = make_platform(2);
  LocalFs fs(p);
  bool threw = false;
  run_task(p, [](LocalFs& fs, bool* t) -> sim::Task<> {
    co_await fs.write(0, "/f", util::Bytes(10));
    try {
      (void)co_await fs.read_all(1, "/f");
    } catch (const util::Error&) {
      *t = true;
    }
  }(fs, &threw));
  EXPECT_TRUE(threw);
}

TEST(LocalFs, ReplicateEverywhereEnablesAllNodes) {
  Platform p = make_platform(4);
  LocalFs fs(p);
  run_task(p, [](LocalFs& fs, Platform& pl) -> sim::Task<> {
    co_await fs.write(0, "/f", util::Bytes(100));
    fs.replicate_everywhere("/f");
    for (int n = 0; n < pl.num_nodes(); ++n) {
      auto d = co_await fs.read_all(n, "/f");
      EXPECT_EQ(d.size(), 100u);
    }
  }(fs, p));
  EXPECT_EQ(fs.block_locations("/f", 0).size(), 4u);
}

}  // namespace
}  // namespace gw::dfs
