#include "core/intermediate.h"

#include <algorithm>

#include "util/error.h"

namespace gw::core {

IntermediateStore::IntermediateStore(cluster::Node& node, sim::Simulation& sim,
                                     const JobConfig& config)
    : node_(node),
      sim_(sim),
      config_(config),
      local_partitions_(config.partitions_per_node) {
  work_ = std::make_unique<sim::Channel<int>>(sim_, 4096);
  drained_ = std::make_unique<sim::Event>(sim_);
  merge_name_ = sim_.tracer().intern("store.merge");
  spill_name_ = sim_.tracer().intern("store.spill");
}

IntermediateStore::~IntermediateStore() = default;

void IntermediateStore::add_run(int g, Run run, std::uint64_t dedup_tag) {
  GW_CHECK(g >= 0);
  if (run.empty()) return;
  Part& part = parts_[g];
  if (dedup_tag != 0 && !part.seen_tags.insert(dedup_tag).second) {
    ++dup_dropped_;  // byte-identical regeneration of a run already taken in
    return;
  }
  part.cache_bytes += run.stored_bytes();
  cache_bytes_total_ += run.stored_bytes();
  part.cache.push_back(std::move(run));
  maybe_trigger_flushes();
}

void IntermediateStore::maybe_trigger_flushes() {
  if (cache_bytes_total_ <= config_.cache_threshold_bytes) return;
  for (auto& [g, part] : parts_) {
    if (part.cache_bytes > 0) enqueue(g);
  }
}

void IntermediateStore::enqueue(int g) {
  Part& part = parts_[g];
  if (part.queued) return;
  part.queued = true;
  ++jobs_in_flight_;
  // The channel is far larger than the partition count, so this never
  // blocks; spawn so enqueue stays synchronous for callers.
  sim_.spawn(work_->send(g));
}

void IntermediateStore::start_mergers() {
  if (mergers_ == nullptr) mergers_ = std::make_unique<sim::TaskGroup>(sim_);
  for (int i = 0; i < config_.effective_merger_threads(); ++i) {
    if (static_cast<std::size_t>(i) >= merger_tracks_.size()) {
      merger_tracks_.push_back(
          sim_.tracer().track(node_.id(), "store/" + std::to_string(i)));
    }
    mergers_->spawn(merger_loop(merger_tracks_[static_cast<std::size_t>(i)]));
  }
}

void IntermediateStore::reopen() {
  GW_CHECK_MSG(mergers_ == nullptr, "reopen before drain completed");
  work_ = std::make_unique<sim::Channel<int>>(sim_, 4096);
  drained_ = std::make_unique<sim::Event>(sim_);
  draining_ = false;
  jobs_in_flight_ = 0;
  for (auto& [g, part] : parts_) part.queued = false;
}

double IntermediateStore::host_merge_seconds(std::uint64_t in_stored,
                                             std::uint64_t in_raw,
                                             std::uint64_t out_raw) const {
  const HostCosts& h = config_.host;
  return static_cast<double>(in_stored) / h.decompress_bytes_per_s +
         static_cast<double>(in_raw) / h.merge_bytes_per_s +
         static_cast<double>(out_raw) / h.compress_bytes_per_s;
}

sim::Task<> IntermediateStore::merger_loop(trace::TrackRef track) {
  for (;;) {
    auto g = co_await work_->recv();
    if (!g) break;
    co_await service(*g, track);
    parts_[*g].queued = false;
    // Re-examine: service may leave work (e.g. disk runs still above the
    // limit is impossible here, but cache may have refilled meanwhile).
    Part& part = parts_[*g];
    const bool more =
        part.disk.size() > static_cast<std::size_t>(config_.max_disk_runs) ||
        (cache_bytes_total_ > config_.cache_threshold_bytes &&
         part.cache_bytes > 0) ||
        (draining_ && part.cache.size() > 1);
    if (more) enqueue(*g);
    if (--jobs_in_flight_ == 0 && draining_ && work_->size() == 0) {
      drained_->set();
    }
  }
}

sim::Task<> IntermediateStore::service(int g, trace::TrackRef track) {
  auto& tr = sim_.tracer();
  Part& part = parts_[g];

  // Step 1: merge+flush the cached runs to one on-disk run. During the
  // final drain, cached data that already fits in few runs stays in memory
  // (only consolidated if the run count is excessive); under cache pressure
  // everything cached is flushed.
  const bool pressure = cache_bytes_total_ > config_.cache_threshold_bytes;
  const bool too_many_cached =
      part.cache.size() + part.disk.size() >
      static_cast<std::size_t>(config_.max_disk_runs);
  // During the final drain each partition is consolidated to a single
  // cached run (the paper's merge phase runs to completion before reduce).
  const bool drain_consolidate = draining_ && part.cache.size() > 1;
  if (!part.cache.empty() && (pressure || too_many_cached || drain_consolidate)) {
    std::vector<Run> cached;
    cached.swap(part.cache);
    cache_bytes_total_ -= part.cache_bytes;
    part.cache_bytes = 0;

    std::uint64_t in_stored = 0, in_raw = 0;
    for (const Run& r : cached) {
      in_stored += r.stored_bytes();
      in_raw += r.raw_bytes;
    }
    ++merges_;
    merge_fanin_runs_ += cached.size();
    tr.begin(track, trace::Kind::kMerge, merge_name_, sim_.now(),
             cached.size());
    Run merged;
    if (cached.size() == 1) {
      merged = std::move(cached.front());
      co_await node_.cpu_work(
          host_merge_seconds(in_stored, in_raw, merged.raw_bytes));
    } else {
      // Merging preserves every framed pair, so the output raw size equals
      // the input raw sum and the charge is known up front: the real merge
      // runs on the pool while the cpu charge elapses.
      auto merging = sim_.offload([&cached] { return merge_runs(cached, true); });
      co_await node_.cpu_work(host_merge_seconds(in_stored, in_raw, in_raw));
      merged = co_await sim_.join(std::move(merging));
      GW_CHECK(merged.raw_bytes == in_raw);
    }
    tr.end(track, trace::Kind::kMerge, merge_name_, sim_.now());
    if (pressure) {
      // Spill to disk to relieve memory pressure.
      ++spills_;
      tr.instant(track, trace::Kind::kSpill, spill_name_, sim_.now(),
                 merged.stored_bytes());
      co_await node_.disk_stream_write(
          merged.stored_bytes(),
          cluster::Node::amortized_seek(merged.stored_bytes()));
      part.disk.push_back(std::move(merged));
    } else {
      // Drain-time consolidation: the merged run stays cached.
      part.cache_bytes += merged.stored_bytes();
      cache_bytes_total_ += merged.stored_bytes();
      part.cache.push_back(std::move(merged));
    }
  }

  // Step 2: keep the number of on-disk runs bounded with a multi-way merge.
  if (part.disk.size() > static_cast<std::size_t>(config_.max_disk_runs)) {
    std::vector<Run> inputs;
    inputs.swap(part.disk);
    std::uint64_t in_stored = 0, in_raw = 0;
    for (const Run& r : inputs) {
      in_stored += r.stored_bytes();
      in_raw += r.raw_bytes;
    }
    // As in step 1, the charge is size-determined: overlap the real merge
    // with the simulated disk read + cpu charges.
    auto merging = sim_.offload([&inputs] { return merge_runs(inputs, true); });
    co_await node_.disk_stream_read(in_stored,
                                    cluster::Node::amortized_seek(in_stored));
    ++merges_;
    merge_fanin_runs_ += inputs.size();
    tr.begin(track, trace::Kind::kMerge, merge_name_, sim_.now(),
             inputs.size());
    co_await node_.cpu_work(host_merge_seconds(in_stored, in_raw, in_raw));
    Run merged = co_await sim_.join(std::move(merging));
    GW_CHECK(merged.raw_bytes == in_raw);
    tr.end(track, trace::Kind::kMerge, merge_name_, sim_.now());
    co_await node_.disk_stream_write(
        merged.stored_bytes(),
        cluster::Node::amortized_seek(merged.stored_bytes()));
    part.disk.push_back(std::move(merged));
  }
}

sim::Task<> IntermediateStore::drain() {
  draining_ = true;
  for (auto& [g, part] : parts_) {
    if (part.cache.size() > 1 ||
        part.disk.size() > static_cast<std::size_t>(config_.max_disk_runs)) {
      enqueue(g);
    }
  }
  if (jobs_in_flight_ > 0) co_await drained_->wait();
  work_->close();
  co_await mergers_->wait();
  mergers_.reset();  // a TaskGroup is single-wait; reopen() re-creates it
}

std::vector<Run> IntermediateStore::take_partition(int g,
                                                   std::uint64_t* disk_bytes) {
  GW_CHECK(g >= 0);
  auto it = parts_.find(g);
  if (it == parts_.end()) {
    if (disk_bytes != nullptr) *disk_bytes = 0;
    return {};
  }
  Part& part = it->second;
  std::uint64_t db = 0;
  std::vector<Run> runs;
  for (Run& r : part.disk) {
    db += r.stored_bytes();
    runs.push_back(std::move(r));
  }
  for (Run& r : part.cache) runs.push_back(std::move(r));
  cache_bytes_total_ -= part.cache_bytes;
  part.cache.clear();
  part.disk.clear();
  part.cache_bytes = 0;
  if (disk_bytes != nullptr) *disk_bytes = db;
  return runs;
}

std::uint64_t IntermediateStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [g, part] : parts_) {
    for (const Run& r : part.cache) total += r.stored_bytes();
    for (const Run& r : part.disk) total += r.stored_bytes();
  }
  return total;
}

}  // namespace gw::core
