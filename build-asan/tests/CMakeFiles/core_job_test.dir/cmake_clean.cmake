file(REMOVE_RECURSE
  "CMakeFiles/core_job_test.dir/core_job_test.cc.o"
  "CMakeFiles/core_job_test.dir/core_job_test.cc.o.d"
  "core_job_test"
  "core_job_test.pdb"
  "core_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
