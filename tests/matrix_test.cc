// Cross-product correctness matrix: every application on every device kind
// and several cluster shapes must produce reference-identical output, plus
// Black-Scholes and heterogeneous-cluster coverage.
#include <cmath>
#include <map>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "apps/blackscholes.h"
#include "apps/kmeans.h"
#include "util/rng.h"
#include "apps/pageview.h"
#include "apps/wordcount.h"
#include "core/job.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
}

void stage(Platform& p, dfs::Dfs& fs, const std::string& path,
           const util::Bytes& data) {
  p.sim().spawn([](dfs::Dfs& f, std::string pa, util::Bytes c) -> sim::Task<> {
    co_await f.write_distributed(pa, std::move(c));
  }(fs, path, data));
  p.sim().run();
}

std::vector<std::pair<std::string, std::string>> output_pairs(
    Platform& p, dfs::Dfs& fs, const core::JobResult& result) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& path : result.output_files) {
    util::Bytes contents;
    p.sim().spawn([](dfs::Dfs& f, std::string pa,
                     util::Bytes* o) -> sim::Task<> {
      *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
    }(fs, path, &contents));
    p.sim().run();
    for (auto& kv : core::read_output_file(contents)) pairs.push_back(kv);
  }
  return pairs;
}

cl::DeviceSpec device_by_name(const std::string& name) {
  if (name == "cpu") return cl::DeviceSpec::cpu_dual_e5620();
  if (name == "gtx480") return cl::DeviceSpec::gtx480();
  if (name == "k20m") return cl::DeviceSpec::k20m();
  return cl::DeviceSpec::xeon_phi_5110p();
}

// ---- WC across (device x nodes x buffering) ----

class WordcountMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(WordcountMatrix, MatchesReference) {
  const auto [device, nodes, buffering] = GetParam();
  util::Bytes text = apps::generate_wiki_text(384 << 10, 97);
  Platform p = make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  stage(p, fs, "/in", text);
  core::JobConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 64 << 10;
  cfg.buffering = buffering;
  core::GlasswingRuntime rt(p, fs, device_by_name(device));
  auto result = rt.run(apps::wordcount().kernels, cfg);
  std::map<std::string, std::uint64_t> counts;
  for (auto& [k, v] : output_pairs(p, fs, result)) {
    counts[k] += apps::parse_u64(v);
  }
  EXPECT_EQ(counts, apps::wordcount_reference(text));
}

INSTANTIATE_TEST_SUITE_P(
    DeviceNodeBuffering, WordcountMatrix,
    ::testing::Combine(::testing::Values("cpu", "gtx480", "k20m", "phi"),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(1, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param));
    });

// ---- Black-Scholes ----

TEST(BlackScholes, ClosedFormSanity) {
  // Deep in-the-money call with negligible vol/rate ~= spot - strike.
  EXPECT_NEAR(apps::price_option(150, 50, 0.0001f, 0.01f, 0.25f), 100.0, 0.1);
  // Worthless far out-of-the-money call.
  EXPECT_NEAR(apps::price_option(50, 500, 0.01f, 0.1f, 0.5f), 0.0, 1e-6);
  // Monotone in volatility.
  EXPECT_GT(apps::price_option(100, 100, 0.02f, 0.5f, 1.0f),
            apps::price_option(100, 100, 0.02f, 0.2f, 1.0f));
}

TEST(BlackScholes, JobMatchesReferenceOnGpu) {
  apps::BlackScholesConfig bs{.paths = 64};
  util::Bytes options = apps::generate_options(20000, 41);
  Platform p = make_platform(3);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  stage(p, fs, "/in/options", options);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/options"};
  cfg.output_path = "/out";
  cfg.split_size = 64 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::gtx480());
  auto result = rt.run(apps::black_scholes(bs).kernels, cfg);

  const auto ref = apps::black_scholes_reference(options, bs);
  std::map<std::uint32_t, double> actual;
  for (auto& [k, v] : output_pairs(p, fs, result)) {
    double d;
    ASSERT_EQ(v.size(), sizeof(d));
    std::memcpy(&d, v.data(), sizeof(d));
    actual[apps::get_be32(k)] += d;
  }
  ASSERT_EQ(actual.size(), ref.size());
  for (auto& [bucket, total] : ref) {
    ASSERT_TRUE(actual.count(bucket));
    EXPECT_NEAR(actual[bucket], total, std::abs(total) * 1e-9 + 1e-6);
  }
}

TEST(BlackScholes, GpuMuchFasterThanCpu) {
  apps::BlackScholesConfig bs{.paths = 256};
  util::Bytes options = apps::generate_options(20000, 43);
  auto timed = [&](cl::DeviceSpec dev) {
    Platform p = make_platform(1);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    stage(p, fs, "/in", options);
    core::JobConfig cfg;
    cfg.input_paths = {"/in"};
    cfg.output_path = "/out";
    core::GlasswingRuntime rt(p, fs, std::move(dev));
    return rt.run(apps::black_scholes(bs).kernels, cfg).elapsed_seconds;
  };
  const double cpu = timed(cl::DeviceSpec::cpu_dual_e5620());
  const double gpu = timed(cl::DeviceSpec::gtx480());
  EXPECT_GT(cpu / gpu, 3.0);  // embarrassingly parallel compute: GPU wins big
}

// ---- heterogeneous clusters ----

TEST(Heterogeneous, MixedDevicesCorrectAndLoadBalanced) {
  // 4 nodes: two with GPUs, two CPU-only (the Shirahata scenario from §II).
  apps::KmeansConfig km{.k = 256, .dims = 4};
  auto centers = apps::generate_centers(km, 3);
  util::Bytes points = apps::generate_points(km, 60000, 5);
  Platform p = make_platform(4);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  stage(p, fs, "/in/points", points);

  std::vector<cl::DeviceSpec> devices = {
      cl::DeviceSpec::gtx480(), cl::DeviceSpec::cpu_dual_e5620(),
      cl::DeviceSpec::gtx480(), cl::DeviceSpec::cpu_dual_e5620()};
  core::GlasswingRuntime rt(p, fs, devices);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/points"};
  cfg.output_path = "/out";
  cfg.split_size = 32 << 10;
  auto result = rt.run(apps::kmeans(km, centers).kernels, cfg);

  // Correctness against reference.
  const auto ref = apps::kmeans_reference(km, centers, points);
  std::uint64_t seen = 0;
  for (auto& [key, value] : output_pairs(p, fs, result)) {
    const std::uint32_t cid = apps::get_be32(key);
    const std::uint32_t count = apps::get_be32(
        std::string_view(value).substr(static_cast<std::size_t>(km.dims) * 4));
    EXPECT_EQ(count, ref.counts[cid]);
    ++seen;
  }
  std::uint64_t nonempty = 0;
  for (auto c : ref.counts) nonempty += (c > 0);
  EXPECT_EQ(seen, nonempty);

  // Load balance: GPU nodes (0,2) must have executed more map kernels than
  // CPU nodes (1,3) — the dynamic scheduler feeds faster nodes more splits.
  const std::uint64_t gpu_kernels =
      rt.device(0).kernels_launched() + rt.device(2).kernels_launched();
  const std::uint64_t cpu_kernels =
      rt.device(1).kernels_launched() + rt.device(3).kernels_launched();
  EXPECT_GT(gpu_kernels, cpu_kernels);
}

// ---- iterative K-Means (job chaining) ----

TEST(KmeansIterate, ConvergesTowardClusterMeans) {
  // Points drawn around 8 well-separated true centers; after a few Lloyd
  // iterations from perturbed initial centers, the objective (mean distance
  // to the assigned center) must improve monotonically-ish and the final
  // centers must sit near the true ones.
  apps::KmeansConfig km{.k = 8, .dims = 2};
  util::Rng rng(77);
  std::vector<float> truth;
  for (int c = 0; c < km.k; ++c) {
    truth.push_back(static_cast<float>(100 * (c % 4) + 50));
    truth.push_back(static_cast<float>(100 * (c / 4) + 50));
  }
  util::Bytes points;
  for (int i = 0; i < 20000; ++i) {
    const int c = static_cast<int>(rng.below(km.k));
    for (int j = 0; j < 2; ++j) {
      const float v = truth[static_cast<std::size_t>(c) * 2 + j] +
                      static_cast<float>(rng.uniform(-12, 12));
      const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
      points.insert(points.end(), b, b + 4);
    }
  }
  // Initial centers: truth shifted by a sizable offset.
  std::vector<float> initial = truth;
  for (auto& v : initial) v += 23.0f;

  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  stage(p, fs, "/in/points", points);
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  core::JobConfig base;
  base.split_size = 64 << 10;
  auto result = apps::kmeans_iterate(rt, p, fs, km, initial, "/in/points",
                                     "/out/km", 4, base);
  ASSERT_EQ(result.iterations, 4);
  EXPECT_GT(result.total_elapsed_seconds, 0.0);
  // Every final center within the noise radius of a true center.
  for (int c = 0; c < km.k; ++c) {
    double best = 1e30;
    for (int t = 0; t < km.k; ++t) {
      double dist = 0;
      for (int j = 0; j < 2; ++j) {
        const double delta =
            result.centers[static_cast<std::size_t>(c) * 2 + j] -
            truth[static_cast<std::size_t>(t) * 2 + j];
        dist += delta * delta;
      }
      best = std::min(best, dist);
    }
    EXPECT_LT(std::sqrt(best), 12.0) << "center " << c << " did not converge";
  }
  std::uint64_t members = 0;
  for (auto n : result.counts) members += n;
  EXPECT_EQ(members, 20000u);
}

}  // namespace
}  // namespace gw
