// Quickstart: a complete Glasswing word-count job in ~60 lines of user
// code.
//
// The pattern every Glasswing application follows:
//   1. Build a simulated cluster Platform and a filesystem.
//   2. Stage input data.
//   3. Describe the application: map / combine / reduce kernels that
//      consume and emit key/value pairs (these stand in for the OpenCL
//      kernels the paper's system compiles).
//   4. Configure the job (buffering, collector, partitions...).
//   5. Run and inspect results.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/job.h"

using namespace gw;

namespace {

// Map kernel: one work-item per input line; emits (word, "1").
void map_words(std::string_view line, core::MapContext& ctx) {
  ctx.charge_ops(2 * line.size());  // account the scan for the device model
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\n')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\n') ++i;
    if (i > start) ctx.emit(line.substr(start, i - start), "1");
  }
}

// Combine/reduce kernel: sums the counts of one key.
void sum_counts(std::string_view key,
                const std::vector<std::string_view>& values,
                core::ReduceContext& ctx) {
  std::uint64_t total = 0;
  for (auto v : values) total += std::stoull(std::string(v));
  ctx.charge_ops(values.size());
  ctx.emit(key, std::to_string(total));
}

}  // namespace

int main() {
  // A 4-node cluster of DAS-4-style machines on QDR InfiniBand, with an
  // HDFS-like DFS on top.
  cluster::Platform platform(cluster::ClusterSpec::homogeneous(
      4, cluster::NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs(platform, dfs::DfsConfig{});

  // Stage some input.
  std::string text;
  for (int i = 0; i < 20000; ++i) {
    text += "the quick brown fox jumps over the lazy dog\n";
  }
  platform.sim().spawn([](dfs::Dfs& f, std::string t) -> sim::Task<> {
    co_await f.write_distributed("/in/text", util::Bytes(t.begin(), t.end()));
  }(fs, text));
  platform.sim().run();

  // Describe the application.
  core::AppKernels app;
  app.name = "quickstart-wordcount";
  app.map = map_words;
  app.combine = sum_counts;
  app.reduce = sum_counts;

  // Configure and run.
  core::JobConfig config;
  config.input_paths = {"/in/text"};
  config.output_path = "/out/wc";
  config.split_size = 64 << 10;

  core::GlasswingRuntime runtime(platform, fs,
                                 cl::DeviceSpec::cpu_dual_e5620());
  core::JobResult result = runtime.run(app, config);

  std::printf("job finished in %.3f simulated seconds\n",
              result.elapsed_seconds);
  std::printf("  map %.3fs | merge delay %.3fs | reduce %.3fs\n",
              result.map_phase_seconds, result.merge_delay_seconds,
              result.reduce_phase_seconds);
  std::printf("  %llu records -> %llu intermediate pairs -> %llu output "
              "pairs in %zu files\n",
              static_cast<unsigned long long>(result.stats.input_records),
              static_cast<unsigned long long>(result.stats.intermediate_pairs),
              static_cast<unsigned long long>(result.stats.output_pairs),
              result.output_files.size());

  // Read the word counts back.
  for (const auto& path : result.output_files) {
    util::Bytes contents;
    platform.sim().spawn([](dfs::Dfs& f, std::string pa,
                            util::Bytes* out) -> sim::Task<> {
      *out = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
    }(fs, path, &contents));
    platform.sim().run();
    for (auto& [word, count] : core::read_output_file(contents)) {
      std::printf("  %-8s %s\n", word.c_str(), count.c_str());
    }
  }
  return 0;
}
