#include "apps/kmeans.h"

#include <cmath>
#include <memory>
#include <string>

#include "util/error.h"
#include "util/rng.h"

namespace gw::apps {

namespace {

int nearest_center(const float* point, const std::vector<float>& centers,
                   int k, int d) {
  int best = 0;
  float best_dist = 0;
  for (int c = 0; c < k; ++c) {
    float dist = 0;
    for (int j = 0; j < d; ++j) {
      const float delta = point[j] - centers[static_cast<std::size_t>(c) * d + j];
      dist += delta * delta;
    }
    if (c == 0 || dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

// Value payload: d float sums + u32 count.
std::string encode_partial(const float* sums, int d, std::uint32_t count) {
  std::string out;
  out.reserve(static_cast<std::size_t>(d) * 4 + 4);
  for (int j = 0; j < d; ++j) append_f32(out, sums[j]);
  put_be32(out, count);
  return out;
}

}  // namespace

AppSpec kmeans(KmeansConfig config, std::vector<float> centers) {
  GW_CHECK(static_cast<int>(centers.size()) == config.k * config.dims);
  const int k = config.k;
  const int d = config.dims;
  auto shared_centers = std::make_shared<std::vector<float>>(std::move(centers));

  AppSpec spec;
  spec.kernels.name = "kmeans";
  spec.kernels.fixed_record_size = static_cast<std::uint64_t>(d) * 4;

  spec.kernels.map = [k, d, shared_centers](std::string_view record,
                                            core::MapContext& ctx) {
    GW_CHECK(record.size() == static_cast<std::size_t>(d) * 4);
    float point[16];
    GW_CHECK(d <= 16);
    for (int j = 0; j < d; ++j) point[j] = read_f32(record.data() + 4 * j);
    // k*d multiply-add-compare distance evaluations plus fixed per-point
    // work-item overhead (point load, index math, argmin bookkeeping) —
    // which dominates for small center counts, as the paper's 16-center
    // configuration shows (§IV-A2).
    ctx.charge_ops(static_cast<std::uint64_t>(3 * k) * d + 800);
    const int best = nearest_center(point, *shared_centers, k, d);
    std::string key;
    put_be32(key, static_cast<std::uint32_t>(best));
    ctx.emit(key, encode_partial(point, d, 1));
  };

  auto aggregate = [d](std::string_view /*key*/,
                       const std::vector<std::string_view>& values,
                       float* sums, std::uint64_t* count) {
    for (int j = 0; j < d; ++j) sums[j] = 0;
    *count = 0;
    for (auto v : values) {
      GW_CHECK(v.size() == static_cast<std::size_t>(d) * 4 + 4);
      for (int j = 0; j < d; ++j) sums[j] += read_f32(v.data() + 4 * j);
      *count += get_be32(v.substr(static_cast<std::size_t>(d) * 4));
    }
  };

  spec.kernels.combine = [d, aggregate](
                             std::string_view key,
                             const std::vector<std::string_view>& values,
                             core::ReduceContext& ctx) {
    float sums[16];
    std::uint64_t count = 0;
    aggregate(key, values, sums, &count);
    ctx.charge_ops(static_cast<std::uint64_t>(values.size()) * (d + 1));
    ctx.emit(key, encode_partial(sums, d, static_cast<std::uint32_t>(count)));
  };
  // Float accumulation is order-sensitive; hierarchical combining regroups
  // partials, so byte-identical output across modes is NOT guaranteed.
  // Left unset: combine_mode degrades to kOff for this app.
  spec.kernels.combine_associative = false;

  spec.kernels.reduce = [d, aggregate](
                            std::string_view key,
                            const std::vector<std::string_view>& values,
                            core::ReduceContext& ctx) {
    float sums[16];
    std::uint64_t count = 0;
    aggregate(key, values, sums, &count);
    ctx.charge_ops(static_cast<std::uint64_t>(values.size()) * (d + 1));
    float means[16];
    for (int j = 0; j < d; ++j) {
      means[j] = count > 0 ? sums[j] / static_cast<float>(count) : 0.0f;
    }
    ctx.emit(key, encode_partial(means, d, static_cast<std::uint32_t>(count)));
  };

  return spec;
}

std::vector<float> generate_centers(const KmeansConfig& config,
                                    std::uint64_t seed) {
  util::Rng rng(seed ^ 0xc0ffee);
  std::vector<float> centers(static_cast<std::size_t>(config.k) * config.dims);
  for (auto& c : centers) {
    c = static_cast<float>(rng.uniform(0.0, 100.0));
  }
  return centers;
}

util::Bytes generate_points(const KmeansConfig& config, std::uint64_t points,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes data;
  data.reserve(points * config.dims * 4);
  for (std::uint64_t p = 0; p < points; ++p) {
    for (int j = 0; j < config.dims; ++j) {
      const float v = static_cast<float>(rng.uniform(0.0, 100.0));
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(&v);
      data.insert(data.end(), bytes, bytes + 4);
    }
  }
  return data;
}

KmeansReference kmeans_reference(const KmeansConfig& config,
                                 const std::vector<float>& centers,
                                 const util::Bytes& points) {
  const int k = config.k;
  const int d = config.dims;
  KmeansReference ref;
  ref.counts.assign(k, 0);
  std::vector<double> sums(static_cast<std::size_t>(k) * d, 0.0);
  const std::size_t record = static_cast<std::size_t>(d) * 4;
  for (std::size_t off = 0; off + record <= points.size(); off += record) {
    float point[16];
    for (int j = 0; j < d; ++j) {
      point[j] = read_f32(reinterpret_cast<const char*>(points.data()) + off +
                          4 * j);
    }
    const int best = nearest_center(point, centers, k, d);
    ref.counts[best]++;
    for (int j = 0; j < d; ++j) {
      sums[static_cast<std::size_t>(best) * d + j] += point[j];
    }
  }
  ref.means.assign(static_cast<std::size_t>(k) * d, 0.0f);
  for (int c = 0; c < k; ++c) {
    if (ref.counts[c] == 0) continue;
    for (int j = 0; j < d; ++j) {
      ref.means[static_cast<std::size_t>(c) * d + j] = static_cast<float>(
          sums[static_cast<std::size_t>(c) * d + j] /
          static_cast<double>(ref.counts[c]));
    }
  }
  return ref;
}

util::Bytes encode_kmeans_state(const std::vector<float>& centers,
                                const std::vector<std::uint64_t>& counts) {
  std::string out;
  out.reserve(centers.size() * 4 + counts.size() * 8);
  for (float c : centers) append_f32(out, c);
  for (std::uint64_t n : counts) put_be64(out, n);
  return util::Bytes(out.begin(), out.end());
}

void decode_kmeans_state(const KmeansConfig& config, const util::Bytes& state,
                         std::vector<float>* centers,
                         std::vector<std::uint64_t>* counts) {
  const std::size_t k = static_cast<std::size_t>(config.k);
  const std::size_t kd = k * static_cast<std::size_t>(config.dims);
  GW_CHECK_MSG(state.size() == kd * 4 + k * 8, "bad kmeans broadcast payload");
  const std::string_view view(reinterpret_cast<const char*>(state.data()),
                              state.size());
  centers->resize(kd);
  for (std::size_t i = 0; i < kd; ++i) {
    (*centers)[i] = read_f32(view.data() + i * 4);
  }
  counts->resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    (*counts)[c] = get_be64(view.substr(kd * 4 + c * 8));
  }
}

KmeansDagResult kmeans_dag(core::GlasswingRuntime& runtime,
                           cluster::Platform& platform, dfs::FileSystem& fs,
                           KmeansConfig config,
                           std::vector<float> initial_centers,
                           const std::string& points_path,
                           const std::string& output_prefix, int iterations,
                           core::JobConfig base, core::EdgeKind edge,
                           bool pin_inputs, std::uint64_t pin_budget_bytes) {
  GW_CHECK(iterations >= 1);
  const int k = config.k;
  const int d = config.dims;

  core::DagConfig dc;
  dc.input_paths = {points_path};
  dc.output_root = output_prefix;
  dc.base = std::move(base);
  dc.pin_inputs = pin_inputs;
  dc.pin_budget_bytes = pin_budget_bytes;
  dc.initial_broadcast = encode_kmeans_state(
      initial_centers, std::vector<std::uint64_t>(static_cast<std::size_t>(k)));

  core::JobDag dag(runtime, platform, fs, dc);
  core::RoundSpec round;
  round.name = "kmeans";
  round.edge = edge;
  round.app = [config](const core::DagRoundState& st) {
    std::vector<float> centers;
    std::vector<std::uint64_t> counts;
    decode_kmeans_state(config, st.broadcast, &centers, &counts);
    return kmeans(config, std::move(centers)).kernels;
  };
  // Every iteration re-reads the full point set (the pinned input cache, if
  // enabled, absorbs the repeats).
  round.inputs = [points_path](const core::DagRoundState&) {
    return std::vector<std::string>{points_path};
  };
  round.tune = [output_prefix](core::JobConfig& cfg,
                               const core::DagRoundState& st) {
    cfg.output_path = output_prefix + "/iter-" + std::to_string(st.round);
  };
  // The re-broadcast step: fold the round's (center-id -> means, count)
  // pairs into the carried state. Centers with no members keep their old
  // position, exactly like the legacy hand-rolled loop.
  round.broadcast = [config, k, d](const core::DagRoundState& st,
                                   const core::RoundPairs& pairs) {
    std::vector<float> centers;
    std::vector<std::uint64_t> counts;
    decode_kmeans_state(config, st.broadcast, &centers, &counts);
    counts.assign(static_cast<std::size_t>(k), 0);
    for (const auto& [key, value] : pairs) {
      const std::uint32_t cid = get_be32(key);
      GW_CHECK(cid < static_cast<std::uint32_t>(k));
      counts[cid] = get_be32(
          std::string_view(value).substr(static_cast<std::size_t>(d) * 4));
      if (counts[cid] > 0) {
        for (int j = 0; j < d; ++j) {
          centers[static_cast<std::size_t>(cid) * d + j] =
              read_f32(value.data() + 4 * j);
        }
      }
    }
    return encode_kmeans_state(centers, counts);
  };
  dag.add_round(std::move(round));
  dag.until(nullptr, iterations);

  KmeansDagResult out;
  out.dag = dag.run();
  decode_kmeans_state(config, out.dag.final_broadcast,
                      &out.iterations.centers, &out.iterations.counts);
  out.iterations.iterations = out.dag.iterations;
  for (const auto& r : out.dag.rounds) {
    out.iterations.total_elapsed_seconds += r.job.elapsed_seconds;
  }
  return out;
}

KmeansIterations kmeans_iterate(core::GlasswingRuntime& runtime,
                                cluster::Platform& platform,
                                dfs::FileSystem& fs, KmeansConfig config,
                                std::vector<float> initial_centers,
                                const std::string& points_path,
                                const std::string& output_prefix,
                                int iterations, core::JobConfig base) {
  return kmeans_dag(runtime, platform, fs, config, std::move(initial_centers),
                    points_path, output_prefix, iterations, std::move(base))
      .iterations;
}

}  // namespace gw::apps
