// Fault-injection sweep (§III-E): recovery cost of a node crash.
//
// Runs wordcount at several cluster sizes, kills one node at three points
// of the job (early map, mid job, late/reduce), and compares three modes —
// failure-free, crash, and crash+speculation — on the simulated clock.
// Every faulty run must reproduce the failure-free output byte-for-byte;
// the interesting quantity is the recovery overhead (elapsed vs clean) and
// the recovery work performed (re-executed splits, reassigned partitions,
// re-replicated blocks). Emits BENCH_faults.json for PR-over-PR tracking
// (plain binary, no google-benchmark; all times are simulated seconds).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

struct RunResult {
  double sim_seconds = 0;
  core::JobStats stats;
  std::map<std::string, util::Bytes> files;  // output path -> bytes
  double map_end = 0, merge_end = 0;         // phase boundaries (clean runs)
};

RunResult run_wc(int nodes, const util::Bytes& input,
                 const std::vector<core::JobConfig::CrashEvent>& crashes,
                 bool speculate) {
  cluster::Platform p = bench::make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  bench::stage_input(p, fs, "/in/wiki", input);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = 64 << 10;
  cfg.crash_events = crashes;
  cfg.speculate = speculate;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  const core::JobResult r = rt.run(apps::wordcount().kernels, cfg);

  RunResult out;
  out.sim_seconds = r.elapsed_seconds;
  out.stats = r.stats;
  out.map_end = r.map_phase_seconds;
  out.merge_end = r.map_phase_seconds + r.merge_delay_seconds;
  for (const auto& path : r.output_files) {
    util::Bytes contents;
    p.sim().spawn([](dfs::Dfs& f, std::string pa,
                     util::Bytes* o) -> sim::Task<> {
      *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
    }(fs, path, &contents));
    p.sim().run();
    out.files[path] = std::move(contents);
  }
  return out;
}

struct Point {
  int nodes = 0;
  std::string phase;  // crash placement: "map" / "shuffle" / "reduce"
  std::string mode;   // "none" / "crash" / "crash+spec"
  double crash_time = -1;
  double sim_seconds = 0;
  double overhead = 0;  // elapsed / clean elapsed
  bool output_ok = true;
  core::JobStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  const util::Bytes input =
      apps::generate_wiki_text(bench::scaled_bytes(4 << 20), 2014);

  std::vector<Point> points;
  int bad_outputs = 0;
  for (const int nodes : {4, 8, 16}) {
    const RunResult clean = run_wc(nodes, input, {}, false);
    Point base;
    base.nodes = nodes;
    base.phase = "-";
    base.mode = "none";
    base.sim_seconds = clean.sim_seconds;
    base.overhead = 1.0;
    base.stats = clean.stats;
    points.push_back(base);

    const std::vector<std::pair<std::string, double>> kills = {
        {"map", 0.5 * clean.map_end},
        {"shuffle", clean.map_end + 0.5 * (clean.merge_end - clean.map_end)},
        {"reduce",
         clean.merge_end + 0.5 * (clean.sim_seconds - clean.merge_end)},
    };
    for (const auto& [phase, when] : kills) {
      for (const bool spec : {false, true}) {
        const RunResult faulty =
            run_wc(nodes, input, {{.node = 2, .time = when}}, spec);
        Point pt;
        pt.nodes = nodes;
        pt.phase = phase;
        pt.mode = spec ? "crash+spec" : "crash";
        pt.crash_time = when;
        pt.sim_seconds = faulty.sim_seconds;
        pt.overhead = faulty.sim_seconds / clean.sim_seconds;
        pt.output_ok = faulty.files == clean.files;
        pt.stats = faulty.stats;
        if (!pt.output_ok) {
          std::fprintf(stderr,
                       "OUTPUT MISMATCH: %d nodes, crash@%s, mode=%s\n",
                       nodes, phase.c_str(), pt.mode.c_str());
          ++bad_outputs;
        }
        points.push_back(std::move(pt));
      }
    }
  }

  std::printf("\n=== faults: crash recovery cost (wordcount) ===\n");
  std::printf("%5s %-8s %-11s %10s %9s %7s %9s %7s %7s %6s\n", "nodes",
              "crash@", "mode", "sim(s)", "overhead", "reexec", "reassign",
              "rounds", "rerepl", "ok");
  for (const auto& pt : points) {
    std::printf(
        "%5d %-8s %-11s %10.3f %9.2f %7llu %9llu %7llu %7llu %6s\n",
        pt.nodes, pt.phase.c_str(), pt.mode.c_str(), pt.sim_seconds,
        pt.overhead,
        static_cast<unsigned long long>(pt.stats.tasks_reexecuted),
        static_cast<unsigned long long>(pt.stats.partitions_reassigned),
        static_cast<unsigned long long>(pt.stats.recovery_rounds),
        static_cast<unsigned long long>(pt.stats.blocks_rereplicated),
        pt.output_ok ? "yes" : "NO");
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench_scale\": %g,\n", bench::scale());
  std::fprintf(f, "  \"outputs_identical\": %s,\n",
               bad_outputs == 0 ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    const auto& s = pt.stats;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"nodes\": %d,\n", pt.nodes);
    std::fprintf(f, "      \"phase\": \"%s\",\n", pt.phase.c_str());
    std::fprintf(f, "      \"mode\": \"%s\",\n", pt.mode.c_str());
    std::fprintf(f, "      \"crash_time\": %.17g,\n", pt.crash_time);
    std::fprintf(f, "      \"sim_seconds\": %.17g,\n", pt.sim_seconds);
    std::fprintf(f, "      \"overhead\": %.4f,\n", pt.overhead);
    std::fprintf(f, "      \"output_ok\": %s,\n",
                 pt.output_ok ? "true" : "false");
    std::fprintf(
        f,
        "      \"stats\": {\"tasks_reexecuted\": %llu, "
        "\"partitions_reassigned\": %llu, \"recovery_rounds\": %llu, "
        "\"blocks_rereplicated\": %llu, \"dfs_replicas_lost\": %llu, "
        "\"duplicate_runs_dropped\": %llu, \"speculative_wins\": %llu, "
        "\"speculative_losses\": %llu}\n",
        static_cast<unsigned long long>(s.tasks_reexecuted),
        static_cast<unsigned long long>(s.partitions_reassigned),
        static_cast<unsigned long long>(s.recovery_rounds),
        static_cast<unsigned long long>(s.blocks_rereplicated),
        static_cast<unsigned long long>(s.dfs_replicas_lost),
        static_cast<unsigned long long>(s.duplicate_runs_dropped),
        static_cast<unsigned long long>(s.speculative_wins),
        static_cast<unsigned long long>(s.speculative_losses));
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  return bad_outputs == 0 ? 0 : 1;
}
