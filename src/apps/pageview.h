// Pageview Count (PVC): counts URL frequencies in web-server logs (paper
// §IV-A1). The paper uses 30 GB of WikiBench traces whose URLs are "highly
// sparse in that duplicate URLs are rare, so the volume of intermediate
// data is large, with a massive number of keys" — the generator reproduces
// exactly that: a massive, mostly-unique URL key space with a small popular
// head.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "apps/common.h"
#include "util/bytes.h"

namespace gw::apps {

// Map extracts the URL field of each log line and emits (url, "1");
// combiner/reducer sum. Kernels do little work per record: I/O bound.
AppSpec pageview_count();

// Generates ~`bytes` of wikipedia-access-log-like lines:
//   <epoch-ms> <url> <status> <bytes>\n
// ~85% of URLs are unique (sparse tail), 15% drawn from a popular head.
util::Bytes generate_weblog(std::uint64_t bytes, std::uint64_t seed);

std::map<std::string, std::uint64_t> pageview_reference(
    const util::Bytes& log);

}  // namespace gw::apps
