// Unit tests for PairList / Run / merge machinery.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kv.h"
#include "util/rng.h"

namespace gw::core {
namespace {

TEST(PairList, AddAndGet) {
  PairList pl;
  pl.add("apple", "1");
  pl.add("banana", "22");
  pl.add("", "empty-key");
  pl.add("k", "");
  ASSERT_EQ(pl.size(), 4u);
  EXPECT_EQ(pl.get(0).key, "apple");
  EXPECT_EQ(pl.get(0).value, "1");
  EXPECT_EQ(pl.get(1).key, "banana");
  EXPECT_EQ(pl.get(1).value, "22");
  EXPECT_EQ(pl.get(2).key, "");
  EXPECT_EQ(pl.get(2).value, "empty-key");
  EXPECT_EQ(pl.get(3).key, "k");
  EXPECT_EQ(pl.get(3).value, "");
  EXPECT_EQ(pl.payload_bytes(), 5u + 1 + 6 + 2 + 9 + 1);
}

TEST(PairList, SortByKeyIsStable) {
  PairList pl;
  pl.add("b", "1");
  pl.add("a", "1");
  pl.add("b", "2");
  pl.add("a", "2");
  pl.sort_by_key();
  EXPECT_EQ(pl.get(0).key, "a");
  EXPECT_EQ(pl.get(0).value, "1");
  EXPECT_EQ(pl.get(1).value, "2");
  EXPECT_EQ(pl.get(2).key, "b");
  EXPECT_EQ(pl.get(2).value, "1");
  EXPECT_EQ(pl.get(3).value, "2");
}

TEST(PairList, AppendPreservesPairs) {
  PairList a, b;
  a.add("x", "1");
  b.add("y", "2");
  b.add("z", "3");
  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.get(1).key, "y");
  EXPECT_EQ(a.get(2).key, "z");
}

TEST(Run, BuilderReaderRoundTrip) {
  RunBuilder rb;
  rb.add("a", "1");
  rb.add("b", "two");
  rb.add("c", std::string(1000, 'x'));
  gw::core::Run run = rb.finish(false);
  EXPECT_EQ(run.pairs, 3u);
  EXPECT_FALSE(run.compressed);
  RunReader reader(run);
  KV kv;
  ASSERT_TRUE(reader.next(&kv));
  EXPECT_EQ(kv.key, "a");
  ASSERT_TRUE(reader.next(&kv));
  EXPECT_EQ(kv.value, "two");
  ASSERT_TRUE(reader.next(&kv));
  EXPECT_EQ(kv.value.size(), 1000u);
  EXPECT_FALSE(reader.next(&kv));
}

TEST(Run, CompressedRoundTripAndShrinks) {
  RunBuilder rb;
  for (int i = 0; i < 1000; ++i) rb.add("repeated-key", "repeated-value");
  const std::uint64_t raw = rb.raw_bytes();
  gw::core::Run run = rb.finish(true);
  EXPECT_TRUE(run.compressed);
  EXPECT_LT(run.stored_bytes(), raw / 3);
  EXPECT_EQ(run.raw_bytes, raw);
  RunReader reader(run);
  KV kv;
  int n = 0;
  while (reader.next(&kv)) {
    EXPECT_EQ(kv.key, "repeated-key");
    ++n;
  }
  EXPECT_EQ(n, 1000);
}

TEST(Run, SerializeDeserialize) {
  RunBuilder rb;
  rb.add("k1", "v1");
  rb.add("k2", "v2");
  gw::core::Run run = rb.finish(true);
  util::ByteWriter w;
  run.serialize(w);
  util::ByteReader r(w.buffer());
  gw::core::Run back = gw::core::Run::deserialize(r);
  EXPECT_EQ(back.pairs, run.pairs);
  EXPECT_EQ(back.compressed, run.compressed);
  EXPECT_EQ(back.raw_bytes, run.raw_bytes);
  EXPECT_EQ(back.data, run.data);
}

TEST(Merge, TwoSortedRunsInterleave) {
  RunBuilder a, b;
  a.add("a", "1");
  a.add("c", "1");
  a.add("e", "1");
  b.add("b", "2");
  b.add("d", "2");
  std::vector<gw::core::Run> runs;
  runs.push_back(a.finish(false));
  runs.push_back(b.finish(false));
  gw::core::Run merged = merge_runs(runs, false);
  EXPECT_EQ(merged.pairs, 5u);
  RunReader reader(merged);
  KV kv;
  std::string keys;
  while (reader.next(&kv)) keys += kv.key;
  EXPECT_EQ(keys, "abcde");
}

TEST(Merge, DuplicateKeysStableByRunIndex) {
  RunBuilder a, b;
  a.add("k", "from-a");
  b.add("k", "from-b");
  std::vector<gw::core::Run> runs;
  runs.push_back(a.finish(false));
  runs.push_back(b.finish(false));
  gw::core::Run merged = merge_runs(runs, false);
  RunReader reader(merged);
  KV kv;
  ASSERT_TRUE(reader.next(&kv));
  EXPECT_EQ(kv.value, "from-a");
  ASSERT_TRUE(reader.next(&kv));
  EXPECT_EQ(kv.value, "from-b");
}

TEST(Merge, EmptyInputsProduceEmptyRun) {
  std::vector<gw::core::Run> runs;
  gw::core::Run merged = merge_runs(runs, false);
  EXPECT_TRUE(merged.empty());
  RunReader reader(merged);
  KV kv;
  EXPECT_FALSE(reader.next(&kv));
}

TEST(Merge, ManyRunsRandomized) {
  util::Rng rng(77);
  std::vector<gw::core::Run> runs;
  std::vector<std::string> all_keys;
  for (int r = 0; r < 10; ++r) {
    std::vector<std::string> keys;
    for (int i = 0; i < 200; ++i) {
      keys.push_back("key" + std::to_string(rng.below(100000)));
    }
    std::sort(keys.begin(), keys.end());
    RunBuilder rb;
    for (const auto& k : keys) {
      rb.add(k, "v");
      all_keys.push_back(k);
    }
    runs.push_back(rb.finish(r % 2 == 0));
  }
  std::sort(all_keys.begin(), all_keys.end());
  gw::core::Run merged = merge_runs(runs, true);
  EXPECT_EQ(merged.pairs, all_keys.size());
  RunReader reader(merged);
  KV kv;
  std::size_t i = 0;
  std::string prev;
  while (reader.next(&kv)) {
    EXPECT_GE(kv.key, prev);
    EXPECT_EQ(kv.key, all_keys[i]);
    prev = std::string(kv.key);
    ++i;
  }
  EXPECT_EQ(i, all_keys.size());
}

}  // namespace
}  // namespace gw::core
