# Empty dependencies file for weblog_analytics.
# This may be replaced when dependencies are built.
