#include "core/kv.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "util/error.h"

namespace gw::core {

namespace {

// Pair framing: varint klen, varint vlen, key bytes, value bytes.
void write_pair(util::ByteWriter& w, std::string_view key,
                std::string_view value) {
  w.put_varint(key.size());
  w.put_varint(value.size());
  w.put_bytes(key.data(), key.size());
  w.put_bytes(value.data(), value.size());
}

}  // namespace

void PairList::add(std::string_view key, std::string_view value) {
  offsets_.push_back(blob_.size());
  util::ByteWriter w(&blob_);
  write_pair(w, key, value);
  payload_bytes_ += key.size() + value.size();
}

KV PairList::get(std::size_t i) const {
  util::ByteReader r(blob_.data() + offsets_[i], blob_.size() - offsets_[i]);
  const std::uint64_t klen = r.get_varint();
  const std::uint64_t vlen = r.get_varint();
  const char* base =
      reinterpret_cast<const char*>(blob_.data()) + offsets_[i] + r.position();
  return KV{std::string_view(base, klen), std::string_view(base + klen, vlen)};
}

std::string_view PairList::key_at(std::uint64_t offset) const {
  util::ByteReader r(blob_.data() + offset, blob_.size() - offset);
  const std::uint64_t klen = r.get_varint();
  (void)r.get_varint();  // vlen
  const char* base =
      reinterpret_cast<const char*>(blob_.data()) + offset + r.position();
  return std::string_view(base, klen);
}

void PairList::sort_by_key() {
  std::stable_sort(offsets_.begin(), offsets_.end(),
                   [this](std::uint64_t a, std::uint64_t b) {
                     return key_at(a) < key_at(b);
                   });
}

void PairList::append(const PairList& other) {
  const std::uint64_t base = blob_.size();
  blob_.insert(blob_.end(), other.blob_.begin(), other.blob_.end());
  offsets_.reserve(offsets_.size() + other.offsets_.size());
  for (std::uint64_t off : other.offsets_) offsets_.push_back(base + off);
  payload_bytes_ += other.payload_bytes_;
}

void PairList::clear() {
  blob_.clear();
  offsets_.clear();
  payload_bytes_ = 0;
}

void Run::serialize(util::ByteWriter& w) const {
  w.put_u8(compressed ? 1 : 0);
  w.put_varint(raw_bytes);
  w.put_varint(pairs);
  w.put_str(std::string_view(reinterpret_cast<const char*>(data.data()),
                             data.size()));
}

Run Run::deserialize(util::ByteReader& r) {
  Run run;
  run.compressed = r.get_u8() != 0;
  run.raw_bytes = r.get_varint();
  run.pairs = r.get_varint();
  const std::string_view payload = r.get_str();
  run.data.assign(payload.begin(), payload.end());
  return run;
}

void RunBuilder::add(std::string_view key, std::string_view value) {
  write_pair(writer_, key, value);
  ++pairs_;
}

Run RunBuilder::finish(bool compress) {
  util::Bytes raw = writer_.take();
  const std::uint64_t raw_size = raw.size();
  if (compress) {
    util::Bytes packed = util::lz_compress(raw);
    return Run(std::move(packed), true, raw_size, pairs_);
  }
  return Run(std::move(raw), false, raw_size, pairs_);
}

RunReader::RunReader(const Run& run) : remaining_(run.pairs) {
  if (run.compressed) {
    storage_ = util::lz_decompress(run.data);
  } else {
    external_ = &run.data;
  }
}

bool RunReader::next(KV* kv) {
  if (remaining_ == 0) return false;
  const util::Bytes& buf = payload();
  util::ByteReader r(buf.data() + pos_, buf.size() - pos_);
  const std::uint64_t klen = r.get_varint();
  const std::uint64_t vlen = r.get_varint();
  const char* base =
      reinterpret_cast<const char*>(buf.data()) + pos_ + r.position();
  kv->key = std::string_view(base, klen);
  kv->value = std::string_view(base + klen, vlen);
  pos_ += r.position() + klen + vlen;
  --remaining_;
  return true;
}

Run merge_runs(const std::vector<const Run*>& inputs, bool compress) {
  struct Source {
    RunReader reader;
    KV current;
    std::size_t index;
  };
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto src = std::make_unique<Source>(Source{RunReader(*inputs[i]), KV{}, i});
    if (src->reader.next(&src->current)) sources.push_back(std::move(src));
  }
  auto cmp = [](const Source* a, const Source* b) {
    if (a->current.key != b->current.key) return a->current.key > b->current.key;
    return a->index > b->index;  // stable: earlier runs first
  };
  std::priority_queue<Source*, std::vector<Source*>, decltype(cmp)> heap(cmp);
  for (auto& s : sources) heap.push(s.get());

  RunBuilder builder;
  while (!heap.empty()) {
    Source* s = heap.top();
    heap.pop();
    builder.add(s->current.key, s->current.value);
    if (s->reader.next(&s->current)) heap.push(s);
  }
  return builder.finish(compress);
}

Run merge_runs(const std::vector<Run>& inputs, bool compress) {
  std::vector<const Run*> ptrs;
  ptrs.reserve(inputs.size());
  for (const auto& r : inputs) ptrs.push_back(&r);
  return merge_runs(ptrs, compress);
}

}  // namespace gw::core
