// Tests for net::Transport: traffic-class accounting, end-of-stream
// framing, credit-based flow control, and receiver protocol checks.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "simnet/transport.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;
using net::NetworkProfile;
using net::TrafficClass;
using net::Transport;

Platform make_platform(int nodes,
                       NetworkProfile profile = NetworkProfile::qdr_infiniband_ipoib()) {
  return Platform(
      ClusterSpec::homogeneous(nodes, NodeSpec::das4_type1(), profile));
}

TEST(Transport, AccountsPerClassAndPort) {
  Platform p = make_platform(2);
  auto traffic = [](Platform& pl) -> sim::Task<> {
    Transport& tp = pl.transport();
    co_await tp.send(0, 1, net::kPortShuffle, TrafficClass::kShuffle,
                     util::Bytes(1000));
    co_await tp.transfer(0, 1, net::kPortDfs, TrafficClass::kDfs, 500);
    co_await tp.send(1, 1, net::kPortShuffle, TrafficClass::kShuffle,
                     util::Bytes(9999));  // local: free and uncounted
  };
  p.sim().spawn(traffic(p));
  p.sim().run();
  Transport& tp = p.transport();
  EXPECT_EQ(tp.bytes_sent(0, TrafficClass::kShuffle), 1000u);
  EXPECT_EQ(tp.bytes_sent(0, TrafficClass::kDfs), 500u);
  EXPECT_EQ(tp.bytes_sent(0, TrafficClass::kControl), 0u);
  EXPECT_EQ(tp.bytes_sent(1, TrafficClass::kShuffle), 0u);
  EXPECT_EQ(tp.total_bytes(TrafficClass::kShuffle), 1000u);
  EXPECT_EQ(tp.total_bytes(TrafficClass::kDfs), 500u);
  EXPECT_EQ(tp.port_bytes(net::kPortShuffle), 1000u);
  EXPECT_EQ(tp.port_bytes(net::kPortDfs), 500u);
  EXPECT_EQ(tp.messages_sent(0, TrafficClass::kShuffle), 1u);
  EXPECT_EQ(tp.port_messages(net::kPortDfs), 1u);
}

TEST(Transport, EosTerminatesReceiverAndReleasesInbox) {
  Platform p = make_platform(3);
  int received = 0;
  bool done = false;
  auto sender = [](Platform& pl, int src) -> sim::Task<> {
    Transport& tp = pl.transport();
    co_await tp.send(src, 0, net::kPortShuffle, TrafficClass::kShuffle,
                     util::Bytes(64));
    co_await tp.finish(src, 0, net::kPortShuffle);
  };
  auto receiver = [](Platform& pl, int* n, bool* done_out) -> sim::Task<> {
    Transport::Receiver rx =
        pl.transport().receiver(0, net::kPortShuffle, /*expected_eos=*/3);
    for (;;) {
      auto msg = co_await rx.recv();
      if (!msg) break;
      ++*n;
    }
    EXPECT_EQ(rx.eos_seen(), 3);
    EXPECT_TRUE(rx.done());
    *done_out = true;
  };
  p.sim().spawn(receiver(p, &received, &done));
  for (int src = 0; src < 3; ++src) p.sim().spawn(sender(p, src));
  p.sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(received, 3);
  // At end-of-stream the drained inbox is dropped from the fabric map.
  EXPECT_EQ(p.fabric().open_inboxes(), 0u);
  // EOS frames are remote control traffic (node 0's own marker is local).
  EXPECT_EQ(p.transport().total_bytes(TrafficClass::kControl), 8u);
}

TEST(Transport, CreditWindowBoundsInFlightBytes) {
  // 1 MiB window, 4 x 512 KiB sends from the same stream: two fill the
  // window and land in the inbox; the other two block until the receiver
  // consumes and returns credits.
  NetworkProfile prof{"test", 1e9, 0.0, 0.0};
  prof.credit_bytes = 1 << 20;
  Platform p = make_platform(2, prof);
  int sends_done = 0;
  auto sender = [](Platform& pl, int* done) -> sim::Task<> {
    co_await pl.transport().send(0, 1, net::kPortShuffle,
                                 TrafficClass::kShuffle,
                                 util::Bytes(512 << 10));
    ++*done;
  };
  for (int i = 0; i < 4; ++i) p.sim().spawn(sender(p, &sends_done));
  p.sim().run();
  EXPECT_EQ(sends_done, 2);
  EXPECT_EQ(p.fabric().inbox(1, net::kPortShuffle).size(), 2u);

  // Draining the stream returns credits and unblocks the remaining sends.
  int received = 0;
  auto receiver = [](Platform& pl, int* n) -> sim::Task<> {
    Transport::Receiver rx =
        pl.transport().receiver(1, net::kPortShuffle, /*expected_eos=*/1);
    for (;;) {
      auto msg = co_await rx.recv();
      if (!msg) break;
      EXPECT_EQ(msg->payload.size(), 512u << 10);
      ++*n;
    }
  };
  p.sim().spawn(receiver(p, &received));
  p.sim().run();  // receiver drains all four, then blocks awaiting EOS
  EXPECT_EQ(sends_done, 4);
  EXPECT_EQ(received, 4);

  auto finisher = [](Platform& pl) -> sim::Task<> {
    co_await pl.transport().finish(0, 1, net::kPortShuffle);
  };
  p.sim().spawn(finisher(p));
  p.sim().run();
  EXPECT_EQ(p.fabric().open_inboxes(), 0u);
}

TEST(Transport, CreditsOffAddsNoThrottling) {
  Platform p = make_platform(2);  // credit_bytes = 0: unbounded in-flight
  int sends_done = 0;
  auto sender = [](Platform& pl, int* done) -> sim::Task<> {
    co_await pl.transport().send(0, 1, net::kPortShuffle,
                                 TrafficClass::kShuffle,
                                 util::Bytes(512 << 10));
    ++*done;
  };
  for (int i = 0; i < 4; ++i) p.sim().spawn(sender(p, &sends_done));
  p.sim().run();
  EXPECT_EQ(sends_done, 4);
  EXPECT_EQ(p.fabric().inbox(1, net::kPortShuffle).size(), 4u);
}

TEST(TransportDeathTest, RecvAfterEndOfStreamAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Platform p = make_platform(1);
        auto script = [](Platform& pl) -> sim::Task<> {
          co_await pl.transport().finish(0, 0, net::kPortShuffle);
          Transport::Receiver rx =
              pl.transport().receiver(0, net::kPortShuffle, 1);
          auto msg = co_await rx.recv();
          EXPECT_FALSE(msg.has_value());
          co_await rx.recv();  // protocol bug: stream already ended
        };
        p.sim().spawn(script(p));
        p.sim().run();
      },
      "recv after end-of-stream");
}

}  // namespace
}  // namespace gw
