// Multi-tenant scheduler tests: concurrent jobs on a shared cluster must
// produce byte-identical outputs to solo runs, stay deterministic across
// GW_THREADS settings, respect admission control, avoid priority
// starvation (aging), and survive a tenant's node crashes.
#include <algorithm>
#include <bit>
#include <cctype>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/workload.h"
#include "core/pipeline.h"
#include "core/sched.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gw::core {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
}

// --- tiny inline wordcount (same app as core_job_test) ---

void wc_map(std::string_view record, MapContext& ctx) {
  std::size_t i = 0;
  while (i < record.size()) {
    while (i < record.size() &&
           !std::isalpha(static_cast<unsigned char>(record[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < record.size() &&
           std::isalpha(static_cast<unsigned char>(record[i]))) {
      ++i;
    }
    if (i > start) {
      ctx.charge_ops(2 * (i - start));
      ctx.emit(record.substr(start, i - start), "1");
    }
  }
}

std::uint64_t parse_count(std::string_view v) {
  std::uint64_t n = 0;
  for (char c : v) n = n * 10 + static_cast<std::uint64_t>(c - '0');
  return n;
}

void wc_sum(std::string_view key, const std::vector<std::string_view>& values,
            ReduceContext& ctx) {
  std::uint64_t total = 0;
  for (auto v : values) total += parse_count(v);
  ctx.charge_ops(values.size());
  ctx.emit(key, std::to_string(total));
}

AppKernels wordcount_app() {
  AppKernels app;
  app.name = "wc-test";
  app.map = wc_map;
  app.combine = wc_sum;
  app.combine_associative = true;  // summing counts re-combines freely
  app.reduce = wc_sum;
  return app;
}

std::string make_text(std::size_t lines, std::uint64_t seed) {
  static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                                 "zeta",  "eta",  "theta", "iota",  "kappa"};
  util::Rng rng(seed);
  util::ZipfSampler zipf(10, 1.0);
  std::string text;
  for (std::size_t l = 0; l < lines; ++l) {
    for (int w = 0; w < 8; ++w) {
      text += kWords[zipf.sample(rng)];
      text += ' ';
    }
    text += '\n';
  }
  return text;
}

std::map<std::string, std::uint64_t> reference_counts(const std::string& text) {
  std::map<std::string, std::uint64_t> counts;
  std::string word;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      word += c;
    } else if (!word.empty()) {
      counts[word]++;
      word.clear();
    }
  }
  if (!word.empty()) counts[word]++;
  return counts;
}

void write_file(Platform& p, dfs::FileSystem& fs, const std::string& path,
                const std::string& contents) {
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   std::string c) -> sim::Task<> {
    co_await f.write(0, pa, util::Bytes(c.begin(), c.end()));
  }(fs, path, contents));
  p.sim().run();
}

util::Bytes read_file(Platform& p, dfs::FileSystem& fs,
                      const std::string& path) {
  util::Bytes out;
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes* o) -> sim::Task<> {
    const int node = f.block_locations(pa, 0).front();
    *o = co_await f.read_all(node, pa);
  }(fs, path, &out));
  p.sim().run();
  return out;
}

// All of a job's output files, path -> raw bytes (sorted by path).
std::map<std::string, util::Bytes> output_bytes(Platform& p,
                                                dfs::FileSystem& fs,
                                                const JobResult& r) {
  std::map<std::string, util::Bytes> out;
  for (const auto& path : r.output_files) {
    out[path] = read_file(p, fs, path);
  }
  return out;
}

std::map<std::string, std::uint64_t> output_counts(Platform& p,
                                                   dfs::FileSystem& fs,
                                                   const JobResult& r) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& path : r.output_files) {
    util::Bytes contents = read_file(p, fs, path);
    for (auto& [k, v] : read_output_file(contents)) {
      counts[k] += parse_count(v);
    }
  }
  return counts;
}

apps::WorkloadConfig small_workload(int jobs, double rate) {
  apps::WorkloadConfig wl;
  wl.jobs = jobs;
  wl.tenants = 2;
  wl.arrival_rate_jobs_per_s = rate;
  wl.seed = 11;
  wl.small_bytes = 192 << 10;
  wl.large_bytes = 512 << 10;
  wl.small_split_bytes = 64 << 10;
  wl.large_split_bytes = 128 << 10;
  return wl;
}

// Solo baseline: the same workload's jobs executed one at a time through
// the legacy single-job entry point, on a fresh identical cluster.
std::vector<std::map<std::string, util::Bytes>> run_solo(
    const apps::WorkloadConfig& wl, int nodes) {
  Platform p = make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  auto requests = apps::make_mixed_workload(p, fs, wl);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  std::vector<std::map<std::string, util::Bytes>> out;
  for (auto& req : requests) {
    JobResult r = rt.run(req.app, req.config);
    out.push_back(output_bytes(p, fs, r));
  }
  return out;
}

struct SharedRun {
  std::vector<std::map<std::string, util::Bytes>> outputs;
  std::vector<double> latencies;
  int resident_peak = 0;
  double makespan = 0;
};

SharedRun run_shared(const apps::WorkloadConfig& wl, int nodes,
                     SchedPolicy policy, int max_resident = 4) {
  Platform p = make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  auto requests = apps::make_mixed_workload(p, fs, wl);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = policy;
  sc.max_resident_jobs = max_resident;
  Scheduler sched(rt, p, fs, sc);
  for (auto& req : requests) sched.submit(std::move(req));
  const double t0 = p.sim().now();
  sched.run_all();
  SharedRun out;
  out.makespan = p.sim().now() - t0;
  out.resident_peak = sched.resident_peak();
  for (const auto& j : sched.results()) {
    EXPECT_FALSE(j.rejected);
    EXPECT_FALSE(j.failed);
    out.outputs.push_back(output_bytes(p, fs, j.result));
    out.latencies.push_back(j.latency_s);
  }
  return out;
}

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

// --- byte identity: solo vs concurrent, across GW_THREADS ---

TEST(Sched, ConcurrentMixedJobsByteIdenticalToSoloAcrossThreadCounts) {
  const int kNodes = 8;
  // High offered load so all four jobs are resident together.
  const apps::WorkloadConfig wl = small_workload(4, 200.0);

  util::ThreadPool::reset_global(1);
  const auto solo = run_solo(wl, kNodes);
  ASSERT_EQ(solo.size(), 4u);
  for (const auto& job : solo) ASSERT_FALSE(job.empty());

  SharedRun base;
  bool have_base = false;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool::reset_global(threads);
    SCOPED_TRACE("GW_THREADS=" + std::to_string(threads));
    SharedRun shared = run_shared(wl, kNodes, SchedPolicy::kFifo);
    ASSERT_EQ(shared.outputs.size(), solo.size());
    EXPECT_GE(shared.resident_peak, 2);
    // Each concurrent job's output files: same names, same bytes as its
    // solo run.
    for (std::size_t i = 0; i < solo.size(); ++i) {
      EXPECT_EQ(shared.outputs[i], solo[i]) << "job " << i;
    }
    // And the whole multi-tenant timeline is GW_THREADS-invariant.
    if (!have_base) {
      base = std::move(shared);
      have_base = true;
    } else {
      EXPECT_EQ(bits(shared.makespan), bits(base.makespan));
      for (std::size_t i = 0; i < base.latencies.size(); ++i) {
        EXPECT_EQ(bits(shared.latencies[i]), bits(base.latencies[i]));
      }
    }
  }
  util::ThreadPool::reset_global(0);
}

TEST(Sched, SingleJobThroughSchedulerMatchesSolo) {
  const int kNodes = 8;
  const apps::WorkloadConfig wl = small_workload(1, 1.0);
  const auto solo = run_solo(wl, kNodes);
  ASSERT_EQ(solo.size(), 1u);
  SharedRun shared = run_shared(wl, kNodes, SchedPolicy::kFifo);
  ASSERT_EQ(shared.outputs.size(), 1u);
  EXPECT_EQ(shared.outputs[0], solo[0]);
  EXPECT_EQ(shared.resident_peak, 1);
}

// --- admission control ---

TEST(Sched, AdmissionControlBoundsResidency) {
  const apps::WorkloadConfig wl = small_workload(4, 200.0);
  SharedRun one = run_shared(wl, 4, SchedPolicy::kFifo, /*max_resident=*/1);
  EXPECT_EQ(one.resident_peak, 1);
  SharedRun two = run_shared(wl, 4, SchedPolicy::kFifo, /*max_resident=*/2);
  EXPECT_LE(two.resident_peak, 2);
}

TEST(Sched, BoundedQueueRejectsOverflow) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  const std::string text = make_text(400, 3);
  write_file(p, fs, "/in/t", text);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.max_resident_jobs = 1;
  sc.max_queued_jobs = 1;
  Scheduler sched(rt, p, fs, sc);
  for (int i = 0; i < 4; ++i) {
    JobRequest req;
    req.name = "wc";
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/j" + std::to_string(i);
    req.config.split_size = 32 << 10;
    req.arrival_s = 0.0001 * i;  // all arrive while job 0 still runs
    sched.submit(std::move(req));
  }
  sched.run_all();
  EXPECT_GT(sched.jobs_rejected(), 0);
  EXPECT_EQ(sched.jobs_failed(), 0);
  int finished = 0;
  for (const auto& j : sched.results()) {
    if (!j.rejected) {
      EXPECT_FALSE(j.failed);
      ++finished;
    }
  }
  EXPECT_EQ(finished + sched.jobs_rejected(), 4);
}

// --- starvation guard: priority aging ---

double low_priority_admit_time(double aging_s) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/t", make_text(600, 5));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = SchedPolicy::kPriority;
  sc.max_resident_jobs = 1;
  sc.priority_aging_s = aging_s;
  Scheduler sched(rt, p, fs, sc);
  // A steady stream of urgent (class 0) jobs...
  for (int i = 0; i < 8; ++i) {
    JobRequest req;
    req.name = "hot";
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/hot" + std::to_string(i);
    req.config.split_size = 32 << 10;
    req.priority = 0;
    req.arrival_s = 0.002 * i;
    sched.submit(std::move(req));
  }
  // ...and one cold batch job (class 1) arriving near the front.
  JobRequest cold;
  cold.name = "cold";
  cold.app = wordcount_app();
  cold.config.input_paths = {"/in/t"};
  cold.config.output_path = "/out/cold";
  cold.config.split_size = 32 << 10;
  cold.priority = 1;
  cold.arrival_s = 0.001;
  const int cold_id = sched.submit(std::move(cold));
  sched.run_all();
  const auto& r = sched.results()[static_cast<std::size_t>(cold_id)];
  EXPECT_FALSE(r.rejected);
  EXPECT_FALSE(r.failed);
  return r.admit_s;
}

TEST(Sched, PriorityAgingGuardsAgainstStarvation) {
  const double strict = low_priority_admit_time(0);
  const double aged = low_priority_admit_time(0.01);
  // Strict classes make the cold job wait out every hot job; aging promotes
  // it past later hot arrivals.
  EXPECT_LT(aged, strict);
}

// --- fair vs fifo: the light tenant's small jobs shouldn't queue behind
// the heavy tenant's backlog ---

TEST(Sched, FairShareHelpsLightTenantOverFifo) {
  auto light_wait = [](SchedPolicy policy) {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    write_file(p, fs, "/in/big", make_text(4000, 7));
    write_file(p, fs, "/in/small", make_text(200, 8));
    GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
    SchedulerConfig sc;
    sc.policy = policy;
    sc.max_resident_jobs = 1;
    Scheduler sched(rt, p, fs, sc);
    std::vector<int> small_ids;
    for (int i = 0; i < 6; ++i) {
      const bool heavy = i % 2 == 0;  // tenant 0 submits big jobs
      JobRequest req;
      req.name = heavy ? "big" : "small";
      req.tenant = heavy ? 0 : 1;
      req.app = wordcount_app();
      req.config.input_paths = {heavy ? "/in/big" : "/in/small"};
      req.config.output_path = "/out/j" + std::to_string(i);
      req.config.split_size = 32 << 10;
      req.arrival_s = 0.001 * i;
      const int id = sched.submit(std::move(req));
      if (!heavy) small_ids.push_back(id);
    }
    sched.run_all();
    double total = 0;
    for (int id : small_ids) {
      total += sched.results()[static_cast<std::size_t>(id)].queue_wait_s;
    }
    return total;
  };
  const double fifo = light_wait(SchedPolicy::kFifo);
  const double fair = light_wait(SchedPolicy::kFair);
  EXPECT_LT(fair, fifo);
}

// --- crashes under multi-tenancy ---

class SchedCrash : public ::testing::TestWithParam<SchedPolicy> {};

TEST_P(SchedCrash, NeighbourCrashDoesNotHangOrCorruptOtherTenants) {
  Platform p = make_platform(4);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  const std::string text = make_text(1500, 9);
  write_file(p, fs, "/in/t", text);
  const auto expected = reference_counts(text);
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = GetParam();
  sc.max_resident_jobs = 4;
  Scheduler sched(rt, p, fs, sc);
  for (int i = 0; i < 4; ++i) {
    JobRequest req;
    req.name = "wc" + std::to_string(i);
    req.tenant = i % 2;
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/j" + std::to_string(i);
    req.config.split_size = 32 << 10;
    req.arrival_s = 0.0005 * i;
    if (i == 0) {
      // Tenant 0's first job kills node 3 early in its map phase; every
      // resident neighbour must run the fault-tolerant protocol
      // (expect_crashes) and finish correctly on the survivors.
      req.config.crash_events.push_back(
          JobConfig::CrashEvent{3, 0.004, -1});
    }
    sched.submit(std::move(req));
  }
  sched.run_all();
  ASSERT_EQ(sched.jobs_failed(), 0);
  ASSERT_EQ(sched.jobs_rejected(), 0);
  for (const auto& j : sched.results()) {
    EXPECT_EQ(output_counts(p, fs, j.result), expected) << j.name;
    EXPECT_GT(j.result.stats.output_pairs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedCrash,
                         ::testing::Values(SchedPolicy::kFifo,
                                           SchedPolicy::kFair,
                                           SchedPolicy::kPriority),
                         [](const ::testing::TestParamInfo<SchedPolicy>& i) {
                           return std::string(sched_policy_name(i.param));
                         });

// --- checkpoint-based preemption ---

struct PreemptOutcome {
  std::map<std::string, util::Bytes> victim_output;
  int preemptions = 0;
  int resumes = 0;
  int sched_preempts = 0;
  int sched_resumes = 0;
  double makespan = 0;
};

// Uninterrupted solo baseline for the preemption victim: same input bytes,
// same config, single-job entry point on an identical fresh cluster.
std::pair<std::map<std::string, util::Bytes>, double> run_victim_solo(
    std::size_t lines) {
  Platform p = make_platform(4);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/big", make_text(lines, 21));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  JobConfig cfg;
  cfg.input_paths = {"/in/big"};
  cfg.output_path = "/out/victim";
  cfg.split_size = 32 << 10;
  JobResult r = rt.run(wordcount_app(), cfg);
  auto bytes = output_bytes(p, fs, r);
  return {std::move(bytes), r.elapsed_seconds};
}

// A class-1 victim starts alone under a preempting priority scheduler; a
// class-0 job arrives at `urgent_arrival_s` and displaces it. Returns the
// victim's final (post-resume) output and the preempt/resume counters.
PreemptOutcome run_preempted(std::size_t lines, double urgent_arrival_s) {
  Platform p = make_platform(4);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/big", make_text(lines, 21));
  write_file(p, fs, "/in/small", make_text(80, 22));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = SchedPolicy::kPriority;
  sc.max_resident_jobs = 1;
  sc.preemption = true;
  Scheduler sched(rt, p, fs, sc);
  JobRequest victim;
  victim.name = "victim";
  victim.priority = 1;
  victim.app = wordcount_app();
  victim.config.input_paths = {"/in/big"};
  victim.config.output_path = "/out/victim";
  victim.config.split_size = 32 << 10;
  const int vid = sched.submit(std::move(victim));
  JobRequest urgent;
  urgent.name = "urgent";
  urgent.priority = 0;
  urgent.app = wordcount_app();
  urgent.config.input_paths = {"/in/small"};
  urgent.config.output_path = "/out/urgent";
  urgent.config.split_size = 32 << 10;
  urgent.arrival_s = urgent_arrival_s;
  sched.submit(std::move(urgent));
  const double t0 = p.sim().now();
  sched.run_all();
  PreemptOutcome out;
  out.makespan = p.sim().now() - t0;
  EXPECT_EQ(sched.jobs_failed(), 0);
  EXPECT_EQ(sched.jobs_rejected(), 0);
  const auto& v = sched.results()[static_cast<std::size_t>(vid)];
  out.preemptions = v.preemptions;
  out.resumes = v.resumes;
  out.sched_preempts = sched.jobs_preempted();
  out.sched_resumes = sched.jobs_resumed();
  out.victim_output = output_bytes(p, fs, v.result);
  return out;
}

// The acceptance matrix: a priority submission displaces the resident
// lower-class job at {early map, mid shuffle, late reduce} points of its
// run, and the displaced job's final output stays byte-identical to the
// uninterrupted solo run at GW_THREADS {1, 2, 8}, with exact counters.
TEST(SchedPreempt, DisplacedJobByteIdenticalAcrossPhasesAndThreadCounts) {
  const std::size_t kLines = 3000;
  util::ThreadPool::reset_global(1);
  const auto [solo, solo_elapsed] = run_victim_solo(kLines);
  ASSERT_FALSE(solo.empty());
  ASSERT_GT(solo_elapsed, 0);

  for (const double frac : {0.1, 0.4, 0.7}) {
    SCOPED_TRACE("urgent arrival at " + std::to_string(frac) +
                 " of the victim's solo runtime");
    PreemptOutcome base;
    bool have_base = false;
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      util::ThreadPool::reset_global(threads);
      SCOPED_TRACE("GW_THREADS=" + std::to_string(threads));
      PreemptOutcome o = run_preempted(kLines, frac * solo_elapsed);
      // Exactly one suspension and one resumed residency.
      EXPECT_EQ(o.preemptions, 1);
      EXPECT_EQ(o.resumes, 1);
      EXPECT_EQ(o.sched_preempts, 1);
      EXPECT_EQ(o.sched_resumes, 1);
      // Same file names, same bytes as the uninterrupted run.
      EXPECT_EQ(o.victim_output, solo);
      // And the whole preempted timeline is GW_THREADS-invariant.
      if (!have_base) {
        base = std::move(o);
        have_base = true;
      } else {
        EXPECT_EQ(bits(o.makespan), bits(base.makespan));
      }
    }
  }
  util::ThreadPool::reset_global(0);
}

TEST(SchedPreempt, FifoNeverRevokes) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/t", make_text(1200, 13));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.policy = SchedPolicy::kFifo;
  sc.max_resident_jobs = 1;
  sc.preemption = true;
  Scheduler sched(rt, p, fs, sc);
  for (int i = 0; i < 3; ++i) {
    JobRequest req;
    req.name = "wc" + std::to_string(i);
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/j" + std::to_string(i);
    req.config.split_size = 32 << 10;
    req.arrival_s = 0.001 * i;
    sched.submit(std::move(req));
  }
  sched.run_all();
  EXPECT_EQ(sched.jobs_preempted(), 0);
  EXPECT_EQ(sched.jobs_resumed(), 0);
  EXPECT_EQ(sched.jobs_failed(), 0);
}

// --- elastic slot shares: the fair policy's small jobs shouldn't tail
// behind a resident large job's whole phase ---

TEST(SchedElastic, FairElasticPreemptionImprovesSmallJobTailLatency) {
  auto small_p99 = [](bool elastic) {
    Platform p = make_platform(4);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    write_file(p, fs, "/in/big", make_text(5000, 17));
    write_file(p, fs, "/in/small", make_text(150, 18));
    GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
    SchedulerConfig sc;
    sc.policy = SchedPolicy::kFair;
    sc.max_resident_jobs = 2;
    sc.preemption = elastic;
    sc.elastic_slots = elastic;
    Scheduler sched(rt, p, fs, sc);
    std::vector<int> small_ids;
    for (int i = 0; i < 6; ++i) {
      const bool heavy = i < 2;  // tenant 0 front-loads two big jobs
      JobRequest req;
      req.name = heavy ? "big" : "small";
      req.tenant = heavy ? 0 : 1;
      req.app = wordcount_app();
      req.config.input_paths = {heavy ? "/in/big" : "/in/small"};
      req.config.output_path = "/out/j" + std::to_string(i);
      req.config.split_size = 32 << 10;
      req.arrival_s = 0.001 * i;
      const int id = sched.submit(std::move(req));
      if (!heavy) small_ids.push_back(id);
    }
    sched.run_all();
    EXPECT_EQ(sched.jobs_failed(), 0);
    double p99 = 0;
    for (int id : small_ids) {
      p99 = std::max(p99,
                     sched.results()[static_cast<std::size_t>(id)].latency_s);
    }
    return p99;
  };
  const double rigid = small_p99(false);
  const double elastic = small_p99(true);
  EXPECT_LT(elastic, rigid);
}

// --- port-window recycling: the old `stride * (id + 1)` scheme walked off
// the end of the port space after enough sequential jobs ---

TEST(Sched, PortWindowsRecycledAcrossManySequentialJobs) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/t", make_text(60, 19));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.max_resident_jobs = 2;
  Scheduler sched(rt, p, fs, sc);
  const int kJobs = 70;  // > 64: past where an unbounded scheme misbehaves
  for (int i = 0; i < kJobs; ++i) {
    JobRequest req;
    req.name = "wc" + std::to_string(i);
    req.app = wordcount_app();
    req.config.input_paths = {"/in/t"};
    req.config.output_path = "/out/j" + std::to_string(i);
    req.config.split_size = 16 << 10;
    req.arrival_s = 0.0005 * i;
    sched.submit(std::move(req));
  }
  sched.run_all();
  EXPECT_EQ(sched.jobs_failed(), 0);
  EXPECT_EQ(sched.jobs_rejected(), 0);
  for (const auto& j : sched.results()) {
    EXPECT_FALSE(j.result.output_files.empty()) << j.name;
  }
  // The port footprint is bounded by peak residency, not job count.
  EXPECT_LE(sched.port_windows_created(), 2);
}

// --- silent combine degradation is surfaced ---

TEST(Sched, CombineDowngradeUnderSharedGovernorIsSurfaced) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/t", make_text(400, 23));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.node_memory_bytes = 64ull << 20;  // shared governor: no combine pool
  Scheduler sched(rt, p, fs, sc);
  JobRequest req;
  req.name = "wc-combine";
  req.app = wordcount_app();
  req.config.input_paths = {"/in/t"};
  req.config.output_path = "/out/j0";
  req.config.split_size = 32 << 10;
  req.config.combine_mode = CombineMode::kNode;
  const int id = sched.submit(std::move(req));
  sched.run_all();
  const auto& r = sched.results()[static_cast<std::size_t>(id)];
  ASSERT_FALSE(r.failed);
  // The job asked for node combining; the shared governor forced it off.
  // That downgrade used to be silent — now it's reported on the job, the
  // result, and the scheduler counter.
  EXPECT_TRUE(r.combine_degraded);
  EXPECT_TRUE(r.result.combine_degraded);
  EXPECT_EQ(sched.combine_degraded_jobs(), 1);
  EXPECT_GT(r.result.stats.output_pairs, 0u);
}

TEST(Sched, PreemptableJobCombineDowngradeIsSurfaced) {
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/t", make_text(400, 27));
  GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  SchedulerConfig sc;
  sc.preemption = true;  // replayable ledger framing excludes combining
  Scheduler sched(rt, p, fs, sc);
  JobRequest req;
  req.name = "wc-combine";
  req.app = wordcount_app();
  req.config.input_paths = {"/in/t"};
  req.config.output_path = "/out/j0";
  req.config.split_size = 32 << 10;
  req.config.combine_mode = CombineMode::kNode;
  const int id = sched.submit(std::move(req));
  sched.run_all();
  const auto& r = sched.results()[static_cast<std::size_t>(id)];
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.combine_degraded);
  EXPECT_EQ(sched.combine_degraded_jobs(), 1);
}

}  // namespace
}  // namespace gw::core
