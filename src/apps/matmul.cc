#include "apps/matmul.h"

#include <string>

#include "util/error.h"
#include "util/hash.h"

namespace gw::apps {

namespace {

// Partial tile value: t*t floats.
std::string encode_tile(const std::vector<float>& tile) {
  std::string out;
  out.reserve(tile.size() * 4);
  for (float f : tile) append_f32(out, f);
  return out;
}

}  // namespace

float matrix_element(std::uint64_t matrix_seed, std::uint32_t row,
                     std::uint32_t col) {
  const std::uint64_t h = util::mix64(
      matrix_seed ^ (static_cast<std::uint64_t>(row) << 32) ^ col);
  // Small magnitudes keep float partial sums well conditioned.
  return static_cast<float>(h % 1000) / 1000.0f - 0.5f;
}

AppSpec matmul(MatmulConfig config) {
  GW_CHECK(config.n % config.tile == 0);
  const std::uint32_t t = config.tile;

  AppSpec spec;
  spec.kernels.name = "matmul";
  spec.kernels.fixed_record_size = config.record_size();

  spec.kernels.map = [t](std::string_view record, core::MapContext& ctx) {
    GW_CHECK(record.size() == 12 + 8ull * t * t);
    const std::uint32_t i = get_be32(record.substr(0, 4));
    const std::uint32_t j = get_be32(record.substr(8, 4));
    const char* a = record.data() + 12;
    const char* b = a + 4ull * t * t;

    // Real tiled multiply: the compute-bound core (2*t^3 flops).
    std::vector<float> c(static_cast<std::size_t>(t) * t, 0.0f);
    for (std::uint32_t r = 0; r < t; ++r) {
      for (std::uint32_t kk = 0; kk < t; ++kk) {
        const float a_rk = read_f32(a + 4ull * (r * t + kk));
        for (std::uint32_t cc = 0; cc < t; ++cc) {
          c[static_cast<std::size_t>(r) * t + cc] +=
              a_rk * read_f32(b + 4ull * (kk * t + cc));
        }
      }
    }
    ctx.charge_ops(2ull * t * t * t);

    std::string key;
    put_be32(key, i);
    put_be32(key, j);
    ctx.emit(key, encode_tile(c));
  };

  auto sum_tiles = [t](std::string_view key,
                       const std::vector<std::string_view>& values,
                       core::ReduceContext& ctx) {
    std::vector<float> acc(static_cast<std::size_t>(t) * t, 0.0f);
    for (auto v : values) {
      GW_CHECK(v.size() == acc.size() * 4);
      for (std::size_t e = 0; e < acc.size(); ++e) {
        acc[e] += read_f32(v.data() + 4 * e);
      }
    }
    ctx.charge_ops(values.size() * acc.size());
    ctx.emit(key, encode_tile(acc));
  };
  spec.kernels.combine = sum_tiles;
  spec.kernels.reduce = sum_tiles;

  // GPU work division: a thread block per result tile (many fine threads);
  // CPU: one thread computes a whole tile (§IV-A2).
  spec.gpu_launch.threads = 0;
  spec.cpu_launch.threads = 0;
  return spec;
}

util::Bytes generate_tile_pairs(const MatmulConfig& config,
                                std::uint64_t seed_a, std::uint64_t seed_b) {
  const std::uint32_t t = config.tile;
  const std::uint32_t grid = config.tiles_per_side();
  util::Bytes data;
  data.reserve(static_cast<std::size_t>(grid) * grid * grid *
               config.record_size());
  auto append_tile = [&](std::uint64_t seed, std::uint32_t tr,
                         std::uint32_t tc) {
    for (std::uint32_t r = 0; r < t; ++r) {
      for (std::uint32_t c = 0; c < t; ++c) {
        const float v = matrix_element(seed, tr * t + r, tc * t + c);
        const auto* bytes = reinterpret_cast<const std::uint8_t*>(&v);
        data.insert(data.end(), bytes, bytes + 4);
      }
    }
  };
  std::string header;
  for (std::uint32_t i = 0; i < grid; ++i) {
    for (std::uint32_t k = 0; k < grid; ++k) {
      for (std::uint32_t j = 0; j < grid; ++j) {
        header.clear();
        put_be32(header, i);
        put_be32(header, k);
        put_be32(header, j);
        data.insert(data.end(), header.begin(), header.end());
        append_tile(seed_a, i, k);
        append_tile(seed_b, k, j);
      }
    }
  }
  return data;
}

std::vector<float> reference_c_tile(const MatmulConfig& config,
                                    std::uint64_t seed_a, std::uint64_t seed_b,
                                    std::uint32_t tile_i,
                                    std::uint32_t tile_j) {
  const std::uint32_t t = config.tile;
  std::vector<float> c(static_cast<std::size_t>(t) * t, 0.0f);
  // Sum over k in TILE order with per-tile partial sums, matching the
  // framework's float summation grouping.
  for (std::uint32_t k = 0; k < config.tiles_per_side(); ++k) {
    std::vector<float> partial(static_cast<std::size_t>(t) * t, 0.0f);
    for (std::uint32_t r = 0; r < t; ++r) {
      for (std::uint32_t kk = 0; kk < t; ++kk) {
        const float a = matrix_element(seed_a, tile_i * t + r, k * t + kk);
        for (std::uint32_t cc = 0; cc < t; ++cc) {
          partial[static_cast<std::size_t>(r) * t + cc] +=
              a * matrix_element(seed_b, k * t + kk, tile_j * t + cc);
        }
      }
    }
    for (std::size_t e = 0; e < c.size(); ++e) c[e] += partial[e];
  }
  return c;
}

std::string c_tile_key(std::uint32_t tile_i, std::uint32_t tile_j) {
  std::string key;
  put_be32(key, tile_i);
  put_be32(key, tile_j);
  return key;
}

}  // namespace gw::apps
