# Empty dependencies file for fig2_pvc.
# This may be replaced when dependencies are built.
