#include "core/api.h"

#include "util/hash.h"

namespace gw::core {

PartitionFn default_hash_partitioner() {
  return [](std::string_view key, std::uint32_t total) -> std::uint32_t {
    return static_cast<std::uint32_t>(util::fnv1a(key) %
                                      static_cast<std::uint64_t>(total));
  };
}

std::vector<std::uint64_t> split_lines(std::string_view chunk) {
  std::vector<std::uint64_t> offsets;
  if (chunk.empty()) return offsets;
  offsets.push_back(0);
  for (std::size_t i = 0; i + 1 < chunk.size(); ++i) {
    if (chunk[i] == '\n') offsets.push_back(i + 1);
  }
  return offsets;
}

}  // namespace gw::core
