// Error handling for the Glasswing runtime.
//
// The framework uses exceptions for unrecoverable configuration and I/O
// errors (per C++ Core Guidelines E.2) and GW_CHECK for internal invariants.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gw::util {

// Thrown for user-visible failures: bad job configuration, missing DFS
// paths, device capacity exceeded, etc.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

[[noreturn]] inline void throw_error(std::string what) {
  throw Error(std::move(what));
}

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "GW_CHECK failed: %s at %s:%d %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}
}  // namespace detail

}  // namespace gw::util

// Internal invariant check; aborts (never throws) so it is usable in
// noexcept coroutine machinery.
#define GW_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::gw::util::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
    }                                                                    \
  } while (0)

#define GW_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::gw::util::detail::check_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                    \
  } while (0)
