// K-Means clustering (KM), one iteration (paper §IV-A2).
//
// Compute-bound: each map work-item assigns one observation to its nearest
// center (k distance computations over d dimensions); the combiner/reducer
// aggregate per-center partial sums and the reduce emits the new center.
// The paper evaluates 2^20+ single-precision points in 4 dimensions with
// 1024 (and 16) centers; centers are broadcast to all nodes (Hadoop uses
// the DistributedCache for the same purpose).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "core/dag.h"
#include "core/job.h"
#include "util/bytes.h"

namespace gw::apps {

struct KmeansConfig {
  int k = 1024;        // number of centers
  int dims = 4;        // dimensions
};

// Point record: dims floats. Value format: dims float partial sums + u32
// count. Reduce emits (center-id, dims float means + u32 count).
AppSpec kmeans(KmeansConfig config, std::vector<float> centers);

// `k * dims` floats, deterministic from the seed, in [0, 100).
std::vector<float> generate_centers(const KmeansConfig& config,
                                    std::uint64_t seed);

// `points * dims` floats as a binary file of fixed-size records.
util::Bytes generate_points(const KmeansConfig& config, std::uint64_t points,
                            std::uint64_t seed);

// Multi-iteration driver (the paper runs one iteration "since this shows
// the performance well"; real uses chain jobs, re-broadcasting the updated
// centers each round like Hadoop's DistributedCache).
struct KmeansIterations {
  std::vector<float> centers;          // final centers (k * dims)
  std::vector<std::uint64_t> counts;   // final per-center membership
  double total_elapsed_seconds = 0;
  int iterations = 0;
};

// Broadcast payload codec for the per-round driver state: k*d f32 centers
// followed by k be64 membership counts.
util::Bytes encode_kmeans_state(const std::vector<float>& centers,
                                const std::vector<std::uint64_t>& counts);
void decode_kmeans_state(const KmeansConfig& config, const util::Bytes& state,
                         std::vector<float>* centers,
                         std::vector<std::uint64_t>* counts);

struct KmeansDagResult {
  KmeansIterations iterations;
  core::DagResult dag;
};

// K-means as a fixed-point DAG loop: one looping round whose map bakes in
// the broadcast centers, with the updated centers extracted from the round
// output and re-broadcast. `edge` picks where each iteration's (tiny)
// center file lives; `pin_inputs` caches the re-read point splits in pinned
// memory so iterations 1..n-1 skip the DFS read path.
KmeansDagResult kmeans_dag(core::GlasswingRuntime& runtime,
                           cluster::Platform& platform, dfs::FileSystem& fs,
                           KmeansConfig config,
                           std::vector<float> initial_centers,
                           const std::string& points_path,
                           const std::string& output_prefix, int iterations,
                           core::JobConfig base,
                           core::EdgeKind edge = core::EdgeKind::kCheckpoint,
                           bool pin_inputs = false,
                           std::uint64_t pin_budget_bytes = 0);

// Legacy entry point; now a thin wrapper over kmeans_dag with checkpoint
// edges and no input pinning (byte-identical outputs and elapsed time).
KmeansIterations kmeans_iterate(core::GlasswingRuntime& runtime,
                                cluster::Platform& platform,
                                dfs::FileSystem& fs, KmeansConfig config,
                                std::vector<float> initial_centers,
                                const std::string& points_path,
                                const std::string& output_prefix,
                                int iterations, core::JobConfig base);

struct KmeansReference {
  std::vector<std::uint64_t> counts;     // per center
  std::vector<float> means;              // k * dims (0 when count == 0)
};

// Direct single-threaded assignment + averaging for verification.
KmeansReference kmeans_reference(const KmeansConfig& config,
                                 const std::vector<float>& centers,
                                 const util::Bytes& points);

}  // namespace gw::apps
