# Empty compiler generated dependencies file for gw_cl.
# This may be replaced when dependencies are built.
