// Glasswing job runtime: the public entry point of the framework.
//
// A GlasswingRuntime binds a cluster Platform, a FileSystem and a compute
// DeviceSpec, and executes MapReduce jobs: on every node it instantiates the
// map pipeline, the intermediate-data manager with its merger threads and
// shuffle receiver, and — once merging finishes — the reduce pipeline
// (execution model of §III: map and merge run concurrently per node; reduce
// starts after the merge phase completes).
//
// Glasswing is "structured in the form of a light-weight software library"
// (§I): construct a runtime, call run(), read the JobResult.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "core/pipeline.h"
#include "gwcl/device.h"
#include "gwdfs/fs.h"

namespace gw::core {

class MemoryGovernor;

// Shared-cluster execution environment a core::Scheduler hands to every
// resident job (run_async): per-node map/reduce slot gates so concurrent
// jobs time-share each node's pipelines, and optionally per-node memory
// governors shared across tenants (one budget per node, not per job).
// Empty vectors mean ungated / per-job governors; a default-constructed
// JobEnv (or none at all) reproduces the single-job data path exactly.
struct JobEnv {
  std::vector<sim::Resource*> map_slots;     // per node; empty = ungated
  std::vector<sim::Resource*> reduce_slots;  // per node; empty = ungated
  std::vector<MemoryGovernor*> governors;    // per node; empty = per-job
  // Elastic mode: the slot vectors are per-JOB pools the scheduler resizes
  // as residency changes, and slots gate individual tasks (one split / one
  // reduce partition per slot) instead of whole phases.
  bool elastic = false;
  // Non-null = the job is preemptable; also carries resume state when the
  // job was previously suspended (preemptions > 0).
  PreemptControl* preempt = nullptr;
};

class GlasswingRuntime {
 public:
  // One compute device per node, built from `device`; CPU-type devices share
  // the node's host cores (so kernels contend with pipeline host threads).
  GlasswingRuntime(cluster::Platform& platform, dfs::FileSystem& fs,
                   cl::DeviceSpec device);

  // Per-phase device selection ("map and reduce tasks can be executed on
  // CPUs or GPUs", §II): e.g. map on the GPU, reduce on the CPU.
  GlasswingRuntime(cluster::Platform& platform, dfs::FileSystem& fs,
                   cl::DeviceSpec map_device, cl::DeviceSpec reduce_device);

  // Heterogeneous clusters ("some, but not all, nodes have GPUs", §II):
  // one device spec per node; the dynamic split scheduler load-balances,
  // so faster nodes naturally process more splits.
  GlasswingRuntime(cluster::Platform& platform, dfs::FileSystem& fs,
                   std::vector<cl::DeviceSpec> per_node_devices);

  // Runs the job to completion on the platform's simulation and returns the
  // measured result. Output correctness: files under config.output_path,
  // one per non-empty partition, readable with read_output_file().
  //
  // `fs_override` replaces the bound filesystem for this job only; the DAG
  // runtime passes its PinnedFs overlay so rounds read and write through
  // the pinned intermediate store. Null = the constructor-bound fs.
  JobResult run(const AppKernels& app, JobConfig config,
                dfs::FileSystem* fs_override = nullptr);

  // Coroutine form of run() for multi-tenant execution (core::Scheduler):
  // N concurrent invocations share the platform's simulation, each confined
  // to its own port namespace (config.port_base) and trace scope. Differences
  // from run(): the caller drives the event loop (this never calls
  // sim.run()), fault teardown and the quiesce assertion are scoped to the
  // job's port range when port_base > 0, and `env` supplies the shared
  // slot gates / governors. With a default config and no env the data path
  // is the same as run()'s.
  sim::Task<JobResult> run_async(AppKernels app, JobConfig config,
                                 dfs::FileSystem* fs_override = nullptr,
                                 const JobEnv* env = nullptr);

  cl::Device& device(int node) { return *map_devices_.at(node); }
  cl::Device& reduce_device(int node) { return *reduce_devices_.at(node); }

 private:
  std::vector<std::unique_ptr<cl::Device>> make_devices(
      const cl::DeviceSpec& spec);

  cluster::Platform& platform_;
  dfs::FileSystem& fs_;
  std::vector<std::unique_ptr<cl::Device>> map_devices_;
  std::vector<std::unique_ptr<cl::Device>> reduce_devices_;
};

}  // namespace gw::core
