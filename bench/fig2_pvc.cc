// Figure 2(a): Pageview Count — Hadoop vs Glasswing (CPU, HDFS) over 1..64
// nodes. Paper input: 30 GB of WikiBench 2007-09 traces; scaled here with
// the same key statistic (sparse URLs, massive key space, large
// intermediate volume). I/O-bound: kernels do little work per record.
#include "apps/pageview.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(24ull << 20);
constexpr std::uint64_t kSplit = 256 << 10;

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_weblog(kInputBytes, 709);

  bench::SeriesTable table("nodes");
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    hadoop::HadoopConfig hcfg;
    hcfg.split_size = kSplit;
    table.add_timed("Hadoop", nodes, [&] {
      return bench::run_hadoop(nodes, apps::pageview_count().kernels, input,
                               hcfg);
    });
    core::JobConfig gcfg;
    gcfg.split_size = kSplit;
    table.add_timed("Glasswing", nodes, [&] {
      return bench::run_glasswing_cpu(nodes, apps::pageview_count().kernels,
                                      input, gcfg);
    });
  }
  table.print("Figure 2(a): PVC, Hadoop vs Glasswing CPU over HDFS");

  std::printf("\nShape check (paper: Glasswing ~2x faster, similar speedup "
              "curves):\n  factor: %.2fx @1 node, %.2fx @16, %.2fx @64\n",
              table.at("Hadoop", 1) / table.at("Glasswing", 1),
              table.at("Hadoop", 16) / table.at("Glasswing", 16),
              table.at("Hadoop", 64) / table.at("Glasswing", 64));

  for (int nodes : {1, 4, 16, 64}) {
    const double h = table.at("Hadoop", nodes);
    const double g = table.at("Glasswing", nodes);
    bench::register_point("PVC/Hadoop/nodes:" + std::to_string(nodes),
                          [h](benchmark::State&) { return h; });
    bench::register_point("PVC/Glasswing/nodes:" + std::to_string(nodes),
                          [g](benchmark::State&) { return g; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
