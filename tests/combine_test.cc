// Hierarchical-combining property tests: node-level and rack-level
// combining must leave the reduce output byte-identical to the legacy
// direct push shuffle — across host thread counts (GW_THREADS), under a
// memory governor, and through a mid-shuffle node crash (including the
// death of a rack aggregator) — while measurably shrinking shuffle
// traffic. Wordcount is the probe app: integer addition makes the
// associativity contract exact, so "byte-identical" is not a tolerance.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/wordcount.h"
#include "core/job.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

constexpr int kNodes = 8;
constexpr int kRackSize = 4;  // two racks; aggregators at nodes 0 and 4

Platform make_platform() {
  net::NetworkProfile profile = net::NetworkProfile::qdr_infiniband_ipoib();
  // One profile for every mode (rack structure is inert for off/node), so
  // byte-identity comparisons never see different network timing models.
  profile.rack_size = kRackSize;
  return Platform(
      ClusterSpec::homogeneous(kNodes, NodeSpec::das4_type1(), profile));
}

void stage(Platform& p, dfs::Dfs& fs, const std::string& path,
           const util::Bytes& data) {
  p.sim().spawn([](dfs::Dfs& f, std::string pa, util::Bytes c) -> sim::Task<> {
    co_await f.write_distributed(pa, std::move(c));
  }(fs, path, data));
  p.sim().run();
}

struct RunOutcome {
  core::JobResult result;
  std::map<std::string, util::Bytes> files;  // output path -> raw bytes
  std::string trace_error;                   // Tracer::validate()
  std::uint64_t combine_spans = 0;           // kCombine spans, all nodes
};

template <typename Tweak>
RunOutcome run_wc(const util::Bytes& text, Tweak tweak) {
  Platform p = make_platform();
  dfs::Dfs fs(p, dfs::DfsConfig{});
  stage(p, fs, "/in", text);
  core::JobConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 64 << 10;
  tweak(cfg);
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  RunOutcome out;
  out.result = rt.run(apps::wordcount().kernels, cfg);
  const auto& tr = p.sim().tracer();
  out.trace_error = tr.validate();
  for (int n = 0; n < kNodes; ++n) {
    out.combine_spans += tr.occupancy(n, "combine.node").spans;
    out.combine_spans += tr.occupancy(n, "combine.rack").spans;
  }
  for (const auto& path : out.result.output_files) {
    util::Bytes contents;
    p.sim().spawn([](dfs::Dfs& f, std::string pa,
                     util::Bytes* o) -> sim::Task<> {
      *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
    }(fs, path, &contents));
    p.sim().run();
    out.files[path] = std::move(contents);
  }
  return out;
}

util::Bytes corpus() { return apps::generate_wiki_text(768 << 10, 97); }

TEST(HierarchicalCombine, ByteIdenticalAcrossModesAndThreadCounts) {
  const util::Bytes text = corpus();
  const RunOutcome base = run_wc(text, [](core::JobConfig&) {});
  ASSERT_FALSE(base.files.empty());
  ASSERT_TRUE(base.trace_error.empty()) << base.trace_error;
  EXPECT_EQ(base.result.stats.combine_in_bytes, 0u);
  EXPECT_EQ(base.combine_spans, 0u);

  for (const int threads : {1, 2, 8}) {
    util::ThreadPool::reset_global(threads);
    for (const auto mode :
         {core::CombineMode::kNode, core::CombineMode::kRack}) {
      SCOPED_TRACE(std::string("mode=") +
                   (mode == core::CombineMode::kNode ? "node" : "rack") +
                   ", GW_THREADS=" + std::to_string(threads));
      const RunOutcome got = run_wc(text, [&](core::JobConfig& cfg) {
        cfg.combine_mode = mode;
      });
      EXPECT_TRUE(got.trace_error.empty()) << got.trace_error;
      EXPECT_EQ(got.files, base.files);
      const auto& s = got.result.stats;
      EXPECT_GT(s.combine_in_bytes, 0u);
      EXPECT_LE(s.combine_out_bytes, s.combine_in_bytes);
      EXPECT_GT(got.combine_spans, 0u);
      if (mode == core::CombineMode::kRack) {
        EXPECT_GT(s.net_rack_agg_bytes, 0u);
      } else {
        EXPECT_EQ(s.net_rack_agg_bytes, 0u);
      }
    }
  }
  util::ThreadPool::reset_global(0);
}

TEST(HierarchicalCombine, ShrinksShuffleTraffic) {
  const util::Bytes text = corpus();
  const RunOutcome off = run_wc(text, [](core::JobConfig&) {});
  const RunOutcome node = run_wc(text, [](core::JobConfig& cfg) {
    cfg.combine_mode = core::CombineMode::kNode;
  });
  const RunOutcome rack = run_wc(text, [](core::JobConfig& cfg) {
    cfg.combine_mode = core::CombineMode::kRack;
  });
  // Node-level combining collapses duplicate keys before the wire; the
  // shuffle traffic class must carry strictly fewer bytes than legacy.
  EXPECT_LT(node.result.stats.net_shuffle_bytes,
            off.result.stats.net_shuffle_bytes);
  // Rack aggregation moves the member->aggregator leg onto the rack-agg
  // class and dedups again before the core switch, so the shuffle-class
  // bytes (aggregator->owner plus intra-rack direct) shrink further.
  EXPECT_LT(rack.result.stats.net_shuffle_bytes,
            node.result.stats.net_shuffle_bytes);
  EXPECT_EQ(node.files, off.files);
  EXPECT_EQ(rack.files, off.files);
}

TEST(HierarchicalCombine, GovernedRunStaysByteIdentical) {
  const util::Bytes text = corpus();
  const RunOutcome base = run_wc(text, [](core::JobConfig&) {});
  const RunOutcome got = run_wc(text, [](core::JobConfig& cfg) {
    cfg.combine_mode = core::CombineMode::kRack;
    cfg.node_memory_bytes = 4 << 20;  // tight: staging must flush early
  });
  EXPECT_TRUE(got.trace_error.empty()) << got.trace_error;
  EXPECT_EQ(got.files, base.files);
  EXPECT_GT(got.result.stats.combine_in_bytes, 0u);
}

TEST(HierarchicalCombine, CrashMidShuffleByteIdentical) {
  const util::Bytes text = corpus();
  const RunOutcome clean = run_wc(text, [](core::JobConfig&) {});
  const double map_end = clean.result.map_phase_seconds;
  const double mid_shuffle =
      map_end + 0.5 * clean.result.merge_delay_seconds;
  // Node 2 is a plain rack member; node 4 is rack 1's aggregator, whose
  // death exercises the members' ledger re-send of extra-rack provenance.
  for (const int victim : {2, 4}) {
    for (const auto mode :
         {core::CombineMode::kNode, core::CombineMode::kRack}) {
      SCOPED_TRACE(std::string("victim=") + std::to_string(victim) +
                   ", mode=" +
                   (mode == core::CombineMode::kNode ? "node" : "rack"));
      const RunOutcome faulty = run_wc(text, [&](core::JobConfig& cfg) {
        cfg.combine_mode = mode;
        cfg.crash_events.push_back({.node = victim, .time = mid_shuffle});
      });
      EXPECT_TRUE(faulty.trace_error.empty()) << faulty.trace_error;
      EXPECT_EQ(faulty.files, clean.files);
      EXPECT_GE(faulty.result.stats.recovery_rounds, 1u);
    }
  }
}

TEST(HierarchicalCombine, SpeculationDisablesCombining) {
  // Speculative clones regroup re-generated runs on other nodes, which
  // would break the all-or-nothing dedup of combined frames; the runtime
  // must normalize combine_mode to off instead of risking it.
  const util::Bytes text = corpus();
  const RunOutcome base = run_wc(text, [](core::JobConfig&) {});
  const RunOutcome got = run_wc(text, [](core::JobConfig& cfg) {
    cfg.combine_mode = core::CombineMode::kRack;
    cfg.speculate = true;
  });
  EXPECT_EQ(got.result.stats.combine_in_bytes, 0u);
  EXPECT_EQ(got.combine_spans, 0u);
  EXPECT_EQ(got.files, base.files);
}

}  // namespace
}  // namespace gw
