
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/offload_test.cc" "tests/CMakeFiles/offload_test.dir/offload_test.cc.o" "gcc" "tests/CMakeFiles/offload_test.dir/offload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/gw_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/apps/CMakeFiles/gw_apps.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/gw_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gwdfs/CMakeFiles/gw_dfs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gwcl/CMakeFiles/gw_cl.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/gw_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simnet/CMakeFiles/gw_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
