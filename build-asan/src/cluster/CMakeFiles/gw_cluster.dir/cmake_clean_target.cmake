file(REMOVE_RECURSE
  "libgw_cluster.a"
)
