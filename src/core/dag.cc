#include "core/dag.h"

#include <utility>

#include "simnet/transport.h"
#include "util/error.h"

namespace gw::core {

namespace {

sim::Task<> read_file_task(dfs::FileSystem& fs, std::string path,
                           util::Bytes* out) {
  // Driver readback from the first block holder (a pinned file reads
  // locally on its host for free; a checkpointed file pays the DFS path).
  *out = co_await fs.read_all(fs.block_locations(path, 0).front(), path);
}

sim::Task<> broadcast_task(cluster::Platform& platform, int src, int port,
                           std::uint64_t bytes) {
  for (int dst = 0; dst < platform.num_nodes(); ++dst) {
    if (dst == src || !platform.sim().node_alive(dst)) continue;
    try {
      co_await platform.transport().transfer(src, dst, port,
                                             net::TrafficClass::kControl,
                                             bytes);
    } catch (const net::NodeDownError&) {
      // A crash raced the broadcast; the dead node never joins the next
      // round, so its missing copy is moot.
    }
  }
}

}  // namespace

JobDag::JobDag(GlasswingRuntime& runtime, cluster::Platform& platform,
               dfs::FileSystem& fs, DagConfig config)
    : runtime_(runtime), platform_(platform), config_(std::move(config)) {
  std::uint64_t budget = config_.pin_budget_bytes;
  if (budget == 0 && config_.base.governed()) {
    // Mirror the memory governor's store share: pinned intermediates live
    // where the intermediate store's run cache would.
    budget = config_.base.node_memory_bytes * 2 / 5;
  }
  pinned_ = std::make_unique<dfs::PinnedFs>(platform_, fs, budget);
  pinned_->set_cache_reads(config_.pin_inputs);
}

void JobDag::add_round(RoundSpec spec) {
  GW_CHECK_MSG(!loop_, "add_round after until()");
  GW_CHECK_MSG(spec.app != nullptr, "DAG round needs an app factory");
  specs_.push_back(std::move(spec));
}

void JobDag::until(ConvergedFn converged, int max_iterations) {
  GW_CHECK_MSG(!specs_.empty(), "until() needs a round to repeat");
  GW_CHECK_MSG(max_iterations > 0, "until() needs a positive iteration cap");
  loop_ = true;
  converged_ = std::move(converged);
  max_iterations_ = max_iterations;
}

bool JobDag::inputs_available(const std::vector<std::string>& paths) const {
  for (const auto& p : paths) {
    if (pinned_->lost(p)) return false;
    if (pinned_->pinned(p)) continue;
    if (!pinned_->exists(p)) return false;
    // A base-fs file can exist in metadata with dead replicas: require a
    // live holder for every block.
    const std::uint64_t size = pinned_->file_size(p);
    const std::uint64_t bs = pinned_->block_size();
    for (std::uint64_t off = 0; off < size; off += bs) {
      if (pinned_->block_locations(p, off / bs).empty()) return false;
    }
  }
  return true;
}

RoundPairs JobDag::read_pairs(const std::vector<std::string>& files) {
  RoundPairs all;
  auto& sim = platform_.sim();
  for (const auto& path : files) {
    util::Bytes contents;
    sim.spawn(read_file_task(*pinned_, path, &contents));
    sim.run();
    auto pairs = read_output_file(contents);
    all.insert(all.end(), std::make_move_iterator(pairs.begin()),
               std::make_move_iterator(pairs.end()));
  }
  return all;
}

void JobDag::broadcast_payload(std::uint64_t bytes) {
  if (bytes == 0) return;
  auto& sim = platform_.sim();
  int src = -1;
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    if (sim.node_alive(n)) {
      src = n;
      break;
    }
  }
  if (src < 0) return;
  // Splitter/centroid broadcasts live inside the DAG's port namespace when
  // the base config is scheduled (port_base > 0); legacy DAGs keep the
  // shared kPortBroadcast.
  sim.spawn(broadcast_task(platform_, src,
                           config_.base.port_base + net::kPortBroadcast,
                           bytes));
  sim.run();
}

void JobDag::fire_edge_crashes(int round, std::vector<bool>& used) {
  auto& sim = platform_.sim();
  bool any = false;
  for (std::size_t i = 0; i < config_.edge_crashes.size(); ++i) {
    if (used[i]) continue;
    const DagConfig::EdgeCrash& ec = config_.edge_crashes[i];
    if (ec.after_round != round) continue;
    used[i] = true;
    GW_CHECK_MSG(ec.node >= 0 && ec.node < platform_.num_nodes(),
                 "edge crash on a node outside the platform");
    if (!sim.node_alive(ec.node)) continue;
    sim.schedule_node_crash(ec.node, 0.0, ec.restart_after_s);
    any = true;
  }
  // Land the crash (and the DFS replica pruning its listeners do) before
  // the next round plans its splits.
  if (any) sim.run();
}

void JobDag::rewind(std::vector<Done>& done, DagResult& out, DagRoundState& st,
                    int& spec_i, int& iter,
                    const std::vector<std::string>& failed_inputs,
                    const std::vector<std::string>& failed_outputs) {
  ++out.replays;
  GW_CHECK_MSG(out.replays <= config_.max_replays,
               "DAG replay limit exceeded: pinned inputs keep vanishing");
  // The failed round's committed partitions were produced without the lost
  // splits: delete the garbage before the replay re-writes the paths.
  for (const auto& f : failed_outputs) pinned_->remove(f);
  // Back to the newest round whose inputs all still exist; the failed
  // round itself (index done.size()) qualifies when the loss was confined
  // to its outputs.
  int target = static_cast<int>(done.size());
  if (!inputs_available(failed_inputs)) {
    target = static_cast<int>(done.size()) - 1;
    while (target >= 0 && !inputs_available(done[static_cast<std::size_t>(
                              target)].inputs)) {
      --target;
    }
    GW_CHECK_MSG(target >= 0, "DAG unrecoverable: round-0 inputs lost");
  }
  while (static_cast<int>(done.size()) > target) {
    Done d = std::move(done.back());
    done.pop_back();
    out.rounds.pop_back();
    for (const auto& f : d.outputs) pinned_->remove(f);
    st = std::move(d.entry);
    spec_i = d.spec;
    iter = d.iteration;
  }
}

DagResult JobDag::run() {
  GW_CHECK_MSG(!specs_.empty(), "DAG has no rounds");
  auto& sim = platform_.sim();
  // One trace per DAG; rounds keep appending (job.cc resets occupancy, not
  // the span ring, when config.dag_round >= 0).
  sim.tracer().clear();
  const double t0 = sim.now();

  DagResult out;
  std::vector<Done> done;
  std::vector<bool> round_used(config_.round_crashes.size(), false);
  std::vector<bool> edge_used(config_.edge_crashes.size(), false);
  DagRoundState st;
  st.broadcast = config_.initial_broadcast;
  int spec_i = 0;
  int iter = 0;

  for (;;) {
    const RoundSpec& spec = specs_[static_cast<std::size_t>(spec_i)];
    st.round = static_cast<int>(done.size());
    st.iteration = iter;

    std::vector<std::string> inputs =
        spec.inputs ? spec.inputs(st)
                    : (st.round == 0 ? config_.input_paths : st.prev_outputs);
    GW_CHECK_MSG(!inputs.empty(), "DAG round has no inputs");
    if (!inputs_available(inputs)) {
      // An inter-round crash took pinned inputs before the round started.
      rewind(done, out, st, spec_i, iter, inputs, {});
      continue;
    }

    JobConfig cfg = config_.base;
    cfg.input_paths = inputs;
    cfg.output_path = config_.output_root + "/" +
                      (spec.name.empty() ? "round" : spec.name) + "-" +
                      std::to_string(st.round);
    cfg.dag_round = st.round;
    cfg.crash_events.clear();
    for (std::size_t c = 0; c < config_.round_crashes.size(); ++c) {
      if (round_used[c] || config_.round_crashes[c].round != st.round) {
        continue;
      }
      cfg.crash_events.push_back(config_.round_crashes[c].event);
      round_used[c] = true;
    }
    if (spec.tune) spec.tune(cfg, st);

    AppKernels app = spec.app(st);
    pinned_->set_pin_writes(spec.edge == EdgeKind::kPinned);
    JobResult jr = runtime_.run(app, cfg, pinned_.get());
    ++out.rounds_executed;

    if (jr.stats.input_splits_lost > 0) {
      // Pinned inputs died mid-round: the round completed degraded over the
      // surviving splits, so its output is garbage — regenerate the lost
      // edge and replay.
      rewind(done, out, st, spec_i, iter, inputs, jr.output_files);
      continue;
    }

    const bool is_last = spec_i + 1 == static_cast<int>(specs_.size());
    const bool looping = loop_ && is_last;
    RoundPairs pairs;
    if (spec.broadcast || (looping && converged_)) {
      pairs = read_pairs(jr.output_files);
    }
    util::Bytes payload = st.broadcast;
    if (spec.broadcast) {
      payload = spec.broadcast(st, pairs);
      broadcast_payload(payload.size());
    }

    Done d;
    d.spec = spec_i;
    d.iteration = iter;
    d.entry = st;
    d.inputs = inputs;
    d.outputs = jr.output_files;
    done.push_back(std::move(d));
    DagRoundResult rr;
    rr.name = spec.name;
    rr.round = st.round;
    rr.iteration = iter;
    rr.edge = spec.edge;
    rr.job = jr;
    rr.outputs = jr.output_files;
    out.rounds.push_back(std::move(rr));

    fire_edge_crashes(st.round, edge_used);

    DagRoundState next;
    next.round = st.round + 1;
    next.broadcast = payload;
    next.prev_outputs = jr.output_files;
    bool finished = false;
    if (looping) {
      const int iters_done = iter + 1;
      out.iterations = iters_done;
      const bool conv = converged_ && converged_(iters_done, payload, pairs);
      if (conv || iters_done >= max_iterations_) {
        finished = true;
      } else {
        next.iteration = iter + 1;
        ++iter;
      }
    } else if (is_last) {
      finished = true;
    } else {
      ++spec_i;
      iter = 0;
    }
    st = std::move(next);
    if (finished) break;
  }

  out.final_outputs = done.back().outputs;
  out.final_broadcast = st.broadcast;
  out.pinned_peak_bytes = pinned_->peak_pinned_bytes();
  out.pin_spills = pinned_->pin_spills();
  out.cache_hit_bytes = pinned_->cache_hit_bytes();
  out.elapsed_seconds = sim.now() - t0;
  return out;
}

}  // namespace gw::core
