// gwrun: command-line driver for the Glasswing reproduction.
//
// Runs any of the six bundled applications on a simulated cluster with
// configurable shape, device and pipeline knobs, and prints the job report.
//
//   gwrun --app=wc --nodes=8 --device=gtx480 --mb=16
//   gwrun --app=terasort --nodes=16 --records=200000 --buffering=3
//   gwrun --app=kmeans --device=k20m --runtime=hadoop   # baseline compare
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/blackscholes.h"
#include "apps/kmeans.h"
#include "apps/matmul.h"
#include "apps/pageview.h"
#include "apps/prefixsum.h"
#include "apps/terasort.h"
#include "apps/wordcount.h"
#include "apps/workload.h"
#include "baselines/hadoop/hadoop.h"
#include "core/job.h"
#include "core/report.h"

using namespace gw;

namespace {

struct Flags {
  std::string app = "wc";
  std::string device = "cpu";
  std::string runtime = "glasswing";
  int nodes = 4;
  int mb = 16;
  std::uint64_t records = 100000;  // terasort/kmeans/blackscholes items
  int buffering = 2;
  int partitions = 8;
  int partitioner_threads = 4;
  std::string collector = "hash";
  bool combiner = true;
  std::uint64_t split_kb = 256;
  std::uint64_t seed = 42;
  std::string trace_path;  // empty = no export
  // Network: profile plus topology/transport knobs. Defaults reproduce the
  // legacy fabric (infinite bisection, unchunked, unbounded in-flight), so
  // default output stays byte-identical.
  std::string net = "ipoib";
  double oversub = 0;
  std::uint64_t chunk_kb = 0;
  std::uint64_t credit_kb = 0;
  int rack_size = 0;
  bool net_report = false;
  // Hierarchical combining: off (legacy, byte-identical event order), node
  // (per-node combiner ahead of the wire), rack (plus per-rack aggregation;
  // needs --rack-size to describe the topology).
  std::string combine = "off";
  // Fault injection: scheduled node crashes/restarts and straggler
  // speculation. All empty/false by default, so fault-free runs add zero
  // simulation events and keep golden stdout byte-identical.
  std::vector<core::JobConfig::CrashEvent> crash_events;
  std::vector<std::pair<int, double>> restarts;
  bool speculate = false;
  // Memory governor: 0 = ungoverned (legacy unbounded buffers), so default
  // runs stay byte-identical. --mem-mb arms budgeted spills + the
  // multi-level external merge; --spill-bw overrides spill disk bandwidth.
  std::uint64_t mem_mb = 0;
  double spill_bw_mb = 0;
  // Multi-round DAG mode: --rounds chains jobs through core::JobDag
  // (kmeans: N fixed-point iterations; terasort: the 2-round sample sort;
  // prefixsum always runs its 3-round chain). --pin-intermediates keeps
  // inter-round data in node memory instead of gwdfs; --kill-round=R
  // scopes --kill-node events to logical round R.
  int rounds = 0;
  bool pin_intermediates = false;
  int kill_round = -1;
  // Multi-tenant mode (core::Scheduler): --tenants > 0 replaces the single
  // job with a seeded mixed workload (wc/pvc/terasort, small and large)
  // arriving open-loop at --arrival-rate and queued under --sched. --app
  // and the input-size flags are ignored in this mode.
  int tenants = 0;
  int jobs = 8;
  double arrival_rate = 0.5;  // jobs/s offered load
  std::string sched = "fifo";
  int max_resident = 4;
  bool preempt = false;  // checkpoint-based preemption of residents
  bool elastic = false;  // elastic per-job slot shares
};

void usage() {
  std::printf(
      "gwrun — run a Glasswing job on a simulated cluster\n\n"
      "  --app=wc|pvc|terasort|kmeans|matmul|blackscholes|prefixsum\n"
      "  --runtime=glasswing|hadoop      comparison baseline\n"
      "  --device=cpu|gtx480|gtx680|k20m|phi   (glasswing only)\n"
      "  --nodes=N          cluster size (default 4)\n"
      "  --mb=N             text input size in MiB (wc/pvc)\n"
      "  --records=N        record count (terasort/kmeans/blackscholes)\n"
      "  --buffering=1|2|3  pipeline buffering level\n"
      "  --collector=hash|pool  map output collection\n"
      "  --no-combiner      disable the combiner\n"
      "  --partitions=P --partitioner-threads=N --split-kb=K --seed=S\n"
      "  --net=ipoib|gbe    interconnect profile (QDR InfiniBand IPoIB or\n"
      "                     1 Gb Ethernet; default ipoib)\n"
      "  --oversub=F        core-switch bisection oversubscription factor\n"
      "                     (0 = infinite bisection, the legacy model)\n"
      "  --chunk-kb=K       chunk messages larger than K KiB on the wire\n"
      "                     (0 = unchunked)\n"
      "  --credit-kb=K      per-peer shuffle credit window in KiB\n"
      "                     (0 = unbounded in-flight data)\n"
      "  --rack-size=N      nodes per rack: intra-rack traffic bypasses the\n"
      "                     core switch (0 = flat topology)\n"
      "  --combine=off|node|rack  hierarchical combining: node-level\n"
      "                     combiner and/or rack-level aggregation ahead of\n"
      "                     the core switch (rack needs --rack-size; default\n"
      "                     off = legacy push shuffle)\n"
      "  --net-report       print the remote-traffic split (shuffle/DFS/\n"
      "                     control bytes, plus rack_agg when combining)\n"
      "                     after the job report\n"
      "  --kill-node=ID@T   crash node ID at simulated time T (suffix ms or\n"
      "                     s, e.g. 2@50ms); repeatable, glasswing only\n"
      "  --restart-node=ID@T  revive a killed node (empty disks) at time T;\n"
      "                     it only rejoins as a DFS re-replication target\n"
      "  --speculate        clone straggler tasks near the end of the map\n"
      "                     phase; first finisher wins\n"
      "  --mem-mb=N         per-node memory budget in MiB (0 = unlimited);\n"
      "                     arms the memory governor: budgeted spills and\n"
      "                     the multi-level external merge\n"
      "  --spill-bw=MBps    disk bandwidth override for spill/merge i/o\n"
      "                     (0 = the node's disk spec)\n"
      "  --rounds=N         multi-round DAG mode (core::JobDag): kmeans runs\n"
      "                     N fixed-point iterations, terasort its 2-round\n"
      "                     sample sort, prefixsum its 3-round chain\n"
      "  --pin-intermediates  keep inter-round data pinned in node memory\n"
      "                     (and cache re-read inputs) instead of writing it\n"
      "                     back to gwdfs between rounds\n"
      "  --kill-round=R     scope --kill-node crashes to logical round R\n"
      "                     (times relative to that round's start)\n"
      "  --tenants=N        multi-tenant mode: N tenants submit a seeded\n"
      "                     mixed workload (wc/pvc/terasort) of --jobs jobs\n"
      "                     to one shared cluster (core::Scheduler)\n"
      "  --jobs=N           jobs in the multi-tenant workload (default 8)\n"
      "  --arrival-rate=R   offered load in jobs/s, Poisson arrivals\n"
      "                     (default 0.5)\n"
      "  --sched=fifo|fair|priority  admission policy (default fifo)\n"
      "  --max-resident=N   concurrent-job cap (default 4); --mem-mb gives\n"
      "                     residents a SHARED per-node memory budget\n"
      "  --preempt          checkpoint-based preemption: a deserving arrival\n"
      "                     suspends a resident at its next task boundary\n"
      "                     (committed map output stays durable; the\n"
      "                     remainder requeues and replays the ledger)\n"
      "  --elastic          elastic slot shares: per-job per-node slot pools\n"
      "                     grow/shrink at task boundaries as residency\n"
      "                     changes (fair = equal shares; priority steals)\n"
      "  --trace=FILE       export the run's simulated timeline as Chrome\n"
      "                     trace_event JSON (open in about:tracing/Perfetto)\n");
}

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

// Parses "ID@T" where T takes an optional ms/s suffix (no suffix: seconds),
// e.g. "2@50ms" or "0@0.3s". Exits with a message on malformed input.
std::pair<int, double> parse_node_at(const std::string& v, const char* flag) {
  const std::size_t at = v.find('@');
  char* end = nullptr;
  if (at != std::string::npos) {
    const int node = static_cast<int>(std::strtol(v.c_str(), &end, 10));
    if (end == v.c_str() + at) {
      const std::string t = v.substr(at + 1);
      double secs = std::strtod(t.c_str(), &end);
      if (end != t.c_str()) {
        const std::string suffix = end;
        if (suffix == "ms") {
          secs /= 1000.0;
        } else if (!suffix.empty() && suffix != "s") {
          end = nullptr;
        }
        if (end != nullptr && secs >= 0) return {node, secs};
      }
    }
  }
  std::fprintf(stderr, "%s expects ID@TIME (e.g. 2@50ms), got '%s'\n", flag,
               v.c_str());
  std::exit(2);
}

cl::DeviceSpec device_spec(const std::string& name) {
  if (name == "cpu") return cl::DeviceSpec::cpu_dual_e5620();
  if (name == "gtx480") return cl::DeviceSpec::gtx480();
  if (name == "gtx680") return cl::DeviceSpec::gtx680();
  if (name == "k20m") return cl::DeviceSpec::k20m();
  if (name == "phi") return cl::DeviceSpec::xeon_phi_5110p();
  std::fprintf(stderr, "unknown device '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--app", &v)) flags.app = v;
    else if (parse_flag(argv[i], "--device", &v)) flags.device = v;
    else if (parse_flag(argv[i], "--runtime", &v)) flags.runtime = v;
    else if (parse_flag(argv[i], "--nodes", &v)) flags.nodes = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--mb", &v)) flags.mb = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--records", &v)) flags.records = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(argv[i], "--buffering", &v)) flags.buffering = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--partitions", &v)) flags.partitions = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--partitioner-threads", &v)) flags.partitioner_threads = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--collector", &v)) flags.collector = v;
    else if (parse_flag(argv[i], "--split-kb", &v)) flags.split_kb = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(argv[i], "--seed", &v)) flags.seed = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(argv[i], "--trace", &v)) flags.trace_path = v;
    else if (parse_flag(argv[i], "--net", &v)) flags.net = v;
    else if (parse_flag(argv[i], "--oversub", &v)) flags.oversub = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--chunk-kb", &v)) flags.chunk_kb = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(argv[i], "--credit-kb", &v)) flags.credit_kb = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(argv[i], "--rack-size", &v)) flags.rack_size = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--combine", &v)) flags.combine = v;
    else if (parse_flag(argv[i], "--mem-mb", &v)) flags.mem_mb = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(argv[i], "--spill-bw", &v)) flags.spill_bw_mb = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--rounds", &v)) flags.rounds = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--tenants", &v)) flags.tenants = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--jobs", &v)) flags.jobs = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--arrival-rate", &v)) flags.arrival_rate = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--sched", &v)) flags.sched = v;
    else if (parse_flag(argv[i], "--max-resident", &v)) flags.max_resident = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--kill-round", &v)) flags.kill_round = std::atoi(v.c_str());
    else if (std::strcmp(argv[i], "--pin-intermediates") == 0) flags.pin_intermediates = true;
    else if (parse_flag(argv[i], "--kill-node", &v)) {
      const auto [node, t] = parse_node_at(v, "--kill-node");
      flags.crash_events.push_back(core::JobConfig::CrashEvent{node, t, -1});
    }
    else if (parse_flag(argv[i], "--restart-node", &v)) {
      flags.restarts.push_back(parse_node_at(v, "--restart-node"));
    }
    else if (std::strcmp(argv[i], "--preempt") == 0) flags.preempt = true;
    else if (std::strcmp(argv[i], "--elastic") == 0) flags.elastic = true;
    else if (std::strcmp(argv[i], "--speculate") == 0) flags.speculate = true;
    else if (std::strcmp(argv[i], "--net-report") == 0) flags.net_report = true;
    else if (std::strcmp(argv[i], "--no-combiner") == 0) flags.combiner = false;
    else if (std::strcmp(argv[i], "--help") == 0) { usage(); return 0; }
    else { std::fprintf(stderr, "unknown flag %s\n\n", argv[i]); usage(); return 2; }
  }

  // Build the workload.
  util::Bytes input;
  apps::AppSpec app;
  const std::uint64_t text_bytes = static_cast<std::uint64_t>(flags.mb) << 20;
  if (flags.app == "wc") {
    app = apps::wordcount();
    input = apps::generate_wiki_text(text_bytes, flags.seed);
  } else if (flags.app == "pvc") {
    app = apps::pageview_count();
    input = apps::generate_weblog(text_bytes, flags.seed);
  } else if (flags.app == "terasort") {
    app = apps::terasort();
    input = apps::generate_terasort(flags.records, flags.seed);
  } else if (flags.app == "kmeans") {
    apps::KmeansConfig km;
    app = apps::kmeans(km, apps::generate_centers(km, flags.seed));
    input = apps::generate_points(km, flags.records, flags.seed + 1);
  } else if (flags.app == "matmul") {
    apps::MatmulConfig mm{.n = 512, .tile = 128};
    app = apps::matmul(mm);
    input = apps::generate_tile_pairs(mm, flags.seed, flags.seed + 1);
  } else if (flags.app == "blackscholes") {
    app = apps::black_scholes();
    input = apps::generate_options(flags.records, flags.seed);
  } else if (flags.app == "prefixsum") {
    // DAG-only workload; the kernels are built per round by the driver.
    input = apps::generate_prefix_input(flags.records, flags.seed);
  } else {
    std::fprintf(stderr, "unknown app '%s'\n\n", flags.app.c_str());
    usage();
    return 2;
  }

  net::NetworkProfile network;
  if (flags.net == "ipoib") {
    network = net::NetworkProfile::qdr_infiniband_ipoib();
  } else if (flags.net == "gbe") {
    network = net::NetworkProfile::gigabit_ethernet();
  } else {
    std::fprintf(stderr, "unknown network profile '%s'\n", flags.net.c_str());
    return 2;
  }
  network.bisection_oversubscription = flags.oversub;
  network.max_chunk_bytes = flags.chunk_kb << 10;
  network.credit_bytes = flags.credit_kb << 10;
  network.rack_size = flags.rack_size;

  core::CombineMode combine_mode = core::CombineMode::kOff;
  if (flags.combine == "node") {
    combine_mode = core::CombineMode::kNode;
  } else if (flags.combine == "rack") {
    combine_mode = core::CombineMode::kRack;
  } else if (flags.combine != "off") {
    std::fprintf(stderr, "unknown combine mode '%s'\n", flags.combine.c_str());
    return 2;
  }

  cluster::Platform platform(cluster::ClusterSpec::homogeneous(
      flags.nodes, cluster::NodeSpec::das4_type1(), std::move(network)));
  dfs::Dfs fs(platform, dfs::DfsConfig{});

  if (flags.tenants > 0) {
    if (flags.runtime == "hadoop") {
      std::fprintf(stderr, "--tenants needs the glasswing runtime\n");
      return 2;
    }
    if (flags.sched != "fifo" && flags.sched != "fair" &&
        flags.sched != "priority") {
      std::fprintf(stderr, "unknown policy '%s' (fifo|fair|priority)\n",
                   flags.sched.c_str());
      return 2;
    }
    apps::WorkloadConfig wl;
    wl.jobs = flags.jobs;
    wl.tenants = flags.tenants;
    wl.arrival_rate_jobs_per_s = flags.arrival_rate;
    wl.seed = flags.seed;
    std::vector<core::JobRequest> requests =
        apps::make_mixed_workload(platform, fs, wl);

    core::GlasswingRuntime rt(platform, fs, device_spec(flags.device));
    core::SchedulerConfig sc;
    sc.policy = core::parse_sched_policy(flags.sched);
    sc.max_resident_jobs = flags.max_resident;
    sc.node_memory_bytes = flags.mem_mb << 20;
    sc.preemption = flags.preempt;
    sc.elastic_slots = flags.elastic;
    core::Scheduler sched(rt, platform, fs, sc);
    for (auto& req : requests) sched.submit(std::move(req));
    const double t0 = platform.sim().now();
    sched.run_all();
    const double makespan = platform.sim().now() - t0;

    std::printf("%d tenants, %d jobs on %d nodes (%s), policy %s, "
                "%.2f jobs/s offered\n",
                flags.tenants, flags.jobs, flags.nodes, flags.device.c_str(),
                flags.sched.c_str(), flags.arrival_rate);
    for (const auto& j : sched.results()) {
      if (j.rejected) {
        std::printf("job %d [%s] tenant=%d REJECTED at %.3fs\n", j.job_id,
                    j.name.c_str(), j.tenant, j.arrival_s);
        continue;
      }
      std::string extra;
      if (j.preemptions > 0) {
        extra += " preempted=" + std::to_string(j.preemptions);
      }
      if (j.combine_degraded) extra += " combine-degraded";
      if (j.failed) extra += " FAILED";
      std::printf("job %d [%s] tenant=%d arrive=%.3fs wait=%.3fs "
                  "latency=%.3fs%s\n",
                  j.job_id, j.name.c_str(), j.tenant, j.arrival_s,
                  j.queue_wait_s, j.latency_s, extra.c_str());
    }
    for (const auto& t : sched.tenant_stats()) {
      std::printf("tenant %d: jobs=%d service=%.3fs wait=%.3fs\n", t.tenant,
                  t.jobs_finished, t.service_s, t.wait_s);
    }
    core::print_sched_line(sched, sc.policy, makespan);
    if (!flags.trace_path.empty()) {
      if (!platform.sim().tracer().save_chrome_json(flags.trace_path)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     flags.trace_path.c_str());
        return 1;
      }
      std::printf("trace written to %s\n", flags.trace_path.c_str());
    }
    return sched.jobs_failed() == 0 ? 0 : 1;
  }

  platform.sim().spawn([](dfs::Dfs& f, util::Bytes data) -> sim::Task<> {
    co_await f.write_distributed("/in/data", std::move(data));
  }(fs, std::move(input)));
  platform.sim().run();

  const bool dag_mode = flags.rounds > 0 || flags.app == "prefixsum";
  if (flags.app == "terasort" && !dag_mode) {
    platform.sim().spawn([](dfs::Dfs& f, core::PartitionFn* out) -> sim::Task<> {
      std::vector<std::string> paths = {"/in/data"};
      *out = co_await apps::sample_range_partitioner(f, 0, std::move(paths),
                                                     2000);
    }(fs, &app.kernels.partition));
    platform.sim().run();
  }

  std::printf("%s: %s on %d nodes (%s), input %.1f MiB\n", flags.runtime.c_str(),
              flags.app.c_str(), flags.nodes,
              flags.runtime == "hadoop" ? "16 slots/node" : flags.device.c_str(),
              fs.file_size("/in/data") / 1048576.0);

  // Match each --restart-node to its --kill-node by node id.
  for (const auto& [node, t] : flags.restarts) {
    bool matched = false;
    for (auto& e : flags.crash_events) {
      if (e.node != node) continue;
      if (t <= e.time) {
        std::fprintf(stderr, "--restart-node=%d@%g precedes its crash\n",
                     node, t);
        return 2;
      }
      e.restart_time = t;
      matched = true;
      break;
    }
    if (!matched) {
      std::fprintf(stderr, "--restart-node=%d without a --kill-node for it\n",
                   node);
      return 2;
    }
  }
  const bool faulty = !flags.crash_events.empty() || flags.speculate;

  if (dag_mode && flags.runtime == "hadoop") {
    std::fprintf(stderr, "--rounds/--app=prefixsum need the glasswing runtime\n");
    return 2;
  }
  if (dag_mode && !flags.crash_events.empty() && flags.kill_round < 0) {
    std::fprintf(stderr, "--kill-node in DAG mode needs --kill-round=R\n");
    return 2;
  }
  if (flags.kill_round >= 0 && (!dag_mode || flags.crash_events.empty())) {
    std::fprintf(stderr, "--kill-round needs DAG mode and a --kill-node\n");
    return 2;
  }

  if (flags.runtime == "hadoop") {
    hadoop::HadoopConfig cfg;
    cfg.input_paths = {"/in/data"};
    cfg.output_path = "/out";
    cfg.split_size = flags.split_kb << 10;
    cfg.use_combiner = flags.combiner;
    cfg.crash_events = flags.crash_events;
    cfg.speculate = flags.speculate;
    hadoop::HadoopRuntime rt(platform, fs);
    hadoop::HadoopResult r;
    // The baseline rejects fault configs with a typed error; surface it as
    // a clean CLI failure instead of an uncaught exception.
    try {
      r = rt.run(app.kernels, cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("elapsed %.3fs  (map %.3fs, shuffle+reduce %.3fs)\n",
                r.elapsed_seconds, r.map_phase_seconds,
                r.reduce_phase_seconds);
    std::printf("%llu records, %llu intermediate pairs, %llu output pairs\n",
                static_cast<unsigned long long>(r.input_records),
                static_cast<unsigned long long>(r.intermediate_pairs),
                static_cast<unsigned long long>(r.output_pairs));
    if (flags.net_report) {
      std::printf("net: shuffle=%llu dfs=%llu control=%llu bytes\n",
                  static_cast<unsigned long long>(r.net_shuffle_bytes),
                  static_cast<unsigned long long>(r.net_dfs_bytes),
                  static_cast<unsigned long long>(r.net_control_bytes));
    }
    if (!flags.trace_path.empty()) {
      if (!platform.sim().tracer().save_chrome_json(flags.trace_path)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     flags.trace_path.c_str());
        return 1;
      }
      std::printf("trace written to %s\n", flags.trace_path.c_str());
    }
    return 0;
  }

  core::JobConfig cfg;
  cfg.input_paths = {"/in/data"};
  cfg.output_path = "/out";
  cfg.split_size = flags.split_kb << 10;
  cfg.buffering = flags.buffering;
  cfg.partitions_per_node = flags.partitions;
  cfg.partitioner_threads = flags.partitioner_threads;
  cfg.output_mode = flags.collector == "pool" ? core::OutputMode::kSharedPool
                                              : core::OutputMode::kHashTable;
  cfg.use_combiner = flags.combiner;
  cfg.combine_mode = combine_mode;
  if (!dag_mode) cfg.crash_events = flags.crash_events;
  cfg.speculate = flags.speculate;
  cfg.node_memory_bytes = flags.mem_mb << 20;
  cfg.spill_bandwidth_bytes_per_s = flags.spill_bw_mb * 1e6;

  core::GlasswingRuntime rt(platform, fs, device_spec(flags.device));

  if (dag_mode) {
    const core::EdgeKind edge = flags.pin_intermediates
                                    ? core::EdgeKind::kPinned
                                    : core::EdgeKind::kCheckpoint;
    core::DagConfig dc;
    dc.input_paths = {"/in/data"};
    dc.output_root = "/out";
    dc.base = cfg;
    dc.pin_inputs = flags.pin_intermediates;
    for (const auto& e : flags.crash_events) {
      dc.round_crashes.push_back({flags.kill_round, e});
    }
    core::DagResult dr;
    try {
      if (flags.app == "kmeans") {
        if (!dc.round_crashes.empty()) {
          std::fprintf(stderr, "--kill-round is not supported for kmeans\n");
          return 2;
        }
        apps::KmeansConfig km;
        dr = apps::kmeans_dag(rt, platform, fs, km,
                              apps::generate_centers(km, flags.seed),
                              "/in/data", "/out", flags.rounds, cfg, edge,
                              flags.pin_intermediates)
                 .dag;
      } else if (flags.app == "terasort") {
        dr = apps::terasort_dag(rt, platform, fs, std::move(dc), edge);
      } else if (flags.app == "prefixsum") {
        dr = apps::prefix_sums_dag(rt, platform, fs, std::move(dc),
                                   apps::PrefixSumConfig{}, edge, edge);
      } else {
        std::fprintf(stderr, "--rounds: app '%s' has no multi-round form\n",
                     flags.app.c_str());
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("elapsed %.3fs over %zu rounds\n", dr.elapsed_seconds,
                dr.rounds.size());
    for (const auto& rr : dr.rounds) {
      std::printf("round %d [%s]: elapsed %.3fs  %llu output pairs in %zu "
                  "files\n",
                  rr.round, rr.name.c_str(), rr.job.elapsed_seconds,
                  static_cast<unsigned long long>(rr.job.stats.output_pairs),
                  rr.outputs.size());
    }
    core::print_dag_line(dr);
    if (flags.net_report) {
      core::JobStats agg;
      for (const auto& rr : dr.rounds) {
        agg.net_shuffle_bytes += rr.job.stats.net_shuffle_bytes;
        agg.net_dfs_bytes += rr.job.stats.net_dfs_bytes;
        agg.net_control_bytes += rr.job.stats.net_control_bytes;
        agg.net_rack_agg_bytes += rr.job.stats.net_rack_agg_bytes;
      }
      core::print_traffic_split_line("net", agg);
    }
    if (!flags.trace_path.empty()) {
      if (!platform.sim().tracer().save_chrome_json(flags.trace_path)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     flags.trace_path.c_str());
        return 1;
      }
      std::printf("trace written to %s\n", flags.trace_path.c_str());
    }
    return 0;
  }
  core::JobResult r;
  try {
    r = rt.run(app.kernels, cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("elapsed %.3fs  (map %.3fs, merge delay %.3fs, reduce %.3fs)\n",
              r.elapsed_seconds, r.map_phase_seconds, r.merge_delay_seconds,
              r.reduce_phase_seconds);
  std::printf("stages: input %.3f | stage %.3f | kernel %.3f | retrieve %.3f "
              "| partition %.3f\n",
              r.stages.input, r.stages.stage, r.stages.kernel,
              r.stages.retrieve, r.stages.partition);
  std::printf("%llu records -> %llu intermediate pairs -> %llu output pairs "
              "in %zu files\n",
              static_cast<unsigned long long>(r.stats.input_records),
              static_cast<unsigned long long>(r.stats.intermediate_pairs),
              static_cast<unsigned long long>(r.stats.output_pairs),
              r.output_files.size());
  if (faulty) {
    std::printf(
        "faults: reexec=%llu reassigned=%llu rounds=%llu rereplicated=%llu "
        "lost_replicas=%llu dup_dropped=%llu spec_wins=%llu spec_losses=%llu\n",
        static_cast<unsigned long long>(r.stats.tasks_reexecuted),
        static_cast<unsigned long long>(r.stats.partitions_reassigned),
        static_cast<unsigned long long>(r.stats.recovery_rounds),
        static_cast<unsigned long long>(r.stats.blocks_rereplicated),
        static_cast<unsigned long long>(r.stats.dfs_replicas_lost),
        static_cast<unsigned long long>(r.stats.duplicate_runs_dropped),
        static_cast<unsigned long long>(r.stats.speculative_wins),
        static_cast<unsigned long long>(r.stats.speculative_losses));
  }
  if (cfg.governed()) {
    core::print_mem_line(cfg.node_memory_bytes, r.stats);
  }
  if (combine_mode != core::CombineMode::kOff) {
    core::print_combine_line(r.stats);
  }
  if (flags.net_report) {
    core::print_traffic_split_line("net", r.stats);
  }
  if (!flags.trace_path.empty()) {
    if (!platform.sim().tracer().save_chrome_json(flags.trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   flags.trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s\n", flags.trace_path.c_str());
  }
  return 0;
}
