// Byte-oriented serialization.
//
// Intermediate key/value runs, shuffle messages and DFS blocks all travel as
// flat byte buffers; ByteWriter/ByteReader provide varint and
// length-prefixed-string framing on top of a std::vector<std::uint8_t>.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace gw::util {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes* out) : external_(out) {}

  Bytes& buffer() { return external_ ? *external_ : owned_; }
  const Bytes& buffer() const { return external_ ? *external_ : owned_; }

  // Moves the owned buffer out; only valid when not writing to an external
  // buffer.
  Bytes take() {
    GW_CHECK(external_ == nullptr);
    return std::move(owned_);
  }

  void put_u8(std::uint8_t v) { buffer().push_back(v); }

  void put_u32(std::uint32_t v) { put_fixed(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_fixed(&v, sizeof(v)); }
  void put_f32(float v) { put_fixed(&v, sizeof(v)); }
  void put_f64(double v) { put_fixed(&v, sizeof(v)); }

  void put_varint(std::uint64_t v) {
    auto& buf = buffer();
    while (v >= 0x80) {
      buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf.push_back(static_cast<std::uint8_t>(v));
  }

  void put_bytes(const void* data, std::size_t len) {
    auto& buf = buffer();
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf.insert(buf.end(), p, p + len);
  }

  // Length-prefixed string/blob.
  void put_str(std::string_view s) {
    put_varint(s.size());
    put_bytes(s.data(), s.size());
  }

  std::size_t size() const { return buffer().size(); }

 private:
  void put_fixed(const void* data, std::size_t len) { put_bytes(data, len); }

  Bytes owned_;
  Bytes* external_ = nullptr;
};

class ByteReader {
 public:
  ByteReader(const void* data, std::size_t len)
      : data_(static_cast<const std::uint8_t*>(data)), len_(len) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  bool done() const { return pos_ >= len_; }
  std::size_t remaining() const { return len_ - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t get_u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint32_t get_u32() {
    std::uint32_t v;
    get_fixed(&v, sizeof(v));
    return v;
  }
  std::uint64_t get_u64() {
    std::uint64_t v;
    get_fixed(&v, sizeof(v));
    return v;
  }
  float get_f32() {
    float v;
    get_fixed(&v, sizeof(v));
    return v;
  }
  double get_f64() {
    double v;
    get_fixed(&v, sizeof(v));
    return v;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      require(1);
      const std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) break;
      shift += 7;
      GW_CHECK_MSG(shift < 64, "varint too long");
    }
    return v;
  }

  // Returns a view into the underlying buffer; valid while the buffer lives.
  std::string_view get_str() {
    const std::size_t n = get_varint();
    require(n);
    std::string_view out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) {
    if (pos_ + n > len_) throw_error("ByteReader: truncated buffer");
  }
  void get_fixed(void* out, std::size_t n) {
    require(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace gw::util
