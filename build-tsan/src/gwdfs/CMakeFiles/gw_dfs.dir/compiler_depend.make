# Empty compiler generated dependencies file for gw_dfs.
# This may be replaced when dependencies are built.
