file(REMOVE_RECURSE
  "CMakeFiles/gw_dfs.dir/fs.cc.o"
  "CMakeFiles/gw_dfs.dir/fs.cc.o.d"
  "libgw_dfs.a"
  "libgw_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
