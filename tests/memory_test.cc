// Tests for the per-node memory governor and the budgeted external
// shuffle/sort path: byte-identical outputs at every budget point, peak
// occupancy never exceeding the budget, multi-level merges under tight
// budgets, and spill/merge counter hygiene across recovery rounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/wordcount.h"
#include "core/job.h"
#include "core/memory.h"
#include "gwdfs/fs.h"
#include "sim/sim.h"
#include "util/thread_pool.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

// One full 4-node wordcount job under an optional memory budget; returns
// everything the byte-identity property can depend on.
struct JobOutcome {
  core::JobResult result;
  std::vector<util::Bytes> files;
};

JobOutcome run_wordcount_job(std::uint64_t node_memory_bytes,
                             bool with_crash = false) {
  Platform p(ClusterSpec::homogeneous(
      4, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs(p, dfs::DfsConfig{});
  util::Bytes text = apps::generate_wiki_text(1 << 20, 2014);
  p.sim().spawn([](dfs::Dfs& f, util::Bytes t) -> sim::Task<> {
    co_await f.write_distributed("/in", std::move(t));
  }(fs, std::move(text)));
  p.sim().run();

  core::JobConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 128 << 10;
  cfg.node_memory_bytes = node_memory_bytes;
  if (with_crash) {
    cfg.output_replication = 2;
    cfg.crash_events.push_back({.node = 1, .time = 1e-3});
  }
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  JobOutcome out;
  out.result = rt.run(apps::wordcount().kernels, cfg);

  for (const auto& path : out.result.output_files) {
    util::Bytes data;
    p.sim().spawn([](dfs::Dfs& f, const std::string& pth,
                     util::Bytes* d) -> sim::Task<> {
      *d = co_await f.read_all(0, pth);
    }(fs, path, &data));
    p.sim().run();
    out.files.push_back(std::move(data));
  }
  return out;
}

void expect_same_output(const JobOutcome& got, const JobOutcome& base) {
  EXPECT_EQ(got.result.stats.output_pairs, base.result.stats.output_pairs);
  ASSERT_EQ(got.result.output_files, base.result.output_files);
  ASSERT_EQ(got.files.size(), base.files.size());
  for (std::size_t i = 0; i < got.files.size(); ++i) {
    EXPECT_EQ(got.files[i], base.files[i]) << "output file " << i;
  }
}

TEST(MemoryGovernor, PoolBudgetsPartitionTheNodeBudget) {
  // Legacy (no combine pool): the four original pools partition the budget
  // exactly and the combine slot is a 1-byte inert placeholder, so the
  // legacy pool capacities (and event order) are untouched.
  sim::Simulation sim;
  core::MemoryGovernor gov(sim, 100 << 20);
  std::uint64_t total = 0;
  for (int i = 0; i < core::MemoryGovernor::kNumPools; ++i) {
    const auto p = static_cast<core::MemoryGovernor::Pool>(i);
    if (p == core::MemoryGovernor::Pool::kCombine) {
      EXPECT_EQ(gov.pool_budget(p), 1u);
      continue;
    }
    total += gov.pool_budget(p);
  }
  EXPECT_EQ(total, gov.budget_bytes());
  EXPECT_EQ(gov.peak_bytes(), 0u);
  EXPECT_DOUBLE_EQ(gov.stall_seconds(), 0.0);
}

TEST(MemoryGovernor, CombinePoolCarvedOutOfStoreShare) {
  // With the combine pool enabled all five pools partition the budget; the
  // carve-out comes from the store share, so map-side pools are unchanged.
  sim::Simulation sim;
  core::MemoryGovernor legacy(sim, 100 << 20);
  core::MemoryGovernor gov(sim, 100 << 20, /*with_combine_pool=*/true);
  std::uint64_t total = 0;
  for (int i = 0; i < core::MemoryGovernor::kNumPools; ++i) {
    total += gov.pool_budget(static_cast<core::MemoryGovernor::Pool>(i));
  }
  EXPECT_EQ(total, gov.budget_bytes());
  EXPECT_GT(gov.pool_budget(core::MemoryGovernor::Pool::kCombine), 1u);
  EXPECT_LT(gov.pool_budget(core::MemoryGovernor::Pool::kStore),
            legacy.pool_budget(core::MemoryGovernor::Pool::kStore));
  EXPECT_EQ(gov.pool_budget(core::MemoryGovernor::Pool::kMapIn),
            legacy.pool_budget(core::MemoryGovernor::Pool::kMapIn));
  EXPECT_EQ(gov.pool_budget(core::MemoryGovernor::Pool::kMapOut),
            legacy.pool_budget(core::MemoryGovernor::Pool::kMapOut));
}

TEST(MemoryGovernor, OversizeRequestClampsToPoolCapacity) {
  // A request larger than the whole pool is admitted at full-pool size so a
  // single oversized buffer can always be processed (no wedged producer).
  sim::Simulation sim;
  core::MemoryGovernor gov(sim, 1 << 20);
  const auto pool = core::MemoryGovernor::Pool::kStore;
  bool done = false;
  sim.spawn([](sim::Simulation&, core::MemoryGovernor& g,
               core::MemoryGovernor::Pool p, bool* flag) -> sim::Task<> {
    auto hold = co_await g.acquire(p, 1ull << 40);
    *flag = true;
  }(sim, gov, pool, &done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_LE(gov.peak_bytes(), gov.budget_bytes());
}

TEST(MemoryGovernor, AcquireBlocksOnSimClockUnderPressure) {
  // Two holders of the full store pool: the second acquire must wait on the
  // simulated clock until the first releases, and the wait is accounted as
  // governor stall time.
  sim::Simulation sim;
  core::MemoryGovernor gov(sim, 1 << 20);
  const auto pool = core::MemoryGovernor::Pool::kStore;
  const std::uint64_t all = gov.pool_budget(pool);
  double second_at = -1;
  sim.spawn([](sim::Simulation& s, core::MemoryGovernor& g,
               core::MemoryGovernor::Pool p, std::uint64_t n) -> sim::Task<> {
    auto hold = co_await g.acquire(p, n);
    co_await s.delay(2.0);
  }(sim, gov, pool, all));
  sim.spawn([](sim::Simulation& s, core::MemoryGovernor& g,
               core::MemoryGovernor::Pool p, std::uint64_t n,
               double* at) -> sim::Task<> {
    auto hold = co_await g.acquire(p, n);
    *at = s.now();
  }(sim, gov, pool, all, &second_at));
  sim.run();
  EXPECT_DOUBLE_EQ(second_at, 2.0);
  EXPECT_DOUBLE_EQ(gov.stall_seconds(), 2.0);
  EXPECT_LE(gov.peak_bytes(), gov.budget_bytes());
}

TEST(MemoryGovernedJob, ByteIdenticalOutputsAcrossBudgetsAndThreads) {
  // The paper's graceful-degradation property: shrinking the node memory
  // budget from unlimited down to a quarter of the intermediate volume may
  // cost time (spills, multi-level merges) but must never change a single
  // output byte — at any host thread count.
  util::ThreadPool::reset_global(1);
  const JobOutcome base = run_wordcount_job(0);
  ASSERT_GT(base.result.stats.output_pairs, 0u);
  ASSERT_FALSE(base.files.empty());
  EXPECT_EQ(base.result.stats.peak_mem_bytes, 0u);
  EXPECT_EQ(base.result.stats.spill_bytes, 0u);

  const std::uint64_t volume = base.result.stats.intermediate_stored;
  ASSERT_GT(volume, 0u);
  const std::uint64_t budgets[] = {4 * volume, volume, volume / 4};

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool::reset_global(threads);
    for (std::uint64_t budget : budgets) {
      SCOPED_TRACE("GW_THREADS=" + std::to_string(threads) +
                   " budget=" + std::to_string(budget));
      const JobOutcome got = run_wordcount_job(budget);
      expect_same_output(got, base);
      EXPECT_LE(got.result.stats.peak_mem_bytes, budget);
    }
  }
  util::ThreadPool::reset_global(1);
}

TEST(MemoryGovernedJob, TightBudgetSpillsAndMergesMultiLevel) {
  // A budget of 1/8 the intermediate volume must force external operation:
  // sorted runs spill to disk and consolidate through >= 2 merge levels,
  // with peak occupancy still under the budget and stalls accounted.
  util::ThreadPool::reset_global(1);
  const JobOutcome base = run_wordcount_job(0);
  const std::uint64_t volume = base.result.stats.intermediate_stored;
  ASSERT_GT(volume, 0u);

  const JobOutcome tight = run_wordcount_job(volume / 8);
  expect_same_output(tight, base);
  const core::JobStats& s = tight.result.stats;
  EXPECT_GT(s.spills, 0u);
  EXPECT_GT(s.spill_bytes, 0u);
  EXPECT_GE(s.merge_levels, 2u);
  EXPECT_GT(s.peak_mem_bytes, 0u);
  EXPECT_LE(s.peak_mem_bytes, volume / 8);
  EXPECT_GE(s.mem_stall_seconds, 0.0);
  // External operation costs time, never correctness.
  EXPECT_GE(tight.result.elapsed_seconds, base.result.elapsed_seconds);
}

TEST(MemoryGovernedJob, RecoveryRoundResetsSpillStateCleanly) {
  // A node crash mid-job forces a recovery round that reopens the
  // intermediate stores. The governed job must still produce the same
  // output as a governed failure-free run, and its counters must reflect a
  // consistent store state (satellite: reset()/drain hygiene).
  util::ThreadPool::reset_global(1);
  const JobOutcome base = run_wordcount_job(0);
  const std::uint64_t volume = base.result.stats.intermediate_stored;
  ASSERT_GT(volume, 0u);

  const JobOutcome crashed = run_wordcount_job(volume / 4, /*with_crash=*/true);
  EXPECT_GT(crashed.result.stats.tasks_reexecuted, 0u);
  EXPECT_EQ(crashed.result.stats.output_pairs, base.result.stats.output_pairs);
  EXPECT_LE(crashed.result.stats.peak_mem_bytes, volume / 4);
  ASSERT_EQ(crashed.files.size(), base.files.size());
  for (std::size_t i = 0; i < crashed.files.size(); ++i) {
    EXPECT_EQ(crashed.files[i], base.files[i]) << "output file " << i;
  }
}

}  // namespace
}  // namespace gw
