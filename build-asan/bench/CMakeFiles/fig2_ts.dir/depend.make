# Empty dependencies file for fig2_ts.
# This may be replaced when dependencies are built.
