# Empty compiler generated dependencies file for gw_net.
# This may be replaced when dependencies are built.
