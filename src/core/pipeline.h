// The Glasswing 5-stage map and reduce pipelines (paper §III-A, §III-C).
//
// Map:    Input -> Stage -> Kernel -> Retrieve -> Partition
// Reduce: Input(merge) -> Stage -> Kernel -> Retrieve -> Output
//
// Stages are sim coroutines linked by channels. Data buffers come from two
// pools — the input group (Input/Stage/Kernel) and the output group
// (Kernel/Retrieve/Partition|Output) — each sized by the configured
// buffering level, which reproduces the single/double/triple-buffering
// interlocking of §III-D: with one buffer the stages of a group serialize,
// with more they overlap, and the two groups always run concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "core/collector.h"
#include "core/intermediate.h"
#include "gwcl/device.h"
#include "gwdfs/fs.h"
#include "simnet/fabric.h"

namespace gw::core {

struct InputSplit {
  InputSplit() = default;
  InputSplit(std::string path_in, std::uint64_t offset_in, std::uint64_t len_in)
      : path(std::move(path_in)), offset(offset_in), len(len_in) {}

  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::vector<int> locations;  // nodes hosting the first block
  int index = -1;              // job-wide split number
  int attempt = 0;             // re-execution count (fault tolerance)
};

// Locality-aware dynamic split dispenser (the Glasswing job coordinator
// "considers file affinity in its job allocation", §IV-A). Single shared
// instance; nodes pull splits one at a time, preferring local blocks.
//
// For fault tolerance (§III-E) the scheduler also tracks per-split execution
// state: which node is running a split, which node committed its durable
// map output first, and which splits were lost to a node crash and await
// re-execution. Commit is first-finisher-wins, so speculative clones and
// zombie completions never double-count.
class SplitScheduler {
 public:
  explicit SplitScheduler(std::vector<InputSplit> splits);

  std::optional<InputSplit> next_for(int node);

  // Task re-execution (§III-E): a failed task's input is rescheduled. The
  // requeued split is handed out (to any node) before fresh splits.
  void requeue(InputSplit split);

  std::size_t remaining() const { return remaining_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t local_grabs() const { return local_grabs_; }
  std::uint64_t remote_grabs() const { return remote_grabs_; }

  // --- node-crash recovery & straggler speculation (§III-E) ---
  // Records that `node` made split `index`'s map output durable. The first
  // committer wins; returns false for any later finisher (a speculative
  // loser). Zombie completions on crashed nodes must not commit.
  bool commit(int index, int node);
  // A node died: splits it was running or had committed return to the lost
  // pool for re-execution (their durable output died with it). A split
  // whose live speculative clone is still running is promoted, not lost.
  void on_crash(int node);
  bool has_lost() const { return !lost_.empty(); }
  // Recovery-round handout of a lost split, lowest index first (locality is
  // moot for regenerated work). Bumps the attempt counter.
  std::optional<InputSplit> next_lost(int node);
  // Straggler speculation: clones the lowest-indexed in-flight split that
  // has no clone yet and is not running on `node`. Only meaningful once
  // next_for is exhausted (the caller's idle condition).
  std::optional<InputSplit> next_speculative(int node);
  std::uint64_t reexecutions() const { return reexecutions_; }
  std::uint64_t speculative_clones() const { return clones_; }
  std::uint64_t speculative_wins() const { return spec_wins_; }
  std::uint64_t speculative_losses() const { return spec_losses_; }

  // --- checkpoint-based preemption (core::Scheduler) ---
  // Re-applies a commit recorded by a previous (suspended) residency:
  // marks the split taken and durable on `node` so next_for never hands it
  // out again. Split indices are stable across runs (make_splits is
  // deterministic for a given config).
  void restore_commit(int index, int node);
  // All (index, committer) pairs durable so far, index-ascending — the
  // map-side progress a suspending job checkpoints.
  std::vector<std::pair<int, int>> committed_splits() const;

  // Enumerates block-aligned, record-aligned-later splits of the inputs.
  static std::vector<InputSplit> make_splits(const dfs::FileSystem& fs,
                                             const std::vector<std::string>& paths,
                                             std::uint64_t split_size);

 private:
  // Per-split execution record; indices match splits_.
  struct TaskState {
    int runner = -1;        // node of the latest primary handout
    int clone = -1;         // speculative runner, -1 = none
    int committed_by = -1;  // first committer, -1 = not durable yet
    int attempts = 0;       // handouts beyond the first
  };

  std::vector<InputSplit> splits_;
  std::vector<bool> taken_;
  std::vector<InputSplit> requeued_;
  std::vector<TaskState> state_;
  std::vector<int> lost_;  // split indices awaiting re-execution (sorted)
  std::size_t remaining_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t local_grabs_ = 0;
  std::uint64_t remote_grabs_ = 0;
  std::uint64_t reexecutions_ = 0;
  std::uint64_t clones_ = 0;
  std::uint64_t spec_wins_ = 0;
  std::uint64_t spec_losses_ = 0;
};

// Host-side record of the map runs a node made durable, kept only when
// JobConfig::fault_tolerant(): for every produced run, a copy keyed by
// global partition and dedup tag. When a reduce partition is reassigned off
// a crashed node, survivors re-send their recorded runs for it from local
// disk instead of re-running the map tasks that produced them.
struct MapOutputLedger {
  std::map<int, std::vector<std::pair<std::uint64_t, Run>>> runs;

  void record(int g, std::uint64_t tag, const Run& run) {
    runs[g].emplace_back(tag, run);
  }
};

// Durable remainder of a suspended (preempted) job, captured at suspension
// and replayed by the next residency. Nothing here is a new persistence
// format: the ledgers are the PR-5 MapOutputLedger (host-side provenance of
// runs whose bytes live on each node's local disk), committed splits are
// stable job-wide split indices (make_splits is deterministic), and reduced
// partitions are implied by their committed output files on the DFS.
struct ResumeState {
  std::map<int, int> committed_splits;    // split index -> node that holds it
  std::vector<MapOutputLedger> ledgers;   // per node; re-fed on resume
  std::vector<std::string> output_files;  // partitions reduced pre-suspension
  JobStats stats;                         // counters accumulated pre-suspension
  double elapsed_s = 0;                   // residency time before suspension
};

// Scheduler<->job preemption handshake. The scheduler sets `requested`; the
// running job observes it at task boundaries (split dispatch, per-partition
// reduce), winds down cleanly, captures its ResumeState and sets
// `suspended`. The scheduler then requeues the job and clears the flags
// before the next residency; `preemptions > 0` marks a resumed run.
struct PreemptControl {
  bool requested = false;
  bool suspended = false;
  int preemptions = 0;  // completed suspensions so far
  ResumeState state;    // valid iff preemptions > 0
};

class NodeCombiner;  // hierarchical combining (combine.h)

// Everything a per-node pipeline needs.
struct NodeContext {
  cluster::Platform* platform = nullptr;
  cluster::Node* node = nullptr;
  dfs::FileSystem* fs = nullptr;
  cl::Device* device = nullptr;
  IntermediateStore* store = nullptr;
  // Per-node memory governor; null = ungoverned (legacy unbounded buffers).
  MemoryGovernor* mem = nullptr;
  const JobConfig* config = nullptr;
  const AppKernels* app = nullptr;
  int node_id = 0;
  int num_nodes = 1;
  int total_partitions = 1;
  // Map-tier hierarchical combiner; null = legacy direct push shuffle.
  // Remote-destined partition runs route through it instead of being sent
  // individually (local runs still go straight to the store). Always null
  // during recovery rounds: replayed provenance stays uncombined.
  NodeCombiner* combiner = nullptr;

  // --- multi-tenant slot gates (core::Scheduler) ---
  // Per-node counted slot pools shared by every resident job; node_main
  // acquires one around its map / reduce phase so concurrent jobs time-share
  // the node instead of all running at once. Null = ungated (legacy
  // single-job path: zero extra awaits, byte-identical event order).
  sim::Resource* map_slot = nullptr;
  sim::Resource* reduce_slot = nullptr;
  // Elastic mode: the slot pools above are per-job and scheduler-resized,
  // and they gate individual tasks (one split / one reduce partition per
  // slot) instead of whole phases.
  bool elastic_slots = false;

  // --- checkpoint-based preemption (core::Scheduler) ---
  // Non-null = the job may be asked to suspend; the map pipeline stops
  // dispensing fresh splits and the reduce loop stops at the next partition
  // boundary once `preempt->requested` is set.
  const PreemptControl* preempt = nullptr;
  // Non-null on a resumed residency: this node's durable runs from the
  // previous residency, re-fed into the (fresh) stores before fresh map
  // work completes, exactly like a PR-5 recovery-round ledger replay.
  const MapOutputLedger* resume_ledger = nullptr;

  bool preempt_requested() const {
    return preempt != nullptr && preempt->requested;
  }

  // --- fault tolerance (§III-E); the defaults reproduce the failure-free
  // data path exactly ---
  // Global partition -> owning node; reassigned away from crashed nodes.
  // Null means the static g / partitions_per_node mapping.
  const std::vector<int>* partition_owner = nullptr;
  int shuffle_port = net::kPortShuffle;
  bool recovery = false;  // map pipeline re-executes lost splits this round
  MapOutputLedger* ledger = nullptr;  // non-null when cfg.fault_tolerant()
  // Nodes that ever crashed, even if later restarted. A restarted node is
  // alive again for the Simulation/transport but never rejoins the job, so
  // every "should I keep doing job work / may I commit" check must consult
  // this set and not just Simulation::node_alive (which flips back to true
  // at restart and would resurrect zombie pipelines).
  const std::set<int>* failed_nodes = nullptr;

  int owner_of(int g) const {
    return partition_owner != nullptr ? (*partition_owner)[static_cast<std::size_t>(g)]
                                      : g / config->partitions_per_node;
  }

  bool self_live() const {
    return sim().node_alive(node_id) &&
           (failed_nodes == nullptr || failed_nodes->count(node_id) == 0);
  }

  sim::Simulation& sim() const { return platform->sim(); }
};

// Spawnable shuffle send that tolerates a node crash racing the transfer:
// a NodeDownError is swallowed — recovery regenerates the data. The wire
// payload is the u32 global partition id followed by the serialized run.
sim::Task<> send_run_dropping(NodeContext ctx, int dst, util::Bytes wire,
                              std::uint64_t tag);

// Counters only; stage busy times and phase boundaries live in the trace
// (sim.tracer()), reduced via trace::Tracer::occupancy.
struct MapMetrics {
  std::uint64_t task_failures = 0;
  cl::KernelStats kernel_stats;
  std::uint64_t records = 0;
  std::uint64_t pairs = 0;
  std::uint64_t intermediate_raw = 0;
  std::uint64_t intermediate_stored = 0;
  std::uint64_t shuffle_bytes_remote = 0;
  std::uint64_t distinct_keys = 0;
  // Hash-table collector probe count (0 in shared-pool mode).
  std::uint64_t hash_probes = 0;
  // Splits skipped because their data vanished (DAG rounds only).
  std::uint64_t input_splits_lost = 0;
};

// Runs the complete map pipeline on one node, feeding the local store and
// pushing remote partitions over the fabric. Completes when every split
// assigned to this node has been partitioned AND all shuffle sends have
// been handed to the network.
sim::Task<> run_map_phase(NodeContext ctx, SplitScheduler& scheduler,
                          MapMetrics& metrics);

struct ReduceMetrics {
  std::uint64_t task_failures = 0;  // injected reduce-task failures
  cl::KernelStats kernel_stats;
  std::uint64_t output_pairs = 0;
  std::vector<std::string> output_files;
};

// Output file for global partition `g` under the job's output path.
std::string partition_output_path(const JobConfig& config, int g);

// Runs the reduce pipeline over the given global partitions (drained
// store). Jobs without a reduce function (TeraSort) merge and write
// directly. In a failure-free job the list is the node's statically owned
// ids; after a crash it is whatever the (reassigned) owner map says.
sim::Task<> run_reduce_phase(NodeContext ctx, std::vector<int> partitions,
                             ReduceMetrics& metrics);

// Output files are uncompressed Runs wrapped with Run::serialize; helper to
// read one back as pairs (used by tests, benches and examples).
std::vector<std::pair<std::string, std::string>> read_output_file(
    const util::Bytes& file_contents);

// Record splitter framing a serialized reduce-output Run into one record
// per encoded pair, so a round's output files can feed the next round's
// map input directly (DAG data edges). Each record is a complete framed
// pair (varint klen, varint vlen, key, value) decodable with
// decode_pair_record. Only valid when every input file is a single split
// — the Run header sits at offset 0 — so rounds consuming reduce output
// must set split_size >= the largest input file.
RecordSplitFn run_output_record_splitter();
std::pair<std::string_view, std::string_view> decode_pair_record(
    std::string_view record);

// Split input helpers shared with the baseline runtimes (identical record
// framing keeps the comparisons apples-to-apples).
//
// Reads a split aligned to record boundaries: fixed-size records round to
// record multiples; text lines belong to the split containing their first
// byte (standard MapReduce semantics).
sim::Task<util::Bytes> read_aligned_split(dfs::FileSystem& fs, int node,
                                          const AppKernels& app,
                                          const InputSplit& split);

// Record start offsets within an aligned chunk.
std::vector<std::uint64_t> frame_records(const AppKernels& app,
                                         std::string_view chunk);

}  // namespace gw::core
