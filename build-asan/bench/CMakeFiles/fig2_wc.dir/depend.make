# Empty dependencies file for fig2_wc.
# This may be replaced when dependencies are built.
