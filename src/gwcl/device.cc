#include "gwcl/device.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace gw::cl {

DeviceSpec DeviceSpec::cpu_dual_e5620() {
  DeviceSpec s;
  s.name = "CPU-2xE5620";
  s.type = DeviceType::kCpu;
  s.compute_units = 16;       // 8 physical cores, HT on
  // Achieved per-lane rate for generic OpenCL kernels (not peak issue).
  s.ops_per_lane_per_s = 0.55e9;
  s.mem_bandwidth_bytes_per_s = 25e9;
  s.mem_capacity_bytes = 24ull << 30;
  s.pcie_bandwidth_bytes_per_s = 0;
  s.kernel_launch_overhead_s = 30e-6;
  s.atomic_op_cost_s = 18e-9;  // cache-line ping-pong across sockets
  s.unified_memory = true;
  s.transfer_kernel_coupling = false;
  return s;
}

DeviceSpec DeviceSpec::cpu_dual_e5_2640() {
  DeviceSpec s = cpu_dual_e5620();
  s.name = "CPU-2xE5-2640";
  s.compute_units = 24;
  s.ops_per_lane_per_s = 0.60e9;
  s.mem_bandwidth_bytes_per_s = 42e9;
  s.mem_capacity_bytes = 64ull << 30;
  return s;
}

DeviceSpec DeviceSpec::gtx480() {
  DeviceSpec s;
  s.name = "GTX480";
  s.type = DeviceType::kGpu;
  s.compute_units = 480;
  // ~10-20% of peak: what generic (non-hand-tuned) kernels achieve.
  s.ops_per_lane_per_s = 0.30e9;
  s.mem_bandwidth_bytes_per_s = 177e9;
  s.mem_capacity_bytes = 1536ull << 20;
  s.pcie_bandwidth_bytes_per_s = 5.5e9;  // PCIe 2.0 x16 effective
  s.kernel_launch_overhead_s = 60e-6;    // OpenCL enqueue + driver
  s.atomic_op_cost_s = 1.2e-9;           // Fermi global atomics, many banks
  s.unified_memory = false;
  s.transfer_kernel_coupling = true;     // NVidia driver behaviour, §IV-B2
  return s;
}

DeviceSpec DeviceSpec::gtx680() {
  DeviceSpec s = gtx480();
  s.name = "GTX680";
  s.compute_units = 1536;
  s.ops_per_lane_per_s = 0.18e9;
  s.mem_bandwidth_bytes_per_s = 192e9;
  s.mem_capacity_bytes = 2048ull << 20;
  s.atomic_op_cost_s = 0.4e-9;  // Kepler atomics are much faster
  return s;
}

DeviceSpec DeviceSpec::k20m() {
  DeviceSpec s = gtx480();
  s.name = "K20m";
  s.compute_units = 2496;
  s.ops_per_lane_per_s = 0.16e9;
  s.mem_bandwidth_bytes_per_s = 208e9;
  s.mem_capacity_bytes = 5120ull << 20;
  s.pcie_bandwidth_bytes_per_s = 6.0e9;
  s.atomic_op_cost_s = 0.35e-9;
  return s;
}

DeviceSpec DeviceSpec::xeon_phi_5110p() {
  DeviceSpec s;
  s.name = "XeonPhi-5110P";
  s.type = DeviceType::kAccelerator;
  s.compute_units = 240;            // 60 cores x 4 threads
  s.ops_per_lane_per_s = 0.25e9;    // achieved rate; SIMD folded in
  s.mem_bandwidth_bytes_per_s = 200e9;  // achievable fraction of 320 GB/s
  s.mem_capacity_bytes = 8192ull << 20;
  s.pcie_bandwidth_bytes_per_s = 5.0e9;
  s.kernel_launch_overhead_s = 300e-6;  // Intel OpenCL MIC runtime overhead
  s.atomic_op_cost_s = 8e-9;
  s.unified_memory = false;
  s.transfer_kernel_coupling = false;
  return s;
}

Device::Device(sim::Simulation& sim, DeviceSpec spec,
               sim::Resource* shared_cores, int trace_node)
    : sim_(sim), spec_(std::move(spec)), shared_cores_(shared_cores) {
  queue_ = std::make_unique<sim::Resource>(sim_, 1);
  pcie_ = std::make_unique<sim::Resource>(sim_, 1);
  // Registered once at construction; Tracer::clear() keeps tracks, so the
  // refs stay valid across jobs on the same platform.
  auto& tr = sim_.tracer();
  kernel_track_ = tr.track(trace_node, "device:" + spec_.name);
  pcie_track_ = tr.track(trace_node, "pcie:" + spec_.name);
  kernel_name_ = tr.intern("kernel");
  transfer_name_ = tr.intern("pcie");
}

int Device::effective_lanes(LaunchConfig cfg) const {
  if (cfg.threads <= 0) return spec_.compute_units;
  return std::min(cfg.threads, spec_.compute_units);
}

double Device::model_kernel_seconds(const KernelStats& stats,
                                    LaunchConfig cfg) const {
  const double lanes = effective_lanes(cfg);
  const double compute = static_cast<double>(stats.ops) /
                         (spec_.ops_per_lane_per_s * lanes);
  const double memory =
      static_cast<double>(stats.bytes_read + stats.bytes_written) /
      spec_.mem_bandwidth_bytes_per_s;
  const double atomics = static_cast<double>(stats.atomic_ops) *
                         spec_.atomic_op_cost_s / lanes;
  return spec_.kernel_launch_overhead_s + std::max(compute, memory) + atomics;
}

sim::Task<KernelStats> Device::run_kernel(std::size_t items, WorkItemFn fn,
                                          LaunchConfig cfg) {
  // Named local, not a temporary in the co_await full-expression (closure
  // types have implicit constructors — see the payload rule in sim/sim.h).
  GroupWorkItemFn grouped =
      [fn = std::move(fn)](std::size_t i, std::size_t, KernelCounters& c) {
        fn(i, c);
      };
  co_return co_await run_kernel_grouped(items, kDefaultWorkGroups,
                                        std::move(grouped), cfg);
}

KernelStats Device::execute_grouped(std::size_t items, std::size_t groups,
                                    const GroupWorkItemFn& fn) {
  // Real execution on the host pool. The group decomposition is fixed, so
  // per-group side effects and counters are independent of how many host
  // threads happen to exist; counter reduction is associative.
  std::vector<KernelCounters> per_group(groups);
  if (items > 0) {
    util::ThreadPool::global().parallel_for(
        0, groups, [&](std::size_t glo, std::size_t ghi, std::size_t) {
          for (std::size_t g = glo; g < ghi; ++g) {
            KernelCounters& c = per_group[g];
            const std::size_t lo = items * g / groups;
            const std::size_t hi = items * (g + 1) / groups;
            for (std::size_t i = lo; i < hi; ++i) {
              c.charge_item();
              fn(i, g, c);
            }
          }
        });
  }
  KernelStats stats;
  for (const auto& c : per_group) stats += c.stats();
  return stats;
}

sim::Task<KernelStats> Device::run_kernel_grouped(std::size_t items,
                                                  std::size_t groups,
                                                  GroupWorkItemFn fn,
                                                  LaunchConfig cfg) {
  GW_CHECK(groups > 0);
  // Named local for the same payload-rule reason as in run_kernel above.
  KernelJobFn job = [items, groups, fn = std::move(fn)] {
    return execute_grouped(items, groups, fn);
  };
  co_return co_await run_kernel_job(std::move(job), cfg);
}

sim::Task<KernelStats> Device::run_kernel_job(KernelJobFn job,
                                              LaunchConfig cfg) {
  // The real work starts now (on the pool); the simulated charge is joined
  // only once the command queue grants execution and the stats are needed.
  auto future = sim_.offload(std::move(job));
  ++kernels_launched_;
  auto queue_hold = co_await queue_->acquire();
  const KernelStats stats = co_await sim_.join(std::move(future));
  const double seconds = model_kernel_seconds(stats, cfg);
  total_kernel_seconds_ += seconds;
  sim_.tracer().begin(kernel_track_, trace::Kind::kKernel, kernel_name_,
                      sim_.now(), stats.ops);
  co_await charge_locked(seconds, cfg);
  sim_.tracer().end(kernel_track_, trace::Kind::kKernel, kernel_name_,
                    sim_.now());
  co_return stats;
}

sim::Task<> Device::charge_kernel(const KernelStats& stats, LaunchConfig cfg) {
  const double seconds = model_kernel_seconds(stats, cfg);
  ++kernels_launched_;
  total_kernel_seconds_ += seconds;

  auto queue_hold = co_await queue_->acquire();
  sim_.tracer().begin(kernel_track_, trace::Kind::kKernel, kernel_name_,
                      sim_.now(), stats.ops);
  co_await charge_locked(seconds, cfg);
  sim_.tracer().end(kernel_track_, trace::Kind::kKernel, kernel_name_,
                    sim_.now());
}

// Models kernel execution time while the command queue is held.
sim::Task<> Device::charge_locked(double seconds, LaunchConfig cfg) {
  if (spec_.type == DeviceType::kCpu && shared_cores_ != nullptr) {
    // CPU kernels timeshare the node's host threads with partitioner and
    // merger threads: spread lane-seconds over `lanes` sliced workers.
    const int lanes = std::min<int>(
        effective_lanes(cfg), static_cast<int>(shared_cores_->capacity()));
    const double per_lane_seconds =
        seconds * effective_lanes(cfg) / std::max(lanes, 1);
    sim::TaskGroup group(sim_);
    for (int l = 0; l < lanes; ++l) {
      group.spawn(lane_work(per_lane_seconds));
    }
    co_await group.wait();
  } else {
    co_await sim_.delay(seconds);
  }
}

sim::Task<> Device::lane_work(double seconds) {
  constexpr double kQuantum = 0.02;
  double remaining = seconds;
  while (remaining > 0) {
    const double slice = std::min(remaining, kQuantum);
    auto core = co_await shared_cores_->acquire();
    co_await sim_.delay(slice);
    remaining -= slice;
  }
}

sim::Task<> Device::transfer(std::uint64_t bytes) {
  const double seconds =
      10e-6 + static_cast<double>(bytes) / spec_.pcie_bandwidth_bytes_per_s;
  total_transfer_seconds_ += seconds;
  if (spec_.transfer_kernel_coupling) {
    // Driver serializes transfers with kernel execution.
    auto queue_hold = co_await queue_->acquire();
    auto pcie_hold = co_await pcie_->acquire();
    sim_.tracer().begin(pcie_track_, trace::Kind::kTransfer, transfer_name_,
                        sim_.now(), bytes);
    co_await sim_.delay(seconds);
    sim_.tracer().end(pcie_track_, trace::Kind::kTransfer, transfer_name_,
                      sim_.now());
  } else {
    auto pcie_hold = co_await pcie_->acquire();
    sim_.tracer().begin(pcie_track_, trace::Kind::kTransfer, transfer_name_,
                        sim_.now(), bytes);
    co_await sim_.delay(seconds);
    sim_.tracer().end(pcie_track_, trace::Kind::kTransfer, transfer_name_,
                      sim_.now());
  }
}

sim::Task<> Device::stage_in(std::uint64_t bytes) {
  if (spec_.unified_memory) co_return;
  co_await transfer(bytes);
}

sim::Task<> Device::stage_out(std::uint64_t bytes) {
  if (spec_.unified_memory) co_return;
  co_await transfer(bytes);
}

}  // namespace gw::cl
