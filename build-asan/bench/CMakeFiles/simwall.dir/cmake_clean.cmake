file(REMOVE_RECURSE
  "CMakeFiles/simwall.dir/simwall.cc.o"
  "CMakeFiles/simwall.dir/simwall.cc.o.d"
  "simwall"
  "simwall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simwall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
