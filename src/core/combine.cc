#include "core/combine.h"

#include <utility>

#include "util/error.h"

namespace gw::core {

namespace {

// Bridges the combine function's emits into a RunBuilder. The combine
// contract (emit the group's key) keeps the builder's input key-sorted.
class RunBuilderEmitter : public ReduceEmitter {
 public:
  explicit RunBuilderEmitter(RunBuilder* b) : b_(b) {}
  void emit(std::string_view key, std::string_view value) override {
    b_->add(key, value);
  }

 private:
  RunBuilder* b_;
};

}  // namespace

Run combine_runs(const std::vector<const Run*>& inputs,
                 const CombineFn& combine, bool compress) {
  // One sorted stream, then fold each equal-key group through the combine
  // function. Views returned by the reader stay valid for its lifetime, so
  // a group's values are collected without copying.
  const Run merged = merge_runs(inputs, /*compress=*/false);
  RunBuilder rb;
  RunBuilderEmitter emitter(&rb);
  cl::KernelCounters counters;
  RunReader reader(merged);
  KV kv;
  std::string_view group_key;
  std::vector<std::string_view> values;
  bool have = false;
  const auto fold = [&] {
    ReduceContext rctx{&emitter, &counters};
    combine(group_key, values, rctx);
    values.clear();
  };
  while (reader.next(&kv)) {
    if (!have || kv.key != group_key) {
      if (have) fold();
      group_key = kv.key;
      have = true;
    }
    values.push_back(kv.value);
  }
  if (have) fold();
  return rb.finish(compress);
}

util::Bytes encode_combined_frame(int g,
                                  const std::vector<std::uint64_t>& tags,
                                  const Run& run) {
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(g));
  w.put_u32(static_cast<std::uint32_t>(tags.size()));
  for (std::uint64_t t : tags) w.put_u64(t);
  run.serialize(w);
  return w.take();
}

sim::Task<> send_combined_dropping(NodeContext ctx, int dst, int port,
                                   net::TrafficClass tc, util::Bytes wire) {
  try {
    co_await ctx.platform->transport().send(ctx.node_id, dst, port, tc,
                                            std::move(wire), 0);
  } catch (const net::NodeDownError&) {
    // A crash raced the send (either endpoint): drop it. If the data
    // mattered, the recovery round re-sends its pre-combine provenance.
  }
}

NodeCombiner::NodeCombiner(NodeContext ctx, Tier tier, RackTopology topo)
    : ctx_(std::move(ctx)),
      tier_(tier),
      topo_(topo),
      combine_(&ctx_.app->combine.value()),
      sends_(ctx_.sim()) {
  auto& tr = ctx_.sim().tracer();
  track_ = tr.track(ctx_.node_id, tier_ == Tier::kMap ? "combine" : "rackagg");
  combine_name_ =
      tr.intern(tier_ == Tier::kMap ? "combine.node" : "combine.rack");
}

sim::Task<> NodeCombiner::add(int g, std::vector<std::uint64_t> tags,
                              Run run) {
  if (run.empty()) co_return;
  const std::uint64_t bytes = run.stored_bytes();
  sim::Resource::Hold hold;
  if (ctx_.mem != nullptr) {
    if (!ctx_.mem->fits(MemoryGovernor::Pool::kCombine, bytes)) {
      co_await flush_all();  // releases this combiner's staging holds
    }
    if (!ctx_.mem->fits(MemoryGovernor::Pool::kCombine, bytes)) {
      // Still no room: another combiner on this node holds the pool. Pass
      // the run through uncombined rather than block — blocking here could
      // deadlock the map phase against a rack aggregator that is waiting
      // for this very node's end-of-stream.
      ++metrics_.passthrough;
      route(g, std::move(tags), std::move(run));
      co_return;
    }
    hold = co_await ctx_.mem->acquire(MemoryGovernor::Pool::kCombine, bytes);
  } else if (buffered_ > 0 &&
             buffered_ + bytes > ctx_.config->combine_buffer_bytes) {
    co_await flush_all();
  }
  Bucket& b = buckets_[g];
  for (std::uint64_t t : tags) b.tags.push_back(t);
  b.runs.push_back(std::move(run));
  if (ctx_.mem != nullptr) b.holds.push_back(std::move(hold));
  b.bytes += bytes;
  buffered_ += bytes;
}

sim::Task<> NodeCombiner::flush_all() {
  // Ascending partition order; concurrent adds during a flush create fresh
  // buckets, which this loop picks up before returning.
  while (!buckets_.empty()) {
    co_await flush(buckets_.begin()->first);
  }
}

sim::Task<> NodeCombiner::flush(int g) {
  auto it = buckets_.find(g);
  if (it == buckets_.end()) co_return;
  // Detach the bucket before the first await so interleaved adds for the
  // same partition start a fresh one instead of mutating ours mid-flush.
  // Its staging holds release when this coroutine completes.
  Bucket b = std::move(it->second);
  buckets_.erase(it);
  buffered_ -= b.bytes;
  if (b.runs.empty()) co_return;

  std::uint64_t in_stored = 0;
  std::uint64_t in_raw = 0;
  for (const Run& r : b.runs) {
    in_stored += r.stored_bytes();
    in_raw += r.raw_bytes;
  }
  metrics_.in_bytes += in_stored;
  ++metrics_.flushes;

  auto& sim = ctx_.sim();
  auto& tr = sim.tracer();
  const HostCosts& h = ctx_.config->host;
  tr.begin(track_, trace::Kind::kCombine, combine_name_, sim.now(), in_stored);
  // The real merge+combine runs on the host pool while the input-dependent
  // charge (decompress + merge) elapses; the output-dependent charge
  // (serialize + compress) follows once the combined size is known.
  auto work = sim.offload([&runs = b.runs, combine = combine_] {
    std::vector<const Run*> inputs;
    inputs.reserve(runs.size());
    for (const Run& r : runs) inputs.push_back(&r);
    return combine_runs(inputs, *combine, /*compress=*/true);
  });
  co_await ctx_.node->cpu_work(
      static_cast<double>(in_stored) / h.decompress_bytes_per_s +
      static_cast<double>(in_raw) / h.merge_bytes_per_s);
  Run out = co_await sim.join(std::move(work));
  co_await ctx_.node->cpu_work(
      static_cast<double>(out.raw_bytes) / h.serialize_bytes_per_s +
      static_cast<double>(out.raw_bytes) / h.compress_bytes_per_s);
  tr.end(track_, trace::Kind::kCombine, combine_name_, sim.now());
  metrics_.out_bytes += out.stored_bytes();
  route(g, std::move(b.tags), std::move(out));
}

void NodeCombiner::route(int g, std::vector<std::uint64_t> tags, Run run) {
  if (run.empty()) return;
  const int dest = ctx_.owner_of(g);
  int dst = dest;
  int port = ctx_.shuffle_port;
  net::TrafficClass tc = net::TrafficClass::kShuffle;
  if (topo_.rack_size > 0) {
    if (tier_ == Tier::kMap && !topo_.same_rack(dest, ctx_.node_id)) {
      // Extra-rack output funnels through this rack's aggregator on the
      // dedicated intra-rack traffic class; only the aggregator's
      // consolidated stream crosses the core switch.
      dst = topo_.aggregator_of(topo_.rack_of(ctx_.node_id));
      port = ctx_.config->port_base + net::kPortRackAgg;
      tc = net::TrafficClass::kRackAgg;
    } else if (tier_ == Tier::kRackAgg &&
               topo_.same_rack(dest, ctx_.node_id)) {
      // The partition was reassigned into our rack (a crash) after members
      // routed it here; its owner's shuffle stream may already be closed.
      // Drop it — the recovery round re-feeds its pre-combine provenance
      // from the members' ledgers.
      return;
    }
  }
  util::Bytes wire = encode_combined_frame(g, tags, run);
  if (dst != ctx_.node_id) metrics_.wire_bytes += wire.size();
  sends_.spawn(send_combined_dropping(ctx_, dst, port, tc, std::move(wire)));
}

sim::Task<> NodeCombiner::drain() {
  co_await flush_all();
  co_await sends_.wait();
}

void NodeCombiner::discard() {
  buckets_.clear();  // Hold destructors release the staging memory
  buffered_ = 0;
}

}  // namespace gw::core
