file(REMOVE_RECURSE
  "CMakeFiles/host_path.dir/host_path.cc.o"
  "CMakeFiles/host_path.dir/host_path.cc.o.d"
  "host_path"
  "host_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
