#include "apps/workload.h"

#include <string>
#include <utility>

#include "apps/pageview.h"
#include "apps/terasort.h"
#include "apps/wordcount.h"
#include "util/error.h"

namespace gw::apps {
namespace {

void stage(cluster::Platform& platform, dfs::Dfs& fs, const std::string& path,
           util::Bytes data) {
  platform.sim().spawn([](dfs::Dfs& f, std::string p,
                          util::Bytes d) -> sim::Task<> {
    co_await f.write_distributed(p, std::move(d));
  }(fs, path, std::move(data)));
  platform.sim().run();
}

core::PartitionFn sample_partitioner(cluster::Platform& platform, dfs::Dfs& fs,
                                     const std::string& path) {
  core::PartitionFn fn;
  platform.sim().spawn([](dfs::Dfs& f, std::string p,
                          core::PartitionFn* out) -> sim::Task<> {
    std::vector<std::string> paths;
    paths.push_back(std::move(p));
    *out = co_await sample_range_partitioner(f, 0, std::move(paths), 2000);
  }(fs, path, &fn));
  platform.sim().run();
  return fn;
}

}  // namespace

std::vector<core::JobRequest> make_mixed_workload(cluster::Platform& platform,
                                                  dfs::Dfs& fs,
                                                  const WorkloadConfig& cfg) {
  GW_CHECK(cfg.jobs > 0);
  GW_CHECK(cfg.tenants > 0);

  // Stage one input per (app, size); jobs share them read-only.
  const std::uint64_t tera_small = cfg.small_bytes / kTeraRecordSize;
  const std::uint64_t tera_large = cfg.large_bytes / kTeraRecordSize;
  stage(platform, fs, "/mt/in/wiki_small",
        generate_wiki_text(cfg.small_bytes, cfg.seed));
  stage(platform, fs, "/mt/in/wiki_large",
        generate_wiki_text(cfg.large_bytes, cfg.seed + 1));
  stage(platform, fs, "/mt/in/weblog_small",
        generate_weblog(cfg.small_bytes, cfg.seed + 2));
  stage(platform, fs, "/mt/in/weblog_large",
        generate_weblog(cfg.large_bytes, cfg.seed + 3));
  AppSpec wc = wordcount();
  AppSpec pvc = pageview_count();
  AppSpec tera = terasort();
  AppSpec tera_large_spec;
  if (cfg.include_terasort) {
    stage(platform, fs, "/mt/in/tera_small",
          generate_terasort(tera_small, cfg.seed + 4));
    stage(platform, fs, "/mt/in/tera_large",
          generate_terasort(tera_large, cfg.seed + 5));
    // TeraSort's client-side sampling pre-pass, once per input; every job
    // on that input reuses the sampled range partitioner.
    tera_large_spec = tera;
    tera.kernels.partition =
        sample_partitioner(platform, fs, "/mt/in/tera_small");
    tera_large_spec.kernels.partition =
        sample_partitioner(platform, fs, "/mt/in/tera_large");
  }

  core::TrafficGen gen(cfg.seed, cfg.arrival_rate_jobs_per_s);
  const int kinds = cfg.include_terasort ? 3 : 2;

  std::vector<core::JobRequest> out;
  out.reserve(static_cast<std::size_t>(cfg.jobs));
  for (int i = 0; i < cfg.jobs; ++i) {
    const int tenant = i % cfg.tenants;
    const bool large = tenant == 0;  // tenant 0 is the heavy tenant
    const int kind = static_cast<int>(gen.pick(static_cast<std::uint64_t>(kinds)));

    core::JobRequest req;
    req.tenant = tenant;
    req.arrival_s = gen.next_arrival_s();
    req.config.output_path = "/mt/out/j" + std::to_string(i);
    req.config.split_size = large ? cfg.large_split_bytes : cfg.small_split_bytes;
    switch (kind) {
      case 0:
        req.name = large ? "wc-large" : "wc-small";
        req.app = wc.kernels;
        req.config.input_paths = {large ? "/mt/in/wiki_large"
                                        : "/mt/in/wiki_small"};
        break;
      case 1:
        req.name = large ? "pvc-large" : "pvc-small";
        req.app = pvc.kernels;
        req.config.input_paths = {large ? "/mt/in/weblog_large"
                                        : "/mt/in/weblog_small"};
        break;
      default:
        req.name = large ? "tera-large" : "tera-small";
        req.app = large ? tera_large_spec.kernels : tera.kernels;
        req.config.input_paths = {large ? "/mt/in/tera_large"
                                        : "/mt/in/tera_small"};
        req.config.output_replication = 1;  // as in the paper's TeraSort
        break;
    }
    // Priority mirrors job size for SchedPolicy::kPriority runs: small
    // interactive jobs (class 0) preempt queued large batch jobs (class 1).
    req.priority = large ? 1 : 0;
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace gw::apps
