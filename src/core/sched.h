// Multi-tenant job scheduler: N concurrent jobs share one cluster.
//
// The paper's runtime is "structured in the form of a light-weight software
// library" (§I) around a single job; real clusters run many. core::Scheduler
// generalizes the job layer to a shared-cluster model: jobs arrive on the
// simulated clock (open-loop, from a deterministic TrafficGen or explicit
// arrival times), wait in a JobQueue under an admission policy, and execute
// concurrently through GlasswingRuntime::run_async — each confined to its
// own port namespace and trace scope, time-sharing per-node map/reduce slot
// gates and (optionally) per-node memory governors.
//
// Determinism: everything runs on the one single-threaded simulation. Given
// the same submissions, the admission order, slot interleavings and every
// job's output bytes are reproducible run-to-run and independent of
// GW_THREADS, like the rest of the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "core/job.h"
#include "gwdfs/fs.h"
#include "sim/sim.h"
#include "util/rng.h"

namespace gw::core {

// Queue-ordering policy for admission (who runs when a slot frees up).
//   kFifo     — arrival order, regardless of tenant or size.
//   kFair     — least-service-first: pick the queued job whose tenant has
//               accumulated the least residency time so far (ties broken by
//               arrival order). Small/interactive tenants overtake a tenant
//               monopolizing the cluster with large jobs.
//   kPriority — strict priority classes (lower value = more urgent), ties
//               by arrival; optional aging promotes long-waiting jobs so a
//               hot class cannot starve a cold one forever.
enum class SchedPolicy { kFifo = 0, kFair = 1, kPriority = 2 };

// "fifo" | "fair" | "priority" (asserts on anything else).
SchedPolicy parse_sched_policy(std::string_view name);
const char* sched_policy_name(SchedPolicy policy);

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  // Per-node pipeline slots: how many resident jobs may run their map
  // (resp. reduce) phase on one node at the same time. 1 = phases from
  // different jobs time-share each node one-at-a-time (shuffle and merge
  // still overlap freely — receivers are never gated, so no cross-job
  // deadlock is possible).
  int map_slots_per_node = 1;
  int reduce_slots_per_node = 1;
  // Admission control: at most this many jobs resident (admitted, running)
  // at once; further arrivals queue.
  int max_resident_jobs = 4;
  // Queue bound: an arrival finding this many jobs already queued is
  // rejected (counted, never run). 0 = unbounded queue.
  int max_queued_jobs = 0;
  // Shared per-node memory budget carved across ALL resident jobs (one
  // governor per node, handed to every job via JobEnv). 0 = each job uses
  // its own per-job governor iff its JobConfig asks for one.
  std::uint64_t node_memory_bytes = 0;
  // kPriority only: every full interval a job waits promotes it one
  // priority class (0 = no aging, strict classes). Aging is computed in
  // integer microsecond ticks of the simulated clock, so two evaluations
  // of the same queue in one admission pass can never disagree near an
  // interval boundary.
  double priority_aging_s = 0;

  // --- checkpoint-based preemption ---
  // A deserving arrival may suspend a resident job at its next task
  // boundary: the job winds down cleanly (in-flight work committed to the
  // map-output ledger), its remainder requeues as a resumable entry that
  // replays through the ledger, and its slots / port window / governor
  // shares free deterministically. kPriority displaces the least urgent
  // strictly-lower-class resident; kFair displaces a resident of the most
  // over-served tenant; kFifo never revokes.
  bool preemption = false;
  // Per-job cap on suspensions (bounds displacement thrash).
  int max_preemptions_per_job = 1;

  // --- elastic slot reallocation ---
  // Per-JOB per-node slot pools replace the shared phase gates: slots gate
  // individual tasks (one map split / one reduce partition per slot) and
  // the scheduler resizes each resident's share as residency changes —
  // grow when co-residents finish, shrink (at task boundaries) when new
  // jobs are admitted. kFair targets equal instantaneous shares; kPriority
  // lets the most urgent class steal up to elastic_steal_frac of a node's
  // slots from lower classes.
  bool elastic_slots = false;
  int elastic_slots_per_node = 4;  // total per node, split across residents
  double elastic_steal_frac = 0.5;
};

// One job submission. arrival_s is on the simulated clock; submissions must
// all be registered (submit()) before run_all() starts the event loop.
struct JobRequest {
  std::string name;  // reporting label, e.g. "wc-small"
  AppKernels app;
  JobConfig config;
  int tenant = 0;
  int priority = 0;  // SchedPolicy::kPriority class; lower = more urgent
  // Arrival relative to the scheduler's epoch (sim.now() at construction),
  // so input staging that already advanced the clock doesn't show up as
  // queueing delay.
  double arrival_s = 0;
  dfs::FileSystem* fs_override = nullptr;  // null = the scheduler-bound fs
};

// Per-job outcome: queueing delays plus the usual JobResult. All times are
// relative to the scheduler epoch.
struct ScheduledJob {
  int job_id = -1;
  std::string name;
  int tenant = 0;
  int priority = 0;
  double arrival_s = 0;
  double admit_s = 0;
  double finish_s = 0;
  double queue_wait_s = 0;  // admit - arrival
  double latency_s = 0;     // finish - arrival (sojourn time)
  bool rejected = false;    // bounced by max_queued_jobs
  bool failed = false;      // run_async threw (unrecoverable data loss)
  // Strict tie-break key: dense rank in order of actual arrival on the
  // simulated clock (first enqueue; kept across suspensions). Every policy
  // breaks ties by it, so equal-class / equal-service jobs admit in
  // arrival order regardless of queue churn.
  int arrival_seq = -1;
  int preemptions = 0;  // times this job was suspended mid-run
  int resumes = 0;      // residencies that replayed a suspended remainder
  // The job asked for combining but the runtime forced a weaker mode
  // (shared governor, or checkpoint-preemptable replay): surfaced here so
  // the degradation is never silent.
  bool combine_degraded = false;
  JobResult result;  // valid iff !rejected && !failed
};

struct TenantStats {
  int tenant = 0;
  int jobs_finished = 0;
  double service_s = 0;  // total residency (finish - admit) across its jobs
  double wait_s = 0;     // total queue wait across its jobs
};

// The scheduler. Owns the shared slot gates and governors; drives the
// platform's simulation in run_all().
class Scheduler {
 public:
  Scheduler(GlasswingRuntime& runtime, cluster::Platform& platform,
            dfs::FileSystem& fs, SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a job to arrive at req.arrival_s. Returns the job id it will
  // run under (dense, in submission order); the id fixes the job's port
  // namespace and trace scope. Call before run_all().
  int submit(JobRequest req);

  // Runs the event loop until every submitted job reached a terminal state
  // (finished, failed or rejected). Asserts on a hang.
  void run_all();

  const std::vector<ScheduledJob>& results() const { return results_; }
  std::vector<TenantStats> tenant_stats() const;

  int jobs_submitted() const { return static_cast<int>(requests_.size()); }
  int jobs_rejected() const { return rejected_; }
  int jobs_failed() const { return failed_; }
  // High-water mark of concurrently resident jobs.
  int resident_peak() const { return resident_peak_; }
  // Longest queue observed (including the job about to be admitted).
  int queue_peak() const { return queue_peak_; }
  // Total suspensions (sum of per-job preemptions) and resumed residencies.
  int jobs_preempted() const { return preempt_count_; }
  int jobs_resumed() const { return resume_count_; }
  // Jobs whose requested combine mode was silently forced weaker — now
  // counted and surfaced (see ScheduledJob::combine_degraded).
  int combine_degraded_jobs() const { return combine_degraded_count_; }
  // Distinct port windows ever created. Windows are recycled through a
  // free-list when a job leaves residency, so this is bounded by peak
  // residency — not by the total job count (the old `stride * (id + 1)`
  // scheme exhausted the port space after enough sequential jobs).
  int port_windows_created() const { return windows_created_; }

 private:
  // Per-residency execution state for one admitted job: its recycled port
  // window, elastic per-node slot pools (if enabled) and the JobEnv handed
  // to run_async. Destroyed when the job leaves residency (finish, failure
  // or suspension); the resumable remainder lives in preempts_[id].
  struct Residency {
    int window = -1;
    double since = 0;  // sim.now() - epoch_ at (re)admission
    std::vector<std::unique_ptr<sim::Resource>> map_slots;
    std::vector<std::unique_ptr<sim::Resource>> reduce_slots;
    std::unique_ptr<JobEnv> env;  // set iff this job needs a private env
  };

  sim::Task<void> arrive(int id);
  sim::Task<void> run_job(int id);
  void pump();
  std::size_t pick_next() const;  // index into queue_, by policy
  void maybe_preempt();           // request a wind-down for one resident
  void recompute_shares();        // resize elastic slot pools to policy
  int alloc_window();
  void free_window(int window);
  double tenant_service(int tenant) const;
  // tenant_service plus the in-flight residency time of the tenant's
  // currently resident jobs (service_s only updates at residency end, which
  // would make a first-residency monopolist look idle to the fair policy).
  double tenant_service_live(int tenant) const;

  GlasswingRuntime& runtime_;
  cluster::Platform& platform_;
  dfs::FileSystem& fs_;
  SchedulerConfig config_;

  // Shared execution environment handed to every resident job.
  std::vector<std::unique_ptr<sim::Resource>> map_slots_;
  std::vector<std::unique_ptr<sim::Resource>> reduce_slots_;
  std::vector<std::unique_ptr<MemoryGovernor>> governors_;
  JobEnv env_;

  std::vector<JobRequest> requests_;
  std::vector<ScheduledJob> results_;
  // Resumable-remainder handles, parallel to requests_ (null unless
  // config_.preemption). Persist across suspensions; a Residency is
  // per-admission.
  std::vector<std::unique_ptr<PreemptControl>> preempts_;
  std::vector<int> queue_;         // queued job ids, arrival order
  std::vector<int> resident_ids_;  // resident job ids, admission order
  std::map<int, Residency> running_;
  std::map<int, TenantStats> tenants_;
  std::vector<int> free_windows_;  // recycled port windows, smallest first

  double epoch_ = 0;  // sim.now() at construction; arrival origin
  bool any_crashes_ = false;  // some submission injects node crashes
  int resident_ = 0;
  int resident_peak_ = 0;
  int queue_peak_ = 0;
  int completed_ = 0;  // terminal states: finished + failed + rejected
  int rejected_ = 0;
  int failed_ = 0;
  int next_arrival_seq_ = 0;
  int windows_created_ = 0;
  int preempt_count_ = 0;
  int resume_count_ = 0;
  int combine_degraded_count_ = 0;
};

// Deterministic open-loop arrival process: exponential interarrival times
// (Poisson arrivals) at `jobs_per_s`, from the repo's seeded xoshiro stream.
// Same seed + rate => the same arrival timeline, bit-for-bit.
class TrafficGen {
 public:
  TrafficGen(std::uint64_t seed, double jobs_per_s);

  // Advances the arrival clock by one exponential interarrival gap and
  // returns the new absolute arrival time (seconds).
  double next_arrival_s();

  // Uniform pick in [0, n) for workload mixing (kept here so a traffic
  // trace is one seed, not two).
  std::uint64_t pick(std::uint64_t n);

  double offered_load_jobs_per_s() const { return rate_; }

 private:
  util::Rng rng_;
  double rate_;
  double clock_ = 0;
};

}  // namespace gw::core
