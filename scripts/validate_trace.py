#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON export against the schema the repo
emits (src/util/trace.cc):

  * the file parses and is an object with a "traceEvents" array;
  * every event carries ph/pid/tid/name, duration events also carry ts+cat;
  * per (pid, tid), B/E events are balanced and properly nested, with the
    E name matching the innermost open B;
  * per pid, timestamps are monotone non-decreasing in file order (the ring
    preserves record order per node);
  * span end >= span begin;
  * every cat is one of the categories trace.cc emits (stage, phase,
    kernel, transfer, shuffle, merge, spill, retry, recovery, link, mark);
  * every "recovery" event (crash-recovery rounds, §III-E) falls inside the
    job-wide "job" span — recovery work outside a running job is a bug.

With --expect-links, additionally fail when the trace contains no "link"
spans (network link occupancy from the fabric; any multi-node run with
remote traffic emits them). With --expect-recovery, fail when the trace
contains no "recovery" spans (a run with an injected crash must record
its recovery rounds). With --expect-spills, fail when the trace contains
no "spill" spans or no "merge" spans (a memory-governed run over budget
must spill sorted runs and consolidate them), or when it lacks the
"mem.budget"/"mem.peak" marks. Whenever both marks are present for a
node, the recorded peak occupancy must respect the budget. With
--expect-combine, fail when the trace contains no "combine" spans
(hierarchical combining must record its combine passes) or no
"combine.in"/"combine.out" marks; whenever both marks are present for a
node, the combined output volume must not exceed the input volume. With
--expect-rounds N, fail unless the trace contains exactly N "round"
spans (one per executed DAG round), each nested inside one of the "job"
spans — a multi-round trace carries one job span per round, and every
round span must sit inside its job. With --expect-jobs N, fail unless the
trace contains exactly N complete "job" spans; when N > 1 (a multi-tenant
trace) every job span must additionally live on its own distinctly-labeled
track (the scheduler scopes each job's span track as "j<id>.job"), so
concurrent jobs stay distinguishable in the timeline. With
--expect-preemptions N, fail unless exactly N job spans close and reopen
on an already-used job track: a checkpoint-preempted job's span ends at
suspension and a new span opens on the SAME labeled track when the
remainder resumes, so preemptions are counted as extra spans per track
(sum over tracks of spans-1). Combined with --expect-jobs N, the trace
must then show N distinct job tracks and N + preemptions job spans.

Job spans are tracked per (pid, tid): concurrent jobs from different
tenants overlap in time on different tracks, and each track's B/E pairing
is independent.

Exit code 0 when valid; 1 with a description on the first violation.
Stdlib only — runs anywhere CI has a python3.
"""

import json
import sys

KNOWN_CATEGORIES = {
    "stage",
    "phase",
    "kernel",
    "transfer",
    "shuffle",
    "merge",
    "spill",
    "combine",
    "retry",
    "recovery",
    "round",
    "link",
    "mark",
}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}")
    sys.exit(1)


def main():
    args = sys.argv[1:]
    expect_links = "--expect-links" in args
    expect_recovery = "--expect-recovery" in args
    expect_spills = "--expect-spills" in args
    expect_combine = "--expect-combine" in args
    flags = (
        "--expect-links",
        "--expect-recovery",
        "--expect-spills",
        "--expect-combine",
    )
    args = [a for a in args if a not in flags]
    expect_rounds = None
    if "--expect-rounds" in args:
        i = args.index("--expect-rounds")
        if i + 1 >= len(args) or not args[i + 1].isdigit():
            print("--expect-rounds needs an integer count")
            sys.exit(2)
        expect_rounds = int(args[i + 1])
        del args[i : i + 2]
    expect_jobs = None
    if "--expect-jobs" in args:
        i = args.index("--expect-jobs")
        if i + 1 >= len(args) or not args[i + 1].isdigit():
            print("--expect-jobs needs an integer count")
            sys.exit(2)
        expect_jobs = int(args[i + 1])
        del args[i : i + 2]
    expect_preemptions = None
    if "--expect-preemptions" in args:
        i = args.index("--expect-preemptions")
        if i + 1 >= len(args) or not args[i + 1].isdigit():
            print("--expect-preemptions needs an integer count")
            sys.exit(2)
        expect_preemptions = int(args[i + 1])
        del args[i : i + 2]
    if len(args) != 1:
        print(
            f"usage: {sys.argv[0]} [--expect-links] [--expect-recovery] "
            "[--expect-spills] [--expect-combine] [--expect-rounds N] "
            "[--expect-jobs N] [--expect-preemptions N] trace.json"
        )
        sys.exit(2)
    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")

    stacks = {}  # (pid, tid) -> [(name, ts), ...]
    last_ts = {}  # pid -> ts
    counts = {"B": 0, "E": 0, "i": 0, "M": 0}
    link_spans = 0
    spill_spans = 0
    merge_spans = 0
    combine_spans = 0
    mem_budget = {}  # pid -> budget bytes (mem.budget mark)
    mem_peak = {}  # pid -> peak bytes (mem.peak mark)
    combine_in = {}  # pid -> bytes entering combine passes (combine.in mark)
    combine_out = {}  # pid -> bytes leaving combine passes (combine.out mark)
    job_intervals = []  # completed "job" spans as (begin_ts, end_ts)
    job_tracks = []  # (pid, tid) of each completed "job" span, same order
    job_open = {}  # (pid, tid) -> begin ts of that track's open "job" span
    track_labels = {}  # (pid, tid) -> thread_name metadata label
    round_spans = []  # completed "round" spans as (idx, begin_ts, end_ts)
    round_open = None  # (idx, begin_ts) of the currently open round span
    recovery_events = []  # (idx, ts) of every recovery-category event
    for idx, ev in enumerate(events):
        where = f"event #{idx}"
        for field in ("ph", "pid", "tid", "name"):
            if field not in ev:
                fail(f"{where}: missing required field '{field}'")
        ph = ev["ph"]
        if ph not in counts:
            fail(f"{where}: unknown phase '{ph}'")
        counts[ph] += 1
        if ph == "M":
            if ev["name"] == "thread_name":
                label = ev.get("args", {}).get("name")
                if isinstance(label, str):
                    track_labels[(ev["pid"], ev["tid"])] = label
            continue
        for field in ("ts", "cat"):
            if field not in ev:
                fail(f"{where}: {ph} event missing '{field}'")
        if ev["cat"] not in KNOWN_CATEGORIES:
            fail(f"{where}: unknown category '{ev['cat']}'")
        if ph == "B" and ev["cat"] == "link":
            link_spans += 1
        if ph == "B" and ev["cat"] == "spill":
            spill_spans += 1
        if ph == "B" and ev["cat"] == "merge":
            merge_spans += 1
        if ph == "B" and ev["cat"] == "combine":
            combine_spans += 1
        if ev["cat"] == "mark" and ev["name"] in ("mem.budget", "mem.peak"):
            arg = ev.get("args", {}).get("arg")
            if not isinstance(arg, (int, float)) or arg < 0:
                fail(f"{where}: {ev['name']} mark with bad arg {arg!r}")
            dest = mem_budget if ev["name"] == "mem.budget" else mem_peak
            dest[ev["pid"]] = arg
        if ev["cat"] == "mark" and ev["name"] in ("combine.in", "combine.out"):
            arg = ev.get("args", {}).get("arg")
            if not isinstance(arg, (int, float)) or arg < 0:
                fail(f"{where}: {ev['name']} mark with bad arg {arg!r}")
            dest = combine_in if ev["name"] == "combine.in" else combine_out
            dest[ev["pid"]] = arg
        if ev["cat"] == "recovery":
            recovery_events.append((idx, ev["ts"]))
        if ev["name"] == "job" and ev["cat"] == "phase":
            track = (ev["pid"], ev["tid"])
            if ph == "B":
                job_open[track] = ev["ts"]
            elif ph == "E" and track in job_open:
                job_intervals.append((job_open.pop(track), ev["ts"]))
                job_tracks.append(track)
        if ev["cat"] == "round":
            if ph == "B":
                round_open = (idx, ev["ts"])
            elif ph == "E" and round_open is not None:
                round_spans.append((round_open[0], round_open[1], ev["ts"]))
                round_open = None
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad ts {ts!r}")
        pid = ev["pid"]
        if ts < last_ts.get(pid, 0.0):
            fail(
                f"{where}: ts {ts} goes backwards on pid {pid} "
                f"(previous {last_ts[pid]})"
            )
        last_ts[pid] = ts

        key = (pid, ev["tid"])
        if ph == "B":
            stacks.setdefault(key, []).append((ev["name"], ts))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                fail(f"{where}: E '{ev['name']}' with no open span on {key}")
            name, begin_ts = stack.pop()
            if name != ev["name"]:
                fail(
                    f"{where}: E '{ev['name']}' does not match innermost "
                    f"B '{name}' on {key}"
                )
            if ts < begin_ts:
                fail(f"{where}: span '{name}' ends at {ts} before {begin_ts}")

    open_spans = {k: v for k, v in stacks.items() if v}
    if open_spans:
        key, stack = next(iter(open_spans.items()))
        fail(f"unclosed span '{stack[-1][0]}' on (pid, tid) {key}")
    if counts["B"] != counts["E"]:
        fail(f"{counts['B']} B events vs {counts['E']} E events")
    if counts["B"] + counts["i"] == 0:
        fail("trace has no span or instant events")
    if expect_links and link_spans == 0:
        fail("no link spans found (expected network link occupancy)")
    if recovery_events:
        if not job_intervals:
            fail("recovery events present but no complete 'job' span")
        for idx, ts in recovery_events:
            if not any(b <= ts <= e for b, e in job_intervals):
                fail(
                    f"event #{idx}: recovery event at ts {ts} outside every "
                    f"job span interval"
                )
    if expect_recovery and not recovery_events:
        fail("no recovery events found (expected crash-recovery rounds)")
    for pid, peak in mem_peak.items():
        if pid in mem_budget and peak > mem_budget[pid]:
            fail(
                f"pid {pid}: mem.peak {peak} exceeds mem.budget "
                f"{mem_budget[pid]}"
            )
    if expect_spills:
        if spill_spans == 0:
            fail("no spill spans found (expected budgeted external spills)")
        if merge_spans == 0:
            fail("no merge spans found (expected multi-level run merges)")
        if not mem_budget or not mem_peak:
            fail("no mem.budget/mem.peak marks (expected a governed run)")
    for pid, out_bytes in combine_out.items():
        if pid in combine_in and out_bytes > combine_in[pid]:
            fail(
                f"pid {pid}: combine.out {out_bytes} exceeds combine.in "
                f"{combine_in[pid]}"
            )
    if expect_combine:
        if combine_spans == 0:
            fail("no combine spans found (expected hierarchical combining)")
        if not combine_in or not combine_out:
            fail(
                "no combine.in/combine.out marks (expected a combining run)"
            )
    for idx, begin_ts, end_ts in round_spans:
        if not any(b <= begin_ts and end_ts <= e for b, e in job_intervals):
            fail(
                f"event #{idx}: round span [{begin_ts}, {end_ts}] not "
                f"nested inside any job span"
            )
    if expect_rounds is not None and len(round_spans) != expect_rounds:
        fail(
            f"expected {expect_rounds} round spans, found {len(round_spans)}"
        )
    # A preempted job's span closes at suspension and REOPENS on the same
    # labeled track at resume: extra spans per track count the preemptions.
    spans_per_track = {}
    for t in job_tracks:
        spans_per_track[t] = spans_per_track.get(t, 0) + 1
    preemptions = sum(n - 1 for n in spans_per_track.values())
    if expect_preemptions is not None and preemptions != expect_preemptions:
        fail(
            f"expected {expect_preemptions} preemption reopenings, found "
            f"{preemptions} (job spans per track: "
            f"{sorted(spans_per_track.values())})"
        )
    if expect_jobs is not None:
        if expect_preemptions is None:
            if len(job_intervals) != expect_jobs:
                fail(
                    f"expected {expect_jobs} job spans, found "
                    f"{len(job_intervals)}"
                )
        else:
            if len(spans_per_track) != expect_jobs:
                fail(
                    f"expected {expect_jobs} distinct job tracks, found "
                    f"{len(spans_per_track)}"
                )
            if len(job_intervals) != expect_jobs + expect_preemptions:
                fail(
                    f"expected {expect_jobs + expect_preemptions} job spans "
                    f"({expect_jobs} jobs + {expect_preemptions} "
                    f"preemptions), found {len(job_intervals)}"
                )
        if expect_jobs > 1:
            # Concurrent jobs must each own a distinctly-labeled track
            # ("j<id>.job" from the scheduler's trace scope) so the
            # timeline keeps them apart. A resumed job reuses its own
            # track, so distinctness is across tracks, not spans.
            labels = []
            for track in spans_per_track:
                label = track_labels.get(track)
                if label is None:
                    fail(
                        f"job span on (pid, tid) {track} has no "
                        f"thread_name label"
                    )
                labels.append(label)
            if len(set(labels)) != len(labels):
                fail(
                    f"job-span track labels are not pairwise distinct: "
                    f"{sorted(labels)}"
                )

    print(
        f"validate_trace: OK: {len(events)} events "
        f"({counts['B']} spans, {counts['i']} instants, "
        f"{link_spans} link spans, {len(recovery_events)} recovery events, "
        f"{spill_spans} spill spans, {merge_spans} merge spans, "
        f"{combine_spans} combine spans, {len(round_spans)} round spans, "
        f"{len(job_intervals)} job spans, {len(last_ts)} nodes)"
    )


if __name__ == "__main__":
    main()
