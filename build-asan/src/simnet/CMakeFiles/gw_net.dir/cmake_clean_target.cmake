file(REMOVE_RECURSE
  "libgw_net.a"
)
