#include "core/stage.h"

namespace gw::core {

std::int32_t Stage::span_name(std::string_view label) const {
  return graph_->sim().tracer().intern(graph_->name() + "." +
                                       std::string(label));
}

StageGraph::StageGraph(sim::Simulation& sim, std::string_view name,
                       int default_node)
    : sim_(&sim), name_(name), default_node_(default_node), done_(sim) {}

void StageGraph::add_stage(std::string_view name, int workers,
                           StageBody body) {
  add_stage(name, workers, {}, std::move(body));
}

void StageGraph::add_stage(std::string_view name, int workers,
                           std::vector<int> node_of, StageBody body) {
  GW_CHECK(workers > 0);
  GW_CHECK(node_of.empty() ||
           node_of.size() == static_cast<std::size_t>(workers));
  specs_.push_back(
      StageSpec{std::string(name), workers, std::move(node_of), std::move(body)});
}

Stage& StageGraph::make_stage(const std::string& label, int worker,
                              int workers, int node) {
  const std::string full = name_ + "." + label;
  std::string track_label = full;
  if (workers > 1) track_label += "/" + std::to_string(worker);
  trace::Tracer& tr = sim_->tracer();
  stages_.emplace_back(Stage(this, sim_, tr.intern(full), worker, node,
                             tr.track(node, track_label)));
  return stages_.back();
}

Stage& StageGraph::inline_stage(std::string_view name) {
  return make_stage(std::string(name), 0, 1, default_node_);
}

sim::Task<> StageGraph::run() {
  sim::TaskGroup group(*sim_);
  for (const StageSpec& s : specs_) {
    for (int w = 0; w < s.workers; ++w) {
      const int node = s.node_of.empty() ? default_node_
                                         : s.node_of[static_cast<std::size_t>(w)];
      Stage& st = make_stage(s.label, w, s.workers, node);
      group.spawn(s.body(st));
    }
  }
  co_await group.wait();
  done_.set();
}

}  // namespace gw::core
