# Empty dependencies file for simwall.
# This may be replaced when dependencies are built.
