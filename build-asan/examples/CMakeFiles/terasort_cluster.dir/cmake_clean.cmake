file(REMOVE_RECURSE
  "CMakeFiles/terasort_cluster.dir/terasort_cluster.cpp.o"
  "CMakeFiles/terasort_cluster.dir/terasort_cluster.cpp.o.d"
  "terasort_cluster"
  "terasort_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terasort_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
