// Tests for the host-compute offload engine: the work-stealing ThreadPool
// with futures, the simulator's offload()/join() integration, and the
// bit-identity of simulated results across GW_THREADS settings.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "core/job.h"
#include "gwdfs/fs.h"
#include "util/thread_pool.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
  EXPECT_EQ(pool.stats().tasks_executed, 1u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  util::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, OneThreadPoolRunsInlineAtJoin) {
  // A 1-thread pool has zero workers: the task must execute on the joining
  // thread itself (the GW_THREADS=1 serial baseline).
  util::ThreadPool pool(1);
  const auto joiner = std::this_thread::get_id();
  auto f = pool.submit([joiner] { return std::this_thread::get_id() == joiner; });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, ParallelForEmptyRangeDoesNothing) {
  util::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(7, 7, [&](std::size_t, std::size_t, std::size_t) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(),
                      [&](std::size_t lo, std::size_t hi, std::size_t) {
                        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
                      });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestChunkException) {
  util::ThreadPool pool(4);
  try {
    pool.parallel_for(0, 128, [&](std::size_t, std::size_t, std::size_t c) {
      if (c == 3 || c == 5) throw std::runtime_error(std::to_string(c));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(ThreadPool, WorkIsStolenUnderImbalance) {
  // Sleep-heavy tasks submitted from outside the pool land in the injector;
  // workers and the joining thread drain them concurrently, so total wall
  // time stays far below the serial sum even on a single hardware core.
  util::ThreadPool pool(4);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<util::Future<int>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(pool.submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      return i;
    }));
  }
  for (int i = 0; i < 6; ++i) EXPECT_EQ(futures[i].get(), i);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(wall, 0.45);  // serial would be 0.6s
}

TEST(ThreadPool, TaskIdsIndependentOfThreadCount) {
  // Submission order fixes the task ids; parallel_for chunks inherit the
  // enclosing task's id — for every pool size.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool pool(threads);
    std::vector<util::Future<std::uint64_t>> futures;
    for (int i = 0; i < 4; ++i) {
      futures.push_back(pool.submit([&pool] {
        const std::uint64_t mine = util::ThreadPool::current_task_id();
        std::atomic<bool> uniform{true};
        pool.parallel_for(0, 64, [&](std::size_t, std::size_t, std::size_t) {
          if (util::ThreadPool::current_task_id() != mine) uniform = false;
        });
        return uniform ? mine : std::uint64_t{0};
      }));
    }
    for (std::uint64_t i = 0; i < 4; ++i) {
      EXPECT_EQ(futures[i].get(), i + 1) << "pool size " << threads;
    }
  }
}

TEST(ThreadPool, AbandonedTaskIsCancelledNotRun) {
  // Dropping every Future handle before the task ran must cancel it: task
  // closures may reference coroutine-frame state that dies with the handle
  // (regression test for a use-after-free at static destruction).
  std::atomic<bool> ran{false};
  {
    util::ThreadPool pool(1);  // zero workers: the task stays queued
    { auto f = pool.submit([&ran] { ran = true; }); }
  }
  EXPECT_FALSE(ran.load());
}

sim::Task<> offload_one(sim::Simulation& sim, double charge, int* out) {
  auto f = sim.offload([] { return 7; });
  co_await sim.delay(charge);
  *out = co_await sim.join(std::move(f));
}

TEST(Offload, JoinDoesNotAdvanceSimulatedTime) {
  util::ThreadPool::reset_global(1);
  sim::Simulation sim;
  int value = 0;
  sim.spawn(offload_one(sim, 1.5, &value));
  sim.run();
  EXPECT_EQ(value, 7);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  EXPECT_EQ(sim.offload_joins(), 1u);
}

sim::Task<> offload_sleeper(sim::Simulation& sim, int* done) {
  auto f = sim.offload([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return 1;
  });
  co_await sim.delay(1.0);  // simulated charge window
  *done += co_await sim.join(std::move(f));
}

TEST(Offload, PendingJobsOverlapAcrossSimulatedNodes) {
  // Three "nodes" each offload a 100ms job inside a simulated charge
  // window. The jobs overlap in wall-clock (they sleep on pool threads),
  // so the run takes ~1 job's time, not 3 — on any host core count.
  util::ThreadPool::reset_global(4);
  sim::Simulation sim;
  int done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) sim.spawn(offload_sleeper(sim, &done));
  sim.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  util::ThreadPool::reset_global(1);
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_LT(wall, 0.25);  // serial execution would be >= 0.3s
}

// One full 4-node wordcount job; returns everything an output can depend on.
struct JobOutcome {
  core::JobResult result;
  std::vector<util::Bytes> files;
};

JobOutcome run_wordcount_job() {
  Platform p(ClusterSpec::homogeneous(
      4, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs(p, dfs::DfsConfig{});
  util::Bytes text = apps::generate_wiki_text(1 << 20, 2014);
  p.sim().spawn([](dfs::Dfs& f, util::Bytes t) -> sim::Task<> {
    co_await f.write_distributed("/in", std::move(t));
  }(fs, std::move(text)));
  p.sim().run();

  core::JobConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 128 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  JobOutcome out;
  out.result = rt.run(apps::wordcount().kernels, cfg);

  for (const auto& path : out.result.output_files) {
    util::Bytes data;
    p.sim().spawn([](dfs::Dfs& f, const std::string& pth,
                     util::Bytes* d) -> sim::Task<> {
      *d = co_await f.read_all(0, pth);
    }(fs, path, &data));
    p.sim().run();
    out.files.push_back(std::move(data));
  }
  return out;
}

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

TEST(OffloadDeterminism, WordcountBitIdenticalAcrossThreadCounts) {
  util::ThreadPool::reset_global(1);
  const JobOutcome base = run_wordcount_job();
  ASSERT_GT(base.result.stats.output_pairs, 0u);
  ASSERT_FALSE(base.files.empty());

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool::reset_global(threads);
    const JobOutcome got = run_wordcount_job();
    SCOPED_TRACE("GW_THREADS=" + std::to_string(threads));

    EXPECT_EQ(bits(got.result.elapsed_seconds),
              bits(base.result.elapsed_seconds));
    EXPECT_EQ(bits(got.result.map_phase_seconds),
              bits(base.result.map_phase_seconds));
    EXPECT_EQ(bits(got.result.merge_delay_seconds),
              bits(base.result.merge_delay_seconds));
    EXPECT_EQ(bits(got.result.reduce_phase_seconds),
              bits(base.result.reduce_phase_seconds));
    EXPECT_EQ(bits(got.result.stages.partition),
              bits(base.result.stages.partition));
    EXPECT_EQ(bits(got.result.stages.kernel), bits(base.result.stages.kernel));
    EXPECT_EQ(bits(got.result.stages.reduce_kernel),
              bits(base.result.stages.reduce_kernel));

    const core::JobStats& a = got.result.stats;
    const core::JobStats& b = base.result.stats;
    EXPECT_EQ(a.input_records, b.input_records);
    EXPECT_EQ(a.intermediate_pairs, b.intermediate_pairs);
    EXPECT_EQ(a.intermediate_bytes, b.intermediate_bytes);
    EXPECT_EQ(a.intermediate_stored, b.intermediate_stored);
    EXPECT_EQ(a.output_pairs, b.output_pairs);
    EXPECT_EQ(a.shuffle_bytes_remote, b.shuffle_bytes_remote);
    EXPECT_EQ(a.spills, b.spills);
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.merge_fanin_runs, b.merge_fanin_runs);
    EXPECT_EQ(a.hash_table_probes, b.hash_table_probes);
    EXPECT_EQ(a.map_kernel.ops, b.map_kernel.ops);
    EXPECT_EQ(a.map_kernel.bytes_read, b.map_kernel.bytes_read);
    EXPECT_EQ(a.map_kernel.atomic_ops, b.map_kernel.atomic_ops);
    EXPECT_EQ(a.reduce_kernel.ops, b.reduce_kernel.ops);

    ASSERT_EQ(got.result.output_files, base.result.output_files);
    ASSERT_EQ(got.files.size(), base.files.size());
    for (std::size_t i = 0; i < got.files.size(); ++i) {
      EXPECT_EQ(got.files[i], base.files[i]) << "output file " << i;
    }
  }
  util::ThreadPool::reset_global(1);
}

}  // namespace
}  // namespace gw
