# Empty dependencies file for gw_apps.
# This may be replaced when dependencies are built.
