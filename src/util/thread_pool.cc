#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "util/error.h"

namespace gw::util {

namespace {

// Deterministic id of the task the current thread is running (0 = none).
thread_local std::uint64_t t_current_task_id = 0;

std::size_t resolve_thread_count(std::size_t threads) {
  if (threads == 0) {
    if (const char* env = std::getenv("GW_THREADS")) {
      threads = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

// parallel_for state, heap-allocated so straggler helper tasks that wake up
// after the loop completed can still touch it safely.
struct ForJob {
  ForJob(std::size_t begin, std::size_t total, std::size_t chunks,
         const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
      : begin(begin), total(total), chunks(chunks), fn(fn) {}

  const std::size_t begin, total, chunks;
  const std::function<void(std::size_t, std::size_t, std::size_t)>& fn;
  std::uint64_t parent_task_id = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;
  std::size_t error_chunk = static_cast<std::size_t>(-1);

  // Claims and runs chunks until none remain. Any participant (caller,
  // worker, helping joiner) may execute this; chunk boundaries depend only
  // on (begin, total, chunks), so the work done is identical regardless of
  // which thread claims which chunk.
  void run_chunks() {
    const std::uint64_t saved = t_current_task_id;
    t_current_task_id = parent_task_id;
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      try {
        fn(begin + total * c / chunks, begin + total * (c + 1) / chunks, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (c < error_chunk) {
          error_chunk = c;
          error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
    t_current_task_id = saved;
  }
};

}  // namespace

struct ThreadPool::Impl {
  // One deque per worker (owner pushes/pops the back, thieves pop the
  // front) plus a global injector for tasks submitted from outside the
  // pool — i.e. from the single-threaded simulator.
  struct Deque {
    std::deque<std::shared_ptr<detail::TaskNode>> q;
  };

  std::mutex mutex;  // guards all deques + injector + sleep bookkeeping
  std::condition_variable work_cv;
  std::deque<std::shared_ptr<detail::TaskNode>> injector;
  std::vector<Deque> deques;
  std::vector<std::thread> workers;
  bool stop = false;

  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> busy_nanos{0};

  // Index of the worker running on this thread, or -1.
  static thread_local int t_worker_index;

  std::shared_ptr<detail::TaskNode> pop_locked(int self) {
    if (self >= 0 && !deques[static_cast<std::size_t>(self)].q.empty()) {
      auto n = std::move(deques[static_cast<std::size_t>(self)].q.back());
      deques[static_cast<std::size_t>(self)].q.pop_back();
      return n;
    }
    if (!injector.empty()) {
      auto n = std::move(injector.front());
      injector.pop_front();
      return n;
    }
    const std::size_t w = deques.size();
    for (std::size_t k = 1; k <= w; ++k) {
      const std::size_t victim = (static_cast<std::size_t>(self + 1) + k) % w;
      if (!deques[victim].q.empty()) {
        auto n = std::move(deques[victim].q.front());
        deques[victim].q.pop_front();
        return n;
      }
    }
    return nullptr;
  }

  void worker_loop(ThreadPool* pool, int index) {
    t_worker_index = index;
    for (;;) {
      std::shared_ptr<detail::TaskNode> node;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || (node = pop_locked(index)); });
        if (node == nullptr) return;  // stop
      }
      if (node->try_claim()) pool->run_node(*node);
    }
  }
};

thread_local int ThreadPool::Impl::t_worker_index = -1;

void detail::FutureStateBase::mark_done() {
  std::lock_guard<std::mutex> lock(mutex);
  done = true;
  cv.notify_all();
}

void detail::FutureStateBase::abandon() {
  // Claiming an unclaimed task cancels it: pop sites skip claimed nodes, so
  // the closure (which may reference a dying coroutine frame) never runs.
  if (auto n = node.lock(); n != nullptr && n->try_claim()) return;
  // Already claimed: the task ran or is running on another thread. Wait it
  // out — everything its closure references is still alive during this call.
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
}

void detail::FutureStateBase::wait() {
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (done) return;
  }
  // Help: if the task is still queued (common on small pools, guaranteed on
  // a 1-thread pool), run it right here instead of blocking.
  if (auto n = node.lock(); n != nullptr && n->try_claim()) {
    pool->run_node(*n);
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(resolve_thread_count(threads)), impl_(new Impl) {
  // threads-1 workers; the caller participates in parallel_for and joins.
  const std::size_t workers = threads_ - 1;
  impl_->deques.resize(std::max<std::size_t>(1, workers));
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back(
        [this, i] { impl_->worker_loop(this, static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  // Complete any still-queued tasks inline so futures never dangle.
  for (;;) {
    std::shared_ptr<detail::TaskNode> node;
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      node = impl_->pop_locked(-1);
    }
    if (node == nullptr) break;
    if (node->try_claim()) run_node(*node);
  }
}

void ThreadPool::enqueue(std::shared_ptr<detail::TaskNode> node) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const int self = Impl::t_worker_index;
    if (self >= 0 && static_cast<std::size_t>(self) < impl_->deques.size()) {
      impl_->deques[static_cast<std::size_t>(self)].q.push_back(
          std::move(node));
    } else {
      impl_->injector.push_back(std::move(node));
    }
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::run_node(detail::TaskNode& node) {
  const std::uint64_t saved = t_current_task_id;
  t_current_task_id = node.seed_id;
  const auto start = std::chrono::steady_clock::now();
  node.run();
  if (node.counted) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    impl_->busy_nanos.fetch_add(static_cast<std::uint64_t>(ns),
                                std::memory_order_relaxed);
    impl_->tasks_executed.fetch_add(1, std::memory_order_relaxed);
  }
  t_current_task_id = saved;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  // Fixed fan-out: the decomposition must not depend on the thread count,
  // only the number of *helpers* does.
  constexpr std::size_t kMaxChunks = 64;
  const std::size_t chunks = std::min(total, kMaxChunks);
  if (chunks == 1 || threads_ == 1) {
    // Serial fast path; still a single fn call per chunk boundary set.
    auto job = std::make_shared<ForJob>(begin, total, chunks, fn);
    job->parent_task_id = t_current_task_id;
    job->run_chunks();
    if (job->error) std::rethrow_exception(job->error);
    return;
  }
  auto job = std::make_shared<ForJob>(begin, total, chunks, fn);
  job->parent_task_id = t_current_task_id;
  const std::size_t helpers = std::min(chunks, threads_) - 1;
  for (std::size_t i = 0; i < helpers; ++i) {
    auto node = std::make_shared<detail::TaskNode>();
    node->seed_id = job->parent_task_id;
    node->counted = false;
    node->run = [job] { job->run_chunks(); };
    enqueue(std::move(node));
  }
  job->run_chunks();
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == job->chunks;
  });
  if (job->error) std::rethrow_exception(job->error);
}

std::uint64_t ThreadPool::current_task_id() { return t_current_task_id; }

namespace {
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  auto& slot = global_slot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::reset_global(std::size_t threads) {
  global_slot() = std::make_unique<ThreadPool>(threads);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_executed = impl_->tasks_executed.load(std::memory_order_relaxed);
  s.busy_seconds =
      static_cast<double>(impl_->busy_nanos.load(std::memory_order_relaxed)) *
      1e-9;
  return s;
}

}  // namespace gw::util
