#include "apps/blackscholes.h"

#include <cmath>
#include <cstring>
#include <string>

#include "util/error.h"
#include "util/rng.h"

namespace gw::apps {

namespace {

double norm_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double read_f64v(std::string_view v) {
  double d;
  GW_CHECK(v.size() == sizeof(d));
  std::memcpy(&d, v.data(), sizeof(d));
  return d;
}

std::string encode_f64(double d) {
  std::string out(sizeof(d), '\0');
  std::memcpy(out.data(), &d, sizeof(d));
  return out;
}

struct Option {
  float spot, strike, rate, vol, expiry;
};

Option decode_option(std::string_view record) {
  GW_CHECK(record.size() == kOptionRecordSize);
  Option o;
  o.spot = read_f32(record.data());
  o.strike = read_f32(record.data() + 4);
  o.rate = read_f32(record.data() + 8);
  o.vol = read_f32(record.data() + 12);
  o.expiry = read_f32(record.data() + 16);
  return o;
}

// Average price over a deterministic volatility grid around the contract's
// volatility — a verifiable stand-in for Monte-Carlo path sampling with the
// same compute profile (`paths` transcendental-heavy evaluations).
double grid_price(const Option& o, int paths) {
  double sum = 0;
  for (int p = 0; p < paths; ++p) {
    const double shift =
        0.8 + 0.4 * static_cast<double>(p) / static_cast<double>(paths - 1);
    sum += price_option(o.spot, o.strike, o.rate,
                        static_cast<float>(o.vol * shift), o.expiry);
  }
  return sum / paths;
}

}  // namespace

double price_option(float spot, float strike, float rate, float vol,
                    float expiry) {
  const double s = spot, k = strike, r = rate, v = vol, t = expiry;
  const double d1 =
      (std::log(s / k) + (r + 0.5 * v * v) * t) / (v * std::sqrt(t));
  const double d2 = d1 - v * std::sqrt(t);
  return s * norm_cdf(d1) - k * std::exp(-r * t) * norm_cdf(d2);
}

AppSpec black_scholes(BlackScholesConfig config) {
  GW_CHECK(config.paths >= 2);
  const int paths = config.paths;

  AppSpec spec;
  spec.kernels.name = "black-scholes";
  spec.kernels.fixed_record_size = kOptionRecordSize;

  spec.kernels.map = [paths](std::string_view record, core::MapContext& ctx) {
    const Option o = decode_option(record);
    // ~70 simple ops per grid evaluation (log/exp/erfc expansions).
    ctx.charge_ops(static_cast<std::uint64_t>(paths) * 70 + 200);
    const double price = grid_price(o, paths);
    std::string key;
    put_be32(key, static_cast<std::uint32_t>(o.expiry));  // expiry bucket
    ctx.emit(key, encode_f64(price));
  };

  auto sum_prices = [](std::string_view key,
                       const std::vector<std::string_view>& values,
                       core::ReduceContext& ctx) {
    double total = 0;
    for (auto v : values) total += read_f64v(v);
    ctx.charge_ops(values.size() * 4);
    ctx.emit(key, encode_f64(total));
  };
  spec.kernels.combine = sum_prices;
  spec.kernels.reduce = sum_prices;
  return spec;
}

util::Bytes generate_options(std::uint64_t options, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes data;
  data.reserve(options * kOptionRecordSize);
  auto push_f32 = [&data](float f) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&f);
    data.insert(data.end(), bytes, bytes + 4);
  };
  for (std::uint64_t i = 0; i < options; ++i) {
    push_f32(static_cast<float>(rng.uniform(50, 150)));    // spot
    push_f32(static_cast<float>(rng.uniform(50, 150)));    // strike
    push_f32(static_cast<float>(rng.uniform(0.01, 0.06))); // rate
    push_f32(static_cast<float>(rng.uniform(0.1, 0.6)));   // vol
    push_f32(static_cast<float>(rng.uniform(0.25, 5.0)));  // expiry
    push_f32(0.0f);                                        // padding
  }
  return data;
}

std::map<std::uint32_t, double> black_scholes_reference(
    const util::Bytes& options, const BlackScholesConfig& config) {
  std::map<std::uint32_t, double> totals;
  for (std::size_t off = 0; off + kOptionRecordSize <= options.size();
       off += kOptionRecordSize) {
    const Option o = decode_option(std::string_view(
        reinterpret_cast<const char*>(options.data()) + off,
        kOptionRecordSize));
    totals[static_cast<std::uint32_t>(o.expiry)] += grid_price(o, config.paths);
  }
  return totals;
}

}  // namespace gw::apps
