file(REMOVE_RECURSE
  "CMakeFiles/gw_cl.dir/device.cc.o"
  "CMakeFiles/gw_cl.dir/device.cc.o.d"
  "libgw_cl.a"
  "libgw_cl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_cl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
