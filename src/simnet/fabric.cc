#include "simnet/fabric.h"

#include <algorithm>

#include "util/error.h"

namespace gw::net {

NetworkProfile NetworkProfile::gigabit_ethernet() {
  return NetworkProfile{"1GbE", 117.0e6, 100e-6, 10e-6};
}

NetworkProfile NetworkProfile::qdr_infiniband_ipoib() {
  return NetworkProfile{"QDR-IPoIB", 1.0e9, 25e-6, 5e-6};
}

Fabric::Fabric(sim::Simulation& sim, int num_nodes, NetworkProfile profile)
    : sim_(sim), num_nodes_(num_nodes), profile_(std::move(profile)) {
  GW_CHECK(num_nodes > 0);
  GW_CHECK(profile_.bisection_oversubscription >= 0);
  GW_CHECK(profile_.rack_size >= 0);
  nodes_.resize(num_nodes);
  stats_.resize(num_nodes);
  trace::Tracer& tr = sim_.tracer();
  link_tx_name_ = tr.intern("net.tx");
  link_rx_name_ = tr.intern("net.rx");
  for (int n = 0; n < num_nodes; ++n) {
    nodes_[n].tx = std::make_unique<sim::Resource>(sim_, 1);
    nodes_[n].rx = std::make_unique<sim::Resource>(sim_, 1);
    nodes_[n].tx_track = tr.track(n, "net.tx");
    nodes_[n].rx_track = tr.track(n, "net.rx");
  }
  if (profile_.bisection_oversubscription > 0) {
    const auto flows = static_cast<std::int64_t>(
        static_cast<double>(num_nodes) / profile_.bisection_oversubscription);
    core_ = std::make_unique<sim::Resource>(sim_,
                                            std::max<std::int64_t>(1, flows));
  }
}

sim::Task<> Fabric::send(int src, int dst, int port, util::Bytes payload,
                         std::uint64_t tag) {
  return send_impl(src, dst, port, std::move(payload), false, tag);
}

sim::Task<> Fabric::send_eos(int src, int dst, int port) {
  // The marker is semantic; its 4-byte payload reproduces the wire cost of
  // the u32 EOF sentinel messages it replaced.
  return send_impl(src, dst, port, util::Bytes(4), true);
}

sim::Task<> Fabric::send_impl(int src, int dst, int port, util::Bytes payload,
                              bool eos, std::uint64_t tag) {
  GW_CHECK(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  const std::size_t bytes = payload.size();
  auto& st = stats_[src];
  st.msgs_tx++;
  st.bytes_tx += bytes;
  if (src != dst) {
    stats_[dst].bytes_rx += bytes;
    if (crosses_core(src, dst)) core_bytes_ += bytes;
    if (profile_.max_chunk_bytes > 0 && bytes > profile_.max_chunk_bytes) {
      co_await occupy_chunked(src, dst, bytes);
      co_await inbox(dst, port).send(Message(src, port, std::move(payload),
                                             eos, tag));
      co_return;
    }
    // Propagation, then cut-through occupancy of sender TX and receiver RX.
    co_await sim_.delay(profile_.latency_s);
    auto tx_hold = co_await nodes_[src].tx->acquire();
    auto rx_hold = co_await nodes_[dst].rx->acquire();
    sim::Resource::Hold core_hold;
    if (core_ && crosses_core(src, dst)) core_hold = co_await core_->acquire();
    const double wire_time = profile_.per_message_overhead_s +
                             static_cast<double>(bytes) /
                                 profile_.bandwidth_bytes_per_s;
    trace::Tracer& tr = sim_.tracer();
    tr.begin(nodes_[src].tx_track, trace::Kind::kLink, link_tx_name_,
             sim_.now(), bytes);
    tr.begin(nodes_[dst].rx_track, trace::Kind::kLink, link_rx_name_,
             sim_.now(), bytes);
    co_await sim_.delay(wire_time);
    tr.end(nodes_[src].tx_track, trace::Kind::kLink, link_tx_name_, sim_.now());
    tr.end(nodes_[dst].rx_track, trace::Kind::kLink, link_rx_name_, sim_.now());
  }
  // NIC/switch holds (when remote) stay live across the inbox handoff, so a
  // queued sender wakes only after the receiver was scheduled — the same
  // release order the fabric has always had.
  co_await inbox(dst, port).send(
      Message(src, port, std::move(payload), eos, tag));
}

sim::Task<> Fabric::transfer(int src, int dst, std::uint64_t bytes) {
  GW_CHECK(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  if (src == dst) co_return;
  stats_[src].msgs_tx++;
  stats_[src].bytes_tx += bytes;
  stats_[dst].bytes_rx += bytes;
  if (crosses_core(src, dst)) core_bytes_ += bytes;
  if (profile_.max_chunk_bytes > 0 && bytes > profile_.max_chunk_bytes) {
    co_await occupy_chunked(src, dst, bytes);
    co_return;
  }
  co_await sim_.delay(profile_.latency_s);
  auto tx_hold = co_await nodes_[src].tx->acquire();
  auto rx_hold = co_await nodes_[dst].rx->acquire();
  sim::Resource::Hold core_hold;
  if (core_ && crosses_core(src, dst)) core_hold = co_await core_->acquire();
  const double wire_time = profile_.per_message_overhead_s +
                           static_cast<double>(bytes) /
                               profile_.bandwidth_bytes_per_s;
  trace::Tracer& tr = sim_.tracer();
  tr.begin(nodes_[src].tx_track, trace::Kind::kLink, link_tx_name_, sim_.now(),
           bytes);
  tr.begin(nodes_[dst].rx_track, trace::Kind::kLink, link_rx_name_, sim_.now(),
           bytes);
  co_await sim_.delay(wire_time);
  tr.end(nodes_[src].tx_track, trace::Kind::kLink, link_tx_name_, sim_.now());
  tr.end(nodes_[dst].rx_track, trace::Kind::kLink, link_rx_name_, sim_.now());
}

sim::Task<> Fabric::occupy_chunked(int src, int dst, std::uint64_t bytes) {
  co_await sim_.delay(profile_.latency_s);
  trace::Tracer& tr = sim_.tracer();
  std::uint64_t remaining = bytes;
  bool first = true;
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, profile_.max_chunk_bytes);
    // Per-chunk acquisition: NIC and switch capacity release between
    // chunks, so concurrent flows interleave on shared links instead of
    // queueing behind whole messages.
    auto tx_hold = co_await nodes_[src].tx->acquire();
    auto rx_hold = co_await nodes_[dst].rx->acquire();
    sim::Resource::Hold core_hold;
    if (core_ && crosses_core(src, dst)) core_hold = co_await core_->acquire();
    const double wire_time =
        (first ? profile_.per_message_overhead_s : 0.0) +
        static_cast<double>(chunk) / profile_.bandwidth_bytes_per_s;
    tr.begin(nodes_[src].tx_track, trace::Kind::kLink, link_tx_name_,
             sim_.now(), chunk);
    tr.begin(nodes_[dst].rx_track, trace::Kind::kLink, link_rx_name_,
             sim_.now(), chunk);
    co_await sim_.delay(wire_time);
    tr.end(nodes_[src].tx_track, trace::Kind::kLink, link_tx_name_, sim_.now());
    tr.end(nodes_[dst].rx_track, trace::Kind::kLink, link_rx_name_, sim_.now());
    first = false;
    remaining -= chunk;
  }
}

sim::Channel<Message>& Fabric::inbox(int node, int port) {
  auto key = std::make_pair(node, port);
  auto it = inboxes_.find(key);
  if (it == inboxes_.end()) {
    // Large capacity: inboxes model receive buffers; backpressure is
    // exercised at the NIC, not the inbox.
    it = inboxes_
             .emplace(key, std::make_unique<sim::Channel<Message>>(sim_, 1 << 20))
             .first;
    // A close that arrived before the port was opened applies now, so a
    // late receiver observes end-of-stream instead of blocking forever.
    if (pre_closed_.erase(key) > 0) it->second->close();
  }
  return *it->second;
}

void Fabric::close_port(int node, int port) {
  const auto key = std::make_pair(node, port);
  auto it = inboxes_.find(key);
  if (it != inboxes_.end()) {
    it->second->close();  // Channel::close is idempotent
  } else {
    pre_closed_.insert(key);  // remember without materializing a channel
  }
}

void Fabric::release_port(int node, int port) {
  const auto key = std::make_pair(node, port);
  pre_closed_.erase(key);
  auto it = inboxes_.find(key);
  if (it == inboxes_.end()) return;
  GW_CHECK_MSG(it->second->size() == 0,
               "release_port would drop undelivered messages");
  it->second->close();  // stray blocked receivers see end-of-stream
  inboxes_.erase(it);
}

std::size_t Fabric::open_inboxes(int port_lo, int port_hi) const {
  std::size_t n = 0;
  for (const auto& [key, ch] : inboxes_) {
    if (key.second >= port_lo && key.second < port_hi) ++n;
  }
  return n;
}

std::size_t Fabric::purge_node(int node, int port_lo, int port_hi) {
  for (auto it = pre_closed_.begin(); it != pre_closed_.end();) {
    const bool ours = it->first == node && it->second >= port_lo &&
                      it->second < port_hi;
    it = ours ? pre_closed_.erase(it) : std::next(it);
  }
  std::size_t dropped = 0;
  for (auto it = inboxes_.begin(); it != inboxes_.end();) {
    const auto& [n, port] = it->first;
    if (n != node || port < port_lo || port >= port_hi) {
      ++it;
      continue;
    }
    dropped += it->second->size();
    it->second->close();
    it = inboxes_.erase(it);
  }
  return dropped;
}

std::size_t Fabric::purge_node(int node) {
  for (auto it = pre_closed_.begin(); it != pre_closed_.end();) {
    it = it->first == node ? pre_closed_.erase(it) : std::next(it);
  }
  std::size_t dropped = 0;
  for (auto it = inboxes_.begin(); it != inboxes_.end();) {
    if (it->first.first != node) {
      ++it;
      continue;
    }
    dropped += it->second->size();
    it->second->close();
    it = inboxes_.erase(it);
  }
  return dropped;
}

void Fabric::check_quiesced() const {
  GW_CHECK_MSG(pre_closed_.empty(),
               "fabric pre_closed_ did not drain: a port was closed before "
               "open and never opened or released");
  for (const auto& [key, ch] : inboxes_) {
    GW_CHECK_MSG(ch->size() == 0, "fabric inbox holds undelivered messages");
  }
}

void Fabric::check_quiesced(int port_lo, int port_hi) const {
  for (const auto& key : pre_closed_) {
    GW_CHECK_MSG(key.second < port_lo || key.second >= port_hi,
                 "fabric pre_closed_ did not drain inside the job's port "
                 "range: a port was closed before open and never opened or "
                 "released");
  }
  for (const auto& [key, ch] : inboxes_) {
    if (key.second < port_lo || key.second >= port_hi) continue;
    GW_CHECK_MSG(ch->size() == 0,
                 "fabric inbox holds undelivered messages in the job's port "
                 "range");
  }
}

std::uint64_t Fabric::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.bytes_tx;
  return total;
}

}  // namespace gw::net
