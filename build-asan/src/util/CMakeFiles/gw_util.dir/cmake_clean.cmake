file(REMOVE_RECURSE
  "CMakeFiles/gw_util.dir/compress.cc.o"
  "CMakeFiles/gw_util.dir/compress.cc.o.d"
  "CMakeFiles/gw_util.dir/log.cc.o"
  "CMakeFiles/gw_util.dir/log.cc.o.d"
  "CMakeFiles/gw_util.dir/rng.cc.o"
  "CMakeFiles/gw_util.dir/rng.cc.o.d"
  "CMakeFiles/gw_util.dir/thread_pool.cc.o"
  "CMakeFiles/gw_util.dir/thread_pool.cc.o.d"
  "libgw_util.a"
  "libgw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
