// Black-Scholes Monte-Carlo option pricing (BS).
//
// The paper's related work (§II) cites Mithra, which demonstrates GPU
// MapReduce on exactly this workload: "compute-intensive Monte Carlo
// simulations ... implements the Black Scholes option pricing model ... as
// a sample benchmark". This sixth application exercises the same
// map-heavy, tiny-output profile on Glasswing: each record is one option
// contract, the map kernel prices it with a closed-form evaluation over a
// grid of volatilities (a deterministic stand-in for Monte-Carlo paths so
// the result is verifiable), and the reduce aggregates per-expiry-bucket
// totals.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "apps/common.h"
#include "util/bytes.h"

namespace gw::apps {

struct BlackScholesConfig {
  int paths = 256;  // volatility-grid evaluations per option (compute knob)
};

// Record: 6 floats (spot, strike, rate, volatility, expiry years, unused).
constexpr std::uint64_t kOptionRecordSize = 24;

AppSpec black_scholes(BlackScholesConfig config = {});

// `options` records with seeded, bounded parameters.
util::Bytes generate_options(std::uint64_t options, std::uint64_t seed);

// Closed-form price for one option record (used by map and by tests).
double price_option(float spot, float strike, float rate, float vol,
                    float expiry);

// Reference aggregate: per expiry bucket (whole years), summed call price.
std::map<std::uint32_t, double> black_scholes_reference(
    const util::Bytes& options, const BlackScholesConfig& config);

}  // namespace gw::apps
