// Pinned intermediate store: a FileSystem overlay for multi-round DAGs.
//
// Between DAG rounds, a round's reduce output can either be materialized
// to the base filesystem (checkpoint: survives crashes, costs the full
// DFS write/replication path) or stay PINNED in the producing node's
// memory (free to write, free to re-read locally, charged only for the
// wire when a remote node pulls it — and gone if the host dies). The DAG
// driver flips set_pin_writes() per round according to the edge kind.
//
// Independently, set_cache_reads() turns on an input block cache: reads
// of base-fs files are remembered per (node, range), so an iterative job
// re-reading the same splits every round (kmeans) pays the DFS read cost
// once. Cache loss on a crash is harmless — the base copy is authoritative;
// pinned-output loss surfaces as DataLossError and the DAG driver rewinds.
//
// Both uses share one per-node pin budget (DAG default: the store share of
// the job's memory-governor budget). Pinned writes over budget spill
// through to the base fs; cache inserts over budget are skipped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "gwdfs/fs.h"

namespace gw::dfs {

class PinnedFs : public FileSystem {
 public:
  // `node_budget_bytes` caps pinned + cached bytes per node; 0 = unlimited.
  PinnedFs(cluster::Platform& platform, FileSystem& base,
           std::uint64_t node_budget_bytes = 0);
  ~PinnedFs() override;

  FileSystem& base() { return base_; }
  const FileSystem& base() const { return base_; }

  // Routing for subsequent writes: pinned (node-local memory, subject to
  // budget) or pass-through to the base fs (checkpoint). Default: off.
  void set_pin_writes(bool pin) { pin_writes_ = pin; }
  // Input caching for reads of base-fs files. Default: off. With both
  // knobs off the overlay is fully transparent.
  void set_cache_reads(bool on) { cache_reads_ = on; }

  sim::Task<> write(int node, const std::string& path,
                    util::Bytes data) override;
  sim::Task<util::Bytes> read(int node, const std::string& path,
                              std::uint64_t offset, std::uint64_t len) override;
  bool exists(const std::string& path) const override;
  std::uint64_t file_size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& path) override;
  std::vector<int> block_locations(const std::string& path,
                                   std::uint64_t index) const override;
  std::uint64_t block_size() const override { return base_.block_size(); }
  const char* name() const override { return "pinned"; }

  // True when `path` lives in pinned memory and its host is still up.
  bool pinned(const std::string& path) const;
  // True when `path` was pinned but its host died: reads would throw.
  bool lost(const std::string& path) const;

  std::uint64_t node_budget_bytes() const { return budget_; }
  std::uint64_t pinned_bytes(int node) const;
  // Max pinned + cached occupancy observed on any node.
  std::uint64_t peak_pinned_bytes() const { return peak_; }
  // Pinned writes diverted to the base fs because the budget was full.
  std::uint64_t pin_spills() const { return pin_spills_; }
  // Bytes served from the input cache instead of the base fs.
  std::uint64_t cache_hit_bytes() const { return cache_hit_bytes_; }
  // Bytes pulled over the wire from a remote pinned host.
  std::uint64_t remote_pin_bytes() const { return remote_pin_bytes_; }
  // Pinned files whose host crashed.
  std::uint64_t lost_files() const { return lost_files_; }

 private:
  struct PinFile {
    util::Bytes data;
    int host = -1;
    bool lost = false;
  };
  // Exact-range input cache key: (reader node, path, offset, len). Rounds
  // re-read identical splits, so exact matching hits every repeat read.
  using CacheKey = std::tuple<int, std::string, std::uint64_t, std::uint64_t>;

  bool fits(int node, std::uint64_t bytes) const;
  void account(int node, std::uint64_t bytes);
  void drop_cached(const std::string& path);
  void on_crash(int node);

  cluster::Platform& platform_;
  FileSystem& base_;
  std::uint64_t budget_ = 0;
  bool pin_writes_ = false;
  bool cache_reads_ = false;
  std::map<std::string, PinFile> files_;
  std::map<CacheKey, util::Bytes> cache_;
  std::vector<std::uint64_t> node_bytes_;
  std::uint64_t peak_ = 0;
  std::uint64_t pin_spills_ = 0;
  std::uint64_t cache_hit_bytes_ = 0;
  std::uint64_t remote_pin_bytes_ = 0;
  std::uint64_t lost_files_ = 0;
  int crash_listener_id_ = -1;
};

}  // namespace gw::dfs
