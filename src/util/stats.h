// Small statistics helpers used by pipeline instrumentation and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace gw::util {

// Streaming mean/variance (Welford).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0; }
  double max() const { return n_ ? max_ : 0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0, m2_ = 0, sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gw::util
