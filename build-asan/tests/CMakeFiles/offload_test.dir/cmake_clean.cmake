file(REMOVE_RECURSE
  "CMakeFiles/offload_test.dir/offload_test.cc.o"
  "CMakeFiles/offload_test.dir/offload_test.cc.o.d"
  "offload_test"
  "offload_test.pdb"
  "offload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
