// Deterministic random number generation.
//
// All workload generators in this repo are seeded so every test and bench is
// bit-reproducible. Rng is xoshiro256** (public-domain algorithm by
// Blackman & Vigna) seeded via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace gw::util {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  result_type operator()() { return next(); }

  // Uniform integer in [0, bound), bound > 0. Uses Lemire's multiply-shift
  // rejection-free mapping (slight modulo bias is irrelevant for workloads).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Fork a statistically independent stream (e.g. per node, per split).
  Rng fork(std::uint64_t stream_id) {
    std::uint64_t sm = next() ^ (stream_id * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

// Zipf-distributed sampler over ranks 1..n with exponent s. Used to model
// word frequencies (WordCount) and URL popularity (PageviewCount); both of
// the paper's text inputs are heavy-tailed. Precomputes the CDF, O(log n)
// per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  // Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gw::util
