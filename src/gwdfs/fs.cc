#include "gwdfs/fs.h"

#include <algorithm>

#include "util/error.h"
#include "util/hash.h"

namespace gw::dfs {

Dfs::Dfs(cluster::Platform& platform, DfsConfig config)
    : platform_(platform), config_(config) {
  GW_CHECK(config_.block_size > 0);
  GW_CHECK(config_.replication >= 1);
}

void Dfs::set_replication(int replication) {
  GW_CHECK(replication >= 1);
  config_.replication = replication;
}

std::uint64_t Dfs::num_blocks(const FileMeta& meta) const {
  return (meta.data.size() + config_.block_size - 1) / config_.block_size;
}

std::vector<int> Dfs::place_block(int writer, const std::string& path,
                                  std::uint64_t index) const {
  // First replica on the writer (HDFS policy); the rest rotate from a
  // per-block deterministic offset so data spreads evenly.
  const int n = platform_.num_nodes();
  const int replicas = std::min(config_.replication, n);
  std::vector<int> out;
  out.reserve(replicas);
  out.push_back(writer);
  const std::uint64_t h = util::fnv1a(path) ^ util::mix64(index);
  int next = static_cast<int>(h % static_cast<std::uint64_t>(n));
  while (static_cast<int>(out.size()) < replicas) {
    if (std::find(out.begin(), out.end(), next) == out.end()) {
      out.push_back(next);
    }
    next = (next + 1) % n;
  }
  return out;
}

sim::Task<> Dfs::write(int node, const std::string& path, util::Bytes data) {
  if (exists(path)) util::throw_error("dfs write: path exists: " + path);
  auto& sim = platform_.sim();

  FileMeta meta;
  meta.data = std::move(data);
  const std::uint64_t size = meta.data.size();
  const std::uint64_t blocks =
      std::max<std::uint64_t>(1, (size + config_.block_size - 1) / config_.block_size);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    meta.replicas.push_back(place_block(node, path, b));
  }
  // Charge the client JNI boundary for the whole payload once.
  co_await sim.delay(config_.client_call_overhead_s +
                     config_.client_per_byte_overhead_s *
                         static_cast<double>(size));

  // Per block: replication pipeline — the writer streams to replica 1, which
  // streams to replica 2, etc.; every replica also writes its disk. Blocks
  // are written back-to-back (HDFS streams a file sequentially) but the
  // replica-side work is concurrent per block.
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t lo = b * config_.block_size;
    const std::uint64_t len = std::min(config_.block_size, size - lo);
    const auto& replicas = meta.replicas[b];
    sim::TaskGroup group(sim);
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      if (r > 0) {
        group.spawn(platform_.transport().transfer(
            replicas[r - 1], replicas[r], net::kPortDfs,
            net::TrafficClass::kDfs, len));
      }
      group.spawn(platform_.node(replicas[r])
                      .disk_stream_write(len, cluster::Node::amortized_seek(len)));
    }
    co_await group.wait();
  }
  files_.emplace(path, std::move(meta));
}

sim::Task<> Dfs::write_distributed(const std::string& path, util::Bytes data) {
  if (exists(path)) util::throw_error("dfs write: path exists: " + path);
  auto& sim = platform_.sim();
  const int n = platform_.num_nodes();
  const int replicas = std::min(config_.replication, n);

  FileMeta meta;
  meta.data = std::move(data);
  const std::uint64_t size = meta.data.size();
  const std::uint64_t blocks = std::max<std::uint64_t>(
      1, (size + config_.block_size - 1) / config_.block_size);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    // Rotating placement: no node hosts a disproportionate share.
    std::vector<int> locs;
    const std::uint64_t h = util::fnv1a(path) ^ util::mix64(b * 2654435761ull);
    int next = static_cast<int>(h % static_cast<std::uint64_t>(n));
    while (static_cast<int>(locs.size()) < replicas) {
      if (std::find(locs.begin(), locs.end(), next) == locs.end()) {
        locs.push_back(next);
      }
      next = (next + 1) % n;
    }
    meta.replicas.push_back(std::move(locs));
  }

  // Per block: replica disk writes + pipeline transfers, concurrently
  // across blocks (the external client streams blocks to distinct nodes).
  sim::TaskGroup group(sim);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t lo = b * config_.block_size;
    const std::uint64_t len = std::min(config_.block_size, size - lo);
    const auto& locs = meta.replicas[b];
    for (std::size_t r = 0; r < locs.size(); ++r) {
      if (r > 0) {
        group.spawn(platform_.transport().transfer(
            locs[r - 1], locs[r], net::kPortDfs, net::TrafficClass::kDfs,
            len));
      }
      group.spawn(platform_.node(locs[r])
                      .disk_stream_write(len, cluster::Node::amortized_seek(len)));
    }
  }
  co_await group.wait();
  files_.emplace(path, std::move(meta));
}

sim::Task<util::Bytes> Dfs::read(int node, const std::string& path,
                                 std::uint64_t offset, std::uint64_t len) {
  auto it = files_.find(path);
  if (it == files_.end()) util::throw_error("dfs read: no such file: " + path);
  const FileMeta& meta = it->second;
  GW_CHECK_MSG(offset + len <= meta.data.size(), "dfs read out of range");
  auto& sim = platform_.sim();

  co_await sim.delay(config_.client_call_overhead_s +
                     config_.client_per_byte_overhead_s *
                         static_cast<double>(len));

  // Touch every block overlapping the range; prefer a local replica.
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;
  while (pos < end) {
    const std::uint64_t b = pos / config_.block_size;
    const std::uint64_t block_end = (b + 1) * config_.block_size;
    const std::uint64_t chunk = std::min(end, block_end) - pos;
    const auto& replicas = meta.replicas.at(b);
    const bool local =
        std::find(replicas.begin(), replicas.end(), node) != replicas.end();
    // Sequential block streaming: seeks amortize over contiguous I/O.
    const double seek = cluster::Node::amortized_seek(chunk);
    if (local) {
      ++local_reads_;
      co_await platform_.node(node).disk_stream_read(chunk, seek);
    } else {
      ++remote_reads_;
      const int remote = replicas.front();
      co_await platform_.node(remote).disk_stream_read(chunk, seek);
      co_await platform_.transport().transfer(
          remote, node, net::kPortDfs, net::TrafficClass::kDfs, chunk);
    }
    pos += chunk;
  }

  util::Bytes out(meta.data.begin() + static_cast<std::ptrdiff_t>(offset),
                  meta.data.begin() + static_cast<std::ptrdiff_t>(offset + len));
  co_return out;
}

bool Dfs::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::uint64_t Dfs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) util::throw_error("dfs size: no such file: " + path);
  return it->second.data.size();
}

std::vector<std::string> Dfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, meta] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

std::vector<int> Dfs::block_locations(const std::string& path,
                                      std::uint64_t index) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("dfs locations: no such file: " + path);
  }
  return it->second.replicas.at(index);
}

LocalFs::LocalFs(cluster::Platform& platform, LocalFsConfig config)
    : platform_(platform), config_(config) {}

sim::Task<> LocalFs::write(int node, const std::string& path,
                           util::Bytes data) {
  auto& entry = files_[path];
  if (!entry.nodes.empty() && entry.data != nullptr &&
      std::find(entry.nodes.begin(), entry.nodes.end(), node) !=
          entry.nodes.end()) {
    util::throw_error("localfs write: path exists on node: " + path);
  }
  const std::uint64_t size = data.size();
  entry.data = std::make_shared<const util::Bytes>(std::move(data));
  entry.nodes.push_back(node);
  std::sort(entry.nodes.begin(), entry.nodes.end());
  co_await platform_.sim().delay(config_.open_overhead_s);
  co_await platform_.node(node).disk_stream_write(
      size, cluster::Node::amortized_seek(size));
}

sim::Task<util::Bytes> LocalFs::read(int node, const std::string& path,
                                     std::uint64_t offset, std::uint64_t len) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs read: no such file: " + path);
  }
  const Entry& entry = it->second;
  if (std::find(entry.nodes.begin(), entry.nodes.end(), node) ==
      entry.nodes.end()) {
    util::throw_error("localfs read: file not hosted on node: " + path);
  }
  GW_CHECK_MSG(offset + len <= entry.data->size(), "localfs read out of range");
  co_await platform_.sim().delay(config_.open_overhead_s);
  co_await platform_.node(node).disk_stream_read(
      len, cluster::Node::amortized_seek(len));
  util::Bytes out(entry.data->begin() + static_cast<std::ptrdiff_t>(offset),
                  entry.data->begin() + static_cast<std::ptrdiff_t>(offset + len));
  co_return out;
}

bool LocalFs::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::uint64_t LocalFs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs size: no such file: " + path);
  }
  return it->second.data->size();
}

std::vector<std::string> LocalFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, entry] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

std::vector<int> LocalFs::block_locations(const std::string& path,
                                          std::uint64_t /*index*/) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs locations: no such file: " + path);
  }
  return it->second.nodes;
}

std::uint64_t LocalFs::block_size() const {
  // Whole file is one locality unit.
  return ~0ull;
}

void LocalFs::replicate_everywhere(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs replicate: no such file: " + path);
  }
  it->second.nodes.clear();
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    it->second.nodes.push_back(n);
  }
}

}  // namespace gw::dfs
