// Figure 4: intermediate-data handling knobs (WC on one Type-1 node,
// local FS).
//  (a) Partitioning-stage and Kernel-stage times vs the number of
//      partitioner threads N: partitioning dominates at N=1 and drops below
//      the kernel from a few threads on.
//  (b) Merge delay vs partitions-per-node P for several N: more partitions
//      -> parallel merging -> sharply lower merge delay; more partitioner
//      threads -> slightly higher merge delay (mergers starved of cores
//      during the map phase).
//  (external) Memory-governed external operation: intermediate volume r×
//      the node budget for r up to 8. Outputs must stay byte-identical to
//      the unlimited-memory run at every ratio, peak occupancy must stay
//      under the budget, and the slowdown must grow sub-quadratically in r
//      (the multi-level merge costs O(r log r) extra i/o, not O(r^2)).
//      Emits BENCH_fig4_external.json for PR-over-PR tracking.
#include <cmath>

#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(24ull << 20);
const std::uint64_t kExternalInputBytes = bench::scaled_bytes(8ull << 20);

core::JobResult run_config(const util::Bytes& input, int n_threads, int p) {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = 512 << 10;
  // Partitioning-heavy configuration (§IV-B3 analyses WC's intermediate
  // volume): simple collection keeps every occurrence.
  cfg.output_mode = core::OutputMode::kSharedPool;
  cfg.use_combiner = false;
  cfg.partitioner_threads = n_threads;
  cfg.partitions_per_node = p;
  cfg.cache_threshold_bytes = 256 << 20;  // all intermediate cached: the
  // merge phase must consolidate everything after map, so its parallelism
  // (one merger per partition) governs the delay
  core::JobResult result;
  bench::RunOpts opts;
  opts.local_fs = true;
  bench::run_glasswing(1, apps::wordcount().kernels, input, cfg, opts,
                       &result);
  return result;
}

// One governed run for the external sweep: WC, shared pool, no combiner
// (partitioning-heavy, large intermediate volume), one Type-1 node, local
// FS. Returns the job result plus every output file's bytes so the
// byte-identity property can be checked against the unlimited run.
struct ExternalRun {
  core::JobResult result;
  std::map<std::string, util::Bytes> files;
};

ExternalRun run_external(const util::Bytes& input,
                         std::uint64_t node_memory_bytes) {
  cluster::Platform p = bench::make_platform(1);
  dfs::LocalFs fs(p);
  bench::stage_input(p, fs, "/in/wiki", input);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = 512 << 10;
  cfg.output_mode = core::OutputMode::kSharedPool;
  cfg.use_combiner = false;
  cfg.partitioner_threads = 4;
  cfg.partitions_per_node = 8;
  cfg.node_memory_bytes = node_memory_bytes;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  ExternalRun out;
  out.result = rt.run(apps::wordcount().kernels, cfg);
  for (const auto& path : out.result.output_files) {
    util::Bytes contents;
    p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                     util::Bytes* o) -> sim::Task<> {
      *o = co_await f.read_all(0, pa);
    }(fs, path, &contents));
    p.sim().run();
    out.files[path] = std::move(contents);
  }
  return out;
}

struct ExternalPoint {
  double ratio = 0;  // intermediate volume / node budget
  std::uint64_t budget = 0;
  double sim_seconds = 0;
  double slowdown = 1.0;
  bool output_ok = true;
  bool peak_ok = true;
  core::JobStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_wiki_text(kInputBytes, 2014);

  // --- Fig 4(a): stage times vs N (P fixed at 8) ---
  std::printf("=== Figure 4(a): map pipeline stage times vs partitioner "
              "threads N (P=8) ===\n");
  std::printf("%-6s %14s %14s %14s\n", "N", "Partitioning(s)", "Kernel(s)",
              "MapElapsed(s)");
  double part1 = 0, part4 = 0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const core::JobResult r = run_config(input, n, 8);
    std::printf("%-6d %14.3f %14.3f %14.3f\n", n, r.stages.partition,
                r.stages.kernel, r.stages.map_elapsed);
    if (n == 1) part1 = r.stages.partition;
    if (n == 4) {
      part4 = r.stages.partition;
      bench::print_host_path_summary("N=4,P=8", r);
    }
  }
  std::printf("Shape check: partitioning time falls with N: %.3f -> %.3f "
              "(%s)\n",
              part1, part4, part4 < part1 ? "OK" : "MISMATCH");

  // --- Fig 4(b): merge delay vs P for several N ---
  bench::SeriesTable table("P");
  for (int n : {1, 4, 16}) {
    for (int p : {1, 2, 4, 8, 16, 32}) {
      const core::JobResult r = run_config(input, n, p);
      table.add("merge-delay(N=" + std::to_string(n) + ")", p,
                r.merge_delay_seconds);
    }
  }
  table.print("Figure 4(b): merge delay vs partitions per node P");
  std::printf("\nShape check (paper: delay falls sharply with P; rises "
              "mildly with N):\n"
              "  N=4: P=1 %.3fs -> P=16 %.3fs\n"
              "  P=4: N=1 %.3fs vs N=16 %.3fs\n",
              table.at("merge-delay(N=4)", 1), table.at("merge-delay(N=4)", 16),
              table.at("merge-delay(N=1)", 4), table.at("merge-delay(N=16)", 4));

  for (int p : {1, 8, 32}) {
    const double t = table.at("merge-delay(N=4)", p);
    bench::register_point("Fig4/merge-delay/P:" + std::to_string(p),
                          [t](benchmark::State&) { return t; });
  }

  // --- external: memory-governed operation at volume r× the budget ---
  const util::Bytes ext_input =
      apps::generate_wiki_text(kExternalInputBytes, 2014);
  const ExternalRun clean = run_external(ext_input, 0);
  const std::uint64_t volume = clean.result.stats.intermediate_stored;

  std::vector<ExternalPoint> ext_points;
  ExternalPoint base;
  base.ratio = 0;
  base.sim_seconds = clean.result.elapsed_seconds;
  base.stats = clean.result.stats;
  ext_points.push_back(base);
  int ext_bad = 0;
  core::JobResult deepest_result = clean.result;
  for (const double r : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const std::uint64_t budget =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       static_cast<double>(volume) / r));
    const ExternalRun run = run_external(ext_input, budget);
    ExternalPoint pt;
    pt.ratio = r;
    pt.budget = budget;
    pt.sim_seconds = run.result.elapsed_seconds;
    pt.slowdown = run.result.elapsed_seconds / clean.result.elapsed_seconds;
    pt.output_ok = run.files == clean.files;
    pt.peak_ok = run.result.stats.peak_mem_bytes <= budget;
    pt.stats = run.result.stats;
    if (!pt.output_ok || !pt.peak_ok) ++ext_bad;
    ext_points.push_back(std::move(pt));
    deepest_result = run.result;
  }

  std::printf("\n=== Figure 4(external): WC with intermediate volume r x "
              "the node memory budget ===\n");
  std::printf("%-6s %12s %10s %9s %7s %9s %7s %11s %9s %4s\n", "r",
              "budget(KiB)", "sim(s)", "slowdown", "spills", "spill-KiB",
              "levels", "peak(KiB)", "stall(s)", "ok");
  for (const auto& pt : ext_points) {
    std::printf(
        "%-6g %12llu %10.3f %9.2f %7llu %9llu %7llu %11llu %9.3f %4s\n",
        pt.ratio, static_cast<unsigned long long>(pt.budget >> 10),
        pt.sim_seconds, pt.slowdown,
        static_cast<unsigned long long>(pt.stats.spills),
        static_cast<unsigned long long>(pt.stats.spill_bytes >> 10),
        static_cast<unsigned long long>(pt.stats.merge_levels),
        static_cast<unsigned long long>(pt.stats.peak_mem_bytes >> 10),
        pt.stats.mem_stall_seconds,
        pt.output_ok && pt.peak_ok ? "yes" : "NO");
  }
  const ExternalPoint& deepest = ext_points.back();
  const bool subquadratic =
      deepest.slowdown < deepest.ratio * deepest.ratio;
  std::printf("Shape check: outputs byte-identical at every budget (%s); "
              "slowdown at r=%g is %.2fx, sub-quadratic (%s)\n",
              ext_bad == 0 ? "OK" : "MISMATCH", deepest.ratio,
              deepest.slowdown, subquadratic ? "OK" : "MISMATCH");

  const char* ext_path = "BENCH_fig4_external.json";
  if (std::FILE* f = std::fopen(ext_path, "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench_scale\": %g,\n", bench::scale());
    std::fprintf(f, "  \"intermediate_volume_bytes\": %llu,\n",
                 static_cast<unsigned long long>(volume));
    std::fprintf(f, "  \"outputs_identical\": %s,\n",
                 ext_bad == 0 ? "true" : "false");
    std::fprintf(f, "  \"subquadratic\": %s,\n",
                 subquadratic ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < ext_points.size(); ++i) {
      const auto& pt = ext_points[i];
      const auto& s = pt.stats;
      std::fprintf(f, "    {\n");
      std::fprintf(f, "      \"ratio\": %g,\n", pt.ratio);
      std::fprintf(f, "      \"budget_bytes\": %llu,\n",
                   static_cast<unsigned long long>(pt.budget));
      std::fprintf(f, "      \"sim_seconds\": %.17g,\n", pt.sim_seconds);
      std::fprintf(f, "      \"slowdown\": %.4f,\n", pt.slowdown);
      std::fprintf(f, "      \"output_ok\": %s,\n",
                   pt.output_ok ? "true" : "false");
      std::fprintf(f, "      \"peak_ok\": %s,\n",
                   pt.peak_ok ? "true" : "false");
      std::fprintf(
          f,
          "      \"stats\": {\"spills\": %llu, \"spill_bytes\": %llu, "
          "\"merges\": %llu, \"merge_levels\": %llu, \"peak_mem_bytes\": "
          "%llu, \"mem_stall_seconds\": %.17g}\n",
          static_cast<unsigned long long>(s.spills),
          static_cast<unsigned long long>(s.spill_bytes),
          static_cast<unsigned long long>(s.merges),
          static_cast<unsigned long long>(s.merge_levels),
          static_cast<unsigned long long>(s.peak_mem_bytes),
          s.mem_stall_seconds);
      std::fprintf(f, "    }%s\n", i + 1 < ext_points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", ext_path);
  } else {
    std::fprintf(stderr, "cannot open %s\n", ext_path);
  }
  bench::print_host_path_summary("external,r=8", deepest_result);

  for (const auto& pt : ext_points) {
    if (pt.ratio <= 0) continue;
    const double t = pt.sim_seconds;
    bench::register_point("Fig4/external/r:" + std::to_string(pt.ratio),
                          [t](benchmark::State&) { return t; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
