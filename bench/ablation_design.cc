// Ablation: how much does each Glasswing design choice contribute?
// (DESIGN.md's per-design-choice index; not a paper figure, but quantifies
// the §I contributions separately.) WordCount, 4 Type-1 nodes, HDFS.
//
// Baseline = full Glasswing (double buffering, hash-table + combiner,
// parallel partitioner/mergers, fine-grained kernels). Each ablation
// disables exactly one mechanism.
#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(24ull << 20);
constexpr int kNodes = 4;

core::JobConfig base_config() {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = 256 << 10;
  return cfg;
}

double run(const util::Bytes& input, core::JobConfig cfg) {
  return bench::run_glasswing_cpu(kNodes, apps::wordcount().kernels, input,
                                  std::move(cfg));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_wiki_text(kInputBytes, 2014);

  const double full = run(input, base_config());

  core::JobConfig no_overlap = base_config();
  no_overlap.buffering = 1;  // input and output groups interlock (§III-D)
  const double t_no_overlap = run(input, no_overlap);

  core::JobConfig coarse = base_config();
  coarse.map_launch.threads = 1;  // coarse-grained: one kernel thread
  coarse.reduce_launch.threads = 1;
  const double t_coarse = run(input, coarse);

  core::JobConfig no_combiner = base_config();
  no_combiner.use_combiner = false;
  const double t_no_combiner = run(input, no_combiner);

  core::JobConfig serial_intermediate = base_config();
  serial_intermediate.partitioner_threads = 1;  // N = 1 (§IV-B3)
  serial_intermediate.partitions_per_node = 1;  // P = 1: serial merging
  const double t_serial_inter = run(input, serial_intermediate);

  std::printf("=== Ablation: WC on %d nodes, full Glasswing = %.3fs ===\n",
              kNodes, full);
  std::printf("%-36s %10s %10s\n", "configuration", "time(s)", "slowdown");
  auto row = [&](const char* name, double t) {
    std::printf("%-36s %10.3f %9.2fx\n", name, t, t / full);
  };
  row("full Glasswing (baseline)", full);
  row("- pipeline overlap (single buffer)", t_no_overlap);
  row("- fine-grained kernels (1 thread)", t_coarse);
  row("- combiner", t_no_combiner);
  row("- intermediate parallelism (N=P=1)", t_serial_inter);
  std::printf("\nEvery mechanism must contribute (slowdown > 1.0x when "
              "removed): %s\n",
              (t_no_overlap > full && t_coarse > full &&
               t_no_combiner > full && t_serial_inter > full)
                  ? "OK"
                  : "MISMATCH");

  bench::register_point("Ablation/full", [full](benchmark::State&) { return full; });
  bench::register_point("Ablation/no-overlap",
                        [t_no_overlap](benchmark::State&) { return t_no_overlap; });
  bench::register_point("Ablation/coarse-kernels",
                        [t_coarse](benchmark::State&) { return t_coarse; });
  bench::register_point("Ablation/no-combiner",
                        [t_no_combiner](benchmark::State&) { return t_no_combiner; });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
