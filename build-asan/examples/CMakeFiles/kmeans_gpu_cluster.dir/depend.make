# Empty dependencies file for kmeans_gpu_cluster.
# This may be replaced when dependencies are built.
