file(REMOVE_RECURSE
  "CMakeFiles/gw_cluster.dir/cluster.cc.o"
  "CMakeFiles/gw_cluster.dir/cluster.cc.o.d"
  "libgw_cluster.a"
  "libgw_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
