file(REMOVE_RECURSE
  "CMakeFiles/fig5_reduce.dir/fig5_reduce.cc.o"
  "CMakeFiles/fig5_reduce.dir/fig5_reduce.cc.o.d"
  "fig5_reduce"
  "fig5_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
