file(REMOVE_RECURSE
  "CMakeFiles/fig2_ts.dir/fig2_ts.cc.o"
  "CMakeFiles/fig2_ts.dir/fig2_ts.cc.o.d"
  "fig2_ts"
  "fig2_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
