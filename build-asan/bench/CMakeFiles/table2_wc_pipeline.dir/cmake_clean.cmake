file(REMOVE_RECURSE
  "CMakeFiles/table2_wc_pipeline.dir/table2_wc_pipeline.cc.o"
  "CMakeFiles/table2_wc_pipeline.dir/table2_wc_pipeline.cc.o.d"
  "table2_wc_pipeline"
  "table2_wc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_wc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
