// Straightforward reference implementations of the host-side record path.
//
// These are the pre-optimization algorithms (priority-queue k-way merge,
// decode-per-comparison sort) kept as an executable specification: the
// optimized PairList::sort_by_key and merge_runs in kv.cc must produce
// byte-identical output. Property tests assert the equivalence, and
// bench/host_path reports the speedup of the optimized path over these.
#pragma once

#include <vector>

#include "core/kv.h"

namespace gw::core::reference {

// k-way merge via a binary heap of per-run readers, re-encoding every pair
// through RunBuilder::add. Byte-identical to core::merge_runs.
Run merge_runs(const std::vector<const Run*>& inputs, bool compress);
Run merge_runs(const std::vector<Run>& inputs, bool compress);

// Returns the pairs of `in` in stable key order as a new PairList (the
// result of PairList::sort_by_key, rebuilt pair by pair).
PairList sorted_by_key(const PairList& in);

}  // namespace gw::core::reference
