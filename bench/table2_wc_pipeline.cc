// Table II: WordCount map-pipeline time breakdown on one Type-1 node
// (local FS, CPU device), under:
//   (i)   hash-table collector + combiner, double buffering
//   (ii)  hash-table collector, no combiner, double buffering
//   (iii) simple (shared-pool) collection, no combiner, double buffering
//   (iv)  hash-table + combiner, SINGLE buffering
// Rows: Input, Kernel, Partitioning stage busy times, map elapsed time,
// merge delay, reduce time. The paper's effects to reproduce: the combiner
// cuts partitioning/merge/reduce cost; simple collection lowers kernel time
// (no hash probes/contention) but blows up partitioning, which becomes the
// dominant stage; single buffering serializes Input+Kernel.
#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(24ull << 20);

core::JobResult run_config(const util::Bytes& input, core::OutputMode mode,
                           bool combiner, int buffering) {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = 512 << 10;
  cfg.output_mode = mode;
  cfg.use_combiner = combiner;
  cfg.buffering = buffering;
  cfg.cache_threshold_bytes = 2 << 20;  // force background merge activity
  core::JobResult result;
  bench::RunOpts opts;
  opts.local_fs = true;  // §IV-B runs without HDFS
  bench::run_glasswing(1, apps::wordcount().kernels, input, cfg, opts,
                       &result);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_wiki_text(kInputBytes, 2014);

  const core::JobResult i =
      run_config(input, core::OutputMode::kHashTable, true, 2);
  const core::JobResult ii =
      run_config(input, core::OutputMode::kHashTable, false, 2);
  const core::JobResult iii =
      run_config(input, core::OutputMode::kSharedPool, false, 2);
  const core::JobResult iv =
      run_config(input, core::OutputMode::kHashTable, true, 1);

  std::printf("=== Table II: WC map pipeline breakdown (seconds) ===\n");
  bench::print_stage_breakdown({"hash+comb", "hash", "simple", "single-buf"},
                               {&i, &ii, &iii, &iv}, /*show_staging=*/false);

  std::printf("\n");
  bench::print_host_path_summary("hash+comb", i);
  bench::print_host_path_summary("hash", ii);
  bench::print_host_path_summary("simple", iii);
  bench::print_host_path_summary("single-buf", iv);

  std::printf(
      "\nShape checks (paper Table II):\n"
      "  simple collection lowers kernel time vs hash: %.3fs -> %.3fs (%s)\n"
      "  ...but partitioning explodes and dominates: %.3fs -> %.3fs (%s)\n"
      "  no combiner inflates merge delay + reduce: %.3f+%.3f -> %.3f+%.3f\n"
      "  single buffering: map elapsed ~ Input + Kernel: %.3f vs %.3f+%.3f\n",
      ii.stages.kernel, iii.stages.kernel,
      iii.stages.kernel < ii.stages.kernel ? "OK" : "MISMATCH",
      ii.stages.partition, iii.stages.partition,
      iii.stages.partition > ii.stages.partition ? "OK" : "MISMATCH",
      i.merge_delay_seconds, i.reduce_phase_seconds, ii.merge_delay_seconds,
      ii.reduce_phase_seconds, iv.stages.map_elapsed, iv.stages.input,
      iv.stages.kernel);

  std::printf("\n");
  bench::print_traffic_split("hash+comb", i);
  bench::print_traffic_split("hash", ii);
  bench::print_traffic_split("simple", iii);
  bench::print_traffic_split("single-buf", iv);

  bench::register_point("Table2/WC/hash+comb",
                        [t = i.elapsed_seconds](benchmark::State&) { return t; });
  bench::register_point("Table2/WC/hash",
                        [t = ii.elapsed_seconds](benchmark::State&) { return t; });
  bench::register_point("Table2/WC/simple",
                        [t = iii.elapsed_seconds](benchmark::State&) { return t; });
  bench::register_point("Table2/WC/single-buffer",
                        [t = iv.elapsed_seconds](benchmark::State&) { return t; });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
