// Vertical scalability (§IV-C): Glasswing across compute devices — the
// same application and API, different accelerators. KM (compute-bound) and
// MM (data-heavy) on one node per device preset, plus the paper's K20m
// consistency check: KM/MM on 1..8 Type-2 nodes scale like the GTX480
// cluster does.
#include "apps/kmeans.h"
#include "apps/matmul.h"
#include "bench/common.h"

namespace {

using namespace gw;

double run_on_device(const core::AppKernels& app, const util::Bytes& input,
                     cl::DeviceSpec device, cluster::NodeSpec node,
                     int nodes = 1) {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/data"};
  cfg.output_path = "/out";
  cfg.split_size = 256 << 10;
  bench::RunOpts opts;
  opts.local_fs = true;
  opts.device = std::move(device);
  opts.node = std::move(node);
  return bench::run_glasswing(nodes, app, input, cfg, opts);
}

}  // namespace

int main(int argc, char** argv) {
  apps::KmeansConfig km{.k = 512, .dims = 4};
  const auto centers = apps::generate_centers(km, 11);
  const util::Bytes points =
      apps::generate_points(km, bench::scaled_bytes(300000), 22);
  const auto km_app = apps::kmeans(km, centers);

  apps::MatmulConfig mm{.n = 512, .tile = 256};  // 64 ops/byte: compute-bound
  const util::Bytes tiles = apps::generate_tile_pairs(mm, 5, 6);
  const auto mm_app = apps::matmul(mm);

  struct DevicePoint {
    const char* name;
    cl::DeviceSpec spec;
    cluster::NodeSpec node;
  };
  const DevicePoint devices[] = {
      {"CPU-2xE5620", cl::DeviceSpec::cpu_dual_e5620(),
       cluster::NodeSpec::das4_type1()},
      {"CPU-2xE5-2640", cl::DeviceSpec::cpu_dual_e5_2640(),
       cluster::NodeSpec::das4_type2()},
      {"GTX480", cl::DeviceSpec::gtx480(), cluster::NodeSpec::das4_type1()},
      {"GTX680", cl::DeviceSpec::gtx680(), cluster::NodeSpec::das4_type1()},
      {"K20m", cl::DeviceSpec::k20m(), cluster::NodeSpec::das4_type2()},
      {"XeonPhi-5110P", cl::DeviceSpec::xeon_phi_5110p(),
       cluster::NodeSpec::das4_type2()},
  };

  std::printf("=== Vertical scalability: one node, same code, different "
              "devices ===\n");
  std::printf("%-16s %12s %12s\n", "device", "KM-1024(s)", "MM(s)");
  double km_cpu = 0, km_480 = 0, km_k20 = 0;
  for (const auto& d : devices) {
    const double km_t = run_on_device(km_app.kernels, points, d.spec, d.node);
    const double mm_t = run_on_device(mm_app.kernels, tiles, d.spec, d.node);
    std::printf("%-16s %12.3f %12.3f\n", d.name, km_t, mm_t);
    if (std::string(d.name) == "CPU-2xE5620") km_cpu = km_t;
    if (std::string(d.name) == "GTX480") km_480 = km_t;
    if (std::string(d.name) == "K20m") km_k20 = km_t;
    bench::register_point(std::string("Vertical/KM/") + d.name,
                          [km_t](benchmark::State&) { return km_t; });
  }
  std::printf("\nShape checks: GPUs beat the CPU on KM (%.3f vs %.3f, %s); "
              "K20m at least matches the GTX480 (%.3f vs %.3f, %s)\n",
              km_480, km_cpu, km_480 < km_cpu ? "OK" : "MISMATCH", km_k20,
              km_480, km_k20 <= km_480 * 1.2 ? "OK" : "MISMATCH");

  // K20m cluster consistency (paper: "we ran Glasswing KM and MM on up to
  // [8] Type-2 nodes equipped with a K20m and obtained consistent scaling").
  bench::SeriesTable table("nodes");
  for (int nodes : {1, 2, 4, 8}) {
    table.add("KM/K20m", nodes,
              run_on_device(km_app.kernels, points, cl::DeviceSpec::k20m(),
                            cluster::NodeSpec::das4_type2(), nodes));
    table.add("MM/K20m", nodes,
              run_on_device(mm_app.kernels, tiles, cl::DeviceSpec::k20m(),
                            cluster::NodeSpec::das4_type2(), nodes));
  }
  table.print("K20m cluster scaling (Type-2 nodes)");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
