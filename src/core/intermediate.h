// Intermediate data management (paper §III-B).
//
// Each node runs an IntermediateStore holding the Partitions assigned to it:
// an in-memory cache of runs that is merged and flushed to disk when its
// aggregate size exceeds a configurable threshold, plus on-disk runs that
// background merger threads continuously consolidate with multi-way merges
// so the number of intermediate files stays below a configurable count.
// All runs are serialized and compressed.
//
// With a MemoryGovernor attached (JobConfig::node_memory_bytes > 0) the
// store becomes a budgeted external sorter: producers block on the store
// pool before caching a run, pressure spills always go to disk, and the
// on-disk runs are consolidated by a multi-level merge tree whose fan-in is
// computed from the merge-pool budget (fan_in = merge_pool /
// merge_io_buffer_bytes - 1, floor 2). Each disk run carries its merge
// level; the deepest level produced is the merge_levels metric. Without a
// governor every path below reduces to the legacy unbounded-memory
// behavior, byte-identically.
//
// The store also measures the paper's *merge delay* metric: the time spent
// finishing merges after the map phase completes and before reduction can
// start (§III-B, Fig 4(b)).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "core/kv.h"
#include "core/memory.h"
#include "sim/sim.h"

namespace gw::core {

class IntermediateStore {
 public:
  // `node` hosts the store. Partitions are keyed by GLOBAL partition id, so
  // a store can absorb partitions reassigned from a crashed node; in a
  // failure-free job a node only ever sees the P ids it owns. `mem` may be
  // null (ungoverned legacy mode).
  IntermediateStore(cluster::Node& node, sim::Simulation& sim,
                    const JobConfig& config, MemoryGovernor* mem = nullptr);
  ~IntermediateStore();

  int local_partitions() const { return local_partitions_; }

  // Adds a run to global partition `g`; called by the partitioner threads
  // (local data) and the shuffle receiver (remote data). May trigger cache
  // flushes. Ungoverned, this completes without suspending (merging is
  // asynchronous); governed, it blocks on the store pool until the run's
  // bytes fit — the producer-side backpressure of the external sort.
  //
  // `dedup_tag` (nonzero) identifies the producing (split, chunk): task
  // re-execution and speculative clones regenerate byte-identical runs with
  // the same tag, and a tag already seen for `g` is dropped. Tags are
  // remembered for the store's whole lifetime — including across
  // take_partition — so a run consumed by reduce still shadows late
  // duplicates. Pure host-side bookkeeping: no simulated cost either way.
  sim::Task<> add_run(int g, Run run, std::uint64_t dedup_tag = 0);

  // Adds a run produced by a hierarchical combine pass over several
  // producers' runs; `tags` is the union of the constituents' dedup tags.
  // Dedup is all-or-nothing: every tag already seen drops the run as a
  // duplicate, none seen records them all and admits it. A partial overlap
  // would mean two different groupings of the same producer's output
  // reached this store, which the shuffle protocol cannot produce (combined
  // runs travel only on the main shuffle port, whose runs are all stored
  // before any recovery-port re-feed) — it aborts.
  sim::Task<> add_combined_run(int g, Run run,
                               std::vector<std::uint64_t> tags);

  // Runs dropped as duplicates of an already-seen dedup tag.
  std::uint64_t duplicate_runs_dropped() const { return dup_dropped_; }

  // Starts merger workers; they are joined by drain().
  void start_mergers();

  // Called once map+shuffle input is complete: consolidates every partition
  // to at most max_disk_runs (governed: also at most the budget fan-in)
  // runs, then stops the merger threads. The elapsed time of this call is
  // the merge delay.
  sim::Task<> drain();

  // Re-arms a drained store for a crash-recovery round: fresh work channel
  // and completion event, quiesced-merger checks, and cache accounting
  // recomputed from the runs actually held (the retry path reuses the store
  // across rounds). Dedup tags and metrics persist.
  void reopen();

  // Hands out a partition's final runs (cache + disk) for the reduce input
  // reader, releasing any store-pool holds on the cached part. `disk_bytes`
  // returns how many stored bytes must be read from disk. Only valid after
  // drain(). Unknown ids yield an empty vector.
  std::vector<Run> take_partition(int g, std::uint64_t* disk_bytes);

  // Budget-derived fan-in cap for disk merges (SIZE_MAX when ungoverned).
  std::size_t fanin_limit() const;

  // Metrics.
  std::uint64_t spills() const { return spills_; }
  std::uint64_t merges() const { return merges_; }
  // Total input runs consumed across all merges; merge_fanin_runs()/merges()
  // is the average merge fan-in.
  std::uint64_t merge_fanin_runs() const { return merge_fanin_runs_; }
  std::uint64_t spill_bytes() const { return spill_bytes_; }
  // Deepest merge level produced: spilled runs are level 1, a merge of
  // level-L (max) inputs produces level L+1.
  std::uint64_t merge_levels() const { return merge_levels_; }
  std::uint64_t cache_bytes() const { return cache_bytes_total_; }
  std::uint64_t stored_bytes() const;

 private:
  struct Part {
    std::vector<Run> cache;
    // Governed: store-pool hold per cached run (parallel to `cache`).
    std::vector<sim::Resource::Hold> cache_holds;
    std::vector<Run> disk;
    std::vector<int> disk_levels;  // merge level per disk run (parallel)
    std::uint64_t cache_bytes = 0;
    bool queued = false;
    std::set<std::uint64_t> seen_tags;  // never cleared (see add_run)
  };

  // Shared admission tail of add_run/add_combined_run: governed
  // backpressure, cache accounting and flush triggering.
  sim::Task<> admit(Part& part, Run run);
  sim::Task<> merger_loop(trace::TrackRef track);
  sim::Task<> service(int g, trace::TrackRef track);
  void enqueue(int g);
  void maybe_trigger_flushes(bool force);
  bool under_pressure() const;
  std::uint64_t effective_cache_threshold() const;
  std::size_t effective_max_disk_runs() const;
  double host_merge_seconds(std::uint64_t in_bytes, std::uint64_t raw_bytes,
                            std::uint64_t out_raw) const;

  cluster::Node& node_;
  sim::Simulation& sim_;
  const JobConfig& config_;
  MemoryGovernor* mem_;  // null = ungoverned legacy mode
  int local_partitions_;
  std::map<int, Part> parts_;  // global partition id -> state (ordered)
  std::uint64_t cache_bytes_total_ = 0;
  std::uint64_t dup_dropped_ = 0;

  std::unique_ptr<sim::Channel<int>> work_;
  std::unique_ptr<sim::TaskGroup> mergers_;
  std::size_t jobs_in_flight_ = 0;
  bool draining_ = false;
  std::unique_ptr<sim::Event> drained_;
  std::vector<trace::TrackRef> merger_tracks_;  // reused across rounds

  std::uint64_t spills_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t merge_fanin_runs_ = 0;
  std::uint64_t spill_bytes_ = 0;
  std::uint64_t merge_levels_ = 0;
  std::int32_t merge_name_ = -1;
  std::int32_t spill_name_ = -1;
};

}  // namespace gw::core
