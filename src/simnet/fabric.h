// Simulated cluster interconnect.
//
// Substitutes for the DAS-4 network the paper evaluates on (Gigabit
// Ethernet and QDR InfiniBand used as IP-over-InfiniBand). Each node has a
// full-duplex NIC modelled as a TX and an RX unit-capacity resource; a
// message of B bytes propagates after `latency`, then occupies sender TX and
// receiver RX for overhead + B/bandwidth. Payloads are real bytes, so
// everything the shuffle moves is byte-accurate.
//
// Topology: beyond the NICs, the fabric can model the core switch as a
// bisection-capacity resource. With `bisection_oversubscription` F > 0, at
// most max(1, num_nodes / F) wire occupancies may be in flight concurrently
// cluster-wide, so disjoint node pairs contend once the cluster outgrows the
// switch backplane — the effect that separates the paper's 1 GbE and
// QDR-IPoIB scaling curves at 16-64 nodes. The default F = 0 keeps the
// legacy infinite-bisection model (only NICs serialize), with an event
// sequence byte-identical to the pre-topology fabric.
//
// Chunking: with `max_chunk_bytes` > 0, a message larger than the chunk
// size occupies its links one chunk at a time, releasing NIC (and switch)
// capacity between chunks so concurrent flows interleave instead of queueing
// behind whole multi-megabyte sends. Per-message overhead is charged once;
// the payload is still delivered whole, byte-identical to an unchunked send.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/sim.h"
#include "util/bytes.h"
#include "util/trace.h"

namespace gw::net {

struct NetworkProfile {
  std::string name;
  double bandwidth_bytes_per_s;
  double latency_s;              // one-way propagation + switching
  double per_message_overhead_s; // protocol/stack cost per message

  // Core-switch oversubscription factor F: at most max(1, num_nodes / F)
  // concurrent wire occupancies cluster-wide. 0 = infinite bisection (the
  // legacy model; no switch resource exists and no extra awaits happen).
  double bisection_oversubscription = 0;
  // Split wire occupancy into chunks of at most this many bytes so large
  // messages interleave on shared links. 0 = unchunked (legacy).
  std::uint64_t max_chunk_bytes = 0;
  // Transport-level credit window per (src, dst, port) stream: senders may
  // have at most this many bytes in flight before the receiver consumes
  // them. 0 = no flow control (legacy). Interpreted by net::Transport; the
  // raw fabric ignores it.
  std::uint64_t credit_bytes = 0;
  // Rack topology: nodes [r*rack_size, (r+1)*rack_size) share top-of-rack
  // switch r. Intra-rack traffic bypasses the core-switch bisection
  // resource (only NICs serialize it); traffic between racks pays the
  // oversubscription toll. 0 = flat topology (legacy: every remote wire
  // occupancy contends for the core switch when one is modelled).
  int rack_size = 0;

  // 1 Gbit/s Ethernet: ~117 MiB/s effective, 100 us latency.
  static NetworkProfile gigabit_ethernet();
  // QDR InfiniBand via IP-over-InfiniBand: ~1.0 GiB/s effective TCP
  // throughput, 25 us latency (IPoIB, not verbs).
  static NetworkProfile qdr_infiniband_ipoib();
};

// A delivered message. User-declared constructor per the sim.h channel
// payload rule.
struct Message {
  Message() : src(-1), port(-1) {}
  Message(int src_in, int port_in, util::Bytes payload_in, bool eos_in = false,
          std::uint64_t tag_in = 0)
      : src(src_in), port(port_in), payload(std::move(payload_in)),
        eos(eos_in), tag(tag_in) {}

  int src;
  int port;
  util::Bytes payload;
  bool eos = false;  // end-of-stream marker (net::Transport framing)
  // Out-of-band sender metadata (e.g. a dedup key for re-executed task
  // output). Carried in the struct, NOT in the payload: contributes zero
  // wire bytes, so tagged and untagged sends have identical timing.
  std::uint64_t tag = 0;
};

// Well-known service ports.
enum Port : int {
  kPortShuffle = 1,       // Glasswing push shuffle
  kPortDfs = 2,           // DFS block pipeline
  kPortHadoopFetch = 3,   // Hadoop pull-shuffle requests
  kPortRackAgg = 4,       // intra-rack streams to the rack aggregator
  kPortBroadcast = 5,     // DAG driver broadcast of per-round state
  kPortHadoopReplyBase = 1000,  // + reducer id for fetch replies
  kPortRecoveryBase = 2000,     // + recovery round for crash re-shuffle
  // Per-job port namespacing for multi-tenant runs: a scheduled job with id
  // j owns ports [kPortJobStride * (j + 1), kPortJobStride * (j + 2)) and
  // addresses its private services at port_base + kPortShuffle etc. The
  // legacy single-job path uses port_base = 0, so its ports are the bare
  // enum values above and its event order is untouched. DFS traffic stays
  // on the shared kPortDfs regardless of tenant.
  kPortJobStride = 10000,
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, int num_nodes, NetworkProfile profile);

  int num_nodes() const { return num_nodes_; }
  const NetworkProfile& profile() const { return profile_; }
  sim::Simulation& sim() { return sim_; }

  // Transfers `payload` from src to dst and enqueues it on (dst, port).
  // Completes when the message has been handed to the destination inbox.
  // Local sends (src == dst) are free of NIC cost but still asynchronous.
  sim::Task<> send(int src, int dst, int port, util::Bytes payload,
                   std::uint64_t tag = 0);

  // Delivers an end-of-stream marker on (dst, port). Costs one 4-byte
  // control frame on the wire (the size of the u32 EOF sentinel it
  // replaces), so timing and byte accounting match the legacy protocol.
  sim::Task<> send_eos(int src, int dst, int port);

  // Charges the network cost of moving `bytes` from src to dst without
  // delivering a payload; used by the DFS replication pipeline and remote
  // block reads, where the real bytes are tracked by the filesystem layer.
  sim::Task<> transfer(int src, int dst, std::uint64_t bytes);

  // Inbox channel for (node, port); created on first use. Receivers loop on
  // recv() until the port is closed. A port closed before it was ever
  // opened materializes already-closed, so a late receiver still observes
  // end-of-stream.
  sim::Channel<Message>& inbox(int node, int port);

  // Closes an inbox so blocked receivers see end-of-stream. Idempotent; on
  // a never-opened port it records the close without materializing a
  // channel (see `open_inboxes`).
  void close_port(int node, int port);

  // Drops a fully drained inbox from the fabric, waking any stray blocked
  // receiver with end-of-stream first. Aborts if undelivered messages would
  // be lost. A later inbox() on the same (node, port) starts fresh, so
  // ports are reusable across jobs without the inbox map growing forever.
  void release_port(int node, int port);

  // Number of materialized inbox channels (lifetime hygiene observability).
  std::size_t open_inboxes() const { return inboxes_.size(); }

  // Materialized inboxes whose port falls in [port_lo, port_hi): the
  // per-job variant, so one tenant can audit its own namespace while
  // neighbours keep ports open.
  std::size_t open_inboxes(int port_lo, int port_hi) const;

  // End-of-run teardown for a crashed node: drops every inbox and
  // close-before-open record addressed to it, discarding undelivered
  // messages (data in flight to a dead machine vanishes with it). Returns
  // the number of messages dropped. Only call after the event loop drained;
  // any receiver the node ever ran must have terminated by then (crash
  // compensation guarantees this for the job protocols).
  std::size_t purge_node(int node);

  // Port-scoped purge: drops only the node's inboxes and close-before-open
  // records with port in [port_lo, port_hi). Multi-tenant teardown uses
  // this so one job's crash cleanup cannot discard traffic another resident
  // job still expects to deliver.
  std::size_t purge_node(int node, int port_lo, int port_hi);

  // Close-before-open records still outstanding. Entries are pruned when
  // the matching inbox() materializes or release_port() arrives; a value
  // that keeps growing across jobs on a reused simulation is a port-hygiene
  // bug (see check_quiesced).
  std::size_t pre_closed_count() const { return pre_closed_.size(); }

  // End-of-run invariant: no undelivered messages in any inbox and no
  // stale close-before-open records. Runtimes call this once the event
  // queue drained; aborts with a description on violation.
  void check_quiesced() const;

  // Job-scoped quiesce check: only inboxes and close-before-open records
  // with port in [port_lo, port_hi) must have drained. A finishing tenant
  // asserts its own namespace is clean; concurrent jobs' live ports (and
  // the shared DFS port) are out of scope and never trip it.
  void check_quiesced(int port_lo, int port_hi) const;

  // Concurrent wire occupancies the core switch admits; 0 when the switch
  // is not modelled (bisection_oversubscription == 0).
  std::int64_t core_switch_capacity() const {
    return core_ ? core_->capacity() : 0;
  }

  // Bytes whose wire occupancy traversed the core switch (inter-rack under
  // a rack topology; all remote bytes when flat). Counted regardless of
  // whether the switch resource is modelled, so flat and rack runs can be
  // compared on the same metric.
  std::uint64_t core_bytes() const { return core_bytes_; }

  std::uint64_t bytes_sent(int node) const { return stats_[node].bytes_tx; }
  std::uint64_t bytes_received(int node) const { return stats_[node].bytes_rx; }
  std::uint64_t messages_sent(int node) const { return stats_[node].msgs_tx; }
  std::uint64_t total_bytes_sent() const;

 private:
  struct NodeState {
    std::unique_ptr<sim::Resource> tx;
    std::unique_ptr<sim::Resource> rx;
    trace::TrackRef tx_track;
    trace::TrackRef rx_track;
  };
  struct NodeStats {
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t msgs_tx = 0;
  };

  // Shared body of send/send_eos. The wire model stays inline (no helper
  // coroutine): resource holds must live until after the inbox handoff so
  // the release/wakeup order at equal timestamps matches the legacy fabric
  // exactly — goldens depend on that event order.
  sim::Task<> send_impl(int src, int dst, int port, util::Bytes payload,
                        bool eos, std::uint64_t tag = 0);
  // Chunked wire occupancy for one direction; used by both send and
  // transfer when the message exceeds max_chunk_bytes.
  sim::Task<> occupy_chunked(int src, int dst, std::uint64_t bytes);

  // Whether a (src, dst) wire occupancy traverses the core switch: true
  // under a flat topology, false for intra-rack traffic when rack_size > 0
  // (it stays inside the top-of-rack switch).
  bool crosses_core(int src, int dst) const {
    return profile_.rack_size <= 0 ||
           src / profile_.rack_size != dst / profile_.rack_size;
  }

  sim::Simulation& sim_;
  int num_nodes_;
  NetworkProfile profile_;
  std::vector<NodeState> nodes_;
  std::vector<NodeStats> stats_;
  // Core switch as a counted resource; null under the legacy
  // infinite-bisection model so the default path acquires nothing.
  std::unique_ptr<sim::Resource> core_;
  std::uint64_t core_bytes_ = 0;  // remote bytes that crossed the core
  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<Message>>> inboxes_;
  // Ports closed before first use: consumed when the inbox materializes.
  std::set<std::pair<int, int>> pre_closed_;
  std::int32_t link_tx_name_ = -1;  // interned "net.tx" / "net.rx"
  std::int32_t link_rx_name_ = -1;
};

}  // namespace gw::net
