file(REMOVE_RECURSE
  "CMakeFiles/gwcl_test.dir/gwcl_test.cc.o"
  "CMakeFiles/gwcl_test.dir/gwcl_test.cc.o.d"
  "gwcl_test"
  "gwcl_test.pdb"
  "gwcl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gwcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
