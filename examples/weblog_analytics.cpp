// Weblog analytics: the paper's Pageview Count scenario (§IV-A1) end to
// end — an I/O-bound job over sparse web-server logs, comparing Glasswing
// against the Hadoop-like baseline on the same cluster, data and DFS.
//
// Build: cmake --build build && ./build/examples/weblog_analytics
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/pageview.h"
#include "baselines/hadoop/hadoop.h"
#include "core/job.h"

using namespace gw;

namespace {

void stage(cluster::Platform& p, dfs::Dfs& fs, const util::Bytes& log) {
  p.sim().spawn([](dfs::Dfs& f, util::Bytes data) -> sim::Task<> {
    co_await f.write_distributed("/logs/access.log", std::move(data));
  }(fs, log));
  p.sim().run();
}

}  // namespace

int main() {
  const util::Bytes log = apps::generate_weblog(8 << 20, 1234);
  std::printf("analyzing %.1f MB of access logs on an 8-node cluster\n",
              log.size() / 1048576.0);

  // Glasswing.
  cluster::Platform p1(cluster::ClusterSpec::homogeneous(
      8, cluster::NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs1(p1, dfs::DfsConfig{});
  stage(p1, fs1, log);
  core::JobConfig cfg;
  cfg.input_paths = {"/logs/access.log"};
  cfg.output_path = "/out/views";
  cfg.split_size = 256 << 10;
  core::GlasswingRuntime glasswing(p1, fs1, cl::DeviceSpec::cpu_dual_e5620());
  const core::JobResult gw = glasswing.run(apps::pageview_count().kernels, cfg);

  // Hadoop baseline, same everything.
  cluster::Platform p2(cluster::ClusterSpec::homogeneous(
      8, cluster::NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs2(p2, dfs::DfsConfig{});
  stage(p2, fs2, log);
  hadoop::HadoopConfig hcfg;
  hcfg.input_paths = {"/logs/access.log"};
  hcfg.output_path = "/out/views";
  hcfg.split_size = 256 << 10;
  hadoop::HadoopRuntime had(p2, fs2);
  const hadoop::HadoopResult hr = had.run(apps::pageview_count().kernels, hcfg);

  std::printf("\n%-12s %10s %10s %10s\n", "", "total(s)", "map(s)",
              "reduce(s)");
  std::printf("%-12s %10.3f %10.3f %10.3f\n", "Glasswing", gw.elapsed_seconds,
              gw.map_phase_seconds, gw.reduce_phase_seconds);
  std::printf("%-12s %10.3f %10.3f %10.3f\n", "Hadoop", hr.elapsed_seconds,
              hr.map_phase_seconds, hr.reduce_phase_seconds);
  std::printf("\nGlasswing is %.2fx faster (paper band: 1.2-4x on CPU "
              "clusters)\n",
              hr.elapsed_seconds / gw.elapsed_seconds);

  // Top URLs: read back Glasswing's output and rank.
  std::vector<std::pair<std::uint64_t, std::string>> top;
  for (const auto& path : gw.output_files) {
    util::Bytes contents;
    p1.sim().spawn([](dfs::Dfs& f, std::string pa,
                      util::Bytes* out) -> sim::Task<> {
      *out = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
    }(fs1, path, &contents));
    p1.sim().run();
    for (auto& [url, count] : core::read_output_file(contents)) {
      top.emplace_back(apps::parse_u64(count), url);
    }
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\ntop 5 of %zu distinct URLs:\n", top.size());
  for (std::size_t i = 0; i < 5 && i < top.size(); ++i) {
    std::printf("  %8llu  %s\n",
                static_cast<unsigned long long>(top[i].first),
                top[i].second.c_str());
  }
  return 0;
}
