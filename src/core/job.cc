#include "core/job.h"

#include <algorithm>

#include "core/intermediate.h"
#include "util/error.h"

namespace gw::core {

namespace {

constexpr std::uint32_t kEofMarker = 0xffffffffu;

// Per-node mutable state for one job run.
struct NodeRun {
  std::unique_ptr<IntermediateStore> store;
  MapMetrics map;
  ReduceMetrics reduce;
  double map_end = 0;
  double merge_delay = 0;
  std::unique_ptr<sim::Event> shuffle_done;
};

sim::Task<> shuffle_receiver(NodeContext ctx, sim::Event& done) {
  auto& inbox = ctx.platform->fabric().inbox(ctx.node_id, net::kPortShuffle);
  const int P = ctx.config->partitions_per_node;
  int eofs = 0;
  while (eofs < ctx.num_nodes) {
    auto msg = co_await inbox.recv();
    if (!msg) break;
    util::ByteReader r(msg->payload);
    const std::uint32_t g = r.get_u32();
    if (g == kEofMarker) {
      ++eofs;
      continue;
    }
    GW_CHECK_MSG(static_cast<int>(g) / P == ctx.node_id,
                 "partition routed to wrong node");
    ctx.store->add_run(static_cast<int>(g) % P, Run::deserialize(r));
  }
  done.set();
}

sim::Task<> node_main(NodeContext ctx, cl::Device* reduce_device,
                      SplitScheduler& scheduler, NodeRun& state) {
  auto& sim = ctx.sim();
  ctx.store->start_mergers();
  sim.spawn(shuffle_receiver(ctx, *state.shuffle_done));

  co_await run_map_phase(ctx, scheduler, state.map);
  state.map_end = sim.now();

  // Map phase done on this node: tell every node (including self) that no
  // more intermediate data will arrive from here.
  for (int dst = 0; dst < ctx.num_nodes; ++dst) {
    util::ByteWriter w;
    w.put_u32(kEofMarker);
    co_await ctx.platform->fabric().send(ctx.node_id, dst, net::kPortShuffle,
                                         w.take());
  }

  // Merge phase: continues until all remote data arrived and the merger
  // threads consolidated every partition (§III: "After the merge phase
  // completes, the reduce phase is started").
  co_await state.shuffle_done->wait();
  co_await ctx.store->drain();
  state.merge_delay = sim.now() - state.map_end;

  ctx.device = reduce_device;  // per-phase device selection
  co_await run_reduce_phase(ctx, state.reduce);
}

}  // namespace

std::vector<std::unique_ptr<cl::Device>> GlasswingRuntime::make_devices(
    const cl::DeviceSpec& spec) {
  std::vector<std::unique_ptr<cl::Device>> devices;
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    sim::Resource* cores = spec.type == cl::DeviceType::kCpu
                               ? &platform_.node(n).host_cores()
                               : nullptr;
    devices.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores));
  }
  return devices;
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs, cl::DeviceSpec device)
    : platform_(platform), fs_(fs) {
  map_devices_ = make_devices(device);
  reduce_devices_ = make_devices(device);
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs,
                                   cl::DeviceSpec map_device,
                                   cl::DeviceSpec reduce_device)
    : platform_(platform), fs_(fs) {
  map_devices_ = make_devices(map_device);
  reduce_devices_ = make_devices(reduce_device);
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs,
                                   std::vector<cl::DeviceSpec> per_node_devices)
    : platform_(platform), fs_(fs) {
  GW_CHECK_MSG(static_cast<int>(per_node_devices.size()) ==
                   platform_.num_nodes(),
               "one device spec per node required");
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    const cl::DeviceSpec& spec = per_node_devices[static_cast<std::size_t>(n)];
    sim::Resource* cores = spec.type == cl::DeviceType::kCpu
                               ? &platform_.node(n).host_cores()
                               : nullptr;
    map_devices_.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores));
    reduce_devices_.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores));
  }
}

JobResult GlasswingRuntime::run(const AppKernels& app, JobConfig config) {
  GW_CHECK_MSG(static_cast<bool>(app.map), "job needs a map function");
  GW_CHECK_MSG(!config.input_paths.empty(), "job needs input paths");
  GW_CHECK_MSG(!config.output_path.empty(), "job needs an output path");

  AppKernels effective_app = app;
  if (!effective_app.partition) {
    effective_app.partition = default_hash_partitioner();
  }
  // The combiner is only available with the hash-table collector (§III-F).
  if (config.output_mode != OutputMode::kHashTable ||
      !effective_app.combine.has_value()) {
    config.use_combiner = false;
  }

  if (config.output_replication > 0) {
    if (auto* hdfs = dynamic_cast<dfs::Dfs*>(&fs_)) {
      hdfs->set_replication(config.output_replication);
    }
  }

  auto& sim = platform_.sim();
  const int num_nodes = platform_.num_nodes();
  const double start = sim.now();

  SplitScheduler scheduler(
      SplitScheduler::make_splits(fs_, config.input_paths, config.split_size));

  std::vector<NodeRun> nodes(num_nodes);
  sim::TaskGroup all(sim);
  for (int n = 0; n < num_nodes; ++n) {
    NodeRun& state = nodes[n];
    state.store = std::make_unique<IntermediateStore>(platform_.node(n), sim,
                                                      config);
    state.shuffle_done = std::make_unique<sim::Event>(sim);

    NodeContext ctx;
    ctx.platform = &platform_;
    ctx.node = &platform_.node(n);
    ctx.fs = &fs_;
    ctx.device = map_devices_[n].get();
    ctx.store = state.store.get();
    ctx.config = &config;
    ctx.app = &effective_app;
    ctx.node_id = n;
    ctx.num_nodes = num_nodes;
    ctx.total_partitions = num_nodes * config.partitions_per_node;
    all.spawn(node_main(ctx, reduce_devices_[n].get(), scheduler, state));
  }

  bool failed = false;
  std::string failure;
  sim.spawn([](sim::TaskGroup& group, bool* failed_out,
               std::string* msg) -> sim::Task<> {
    try {
      co_await group.wait();
    } catch (const std::exception& e) {
      *failed_out = true;
      *msg = e.what();
    }
  }(all, &failed, &failure));
  sim.run();
  if (failed) util::throw_error("job failed: " + failure);

  JobResult result;
  result.elapsed_seconds = sim.now() - start;
  double map_end = start, merge_delay = 0, reduce_elapsed = 0;
  for (const NodeRun& s : nodes) {
    map_end = std::max(map_end, s.map.finished);
    merge_delay = std::max(merge_delay, s.merge_delay);
    reduce_elapsed =
        std::max(reduce_elapsed, s.reduce.finished - s.reduce.started);

    result.stages.input = std::max(result.stages.input, s.map.input.busy_seconds());
    result.stages.stage = std::max(result.stages.stage, s.map.stage.busy_seconds());
    result.stages.kernel =
        std::max(result.stages.kernel, s.map.kernel.busy_seconds());
    result.stages.retrieve =
        std::max(result.stages.retrieve, s.map.retrieve.busy_seconds());
    result.stages.partition =
        std::max(result.stages.partition, s.map.partition_busy());
    result.stages.map_elapsed = std::max(result.stages.map_elapsed,
                                         s.map.finished - s.map.started);
    result.stages.merge_delay = std::max(result.stages.merge_delay,
                                         s.merge_delay);
    result.stages.reduce_input =
        std::max(result.stages.reduce_input, s.reduce.input.busy_seconds());
    result.stages.reduce_stage =
        std::max(result.stages.reduce_stage, s.reduce.stage.busy_seconds());
    result.stages.reduce_kernel =
        std::max(result.stages.reduce_kernel, s.reduce.kernel.busy_seconds());
    result.stages.reduce_retrieve =
        std::max(result.stages.reduce_retrieve, s.reduce.retrieve.busy_seconds());
    result.stages.reduce_output =
        std::max(result.stages.reduce_output, s.reduce.output.busy_seconds());
    result.stages.reduce_elapsed =
        std::max(result.stages.reduce_elapsed,
                 s.reduce.finished - s.reduce.started);

    result.stats.input_records += s.map.records;
    result.stats.intermediate_pairs += s.map.pairs;
    result.stats.intermediate_bytes += s.map.intermediate_raw;
    result.stats.intermediate_stored += s.map.intermediate_stored;
    result.stats.shuffle_bytes_remote += s.map.shuffle_bytes_remote;
    result.stats.map_task_retries += s.map.task_failures;
    result.stats.spills += s.store->spills();
    result.stats.merges += s.store->merges();
    result.stats.merge_fanin_runs += s.store->merge_fanin_runs();
    result.stats.hash_table_probes += s.map.hash_probes;
    result.stats.output_pairs += s.reduce.output_pairs;
    result.stats.map_kernel += s.map.kernel_stats;
    result.stats.reduce_kernel += s.reduce.kernel_stats;
    for (const auto& f : s.reduce.output_files) {
      result.output_files.push_back(f);
    }
  }
  result.map_phase_seconds = map_end - start;
  result.merge_delay_seconds = merge_delay;
  result.reduce_phase_seconds = reduce_elapsed;
  std::sort(result.output_files.begin(), result.output_files.end());
  return result;
}

}  // namespace gw::core
