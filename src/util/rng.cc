#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace gw::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  GW_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace gw::util
