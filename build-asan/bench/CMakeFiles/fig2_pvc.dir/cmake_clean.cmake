file(REMOVE_RECURSE
  "CMakeFiles/fig2_pvc.dir/fig2_pvc.cc.o"
  "CMakeFiles/fig2_pvc.dir/fig2_pvc.cc.o.d"
  "fig2_pvc"
  "fig2_pvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
