#include "core/pipeline.h"

#include <algorithm>

#include "simnet/transport.h"
#include "util/error.h"

namespace gw::core {

SplitScheduler::SplitScheduler(std::vector<InputSplit> splits)
    : splits_(std::move(splits)),
      taken_(splits_.size(), false),
      state_(splits_.size()),
      remaining_(splits_.size()) {}

std::optional<InputSplit> SplitScheduler::next_for(int node) {
  if (!requeued_.empty()) {
    InputSplit s = std::move(requeued_.back());
    requeued_.pop_back();
    --remaining_;
    if (s.index >= 0) state_[static_cast<std::size_t>(s.index)].runner = node;
    return s;
  }
  if (remaining_ == 0) return std::nullopt;
  // First pass: a split with a local block.
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    if (taken_[i]) continue;
    const auto& locs = splits_[i].locations;
    if (std::find(locs.begin(), locs.end(), node) != locs.end()) {
      taken_[i] = true;
      --remaining_;
      ++local_grabs_;
      state_[i].runner = node;
      return splits_[i];
    }
  }
  // Fall back to any split.
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    if (!taken_[i]) {
      taken_[i] = true;
      --remaining_;
      ++remote_grabs_;
      state_[i].runner = node;
      return splits_[i];
    }
  }
  return std::nullopt;
}

void SplitScheduler::requeue(InputSplit split) {
  split.attempt++;
  ++retries_;
  ++remaining_;
  requeued_.push_back(std::move(split));
}

bool SplitScheduler::commit(int index, int node) {
  GW_CHECK(index >= 0 && static_cast<std::size_t>(index) < splits_.size());
  TaskState& ts = state_[static_cast<std::size_t>(index)];
  if (ts.committed_by >= 0) return false;  // a duplicate (speculative loser)
  ts.committed_by = node;
  if (ts.clone >= 0) {
    // First finisher wins: count the race from the clone's point of view.
    if (node == ts.clone) {
      ++spec_wins_;
    } else {
      ++spec_losses_;
    }
  }
  return true;
}

void SplitScheduler::on_crash(int node) {
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    TaskState& ts = state_[i];
    if (ts.clone == node) ts.clone = -1;
    if (ts.committed_by == node) {
      // The durable output died with the node: back to the lost pool.
      ts.committed_by = -1;
      ts.runner = -1;
      lost_.push_back(static_cast<int>(i));
    } else if (ts.committed_by < 0 && ts.runner == node) {
      if (ts.clone >= 0) {
        ts.runner = ts.clone;  // the live clone carries the split
        ts.clone = -1;
      } else {
        ts.runner = -1;
        lost_.push_back(static_cast<int>(i));
      }
    }
  }
  std::sort(lost_.begin(), lost_.end());
}

std::optional<InputSplit> SplitScheduler::next_lost(int node) {
  if (lost_.empty()) return std::nullopt;
  const int i = lost_.front();
  lost_.erase(lost_.begin());
  ++reexecutions_;
  TaskState& ts = state_[static_cast<std::size_t>(i)];
  ts.runner = node;
  InputSplit s = splits_[static_cast<std::size_t>(i)];
  s.attempt = ++ts.attempts;
  return s;
}

void SplitScheduler::restore_commit(int index, int node) {
  GW_CHECK(index >= 0 && static_cast<std::size_t>(index) < splits_.size());
  const auto i = static_cast<std::size_t>(index);
  GW_CHECK(state_[i].committed_by < 0);
  if (!taken_[i]) {
    taken_[i] = true;
    --remaining_;
  }
  state_[i].runner = node;
  state_[i].committed_by = node;
}

std::vector<std::pair<int, int>> SplitScheduler::committed_splits() const {
  std::vector<std::pair<int, int>> out;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (state_[i].committed_by >= 0) {
      out.emplace_back(static_cast<int>(i), state_[i].committed_by);
    }
  }
  return out;
}

std::optional<InputSplit> SplitScheduler::next_speculative(int node) {
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    TaskState& ts = state_[i];
    if (!taken_[i] || ts.committed_by >= 0 || ts.clone >= 0) continue;
    if (ts.runner < 0 || ts.runner == node) continue;
    ts.clone = node;
    ++clones_;
    InputSplit s = splits_[i];
    s.attempt = ++ts.attempts;
    return s;
  }
  return std::nullopt;
}

sim::Task<> send_run_dropping(NodeContext ctx, int dst, util::Bytes wire,
                              std::uint64_t tag) {
  try {
    co_await ctx.platform->transport().send(ctx.node_id, dst, ctx.shuffle_port,
                                            net::TrafficClass::kShuffle,
                                            std::move(wire), tag);
  } catch (const net::NodeDownError&) {
    // A crash raced the send (either endpoint): drop it. If the data
    // mattered, the recovery round regenerates or re-sends it.
  }
}

std::vector<InputSplit> SplitScheduler::make_splits(
    const dfs::FileSystem& fs, const std::vector<std::string>& paths,
    std::uint64_t split_size) {
  GW_CHECK(split_size > 0);
  std::vector<InputSplit> splits;
  for (const auto& path : paths) {
    const std::uint64_t size = fs.file_size(path);
    for (std::uint64_t off = 0; off < size; off += split_size) {
      InputSplit s(path, off, std::min(split_size, size - off));
      const std::uint64_t block = off / fs.block_size();
      s.locations = fs.block_locations(path, block);
      s.index = static_cast<int>(splits.size());
      splits.push_back(std::move(s));
    }
  }
  return splits;
}

RecordSplitFn run_output_record_splitter() {
  return [](std::string_view chunk) {
    std::vector<std::uint64_t> offsets;
    if (chunk.empty()) return offsets;
    util::ByteReader r(chunk);
    const bool compressed = r.get_u8() != 0;
    GW_CHECK_MSG(!compressed,
                 "run splitter: compressed output cannot be re-framed");
    r.get_varint();  // raw_bytes
    const std::uint64_t pairs = r.get_varint();
    r.get_varint();  // payload length; the payload runs to chunk end
    offsets.reserve(pairs);
    for (std::uint64_t i = 0; i < pairs; ++i) {
      offsets.push_back(r.position());
      const std::uint64_t klen = r.get_varint();
      const std::uint64_t vlen = r.get_varint();
      r.skip(klen + vlen);
    }
    GW_CHECK_MSG(r.done(), "run splitter: trailing bytes after last pair");
    return offsets;
  };
}

std::pair<std::string_view, std::string_view> decode_pair_record(
    std::string_view record) {
  util::ByteReader r(record);
  const std::uint64_t klen = r.get_varint();
  const std::uint64_t vlen = r.get_varint();
  const char* base = record.data() + r.position();
  return {std::string_view(base, klen), std::string_view(base + klen, vlen)};
}

std::vector<std::pair<std::string, std::string>> read_output_file(
    const util::Bytes& file_contents) {
  util::ByteReader r(file_contents);
  Run run = Run::deserialize(r);
  RunReader reader(run);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(run.pairs);
  KV kv;
  while (reader.next(&kv)) {
    out.emplace_back(std::string(kv.key), std::string(kv.value));
  }
  return out;
}

}  // namespace gw::core
