// Multi-round parallel prefix sums (the canonical Goodrich-style MRC
// algorithm: O(1) rounds of block aggregation, a logarithmic-work scan of
// the block sums, and a broadcast apply pass).
//
// Input records are 16 bytes: be64 index, be64 value. The DAG computes the
// INCLUSIVE prefix sum out[i] = v[0] + ... + v[i] in three rounds:
//   0 "blocksum": map groups records into blocks of block_records, the
//     (associative) combiner/reducer sum each block -> (block, sum).
//   1 "scan": a single gather partition collects every block sum — the
//     round's input is round 0's reduce output re-framed with
//     run_output_record_splitter (the DAG data edge under test) — and one
//     reduce emits each block's exclusive offset.
//   2 "apply": re-reads the original records; the broadcast carries the
//     block offsets, the reduce of each block replays its records in index
//     order starting from the block offset. Concatenating the partition
//     files in index order yields the globally index-sorted result.
#pragma once

#include <cstdint>
#include <string>

#include "apps/common.h"
#include "core/dag.h"

namespace gw::apps {

constexpr std::uint64_t kPrefixRecordSize = 16;

struct PrefixSumConfig {
  std::uint64_t block_records = 4096;  // records aggregated per block
};

// `records` sequential indexes with deterministic values below 2^20.
util::Bytes generate_prefix_input(std::uint64_t records, std::uint64_t seed);

// Single-threaded inclusive prefix sum over the generated input; returns
// the expected output records (be64 index, be64 inclusive sum).
util::Bytes prefix_reference(const util::Bytes& input);

// Runs the three-round chain. `dag` must carry input_paths (one file of
// prefix records), output_root and the base JobConfig; crash-injection
// fields pass through. `sums_edge` types the round-0 -> round-1 data edge,
// `offsets_edge` the round-1 -> round-2 edge.
core::DagResult prefix_sums_dag(
    core::GlasswingRuntime& runtime, cluster::Platform& platform,
    dfs::FileSystem& fs, core::DagConfig dag, PrefixSumConfig config,
    core::EdgeKind sums_edge = core::EdgeKind::kPinned,
    core::EdgeKind offsets_edge = core::EdgeKind::kCheckpoint);

}  // namespace gw::apps
