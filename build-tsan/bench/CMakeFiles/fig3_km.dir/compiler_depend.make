# Empty compiler generated dependencies file for fig3_km.
# This may be replaced when dependencies are built.
