// Typed streams over the fabric.
//
// net::Transport is the one messaging layer every byte that crosses nodes
// goes through: the Glasswing push shuffle, Hadoop's pull-shuffle
// fetch/reply protocol and the DFS block pipeline all moved here from
// hand-rolled framing on the raw Fabric. It adds, on top of Fabric's wire
// model:
//
//   * Traffic classes — every send/transfer is tagged shuffle / DFS /
//     control, and the transport keeps per-node, per-class and per-port
//     byte/message accounting of REMOTE traffic (local src == dst moves are
//     free and uncounted, matching the runtimes' `shuffle_bytes_remote`
//     semantics). Job reports split their network bytes from these totals.
//
//   * End-of-stream framing — `finish(src, dst, port)` delivers an EOS
//     marker costing one 4-byte control frame (the u32 EOF sentinel it
//     replaced); a `Receiver` counts one per expected sender, then returns
//     nullopt and releases the inbox from the fabric map. This subsumes the
//     ad-hoc close_port/EOF-payload conventions.
//
//   * Credit-based flow control — with NetworkProfile::credit_bytes > 0,
//     each (src, dst, port) stream has a receiver-granted window of that
//     many bytes; `send` blocks while a full window is unconsumed and the
//     Receiver returns credits as it consumes messages. This bounds the
//     bytes in flight from the map partition stage's fire-and-forget sends.
//     0 (default) disables flow control and adds no awaits whatsoever.
//
// Determinism: with all knobs at their defaults, a transport call performs
// exactly the awaits of the fabric call it wraps — the accounting is
// synchronous bookkeeping — so event order is byte-identical to the
// pre-transport runtimes.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "simnet/fabric.h"
#include "util/error.h"

namespace gw::net {

enum class TrafficClass : std::uint8_t {
  kShuffle = 0,  // intermediate data between map and reduce
  kDfs = 1,      // DFS block replication, remote reads, output writes
  kControl = 2,  // protocol frames: EOS markers, fetch requests, heartbeats
  kRackAgg = 3,  // intra-rack streams feeding a rack-level aggregator
};
inline constexpr std::size_t kNumTrafficClasses = 4;
const char* traffic_class_name(TrafficClass c);

// Typed failure for traffic touching a crashed node: thrown by transport
// calls whose source or destination is dead at initiation time. Callers
// choose a policy — retry with backoff (transient-failure protocols, DFS
// pipelines), drop (shuffle output to a partition being reassigned), or
// propagate (protocol bugs).
class NodeDownError : public util::Error {
 public:
  explicit NodeDownError(int node)
      : util::Error("node " + std::to_string(node) + " is down"),
        node_(node) {}
  int node() const { return node_; }

 private:
  int node_;
};

// Timeout/backoff schedule for retry_send/retry_transfer: `attempts` total
// tries, sleeping backoff_s, backoff_s*multiplier, ... between them. The
// happy path performs no extra awaits; backoff delays only materialize
// after a typed failure.
struct RetryPolicy {
  int attempts = 3;
  double backoff_s = 1e-3;
  double multiplier = 2.0;
};

class Transport {
 public:
  explicit Transport(Fabric& fabric);

  Fabric& fabric() { return fabric_; }

  // Delivers `payload` to (dst, port), accounted under `tc`. Blocks on the
  // stream's credit window when flow control is enabled. Throws
  // NodeDownError when src or dst is dead at initiation (operations already
  // in flight at a crash complete; new ones fail). `tag` rides out-of-band
  // on the delivered Message (zero wire bytes).
  sim::Task<> send(int src, int dst, int port, TrafficClass tc,
                   util::Bytes payload, std::uint64_t tag = 0);

  // Charges the wire cost of `bytes` without delivering a payload (the real
  // bytes are tracked by a higher layer, e.g. the filesystem). Holds credit
  // for the duration of the transfer when flow control is enabled. Throws
  // NodeDownError like send().
  sim::Task<> transfer(int src, int dst, int port, TrafficClass tc,
                       std::uint64_t bytes);

  // transfer() with timeout/backoff retry: NodeDownError is swallowed and
  // retried per `policy`; the last failure is rethrown. Used by protocols
  // that may race a crash with a restart (DFS re-replication pipelines).
  sim::Task<> retry_transfer(int src, int dst, int port, TrafficClass tc,
                             std::uint64_t bytes, RetryPolicy policy = {});

  // End-of-stream from src on (dst, port): one 4-byte control frame.
  // Receivers expect exactly one per sender. Also clears `src` from the
  // stream's expected-sender registry (see expect_senders).
  sim::Task<> finish(int src, int dst, int port);

  // --- crash compensation (JobTracker-style death detection) ---
  //
  // A Receiver blocks until every expected sender delivered EOS; a sender
  // that crashes mid-stream would therefore hang its receivers. The job
  // layer registers who is expected on each stream, and on a crash asks the
  // transport to inject the missing EOS frames on the dead node's behalf —
  // the simulated analogue of a JobTracker timing out the TaskTracker and
  // telling reducers to stop waiting. Injected frames are metadata: they
  // cost no wire time and are not accounted (nothing crossed the network).

  // Declares that `senders` will each deliver one EOS on (dst, port).
  void expect_senders(int dst, int port, const std::vector<int>& senders);

  // Injects EOS on behalf of `dead` into every registered stream still
  // expecting it (skipping streams whose receiver node is dead too).
  // Callers delay this behind a detection timeout so the dead node's
  // in-flight data drains first, as a real failure detector would.
  sim::Task<> compensate_crash(int dead);

  // Drops all expected-sender records (end of job).
  void clear_expected();

  // Drops only expected-sender records whose port lies in [port_lo,
  // port_hi). Multi-tenant teardown: a finishing job clears its own port
  // namespace without erasing registrations concurrent jobs still rely on
  // for crash compensation.
  void clear_expected(int port_lo, int port_hi);

  // Consumes data messages from (node, port) until `expected_eos` senders
  // finished. Returns credits to the flow-control window as it consumes.
  class Receiver {
   public:
    Receiver(Transport& transport, int node, int port, int expected_eos);

    // Next data message, or nullopt once every expected sender sent EOS (or
    // the port was force-closed). At end-of-stream the drained inbox is
    // released from the fabric, so ports are reusable across jobs. Calling
    // recv() again after it returned nullopt is a protocol bug and aborts.
    sim::Task<std::optional<Message>> recv();

    int eos_seen() const { return eos_; }
    bool done() const { return done_; }

   private:
    Transport* transport_;
    int node_;
    int port_;
    int expected_;
    int eos_ = 0;
    bool done_ = false;
  };
  Receiver receiver(int node, int port, int expected_eos) {
    return Receiver(*this, node, port, expected_eos);
  }

  // --- accounting (remote traffic only) ---
  std::uint64_t bytes_sent(int node, TrafficClass tc) const;
  std::uint64_t messages_sent(int node, TrafficClass tc) const;
  std::uint64_t total_bytes(TrafficClass tc) const;
  std::uint64_t port_bytes(int port) const;
  std::uint64_t port_messages(int port) const;

 private:
  struct Counter {
    std::uint64_t bytes = 0;
    std::uint64_t msgs = 0;
  };

  void account(int src, int dst, int port, TrafficClass tc,
               std::uint64_t bytes);
  // Credit window for one stream; null when flow control is off.
  sim::Resource* credits(int src, int dst, int port);
  std::int64_t credit_units(std::uint64_t bytes) const;

  void check_alive(int src, int dst) const;

  Fabric& fabric_;
  std::vector<std::array<Counter, kNumTrafficClasses>> per_node_;
  std::map<int, Counter> per_port_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<sim::Resource>> credits_;
  // (dst, port) -> senders whose EOS is still outstanding. Ordered map so
  // crash compensation walks streams deterministically.
  std::map<std::pair<int, int>, std::set<int>> expected_;
};

}  // namespace gw::net
