// Key/value data structures for intermediate data.
//
// Intermediate data flows through the system as *runs*: sorted, serialized,
// optionally compressed sequences of key/value pairs (the paper stores all
// cached and spilled Partitions "in a serialized and compressed form",
// §III-B). PairList is the uncompressed staging form used inside the map
// pipeline before partitioning.
//
// The pair framing (varint klen, varint vlen, key bytes, value bytes) is
// IDENTICAL in PairList blobs and Run payloads, so the hot host paths move
// pairs between stages by copying the framed span verbatim instead of
// decoding and re-encoding (PairList::pair_view / RunBuilder::add_encoded).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/compress.h"

namespace gw::core {

struct KV {
  std::string_view key;
  std::string_view value;
};

inline bool kv_key_less(const KV& a, const KV& b) { return a.key < b.key; }

// Flat append-only pair storage: one blob plus per-pair offsets, avoiding
// per-pair heap allocations. Keys/values are copied in on add().
class PairList {
 public:
  void add(std::string_view key, std::string_view value);

  std::size_t size() const { return offsets_.size(); }
  bool empty() const { return offsets_.empty(); }
  std::uint64_t blob_bytes() const { return blob_.size(); }

  KV get(std::size_t i) const;

  // Decoded pair plus its framed byte span (valid until the list mutates).
  struct PairView {
    KV kv;
    std::string_view encoded;  // varint lengths + key + value, as framed
  };
  PairView pair_view(std::size_t i) const;

  // The framed bytes of pair i. A key-sorted PairList's run payload is the
  // concatenation of these spans, so builders copy pairs without
  // re-encoding.
  std::string_view encoded_pair(std::size_t i) const {
    return pair_view(i).encoded;
  }

  // Copies a framed pair verbatim from another list (zero re-encode).
  void add_encoded(const PairView& p);

  // Sorts pair indices by key (stable, preserving emit order of equal
  // keys). Internally builds a one-shot sidecar of 8-byte big-endian key
  // prefixes so the comparator is a uint64 compare with a memcmp fallback,
  // instead of re-decoding two varints per comparison.
  void sort_by_key();

  // Appends all pairs of `other` (used to gather per-thread collectors).
  void append(const PairList& other);

  void clear();

  // Total serialized payload bytes (keys+values, without framing).
  std::uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  util::Bytes blob_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t payload_bytes_ = 0;
};

// A sorted, serialized, optionally compressed sequence of pairs.
struct Run {
  Run() = default;
  Run(util::Bytes data_in, bool compressed_in, std::uint64_t raw_bytes_in,
      std::uint64_t pairs_in)
      : data(std::move(data_in)),
        compressed(compressed_in),
        raw_bytes(raw_bytes_in),
        pairs(pairs_in) {}

  util::Bytes data;
  bool compressed = false;
  std::uint64_t raw_bytes = 0;  // serialized size before compression
  std::uint64_t pairs = 0;

  // Branch-free accessor on the hot accounting paths.
  std::uint64_t stored_bytes() const { return data.size(); }
  bool empty() const { return pairs == 0; }

  // Wire format helpers for shuffle messages.
  void serialize(util::ByteWriter& w) const;
  static Run deserialize(util::ByteReader& r);
};

// Builds a run from key-sorted add() calls.
class RunBuilder {
 public:
  void add(std::string_view key, std::string_view value);

  // Appends already-framed pair bytes verbatim (`pair_count` pairs). Used
  // by the merge and partition paths to move pairs without re-encoding.
  void add_encoded(std::string_view framed, std::uint64_t pair_count = 1);

  std::uint64_t pairs() const { return pairs_; }
  std::uint64_t raw_bytes() const { return writer_.size(); }

  // Finalizes; optionally compresses the payload.
  Run finish(bool compress);

 private:
  util::ByteWriter writer_;
  std::uint64_t pairs_ = 0;
};

// Sequential reader over a run's pairs. Decompresses up front if needed
// (into a pooled scratch buffer, returned to the pool on destruction);
// returned views point into the reader's storage.
class RunReader {
 public:
  explicit RunReader(const Run& run);
  ~RunReader();

  RunReader(RunReader&& other) noexcept;
  RunReader& operator=(RunReader&& other) noexcept;
  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  // Returns false at end of run.
  bool next(KV* kv);

  std::uint64_t remaining_pairs() const { return remaining_; }

 private:
  // Move-safe payload access: when compressed, the payload lives in our own
  // storage_ (heap buffer survives moves); otherwise it aliases the source
  // run's data, which must outlive the reader. Never cache &storage_ — the
  // member address changes when the reader is moved.
  const util::Bytes& payload() const {
    return external_ != nullptr ? *external_ : storage_;
  }

  util::Bytes storage_;                  // decompressed payload (if compressed)
  const util::Bytes* external_ = nullptr;  // uncompressed source run's data
  std::size_t pos_ = 0;
  std::uint64_t remaining_ = 0;
};

// Merges key-sorted runs into one key-sorted run (k-way; duplicate keys are
// preserved, ordered by input run index). Used by the background merger
// threads and the reduce input reader.
//
// Implementation: streaming cursors copying framed pair spans verbatim,
// ordered by a cache-friendly loser tree with cached 8-byte key prefixes;
// dedicated 1-way (bulk copy) and 2-way fast paths. Output is
// byte-identical to reference::merge_runs (see kv_reference.h).
Run merge_runs(const std::vector<const Run*>& inputs, bool compress);

// Convenience overload.
Run merge_runs(const std::vector<Run>& inputs, bool compress);

}  // namespace gw::core
