// Host-path throughput microbenchmarks (REAL wall-clock time, not simulated
// seconds).
//
// Every simulated-seconds result in bench/fig* and bench/table* is computed
// by *really* sorting, merging and compressing intermediate data on the
// host, so the wall-clock cost of the repo is dominated by these primitives.
// This binary tracks their throughput directly:
//
//   * sort:       PairList::sort_by_key vs the decode-per-comparison
//                 reference implementation
//   * merge:      N-way merge_runs (N in {2, 8, 64}) vs the priority-queue
//                 reference implementation
//   * compress:   lz_compress + lz_decompress roundtrip
//   * collector:  HashTableCollector emits under Zipf key skew
//
// Run via bench/run_host_path.sh to record BENCH_hostpath.json; CI smokes it
// with --benchmark_min_time so regressions in the host path are visible
// without a profiler.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/collector.h"
#include "core/kv.h"
#include "core/kv_reference.h"
#include "util/compress.h"
#include "util/rng.h"

namespace {

using namespace gw;

// Deterministic skewed word list: Zipf-ranked vocabulary with mixed key
// lengths (3..24 bytes), the shape WordCount/PageviewCount feed the sort
// and merge paths.
std::vector<std::string> make_vocabulary(std::size_t n) {
  std::vector<std::string> words;
  words.reserve(n);
  util::Rng rng(2014);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 3 + rng.below(22);
    std::string w;
    w.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      w.push_back(static_cast<char>('a' + rng.below(26)));
    }
    w += std::to_string(i);  // distinct ranks stay distinct keys
    words.push_back(std::move(w));
  }
  return words;
}

core::PairList make_pairs(std::size_t pairs, std::uint64_t seed) {
  static const std::vector<std::string> vocab = make_vocabulary(30000);
  static const util::ZipfSampler zipf(vocab.size(), 1.1);
  util::Rng rng(seed);
  core::PairList pl;
  for (std::size_t i = 0; i < pairs; ++i) {
    pl.add(vocab[zipf.sample(rng)], "1");
  }
  return pl;
}

// N key-sorted runs with `total_pairs` pairs spread evenly across them.
std::vector<core::Run> make_runs(std::size_t n, std::size_t total_pairs,
                                 bool compress) {
  std::vector<core::Run> runs;
  runs.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    core::PairList pl = make_pairs(total_pairs / n, 1000 + r);
    pl.sort_by_key();
    core::RunBuilder rb;
    for (std::size_t i = 0; i < pl.size(); ++i) {
      const core::KV kv = pl.get(i);
      rb.add(kv.key, kv.value);
    }
    runs.push_back(rb.finish(compress));
  }
  return runs;
}

util::Bytes make_text(std::size_t bytes) {
  static const std::vector<std::string> vocab = make_vocabulary(30000);
  static const util::ZipfSampler zipf(vocab.size(), 1.1);
  util::Rng rng(7);
  util::Bytes text;
  text.reserve(bytes + 32);
  while (text.size() < bytes) {
    const std::string& w = vocab[zipf.sample(rng)];
    text.insert(text.end(), w.begin(), w.end());
    text.push_back(' ');
  }
  return text;
}

// ---- sort ----

constexpr std::size_t kSortPairs = 200000;

void BM_SortByKey(benchmark::State& state) {
  const core::PairList base = make_pairs(kSortPairs, 42);
  for (auto _ : state) {
    state.PauseTiming();
    core::PairList pl = base;
    state.ResumeTiming();
    pl.sort_by_key();
    benchmark::DoNotOptimize(pl);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.blob_bytes()));
}
BENCHMARK(BM_SortByKey);

void BM_SortByKeyReference(benchmark::State& state) {
  const core::PairList base = make_pairs(kSortPairs, 42);
  for (auto _ : state) {
    core::PairList sorted = core::reference::sorted_by_key(base);
    benchmark::DoNotOptimize(sorted);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.blob_bytes()));
}
BENCHMARK(BM_SortByKeyReference);

// ---- merge ----

constexpr std::size_t kMergePairs = 128000;

void BM_MergeRuns(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<core::Run> runs = make_runs(n, kMergePairs, false);
  std::uint64_t raw = 0;
  for (const auto& r : runs) raw += r.raw_bytes;
  for (auto _ : state) {
    core::Run merged = core::merge_runs(runs, false);
    benchmark::DoNotOptimize(merged);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw));
}
BENCHMARK(BM_MergeRuns)->Arg(2)->Arg(8)->Arg(64);

void BM_MergeRunsReference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<core::Run> runs = make_runs(n, kMergePairs, false);
  std::uint64_t raw = 0;
  for (const auto& r : runs) raw += r.raw_bytes;
  for (auto _ : state) {
    core::Run merged = core::reference::merge_runs(runs, false);
    benchmark::DoNotOptimize(merged);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw));
}
BENCHMARK(BM_MergeRunsReference)->Arg(2)->Arg(8)->Arg(64);

// Compressed inputs: adds the per-run decompression (pooled scratch path).
void BM_MergeCompressedRuns(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<core::Run> runs = make_runs(n, kMergePairs, true);
  std::uint64_t raw = 0;
  for (const auto& r : runs) raw += r.raw_bytes;
  for (auto _ : state) {
    core::Run merged = core::merge_runs(runs, false);
    benchmark::DoNotOptimize(merged);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw));
}
BENCHMARK(BM_MergeCompressedRuns)->Arg(8);

// ---- compression ----

constexpr std::size_t kTextBytes = 4 << 20;

void BM_CompressRoundtrip(benchmark::State& state) {
  const util::Bytes text = make_text(kTextBytes);
  for (auto _ : state) {
    util::Bytes packed = util::lz_compress(text);
    util::Bytes back = util::lz_decompress(packed);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_CompressRoundtrip);

void BM_Decompress(benchmark::State& state) {
  const util::Bytes text = make_text(kTextBytes);
  const util::Bytes packed = util::lz_compress(text);
  for (auto _ : state) {
    util::Bytes back = util::lz_decompress(packed);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Decompress);

// ---- hash-table collector under Zipf skew ----

constexpr std::size_t kInsertPairs = 100000;
constexpr std::size_t kCollectorGroups = 64;

void BM_HashCollectorInsert(benchmark::State& state) {
  static const std::vector<std::string> vocab = make_vocabulary(30000);
  static const util::ZipfSampler zipf(vocab.size(), 1.1);
  // Pre-sample the emit stream so only collector work is timed.
  util::Rng rng(99);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stream;  // (group, rank)
  stream.reserve(kInsertPairs);
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < kInsertPairs; ++i) {
    const std::uint32_t rank = static_cast<std::uint32_t>(zipf.sample(rng));
    stream.emplace_back(static_cast<std::uint32_t>(rng.below(kCollectorGroups)),
                        rank);
    bytes += vocab[rank].size() + 1;
  }
  for (auto _ : state) {
    state.PauseTiming();
    core::HashTableCollector collector(kCollectorGroups);
    state.ResumeTiming();
    cl::KernelCounters counters;
    for (const auto& [group, rank] : stream) {
      collector.emit(group, vocab[rank], "1", counters);
    }
    benchmark::DoNotOptimize(counters);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HashCollectorInsert);

}  // namespace

BENCHMARK_MAIN();
