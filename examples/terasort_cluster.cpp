// TeraSort on a cluster: total ordering across partitions via a sampled
// range partitioner, no reduce function, output replication 1 — exactly the
// paper's most data-intensive workload (§IV-A1), with output validation.
//
// Build: cmake --build build && ./build/examples/terasort_cluster
#include <cstdio>
#include <string>

#include "apps/terasort.h"
#include "core/job.h"
#include "util/hash.h"

using namespace gw;

int main() {
  constexpr std::uint64_t kRecords = 100000;  // 10 MB (paper: 1 TB)
  const util::Bytes input = apps::generate_terasort(kRecords, 99);
  const std::uint64_t checksum_in = apps::terasort_checksum(input);

  cluster::Platform platform(cluster::ClusterSpec::homogeneous(
      8, cluster::NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs(platform, dfs::DfsConfig{});
  platform.sim().spawn([](dfs::Dfs& f, util::Bytes data) -> sim::Task<> {
    co_await f.write_distributed("/in/tera", std::move(data));
  }(fs, input));
  platform.sim().run();

  // Client-side sampling pre-pass estimates the key distribution.
  apps::AppSpec app = apps::terasort();
  platform.sim().spawn([](dfs::Dfs& f, core::PartitionFn* out) -> sim::Task<> {
    std::vector<std::string> paths = {"/in/tera"};
    *out = co_await apps::sample_range_partitioner(f, 0, std::move(paths),
                                                   2000);
  }(fs, &app.kernels.partition));
  platform.sim().run();

  core::JobConfig cfg;
  cfg.input_paths = {"/in/tera"};
  cfg.output_path = "/out/sorted";
  cfg.split_size = 256 << 10;
  cfg.output_replication = 1;  // as in the paper's TS runs

  core::GlasswingRuntime rt(platform, fs, cl::DeviceSpec::cpu_dual_e5620());
  const core::JobResult result = rt.run(app.kernels, cfg);

  std::printf("sorted %llu records (%.1f MB) on 8 nodes in %.3f simulated "
              "seconds\n",
              static_cast<unsigned long long>(kRecords),
              kRecords * 100 / 1048576.0, result.elapsed_seconds);
  std::printf("  map %.3fs | merge delay %.3fs | output %.3fs | %zu "
              "partition files\n",
              result.map_phase_seconds, result.merge_delay_seconds,
              result.reduce_phase_seconds, result.output_files.size());

  // Validate: global order across partition files, count, and checksum.
  std::uint64_t total = 0;
  std::uint64_t checksum_out = 0;
  std::string prev;
  bool sorted = true;
  for (const auto& path : result.output_files) {
    util::Bytes contents;
    platform.sim().spawn([](dfs::Dfs& f, std::string pa,
                            util::Bytes* out) -> sim::Task<> {
      *out = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
    }(fs, path, &contents));
    platform.sim().run();
    for (auto& [key, value] : core::read_output_file(contents)) {
      if (key < prev) sorted = false;
      prev = key;
      const std::string record = key + value;
      checksum_out ^= util::fnv1a(record.data(), record.size());
      ++total;
    }
  }
  std::printf("\nvalidation: order %s, count %s (%llu), checksum %s\n",
              sorted ? "OK" : "BROKEN", total == kRecords ? "OK" : "BROKEN",
              static_cast<unsigned long long>(total),
              checksum_out == checksum_in ? "OK" : "BROKEN");
  return sorted && total == kRecords && checksum_out == checksum_in ? 0 : 1;
}
