// Property tests for the zero-copy host path: the prefix-cached sort and
// the loser-tree merge must be byte-identical to the straightforward
// reference implementations (kv_reference.h) across key-length edge cases,
// duplicate densities, compression settings, and input-run counts.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kv.h"
#include "core/kv_reference.h"
#include "util/rng.h"

namespace gw::core {
namespace {

// Key lengths straddling the 8-byte prefix boundary, plus empty and long.
const std::vector<std::size_t> kKeyLengths = {0, 1, 7, 8, 9, 200};

std::string random_key(util::Rng& rng, std::size_t len,
                       std::size_t alphabet) {
  std::string s(len, '\0');
  // Small alphabets force equal prefixes (and embedded NULs exercise the
  // non-text comparison path).
  for (auto& ch : s) {
    ch = static_cast<char>(rng.below(alphabet));
  }
  return s;
}

PairList random_pairs(util::Rng& rng, std::size_t n, std::size_t alphabet,
                      bool duplicate_heavy) {
  std::vector<std::string> pool;
  if (duplicate_heavy) {
    for (std::size_t i = 0; i < std::max<std::size_t>(1, n / 8); ++i) {
      pool.push_back(random_key(
          rng, kKeyLengths[rng.below(kKeyLengths.size())], alphabet));
    }
  }
  PairList out;
  for (std::size_t i = 0; i < n; ++i) {
    std::string key =
        duplicate_heavy
            ? pool[rng.below(pool.size())]
            : random_key(rng, kKeyLengths[rng.below(kKeyLengths.size())],
                         alphabet);
    const std::string value = "v" + std::to_string(i);
    out.add(key, value);
  }
  return out;
}

void expect_same_pairs(const PairList& got, const PairList& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const KV g = got.get(i);
    const KV w = want.get(i);
    ASSERT_EQ(g.key, w.key) << "pair " << i;
    ASSERT_EQ(g.value, w.value) << "pair " << i;
  }
}

Run build_sorted_run(util::Rng& rng, std::size_t n, std::size_t alphabet,
                     bool duplicate_heavy, bool compress) {
  PairList pl = random_pairs(rng, n, alphabet, duplicate_heavy);
  pl.sort_by_key();
  RunBuilder rb;
  for (std::size_t i = 0; i < pl.size(); ++i) {
    const KV kv = pl.get(i);
    rb.add(kv.key, kv.value);
  }
  return rb.finish(compress);
}

void expect_same_run(const Run& got, const Run& want) {
  EXPECT_EQ(got.pairs, want.pairs);
  EXPECT_EQ(got.raw_bytes, want.raw_bytes);
  EXPECT_EQ(got.compressed, want.compressed);
  EXPECT_EQ(got.data, want.data);  // byte-identical payload
}

TEST(HostPathSort, MatchesReferenceAcrossKeyShapes) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (std::size_t alphabet : {2u, 7u, 256u}) {
      for (bool dup_heavy : {false, true}) {
        util::Rng rng(seed * 1000 + alphabet + (dup_heavy ? 1 : 0));
        PairList pl = random_pairs(rng, 500, alphabet, dup_heavy);
        const PairList want = reference::sorted_by_key(pl);
        pl.sort_by_key();
        expect_same_pairs(pl, want);
      }
    }
  }
}

TEST(HostPathSort, TinyLists) {
  PairList empty;
  empty.sort_by_key();
  EXPECT_EQ(empty.size(), 0u);

  PairList one;
  one.add("only", "1");
  one.sort_by_key();
  EXPECT_EQ(one.get(0).key, "only");
}

// Keys sharing an 8-byte prefix must be ordered by the bytes past it, then
// by length (shorter first), then by original position.
TEST(HostPathSort, PrefixBoundaryOrdering) {
  PairList pl;
  pl.add("12345678x", "a");
  pl.add("12345678", "b");
  pl.add("12345678xy", "c");
  pl.add("12345678", "d");
  pl.add("1234567", "e");
  const PairList want = reference::sorted_by_key(pl);
  pl.sort_by_key();
  expect_same_pairs(pl, want);
  EXPECT_EQ(pl.get(0).value, "e");
  EXPECT_EQ(pl.get(1).value, "b");  // equal keys keep emit order
  EXPECT_EQ(pl.get(2).value, "d");
}

TEST(HostPathMerge, MatchesReferenceAcrossFanins) {
  for (std::size_t fanin : {0u, 1u, 2u, 3u, 5u, 17u}) {
    for (bool compress_in : {false, true}) {
      for (bool compress_out : {false, true}) {
        util::Rng rng(99 * fanin + (compress_in ? 7 : 0) +
                      (compress_out ? 13 : 0));
        std::vector<core::Run> runs;
        for (std::size_t i = 0; i < fanin; ++i) {
          runs.push_back(
              build_sorted_run(rng, 50 + rng.below(100), 7, true, compress_in));
        }
        const core::Run got = merge_runs(runs, compress_out);
        const core::Run want = reference::merge_runs(runs, compress_out);
        expect_same_run(got, want);
      }
    }
  }
}

TEST(HostPathMerge, EmptyInputRunsAreSkipped) {
  util::Rng rng(5);
  std::vector<core::Run> runs;
  runs.push_back(RunBuilder().finish(false));  // empty
  runs.push_back(build_sorted_run(rng, 40, 7, false, false));
  runs.push_back(RunBuilder().finish(true));  // empty, compressed
  runs.push_back(build_sorted_run(rng, 40, 7, false, true));
  const core::Run got = merge_runs(runs, false);
  const core::Run want = reference::merge_runs(runs, false);
  expect_same_run(got, want);
}

TEST(HostPathMerge, AllEmpty) {
  std::vector<core::Run> runs(3);
  const core::Run got = merge_runs(runs, true);
  EXPECT_EQ(got.pairs, 0u);
  EXPECT_EQ(got.raw_bytes, 0u);
}

// Runs built from the same duplicated key: ties must resolve to the
// earlier input run, pair by pair.
TEST(HostPathMerge, TieBreakPrefersEarlierRun) {
  std::vector<core::Run> runs;
  for (int r = 0; r < 4; ++r) {
    RunBuilder rb;
    for (int i = 0; i < 3; ++i) {
      rb.add("same-key", "run" + std::to_string(r) + "#" + std::to_string(i));
    }
    runs.push_back(rb.finish(r % 2 == 1));
  }
  const core::Run got = merge_runs(runs, false);
  const core::Run want = reference::merge_runs(runs, false);
  expect_same_run(got, want);
  RunReader reader(got);
  KV kv;
  std::vector<std::string> values;
  while (reader.next(&kv)) values.emplace_back(kv.value);
  ASSERT_EQ(values.size(), 12u);
  EXPECT_EQ(values.front(), "run0#0");
  EXPECT_EQ(values[3], "run1#0");
  EXPECT_EQ(values.back(), "run3#2");
}

// The zero-copy append paths must produce the same framing as re-encoding.
TEST(HostPathZeroCopy, AddEncodedMatchesAdd) {
  util::Rng rng(42);
  PairList src = random_pairs(rng, 200, 7, true);
  PairList copied;
  RunBuilder direct, framed;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const PairList::PairView pv = src.pair_view(i);
    copied.add_encoded(pv);
    direct.add(pv.kv.key, pv.kv.value);
    framed.add_encoded(pv.encoded);
  }
  expect_same_pairs(copied, src);
  EXPECT_EQ(copied.payload_bytes(), src.payload_bytes());
  expect_same_run(framed.finish(false), direct.finish(false));
}

}  // namespace
}  // namespace gw::core
