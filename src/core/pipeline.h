// The Glasswing 5-stage map and reduce pipelines (paper §III-A, §III-C).
//
// Map:    Input -> Stage -> Kernel -> Retrieve -> Partition
// Reduce: Input(merge) -> Stage -> Kernel -> Retrieve -> Output
//
// Stages are sim coroutines linked by channels. Data buffers come from two
// pools — the input group (Input/Stage/Kernel) and the output group
// (Kernel/Retrieve/Partition|Output) — each sized by the configured
// buffering level, which reproduces the single/double/triple-buffering
// interlocking of §III-D: with one buffer the stages of a group serialize,
// with more they overlap, and the two groups always run concurrently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "core/collector.h"
#include "core/intermediate.h"
#include "gwcl/device.h"
#include "gwdfs/fs.h"
#include "simnet/fabric.h"

namespace gw::core {

struct InputSplit {
  InputSplit() = default;
  InputSplit(std::string path_in, std::uint64_t offset_in, std::uint64_t len_in)
      : path(std::move(path_in)), offset(offset_in), len(len_in) {}

  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::vector<int> locations;  // nodes hosting the first block
  int index = -1;              // job-wide split number
  int attempt = 0;             // re-execution count (fault tolerance)
};

// Locality-aware dynamic split dispenser (the Glasswing job coordinator
// "considers file affinity in its job allocation", §IV-A). Single shared
// instance; nodes pull splits one at a time, preferring local blocks.
class SplitScheduler {
 public:
  explicit SplitScheduler(std::vector<InputSplit> splits);

  std::optional<InputSplit> next_for(int node);

  // Task re-execution (§III-E): a failed task's input is rescheduled. The
  // requeued split is handed out (to any node) before fresh splits.
  void requeue(InputSplit split);

  std::size_t remaining() const { return remaining_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t local_grabs() const { return local_grabs_; }
  std::uint64_t remote_grabs() const { return remote_grabs_; }

  // Enumerates block-aligned, record-aligned-later splits of the inputs.
  static std::vector<InputSplit> make_splits(const dfs::FileSystem& fs,
                                             const std::vector<std::string>& paths,
                                             std::uint64_t split_size);

 private:
  std::vector<InputSplit> splits_;
  std::vector<bool> taken_;
  std::vector<InputSplit> requeued_;
  std::size_t remaining_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t local_grabs_ = 0;
  std::uint64_t remote_grabs_ = 0;
};

// Everything a per-node pipeline needs.
struct NodeContext {
  cluster::Platform* platform = nullptr;
  cluster::Node* node = nullptr;
  dfs::FileSystem* fs = nullptr;
  cl::Device* device = nullptr;
  IntermediateStore* store = nullptr;
  const JobConfig* config = nullptr;
  const AppKernels* app = nullptr;
  int node_id = 0;
  int num_nodes = 1;
  int total_partitions = 1;

  sim::Simulation& sim() const { return platform->sim(); }
};

// Counters only; stage busy times and phase boundaries live in the trace
// (sim.tracer()), reduced via trace::Tracer::occupancy.
struct MapMetrics {
  std::uint64_t task_failures = 0;
  cl::KernelStats kernel_stats;
  std::uint64_t records = 0;
  std::uint64_t pairs = 0;
  std::uint64_t intermediate_raw = 0;
  std::uint64_t intermediate_stored = 0;
  std::uint64_t shuffle_bytes_remote = 0;
  std::uint64_t distinct_keys = 0;
  // Hash-table collector probe count (0 in shared-pool mode).
  std::uint64_t hash_probes = 0;
};

// Runs the complete map pipeline on one node, feeding the local store and
// pushing remote partitions over the fabric. Completes when every split
// assigned to this node has been partitioned AND all shuffle sends have
// been handed to the network.
sim::Task<> run_map_phase(NodeContext ctx, SplitScheduler& scheduler,
                          MapMetrics& metrics);

struct ReduceMetrics {
  cl::KernelStats kernel_stats;
  std::uint64_t output_pairs = 0;
  std::vector<std::string> output_files;
};

// Runs the reduce pipeline over this node's partitions (drained store).
// Jobs without a reduce function (TeraSort) merge and write directly.
sim::Task<> run_reduce_phase(NodeContext ctx, ReduceMetrics& metrics);

// Output files are uncompressed Runs wrapped with Run::serialize; helper to
// read one back as pairs (used by tests, benches and examples).
std::vector<std::pair<std::string, std::string>> read_output_file(
    const util::Bytes& file_contents);

// Split input helpers shared with the baseline runtimes (identical record
// framing keeps the comparisons apples-to-apples).
//
// Reads a split aligned to record boundaries: fixed-size records round to
// record multiples; text lines belong to the split containing their first
// byte (standard MapReduce semantics).
sim::Task<util::Bytes> read_aligned_split(dfs::FileSystem& fs, int node,
                                          const AppKernels& app,
                                          const InputSplit& split);

// Record start offsets within an aligned chunk.
std::vector<std::uint64_t> frame_records(const AppKernels& app,
                                         std::string_view chunk);

}  // namespace gw::core
