// Figure 7 (new experiment, beyond the paper's figures): shuffle-bound
// scaling across interconnects. The paper evaluates Glasswing on 1 Gb
// Ethernet and QDR InfiniBand (IPoIB) and attributes its horizontal
// scalability to the push shuffle overlapping communication with the map
// pipeline (§III-D, §IV-C). This bench sweeps nodes x {GbE, IPoIB} x
// bisection oversubscription on a shuffle-heavy WordCount (no combiner, so
// the full intermediate volume crosses the wire) and reports:
//   * execution time + speedup per interconnect (SeriesTable),
//   * the remote-traffic split measured by the transport layer,
//   * per-link busy occupancy from the "net.tx" trace spans, whose spread
//     across nodes shows whether the load on the fabric is balanced.
// Oversubscribed configs ("-o4") model a core switch with bisection
// capacity nodes/4 and enable 256 KiB chunking + a 2 MiB credit window, so
// concurrent flows interleave on links instead of occupying them atomically.
#include <algorithm>
#include <map>

#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(12ull << 20);
constexpr std::uint64_t kSplit = 256 << 10;

struct NetPoint {
  double seconds = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t dfs_bytes = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t rack_agg_bytes = 0;  // member->aggregator class (rack mode)
  std::uint64_t core_bytes = 0;      // wire bytes that crossed the core switch
  std::uint64_t combine_in = 0;
  std::uint64_t combine_out = 0;
  std::uint64_t output_pairs = 0;
  double tx_busy_min = 0;  // per-node "net.tx" busy spread
  double tx_busy_max = 0;
};

net::NetworkProfile make_profile(bool gbe, double oversub) {
  net::NetworkProfile p = gbe ? net::NetworkProfile::gigabit_ethernet()
                              : net::NetworkProfile::qdr_infiniband_ipoib();
  if (oversub > 0) {
    p.name += "-o" + std::to_string(static_cast<int>(oversub));
    p.bisection_oversubscription = oversub;
    p.max_chunk_bytes = 256 << 10;
    p.credit_bytes = 2 << 20;
  }
  return p;
}

NetPoint run_point(int nodes, const net::NetworkProfile& profile,
                   const util::Bytes& input,
                   core::CombineMode mode = core::CombineMode::kOff) {
  // Built inline (not via run_glasswing) so the platform outlives the job
  // and its tracer/transport can be inspected afterwards. LocalFs with
  // fully replicated input keeps DFS traffic off the wire: what remains is
  // the push shuffle this figure is about.
  cluster::Platform p =
      bench::make_platform(nodes, cluster::NodeSpec::das4_type1(), profile);
  dfs::LocalFs fs(p);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  cfg.use_combiner = false;
  cfg.combine_mode = mode;
  bench::stage_input(p, fs, cfg.input_paths[0], input);
  const std::uint64_t core0 = p.fabric().core_bytes();
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  const core::JobResult r = rt.run(apps::wordcount().kernels, cfg);

  NetPoint out;
  out.seconds = r.elapsed_seconds;
  out.shuffle_bytes = r.stats.net_shuffle_bytes;
  out.dfs_bytes = r.stats.net_dfs_bytes;
  out.control_bytes = r.stats.net_control_bytes;
  out.rack_agg_bytes = r.stats.net_rack_agg_bytes;
  out.core_bytes = p.fabric().core_bytes() - core0;
  out.combine_in = r.stats.combine_in_bytes;
  out.combine_out = r.stats.combine_out_bytes;
  out.output_pairs = r.stats.output_pairs;
  const trace::Tracer& tr = p.sim().tracer();
  for (int n = 0; n < nodes; ++n) {
    const double busy = tr.occupancy(n, "net.tx").busy;
    if (n == 0) {
      out.tx_busy_min = out.tx_busy_max = busy;
    } else {
      out.tx_busy_min = std::min(out.tx_busy_min, busy);
      out.tx_busy_max = std::max(out.tx_busy_max, busy);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_wiki_text(kInputBytes, 2014);

  const std::vector<std::pair<std::string, net::NetworkProfile>> configs = {
      {"GbE", make_profile(true, 0)},
      {"GbE-o4", make_profile(true, 4)},
      {"IPoIB", make_profile(false, 0)},
      {"IPoIB-o4", make_profile(false, 4)},
  };
  const std::vector<int> node_counts = {2, 4, 8};

  bench::SeriesTable table("nodes");
  std::map<std::pair<std::string, int>, NetPoint> points;
  for (int nodes : node_counts) {
    for (const auto& [name, profile] : configs) {
      NetPoint pt;
      table.add_timed(name, nodes, [&] {
        pt = run_point(nodes, profile, input);
        return pt.seconds;
      });
      points[{name, nodes}] = pt;
    }
  }
  table.print("Figure 7: WC shuffle scaling, interconnect x oversubscription");

  const int big = node_counts.back();
  std::printf("\nTraffic split at %d nodes (GbE-o4):\n", big);
  const NetPoint& gbe_o4 = points.at({"GbE-o4", big});
  std::printf("  shuffle=%llu dfs=%llu control=%llu bytes\n",
              static_cast<unsigned long long>(gbe_o4.shuffle_bytes),
              static_cast<unsigned long long>(gbe_o4.dfs_bytes),
              static_cast<unsigned long long>(gbe_o4.control_bytes));
  std::printf("net.tx busy per node at %d nodes: GbE-o4 [%.3f, %.3f]s, "
              "IPoIB-o4 [%.3f, %.3f]s\n",
              big, gbe_o4.tx_busy_min, gbe_o4.tx_busy_max,
              points.at({"IPoIB-o4", big}).tx_busy_min,
              points.at({"IPoIB-o4", big}).tx_busy_max);

  const double gbe = table.at("GbE", big);
  const double gbe_o = table.at("GbE-o4", big);
  const double ib = table.at("IPoIB", big);
  const double ib_o = table.at("IPoIB-o4", big);
  const double gbe_degrade = gbe_o / gbe;
  const double ib_degrade = ib_o / ib;
  std::printf(
      "\nShape checks:\n"
      "  IPoIB beats GbE at %d nodes: %.3fs vs %.3fs (%s)\n"
      "  oversubscription hurts GbE more than IPoIB: %.3fx vs %.3fx (%s)\n"
      "  shuffle dominates DFS traffic (LocalFs input): %llu vs %llu (%s)\n",
      big, ib, gbe, ib < gbe ? "OK" : "MISMATCH", gbe_degrade, ib_degrade,
      gbe_degrade > ib_degrade ? "OK" : "MISMATCH",
      static_cast<unsigned long long>(gbe_o4.shuffle_bytes),
      static_cast<unsigned long long>(gbe_o4.dfs_bytes),
      gbe_o4.shuffle_bytes > gbe_o4.dfs_bytes ? "OK" : "MISMATCH");

  // --- Combine series: hierarchical combining vs the push shuffle ---
  // Same shuffle-heavy WordCount, GbE only (the bandwidth-starved fabric the
  // rack tier is for), at the largest node count, rack_size = nodes/2 so the
  // cluster has two racks. All three modes run on the SAME rack-aware
  // profile, so the only variable is where (and whether) duplicate keys are
  // folded before crossing the core switch.
  const std::vector<std::pair<const char*, core::CombineMode>> modes = {
      {"off", core::CombineMode::kOff},
      {"node", core::CombineMode::kNode},
      {"rack", core::CombineMode::kRack},
  };
  const std::vector<double> oversubs = {0, 4};
  std::map<std::pair<std::string, double>, NetPoint> cpoints;
  bench::SeriesTable ctable("oversub");
  for (double oversub : oversubs) {
    net::NetworkProfile profile = make_profile(true, oversub);
    profile.rack_size = big / 2;
    profile.name += "-r" + std::to_string(big / 2);
    for (const auto& [mode_name, mode] : modes) {
      NetPoint pt;
      ctable.add_timed(mode_name, oversub, [&] {
        pt = run_point(big, profile, input, mode);
        return pt.seconds;
      });
      cpoints[{mode_name, oversub}] = pt;
    }
  }
  ctable.print(("Figure 7b: WC combine modes at " + std::to_string(big) +
                " nodes, GbE, rack_size=" + std::to_string(big / 2))
                   .c_str());

  const NetPoint& c_off = cpoints.at({"off", 4});
  const NetPoint& c_node = cpoints.at({"node", 4});
  const NetPoint& c_rack = cpoints.at({"rack", 4});
  std::printf("\nCore-switch bytes at %d nodes (GbE-o4, rack_size=%d):\n", big,
              big / 2);
  for (const auto& [mode_name, mode] : modes) {
    const NetPoint& pt = cpoints.at({mode_name, 4});
    std::printf(
        "  %-5s core=%llu shuffle=%llu rack_agg=%llu combine_in=%llu "
        "combine_out=%llu pairs=%llu\n",
        mode_name, static_cast<unsigned long long>(pt.core_bytes),
        static_cast<unsigned long long>(pt.shuffle_bytes),
        static_cast<unsigned long long>(pt.rack_agg_bytes),
        static_cast<unsigned long long>(pt.combine_in),
        static_cast<unsigned long long>(pt.combine_out),
        static_cast<unsigned long long>(pt.output_pairs));
  }

  const double off_degrade = ctable.at("off", 4) / ctable.at("off", 0);
  const double rack_degrade = ctable.at("rack", 4) / ctable.at("rack", 0);
  const bool core_drop_ok =
      static_cast<double>(c_rack.core_bytes) <=
      0.7 * static_cast<double>(c_off.core_bytes);
  std::printf(
      "\nCombine shape checks:\n"
      "  node combining shrinks net shuffle: %llu vs %llu (%s)\n"
      "  rack tier shrinks core-switch bytes >=30%% vs off: %llu vs %llu "
      "(%s)\n"
      "  rack combining softens GbE oversubscription: %.3fx vs %.3fx (%s)\n"
      "  outputs identical across modes: %llu/%llu/%llu pairs (%s)\n",
      static_cast<unsigned long long>(c_node.shuffle_bytes),
      static_cast<unsigned long long>(c_off.shuffle_bytes),
      c_node.shuffle_bytes < c_off.shuffle_bytes ? "OK" : "MISMATCH",
      static_cast<unsigned long long>(c_rack.core_bytes),
      static_cast<unsigned long long>(c_off.core_bytes),
      core_drop_ok ? "OK" : "MISMATCH", rack_degrade, off_degrade,
      rack_degrade < off_degrade ? "OK" : "MISMATCH",
      static_cast<unsigned long long>(c_off.output_pairs),
      static_cast<unsigned long long>(c_node.output_pairs),
      static_cast<unsigned long long>(c_rack.output_pairs),
      c_off.output_pairs == c_node.output_pairs &&
              c_off.output_pairs == c_rack.output_pairs
          ? "OK"
          : "MISMATCH");

  const char* combine_path = "BENCH_fig7_combine.json";
  if (std::FILE* f = std::fopen(combine_path, "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench_scale\": %g,\n", bench::scale());
    std::fprintf(f, "  \"nodes\": %d,\n", big);
    std::fprintf(f, "  \"rack_size\": %d,\n", big / 2);
    std::fprintf(f, "  \"core_drop_ok\": %s,\n",
                 core_drop_ok ? "true" : "false");
    std::fprintf(f, "  \"outputs_identical\": %s,\n",
                 c_off.output_pairs == c_node.output_pairs &&
                         c_off.output_pairs == c_rack.output_pairs
                     ? "true"
                     : "false");
    std::fprintf(f, "  \"points\": [\n");
    bool first = true;
    for (double oversub : oversubs) {
      for (const auto& [mode_name, mode] : modes) {
        const NetPoint& pt = cpoints.at({mode_name, oversub});
        std::fprintf(
            f,
            "%s    {\"mode\": \"%s\", \"oversub\": %g, \"seconds\": %.6f, "
            "\"shuffle_bytes\": %llu, \"rack_agg_bytes\": %llu, "
            "\"core_bytes\": %llu, \"combine_in\": %llu, "
            "\"combine_out\": %llu, \"output_pairs\": %llu}",
            first ? "" : ",\n", mode_name, oversub, pt.seconds,
            static_cast<unsigned long long>(pt.shuffle_bytes),
            static_cast<unsigned long long>(pt.rack_agg_bytes),
            static_cast<unsigned long long>(pt.core_bytes),
            static_cast<unsigned long long>(pt.combine_in),
            static_cast<unsigned long long>(pt.combine_out),
            static_cast<unsigned long long>(pt.output_pairs));
        first = false;
      }
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", combine_path);
  }

  for (const auto& [name, profile] : configs) {
    const double t = table.at(name, big);
    bench::register_point("Fig7/WC/" + name + "/nodes:" + std::to_string(big),
                          [t](benchmark::State&) { return t; });
  }
  for (const auto& [mode_name, mode] : modes) {
    const double t = ctable.at(mode_name, 4);
    bench::register_point(
        "Fig7/WC/combine-" + std::string(mode_name) + "/nodes:" +
            std::to_string(big),
        [t](benchmark::State&) { return t; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
