# Empty compiler generated dependencies file for table2_wc_pipeline.
# This may be replaced when dependencies are built.
