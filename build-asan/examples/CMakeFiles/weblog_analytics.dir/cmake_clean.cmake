file(REMOVE_RECURSE
  "CMakeFiles/weblog_analytics.dir/weblog_analytics.cpp.o"
  "CMakeFiles/weblog_analytics.dir/weblog_analytics.cpp.o.d"
  "weblog_analytics"
  "weblog_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weblog_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
