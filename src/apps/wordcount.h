// WordCount (WC): counts word frequencies in text (paper §IV-A1).
//
// The paper's input is a 70 GB English Wikipedia dump — "irregular, in that
// it exhibits high repetition of a smaller number of words beside a large
// number of sparse words". The generator reproduces that key statistic with
// a Zipf-distributed vocabulary plus a sparse long tail.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "apps/common.h"
#include "util/bytes.h"

namespace gw::apps {

// AppSpec: map splits lines into words and emits (word, "1"); combiner and
// reducer sum counts.
AppSpec wordcount();

// Generates ~`bytes` of wiki-like text: Zipf(1.05) over a core vocabulary
// with an additional sparse tail of rare words; newline every ~12 words.
util::Bytes generate_wiki_text(std::uint64_t bytes, std::uint64_t seed);

// Reference word counts for verification.
std::map<std::string, std::uint64_t> wordcount_reference(
    const util::Bytes& text);

}  // namespace gw::apps
