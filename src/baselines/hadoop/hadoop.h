// Hadoop-like MapReduce baseline.
//
// The paper compares Glasswing against Hadoop 1.0.x (§IV-A) as "a de-facto
// standard capable of managing large data sets". This runtime reproduces
// the structural properties that the paper credits for the performance
// difference:
//   * coarse-grained parallelism only: one JVM task per slot, records
//     processed in a sequential loop on one core (no intra-task pipeline
//     overlapping of I/O, compute and communication);
//   * sort-spill map side: task reads its whole split, maps, partitions,
//     sorts and spills before the output is available;
//   * PULL shuffle: reducers learn about completed map outputs via
//     heartbeats (extra latency) and fetch them over the network;
//   * JVM/serialization overhead: a per-operation cost factor and a
//     per-record object-churn cost (SequenceFile-style serialization).
//
// The comparison is apples-to-apples: the same AppKernels, the same DFS,
// the same cluster Platform, real data end to end, and verified-identical
// job output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/api.h"
#include "gwdfs/fs.h"

namespace gw::hadoop {

struct HadoopConfig {
  std::vector<std::string> input_paths;
  std::string output_path;
  std::uint64_t split_size = 4ull << 20;

  // Slots: 0 means "one per hardware thread" (the paper sweeps mappers and
  // reducers so that "all cores of all nodes are occupied maximally").
  int map_slots_per_node = 0;
  int reducers_per_node = 4;

  bool use_combiner = true;

  // JVM model: per-operation slowdown vs the OpenCL kernels and fixed
  // per-record serialization/object cost (in simple ops).
  double jvm_cpu_factor = 2.7;
  double per_record_overhead_ops = 400;

  // Task scheduling: per-task start cost (reused JVMs) and the heartbeat
  // interval that delays map-completion notifications to reducers. Real
  // Hadoop values are ~0.1-0.5 s and 0.6-3 s; these defaults are scaled
  // down with the benchmark datasets (which are ~1000x smaller than the
  // paper's) so fixed latencies keep the same relative weight.
  double task_startup_s = 0.02;
  double heartbeat_s = 0.03;

  // Reducer-side in-memory shuffle buffer; overflow merges spill to disk.
  std::uint64_t shuffle_buffer_bytes = 8ull << 20;

  core::HostCosts host;
  int output_replication = 0;

  // Fault injection is a Glasswing-runtime feature; the baseline rejects
  // fault-tolerant configs with a typed error instead of silently ignoring
  // scheduled crashes (see HadoopRuntime::run).
  std::vector<core::JobConfig::CrashEvent> crash_events;
  bool speculate = false;
  bool fault_tolerant() const { return !crash_events.empty() || speculate; }
};

struct HadoopResult {
  double elapsed_seconds = 0;
  double map_phase_seconds = 0;    // until the last map task finished
  double reduce_phase_seconds = 0; // from map end to job end (shuffle tail +
                                   // merge + reduce)
  std::uint64_t input_records = 0;
  std::uint64_t intermediate_pairs = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t output_pairs = 0;
  // Remote wire traffic split by transport class (net::TrafficClass):
  // pull-shuffle replies, DFS block traffic, and control frames (fetch
  // requests).
  std::uint64_t net_shuffle_bytes = 0;
  std::uint64_t net_dfs_bytes = 0;
  std::uint64_t net_control_bytes = 0;
  std::vector<std::string> output_files;
};

class HadoopRuntime {
 public:
  HadoopRuntime(cluster::Platform& platform, dfs::FileSystem& fs);

  HadoopResult run(const core::AppKernels& app, HadoopConfig config);

 private:
  cluster::Platform& platform_;
  dfs::FileSystem& fs_;
};

}  // namespace gw::hadoop
