#include "gwdfs/fs.h"

#include <algorithm>

#include "simnet/transport.h"
#include "util/error.h"
#include "util/hash.h"

namespace gw::dfs {

Dfs::Dfs(cluster::Platform& platform, DfsConfig config)
    : platform_(platform), config_(config) {
  GW_CHECK(config_.block_size > 0);
  GW_CHECK(config_.replication >= 1);
  rerep_name_ = platform_.sim().tracer().intern("dfs.rereplicate");
  crash_listener_id_ = platform_.sim().add_crash_listener(
      [this](int node, bool alive) {
        if (!alive) on_crash(node);
        // A restart revives the node EMPTY: lost replicas do not come back;
        // the node only becomes a placement target again.
      });
}

Dfs::~Dfs() {
  platform_.sim().remove_crash_listener(crash_listener_id_);
}

void Dfs::set_replication(int replication) {
  GW_CHECK(replication >= 1);
  config_.replication = replication;
}

std::uint64_t Dfs::num_blocks(const FileMeta& meta) const {
  return (meta.data.size() + config_.block_size - 1) / config_.block_size;
}

std::vector<int> Dfs::place_block(int writer, const std::string& path,
                                  std::uint64_t index) const {
  // First replica on the writer (HDFS policy); the rest rotate from a
  // per-block deterministic offset so data spreads evenly. Dead nodes are
  // never placement targets (with no crash scheduled every node is alive
  // and the rotation is unchanged).
  const int n = platform_.num_nodes();
  int live = 0;
  for (int i = 0; i < n; ++i) {
    if (alive(i)) ++live;
  }
  const int replicas = std::min(config_.replication, std::max(1, live));
  std::vector<int> out;
  out.reserve(replicas);
  out.push_back(writer);
  const std::uint64_t h = util::fnv1a(path) ^ util::mix64(index);
  int next = static_cast<int>(h % static_cast<std::uint64_t>(n));
  for (int scanned = 0;
       static_cast<int>(out.size()) < replicas && scanned < n; ++scanned) {
    if (alive(next) &&
        std::find(out.begin(), out.end(), next) == out.end()) {
      out.push_back(next);
    }
    next = (next + 1) % n;
  }
  return out;
}

sim::Task<> Dfs::write(int node, const std::string& path, util::Bytes data) {
  if (exists(path)) util::throw_error("dfs write: path exists: " + path);
  auto& sim = platform_.sim();

  FileMeta meta;
  meta.data = std::move(data);
  const std::uint64_t size = meta.data.size();
  const std::uint64_t blocks =
      std::max<std::uint64_t>(1, (size + config_.block_size - 1) / config_.block_size);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    meta.replicas.push_back(place_block(node, path, b));
  }
  // Charge the client JNI boundary for the whole payload once.
  co_await sim.delay(config_.client_call_overhead_s +
                     config_.client_per_byte_overhead_s *
                         static_cast<double>(size));

  // Per block: replication pipeline — the writer streams to replica 1, which
  // streams to replica 2, etc.; every replica also writes its disk. Blocks
  // are written back-to-back (HDFS streams a file sequentially) but the
  // replica-side work is concurrent per block.
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t lo = b * config_.block_size;
    const std::uint64_t len = std::min(config_.block_size, size - lo);
    const auto& replicas = meta.replicas[b];
    sim::TaskGroup group(sim);
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      if (r > 0) {
        group.spawn(platform_.transport().transfer(
            replicas[r - 1], replicas[r], net::kPortDfs,
            net::TrafficClass::kDfs, len));
      }
      group.spawn(platform_.node(replicas[r])
                      .disk_stream_write(len, cluster::Node::amortized_seek(len)));
    }
    co_await group.wait();
  }
  files_.emplace(path, std::move(meta));
}

sim::Task<> Dfs::write_distributed(const std::string& path, util::Bytes data) {
  if (exists(path)) util::throw_error("dfs write: path exists: " + path);
  auto& sim = platform_.sim();
  const int n = platform_.num_nodes();
  const int replicas = std::min(config_.replication, n);

  FileMeta meta;
  meta.data = std::move(data);
  const std::uint64_t size = meta.data.size();
  const std::uint64_t blocks = std::max<std::uint64_t>(
      1, (size + config_.block_size - 1) / config_.block_size);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    // Rotating placement: no node hosts a disproportionate share. Dead
    // nodes are skipped (identical rotation when every node is alive).
    std::vector<int> locs;
    const std::uint64_t h = util::fnv1a(path) ^ util::mix64(b * 2654435761ull);
    int next = static_cast<int>(h % static_cast<std::uint64_t>(n));
    for (int scanned = 0;
         static_cast<int>(locs.size()) < replicas && scanned < n; ++scanned) {
      if (alive(next) &&
          std::find(locs.begin(), locs.end(), next) == locs.end()) {
        locs.push_back(next);
      }
      next = (next + 1) % n;
    }
    GW_CHECK_MSG(!locs.empty(), "dfs write: no live node to place block");
    meta.replicas.push_back(std::move(locs));
  }

  // Per block: replica disk writes + pipeline transfers, concurrently
  // across blocks (the external client streams blocks to distinct nodes).
  sim::TaskGroup group(sim);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t lo = b * config_.block_size;
    const std::uint64_t len = std::min(config_.block_size, size - lo);
    const auto& locs = meta.replicas[b];
    for (std::size_t r = 0; r < locs.size(); ++r) {
      if (r > 0) {
        group.spawn(platform_.transport().transfer(
            locs[r - 1], locs[r], net::kPortDfs, net::TrafficClass::kDfs,
            len));
      }
      group.spawn(platform_.node(locs[r])
                      .disk_stream_write(len, cluster::Node::amortized_seek(len)));
    }
  }
  co_await group.wait();
  files_.emplace(path, std::move(meta));
}

sim::Task<util::Bytes> Dfs::read(int node, const std::string& path,
                                 std::uint64_t offset, std::uint64_t len) {
  auto it = files_.find(path);
  if (it == files_.end()) util::throw_error("dfs read: no such file: " + path);
  const FileMeta& meta = it->second;
  GW_CHECK_MSG(offset + len <= meta.data.size(), "dfs read out of range");
  auto& sim = platform_.sim();

  co_await sim.delay(config_.client_call_overhead_s +
                     config_.client_per_byte_overhead_s *
                         static_cast<double>(len));

  // Touch every block overlapping the range; prefer a local replica.
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;
  while (pos < end) {
    const std::uint64_t b = pos / config_.block_size;
    const std::uint64_t block_end = (b + 1) * config_.block_size;
    const std::uint64_t chunk = std::min(end, block_end) - pos;
    const auto& replicas = meta.replicas.at(b);
    const bool local =
        std::find(replicas.begin(), replicas.end(), node) != replicas.end();
    // Sequential block streaming: seeks amortize over contiguous I/O.
    const double seek = cluster::Node::amortized_seek(chunk);
    if (local) {
      ++local_reads_;
      co_await platform_.node(node).disk_stream_read(chunk, seek);
    } else {
      // First LIVE replica serves the block; crashed holders are useless
      // even if a racing write left them listed. A source that dies between
      // the disk read and the wire leg fails the fetch over to the next
      // live replica (re-reading there), so a crash mid-fetch costs the
      // client a retry, never the block.
      for (;;) {
        int remote = -1;
        for (int r : replicas) {
          if (alive(r)) {
            remote = r;
            break;
          }
        }
        if (remote < 0) {
          throw DataLossError("dfs read: every replica of block " +
                              std::to_string(b) + " of " + path +
                              " was lost to crashes");
        }
        ++remote_reads_;
        co_await platform_.node(remote).disk_stream_read(chunk, seek);
        if (!alive(node)) break;
        // A dead client gets no wire leg: the fetch it initiated before the
        // crash just evaporates; its zombie computation is discarded anyway.
        try {
          co_await platform_.transport().transfer(
              remote, node, net::kPortDfs, net::TrafficClass::kDfs, chunk);
        } catch (const net::NodeDownError&) {
          if (!alive(node)) break;  // the client itself died mid-fetch
          continue;  // the source died under us: crash pruning already
                     // dropped it from `replicas`; try the next survivor
        }
        break;
      }
    }
    pos += chunk;
  }

  util::Bytes out(meta.data.begin() + static_cast<std::ptrdiff_t>(offset),
                  meta.data.begin() + static_cast<std::ptrdiff_t>(offset + len));
  co_return out;
}

void Dfs::on_crash(int node) {
  // Drop the dead node from every block's replica list at the crash
  // instant (reads fall over to survivors immediately), then re-replicate
  // each under-replicated block in the background. files_ is an ordered
  // map, so the (path, block) scan — and with it the whole recovery event
  // sequence — is deterministic.
  auto& sim = platform_.sim();
  const int n = platform_.num_nodes();
  for (auto& [path, meta] : files_) {
    for (std::uint64_t b = 0; b < meta.replicas.size(); ++b) {
      auto& replicas = meta.replicas[b];
      auto it = std::find(replicas.begin(), replicas.end(), node);
      if (it == replicas.end()) continue;
      replicas.erase(it);
      ++replicas_lost_;
      if (replicas.empty()) continue;  // data lost; reads throw DataLossError
      // Pick a copy source (first live survivor) and a target via the same
      // deterministic rotation as initial placement, skipping holders and
      // dead nodes.
      int src = -1;
      for (int r : replicas) {
        if (alive(r)) {
          src = r;
          break;
        }
      }
      if (src < 0) continue;
      const std::uint64_t h = util::fnv1a(path) ^ util::mix64(b);
      int next = static_cast<int>(h % static_cast<std::uint64_t>(n));
      int dst = -1;
      for (int scanned = 0; scanned < n; ++scanned) {
        if (alive(next) &&
            std::find(replicas.begin(), replicas.end(), next) ==
                replicas.end()) {
          dst = next;
          break;
        }
        next = (next + 1) % n;
      }
      if (dst < 0) continue;  // no live node without a copy
      const std::uint64_t size = meta.data.size();
      const std::uint64_t lo = b * config_.block_size;
      const std::uint64_t len =
          std::min(config_.block_size, size > lo ? size - lo : 0);
      if (len == 0) continue;
      sim.spawn(rereplicate(path, b, src, dst, len));
    }
  }
}

sim::Task<> Dfs::rereplicate(std::string path, std::uint64_t block, int src,
                             int dst, std::uint64_t len) {
  trace::Tracer& tr = platform_.sim().tracer();
  auto track_it = rerep_tracks_.find(dst);
  if (track_it == rerep_tracks_.end()) {
    track_it =
        rerep_tracks_.emplace(dst, tr.track(dst, "dfs.rereplicate")).first;
  }
  const trace::TrackRef track = track_it->second;
  bool copied = false;
  try {
    co_await platform_.node(src).disk_stream_read(
        len, cluster::Node::amortized_seek(len));
    // Backoff-aware: the target may itself crash while the copy is queued.
    co_await platform_.transport().retry_transfer(
        src, dst, net::kPortDfs, net::TrafficClass::kDfs, len);
    co_await platform_.node(dst).disk_stream_write(
        len, cluster::Node::amortized_seek(len));
    copied = true;
  } catch (const net::NodeDownError&) {
    // Source or target died mid-copy; a later crash listener pass will
    // handle the new failure. This copy is abandoned.
  }
  // Instant, not a span: copies to one destination overlap freely, and a
  // track admits only one open span at a time.
  tr.instant(track, trace::Kind::kRecovery, rerep_name_,
             platform_.sim().now(), len);
  if (!copied) co_return;
  auto it = files_.find(path);
  if (it == files_.end()) co_return;  // file deleted meanwhile
  auto& replicas = it->second.replicas.at(block);
  if (std::find(replicas.begin(), replicas.end(), dst) == replicas.end() &&
      alive(dst)) {
    replicas.push_back(dst);
    ++blocks_rereplicated_;
  }
}

bool Dfs::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::uint64_t Dfs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) util::throw_error("dfs size: no such file: " + path);
  return it->second.data.size();
}

std::vector<std::string> Dfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, meta] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

void Dfs::remove(const std::string& path) { files_.erase(path); }

std::vector<int> Dfs::block_locations(const std::string& path,
                                      std::uint64_t index) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("dfs locations: no such file: " + path);
  }
  return it->second.replicas.at(index);
}

LocalFs::LocalFs(cluster::Platform& platform, LocalFsConfig config)
    : platform_(platform), config_(config) {}

sim::Task<> LocalFs::write(int node, const std::string& path,
                           util::Bytes data) {
  auto& entry = files_[path];
  if (!entry.nodes.empty() && entry.data != nullptr &&
      std::find(entry.nodes.begin(), entry.nodes.end(), node) !=
          entry.nodes.end()) {
    util::throw_error("localfs write: path exists on node: " + path);
  }
  const std::uint64_t size = data.size();
  entry.data = std::make_shared<const util::Bytes>(std::move(data));
  entry.nodes.push_back(node);
  std::sort(entry.nodes.begin(), entry.nodes.end());
  co_await platform_.sim().delay(config_.open_overhead_s);
  co_await platform_.node(node).disk_stream_write(
      size, cluster::Node::amortized_seek(size));
}

sim::Task<util::Bytes> LocalFs::read(int node, const std::string& path,
                                     std::uint64_t offset, std::uint64_t len) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs read: no such file: " + path);
  }
  const Entry& entry = it->second;
  if (std::find(entry.nodes.begin(), entry.nodes.end(), node) ==
      entry.nodes.end()) {
    util::throw_error("localfs read: file not hosted on node: " + path);
  }
  GW_CHECK_MSG(offset + len <= entry.data->size(), "localfs read out of range");
  co_await platform_.sim().delay(config_.open_overhead_s);
  co_await platform_.node(node).disk_stream_read(
      len, cluster::Node::amortized_seek(len));
  util::Bytes out(entry.data->begin() + static_cast<std::ptrdiff_t>(offset),
                  entry.data->begin() + static_cast<std::ptrdiff_t>(offset + len));
  co_return out;
}

bool LocalFs::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::uint64_t LocalFs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs size: no such file: " + path);
  }
  return it->second.data->size();
}

std::vector<std::string> LocalFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, entry] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

void LocalFs::remove(const std::string& path) { files_.erase(path); }

std::vector<int> LocalFs::block_locations(const std::string& path,
                                          std::uint64_t /*index*/) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs locations: no such file: " + path);
  }
  return it->second.nodes;
}

std::uint64_t LocalFs::block_size() const {
  // Whole file is one locality unit.
  return ~0ull;
}

void LocalFs::replicate_everywhere(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    util::throw_error("localfs replicate: no such file: " + path);
  }
  it->second.nodes.clear();
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    it->second.nodes.push_back(n);
  }
}

}  // namespace gw::dfs
