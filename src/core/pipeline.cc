#include "core/pipeline.h"

#include <algorithm>

#include "util/error.h"

namespace gw::core {

SplitScheduler::SplitScheduler(std::vector<InputSplit> splits)
    : splits_(std::move(splits)),
      taken_(splits_.size(), false),
      remaining_(splits_.size()) {}

std::optional<InputSplit> SplitScheduler::next_for(int node) {
  if (!requeued_.empty()) {
    InputSplit s = std::move(requeued_.back());
    requeued_.pop_back();
    --remaining_;
    return s;
  }
  if (remaining_ == 0) return std::nullopt;
  // First pass: a split with a local block.
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    if (taken_[i]) continue;
    const auto& locs = splits_[i].locations;
    if (std::find(locs.begin(), locs.end(), node) != locs.end()) {
      taken_[i] = true;
      --remaining_;
      ++local_grabs_;
      return splits_[i];
    }
  }
  // Fall back to any split.
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    if (!taken_[i]) {
      taken_[i] = true;
      --remaining_;
      ++remote_grabs_;
      return splits_[i];
    }
  }
  return std::nullopt;
}

void SplitScheduler::requeue(InputSplit split) {
  split.attempt++;
  ++retries_;
  ++remaining_;
  requeued_.push_back(std::move(split));
}

std::vector<InputSplit> SplitScheduler::make_splits(
    const dfs::FileSystem& fs, const std::vector<std::string>& paths,
    std::uint64_t split_size) {
  GW_CHECK(split_size > 0);
  std::vector<InputSplit> splits;
  for (const auto& path : paths) {
    const std::uint64_t size = fs.file_size(path);
    for (std::uint64_t off = 0; off < size; off += split_size) {
      InputSplit s(path, off, std::min(split_size, size - off));
      const std::uint64_t block = off / fs.block_size();
      s.locations = fs.block_locations(path, block);
      s.index = static_cast<int>(splits.size());
      splits.push_back(std::move(s));
    }
  }
  return splits;
}

std::vector<std::pair<std::string, std::string>> read_output_file(
    const util::Bytes& file_contents) {
  util::ByteReader r(file_contents);
  Run run = Run::deserialize(r);
  RunReader reader(run);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(run.pairs);
  KV kv;
  while (reader.next(&kv)) {
    out.emplace_back(std::string(kv.key), std::string(kv.value));
  }
  return out;
}

}  // namespace gw::core
