#include "core/collector.h"

#include <algorithm>
#include <unordered_map>

#include "util/error.h"
#include "util/hash.h"

namespace gw::core {

namespace {

// ReduceEmitter writing into a per-group PairList, charging device-memory
// writes for emitted bytes.
class PairListEmitter : public ReduceEmitter {
 public:
  PairListEmitter(PairList* out, cl::KernelCounters* c) : out_(out), c_(c) {}
  void emit(std::string_view key, std::string_view value) override {
    out_->add(key, value);
    c_->charge_write(key.size() + value.size());
  }

 private:
  PairList* out_;
  cl::KernelCounters* c_;
};

}  // namespace

std::unique_ptr<MapOutputCollector> make_collector(OutputMode mode,
                                                   std::size_t groups) {
  if (mode == OutputMode::kSharedPool) {
    return std::make_unique<SharedPoolCollector>(groups);
  }
  return std::make_unique<HashTableCollector>(groups);
}

SharedPoolCollector::SharedPoolCollector(std::size_t groups)
    : MapOutputCollector(groups), per_group_(groups) {}

void SharedPoolCollector::emit(std::size_t group, std::string_view key,
                               std::string_view value, cl::KernelCounters& c) {
  // One atomic bump allocation, then the stores.
  c.charge_atomic(1);
  c.charge_write(key.size() + value.size());
  per_group_[group].add(key, value);
}

sim::Task<MapChunkOutput> SharedPoolCollector::finalize(
    cl::Device& /*device*/, const std::optional<CombineFn>& combine,
    cl::LaunchConfig /*launch*/) {
  GW_CHECK_MSG(!combine.has_value(),
               "combiner requires the hash-table collector (as in the paper)");
  MapChunkOutput out;
  for (auto& pl : per_group_) {
    out.pairs.append(pl);
    pl.clear();
  }
  out.grouped = false;
  out.distinct_keys = 0;  // unknown without grouping
  co_return std::move(out);
}

HashTableCollector::Table::Table() : slots(kInitialSlots) {}

void HashTableCollector::Table::reset() {
  blob.clear();
  values.clear();
  slots.assign(kInitialSlots, Slot{});
  used = 0;
  probes = 0;
}

void HashTableCollector::Table::grow() {
  std::vector<Slot> old = std::move(slots);
  slots.assign(old.size() * 2, Slot{});
  const std::uint64_t mask = slots.size() - 1;
  for (const Slot& s : old) {
    if (s.key_off == kEmpty) continue;
    std::uint64_t idx = s.hash & mask;
    while (slots[idx].key_off != kEmpty) idx = (idx + 1) & mask;
    slots[idx] = s;
  }
}

void HashTableCollector::Table::insert(std::string_view key,
                                       std::string_view value,
                                       cl::KernelCounters& c) {
  if (used * 10 >= slots.size() * 7) {
    grow();
    c.charge_ops(used * 4);  // rehash cost
  }
  const std::uint64_t h = util::fnv1a(key);
  c.charge_ops(key.size());  // hashing the key
  const std::uint64_t mask = slots.size() - 1;
  std::uint64_t idx = h & mask;
  for (;;) {
    Slot& s = slots[idx];
    c.charge_hash_probe(1);
    ++probes;
    if (s.key_off == kEmpty) {
      // Claim the slot (CAS) and store the key once.
      c.charge_atomic(1);
      c.charge_write(key.size());
      s.hash = h;
      s.key_off = blob.size();
      s.key_len = static_cast<std::uint32_t>(key.size());
      blob.insert(blob.end(), key.begin(), key.end());
      ++used;
      break;
    }
    if (s.hash == h && view(s.key_off, s.key_len) == key) break;
    idx = (idx + 1) & mask;
  }
  // Append the value to the key's chain: one atomic head swap plus stores.
  Slot& s = slots[idx];
  c.charge_atomic(1);
  c.charge_write(value.size());
  const std::uint64_t voff = blob.size();
  blob.insert(blob.end(), value.begin(), value.end());
  values.push_back(ValueNode{voff, static_cast<std::uint32_t>(value.size()),
                             s.head});
  s.head = static_cast<std::uint32_t>(values.size() - 1);
  s.num_values++;
}

HashTableCollector::HashTableCollector(std::size_t groups)
    : MapOutputCollector(groups), tables_(groups) {}

void HashTableCollector::emit(std::size_t group, std::string_view key,
                              std::string_view value, cl::KernelCounters& c) {
  tables_[group].insert(key, value, c);
}

std::uint64_t HashTableCollector::total_probes() const {
  std::uint64_t total = 0;
  for (const auto& t : tables_) total += t.probes;
  return total;
}

sim::Task<MapChunkOutput> HashTableCollector::finalize(
    cl::Device& device, const std::optional<CombineFn>& combine,
    cl::LaunchConfig launch) {
  // Merge the per-group tables into a deterministic key list (first-seen
  // order over groups, then slots). This CPU-side gather is real host work
  // with no charge of its own, so it is folded into the kernel job below
  // and runs on the pool together with the post-processing kernel.
  struct KeyEntry {
    std::string_view key;
    std::vector<std::string_view> values;
  };
  std::vector<KeyEntry> keys;
  const auto gather = [this, &keys] {
    std::unordered_map<std::string_view, std::size_t> index;
    for (const Table& t : tables_) {
      for (const Table::Slot& s : t.slots) {
        if (s.key_off == Table::kEmpty) continue;
        const std::string_view key = t.view(s.key_off, s.key_len);
        auto [it, inserted] = index.try_emplace(key, keys.size());
        if (inserted) keys.push_back(KeyEntry{key, {}});
        KeyEntry& entry = keys[it->second];
        // Chain is newest-first; restore emit order within the group.
        const std::size_t first = entry.values.size();
        for (std::uint32_t v = s.head; v != Table::kNil;
             v = t.values[v].next) {
          entry.values.push_back(t.view(t.values[v].off, t.values[v].len));
        }
        std::reverse(entry.values.begin() + first, entry.values.end());
      }
    }
  };

  // Post-processing kernel over keys: combine, or compaction when no
  // combiner is configured (the paper always runs one of the two after
  // map() in hash-table mode, §IV-B1).
  const std::size_t groups = tables_.size();
  std::vector<PairList> out_groups(groups);
  const auto run = [&](auto&& per_key) -> sim::Task<cl::KernelStats> {
    return device.run_kernel_job(
        [&gather, &keys, &out_groups, groups, per_key] {
          gather();
          return cl::Device::execute_grouped(
              keys.size(), groups,
              [&](std::size_t i, std::size_t g, cl::KernelCounters& c) {
                per_key(keys[i], out_groups[g], c);
              });
        },
        launch);
  };

  cl::KernelStats post;
  if (combine.has_value()) {
    post = co_await run([&](const KeyEntry& e, PairList& out,
                            cl::KernelCounters& c) {
      std::uint64_t value_bytes = 0;
      for (auto v : e.values) value_bytes += v.size();
      c.charge_read(e.key.size() + value_bytes);
      PairListEmitter emitter(&out, &c);
      ReduceContext ctx{&emitter, &c};
      (*combine)(e.key, e.values, ctx);
    });
  } else {
    // Compaction: place each key's values contiguously.
    post = co_await run([&](const KeyEntry& e, PairList& out,
                            cl::KernelCounters& c) {
      std::uint64_t value_bytes = 0;
      for (auto v : e.values) value_bytes += v.size();
      c.charge_read(e.key.size() + value_bytes);
      c.charge_write(e.key.size() + value_bytes);
      for (auto v : e.values) out.add(e.key, v);
    });
  }

  MapChunkOutput out;
  for (auto& pl : out_groups) out.pairs.append(pl);
  out.distinct_keys = keys.size();
  out.grouped = true;
  out.post_stats = post;
  for (auto& t : tables_) {
    out.hash_probes += t.probes;
    t.reset();  // keeps blob/values capacity for the next chunk
  }
  co_return std::move(out);
}

}  // namespace gw::core
