// Shared helpers for the five evaluation applications (paper §IV: "To
// fairly represent the wide spectrum of MapReduce applications we
// implemented and analyzed five applications with diverse properties").
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "core/api.h"
#include "util/bytes.h"

namespace gw::apps {

// Fixed-width big-endian integer keys sort correctly under the framework's
// lexicographic byte comparison.
inline void put_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

inline std::uint32_t get_be32(std::string_view s) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3]));
}

inline void put_be64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>(v >> shift));
  }
}

inline std::uint64_t get_be64(std::string_view s) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[static_cast<std::size_t>(i)]);
  }
  return v;
}

// Decimal counters (WordCount/PageviewCount values).
inline std::uint64_t parse_u64(std::string_view v) {
  std::uint64_t n = 0;
  for (char c : v) n = n * 10 + static_cast<std::uint64_t>(c - '0');
  return n;
}

inline float read_f32(const char* p) {
  float f;
  std::memcpy(&f, p, sizeof(f));
  return f;
}

inline void append_f32(std::string& out, float f) {
  char buf[sizeof(float)];
  std::memcpy(buf, &f, sizeof(f));
  out.append(buf, sizeof(buf));
}

// An application bundled with its per-device launch tuning (the paper's
// per-compute-device optimization knobs, §I).
struct AppSpec {
  core::AppKernels kernels;
  cl::LaunchConfig cpu_launch;
  cl::LaunchConfig gpu_launch;
};

}  // namespace gw::apps
