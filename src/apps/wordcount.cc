#include "apps/wordcount.h"

#include <vector>

#include "util/rng.h"

namespace gw::apps {

namespace {

bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

void wc_map(std::string_view record, core::MapContext& ctx) {
  // Scan cost: classify every byte; hash/emit cost charged by the collector.
  ctx.charge_ops(2 * record.size());
  std::size_t i = 0;
  while (i < record.size()) {
    while (i < record.size() && !is_word_char(record[i])) ++i;
    const std::size_t start = i;
    while (i < record.size() && is_word_char(record[i])) ++i;
    if (i > start) ctx.emit(record.substr(start, i - start), "1");
  }
}

void wc_sum(std::string_view key,
            const std::vector<std::string_view>& values,
            core::ReduceContext& ctx) {
  std::uint64_t total = 0;
  for (auto v : values) total += parse_u64(v);
  ctx.charge_ops(3 * values.size());
  ctx.emit(key, std::to_string(total));
}

// Core vocabulary: frequency-ranked pseudo-words; rank 0 is "the"-like.
std::string vocab_word(std::size_t rank) {
  static const char* kCommon[] = {"the", "of",  "and", "in", "to",
                                  "a",   "is",  "was", "as", "for"};
  if (rank < 10) return kCommon[rank];
  std::string w;
  std::size_t r = rank;
  do {
    w.push_back(static_cast<char>('a' + r % 26));
    r /= 26;
  } while (r > 0);
  w.push_back(static_cast<char>('a' + rank % 23));
  return w;
}

}  // namespace

AppSpec wordcount() {
  AppSpec spec;
  spec.kernels.name = "wordcount";
  spec.kernels.map = wc_map;
  spec.kernels.combine = wc_sum;
  // Integer addition: reducing combined partials is byte-identical to
  // reducing the raw counts under any grouping.
  spec.kernels.combine_associative = true;
  spec.kernels.reduce = wc_sum;
  spec.cpu_launch.threads = 0;   // all hardware lanes
  spec.gpu_launch.threads = 0;
  return spec;
}

util::Bytes generate_wiki_text(std::uint64_t bytes, std::uint64_t seed) {
  constexpr std::size_t kVocab = 20000;
  util::Rng rng(seed);
  util::ZipfSampler zipf(kVocab, 1.05);
  std::string text;
  text.reserve(bytes + 64);
  std::uint64_t sparse_id = 0;
  int words_in_line = 0;
  while (text.size() < bytes) {
    // ~3% sparse tail words (unique), matching the "large number of sparse
    // words" the paper describes.
    if (rng.below(100) < 3) {
      // Letters only (the map kernel tokenizes on alphabetic runs).
      std::uint64_t id = sparse_id++;
      std::string tail = "xq";
      do {
        tail.push_back(static_cast<char>('a' + id % 26));
        id /= 26;
      } while (id > 0);
      text += tail;
    } else {
      text += vocab_word(zipf.sample(rng));
    }
    if (++words_in_line >= 12) {
      text += '\n';
      words_in_line = 0;
    } else {
      text += ' ';
    }
  }
  if (text.empty() || text.back() != '\n') text += '\n';
  return util::Bytes(text.begin(), text.end());
}

std::map<std::string, std::uint64_t> wordcount_reference(
    const util::Bytes& text) {
  std::map<std::string, std::uint64_t> counts;
  std::string word;
  for (std::uint8_t b : text) {
    const char c = static_cast<char>(b);
    if (is_word_char(c)) {
      word += c;
    } else if (!word.empty()) {
      counts[word]++;
      word.clear();
    }
  }
  if (!word.empty()) counts[word]++;
  return counts;
}

}  // namespace gw::apps
