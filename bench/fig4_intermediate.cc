// Figure 4: intermediate-data handling knobs (WC on one Type-1 node,
// local FS).
//  (a) Partitioning-stage and Kernel-stage times vs the number of
//      partitioner threads N: partitioning dominates at N=1 and drops below
//      the kernel from a few threads on.
//  (b) Merge delay vs partitions-per-node P for several N: more partitions
//      -> parallel merging -> sharply lower merge delay; more partitioner
//      threads -> slightly higher merge delay (mergers starved of cores
//      during the map phase).
#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(24ull << 20);

core::JobResult run_config(const util::Bytes& input, int n_threads, int p) {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = 512 << 10;
  // Partitioning-heavy configuration (§IV-B3 analyses WC's intermediate
  // volume): simple collection keeps every occurrence.
  cfg.output_mode = core::OutputMode::kSharedPool;
  cfg.use_combiner = false;
  cfg.partitioner_threads = n_threads;
  cfg.partitions_per_node = p;
  cfg.cache_threshold_bytes = 256 << 20;  // all intermediate cached: the
  // merge phase must consolidate everything after map, so its parallelism
  // (one merger per partition) governs the delay
  core::JobResult result;
  bench::RunOpts opts;
  opts.local_fs = true;
  bench::run_glasswing(1, apps::wordcount().kernels, input, cfg, opts,
                       &result);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_wiki_text(kInputBytes, 2014);

  // --- Fig 4(a): stage times vs N (P fixed at 8) ---
  std::printf("=== Figure 4(a): map pipeline stage times vs partitioner "
              "threads N (P=8) ===\n");
  std::printf("%-6s %14s %14s %14s\n", "N", "Partitioning(s)", "Kernel(s)",
              "MapElapsed(s)");
  double part1 = 0, part4 = 0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const core::JobResult r = run_config(input, n, 8);
    std::printf("%-6d %14.3f %14.3f %14.3f\n", n, r.stages.partition,
                r.stages.kernel, r.stages.map_elapsed);
    if (n == 1) part1 = r.stages.partition;
    if (n == 4) {
      part4 = r.stages.partition;
      bench::print_host_path_summary("N=4,P=8", r);
    }
  }
  std::printf("Shape check: partitioning time falls with N: %.3f -> %.3f "
              "(%s)\n",
              part1, part4, part4 < part1 ? "OK" : "MISMATCH");

  // --- Fig 4(b): merge delay vs P for several N ---
  bench::SeriesTable table("P");
  for (int n : {1, 4, 16}) {
    for (int p : {1, 2, 4, 8, 16, 32}) {
      const core::JobResult r = run_config(input, n, p);
      table.add("merge-delay(N=" + std::to_string(n) + ")", p,
                r.merge_delay_seconds);
    }
  }
  table.print("Figure 4(b): merge delay vs partitions per node P");
  std::printf("\nShape check (paper: delay falls sharply with P; rises "
              "mildly with N):\n"
              "  N=4: P=1 %.3fs -> P=16 %.3fs\n"
              "  P=4: N=1 %.3fs vs N=16 %.3fs\n",
              table.at("merge-delay(N=4)", 1), table.at("merge-delay(N=4)", 16),
              table.at("merge-delay(N=1)", 4), table.at("merge-delay(N=16)", 4));

  for (int p : {1, 8, 32}) {
    const double t = table.at("merge-delay(N=4)", p);
    bench::register_point("Fig4/merge-delay/P:" + std::to_string(p),
                          [t](benchmark::State&) { return t; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
