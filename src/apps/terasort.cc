#include "apps/terasort.h"

#include <algorithm>
#include <memory>

#include "util/error.h"
#include "util/hash.h"
#include "util/rng.h"

namespace gw::apps {

namespace {

void ts_map(std::string_view record, core::MapContext& ctx) {
  // Identity: split the record into key and payload; negligible compute.
  ctx.charge_ops(10);
  ctx.emit(record.substr(0, kTeraKeySize), record.substr(kTeraKeySize));
}

}  // namespace

AppSpec terasort() {
  AppSpec spec;
  spec.kernels.name = "terasort";
  spec.kernels.map = ts_map;
  spec.kernels.fixed_record_size = kTeraRecordSize;
  // No reduce: output is complete when the shuffle's merge finishes.
  return spec;
}

sim::Task<core::PartitionFn> sample_range_partitioner(
    dfs::FileSystem& fs, int node, std::vector<std::string> paths,
    std::size_t samples_per_file) {
  auto samples = std::make_shared<std::vector<std::string>>();
  for (const auto& path : paths) {
    const std::uint64_t size = fs.file_size(path);
    const std::uint64_t records = size / kTeraRecordSize;
    const std::uint64_t take =
        std::min<std::uint64_t>(samples_per_file, records);
    if (take == 0) continue;
    const std::uint64_t stride = records / take;
    // Strided sampling across the file; reads are charged per sample batch.
    for (std::uint64_t s = 0; s < take; ++s) {
      const std::uint64_t off = s * stride * kTeraRecordSize;
      util::Bytes rec = co_await fs.read(node, path, off, kTeraKeySize);
      samples->emplace_back(rec.begin(), rec.end());
    }
  }
  std::sort(samples->begin(), samples->end());
  co_return core::PartitionFn(
      [samples](std::string_view key, std::uint32_t total) -> std::uint32_t {
        if (samples->empty()) return 0;
        // Equal-frequency quantiles: rank of key among samples -> bucket.
        const auto it = std::upper_bound(samples->begin(), samples->end(),
                                         key,
                                         [](std::string_view k,
                                            const std::string& s) {
                                           return k < std::string_view(s);
                                         });
        const std::size_t rank =
            static_cast<std::size_t>(it - samples->begin());
        const std::uint64_t bucket =
            static_cast<std::uint64_t>(rank) * total / (samples->size() + 1);
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(bucket, total - 1));
      });
}

util::Bytes encode_splitters(const std::vector<std::string>& splitters) {
  std::string out;
  put_be32(out, static_cast<std::uint32_t>(splitters.size()));
  for (const auto& s : splitters) {
    put_be32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
  }
  return util::Bytes(out.begin(), out.end());
}

std::vector<std::string> decode_splitters(const util::Bytes& payload) {
  const std::string_view view(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  GW_CHECK(view.size() >= 4);
  const std::uint32_t count = get_be32(view);
  std::vector<std::string> splitters;
  splitters.reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = get_be32(view.substr(off));
    off += 4;
    splitters.emplace_back(view.substr(off, len));
    off += len;
  }
  GW_CHECK(off == view.size());
  return splitters;
}

core::PartitionFn splitter_range_partitioner(
    std::vector<std::string> splitters) {
  auto shared = std::make_shared<std::vector<std::string>>(std::move(splitters));
  return [shared](std::string_view key, std::uint32_t total) -> std::uint32_t {
    const auto it = std::upper_bound(
        shared->begin(), shared->end(), key,
        [](std::string_view k, const std::string& s) {
          return k < std::string_view(s);
        });
    const auto bucket = static_cast<std::uint64_t>(it - shared->begin());
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(bucket, total - 1));
  };
}

core::DagResult terasort_dag(core::GlasswingRuntime& runtime,
                             cluster::Platform& platform, dfs::FileSystem& fs,
                             core::DagConfig dag, core::EdgeKind sample_edge,
                             std::uint32_t sample_every) {
  GW_CHECK(sample_every > 0);
  const std::uint32_t total_partitions =
      static_cast<std::uint32_t>(platform.num_nodes()) *
      static_cast<std::uint32_t>(dag.base.partitions_per_node);
  const std::vector<std::string> input_paths = dag.input_paths;

  core::JobDag jd(runtime, platform, fs, std::move(dag));

  core::RoundSpec sample;
  sample.name = "sample";
  sample.edge = sample_edge;
  sample.app = [sample_every](const core::DagRoundState&) {
    AppSpec spec;
    spec.kernels.name = "terasort-sample";
    spec.kernels.fixed_record_size = kTeraRecordSize;
    spec.kernels.map = [sample_every](std::string_view record,
                                      core::MapContext& ctx) {
      ctx.charge_ops(12);
      const std::string_view key = record.substr(0, kTeraKeySize);
      if (util::fnv1a(key.data(), key.size()) % sample_every == 0) {
        ctx.emit(key, {});
      }
    };
    // Everything into one merge-sorted sample partition; no reduce.
    spec.kernels.partition = [](std::string_view, std::uint32_t) {
      return std::uint32_t{0};
    };
    return spec.kernels;
  };
  sample.broadcast = [total_partitions](const core::DagRoundState&,
                                        const core::RoundPairs& pairs) {
    // Equal-frequency quantiles over the merge-sorted samples.
    std::vector<std::string> splitters;
    if (!pairs.empty()) {
      for (std::uint32_t b = 1; b < total_partitions; ++b) {
        const std::size_t rank = static_cast<std::size_t>(
            static_cast<std::uint64_t>(b) * pairs.size() / total_partitions);
        splitters.push_back(pairs[rank].first);
      }
    }
    return encode_splitters(splitters);
  };
  jd.add_round(std::move(sample));

  core::RoundSpec sort;
  sort.name = "sort";
  sort.app = [](const core::DagRoundState& st) {
    AppSpec spec = terasort();
    spec.kernels.partition =
        splitter_range_partitioner(decode_splitters(st.broadcast));
    return spec.kernels;
  };
  // The sort round re-reads the original records, not the sample file.
  sort.inputs = [input_paths](const core::DagRoundState&) {
    return input_paths;
  };
  jd.add_round(std::move(sort));

  return jd.run();
}

util::Bytes generate_terasort(std::uint64_t records, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes data;
  data.reserve(records * kTeraRecordSize);
  for (std::uint64_t r = 0; r < records; ++r) {
    // 10-byte key: printable ASCII like gensort (' '..'~').
    for (std::uint64_t i = 0; i < kTeraKeySize; ++i) {
      data.push_back(static_cast<std::uint8_t>(' ' + rng.below(95)));
    }
    // 90-byte payload: record number + filler.
    std::string payload = std::to_string(r);
    payload.resize(kTeraRecordSize - kTeraKeySize, 'x');
    data.insert(data.end(), payload.begin(), payload.end());
  }
  return data;
}

std::uint64_t terasort_checksum(const util::Bytes& data) {
  GW_CHECK(data.size() % kTeraRecordSize == 0);
  std::uint64_t checksum = 0;
  for (std::size_t off = 0; off < data.size(); off += kTeraRecordSize) {
    checksum ^= util::fnv1a(data.data() + off, kTeraRecordSize);
  }
  return checksum;
}

}  // namespace gw::apps
