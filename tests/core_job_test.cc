// End-to-end tests for the Glasswing runtime: full jobs on simulated
// clusters, outputs verified against reference implementations.
#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/job.h"
#include "util/rng.h"

namespace gw::core {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

// --- tiny inline wordcount app for framework tests ---

void wc_map(std::string_view record, MapContext& ctx) {
  std::size_t i = 0;
  while (i < record.size()) {
    while (i < record.size() && !std::isalpha(static_cast<unsigned char>(record[i]))) ++i;
    std::size_t start = i;
    while (i < record.size() && std::isalpha(static_cast<unsigned char>(record[i]))) ++i;
    if (i > start) {
      ctx.charge_ops(2 * (i - start));
      ctx.emit(record.substr(start, i - start), "1");
    }
  }
}

std::uint64_t parse_count(std::string_view v) {
  std::uint64_t n = 0;
  for (char c : v) n = n * 10 + static_cast<std::uint64_t>(c - '0');
  return n;
}

void wc_sum(std::string_view key, const std::vector<std::string_view>& values,
            ReduceContext& ctx) {
  std::uint64_t total = 0;
  for (auto v : values) total += parse_count(v);
  ctx.charge_ops(values.size());
  ctx.emit(key, std::to_string(total));
}

AppKernels wordcount_app() {
  AppKernels app;
  app.name = "wc-test";
  app.map = wc_map;
  app.combine = wc_sum;
  app.reduce = wc_sum;
  return app;
}

std::string make_text(std::size_t lines, std::uint64_t seed) {
  static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                                 "zeta",  "eta",  "theta", "iota",  "kappa"};
  util::Rng rng(seed);
  util::ZipfSampler zipf(10, 1.0);
  std::string text;
  for (std::size_t l = 0; l < lines; ++l) {
    for (int w = 0; w < 8; ++w) {
      text += kWords[zipf.sample(rng)];
      text += ' ';
    }
    text += '\n';
  }
  return text;
}

std::map<std::string, std::uint64_t> reference_counts(const std::string& text) {
  std::map<std::string, std::uint64_t> counts;
  std::string word;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      word += c;
    } else if (!word.empty()) {
      counts[word]++;
      word.clear();
    }
  }
  if (!word.empty()) counts[word]++;
  return counts;
}

// --- helpers ---

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
}

void write_file(Platform& p, dfs::FileSystem& fs, int node,
                const std::string& path, const std::string& contents) {
  p.sim().spawn([](dfs::FileSystem& f, int n, std::string pa,
                   std::string c) -> sim::Task<> {
    co_await f.write(n, pa, util::Bytes(c.begin(), c.end()));
  }(fs, node, path, contents));
  p.sim().run();
}

util::Bytes read_file(Platform& p, dfs::FileSystem& fs, const std::string& path) {
  util::Bytes out;
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes* o) -> sim::Task<> {
    // Read from a node that hosts the file (or any node for DFS).
    const int node = f.block_locations(pa, 0).front();
    *o = co_await f.read_all(node, pa);
  }(fs, path, &out));
  p.sim().run();
  return out;
}

std::map<std::string, std::uint64_t> collect_output(Platform& p,
                                                    dfs::FileSystem& fs,
                                                    const JobResult& result) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& path : result.output_files) {
    util::Bytes contents = read_file(p, fs, path);
    for (auto& [k, v] : read_output_file(contents)) {
      counts[k] += parse_count(v);
    }
  }
  return counts;
}

struct JobFixture {
  explicit JobFixture(int nodes, std::size_t lines = 2000,
                      std::uint64_t seed = 42)
      : platform(make_platform(nodes)), fs(platform, dfs::DfsConfig{}) {
    text = make_text(lines, seed);
    write_file(platform, fs, 0, "/in/text", text);
    config.input_paths = {"/in/text"};
    config.output_path = "/out";
    config.split_size = 64 << 10;
    config.cache_threshold_bytes = 64 << 10;
    config.partitions_per_node = 4;
  }

  Platform platform;
  dfs::Dfs fs;
  std::string text;
  JobConfig config;
};

TEST(Job, WordcountSingleNodeMatchesReference) {
  JobFixture f(1);
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult result = rt.run(wordcount_app(), f.config);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_GT(result.stats.input_records, 0u);
  auto expected = reference_counts(f.text);
  auto actual = collect_output(f.platform, f.fs, result);
  EXPECT_EQ(actual, expected);
}

TEST(Job, WordcountFourNodesMatchesReference) {
  JobFixture f(4, 6000);
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult result = rt.run(wordcount_app(), f.config);
  auto expected = reference_counts(f.text);
  auto actual = collect_output(f.platform, f.fs, result);
  EXPECT_EQ(actual, expected);
  EXPECT_GT(result.stats.shuffle_bytes_remote, 0u);
}

TEST(Job, DeterministicAcrossRuns) {
  auto run_once = []() {
    JobFixture f(2, 1500);
    GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
    JobResult r = rt.run(wordcount_app(), f.config);
    return std::make_pair(r.elapsed_seconds, r.stats.intermediate_pairs);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

class JobBuffering : public ::testing::TestWithParam<int> {};

TEST_P(JobBuffering, OutputsCorrectAtEveryBufferingLevel) {
  JobFixture f(2);
  f.config.buffering = GetParam();
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult result = rt.run(wordcount_app(), f.config);
  EXPECT_EQ(collect_output(f.platform, f.fs, result), reference_counts(f.text));
}

INSTANTIATE_TEST_SUITE_P(Levels, JobBuffering, ::testing::Values(1, 2, 3));

TEST(Job, SingleBufferingIsSlower) {
  auto timed = [](int buffering) {
    JobFixture f(1, 4000);
    f.config.buffering = buffering;
    GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
    return rt.run(wordcount_app(), f.config).elapsed_seconds;
  };
  EXPECT_GT(timed(1), timed(2));
}

class JobCollector
    : public ::testing::TestWithParam<std::tuple<OutputMode, bool>> {};

TEST_P(JobCollector, OutputIndependentOfCollector) {
  const auto [mode, combiner] = GetParam();
  JobFixture f(2);
  f.config.output_mode = mode;
  f.config.use_combiner = combiner;
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult result = rt.run(wordcount_app(), f.config);
  EXPECT_EQ(collect_output(f.platform, f.fs, result), reference_counts(f.text));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, JobCollector,
    ::testing::Values(std::make_tuple(OutputMode::kHashTable, true),
                      std::make_tuple(OutputMode::kHashTable, false),
                      std::make_tuple(OutputMode::kSharedPool, false)));

TEST(Job, CombinerShrinksIntermediateData) {
  auto inter_bytes = [](bool combiner) {
    JobFixture f(1, 3000);
    f.config.use_combiner = combiner;
    GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
    return rt.run(wordcount_app(), f.config).stats.intermediate_bytes;
  };
  EXPECT_LT(inter_bytes(true), inter_bytes(false) / 4);
}

TEST(Job, GpuDeviceRunsAndMatches) {
  JobFixture f(2);
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::gtx480());
  JobResult result = rt.run(wordcount_app(), f.config);
  EXPECT_EQ(collect_output(f.platform, f.fs, result), reference_counts(f.text));
  // Discrete device: staging stages were active.
  EXPECT_GT(result.stages.stage + result.stages.retrieve, 0.0);
}

TEST(Job, ScratchSlicingHandlesHugeValueLists) {
  JobFixture f(1, 3000);
  f.config.max_values_per_kernel = 64;  // force slicing: "alpha" has ~1000s
  f.config.use_combiner = false;        // keep all duplicate values
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult result = rt.run(wordcount_app(), f.config);
  EXPECT_EQ(collect_output(f.platform, f.fs, result), reference_counts(f.text));
}

TEST(Job, NoReduceJobWritesSortedMergedOutput) {
  // TeraSort-style: no reduce function; output is the sorted intermediate.
  JobFixture f(2, 500);
  AppKernels app = wordcount_app();
  app.reduce.reset();
  app.combine.reset();
  f.config.use_combiner = false;
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult result = rt.run(app, f.config);
  // Each output file must be sorted, and total pair count must equal the
  // total number of words.
  std::uint64_t total = 0;
  for (const auto& path : result.output_files) {
    auto pairs = read_output_file(read_file(f.platform, f.fs, path));
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      EXPECT_LE(pairs[i - 1].first, pairs[i].first);
    }
    total += pairs.size();
  }
  std::uint64_t expected = 0;
  for (auto& [k, v] : reference_counts(f.text)) expected += v;
  EXPECT_EQ(total, expected);
}

TEST(Job, MoreNodesRunFaster) {
  auto timed = [](int nodes) {
    JobFixture f(nodes, 40000);
    GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
    return rt.run(wordcount_app(), f.config).elapsed_seconds;
  };
  const double t1 = timed(1);
  const double t4 = timed(4);
  EXPECT_LT(t4, t1);
  EXPECT_GT(t1 / t4, 1.8);  // at least ~2x speedup on 4 nodes
}

TEST(Job, StageBreakdownIsConsistent) {
  JobFixture f(1, 4000);
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult r = rt.run(wordcount_app(), f.config);
  // CPU device: staging disabled (unified memory).
  EXPECT_DOUBLE_EQ(r.stages.stage, 0.0);
  EXPECT_DOUBLE_EQ(r.stages.retrieve, 0.0);
  // Pipeline overlap: elapsed must not exceed the sum of stage busy times
  // but must be at least the dominant stage.
  const double dominant = std::max(
      {r.stages.input, r.stages.kernel, r.stages.partition});
  EXPECT_GE(r.stages.map_elapsed, dominant - 1e-9);
  EXPECT_LE(r.stages.map_elapsed + 1e-9,
            r.stages.input + r.stages.kernel + r.stages.partition +
                r.stages.map_elapsed * 0.25 + 0.5);
  // Phases account for the whole job.
  EXPECT_NEAR(r.map_phase_seconds + r.merge_delay_seconds +
                  r.reduce_phase_seconds,
              r.elapsed_seconds, r.elapsed_seconds * 0.35);
}

TEST(Job, PartitionerThreadsReducePartitionStageTime) {
  auto partition_busy = [](int threads) {
    JobFixture f(1, 6000);
    f.config.partitioner_threads = threads;
    f.config.output_mode = OutputMode::kSharedPool;  // partition-heavy
    f.config.use_combiner = false;
    GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
    return rt.run(wordcount_app(), f.config).stages.partition;
  };
  EXPECT_GT(partition_busy(1), partition_busy(4) * 1.5);
}

TEST(Job, OutputReplicationOverrideApplies) {
  JobFixture f(4);
  f.config.output_replication = 1;
  GlasswingRuntime rt(f.platform, f.fs, cl::DeviceSpec::cpu_dual_e5620());
  JobResult result = rt.run(wordcount_app(), f.config);
  ASSERT_FALSE(result.output_files.empty());
  EXPECT_EQ(f.fs.block_locations(result.output_files[0], 0).size(), 1u);
}

}  // namespace
}  // namespace gw::core
