file(REMOVE_RECURSE
  "CMakeFiles/fig6_vertical.dir/fig6_vertical.cc.o"
  "CMakeFiles/fig6_vertical.dir/fig6_vertical.cc.o.d"
  "fig6_vertical"
  "fig6_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
