#include "apps/prefixsum.h"

#include <algorithm>
#include <vector>

#include "core/pipeline.h"
#include "util/error.h"
#include "util/rng.h"

namespace gw::apps {

namespace {

std::string be64_key(std::uint64_t v) {
  std::string out;
  put_be64(out, v);
  return out;
}

core::AppKernels blocksum_kernels(std::uint64_t block_records) {
  core::AppKernels k;
  k.name = "prefix-blocksum";
  k.fixed_record_size = kPrefixRecordSize;
  k.map = [block_records](std::string_view record, core::MapContext& ctx) {
    GW_CHECK(record.size() == kPrefixRecordSize);
    const std::uint64_t index = get_be64(record);
    ctx.charge_ops(10);
    ctx.emit(be64_key(index / block_records), record.substr(8));
  };
  auto sum_values = [](std::string_view key,
                       const std::vector<std::string_view>& values,
                       core::ReduceContext& ctx) {
    std::uint64_t sum = 0;
    for (auto v : values) sum += get_be64(v);
    ctx.charge_ops(values.size() * 2);
    ctx.emit(key, be64_key(sum));
  };
  k.combine = sum_values;
  // u64 addition regroups exactly: hierarchical combining stays byte-safe.
  k.combine_associative = true;
  k.reduce = sum_values;
  return k;
}

core::AppKernels scan_kernels() {
  core::AppKernels k;
  k.name = "prefix-scan";
  k.split_records = core::run_output_record_splitter();
  k.map = [](std::string_view record, core::MapContext& ctx) {
    const auto [block, sum] = core::decode_pair_record(record);
    GW_CHECK(block.size() == 8 && sum.size() == 8);
    std::string gathered(block);
    gathered.append(sum);
    ctx.charge_ops(8);
    ctx.emit("scan", gathered);
  };
  // Single gather partition: the scan is inherently sequential.
  k.partition = [](std::string_view, std::uint32_t) { return std::uint32_t{0}; };
  k.reduce = [](std::string_view, const std::vector<std::string_view>& values,
                core::ReduceContext& ctx) {
    // (block, sum) records in arbitrary shuffle order; the 8-byte be64
    // block prefix makes a plain lexicographic sort numeric.
    std::vector<std::string> entries(values.begin(), values.end());
    std::sort(entries.begin(), entries.end());
    ctx.charge_ops(entries.size() * 8);
    std::uint64_t running = 0;
    for (const auto& e : entries) {
      ctx.emit(std::string_view(e).substr(0, 8), be64_key(running));
      running += get_be64(std::string_view(e).substr(8));
    }
  };
  return k;
}

core::AppKernels apply_kernels(std::uint64_t block_records,
                               const util::Bytes& offsets_payload) {
  // Broadcast payload: per block, be64 block id + be64 exclusive offset,
  // in block order.
  GW_CHECK_MSG(offsets_payload.size() % 16 == 0 && !offsets_payload.empty(),
               "bad prefix offsets broadcast payload");
  const std::uint64_t num_blocks = offsets_payload.size() / 16;
  auto offsets = std::make_shared<std::vector<std::uint64_t>>();
  offsets->resize(num_blocks);
  const std::string_view view(
      reinterpret_cast<const char*>(offsets_payload.data()),
      offsets_payload.size());
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    GW_CHECK(get_be64(view.substr(b * 16)) == b);
    (*offsets)[b] = get_be64(view.substr(b * 16 + 8));
  }

  core::AppKernels k;
  k.name = "prefix-apply";
  k.fixed_record_size = kPrefixRecordSize;
  k.map = [block_records](std::string_view record, core::MapContext& ctx) {
    GW_CHECK(record.size() == kPrefixRecordSize);
    const std::uint64_t index = get_be64(record);
    ctx.charge_ops(10);
    ctx.emit(be64_key(index / block_records), record);
  };
  // Contiguous block ranges per partition: partition files concatenated in
  // index order stay globally sorted by record index.
  k.partition = [num_blocks](std::string_view key,
                             std::uint32_t total) -> std::uint32_t {
    const std::uint64_t block = get_be64(key);
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(block * total / num_blocks, total - 1));
  };
  k.reduce = [offsets](std::string_view key,
                       const std::vector<std::string_view>& values,
                       core::ReduceContext& ctx) {
    const std::uint64_t block = get_be64(key);
    GW_CHECK(block < offsets->size());
    // Replay the block's records in index order from the scanned offset.
    std::vector<std::string> entries(values.begin(), values.end());
    std::sort(entries.begin(), entries.end());
    ctx.charge_ops(entries.size() * 8);
    std::uint64_t running = (*offsets)[block];
    for (const auto& e : entries) {
      running += get_be64(std::string_view(e).substr(8));
      ctx.emit(std::string_view(e).substr(0, 8), be64_key(running));
    }
  };
  return k;
}

}  // namespace

util::Bytes generate_prefix_input(std::uint64_t records, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string out;
  out.reserve(records * kPrefixRecordSize);
  for (std::uint64_t r = 0; r < records; ++r) {
    put_be64(out, r);
    put_be64(out, rng.below(1u << 20));
  }
  return util::Bytes(out.begin(), out.end());
}

util::Bytes prefix_reference(const util::Bytes& input) {
  GW_CHECK(input.size() % kPrefixRecordSize == 0);
  const std::string_view view(reinterpret_cast<const char*>(input.data()),
                              input.size());
  std::string out;
  out.reserve(input.size());
  std::uint64_t running = 0;
  for (std::size_t off = 0; off < view.size(); off += kPrefixRecordSize) {
    running += get_be64(view.substr(off + 8));
    put_be64(out, get_be64(view.substr(off)));
    put_be64(out, running);
  }
  return util::Bytes(out.begin(), out.end());
}

core::DagResult prefix_sums_dag(core::GlasswingRuntime& runtime,
                                cluster::Platform& platform,
                                dfs::FileSystem& fs, core::DagConfig dag,
                                PrefixSumConfig config,
                                core::EdgeKind sums_edge,
                                core::EdgeKind offsets_edge) {
  GW_CHECK(config.block_records > 0);
  const std::uint64_t block_records = config.block_records;
  const std::vector<std::string> input_paths = dag.input_paths;

  core::JobDag jd(runtime, platform, fs, std::move(dag));

  core::RoundSpec blocksum;
  blocksum.name = "blocksum";
  blocksum.edge = sums_edge;
  blocksum.app = [block_records](const core::DagRoundState&) {
    return blocksum_kernels(block_records);
  };
  jd.add_round(std::move(blocksum));

  core::RoundSpec scan;
  scan.name = "scan";
  scan.edge = offsets_edge;
  scan.app = [](const core::DagRoundState&) { return scan_kernels(); };
  // Round 0's reduce output feeds this round's map directly (the data
  // edge); each run file must be one whole-file split for the re-framing
  // splitter, so the split size covers any output file.
  scan.tune = [](core::JobConfig& cfg, const core::DagRoundState&) {
    cfg.split_size = 1ull << 30;
  };
  scan.broadcast = [](const core::DagRoundState&,
                      const core::RoundPairs& pairs) {
    std::string payload;
    payload.reserve(pairs.size() * 16);
    for (const auto& [block, offset] : pairs) {
      payload.append(block);
      payload.append(offset);
    }
    return util::Bytes(payload.begin(), payload.end());
  };
  jd.add_round(std::move(scan));

  core::RoundSpec apply;
  apply.name = "apply";
  apply.app = [block_records](const core::DagRoundState& st) {
    return apply_kernels(block_records, st.broadcast);
  };
  apply.inputs = [input_paths](const core::DagRoundState&) {
    return input_paths;
  };
  jd.add_round(std::move(apply));

  return jd.run();
}

}  // namespace gw::apps
