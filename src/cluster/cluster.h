// Cluster platform: nodes, disks, host cores, interconnect.
//
// Mirrors the paper's DAS-4 testbed (§IV): Type-1 nodes (dual quad-core
// Xeon E5620 @ 2.4 GHz, 24 GB RAM, 2x1 TB software RAID, 16 of them carry an
// NVidia GTX480) and Type-2 nodes (dual 6-core Xeon E5-2640, 64 GB, NVidia
// K20m). The Platform owns the Simulation, per-node disk and host-core
// resources, and the network Fabric; higher layers (DFS, devices, runtimes)
// attach to it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/sim.h"
#include "simnet/fabric.h"
#include "simnet/transport.h"

namespace gw::cluster {

struct DiskSpec {
  std::string name;
  double read_bw_bytes_per_s;
  double write_bw_bytes_per_s;
  double seek_latency_s;

  // Two 1 TB 7200rpm disks in software RAID-0 (Type-1 nodes).
  static DiskSpec sata_raid0();
  // Single 7200rpm disk.
  static DiskSpec sata_single();
};

struct NodeSpec {
  std::string name;
  int hw_threads;         // cores incl. hyperthreading (paper runs 16/24-wide)
  double core_ghz;        // per-core clock, feeds the CPU device model
  std::uint64_t ram_bytes;
  DiskSpec disk;

  // Dual quad-core Intel Xeon E5620 2.4 GHz, HT on -> 16 hw threads, 24 GB.
  static NodeSpec das4_type1();
  // Dual 6-core Xeon E5-2640 2.5 GHz, HT on -> 24 hw threads, 64 GB.
  static NodeSpec das4_type2();
};

struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  net::NetworkProfile network = net::NetworkProfile::qdr_infiniband_ipoib();

  static ClusterSpec homogeneous(int n, NodeSpec node,
                                 net::NetworkProfile net_profile);
};

// Per-node simulated hardware.
class Node {
 public:
  Node(sim::Simulation& sim, int id, NodeSpec spec);

  int id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }

  // Unit-capacity disk; operations serialize (RAID striping is folded into
  // the bandwidth figure).
  sim::Resource& disk() { return *disk_; }
  // Host hardware threads; CPU-side work acquires slots here, which is what
  // creates the paper's contention effects between kernel threads,
  // partitioner threads and merger threads (§IV-B).
  sim::Resource& host_cores() { return *host_cores_; }

  // Charges a disk read/write of `bytes` (seek + streaming).
  sim::Task<> disk_read(std::uint64_t bytes);
  sim::Task<> disk_write(std::uint64_t bytes);

  // Streaming variants for sequential/page-cache-friendly access patterns:
  // charge bandwidth plus `seek_fraction` of a full seek. Scaled-down
  // datasets read in small chunks would otherwise pay one full seek per
  // chunk, which real systems amortize over sequential block streaming; use
  // amortized_seek(bytes) for "one seek per ~8 MB of contiguous I/O".
  sim::Task<> disk_stream_read(std::uint64_t bytes, double seek_fraction = 0);
  sim::Task<> disk_stream_write(std::uint64_t bytes, double seek_fraction = 0);

  // Bandwidth-override variants for spill traffic: `bw_bytes_per_s` <= 0
  // falls back to the disk spec (making them identical to the defaults).
  sim::Task<> disk_stream_read_bw(std::uint64_t bytes, double seek_fraction,
                                  double bw_bytes_per_s);
  sim::Task<> disk_stream_write_bw(std::uint64_t bytes, double seek_fraction,
                                   double bw_bytes_per_s);

  static double amortized_seek(std::uint64_t bytes) {
    const double f = static_cast<double>(bytes) / (8 << 20);
    return f < 1.0 ? f : 1.0;
  }

  // Runs `seconds` of single-threaded CPU work, timesharing the host cores
  // in `quantum` slices so long computations degrade gracefully under
  // contention instead of monopolizing a core resource.
  sim::Task<> cpu_work(double seconds, double quantum = 0.02);

  std::uint64_t disk_bytes_read() const { return disk_bytes_read_; }
  std::uint64_t disk_bytes_written() const { return disk_bytes_written_; }

 private:
  sim::Simulation& sim_;
  int id_;
  NodeSpec spec_;
  std::unique_ptr<sim::Resource> disk_;
  std::unique_ptr<sim::Resource> host_cores_;
  std::uint64_t disk_bytes_read_ = 0;
  std::uint64_t disk_bytes_written_ = 0;
};

class Platform {
 public:
  explicit Platform(ClusterSpec spec);

  sim::Simulation& sim() { return sim_; }
  net::Fabric& fabric() { return *fabric_; }
  net::Transport& transport() { return *transport_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id) { return *nodes_.at(id); }
  const ClusterSpec& spec() const { return spec_; }

 private:
  ClusterSpec spec_;
  sim::Simulation sim_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Transport> transport_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace gw::cluster
