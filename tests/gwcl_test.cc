// Tests for the compute-device abstraction and its cost model.
#include <atomic>

#include <gtest/gtest.h>

#include "gwcl/device.h"

namespace gw::cl {
namespace {

TEST(DeviceSpec, PresetsAreSane) {
  for (const DeviceSpec& s :
       {DeviceSpec::cpu_dual_e5620(), DeviceSpec::cpu_dual_e5_2640(),
        DeviceSpec::gtx480(), DeviceSpec::gtx680(), DeviceSpec::k20m(),
        DeviceSpec::xeon_phi_5110p()}) {
    EXPECT_GT(s.compute_units, 0) << s.name;
    EXPECT_GT(s.ops_per_lane_per_s, 0) << s.name;
    EXPECT_GT(s.mem_bandwidth_bytes_per_s, 0) << s.name;
    EXPECT_GT(s.mem_capacity_bytes, 0u) << s.name;
    if (!s.unified_memory) {
      EXPECT_GT(s.pcie_bandwidth_bytes_per_s, 0) << s.name;
    }
  }
  EXPECT_TRUE(DeviceSpec::cpu_dual_e5620().unified_memory);
  EXPECT_FALSE(DeviceSpec::gtx480().unified_memory);
  EXPECT_TRUE(DeviceSpec::gtx480().transfer_kernel_coupling);
}

TEST(DeviceModel, ComputeBoundScalesWithLanes) {
  sim::Simulation sim;
  Device dev(sim, DeviceSpec::gtx480());
  KernelStats stats;
  stats.ops = 1'000'000'000;
  const double wide = dev.model_kernel_seconds(stats, {.threads = 480});
  const double narrow = dev.model_kernel_seconds(stats, {.threads = 48});
  EXPECT_NEAR(narrow / wide, 10.0, 0.5);
}

TEST(DeviceModel, MemoryBoundIgnoresLaneCount) {
  sim::Simulation sim;
  Device dev(sim, DeviceSpec::gtx480());
  KernelStats stats;
  stats.bytes_read = 10ull << 30;  // firmly memory-bound
  const double wide = dev.model_kernel_seconds(stats, {.threads = 480});
  const double narrow = dev.model_kernel_seconds(stats, {.threads = 120});
  EXPECT_NEAR(narrow, wide, wide * 0.01);
}

TEST(DeviceModel, AtomicsAddSerializedCost) {
  sim::Simulation sim;
  Device dev(sim, DeviceSpec::cpu_dual_e5620());
  KernelStats base;
  base.ops = 1'000'000;
  KernelStats contended = base;
  contended.atomic_ops = 10'000'000;
  EXPECT_GT(dev.model_kernel_seconds(contended),
            2 * dev.model_kernel_seconds(base));
}

TEST(DeviceModel, GpuBeatsCpuOnComputeBoundKernels) {
  sim::Simulation sim;
  Device cpu(sim, DeviceSpec::cpu_dual_e5620());
  Device gpu(sim, DeviceSpec::gtx480());
  KernelStats stats;
  stats.ops = 100'000'000'000ull;
  const double cpu_t = cpu.model_kernel_seconds(stats);
  const double gpu_t = gpu.model_kernel_seconds(stats);
  // Raw compute advantage in the ballpark the paper exploits (order 10-50x).
  EXPECT_GT(cpu_t / gpu_t, 10.0);
  EXPECT_LT(cpu_t / gpu_t, 60.0);
}

TEST(Device, RunKernelExecutesEveryItemOnce) {
  sim::Simulation sim;
  Device dev(sim, DeviceSpec::gtx480());
  std::vector<std::atomic<int>> hits(10000);
  auto job = [](Device& d, std::vector<std::atomic<int>>* h) -> sim::Task<> {
    KernelStats stats = co_await d.run_kernel(
        h->size(), [&](std::size_t i, KernelCounters& c) {
          (*h)[i]++;
          c.charge_ops(10);
        });
    EXPECT_EQ(stats.work_items, h->size());
    EXPECT_EQ(stats.ops, 10 * h->size());
  };
  sim.spawn(job(dev, &hits));
  sim.run();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(Device, KernelTimeMatchesModel) {
  sim::Simulation sim;
  Device dev(sim, DeviceSpec::gtx480());
  auto job = [](sim::Simulation& s, Device& d) -> sim::Task<> {
    KernelStats stats = co_await d.run_kernel(
        1000, [](std::size_t, KernelCounters& c) { c.charge_ops(100000); });
    EXPECT_NEAR(s.now(), d.model_kernel_seconds(stats), 1e-9);
  };
  sim.spawn(job(sim, dev));
  sim.run();
}

TEST(Device, KernelsSerializeOnCommandQueue) {
  sim::Simulation sim;
  Device dev(sim, DeviceSpec::gtx480());
  KernelStats stats;
  stats.ops = 144'000'000'000;  // exactly 1 s at 480 lanes x 0.3 Gops
  auto job = [](Device& d, KernelStats st) -> sim::Task<> {
    co_await d.charge_kernel(st);
  };
  sim.spawn(job(dev, stats));
  sim.spawn(job(dev, stats));
  sim.run();
  EXPECT_NEAR(sim.now(), 2.0, 0.01);
}

TEST(Device, UnifiedMemoryStagingIsFree) {
  sim::Simulation sim;
  Device dev(sim, DeviceSpec::cpu_dual_e5620());
  auto job = [](Device& d) -> sim::Task<> {
    co_await d.stage_in(1ull << 30);
    co_await d.stage_out(1ull << 30);
  };
  sim.spawn(job(dev));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Device, DiscreteStagingChargesPcie) {
  sim::Simulation sim;
  DeviceSpec spec = DeviceSpec::gtx480();
  spec.transfer_kernel_coupling = false;
  Device dev(sim, spec);
  auto job = [](Device& d) -> sim::Task<> {
    co_await d.stage_in(550'000'000);  // 0.1 s at 5.5 GB/s
  };
  sim.spawn(job(dev));
  sim.run();
  EXPECT_NEAR(sim.now(), 0.1, 0.001);
}

TEST(Device, TransferKernelCouplingSerializesWithKernel) {
  // With coupling (NVidia driver behaviour), a transfer issued while a
  // kernel runs waits for the kernel; without, it proceeds concurrently.
  auto elapsed_with = [](bool coupling) {
    sim::Simulation sim;
    DeviceSpec spec = DeviceSpec::gtx480();
    spec.transfer_kernel_coupling = coupling;
    Device dev(sim, spec);
    KernelStats st;
    st.ops = 144'000'000'000;  // 1 s kernel
    auto kernel = [](Device& d, KernelStats s) -> sim::Task<> {
      co_await d.charge_kernel(s);
    };
    auto mover = [](sim::Simulation& s, Device& d) -> sim::Task<> {
      co_await s.delay(0.01);  // let the kernel start first
      co_await d.stage_in(550'000'000);  // 0.1 s transfer
    };
    sim.spawn(kernel(dev, st));
    sim.spawn(mover(sim, dev));
    return sim.run();
  };
  EXPECT_NEAR(elapsed_with(false), 1.0, 0.01);
  EXPECT_NEAR(elapsed_with(true), 1.1, 0.01);
}

TEST(Device, CpuKernelContendsWithHostThreads) {
  // A CPU kernel sharing the node's cores slows down when other host work
  // occupies half the cores.
  auto run_with_background = [](bool background) {
    sim::Simulation sim;
    sim::Resource cores(sim, 16);
    Device dev(sim, DeviceSpec::cpu_dual_e5620(), &cores);
    KernelStats st;
    st.ops = static_cast<std::uint64_t>(16 * 0.55e9);  // 1 s on 16 lanes
    double kernel_done = 0;
    auto kernel = [](Device& d, KernelStats s, double* done,
                     sim::Simulation& si) -> sim::Task<> {
      co_await d.charge_kernel(s);
      *done = si.now();
    };
    auto hog = [](sim::Simulation& si, sim::Resource& c) -> sim::Task<> {
      // 8 long-lived host workers in 20 ms quanta.
      for (int i = 0; i < 100; ++i) {
        auto hold = co_await c.acquire();
        co_await si.delay(0.02);
      }
    };
    sim.spawn(kernel(dev, st, &kernel_done, sim));
    if (background) {
      for (int i = 0; i < 8; ++i) sim.spawn(hog(sim, cores));
    }
    sim.run();
    return kernel_done;
  };
  const double alone = run_with_background(false);
  const double contended = run_with_background(true);
  EXPECT_NEAR(alone, 1.0, 0.05);
  EXPECT_GT(contended, 1.3 * alone);
}

}  // namespace
}  // namespace gw::cl
