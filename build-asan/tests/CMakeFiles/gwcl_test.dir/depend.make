# Empty dependencies file for gwcl_test.
# This may be replaced when dependencies are built.
