#!/usr/bin/env sh
# Runs the simulated-vs-wall-clock benchmark and records the results as
# BENCH_simwall.json in the repo root: simulated seconds must be
# bit-identical between the serial (GW_THREADS=1) and parallel host pools,
# while the wall-clock columns track what the offload engine buys on this
# host, PR over PR.
#
# Usage: bench/run_simwall.sh [output.json]
#   BUILD_DIR  build tree containing bench/simwall (default: build)
#   OUT        output JSON path (default: BENCH_simwall.json)
#   GW_THREADS parallel pool size (default: hardware concurrency)
set -eu

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-${OUT:-BENCH_simwall.json}}"

"${BUILD_DIR}/bench/simwall" "${OUT}"
