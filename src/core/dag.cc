#include "core/dag.h"

#include <utility>

#include "simnet/transport.h"
#include "util/error.h"

namespace gw::core {

namespace {

sim::Task<> read_file_task(dfs::FileSystem& fs, std::string path,
                           util::Bytes* out) {
  // Driver readback from the first block holder (a pinned file reads
  // locally on its host for free; a checkpointed file pays the DFS path).
  *out = co_await fs.read_all(fs.block_locations(path, 0).front(), path);
}

sim::Task<> broadcast_task(cluster::Platform& platform, int src, int port,
                           std::uint64_t bytes) {
  for (int dst = 0; dst < platform.num_nodes(); ++dst) {
    if (dst == src || !platform.sim().node_alive(dst)) continue;
    try {
      co_await platform.transport().transfer(src, dst, port,
                                             net::TrafficClass::kControl,
                                             bytes);
    } catch (const net::NodeDownError&) {
      // A crash raced the broadcast; the dead node never joins the next
      // round, so its missing copy is moot.
    }
  }
}

}  // namespace

JobDag::JobDag(GlasswingRuntime& runtime, cluster::Platform& platform,
               dfs::FileSystem& fs, DagConfig config)
    : runtime_(runtime), platform_(platform), config_(std::move(config)) {
  std::uint64_t budget = config_.pin_budget_bytes;
  if (budget == 0 && config_.base.governed()) {
    // Mirror the memory governor's store share: pinned intermediates live
    // where the intermediate store's run cache would.
    budget = config_.base.node_memory_bytes * 2 / 5;
  }
  pinned_ = std::make_unique<dfs::PinnedFs>(platform_, fs, budget);
  pinned_->set_cache_reads(config_.pin_inputs);
}

void JobDag::add_round(RoundSpec spec) {
  GW_CHECK_MSG(!loop_, "add_round after until()");
  GW_CHECK_MSG(spec.app != nullptr, "DAG round needs an app factory");
  specs_.push_back(std::move(spec));
}

void JobDag::until(ConvergedFn converged, int max_iterations) {
  GW_CHECK_MSG(!specs_.empty(), "until() needs a round to repeat");
  GW_CHECK_MSG(max_iterations > 0, "until() needs a positive iteration cap");
  loop_ = true;
  converged_ = std::move(converged);
  max_iterations_ = max_iterations;
}

bool JobDag::inputs_available(const std::vector<std::string>& paths) const {
  for (const auto& p : paths) {
    if (pinned_->lost(p)) return false;
    if (pinned_->pinned(p)) continue;
    if (!pinned_->exists(p)) return false;
    // A base-fs file can exist in metadata with dead replicas: require a
    // live holder for every block.
    const std::uint64_t size = pinned_->file_size(p);
    const std::uint64_t bs = pinned_->block_size();
    for (std::uint64_t off = 0; off < size; off += bs) {
      if (pinned_->block_locations(p, off / bs).empty()) return false;
    }
  }
  return true;
}

RoundPairs JobDag::read_pairs(const std::vector<std::string>& files) {
  RoundPairs all;
  auto& sim = platform_.sim();
  for (const auto& path : files) {
    util::Bytes contents;
    sim.spawn(read_file_task(*pinned_, path, &contents));
    sim.run();
    auto pairs = read_output_file(contents);
    all.insert(all.end(), std::make_move_iterator(pairs.begin()),
               std::make_move_iterator(pairs.end()));
  }
  return all;
}

void JobDag::broadcast_payload(std::uint64_t bytes) {
  if (bytes == 0) return;
  auto& sim = platform_.sim();
  int src = -1;
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    if (sim.node_alive(n)) {
      src = n;
      break;
    }
  }
  if (src < 0) return;
  // Splitter/centroid broadcasts live inside the DAG's port namespace when
  // the base config is scheduled (port_base > 0); legacy DAGs keep the
  // shared kPortBroadcast.
  sim.spawn(broadcast_task(platform_, src,
                           config_.base.port_base + net::kPortBroadcast,
                           bytes));
  sim.run();
}

void JobDag::fire_edge_crashes(int round, std::vector<bool>& used) {
  auto& sim = platform_.sim();
  bool any = false;
  for (std::size_t i = 0; i < config_.edge_crashes.size(); ++i) {
    if (used[i]) continue;
    const DagConfig::EdgeCrash& ec = config_.edge_crashes[i];
    if (ec.after_round != round) continue;
    used[i] = true;
    GW_CHECK_MSG(ec.node >= 0 && ec.node < platform_.num_nodes(),
                 "edge crash on a node outside the platform");
    if (!sim.node_alive(ec.node)) continue;
    sim.schedule_node_crash(ec.node, 0.0, ec.restart_after_s);
    any = true;
  }
  // Land the crash (and the DFS replica pruning its listeners do) before
  // the next round plans its splits.
  if (any) sim.run();
}

void JobDag::rewind(std::vector<Done>& done, DagResult& out, DagRoundState& st,
                    int& spec_i, int& iter,
                    const std::vector<std::string>& failed_inputs,
                    const std::vector<std::string>& failed_outputs) {
  ++out.replays;
  GW_CHECK_MSG(out.replays <= config_.max_replays,
               "DAG replay limit exceeded: pinned inputs keep vanishing");
  // The failed round's committed partitions were produced without the lost
  // splits: delete the garbage before the replay re-writes the paths.
  for (const auto& f : failed_outputs) pinned_->remove(f);
  // Back to the newest round whose inputs all still exist; the failed
  // round itself (index done.size()) qualifies when the loss was confined
  // to its outputs.
  int target = static_cast<int>(done.size());
  if (!inputs_available(failed_inputs)) {
    target = static_cast<int>(done.size()) - 1;
    while (target >= 0 && !inputs_available(done[static_cast<std::size_t>(
                              target)].inputs)) {
      --target;
    }
    GW_CHECK_MSG(target >= 0, "DAG unrecoverable: round-0 inputs lost");
  }
  while (static_cast<int>(done.size()) > target) {
    Done d = std::move(done.back());
    done.pop_back();
    out.rounds.pop_back();
    for (const auto& f : d.outputs) pinned_->remove(f);
    st = std::move(d.entry);
    spec_i = d.spec;
    iter = d.iteration;
  }
}

DagResult JobDag::run() {
  GW_CHECK_MSG(!specs_.empty(), "DAG has no rounds");
  auto& sim = platform_.sim();
  if (!started_) {
    started_ = true;
    // One trace per DAG; rounds keep appending (job.cc resets occupancy,
    // not the span ring, when config.dag_round >= 0). A resumed run keeps
    // the same trace so the DAG's spans reopen on their original tracks.
    sim.tracer().clear();
    out_ = DagResult();
    done_.clear();
    round_used_.assign(config_.round_crashes.size(), false);
    edge_used_.assign(config_.edge_crashes.size(), false);
    st_ = DagRoundState();
    st_.broadcast = config_.initial_broadcast;
    spec_i_ = 0;
    iter_ = 0;
  } else {
    GW_CHECK_MSG(suspended_, "JobDag::run() re-entered after completion");
    suspended_ = false;
    out_.suspended = false;
    if (config_.preempt != nullptr) config_.preempt->requested = false;
  }
  const double t0 = sim.now();

  for (;;) {
    const RoundSpec& spec = specs_[static_cast<std::size_t>(spec_i_)];
    st_.round = static_cast<int>(done_.size());
    st_.iteration = iter_;

    std::vector<std::string> inputs =
        spec.inputs ? spec.inputs(st_)
                    : (st_.round == 0 ? config_.input_paths
                                      : st_.prev_outputs);
    GW_CHECK_MSG(!inputs.empty(), "DAG round has no inputs");
    if (!inputs_available(inputs)) {
      // An inter-round crash took pinned inputs before the round started.
      rewind(done_, out_, st_, spec_i_, iter_, inputs, {});
      continue;
    }

    JobConfig cfg = config_.base;
    cfg.input_paths = inputs;
    cfg.output_path = config_.output_root + "/" +
                      (spec.name.empty() ? "round" : spec.name) + "-" +
                      std::to_string(st_.round);
    cfg.dag_round = st_.round;
    cfg.crash_events.clear();
    for (std::size_t c = 0; c < config_.round_crashes.size(); ++c) {
      if (round_used_[c] || config_.round_crashes[c].round != st_.round) {
        continue;
      }
      cfg.crash_events.push_back(config_.round_crashes[c].event);
      round_used_[c] = true;
    }
    if (spec.tune) spec.tune(cfg, st_);

    AppKernels app = spec.app(st_);
    pinned_->set_pin_writes(spec.edge == EdgeKind::kPinned);
    JobResult jr = runtime_.run(app, cfg, pinned_.get());
    ++out_.rounds_executed;

    if (jr.stats.input_splits_lost > 0) {
      // Pinned inputs died mid-round: the round completed degraded over the
      // surviving splits, so its output is garbage — regenerate the lost
      // edge and replay.
      rewind(done_, out_, st_, spec_i_, iter_, inputs, jr.output_files);
      continue;
    }

    const bool is_last = spec_i_ + 1 == static_cast<int>(specs_.size());
    const bool looping = loop_ && is_last;
    RoundPairs pairs;
    if (spec.broadcast || (looping && converged_)) {
      pairs = read_pairs(jr.output_files);
    }
    util::Bytes payload = st_.broadcast;
    if (spec.broadcast) {
      payload = spec.broadcast(st_, pairs);
      broadcast_payload(payload.size());
    }

    Done d;
    d.spec = spec_i_;
    d.iteration = iter_;
    d.entry = st_;
    d.inputs = inputs;
    d.outputs = jr.output_files;
    done_.push_back(std::move(d));
    DagRoundResult rr;
    rr.name = spec.name;
    rr.round = st_.round;
    rr.iteration = iter_;
    rr.edge = spec.edge;
    rr.job = jr;
    rr.outputs = jr.output_files;
    out_.rounds.push_back(std::move(rr));

    fire_edge_crashes(st_.round, edge_used_);

    DagRoundState next;
    next.round = st_.round + 1;
    next.broadcast = payload;
    next.prev_outputs = jr.output_files;
    bool finished = false;
    if (looping) {
      const int iters_done = iter_ + 1;
      out_.iterations = iters_done;
      const bool conv = converged_ && converged_(iters_done, payload, pairs);
      if (conv || iters_done >= max_iterations_) {
        finished = true;
      } else {
        next.iteration = iter_ + 1;
        ++iter_;
      }
    } else if (is_last) {
      finished = true;
    } else {
      ++spec_i_;
      iter_ = 0;
    }
    st_ = std::move(next);
    if (finished) break;

    if (config_.preempt != nullptr && config_.preempt->requested) {
      // Inter-round suspension point: the completed rounds' edges are
      // already materialized (checkpointed to the DFS or pinned), so the
      // loop cursor is the only state to keep — it lives in the members.
      suspended_ = true;
      ++out_.suspensions;
      out_.suspended = true;
      out_.elapsed_seconds += sim.now() - t0;
      DagResult partial = out_;
      partial.final_outputs = done_.back().outputs;
      partial.final_broadcast = st_.broadcast;
      partial.pinned_peak_bytes = pinned_->peak_pinned_bytes();
      partial.pin_spills = pinned_->pin_spills();
      partial.cache_hit_bytes = pinned_->cache_hit_bytes();
      return partial;
    }
  }

  out_.final_outputs = done_.back().outputs;
  out_.final_broadcast = st_.broadcast;
  out_.pinned_peak_bytes = pinned_->peak_pinned_bytes();
  out_.pin_spills = pinned_->pin_spills();
  out_.cache_hit_bytes = pinned_->cache_hit_bytes();
  out_.elapsed_seconds += sim.now() - t0;
  return out_;
}

}  // namespace gw::core
