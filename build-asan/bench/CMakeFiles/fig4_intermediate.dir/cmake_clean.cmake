file(REMOVE_RECURSE
  "CMakeFiles/fig4_intermediate.dir/fig4_intermediate.cc.o"
  "CMakeFiles/fig4_intermediate.dir/fig4_intermediate.cc.o.d"
  "fig4_intermediate"
  "fig4_intermediate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_intermediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
