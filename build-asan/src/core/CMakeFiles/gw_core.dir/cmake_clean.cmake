file(REMOVE_RECURSE
  "CMakeFiles/gw_core.dir/api.cc.o"
  "CMakeFiles/gw_core.dir/api.cc.o.d"
  "CMakeFiles/gw_core.dir/collector.cc.o"
  "CMakeFiles/gw_core.dir/collector.cc.o.d"
  "CMakeFiles/gw_core.dir/intermediate.cc.o"
  "CMakeFiles/gw_core.dir/intermediate.cc.o.d"
  "CMakeFiles/gw_core.dir/job.cc.o"
  "CMakeFiles/gw_core.dir/job.cc.o.d"
  "CMakeFiles/gw_core.dir/kv.cc.o"
  "CMakeFiles/gw_core.dir/kv.cc.o.d"
  "CMakeFiles/gw_core.dir/kv_reference.cc.o"
  "CMakeFiles/gw_core.dir/kv_reference.cc.o.d"
  "CMakeFiles/gw_core.dir/map_pipeline.cc.o"
  "CMakeFiles/gw_core.dir/map_pipeline.cc.o.d"
  "CMakeFiles/gw_core.dir/pipeline.cc.o"
  "CMakeFiles/gw_core.dir/pipeline.cc.o.d"
  "CMakeFiles/gw_core.dir/reduce_pipeline.cc.o"
  "CMakeFiles/gw_core.dir/reduce_pipeline.cc.o.d"
  "libgw_core.a"
  "libgw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
