// Multi-round DAG runtime tests: the Goodrich-style prefix-sums chain and
// the two-round sample-sort TeraSort against direct references, byte
// identity across edge kinds (checkpoint vs pinned) and GW_THREADS, the
// crash matrix {round-0 map, inter-round edge, last-round reduce} with
// recovery scoped to the crashed round when edges are checkpointed, pin
// budget spill-through, and the fixed-point loop predicate.
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/kmeans.h"
#include "apps/prefixsum.h"
#include "apps/terasort.h"
#include "core/dag.h"
#include "core/job.h"
#include "util/hash.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace gw::apps {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

constexpr int kNodes = 4;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(),
      net::NetworkProfile::qdr_infiniband_ipoib()));
}

void write_file(Platform& p, dfs::FileSystem& fs, const std::string& path,
                util::Bytes contents) {
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes c) -> sim::Task<> {
    co_await f.write(0, pa, std::move(c));
  }(fs, path, std::move(contents)));
  p.sim().run();
}

util::Bytes read_file(Platform& p, dfs::FileSystem& fs,
                      const std::string& path) {
  util::Bytes out;
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes* o) -> sim::Task<> {
    *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
  }(fs, path, &out));
  p.sim().run();
  return out;
}

// Count of closed "round" spans in the exported trace (occupancy resets
// between rounds, so the accumulator only sees the last one; the event
// ring keeps them all).
std::size_t round_spans(const trace::Tracer& tr) {
  const std::string json = tr.chrome_json();
  const std::string needle = "\"name\":\"round\",\"cat\":\"round\"";
  std::size_t count = 0;
  for (std::size_t at = json.find(needle); at != std::string::npos;
       at = json.find(needle, at + needle.size())) {
    ++count;
  }
  return count / 2;  // begin + end per span
}

// The global partition id is the part-%05d suffix; owners are assigned in
// partitions_per_node-sized stripes (job.cc).
int output_owner(const std::string& path, int partitions_per_node) {
  const std::size_t dash = path.rfind("part-");
  EXPECT_NE(dash, std::string::npos) << path;
  return std::stoi(path.substr(dash + 5)) / partitions_per_node;
}

struct PrefixOutcome {
  core::DagResult dag;
  util::Bytes records;        // decoded (index, sum) records, file order
  util::Bytes raw;            // concatenated raw output-file bytes
  std::string trace_error;
  std::size_t rounds_traced = 0;
  std::uint64_t dfs_bytes = 0;  // sum of per-round net_dfs_bytes
};

PrefixOutcome run_prefix(
    const util::Bytes& input, core::EdgeKind edge, bool pin_inputs,
    std::function<void(core::DagConfig&)> tweak = nullptr) {
  Platform p = make_platform(kNodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/prefix", input);

  core::DagConfig dc;
  dc.input_paths = {"/in/prefix"};
  dc.output_root = "/out/prefix";
  dc.base.split_size = 32 << 10;
  dc.pin_inputs = pin_inputs;
  if (tweak) tweak(dc);

  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  PrefixOutcome out;
  out.dag = prefix_sums_dag(rt, p, fs, std::move(dc),
                            PrefixSumConfig{.block_records = 1024}, edge,
                            edge);
  out.trace_error = p.sim().tracer().validate();
  out.rounds_traced = round_spans(p.sim().tracer());
  for (const auto& r : out.dag.rounds) {
    out.dfs_bytes += r.job.stats.net_dfs_bytes;
  }
  std::string records;
  for (const auto& path : out.dag.final_outputs) {
    const util::Bytes bytes = read_file(p, fs, path);
    out.raw.insert(out.raw.end(), bytes.begin(), bytes.end());
    for (const auto& [k, v] : core::read_output_file(bytes)) {
      records.append(k);
      records.append(v);
    }
  }
  out.records = util::Bytes(records.begin(), records.end());
  return out;
}

// ---------- prefix sums: reference + clean matrix ----------

TEST(PrefixSums, ReferenceIsInclusive) {
  const util::Bytes input = generate_prefix_input(100, 3);
  const util::Bytes ref = prefix_reference(input);
  ASSERT_EQ(ref.size(), input.size());
  const std::string_view in(reinterpret_cast<const char*>(input.data()),
                            input.size());
  const std::string_view out(reinterpret_cast<const char*>(ref.data()),
                             ref.size());
  std::uint64_t running = 0;
  for (std::size_t off = 0; off < in.size(); off += kPrefixRecordSize) {
    running += get_be64(in.substr(off + 8));
    EXPECT_EQ(get_be64(out.substr(off)), get_be64(in.substr(off)));
    EXPECT_EQ(get_be64(out.substr(off + 8)), running);
  }
}

TEST(PrefixSums, DagMatchesReferenceAcrossEdgesAndThreads) {
  const util::Bytes input = generate_prefix_input(24576, 21);
  const util::Bytes expect = prefix_reference(input);

  util::Bytes reference_raw;
  std::uint64_t checkpoint_dfs = 0;
  std::uint64_t pinned_dfs = 0;
  for (const bool pinned : {false, true}) {
    const core::EdgeKind edge =
        pinned ? core::EdgeKind::kPinned : core::EdgeKind::kCheckpoint;
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(pinned ? "pinned" : "checkpoint") +
                   ", GW_THREADS=" + std::to_string(threads));
      util::ThreadPool::reset_global(threads);
      const PrefixOutcome out = run_prefix(input, edge, /*pin_inputs=*/pinned);
      EXPECT_EQ(out.dag.rounds.size(), 3u);
      EXPECT_EQ(out.dag.rounds_executed, 3);
      EXPECT_EQ(out.dag.replays, 0);
      EXPECT_EQ(out.dag.rounds[0].name, "blocksum");
      EXPECT_EQ(out.dag.rounds[1].name, "scan");
      EXPECT_EQ(out.dag.rounds[2].name, "apply");
      EXPECT_EQ(out.records, expect);
      EXPECT_TRUE(out.trace_error.empty()) << out.trace_error;
      EXPECT_EQ(out.rounds_traced, 3u);
      if (reference_raw.empty()) {
        reference_raw = out.raw;
      } else {
        EXPECT_EQ(out.raw, reference_raw);
      }
      if (pinned) {
        // Rounds 0/1 never touched the DFS for their outputs, and the
        // apply round's re-read of the input hit the pinned cache.
        EXPECT_GT(out.dag.pinned_peak_bytes, 0u);
        EXPECT_GT(out.dag.cache_hit_bytes, 0u);
        pinned_dfs = out.dfs_bytes;
      } else {
        checkpoint_dfs = out.dfs_bytes;
      }
      EXPECT_EQ(out.dag.pin_spills, 0u);
    }
  }
  util::ThreadPool::reset_global(0);
  EXPECT_LT(pinned_dfs, checkpoint_dfs);
}

// ---------- TeraSort as a two-round sample-sort DAG ----------

TEST(TerasortDag, GloballySortedAndComplete) {
  constexpr std::uint64_t kRecords = 20000;
  const util::Bytes input = generate_terasort(kRecords, 42);
  const std::uint64_t checksum_in = terasort_checksum(input);

  Platform p = make_platform(kNodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/tera", input);

  core::DagConfig dc;
  dc.input_paths = {"/in/tera"};
  dc.output_root = "/out/tera";
  dc.base.split_size = 256 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  const core::DagResult dr =
      terasort_dag(rt, p, fs, std::move(dc), core::EdgeKind::kPinned);

  EXPECT_EQ(dr.rounds.size(), 2u);
  EXPECT_EQ(dr.rounds_executed, 2);
  EXPECT_EQ(dr.replays, 0);
  EXPECT_EQ(round_spans(p.sim().tracer()), 2u);

  // Concatenating the partition files in index order must yield the full
  // input, globally sorted.
  std::uint64_t total = 0;
  std::uint64_t checksum_out = 0;
  std::string prev_key;
  for (const auto& path : dr.final_outputs) {
    for (const auto& [k, v] : core::read_output_file(read_file(p, fs, path))) {
      ASSERT_EQ(k.size(), kTeraKeySize);
      ASSERT_EQ(v.size(), kTeraRecordSize - kTeraKeySize);
      EXPECT_LE(prev_key, k);
      prev_key = k;
      const std::string rec = k + v;
      checksum_out ^= util::fnv1a(rec.data(), rec.size());
      ++total;
    }
  }
  EXPECT_EQ(total, kRecords);
  EXPECT_EQ(checksum_out, checksum_in);
}

// ---------- crash matrix ----------

enum class CrashSite { kRound0Map, kEdgeAfterRound0, kLastRoundReduce };

TEST(DagCrash, MatrixByteIdenticalAcrossEdgesAndThreads) {
  const util::Bytes input = generate_prefix_input(24576, 33);
  const util::Bytes expect = prefix_reference(input);

  for (const bool pinned : {false, true}) {
    const core::EdgeKind edge =
        pinned ? core::EdgeKind::kPinned : core::EdgeKind::kCheckpoint;
    // Crash instants come from a clean run of the same mode: phase
    // durations are deterministic, so "half way into round-0's map" is a
    // stable point on the simulated clock for every thread count.
    util::ThreadPool::reset_global(1);
    const PrefixOutcome clean = run_prefix(input, edge, /*pin_inputs=*/false);
    ASSERT_EQ(clean.records, expect);
    const double round0_map_mid =
        0.5 * clean.dag.rounds[0].job.map_phase_seconds;
    const auto& last = clean.dag.rounds[2].job;
    const double last_reduce_mid = last.map_phase_seconds +
                                   last.merge_delay_seconds +
                                   0.5 * last.reduce_phase_seconds;
    // A node that provably holds round-0 output (and, when pinned, loses
    // it on crash): the owner of the first blocksum partition file.
    const int victim =
        output_owner(clean.dag.rounds[0].outputs.front(), 8);

    for (const int threads : {1, 2, 8}) {
      for (const CrashSite site :
           {CrashSite::kRound0Map, CrashSite::kEdgeAfterRound0,
            CrashSite::kLastRoundReduce}) {
        SCOPED_TRACE(std::string(pinned ? "pinned" : "checkpoint") +
                     ", GW_THREADS=" + std::to_string(threads) + ", site=" +
                     std::to_string(static_cast<int>(site)));
        util::ThreadPool::reset_global(threads);
        auto inject = [&](core::DagConfig& dc) {
          switch (site) {
            case CrashSite::kRound0Map:
              dc.round_crashes.push_back(
                  {0, {.node = victim, .time = round0_map_mid}});
              break;
            case CrashSite::kEdgeAfterRound0:
              dc.edge_crashes.push_back({.after_round = 0, .node = victim});
              break;
            case CrashSite::kLastRoundReduce:
              dc.round_crashes.push_back(
                  {2, {.node = victim, .time = last_reduce_mid}});
              break;
          }
        };
        const PrefixOutcome out =
            run_prefix(input, edge, /*pin_inputs=*/false, inject);
        EXPECT_EQ(out.records, expect);
        EXPECT_EQ(out.raw, clean.raw);
        EXPECT_EQ(out.dag.rounds.size(), 3u);
        EXPECT_TRUE(out.trace_error.empty()) << out.trace_error;
        if (pinned && site == CrashSite::kEdgeAfterRound0) {
          // The victim's pinned round-0 partitions are gone: the driver
          // must rewind and replay round 0 on the survivors.
          EXPECT_EQ(out.dag.replays, 1);
          EXPECT_EQ(out.dag.rounds_executed, 4);
        } else {
          // Checkpointed edges (or a crash that predates any pinned
          // output) keep recovery inside the crashed round: no replays,
          // no round-0 re-execution.
          EXPECT_EQ(out.dag.replays, 0);
          EXPECT_EQ(out.dag.rounds_executed, 3);
        }
      }
    }
  }
  util::ThreadPool::reset_global(0);
}

// ---------- pin budget ----------

TEST(DagPinned, OverBudgetPinsSpillThroughToBaseFs) {
  const util::Bytes input = generate_prefix_input(8192, 9);
  const PrefixOutcome out = run_prefix(
      input, core::EdgeKind::kPinned, /*pin_inputs=*/false,
      [](core::DagConfig& dc) { dc.pin_budget_bytes = 1; });
  // Every pin is over budget: the files fall through to the base fs and
  // the chain still completes with the exact result.
  EXPECT_GT(out.dag.pin_spills, 0u);
  EXPECT_EQ(out.dag.replays, 0);
  EXPECT_EQ(out.records, prefix_reference(input));
}

// ---------- fixed-point loop ----------

TEST(DagLoop, ConvergencePredicateStopsEarly) {
  KmeansConfig km{.k = 8, .dims = 4};
  const auto centers = generate_centers(km, 4);
  Platform p = make_platform(2);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  write_file(p, fs, "/in/points", generate_points(km, 5000, 6));

  core::DagConfig dc;
  dc.input_paths = {"/in/points"};
  dc.output_root = "/out/loop";
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  core::JobDag dag(rt, p, fs, dc);

  core::RoundSpec round;
  round.name = "assign";
  round.app = [&](const core::DagRoundState&) {
    return kmeans(km, centers).kernels;
  };
  round.inputs = [](const core::DagRoundState&) {
    return std::vector<std::string>{"/in/points"};
  };
  dag.add_round(std::move(round));
  int calls = 0;
  dag.until(
      [&calls](int done, const util::Bytes&, const core::RoundPairs& pairs) {
        ++calls;
        EXPECT_FALSE(pairs.empty());
        return done >= 2;
      },
      /*max_iterations=*/5);

  const core::DagResult dr = dag.run();
  EXPECT_EQ(dr.iterations, 2);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(dr.rounds.size(), 2u);
  EXPECT_EQ(dr.rounds[1].iteration, 1);
}

// ---------- inter-round preemption ----------

// A preemption request lands between DAG rounds: run() returns a suspended
// partial result whose completed rounds stay durable, and a second run()
// call picks the loop up at the next round. Final outputs are byte-identical
// to the uninterrupted loop.
TEST(DagLoop, InterRoundSuspendResumeByteIdentical) {
  KmeansConfig km{.k = 8, .dims = 4};
  const auto centers = generate_centers(km, 4);
  constexpr int kIters = 3;

  struct LoopOut {
    core::DagResult dr;
    util::Bytes raw;  // concatenated final-output bytes, file order
  };
  auto run_loop = [&](core::PreemptControl* pc) {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    write_file(p, fs, "/in/points", generate_points(km, 5000, 6));

    core::DagConfig dc;
    dc.input_paths = {"/in/points"};
    dc.output_root = "/out/loop";
    dc.preempt = pc;
    core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
    core::JobDag dag(rt, p, fs, dc);

    core::RoundSpec round;
    round.name = "assign";
    round.app = [&](const core::DagRoundState&) {
      return kmeans(km, centers).kernels;
    };
    round.inputs = [](const core::DagRoundState&) {
      return std::vector<std::string>{"/in/points"};
    };
    dag.add_round(std::move(round));
    dag.until([](int, const util::Bytes&,
                 const core::RoundPairs&) { return false; },
              /*max_iterations=*/kIters);

    LoopOut out;
    if (pc != nullptr) {
      pc->requested = true;  // suspend at the first inter-round boundary
      const core::DagResult partial = dag.run();
      EXPECT_TRUE(partial.suspended);
      EXPECT_EQ(partial.suspensions, 1);
      EXPECT_EQ(partial.rounds_executed, 1);
      EXPECT_FALSE(partial.final_outputs.empty());
      out.dr = dag.run();  // resume: rounds 2..kIters
    } else {
      out.dr = dag.run();
    }
    for (const auto& path : out.dr.final_outputs) {
      const util::Bytes bytes = read_file(p, fs, path);
      out.raw.insert(out.raw.end(), bytes.begin(), bytes.end());
    }
    return out;
  };

  const LoopOut plain = run_loop(nullptr);
  EXPECT_FALSE(plain.dr.suspended);
  EXPECT_EQ(plain.dr.rounds_executed, kIters);

  core::PreemptControl pc;
  const LoopOut resumed = run_loop(&pc);
  EXPECT_FALSE(resumed.dr.suspended);
  EXPECT_EQ(resumed.dr.suspensions, 1);
  EXPECT_EQ(resumed.dr.rounds_executed, kIters);
  EXPECT_EQ(resumed.dr.replays, 0);
  EXPECT_EQ(resumed.dr.final_outputs, plain.dr.final_outputs);
  EXPECT_EQ(resumed.raw, plain.raw);
}

}  // namespace
}  // namespace gw::apps
