# Empty dependencies file for host_path.
# This may be replaced when dependencies are built.
