file(REMOVE_RECURSE
  "libgw_apps.a"
)
