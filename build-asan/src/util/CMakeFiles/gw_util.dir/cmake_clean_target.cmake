file(REMOVE_RECURSE
  "libgw_util.a"
)
