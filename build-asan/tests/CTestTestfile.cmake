# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_test[1]_include.cmake")
include("/root/repo/build-asan/tests/dfs_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gwcl_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_kv_test[1]_include.cmake")
include("/root/repo/build-asan/tests/host_path_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_job_test[1]_include.cmake")
include("/root/repo/build-asan/tests/apps_test[1]_include.cmake")
include("/root/repo/build-asan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_components_test[1]_include.cmake")
include("/root/repo/build-asan/tests/regression_test[1]_include.cmake")
include("/root/repo/build-asan/tests/matrix_test[1]_include.cmake")
include("/root/repo/build-asan/tests/offload_test[1]_include.cmake")
