# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/net_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/dfs_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/gwcl_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_kv_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/host_path_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_job_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/apps_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_components_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/regression_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/matrix_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/offload_test[1]_include.cmake")
