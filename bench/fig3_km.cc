// Figure 3(a,c,e): K-Means clustering.
//  (a) KM-1024 on the CPU: Hadoop vs Glasswing over 1..16 nodes.
//  (c) KM-1024 on the GPU: adapted GPMR vs Glasswing GPU (HDFS and local
//      FS), with the CPU lines for reference.
//  (e) KM-16 (I/O-dominant) on the GPU, unmodified GPMR: compute-only and
//      total-including-I/O lines vs Glasswing; the paper's point is that
//      GPMR's total is the SUM of I/O and compute while Glasswing's is
//      roughly their MAX (§IV-A2).
// Paper input: 2^23+ single-precision points in 4 dimensions; scaled.
#include "apps/kmeans.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kPoints = bench::scaled_bytes(300000);
constexpr std::uint64_t kSplit = 64 << 10;

core::JobConfig base_config() {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/points"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  apps::KmeansConfig km1024{.k = 1024, .dims = 4};
  apps::KmeansConfig km16{.k = 16, .dims = 4};
  const auto centers1024 = apps::generate_centers(km1024, 77);
  const auto centers16 = apps::generate_centers(km16, 77);
  const util::Bytes points = apps::generate_points(km1024, kPoints, 88);
  const auto app1024 = apps::kmeans(km1024, centers1024);
  const auto app16 = apps::kmeans(km16, centers16);

  // --- Fig 3(a): CPU, 1K centers ---
  bench::SeriesTable cpu_table("nodes");
  for (int nodes : {1, 2, 4, 8, 16}) {
    hadoop::HadoopConfig hcfg;
    hcfg.input_paths = {"/in/points"};
    hcfg.split_size = kSplit;
    cpu_table.add_timed("Hadoop", nodes, [&] {
      return bench::run_hadoop(nodes, app1024.kernels, points, hcfg);
    });
    cpu_table.add_timed("Glasswing-CPU", nodes, [&] {
      return bench::run_glasswing_cpu(nodes, app1024.kernels, points,
                                      base_config());
    });
  }
  cpu_table.print("Figure 3(a): KM (1K centers) on CPU over HDFS");

  // --- Fig 3(c): GPU, 1K centers ---
  bench::SeriesTable gpu_table("nodes");
  for (int nodes : {1, 2, 4, 8, 16}) {
    bench::RunOpts gpu_hdfs;
    gpu_hdfs.device = cl::DeviceSpec::gtx480();
    gpu_table.add_timed("GW-GPU(hdfs)", nodes, [&] {
      return bench::run_glasswing(nodes, app1024.kernels, points,
                                  base_config(), gpu_hdfs);
    });
    bench::RunOpts gpu_local = gpu_hdfs;
    gpu_local.local_fs = true;
    gpu_table.add_timed("GW-GPU(local)", nodes, [&] {
      return bench::run_glasswing(nodes, app1024.kernels, points,
                                  base_config(), gpu_local);
    });
    gpmr::GpmrConfig pcfg;
    pcfg.input_paths = {"/in/points"};
    // The paper's minimally-adapted GPMR KM code is "not expected to run
    // efficiently for larger numbers of centers" (§IV-A2).
    pcfg.kernel_ops_factor = 8.0;
    gpu_table.add("GPMR(adapted)", nodes,
                  bench::run_gpmr(nodes, app1024.kernels, points, pcfg)
                      .elapsed_seconds);
  }
  gpu_table.print("Figure 3(c): KM (1K centers) on GPU (GTX480)");

  const double gpu_gain =
      cpu_table.at("Hadoop", 1) / gpu_table.at("GW-GPU(hdfs)", 1);
  std::printf("\nShape checks:\n"
              "  single-node GPU gain over Hadoop: %.1fx (paper: ~20-30x)\n"
              "  GW-GPU vs GPMR(adapted) @8 nodes: %.2fx (paper: GPMR clearly "
              "slower at 1K centers)\n",
              gpu_gain,
              gpu_table.at("GPMR(adapted)", 8) / gpu_table.at("GW-GPU(local)", 8));

  // --- Fig 3(e): 16 centers, I/O-dominant, unmodified GPMR, local FS ---
  bench::SeriesTable io_table("nodes");
  for (int nodes : {1, 2, 4, 8, 16}) {
    // With 16 centers there is too little work per point to fill the
    // device: both systems run the kernel at limited width, so compute is
    // roughly half the local-disk read time, as the paper measures.
    gpmr::GpmrConfig pcfg;
    pcfg.input_paths = {"/in/points"};
    pcfg.map_launch.threads = 48;
    gpmr::GpmrResult pr = bench::run_gpmr(nodes, app16.kernels, points, pcfg);
    io_table.add("GPMR-compute", nodes, pr.compute_seconds);
    io_table.add("GPMR-total", nodes, pr.elapsed_seconds);
    bench::RunOpts gpu_local;
    gpu_local.device = cl::DeviceSpec::gtx480();
    gpu_local.local_fs = true;
    core::JobConfig io_cfg = base_config();
    io_cfg.split_size = 512 << 10;
    io_cfg.map_launch.threads = 48;
    io_table.add_timed("GW-GPU(local)", nodes, [&] {
      return bench::run_glasswing(nodes, app16.kernels, points, io_cfg,
                                  gpu_local);
    });
  }
  io_table.print("Figure 3(e): KM (16 centers) on GPU, local FS");
  std::printf("\nShape check (paper: GPMR total = I/O + compute ~ 1.5x "
              "Glasswing, which overlaps both; at our scale per-node fixed "
              "costs erode the gap beyond a few nodes):\n"
              "  GPMR-total / GW-GPU @1 node: %.2fx; @2 nodes: %.2fx\n",
              io_table.at("GPMR-total", 1) / io_table.at("GW-GPU(local)", 1),
              io_table.at("GPMR-total", 2) / io_table.at("GW-GPU(local)", 2));

  for (int nodes : {1, 4, 16}) {
    const double h = cpu_table.at("Hadoop", nodes);
    const double g = gpu_table.at("GW-GPU(hdfs)", nodes);
    bench::register_point("KM1024/Hadoop-CPU/nodes:" + std::to_string(nodes),
                          [h](benchmark::State&) { return h; });
    bench::register_point("KM1024/GW-GPU/nodes:" + std::to_string(nodes),
                          [g](benchmark::State&) { return g; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
