file(REMOVE_RECURSE
  "CMakeFiles/fig3_mm.dir/fig3_mm.cc.o"
  "CMakeFiles/fig3_mm.dir/fig3_mm.cc.o.d"
  "fig3_mm"
  "fig3_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
