// Matrix Multiply (MM): tiled dense C = A x B (paper §IV-A2).
//
// Matrices are tiled into t x t sub-matrices identified by the coordinates
// of their top-left corner. Each input record carries one (A(i,k), B(k,j))
// tile pair; the map kernel multiplies the pair into a partial C(i,j) tile
// (the compute-bound core), and the combiner/reducer sum partial tiles
// elementwise. The paper uses two work divisions — per-tile-block threads
// on GPUs and one-thread-per-tile on CPUs — expressed here as launch
// configurations.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "util/bytes.h"

namespace gw::apps {

struct MatmulConfig {
  std::uint32_t n = 512;   // matrix dimension
  std::uint32_t tile = 32; // tile dimension (divides n)

  std::uint32_t tiles_per_side() const { return n / tile; }
  std::uint64_t record_size() const {
    return 12 + 8ull * tile * tile;  // header + A tile + B tile
  }
};

AppSpec matmul(MatmulConfig config);

// Deterministic matrix elements (small values to keep float sums accurate).
float matrix_element(std::uint64_t matrix_seed, std::uint32_t row,
                     std::uint32_t col);

// All (i,k,j) tile-pair records for C = A x B; ~ (n/t)^3 records.
util::Bytes generate_tile_pairs(const MatmulConfig& config,
                                std::uint64_t seed_a, std::uint64_t seed_b);

// Reference C(i,j) tile computed directly from the element generators.
std::vector<float> reference_c_tile(const MatmulConfig& config,
                                    std::uint64_t seed_a, std::uint64_t seed_b,
                                    std::uint32_t tile_i, std::uint32_t tile_j);

// Key for a C tile: (be32 i, be32 j) — used to look up output pairs.
std::string c_tile_key(std::uint32_t tile_i, std::uint32_t tile_j);

}  // namespace gw::apps
