// Regression tests for defects found while bringing up the benchmarks.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "apps/wordcount.h"
#include "core/job.h"
#include "gwdfs/fs.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

Platform make_platform(int nodes) {
  return Platform(ClusterSpec::homogeneous(
      nodes, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
}

// A TaskGroup whose pending count drains to zero and then receives more
// spawns (a streaming producer) must not release wait() early. This
// use-after-free crashed 8+-node jobs: shuffle sends trickled in while the
// group intermittently hit zero.
TEST(TaskGroupRegression, IntermittentDrainDoesNotReleaseJoin) {
  sim::Simulation sim;
  sim::TaskGroup group(sim);
  int completed = 0;

  auto worker = [](sim::Simulation& s, double t, int* done) -> sim::Task<> {
    co_await s.delay(t);
    ++*done;
  };
  auto producer = [&worker](sim::Simulation& s, sim::TaskGroup& g,
                            int* done) -> sim::Task<> {
    for (int wave = 0; wave < 5; ++wave) {
      g.spawn(worker(s, 0.1, done));   // short task: drains before next wave
      co_await s.delay(1.0);
    }
  };
  bool join_ok = false;
  auto joiner = [](sim::Simulation& s, sim::TaskGroup& g, int* done,
                   bool* ok) -> sim::Task<> {
    co_await s.delay(4.5);  // all five waves spawned by now; some drained
    co_await g.wait();
    *ok = (*done == 5);
  };
  sim::Simulation* sp = &sim;
  sp->spawn(producer(sim, group, &completed));
  sp->spawn(joiner(sim, group, &completed, &join_ok));
  sim.run();
  EXPECT_EQ(completed, 5);
  EXPECT_TRUE(join_ok);
}

// Text lines starting exactly at a split boundary must be processed exactly
// once (they were dropped by both adjacent splits).
TEST(SplitBoundaryRegression, LineAtExactSplitOffsetCountedOnce) {
  Platform p = make_platform(1);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  // 10-byte lines; split size a multiple of the line length, so every split
  // boundary falls exactly on a line start.
  std::string text;
  for (int i = 0; i < 2000; ++i) text += "abcd efgh\n";
  p.sim().spawn([](dfs::Dfs& f, std::string t) -> sim::Task<> {
    co_await f.write(0, "/in", util::Bytes(t.begin(), t.end()));
  }(fs, text));
  p.sim().run();

  core::JobConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 1000;  // boundary every 100 lines
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  auto result = rt.run(apps::wordcount().kernels, cfg);
  EXPECT_EQ(result.stats.input_records, 2000u);
}

// write_distributed must spread first replicas across the cluster instead
// of pinning them all to one node (which made that node a shuffle-serving
// hotspot).
TEST(DfsRegression, DistributedWriteSpreadsFirstReplicas) {
  Platform p = make_platform(16);
  dfs::DfsConfig cfg;
  cfg.block_size = 64 << 10;
  dfs::Dfs fs(p, cfg);
  p.sim().spawn([](dfs::Dfs& f) -> sim::Task<> {
    co_await f.write_distributed("/big", util::Bytes(32 * (64 << 10)));
  }(fs));
  p.sim().run();
  std::map<int, int> first_replica_counts;
  for (std::uint64_t b = 0; b < 32; ++b) {
    first_replica_counts[fs.block_locations("/big", b).front()]++;
  }
  // 32 blocks over 16 nodes: no node should own a large share.
  for (auto& [node, count] : first_replica_counts) {
    EXPECT_LE(count, 8) << "node " << node << " owns too many first replicas";
  }
  EXPECT_GT(first_replica_counts.size(), 4u);
}

// Moving a RunReader (e.g. into a merge heap) must not invalidate it.
TEST(RunReaderRegression, SurvivesMove) {
  core::RunBuilder rb;
  for (int i = 0; i < 500; ++i) rb.add("key" + std::to_string(i), "value");
  core::Run run = rb.finish(true);  // compressed: owns its payload
  core::RunReader original(run);
  core::KV kv;
  ASSERT_TRUE(original.next(&kv));
  core::RunReader moved(std::move(original));
  int remaining = 0;
  while (moved.next(&kv)) {
    EXPECT_FALSE(kv.key.empty());
    ++remaining;
  }
  EXPECT_EQ(remaining, 499);
}

// Streamed disk I/O charges amortized seeks: many small sequential reads
// must not cost a full seek each.
TEST(DiskRegression, AmortizedSeeksForSmallSequentialReads) {
  Platform p = make_platform(1);
  auto& node = p.node(0);
  auto reader = [](cluster::Node& n) -> sim::Task<> {
    for (int i = 0; i < 100; ++i) {
      co_await n.disk_stream_read(64 << 10,
                                  cluster::Node::amortized_seek(64 << 10));
    }
  };
  p.sim().spawn(reader(node));
  const double elapsed = p.sim().run();
  const double full_seeks = 100 * node.spec().disk.seek_latency_s;
  EXPECT_LT(elapsed, full_seeks);  // must be far below 100 full seeks
}

// ---- new-feature tests ----

// Task re-execution (§III-E): injected map-task failures must not change
// the job's output, only add retries.
TEST(FaultTolerance, InjectedMapFailuresAreReExecuted) {
  util::Bytes text = apps::generate_wiki_text(1 << 20, 17);
  auto run_with = [&text](int fail_every) {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    p.sim().spawn([](dfs::Dfs& f, util::Bytes c) -> sim::Task<> {
      co_await f.write_distributed("/in", std::move(c));
    }(fs, text));
    p.sim().run();
    core::JobConfig cfg;
    cfg.input_paths = {"/in"};
    cfg.output_path = "/out";
    cfg.split_size = 128 << 10;
    cfg.fail_every_nth_map_task = fail_every;
    core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
    auto result = rt.run(apps::wordcount().kernels, cfg);
    // Gather output counts.
    std::map<std::string, std::uint64_t> counts;
    for (const auto& path : result.output_files) {
      util::Bytes contents;
      p.sim().spawn([](dfs::Dfs& f, std::string pa,
                       util::Bytes* o) -> sim::Task<> {
        *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
      }(fs, path, &contents));
      p.sim().run();
      for (auto& [k, v] : core::read_output_file(contents)) {
        counts[k] += apps::parse_u64(v);
      }
    }
    return std::make_tuple(counts, result.stats.map_task_retries,
                           result.elapsed_seconds);
  };
  const auto [clean_counts, clean_retries, clean_t] = run_with(0);
  const auto [fail_counts, fail_retries, fail_t] = run_with(3);
  EXPECT_EQ(clean_retries, 0u);
  EXPECT_GT(fail_retries, 0u);
  EXPECT_EQ(fail_counts, clean_counts);       // identical output
  EXPECT_GT(fail_t, clean_t);                 // wasted work costs time
}

// Per-phase devices: map on the GPU, reduce on the CPU — same output as a
// single-device job, with staging active only in the map phase.
TEST(PerPhaseDevices, GpuMapCpuReduceMatchesSingleDevice) {
  util::Bytes text = apps::generate_wiki_text(1 << 19, 23);
  auto run_with = [&text](bool split_devices,
                          core::JobResult* out) {
    Platform p = make_platform(2);
    dfs::Dfs fs(p, dfs::DfsConfig{});
    p.sim().spawn([](dfs::Dfs& f, util::Bytes c) -> sim::Task<> {
      co_await f.write_distributed("/in", std::move(c));
    }(fs, text));
    p.sim().run();
    core::JobConfig cfg;
    cfg.input_paths = {"/in"};
    cfg.output_path = "/out";
    cfg.split_size = 128 << 10;
    auto rt = split_devices
                  ? core::GlasswingRuntime(p, fs, cl::DeviceSpec::gtx480(),
                                           cl::DeviceSpec::cpu_dual_e5620())
                  : core::GlasswingRuntime(p, fs,
                                           cl::DeviceSpec::cpu_dual_e5620());
    *out = rt.run(apps::wordcount().kernels, cfg);
    std::map<std::string, std::uint64_t> counts;
    for (const auto& path : out->output_files) {
      util::Bytes contents;
      p.sim().spawn([](dfs::Dfs& f, std::string pa,
                       util::Bytes* o) -> sim::Task<> {
        *o = co_await f.read_all(f.block_locations(pa, 0).front(), pa);
      }(fs, path, &contents));
      p.sim().run();
      for (auto& [k, v] : core::read_output_file(contents)) {
        counts[k] += apps::parse_u64(v);
      }
    }
    return counts;
  };
  core::JobResult single, mixed;
  const auto counts_single = run_with(false, &single);
  const auto counts_mixed = run_with(true, &mixed);
  EXPECT_EQ(counts_mixed, counts_single);
  // GPU map pays staging; the CPU reduce does not.
  EXPECT_GT(mixed.stages.stage, 0.0);
  EXPECT_DOUBLE_EQ(mixed.stages.reduce_stage, 0.0);
}

}  // namespace
}  // namespace gw
