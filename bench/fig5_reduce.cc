// Figure 5: reduce-pipeline efficiency (WC on one Type-1 node, local FS,
// millions->thousands of unique keys at our scale).
//  * concurrent keys per kernel invocation: one key per kernel means one
//    launch per key (launch overhead dominates); concurrency amortizes it.
//  * keys per kernel thread: processing several keys sequentially per
//    thread trims per-thread creation overhead.
#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

const std::uint64_t kInputBytes = bench::scaled_bytes(16ull << 20);

core::JobResult run_config(const util::Bytes& input, int concurrent_keys,
                           int keys_per_thread) {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/wiki"};
  cfg.output_path = "/out";
  cfg.split_size = 512 << 10;
  cfg.use_combiner = true;  // many unique keys, few values each
  cfg.concurrent_keys = concurrent_keys;
  cfg.keys_per_thread = keys_per_thread;
  core::JobResult result;
  bench::RunOpts opts;
  opts.local_fs = true;
  bench::run_glasswing(1, apps::wordcount().kernels, input, cfg, opts,
                       &result);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Bytes input = apps::generate_wiki_text(kInputBytes, 2014);

  std::printf("=== Figure 5: WC reduce pipeline vs concurrent keys "
              "(keys/thread = 8) ===\n");
  std::printf("%-10s %14s %14s %14s\n", "conc.keys", "ReduceKernel(s)",
              "ReduceInput(s)", "ReduceTotal(s)");
  double t1 = 0, t4096 = 0;
  for (int ck : {1, 4, 16, 64, 256, 1024, 4096}) {
    const core::JobResult r = run_config(input, ck, 8);
    std::printf("%-10d %14.3f %14.3f %14.3f\n", ck, r.stages.reduce_kernel,
                r.stages.reduce_input, r.reduce_phase_seconds);
    if (ck == 1) t1 = r.reduce_phase_seconds;
    if (ck == 4096) t4096 = r.reduce_phase_seconds;
  }
  std::printf("Shape check: reduce time falls steeply with concurrency then "
              "flattens: %.3fs -> %.3fs (%.0fx, %s)\n",
              t1, t4096, t1 / t4096, t1 / t4096 > 5 ? "OK" : "MISMATCH");

  std::printf("\n=== Figure 5 (cont.): keys per kernel thread "
              "(concurrent keys = 1024) ===\n");
  std::printf("%-10s %14s %14s\n", "keys/thr", "ReduceKernel(s)",
              "ReduceTotal(s)");
  double kt1 = 0, kt16 = 0;
  for (int kpt : {1, 2, 4, 8, 16, 32}) {
    const core::JobResult r = run_config(input, 1024, kpt);
    std::printf("%-10d %14.3f %14.3f\n", kpt, r.stages.reduce_kernel,
                r.reduce_phase_seconds);
    if (kpt == 1) kt1 = r.stages.reduce_kernel;
    if (kpt == 16) kt16 = r.stages.reduce_kernel;
  }
  std::printf("Shape check: more keys/thread trims thread-create overhead: "
              "%.4fs -> %.4fs (%s)\n",
              kt1, kt16, kt16 <= kt1 ? "OK" : "MISMATCH");

  for (int ck : {1, 64, 4096}) {
    const double t = run_config(input, ck, 8).reduce_phase_seconds;
    bench::register_point("Fig5/reduce/conc-keys:" + std::to_string(ck),
                          [t](benchmark::State&) { return t; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
