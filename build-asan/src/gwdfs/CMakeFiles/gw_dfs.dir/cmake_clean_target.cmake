file(REMOVE_RECURSE
  "libgw_dfs.a"
)
