// Shared human-readable report lines for finished jobs, used by the gwrun
// CLI and the bench drivers so every front-end prints the same
// grep-stable formats. The exact strings are load-bearing: CI jobs grep
// the "mem:" line for merge depth and the traffic split for byte counts.
#pragma once

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/api.h"
#include "core/dag.h"
#include "core/sched.h"

namespace gw::core {

// Memory-governor summary; callers print it only for governed runs.
inline void print_mem_line(std::uint64_t budget_bytes, const JobStats& s) {
  std::printf(
      "mem: budget=%lluMiB peak=%.1fMiB spill=%.1fMiB spills=%llu "
      "merge_levels=%llu stalls=%.3fs\n",
      static_cast<unsigned long long>(budget_bytes >> 20),
      static_cast<double>(s.peak_mem_bytes) / 1048576.0,
      static_cast<double>(s.spill_bytes) / 1048576.0,
      static_cast<unsigned long long>(s.spills),
      static_cast<unsigned long long>(s.merge_levels),
      s.mem_stall_seconds);
}

// Remote-traffic split per transport class. `head` is the line prefix
// ("net" for gwrun, "net-split[label]" for benches). The rack_agg column
// appears only when the rack tier actually moved bytes, so every
// non-combining run keeps its legacy byte-identical output.
inline void print_traffic_split_line(const char* head, const JobStats& s) {
  std::printf("%s: shuffle=%llu dfs=%llu control=%llu", head,
              static_cast<unsigned long long>(s.net_shuffle_bytes),
              static_cast<unsigned long long>(s.net_dfs_bytes),
              static_cast<unsigned long long>(s.net_control_bytes));
  if (s.net_rack_agg_bytes > 0) {
    std::printf(" rack_agg=%llu",
                static_cast<unsigned long long>(s.net_rack_agg_bytes));
  }
  std::printf(" bytes\n");
}

// Hierarchical-combining summary; callers print it when a combine mode was
// requested. in/out are the bytes entering/leaving the combine passes
// across both tiers; the ratio is the traffic the tiers eliminated.
inline void print_combine_line(const JobStats& s) {
  const double ratio =
      s.combine_in_bytes > 0
          ? 1.0 - static_cast<double>(s.combine_out_bytes) /
                      static_cast<double>(s.combine_in_bytes)
          : 0.0;
  std::printf("combine: in=%.1fMiB out=%.1fMiB saved=%.1f%% rack_agg=%.1fMiB\n",
              static_cast<double>(s.combine_in_bytes) / 1048576.0,
              static_cast<double>(s.combine_out_bytes) / 1048576.0,
              100.0 * ratio,
              static_cast<double>(s.net_rack_agg_bytes) / 1048576.0);
}

// Multi-round DAG summary: executed/replayed round counts and what the
// pinned intermediate store held and saved. CI greps this line.
inline void print_dag_line(const DagResult& r) {
  std::printf(
      "dag: rounds=%zu executed=%d replays=%d pinned_peak=%.1fMiB "
      "pin_spills=%llu cache_hits=%.1fMiB elapsed=%.3fs\n",
      r.rounds.size(), r.rounds_executed, r.replays,
      static_cast<double>(r.pinned_peak_bytes) / 1048576.0,
      static_cast<unsigned long long>(r.pin_spills),
      static_cast<double>(r.cache_hit_bytes) / 1048576.0, r.elapsed_seconds);
}

// Nearest-rank quantile over job sojourn times (finished jobs only).
inline double sched_latency_quantile(const std::vector<ScheduledJob>& jobs,
                                     double q) {
  std::vector<double> lat;
  for (const auto& j : jobs) {
    if (!j.rejected && !j.failed) lat.push_back(j.latency_s);
  }
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  const std::size_t idx = std::min(
      lat.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(lat.size())));
  return lat[idx];
}

// Multi-tenant scheduler summary. CI greps "sched:"; keep the format
// stable.
inline void print_sched_line(const Scheduler& s, SchedPolicy policy,
                             double makespan_s) {
  int finished = 0;
  for (const auto& j : s.results()) {
    if (!j.rejected && !j.failed) ++finished;
  }
  std::printf(
      "sched: policy=%s jobs=%d finished=%d rejected=%d failed=%d "
      "resident_peak=%d queue_peak=%d p50=%.3fs p99=%.3fs makespan=%.3fs "
      "throughput=%.3fjobs/s preempts=%d resumes=%d degraded=%d\n",
      sched_policy_name(policy), s.jobs_submitted(), finished,
      s.jobs_rejected(), s.jobs_failed(), s.resident_peak(), s.queue_peak(),
      sched_latency_quantile(s.results(), 0.50),
      sched_latency_quantile(s.results(), 0.99), makespan_s,
      makespan_s > 0 ? finished / makespan_s : 0.0, s.jobs_preempted(),
      s.jobs_resumed(), s.combine_degraded_jobs());
}

}  // namespace gw::core
