// Shared scaffolding for the reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (§IV). Times are SIMULATED seconds from the deterministic DES
// clock (reported to google-benchmark via manual timing); datasets are
// scaled-down versions of the paper's inputs with the same key statistics,
// so the SHAPE of each result (who wins, by what factor, where crossovers
// fall) is the reproduction target, not absolute numbers.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"
#include "baselines/gpmr/gpmr.h"
#include "baselines/hadoop/hadoop.h"
#include "cluster/cluster.h"
#include "core/job.h"
#include "core/report.h"
#include "gwdfs/fs.h"

namespace gw::bench {

// Benchmark input scale: data sizes default to a laptop-friendly scale-down
// of the paper's datasets; override with GW_BENCH_SCALE (a multiplier).
inline double scale() {
  if (const char* env = std::getenv("GW_BENCH_SCALE")) {
    return std::atof(env);
  }
  return 1.0;
}

inline std::uint64_t scaled_bytes(std::uint64_t base) {
  return static_cast<std::uint64_t>(static_cast<double>(base) * scale());
}

inline cluster::Platform make_platform(
    int nodes, cluster::NodeSpec spec = cluster::NodeSpec::das4_type1(),
    net::NetworkProfile network = net::NetworkProfile::qdr_infiniband_ipoib()) {
  return cluster::Platform(cluster::ClusterSpec::homogeneous(
      nodes, std::move(spec), std::move(network)));
}

inline void stage_input(cluster::Platform& p, dfs::FileSystem& fs,
                        const std::string& path, util::Bytes contents) {
  // HDFS inputs are staged like TeraGen/distcp would: block replicas spread
  // over the whole cluster, no writer affinity. LocalFs inputs are fully
  // replicated (the GPMR experimental layout).
  if (auto* hdfs = dynamic_cast<dfs::Dfs*>(&fs)) {
    p.sim().spawn([](dfs::Dfs& f, std::string pa, util::Bytes c) -> sim::Task<> {
      co_await f.write_distributed(pa, std::move(c));
    }(*hdfs, path, std::move(contents)));
    p.sim().run();
    return;
  }
  p.sim().spawn([](dfs::FileSystem& f, std::string pa,
                   util::Bytes c) -> sim::Task<> {
    co_await f.write(0, pa, std::move(c));
  }(fs, path, std::move(contents)));
  p.sim().run();
  if (auto* local = dynamic_cast<dfs::LocalFs*>(&fs)) {
    local->replicate_everywhere(path);
  }
}

// Accumulates (x, seconds) series and prints the paper-style summary:
// execution times (falling) and speedups over the 1st x (rising). Points
// added with add_timed() also report the host wall-clock spent producing
// them — the cost of actually running the simulation, which the offload
// pool shrinks on multicore hosts while the simulated column stays
// bit-identical.
class SeriesTable {
 public:
  explicit SeriesTable(std::string x_label) : x_label_(std::move(x_label)) {}

  void add(const std::string& series, double x, double seconds,
           double wall_seconds = -1) {
    data_[series].push_back(Point{x, seconds, wall_seconds});
  }

  // Runs fn() (returning simulated seconds), measures the host wall-clock
  // around it, and records both. Returns the simulated seconds.
  template <typename Fn>
  double add_timed(const std::string& series, double x, Fn&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    const double seconds = fn();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    add(series, x, seconds, wall);
    return seconds;
  }

  void print(const char* title) const {
    std::printf("\n=== %s ===\n", title);
    std::printf("%-12s", x_label_.c_str());
    for (const auto& [name, points] : data_) {
      std::printf(" %16s %9s %9s", (name + "(s)").c_str(), "speedup",
                  "wall(s)");
    }
    std::printf("\n");
    // Collect the x values of the longest series.
    std::vector<double> xs;
    for (const auto& [name, points] : data_) {
      if (points.size() > xs.size()) {
        xs.clear();
        for (auto& p : points) xs.push_back(p.x);
      }
    }
    for (double x : xs) {
      std::printf("%-12g", x);
      for (const auto& [name, points] : data_) {
        double t = -1, base = -1, wall = -1;
        for (auto& p : points) {
          if (p.x == x) {
            t = p.sim_s;
            wall = p.wall_s;
          }
          if (base < 0) base = p.sim_s;  // first point of the series
        }
        if (t >= 0) {
          std::printf(" %16.3f %9.2f", t, base / t);
          if (wall >= 0) {
            std::printf(" %9.3f", wall);
          } else {
            std::printf(" %9s", "-");
          }
        } else {
          std::printf(" %16s %9s %9s", "-", "-", "-");
        }
      }
      std::printf("\n");
    }
  }

  double at(const std::string& series, double x) const {
    for (auto& p : data_.at(series)) {
      if (p.x == x) return p.sim_s;
    }
    return -1;
  }

 private:
  struct Point {
    double x;
    double sim_s;
    double wall_s;  // host wall-clock; < 0 when not measured
  };
  std::string x_label_;
  std::map<std::string, std::vector<Point>> data_;
};

// Paper-style map-pipeline breakdown table body: one column per
// configuration, one row per stage busy time. Rows come from
// JobResult::stages, which job.cc reduces from the trace
// (trace::Tracer::occupancy) — benches no longer aggregate spans
// themselves. Stage/Retrieve rows only matter on discrete-memory devices;
// `show_staging` toggles them (§IV-B2). Callers print their own title line.
inline void print_stage_breakdown(const std::vector<const char*>& columns,
                                  const std::vector<const core::JobResult*>& rs,
                                  bool show_staging) {
  std::printf("%-16s", "");
  for (const char* c : columns) std::printf(" %10s", c);
  std::printf("\n");
  auto row = [&](const char* label, auto get) {
    std::printf("%-16s", label);
    for (const core::JobResult* r : rs) std::printf(" %10.3f", get(*r));
    std::printf("\n");
  };
  row("Input", [](const core::JobResult& r) { return r.stages.input; });
  if (show_staging) {
    row("Stage", [](const core::JobResult& r) { return r.stages.stage; });
  }
  row("Kernel", [](const core::JobResult& r) { return r.stages.kernel; });
  if (show_staging) {
    row("Retrieve", [](const core::JobResult& r) { return r.stages.retrieve; });
  }
  row("Partitioning",
      [](const core::JobResult& r) { return r.stages.partition; });
  row("Map elapsed",
      [](const core::JobResult& r) { return r.stages.map_elapsed; });
  row("Merge delay",
      [](const core::JobResult& r) { return r.merge_delay_seconds; });
  row("Reduce time",
      [](const core::JobResult& r) { return r.reduce_phase_seconds; });
}

// One-line host-path summary for a finished job: intermediate-store merge
// activity (count, average fan-in, spills), the memory-governor columns
// (spilled bytes, merge-tree depth, peak budget occupancy, stall time — all
// zero on ungoverned runs), and collector hash-probe work.
inline void print_host_path_summary(const char* label,
                                    const core::JobResult& r) {
  const double fanin =
      r.stats.merges > 0 ? static_cast<double>(r.stats.merge_fanin_runs) /
                               static_cast<double>(r.stats.merges)
                         : 0.0;
  std::printf(
      "host-path[%s]: merges=%llu avg-fanin=%.1f spills=%llu "
      "spill-mb=%.1f merge-levels=%llu peak-mem-mb=%.1f mem-stall=%.3fs "
      "hash-probes=%llu\n",
      label, static_cast<unsigned long long>(r.stats.merges), fanin,
      static_cast<unsigned long long>(r.stats.spills),
      static_cast<double>(r.stats.spill_bytes) / 1048576.0,
      static_cast<unsigned long long>(r.stats.merge_levels),
      static_cast<double>(r.stats.peak_mem_bytes) / 1048576.0,
      r.stats.mem_stall_seconds,
      static_cast<unsigned long long>(r.stats.hash_table_probes));
}

// One-line remote-traffic split for a finished job: what the transport put
// on the wire per class (shuffle vs DFS block traffic vs control frames,
// plus rack_agg when hierarchical combining moved bytes). Format shared
// with gwrun via core/report.h.
inline void print_traffic_split(const char* label, const core::JobResult& r) {
  std::string head = "net-split[";
  head += label;
  head += ']';
  core::print_traffic_split_line(head.c_str(), r.stats);
}

// --- one-shot job runners (fresh platform + filesystem per point) ---

struct RunOpts {
  cl::DeviceSpec device = cl::DeviceSpec::cpu_dual_e5620();
  bool local_fs = false;  // LocalFs with fully-replicated input (GPMR layout)
  cluster::NodeSpec node = cluster::NodeSpec::das4_type1();
  net::NetworkProfile network = net::NetworkProfile::qdr_infiniband_ipoib();
};

inline double run_glasswing(int nodes, const core::AppKernels& app,
                            const util::Bytes& input, core::JobConfig cfg,
                            RunOpts opts = {},
                            core::JobResult* out = nullptr) {
  cluster::Platform p = make_platform(nodes, opts.node, opts.network);
  std::unique_ptr<dfs::FileSystem> fs;
  if (opts.local_fs) {
    fs = std::make_unique<dfs::LocalFs>(p);
  } else {
    fs = std::make_unique<dfs::Dfs>(p, dfs::DfsConfig{});
  }
  if (cfg.input_paths.empty()) cfg.input_paths = {"/in/data"};
  if (cfg.output_path.empty()) cfg.output_path = "/out";
  stage_input(p, *fs, cfg.input_paths[0], input);
  core::GlasswingRuntime rt(p, *fs, opts.device);
  core::JobResult result = rt.run(app, cfg);
  if (out != nullptr) *out = result;
  return result.elapsed_seconds;
}

inline double run_glasswing_cpu(int nodes, const core::AppKernels& app,
                                const util::Bytes& input,
                                core::JobConfig cfg,
                                core::JobResult* out = nullptr) {
  return run_glasswing(nodes, app, input, std::move(cfg), RunOpts{}, out);
}

inline double run_hadoop(int nodes, const core::AppKernels& app,
                         const util::Bytes& input, hadoop::HadoopConfig cfg,
                         hadoop::HadoopResult* out = nullptr) {
  cluster::Platform p = make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  if (cfg.input_paths.empty()) cfg.input_paths = {"/in/data"};
  if (cfg.output_path.empty()) cfg.output_path = "/out";
  stage_input(p, fs, cfg.input_paths[0], input);
  hadoop::HadoopRuntime rt(p, fs);
  hadoop::HadoopResult result = rt.run(app, cfg);
  if (out != nullptr) *out = result;
  return result.elapsed_seconds;
}

inline gpmr::GpmrResult run_gpmr(int nodes, const core::AppKernels& app,
                                 const util::Bytes& input,
                                 gpmr::GpmrConfig cfg,
                                 cl::DeviceSpec device = cl::DeviceSpec::gtx480()) {
  cluster::Platform p = make_platform(nodes);
  dfs::LocalFs fs(p);
  if (cfg.input_paths.empty()) cfg.input_paths = {"/in/data"};
  stage_input(p, fs, cfg.input_paths[0], input);
  gpmr::GpmrRuntime rt(p, fs, std::move(device));
  return rt.run(app, cfg);
}

// Registers a single-shot manual-time benchmark.
template <typename Fn>
void register_point(const std::string& name, Fn fn) {
  benchmark::RegisterBenchmark(name.c_str(), [fn](benchmark::State& state) {
    for (auto _ : state) {
      const double seconds = fn(state);
      state.SetIterationTime(seconds);
    }
  })->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace gw::bench
