#include "baselines/hadoop/hadoop.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "core/kv.h"
#include "core/pipeline.h"
#include "core/stage.h"
#include "util/error.h"

namespace gw::hadoop {

namespace {

// A fetched map-output segment for one reducer.
struct MapSegment {
  MapSegment() = default;
  MapSegment(int src_node_in, core::Run run_in)
      : src_node(src_node_in), run(std::move(run_in)) {}

  int src_node = -1;
  core::Run run;
};

class PairListEmitter : public core::MapEmitter, public core::ReduceEmitter {
 public:
  PairListEmitter(core::PairList* out, cl::KernelCounters* c)
      : out_(out), c_(c) {}
  void emit(std::string_view key, std::string_view value) override {
    out_->add(key, value);
    c_->charge_write(key.size() + value.size());
  }

 private:
  core::PairList* out_;
  cl::KernelCounters* c_;
};

struct Shared {
  cluster::Platform* platform;
  dfs::FileSystem* fs;
  const core::AppKernels* app;
  const HadoopConfig* cfg;
  int num_nodes;
  int total_reducers;
  // Per-reducer stream of fetched map outputs.
  std::vector<std::unique_ptr<sim::Channel<MapSegment>>> feeds;
  sim::TaskGroup* fetches = nullptr;  // outstanding fetch deliveries

  double map_end_time = 0;

  std::uint64_t records = 0;
  std::uint64_t pairs = 0;
  std::uint64_t shuffle_bytes = 0;

  // Single-core Java op rate: per-lane OpenCL rate scaled by clock and
  // divided by the JVM factor.
  double java_ops_per_s(const cluster::Node& node) const {
    return 0.55e9 * (node.spec().core_ghz / 2.4) / cfg->jvm_cpu_factor;
  }
};

// Results of the offloaded map record loop (user-declared constructor per
// the coroutine payload rule in sim/sim.h).
struct MapJobOut {
  MapJobOut() = default;
  cl::KernelCounters counters;
  core::PairList output;
};

// Results of the offloaded partition/sort/combine/spill job. The spill cpu
// charge is computed inside the job with the exact per-bucket summation
// order of the sequential code so the simulated seconds are bit-identical.
struct SpillJobOut {
  SpillJobOut() = default;
  double cpu_s = 0;
  std::uint64_t bytes = 0;
  std::uint64_t pairs = 0;
  std::vector<std::pair<int, core::Run>> outputs;
};

// Results of the offloaded reduce record loop.
struct ReduceJobOut {
  ReduceJobOut() = default;
  cl::KernelCounters counters;
  std::uint64_t reduce_records = 0;
};

// Applies the combiner over a key-sorted PairList; returns the combined
// list and accumulates ops into `c`.
core::PairList combine_sorted(const core::AppKernels& app,
                              const core::PairList& sorted,
                              cl::KernelCounters& c) {
  core::PairList out;
  PairListEmitter emitter(&out, &c);
  std::size_t i = 0;
  std::vector<std::string_view> values;
  while (i < sorted.size()) {
    const core::KV first = sorted.get(i);
    values.clear();
    values.push_back(first.value);
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted.get(j).key == first.key) {
      values.push_back(sorted.get(j).value);
      ++j;
    }
    core::ReduceContext ctx{&emitter, &c};
    (*app.combine)(first.key, values, ctx);
    i = j;
  }
  return out;
}

// One map slot: pulls splits until none remain. Hadoop tasks are strictly
// sequential: read the whole split, then map every record on one core, then
// sort/combine/spill — no intra-task overlap.
sim::Task<> map_slot(core::Stage& st, Shared& sh,
                     core::SplitScheduler& scheduler) {
  auto& sim = sh.platform->sim();
  const int node_id = st.node();
  cluster::Node& node = sh.platform->node(node_id);
  const HadoopConfig& cfg = *sh.cfg;
  const core::AppKernels& app = *sh.app;
  const std::int32_t read_name = st.span_name("read");
  const std::int32_t compute_name = st.span_name("map.compute");
  const std::int32_t spill_name = st.span_name("spill");
  const std::int32_t shuffle_name = st.span_name("shuffle");

  for (;;) {
    auto split = scheduler.next_for(node_id);
    if (!split) break;

    core::Stage::BusyScope busy(st);  // one span per map task
    co_await sim.delay(cfg.task_startup_s);

    // 1. Read the entire split (blocking; no compute overlap).
    util::Bytes data;
    {
      core::Stage::Span span(st, trace::Kind::kStage, read_name);
      data = co_await core::read_aligned_split(*sh.fs, node_id, app, *split);
    }
    const std::string_view chunk(reinterpret_cast<const char*>(data.data()),
                                 data.size());
    const std::vector<std::uint64_t> offsets = core::frame_records(app, chunk);
    if (offsets.empty()) continue;
    sh.records += offsets.size();

    // 2. Sequential record loop through the user map function — real host
    // work, run on the offload pool. The charge depends on the counters, so
    // the job is joined right away; the join blocks before the next
    // simulated event, keeping the timeline identical to inline execution.
    auto map_job = sim.offload([&app, &offsets, chunk] {
      MapJobOut out;
      PairListEmitter emitter(&out.output, &out.counters);
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        const std::uint64_t begin = offsets[i];
        const std::uint64_t end =
            (i + 1 < offsets.size()) ? offsets[i + 1] : chunk.size();
        core::MapContext ctx{&emitter, &out.counters};
        app.map(chunk.substr(begin, end - begin), ctx);
      }
      return out;
    });
    MapJobOut map_out = co_await sim.join(std::move(map_job));
    const double map_cpu_s =
        (static_cast<double>(map_out.counters.stats().ops) +
         cfg.per_record_overhead_ops * static_cast<double>(offsets.size())) /
        sh.java_ops_per_s(node);

    // 3. Partition, sort, combine, spill. Submitted before the map charge so
    // the real spill work overlaps the simulated map seconds; joined where
    // the spill charge (computed inside the job) is first needed.
    auto spill_job = sim.offload([&sh, &app, &cfg, &node, &map_out] {
      SpillJobOut res;
      std::vector<core::PairList> buckets(sh.total_reducers);
      const core::PairList& output = map_out.output;
      for (std::size_t i = 0; i < output.size(); ++i) {
        const core::PairList::PairView pv = output.pair_view(i);
        buckets[app.partition(pv.kv.key,
                              static_cast<std::uint32_t>(sh.total_reducers))]
            .add_encoded(pv);
      }
      for (int r = 0; r < sh.total_reducers; ++r) {
        core::PairList& bucket = buckets[r];
        if (bucket.empty()) continue;
        bucket.sort_by_key();
        cl::KernelCounters combine_counters;
        const core::PairList* final_pairs = &bucket;
        core::PairList combined;
        if (cfg.use_combiner && app.combine.has_value()) {
          combined = combine_sorted(app, bucket, combine_counters);
          final_pairs = &combined;
        }
        core::RunBuilder rb;
        for (std::size_t i = 0; i < final_pairs->size(); ++i) {
          rb.add_encoded(final_pairs->encoded_pair(i));
        }
        res.pairs += rb.pairs();
        core::Run run = rb.finish(false);  // Hadoop: no map-output compression
        res.cpu_s +=
            cfg.jvm_cpu_factor *
                static_cast<double>(bucket.blob_bytes()) / cfg.host.sort_bytes_per_s +
            static_cast<double>(run.raw_bytes) / cfg.host.serialize_bytes_per_s +
            static_cast<double>(combine_counters.stats().ops) /
                sh.java_ops_per_s(node);
        res.bytes += run.stored_bytes();
        res.outputs.emplace_back(r, std::move(run));
      }
      return res;
    });
    {
      core::Stage::Span span(st, trace::Kind::kKernel, compute_name,
                             map_out.counters.stats().ops);
      co_await node.cpu_work(map_cpu_s);
    }
    SpillJobOut spill = co_await sim.join(std::move(spill_job));
    sh.pairs += spill.pairs;
    {
      core::Stage::Span span(st, trace::Kind::kSpill, spill_name, spill.bytes);
      co_await node.cpu_work(spill.cpu_s);
      if (spill.bytes > 0) {
        co_await node.disk_stream_write(
            spill.bytes, cluster::Node::amortized_seek(spill.bytes));
      }
    }

    // 4. Publish outputs. Reducers PULL: they learn about the completed map
    // via the next heartbeat, then fetch over the network.
    for (auto& [r, run] : spill.outputs) {
      const int dst_node = r % sh.num_nodes;
      const std::uint64_t bytes = run.stored_bytes();
      sh.shuffle_bytes += bytes;
      st.instant(trace::Kind::kShuffle, shuffle_name, bytes);
      sh.fetches->spawn([](Shared& s, int src, int dst, int reducer,
                           core::Run rn, std::uint64_t b) -> sim::Task<> {
        co_await s.platform->sim().delay(s.cfg->heartbeat_s);
        // Fetch request round trip + data transfer; the map-output server
        // streams segments sequentially from files it just wrote (page
        // cache), so only bandwidth is charged on the source disk. The
        // request is a control frame on the fetch port; the reply is
        // shuffle traffic on the reducer's reply port.
        co_await s.platform->transport().transfer(
            dst, src, net::kPortHadoopFetch, net::TrafficClass::kControl, 64);
        co_await s.platform->node(src).disk_stream_read(b);
        co_await s.platform->transport().transfer(
            src, dst, net::kPortHadoopReplyBase + reducer,
            net::TrafficClass::kShuffle, b);
        co_await s.feeds[reducer]->send(MapSegment(src, std::move(rn)));
      }(sh, node_id, dst_node, r, std::move(run), bytes));
    }
  }
}

sim::Task<> reducer_task(core::Stage& st, Shared& sh, int reducer,
                         HadoopResult& result) {
  const HadoopConfig& cfg = *sh.cfg;
  const core::AppKernels& app = *sh.app;
  const int node_id = st.node();
  cluster::Node& node = sh.platform->node(node_id);
  auto& feed = *sh.feeds[reducer];
  const std::int32_t merge_name = st.span_name("merge");
  const std::int32_t compute_name = st.span_name("reduce.compute");
  const std::int32_t output_name = st.span_name("output");

  // Fetch phase: segments land in the reducer's in-memory shuffle buffer;
  // when it overflows, the buffered runs are merged and spilled to disk
  // (Hadoop's mapred.job.shuffle buffers + io.sort.factor merges).
  std::vector<core::Run> in_ram;
  std::vector<core::Run> spilled;
  std::uint64_t ram_bytes = 0;
  for (;;) {
    auto seg = co_await feed.recv();
    if (!seg) break;
    ram_bytes += seg->run.stored_bytes();
    in_ram.push_back(std::move(seg->run));
    if (ram_bytes > cfg.shuffle_buffer_bytes) {
      std::uint64_t raw = 0;
      for (const auto& r : in_ram) raw += r.raw_bytes;
      // Charge is known pre-merge: the real merge overlaps the cpu charge.
      auto merging = sh.platform->sim().offload(
          [&in_ram] { return core::merge_runs(in_ram, false); });
      {
        core::Stage::Span span(st, trace::Kind::kMerge, merge_name,
                               in_ram.size());
        co_await node.cpu_work(cfg.jvm_cpu_factor * static_cast<double>(raw) /
                               cfg.host.merge_bytes_per_s);
      }
      core::Run merged = co_await sh.platform->sim().join(std::move(merging));
      co_await node.disk_stream_write(merged.stored_bytes());
      spilled.push_back(std::move(merged));
      in_ram.clear();
      ram_bytes = 0;
    }
  }
  std::vector<core::Run> runs;
  if (!spilled.empty()) {
    std::uint64_t spilled_bytes = 0;
    for (const auto& r : spilled) spilled_bytes += r.stored_bytes();
    co_await node.disk_stream_read(spilled_bytes);
    for (auto& r : spilled) runs.push_back(std::move(r));
  }
  for (auto& r : in_ram) runs.push_back(std::move(r));
  if (runs.empty()) co_return;

  // Final merge + sequential reduce. The merge charge is known pre-merge,
  // so the real merge overlaps the cpu charge.
  std::uint64_t raw = 0;
  for (const auto& r : runs) raw += r.raw_bytes;
  auto merging = sh.platform->sim().offload(
      [&runs] { return core::merge_runs(runs, false); });
  {
    core::Stage::Span span(st, trace::Kind::kMerge, merge_name, runs.size());
    co_await node.cpu_work(cfg.jvm_cpu_factor * static_cast<double>(raw) /
                           cfg.host.merge_bytes_per_s);
  }
  core::Run merged = co_await sh.platform->sim().join(std::move(merging));

  // The reduce record loop runs on the pool; its charge needs the counters,
  // so it is joined right away (invisible to the simulated timeline).
  core::RunBuilder builder;
  auto reduce_job = sh.platform->sim().offload([&app, &merged, &builder] {
    ReduceJobOut res;
    core::PairList reduced;
    PairListEmitter emitter(&reduced, &res.counters);
    core::RunReader reader(merged);
    core::KV kv;
    bool have = reader.next(&kv);
    std::vector<std::string_view> values;
    while (have) {
      const std::string_view key = kv.key;
      values.clear();
      while (have && kv.key == key) {
        values.push_back(kv.value);
        have = reader.next(&kv);
      }
      ++res.reduce_records;
      if (app.reduce.has_value()) {
        core::ReduceContext ctx{&emitter, &res.counters};
        (*app.reduce)(key, values, ctx);
      } else {
        for (auto v : values) reduced.add(key, v);
      }
    }
    for (std::size_t i = 0; i < reduced.size(); ++i) {
      builder.add_encoded(reduced.encoded_pair(i));
    }
    return res;
  });
  ReduceJobOut red = co_await sh.platform->sim().join(std::move(reduce_job));
  const double reduce_cpu_s =
      (static_cast<double>(red.counters.stats().ops) +
       cfg.per_record_overhead_ops * static_cast<double>(red.reduce_records)) /
      sh.java_ops_per_s(node);

  // Output finish + serialization overlaps the reduce cpu charge.
  result.output_pairs += builder.pairs();
  auto serializing =
      sh.platform->sim().offload([b = std::move(builder)]() mutable {
        core::Run out_run = b.finish(false);
        util::ByteWriter w;
        out_run.serialize(w);
        return w.take();
      });
  {
    core::Stage::Span span(st, trace::Kind::kKernel, compute_name,
                           red.counters.stats().ops);
    co_await node.cpu_work(reduce_cpu_s);
  }

  char buf[32];
  std::snprintf(buf, sizeof(buf), "/part-r-%05d", reducer);
  const std::string path = cfg.output_path + buf;
  util::Bytes wire = co_await sh.platform->sim().join(std::move(serializing));
  {
    core::Stage::Span span(st, trace::Kind::kStage, output_name, wire.size());
    co_await sh.fs->write(node_id, path, std::move(wire));
  }
  result.output_files.push_back(path);
}

}  // namespace

HadoopRuntime::HadoopRuntime(cluster::Platform& platform, dfs::FileSystem& fs)
    : platform_(platform), fs_(fs) {}

HadoopResult HadoopRuntime::run(const core::AppKernels& app,
                                HadoopConfig config) {
  GW_CHECK_MSG(static_cast<bool>(app.map), "job needs a map function");
  if (config.fault_tolerant()) {
    util::throw_error(
        "hadoop baseline does not support node-crash recovery or "
        "speculation; run fault-injection experiments on the glasswing "
        "engine");
  }
  core::AppKernels effective_app = app;
  if (!effective_app.partition) {
    effective_app.partition = core::default_hash_partitioner();
  }
  if (config.output_replication > 0) {
    if (auto* hdfs = dynamic_cast<dfs::Dfs*>(&fs_)) {
      hdfs->set_replication(config.output_replication);
    }
  }

  auto& sim = platform_.sim();
  sim.tracer().clear();  // one job per trace
  const double start = sim.now();
  const int num_nodes = platform_.num_nodes();

  // Transport counters are cumulative per platform (input staging counts
  // too); snapshot so the report covers exactly this job.
  net::Transport& tp = platform_.transport();
  const std::uint64_t net_shuffle0 =
      tp.total_bytes(net::TrafficClass::kShuffle);
  const std::uint64_t net_dfs0 = tp.total_bytes(net::TrafficClass::kDfs);
  const std::uint64_t net_control0 =
      tp.total_bytes(net::TrafficClass::kControl);

  Shared sh;
  sh.platform = &platform_;
  sh.fs = &fs_;
  sh.app = &effective_app;
  sh.cfg = &config;
  sh.num_nodes = num_nodes;
  sh.total_reducers = num_nodes * config.reducers_per_node;
  for (int r = 0; r < sh.total_reducers; ++r) {
    sh.feeds.push_back(
        std::make_unique<sim::Channel<MapSegment>>(sim, 1 << 16));
  }
  sim::TaskGroup fetches(sim);
  sh.fetches = &fetches;

  core::SplitScheduler scheduler(core::SplitScheduler::make_splits(
      fs_, config.input_paths, config.split_size));

  HadoopResult result;

  // Map and reduce slots are cluster-wide stages: worker w of the map stage
  // is slot w in node-major order, reducer r lands on node r % num_nodes.
  core::StageGraph g_map(sim, "hadoop", 0);
  core::StageGraph g_reduce(sim, "hadoop", 0);
  std::vector<int> map_node_of;
  for (int n = 0; n < num_nodes; ++n) {
    const int slots = config.map_slots_per_node > 0
                          ? config.map_slots_per_node
                          : platform_.node(n).spec().hw_threads;
    for (int s = 0; s < slots; ++s) map_node_of.push_back(n);
  }
  g_map.add_stage("map", static_cast<int>(map_node_of.size()), map_node_of,
                  [&](core::Stage& st) { return map_slot(st, sh, scheduler); });
  std::vector<int> reduce_node_of;
  for (int r = 0; r < sh.total_reducers; ++r) {
    reduce_node_of.push_back(r % num_nodes);
  }
  g_reduce.add_stage("reduce", sh.total_reducers, reduce_node_of,
                     [&](core::Stage& st) {
                       return reducer_task(st, sh, st.worker(), result);
                     });

  auto& tr = sim.tracer();
  const auto phase_track = tr.track(0, "phase");
  const auto phase_map_name = tr.intern("phase.map");
  const auto phase_reduce_name = tr.intern("phase.reduce");
  tr.begin(phase_track, trace::Kind::kPhase, phase_map_name, sim.now());

  // Awaiting run() transfers symmetrically, so the monitor continues at the
  // exact event-queue position where the old TaskGroup wait resumed.
  sim.spawn([](Shared& s, core::StageGraph& gm, sim::TaskGroup& fets,
               HadoopResult& res, double t0, trace::TrackRef pt,
               std::int32_t map_n, std::int32_t red_n) -> sim::Task<> {
    co_await gm.run();
    auto& trc = s.platform->sim().tracer();
    s.map_end_time = s.platform->sim().now();
    trc.end(pt, trace::Kind::kPhase, map_n, s.map_end_time);
    trc.begin(pt, trace::Kind::kPhase, red_n, s.map_end_time);
    res.map_phase_seconds = s.map_end_time - t0;
    co_await fets.wait();  // all fetch deliveries handed to reducers
    for (auto& feed : s.feeds) feed->close();
  }(sh, g_map, fetches, result, start, phase_track, phase_map_name,
    phase_reduce_name));

  sim.spawn([](core::StageGraph& gr) -> sim::Task<> {
    co_await gr.run();
  }(g_reduce));

  sim.run();
  tr.end(phase_track, trace::Kind::kPhase, phase_reduce_name, sim.now());

  result.elapsed_seconds = sim.now() - start;
  result.reduce_phase_seconds =
      result.elapsed_seconds - result.map_phase_seconds;
  result.input_records = sh.records;
  result.intermediate_pairs = sh.pairs;
  result.shuffle_bytes = sh.shuffle_bytes;
  result.net_shuffle_bytes =
      tp.total_bytes(net::TrafficClass::kShuffle) - net_shuffle0;
  result.net_dfs_bytes = tp.total_bytes(net::TrafficClass::kDfs) - net_dfs0;
  result.net_control_bytes =
      tp.total_bytes(net::TrafficClass::kControl) - net_control0;
  std::sort(result.output_files.begin(), result.output_files.end());
  return result;
}

}  // namespace gw::hadoop
