file(REMOVE_RECURSE
  "CMakeFiles/kmeans_gpu_cluster.dir/kmeans_gpu_cluster.cpp.o"
  "CMakeFiles/kmeans_gpu_cluster.dir/kmeans_gpu_cluster.cpp.o.d"
  "kmeans_gpu_cluster"
  "kmeans_gpu_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_gpu_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
