// Per-node memory governor for the external shuffle/sort path.
//
// Every buffer-holding component of the map/merge/reduce pipelines acquires
// its bytes from one of four per-stage budget pools carved out of
// JobConfig::node_memory_bytes: the map-input pool (staged input chunks),
// the map-output pool (framed collector output awaiting partitioning), the
// store pool (the intermediate store's run cache) and the merge pool (merge
// i/o buffers, decompression scratch and reduce-side merge inputs). Each
// pipeline stage draws from exactly one pool and no two stages of one
// pipeline ever queue on the same pool, so a stage blocked on its acquire
// can always be unblocked by a downstream stage releasing — the pool graph
// is acyclic and tiny budgets degrade to serial execution instead of
// deadlocking. Acquires block deterministically on the
// simulated clock under pressure — pool waiting is a FIFO sim::Resource, so
// results stay bit-identical across host thread counts — and the governor
// accounts the time spent blocked (mem_stall_seconds) plus the peak total
// occupancy (peak_mem_bytes, never above the budget by construction).
//
// Oversized single requests are clamped to the owning pool's full budget:
// an allocation larger than the pool is admitted alone, at full-pool
// occupancy, rather than deadlocking. This models "one buffer can always be
// processed, but nothing else runs beside it".
//
// A null governor (node_memory_bytes == 0) disables all of this; callers
// skip their acquires and the legacy unbounded-memory data path runs
// byte-identically to previous releases.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "sim/sim.h"

namespace gw::core {

class MemoryGovernor {
 public:
  // Budget pools. Shares of node_memory_bytes: map-input 20%, map-output
  // 20%, store 40%, merge 20% (documented in DESIGN.md; the merge share
  // bounds the multi-level merge fan-in). With the combine pool enabled
  // (hierarchical combining active), the store share drops to 30% and the
  // combiner's staging buffers draw from a 10% combine pool — jobs without
  // combining keep the legacy four-pool split byte-identically.
  enum class Pool : int {
    kMapIn = 0,
    kMapOut = 1,
    kStore = 2,
    kMerge = 3,
    kCombine = 4,
  };
  static constexpr int kNumPools = 5;

  MemoryGovernor(sim::Simulation& sim, std::uint64_t node_memory_bytes,
                 bool with_combine_pool = false);

  std::uint64_t budget_bytes() const { return budget_; }
  std::uint64_t pool_budget(Pool p) const;
  std::uint64_t pool_in_use(Pool p) const;

  // Clamps `bytes` to [1, pool_budget(p)] and acquires that many units,
  // blocking on the simulated clock while the pool is exhausted. The
  // returned Hold releases on destruction (or explicitly via release()).
  sim::Task<sim::Resource::Hold> acquire(Pool p, std::uint64_t bytes);

  // Whether an acquire(p, bytes) would complete without blocking.
  bool fits(Pool p, std::uint64_t bytes) const;
  // Whether any coroutine is currently blocked on pool `p`.
  bool contended(Pool p) const;

  // Metrics.
  std::uint64_t peak_bytes() const { return peak_; }
  double stall_seconds() const { return stall_seconds_; }

 private:
  std::int64_t clamp(Pool p, std::uint64_t bytes) const;
  void note_occupancy();

  sim::Simulation& sim_;
  std::uint64_t budget_;
  std::array<std::unique_ptr<sim::Resource>, kNumPools> pools_;
  std::uint64_t peak_ = 0;
  double stall_seconds_ = 0;
};

}  // namespace gw::core
