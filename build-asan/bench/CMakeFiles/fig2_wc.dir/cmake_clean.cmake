file(REMOVE_RECURSE
  "CMakeFiles/fig2_wc.dir/fig2_wc.cc.o"
  "CMakeFiles/fig2_wc.dir/fig2_wc.cc.o.d"
  "fig2_wc"
  "fig2_wc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_wc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
