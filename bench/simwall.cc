// Offload-engine wall-clock benchmark: simulated seconds vs host seconds.
//
// Runs wordcount and k-means jobs at 1/8/64 simulated nodes twice each —
// once on a serial 1-thread host pool (the pre-offload baseline) and once
// on the default pool (GW_THREADS or hardware_concurrency) — and verifies
// that the SIMULATED result is bit-identical across the two, while the
// host wall-clock is whatever the pool achieves on this machine. Emits a
// JSON report (host metadata + per-point pool and offload statistics) for
// PR-over-PR tracking; see bench/run_simwall.sh.
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "apps/kmeans.h"
#include "apps/wordcount.h"
#include "bench/common.h"

namespace {

using namespace gw;

struct PointResult {
  double sim_seconds = 0;
  double wall_seconds = 0;
  std::uint64_t pool_tasks = 0;
  double pool_busy_seconds = 0;
  std::uint64_t offload_joins = 0;
  double join_block_seconds = 0;
};

// One full job on a fresh platform, with the sim/pool statistics kept.
PointResult run_job(int nodes, const core::AppKernels& app,
                    const util::Bytes& input, std::uint64_t split_size,
                    std::size_t pool_threads) {
  util::ThreadPool::reset_global(pool_threads);
  const auto t0 = std::chrono::steady_clock::now();

  cluster::Platform p = bench::make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  bench::stage_input(p, fs, "/in/data", input);
  core::JobConfig cfg;
  cfg.input_paths = {"/in/data"};
  cfg.output_path = "/out";
  cfg.split_size = split_size;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  const core::JobResult result = rt.run(app, cfg);

  PointResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.sim_seconds = result.elapsed_seconds;
  const util::ThreadPool::Stats ps = util::ThreadPool::global().stats();
  out.pool_tasks = ps.tasks_executed;
  out.pool_busy_seconds = ps.busy_seconds;
  out.offload_joins = p.sim().offload_joins();
  out.join_block_seconds = p.sim().offload_join_block_seconds();
  return out;
}

struct Point {
  std::string app;
  int nodes;
  PointResult serial;    // 1-thread pool: the pre-offload baseline
  PointResult parallel;  // default pool (GW_THREADS / hardware_concurrency)
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_simwall.json";

  const util::Bytes wc_input =
      apps::generate_wiki_text(bench::scaled_bytes(4 << 20), 2014);
  apps::KmeansConfig km{.k = 256, .dims = 4};
  const auto centers = apps::generate_centers(km, 77);
  const util::Bytes km_input =
      apps::generate_points(km, bench::scaled_bytes(120000), 88);
  const auto wc = apps::wordcount();
  const auto kmeans = apps::kmeans(km, centers);

  const std::size_t parallel_threads = [] {
    util::ThreadPool::reset_global(0);
    return util::ThreadPool::global().thread_count();
  }();

  std::vector<Point> points;
  int mismatches = 0;
  for (int nodes : {1, 8, 64}) {
    for (int which : {0, 1}) {
      Point pt;
      pt.app = which == 0 ? "wordcount" : "kmeans";
      pt.nodes = nodes;
      const core::AppKernels& app = which == 0 ? wc.kernels : kmeans.kernels;
      const util::Bytes& input = which == 0 ? wc_input : km_input;
      const std::uint64_t split = 64 << 10;
      pt.serial = run_job(nodes, app, input, split, 1);
      pt.parallel = run_job(nodes, app, input, split, parallel_threads);
      if (std::bit_cast<std::uint64_t>(pt.serial.sim_seconds) !=
          std::bit_cast<std::uint64_t>(pt.parallel.sim_seconds)) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s @%d nodes: serial %.17g != "
                     "parallel %.17g simulated seconds\n",
                     pt.app.c_str(), nodes, pt.serial.sim_seconds,
                     pt.parallel.sim_seconds);
        ++mismatches;
      }
      points.push_back(std::move(pt));
    }
  }
  util::ThreadPool::reset_global(1);

  std::printf("\n=== simwall: simulated vs host wall-clock (pool=%zu) ===\n",
              parallel_threads);
  std::printf("%-10s %5s %12s %12s %12s %8s %8s %10s\n", "app", "nodes",
              "sim(s)", "wall-1t(s)", "wall-Nt(s)", "speedup", "tasks",
              "joins");
  for (const auto& pt : points) {
    std::printf("%-10s %5d %12.3f %12.3f %12.3f %8.2f %8llu %10llu\n",
                pt.app.c_str(), pt.nodes, pt.serial.sim_seconds,
                pt.serial.wall_seconds, pt.parallel.wall_seconds,
                pt.serial.wall_seconds / pt.parallel.wall_seconds,
                static_cast<unsigned long long>(pt.parallel.pool_tasks),
                static_cast<unsigned long long>(pt.parallel.offload_joins));
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host\": {\n");
  std::fprintf(f, "    \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"pool_threads\": %zu,\n", parallel_threads);
  std::fprintf(f, "    \"bench_scale\": %g\n", bench::scale());
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"deterministic\": %s,\n",
               mismatches == 0 ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"app\": \"%s\",\n", pt.app.c_str());
    std::fprintf(f, "      \"nodes\": %d,\n", pt.nodes);
    std::fprintf(f, "      \"sim_seconds\": %.17g,\n", pt.serial.sim_seconds);
    for (int s = 0; s < 2; ++s) {
      const PointResult& r = s == 0 ? pt.serial : pt.parallel;
      std::fprintf(f, "      \"%s\": {\n", s == 0 ? "serial" : "parallel");
      std::fprintf(f, "        \"wall_seconds\": %.6f,\n", r.wall_seconds);
      std::fprintf(f, "        \"pool_tasks\": %llu,\n",
                   static_cast<unsigned long long>(r.pool_tasks));
      std::fprintf(f, "        \"pool_busy_seconds\": %.6f,\n",
                   r.pool_busy_seconds);
      std::fprintf(f, "        \"offload_joins\": %llu,\n",
                   static_cast<unsigned long long>(r.offload_joins));
      std::fprintf(f, "        \"join_block_seconds\": %.6f\n",
                   r.join_block_seconds);
      std::fprintf(f, "      }%s\n", s == 0 ? "," : ",");
    }
    std::fprintf(f, "      \"wall_speedup\": %.4f\n",
                 pt.serial.wall_seconds / pt.parallel.wall_seconds);
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  return mismatches == 0 ? 0 : 1;
}
